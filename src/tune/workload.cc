// The four §V-C case studies as registry workloads, plus the registry
// itself.  The parameter formulas are the paper's verbatim; the base
// constants are scaled down by default so every benchmark finishes in
// seconds on a laptop-class host (the simulator makes the shape of the
// results scale-invariant).  Setting CRITTER_PAPER_SCALE=1 restores the
// paper's rank counts and matrix sizes.
#include "tune/workload.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "candmc/qr2d.hpp"
#include "capital/cholesky3d.hpp"
#include "slate/slate.hpp"
#include "util/check.hpp"

namespace critter::tune {

void run_configuration(const Study& study, const Configuration& cfg) {
  CRITTER_CHECK(static_cast<bool>(study.runner),
                "study '" + study.name + "' has no runner bound");
  study.runner(study, cfg);
}

Study Workload::study(bool paper_scale) const {
  Study s = define(paper_scale);
  s.workload = name();
  if (s.configs.empty()) s.configs = s.space.enumerate();
  const Workload* self = this;
  s.runner = [self](const Study& st, const Configuration& c) {
    self->run(st, c);
  };
  return s;
}

namespace {

std::vector<std::int64_t> geometric(std::int64_t base, int count) {
  std::vector<std::int64_t> out;
  for (int i = 0; i < count; ++i) out.push_back(base << i);
  return out;
}

std::vector<std::int64_t> arithmetic(std::int64_t base, std::int64_t step,
                                     int count) {
  std::vector<std::int64_t> out;
  for (int i = 0; i < count; ++i) out.push_back(base + step * i);
  return out;
}

/// CAPITAL 3D Cholesky over block size and base-case strategy.
/// paper: 16384^2 on 512 ranks (c=8), b = 128 * 2^(v%5), strategy
/// ceil((v+1)/5) — i.e. the cartesian product with b varying fastest.
class CapitalCholeskyWorkload final : public Workload {
 public:
  std::string name() const override { return "capital-cholesky"; }
  std::string description() const override {
    return "CAPITAL 3D Cholesky: block size x base-case strategy";
  }

  Study define(bool paper) const override {
    Study s;
    s.name = "CAPITAL Cholesky";
    s.nranks = paper ? 512 : 27;
    s.n = paper ? 16384 : 384;
    s.m = s.n;
    s.gamma = paper ? 2.0e-11 : 4.0e-8;
    s.space = ParamSpace::cartesian(
        {{"b", geometric(paper ? 128 : 24, 5)}, {"strat", {1, 2, 3}}});
    return s;
  }

  void run(const Study& study, const Configuration& cfg) const override {
    const int c = static_cast<int>(std::lround(std::cbrt(study.nranks)));
    CRITTER_CHECK(c * c * c == study.nranks, "capital needs a cubic rank count");
    capital::Grid3D g = capital::Grid3D::build(c);
    capital::CyclicMatrix a(study.n, g, false);
    capital::Cholesky3D chol(g, study.n,
                             {static_cast<int>(cfg.at("b")),
                              static_cast<int>(cfg.at("strat"))},
                             false);
    chol.factor(a);
  }
};

/// SLATE Cholesky over lookahead depth and tile size.
/// paper: 65536^2 on 1024 ranks, depth v%2, tile 256 + 64*floor(v/2).
class SlateCholeskyWorkload final : public Workload {
 public:
  std::string name() const override { return "slate-cholesky"; }
  std::string description() const override {
    return "SLATE Cholesky: pipeline lookahead depth x tile size";
  }

  Study define(bool paper) const override {
    Study s;
    s.name = "SLATE Cholesky";
    s.nranks = paper ? 1024 : 64;
    s.n = paper ? 65536 : 2048;
    s.m = s.n;
    s.gamma = paper ? 2.0e-11 : 1.0e-8;
    s.space = ParamSpace::cartesian(
        {{"depth", {0, 1}},
         {"tile", arithmetic(paper ? 256 : 128, paper ? 64 : 32, 10)}});
    return s;
  }

  void run(const Study& study, const Configuration& cfg) const override {
    int pr = 1;
    while (pr * pr < study.nranks) pr *= 2;
    const int pc = study.nranks / pr;
    slate::Grid2D g = slate::Grid2D::build(pr, pc);
    slate::TileMatrix a(study.n, study.n, static_cast<int>(cfg.at("tile")), g,
                        false);
    slate::potrf(a, slate::PotrfConfig{static_cast<int>(cfg.at("depth"))});
  }
};

/// CANDMC pipelined 2D QR over block size and processor-grid shape.  The
/// grid dimensions are coupled (pr*pc == nranks), so the space is an
/// explicit enumeration.  paper: 131072 x 8192 on 4096 ranks,
/// b = 8 * 2^(v%5), grid 64*2^(v/5) x 64/2^(v/5).
class CandmcQrWorkload final : public Workload {
 public:
  std::string name() const override { return "candmc-qr"; }
  std::string description() const override {
    return "CANDMC pipelined 2D QR: block size x processor-grid shape";
  }

  Study define(bool paper) const override {
    Study s;
    s.name = "CANDMC QR";
    s.nranks = paper ? 4096 : 64;
    s.m = paper ? 131072 : 1024;
    s.n = paper ? 8192 : 128;
    s.gamma = paper ? 2.0e-11 : 2.0e-8;
    const std::int64_t b0 = paper ? 8 : 16;
    const std::int64_t pr0 = paper ? 64 : 16;
    const std::int64_t pc0 = paper ? 64 : 4;
    std::vector<std::vector<std::int64_t>> points;
    for (int v = 0; v < 15; ++v)
      points.push_back({b0 << (v % 5), pr0 << (v / 5), pc0 >> (v / 5)});
    s.space = ParamSpace::enumerated({"b", "pr", "pc"}, std::move(points));
    return s;
  }

  void run(const Study& study, const Configuration& cfg) const override {
    slate::Grid2D g = slate::Grid2D::build(static_cast<int>(cfg.at("pr")),
                                           static_cast<int>(cfg.at("pc")));
    slate::TileMatrix a(study.m, study.n, static_cast<int>(cfg.at("b")), g,
                        false);
    candmc::qr2d(a, candmc::QrConfig{});
  }
};

/// SLATE QR over internal panel width, panel (block) size, and grid shape.
/// paper: 65536 x 4096 on 256 ranks, w = 8 * 2^(v%3),
/// panel 256 + 64*(floor(v/3) % 7), grid 64/2^(v/21) x 4*2^(v/21).
class SlateQrWorkload final : public Workload {
 public:
  std::string name() const override { return "slate-qr"; }
  std::string description() const override {
    return "SLATE QR: internal panel width x panel size x grid shape";
  }

  Study define(bool paper) const override {
    Study s;
    s.name = "SLATE QR";
    s.nranks = paper ? 256 : 64;
    s.m = paper ? 65536 : 2048;
    s.n = paper ? 4096 : 512;
    s.gamma = paper ? 2.0e-11 : 1.0e-8;
    const std::int64_t nb0 = paper ? 256 : 128;
    const std::int64_t nb1 = paper ? 64 : 32;
    const std::int64_t pr0 = paper ? 64 : 16;
    const std::int64_t pc0 = 4;
    std::vector<std::vector<std::int64_t>> points;
    for (int v = 0; v < 63; ++v)
      points.push_back({8LL << (v % 3), nb0 + nb1 * ((v / 3) % 7),
                        pr0 >> (v / 21), pc0 << (v / 21)});
    s.space =
        ParamSpace::enumerated({"w", "nb", "pr", "pc"}, std::move(points));
    return s;
  }

  void run(const Study& study, const Configuration& cfg) const override {
    slate::Grid2D g = slate::Grid2D::build(static_cast<int>(cfg.at("pr")),
                                           static_cast<int>(cfg.at("pc")));
    slate::TileMatrix a(study.m, study.n, static_cast<int>(cfg.at("nb")), g,
                        false);
    slate::geqrf(a, slate::GeqrfConfig{static_cast<int>(cfg.at("w")), 0});
  }
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry* reg = [] {
    auto* r = new WorkloadRegistry;
    r->add(std::make_unique<CapitalCholeskyWorkload>());
    r->add(std::make_unique<SlateCholeskyWorkload>());
    r->add(std::make_unique<CandmcQrWorkload>());
    r->add(std::make_unique<SlateQrWorkload>());
    return r;
  }();
  return *reg;
}

void WorkloadRegistry::add(std::unique_ptr<Workload> w) {
  CRITTER_CHECK(w != nullptr && !w->name().empty(),
                "workload needs a non-empty name");
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const auto& existing : workloads_)
    CRITTER_CHECK(existing->name() != w->name(),
                  "workload '" + w->name() + "' already registered");
  workloads_.push_back(std::move(w));
}

const Workload* WorkloadRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const auto& w : workloads_)
    if (w->name() == name) return w.get();
  return nullptr;
}

const Workload& WorkloadRegistry::at(const std::string& name) const {
  const Workload* w = find(name);
  if (w == nullptr) {
    std::string known;
    for (const std::string& n : names()) known += " " + n;
    CRITTER_CHECK(false, "unknown workload '" + name + "'; known:" + known);
  }
  return *w;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (const auto& w : workloads_) out.push_back(w->name());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void register_workload(std::unique_ptr<Workload> w) {
  WorkloadRegistry::instance().add(std::move(w));
}

Study workload_study(const std::string& name, bool paper_scale) {
  return WorkloadRegistry::instance().at(name).study(paper_scale);
}

Study capital_cholesky_study(bool paper_scale) {
  return workload_study("capital-cholesky", paper_scale);
}
Study slate_cholesky_study(bool paper_scale) {
  return workload_study("slate-cholesky", paper_scale);
}
Study candmc_qr_study(bool paper_scale) {
  return workload_study("candmc-qr", paper_scale);
}
Study slate_qr_study(bool paper_scale) {
  return workload_study("slate-qr", paper_scale);
}

}  // namespace critter::tune
