// Configuration spaces of the four §V-C case studies.
//
// The parameter formulas are the paper's verbatim; the base constants are
// scaled down by default so every benchmark finishes in seconds on a
// laptop-class host (the simulator makes the shape of the results
// scale-invariant).  Setting CRITTER_PAPER_SCALE=1 restores the paper's
// rank counts and matrix sizes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/profiler.hpp"

namespace critter::tune {

enum class App : std::uint8_t {
  CapitalCholesky,
  SlateCholesky,
  CandmcQr,
  SlateQr,
};

const char* app_name(App a);

struct Configuration {
  int index = 0;
  int block_size = 0;     ///< capital b / candmc b / slate-qr panel width
  int base_strategy = 0;  ///< capital base-case strategy (1..3)
  int tile = 0;           ///< slate cholesky tile size
  int lookahead = 0;      ///< slate cholesky pipeline depth
  int pr = 0, pc = 0;     ///< 2D grid shape
  int panel_w = 0;        ///< slate qr internal panel width w

  std::string label(App app) const;
};

struct Study {
  App app{};
  std::string name;
  int nranks = 0;
  int m = 0, n = 0;  ///< matrix dimensions (m == n for Cholesky)
  /// Machine time-per-flop.  At reduced scale the kernels shrink by ~1000x
  /// while the profiling message sizes do not, so gamma is raised to keep
  /// the paper's kernel-time-to-overhead ratio (the quantity the selective
  /// execution trade-off actually depends on).
  double gamma = 2.0e-11;
  std::vector<Configuration> configs;
};

Study capital_cholesky_study(bool paper_scale);
Study slate_cholesky_study(bool paper_scale);
Study candmc_qr_study(bool paper_scale);
Study slate_qr_study(bool paper_scale);

/// Execute one configuration of the study inside a sim rank fiber
/// (model mode; critter must already be started).
void run_configuration(const Study& study, const Configuration& cfg);

}  // namespace critter::tune
