#include "tune/param_space.hpp"

#include <sstream>

#include "util/check.hpp"

namespace critter::tune {

std::int64_t Configuration::at(std::string_view name) const {
  for (const auto& [k, v] : params)
    if (k == name) return v;
  CRITTER_CHECK(false, "configuration has no parameter named '" +
                           std::string(name) + "' (have: " + label() + ")");
  return 0;
}

std::int64_t Configuration::get(std::string_view name, std::int64_t dflt) const {
  for (const auto& [k, v] : params)
    if (k == name) return v;
  return dflt;
}

bool Configuration::has(std::string_view name) const {
  for (const auto& [k, v] : params)
    if (k == name) return true;
  return false;
}

std::string Configuration::label() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) os << ",";
    first = false;
    os << k << "=" << v;
  }
  return os.str();
}

ParamSpace ParamSpace::cartesian(std::vector<ParamDim> dims) {
  ParamSpace s;
  s.is_cartesian_ = true;
  for (const ParamDim& d : dims) {
    CRITTER_CHECK(!d.name.empty(), "parameter dimension needs a name");
    CRITTER_CHECK(!d.values.empty(),
                  "parameter dimension '" + d.name + "' has no values");
    for (const std::string& seen : s.names_)
      CRITTER_CHECK(seen != d.name,
                    "duplicate parameter dimension '" + d.name + "'");
    s.names_.push_back(d.name);
  }
  s.dims_ = std::move(dims);
  return s;
}

ParamSpace ParamSpace::enumerated(
    std::vector<std::string> names,
    std::vector<std::vector<std::int64_t>> points) {
  ParamSpace s;
  for (std::size_t i = 0; i < names.size(); ++i) {
    CRITTER_CHECK(!names[i].empty(), "parameter dimension needs a name");
    for (std::size_t j = 0; j < i; ++j)
      CRITTER_CHECK(names[j] != names[i],
                    "duplicate parameter dimension '" + names[i] + "'");
  }
  for (const auto& p : points)
    CRITTER_CHECK(p.size() == names.size(),
                  "enumerated point arity does not match dimension names");
  s.names_ = std::move(names);
  s.points_ = std::move(points);
  return s;
}

int ParamSpace::size() const {
  if (!is_cartesian_) return static_cast<int>(points_.size());
  int n = 1;
  for (const ParamDim& d : dims_) n *= static_cast<int>(d.values.size());
  return n;
}

Configuration ParamSpace::at(int index) const {
  CRITTER_CHECK(index >= 0 && index < size(),
                "configuration index out of range");
  Configuration c;
  c.index = index;
  c.params.reserve(names_.size());
  if (is_cartesian_) {
    int rem = index;
    for (const ParamDim& d : dims_) {
      const int k = static_cast<int>(d.values.size());
      c.params.emplace_back(d.name, d.values[rem % k]);
      rem /= k;
    }
  } else {
    const std::vector<std::int64_t>& p = points_[index];
    for (std::size_t i = 0; i < names_.size(); ++i)
      c.params.emplace_back(names_[i], p[i]);
  }
  return c;
}

std::vector<Configuration> ParamSpace::enumerate() const {
  std::vector<Configuration> out;
  const int n = size();
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(at(i));
  return out;
}

}  // namespace critter::tune
