// The sweep driver: owns workers, batching, and the reduction that turns
// per-configuration outcomes into one TuneResult.
//
// Three execution modes, chosen from the options (recorded in the result):
//
//   Serial            — one persistent store, configurations in sequence;
//                       the paper's protocol verbatim.
//   ParallelIsolated  — statistics reset per configuration and no policy
//                       state crosses configurations, so each worker task
//                       owns an independent store; results are bit-identical
//                       to the serial sweep (salts are analytic, totals
//                       reduce in configuration order).
//   BatchShared       — statistics *are* shared across configurations
//                       (eager propagation, persistent-stats sweeps,
//                       extrapolation).  Workers evaluate a deterministic
//                       batch of configurations, each against a private
//                       store restored from the shared snapshot; at the
//                       barrier every store's statistics delta (an exact
//                       merge inverse, see core/stat_store.hpp) merges into
//                       the snapshot in configuration order.  Results are a
//                       pure function of (seed, batch size) — the worker
//                       count changes wall-clock time only.
#pragma once

#include "tune/evaluator.hpp"
#include "tune/strategy.hpp"

namespace critter::tune {

class SweepDriver {
 public:
  SweepDriver(const Study& study, const TuneOptions& opt);

  TuneResult run(SearchStrategy& strategy);

  /// The clamped [begin, end) configuration range this driver sweeps; the
  /// strategy must be constructed over exactly this range.
  int config_begin() const { return begin_; }
  int config_end() const { return end_; }

 private:
  struct Plan {
    SweepMode mode = SweepMode::Serial;
    int effective_workers = 1;
    int batch = 1;  ///< strategy batch granularity for this mode
    std::string fallback_reason;
  };

  Plan plan() const;
  Config profiler_config() const;

  const Study& study_;
  const TuneOptions& opt_;
  Evaluator evaluator_;
  int begin_ = 0, end_ = 0;  ///< configuration range swept
};

}  // namespace critter::tune
