// The sweep batch executor: owns workers, the planned execution mode, and
// the shared statistics state a sweep carries across batches.  The Tuner
// session drives it batch by batch (ask/tell); run_study is a loop over
// that session.
//
// Three execution modes, chosen from the options (recorded in the result):
//
//   Serial            — one persistent store, configurations in sequence;
//                       the paper's protocol verbatim.  Batch granularity 1,
//                       so a strategy observes every outcome before
//                       proposing the next configuration.
//   ParallelIsolated  — statistics reset per configuration and no policy
//                       state crosses configurations, so each worker task
//                       owns an independent store; results are bit-identical
//                       to the serial sweep (salts are analytic, totals
//                       reduce in configuration order).
//   BatchShared       — statistics *are* shared across configurations
//                       (eager propagation, persistent-stats sweeps,
//                       extrapolation).  Workers evaluate a deterministic
//                       batch of configurations, each against a private
//                       store restored from the shared snapshot; at the
//                       barrier every store's statistics delta (an exact
//                       merge inverse, see core/stat_store.hpp) merges into
//                       the snapshot in configuration order.  Results are a
//                       pure function of (seed, batch size) — the worker
//                       count changes wall-clock time only.
#pragma once

#include <memory>
#include <optional>

#include "tune/evaluator.hpp"
#include "util/thread_pool.hpp"

namespace critter::tune {

class SweepDriver {
 public:
  SweepDriver(const Study& study, const TuneOptions& opt);

  /// The clamped [begin, end) configuration range this driver sweeps; the
  /// strategy must be constructed over exactly this range.
  int config_begin() const { return begin_; }
  int config_end() const { return end_; }

  SweepMode mode() const { return plan_.mode; }
  int effective_workers() const { return plan_.effective_workers; }
  /// Strategy batch granularity of the planned mode.
  int batch() const { return plan_.batch; }
  const std::string& fallback_reason() const { return plan_.fallback_reason; }

  /// Evaluate one strategy batch (ascending indices within [begin, end))
  /// against the current shared statistics.  Outcomes land in
  /// `out[index]`, totals accumulate into `tot[index]`; both must be sized
  /// to the study's full configuration count.
  void run_batch(const std::vector<int>& batch, const EvalControl& ctl,
                 std::vector<ConfigOutcome>& out,
                 std::vector<ConfigTotals>& tot);

  /// Deep copy of the current shared statistics (the serial store's
  /// snapshot or the batch-shared base; an empty snapshot for isolated
  /// sweeps, whose statistics die with each configuration).
  core::StatSnapshot stats() const;

  /// Replace the shared statistics (warm start / sharded resume).  In
  /// reset mode only the reset-surviving state (channels, size model) is
  /// kept — see the in-body comment.  Isolated sweeps have no shared
  /// statistics and ignore the snapshot.
  void import_stats(const core::StatSnapshot& snap);

  /// Fold a delta into the shared statistics between batches: the
  /// distributed executors' mid-sweep exchange hook (a peer shard's
  /// published delta).  Deterministic — a pure KernelTable::merge in call
  /// order.  Reset-mode sweeps keep only the reset-surviving state of the
  /// delta (channels, size model), mirroring import_stats; isolated sweeps
  /// have no shared statistics and ignore it.
  void merge_stats(const core::StatSnapshot& delta);

 private:
  struct Plan {
    SweepMode mode = SweepMode::Serial;
    int effective_workers = 1;
    int batch = 1;  ///< strategy batch granularity for this mode
    std::string fallback_reason;
  };

  Plan plan() const;
  Config profiler_config() const;

  const Study& study_;
  const TuneOptions& opt_;
  Evaluator evaluator_;
  Plan plan_;
  int begin_ = 0, end_ = 0;  ///< configuration range swept
  bool reset_ = false;       ///< statistics reset between configurations
  std::optional<Store> store_;          ///< Serial: the persistent store
  core::StatSnapshot base_;             ///< BatchShared: the shared snapshot
  std::unique_ptr<util::ThreadPool> pool_;  ///< parallel modes
  /// Per-configuration full-reference cache: rung re-evaluations (halving)
  /// reuse the deterministic reference instead of re-simulating it.  Safe
  /// concurrently — batch indices are distinct, so each slot is touched by
  /// one worker at a time.
  std::vector<Report> ref_cache_;
};

}  // namespace critter::tune
