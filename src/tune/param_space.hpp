// Generic configuration model of the tuning subsystem.
//
// The paper's selective-execution protocol is workload-agnostic: it needs a
// finite configuration space and a program to simulate, nothing more.  A
// ParamSpace describes that space as named integer dimensions — either the
// cartesian product of per-dimension value lists or an explicit enumeration
// of points (for coupled parameters like a processor grid whose pr*pc must
// equal the rank count).  A Configuration is one point of the space: a
// self-contained list of (name, value) bindings, so outcomes can outlive
// the space that produced them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace critter::tune {

/// One named dimension: an ordered list of integer values.  Categorical
/// choices are encoded as small integers (as Capital's base-case strategy
/// already is in the paper).
struct ParamDim {
  std::string name;
  std::vector<std::int64_t> values;
};

/// One point of a parameter space: named integer parameter values plus the
/// point's index in enumeration order (the index drives noise salts and
/// sweep ranges, so it is part of the determinism contract).
struct Configuration {
  int index = 0;
  std::vector<std::pair<std::string, std::int64_t>> params;

  /// Value of a named parameter; CRITTER_CHECK-fails if absent.
  std::int64_t at(std::string_view name) const;
  /// Value of a named parameter, or `dflt` if absent.
  std::int64_t get(std::string_view name, std::int64_t dflt) const;
  bool has(std::string_view name) const;

  /// "b=24,strat=1" — parameters in declaration order.
  std::string label() const;
};

/// A finite configuration space of named dimensions.
class ParamSpace {
 public:
  ParamSpace() = default;

  /// The cartesian product of `dims`; the FIRST dimension varies fastest in
  /// enumeration order (index i -> dim0 value i % |dim0|, matching the
  /// paper's v % k parameter formulas).
  static ParamSpace cartesian(std::vector<ParamDim> dims);

  /// An explicit enumeration: `points[i]` holds one value per name, in
  /// order.  Use for coupled dimensions a cartesian product cannot express.
  static ParamSpace enumerated(std::vector<std::string> names,
                               std::vector<std::vector<std::int64_t>> points);

  int size() const;
  bool empty() const { return size() == 0; }
  const std::vector<std::string>& names() const { return names_; }

  /// The configuration at enumeration index `index` (0 <= index < size()).
  Configuration at(int index) const;

  /// All configurations in enumeration order.
  std::vector<Configuration> enumerate() const;

 private:
  std::vector<std::string> names_;
  std::vector<ParamDim> dims_;  ///< cartesian form (empty when enumerated)
  std::vector<std::vector<std::int64_t>> points_;  ///< enumerated form
  bool is_cartesian_ = false;
};

}  // namespace critter::tune
