// Workload registry: how applications plug into the tuner.
//
// A Workload pairs a parameter space with the program that realizes one of
// its configurations inside a simulated rank fiber.  Workloads register by
// name in a process-wide registry, so new applications — including ones
// defined entirely in user/example code — become tunable without touching
// src/tune/.  The four §V-C case studies are themselves registry entries
// ("capital-cholesky", "slate-cholesky", "candmc-qr", "slate-qr"); their
// legacy study factories remain as thin facades over the registry.
//
// A Study is the concrete tuning problem a Workload instantiates: machine
// scale, matrix shape, the parameter space, the materialized configuration
// list (subset it freely to narrow a sweep), and the runner closure the
// Evaluator invokes per configuration.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tune/param_space.hpp"

namespace critter::tune {

struct Study {
  std::string name;      ///< display name ("CAPITAL Cholesky")
  std::string workload;  ///< registry name this study came from ("" = ad hoc)
  int nranks = 0;
  int m = 0, n = 0;  ///< matrix dimensions (m == n for Cholesky)
  /// Machine time-per-flop.  At reduced scale the kernels shrink by ~1000x
  /// while the profiling message sizes do not, so gamma is raised to keep
  /// the paper's kernel-time-to-overhead ratio (the quantity the selective
  /// execution trade-off actually depends on).
  double gamma = 2.0e-11;
  ParamSpace space;
  /// The configurations the sweep ranges over, in enumeration order.
  /// Initialized to space.enumerate(); resize or subset to narrow a sweep
  /// (indices keep their absolute values, so noise salts are stable).
  std::vector<Configuration> configs;
  /// Execute one configuration inside a sim rank fiber (model mode,
  /// critter started).  Bound by Workload::study(); ad-hoc studies may set
  /// it directly.
  std::function<void(const Study&, const Configuration&)> runner;
};

/// Execute one configuration of the study inside a sim rank fiber (facade
/// over study.runner; critter must already be started).
void run_configuration(const Study& study, const Configuration& cfg);

/// A tunable application: a parameter space plus the program to simulate.
/// Implementations override define() and run(); study() binds the runner.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const { return {}; }

  /// The concrete tuning problem, with runner and workload name bound.
  /// `paper_scale` restores the paper's rank counts and matrix sizes; the
  /// default reduced scale finishes in seconds on a laptop-class host.
  /// The workload must outlive the returned study (registered workloads
  /// live for the process lifetime).
  Study study(bool paper_scale) const;

  /// Execute `cfg` inside a sim rank fiber (critter started, model mode).
  virtual void run(const Study& study, const Configuration& cfg) const = 0;

 protected:
  /// Space + scale; study() fills in the workload name, the materialized
  /// configuration list (when left empty), and the runner.
  virtual Study define(bool paper_scale) const = 0;
};

/// Process-wide name -> Workload registry.  The four paper case studies are
/// pre-registered; user code adds its own via register_workload().
class WorkloadRegistry {
 public:
  /// The global registry (paper workloads installed on first use).
  static WorkloadRegistry& instance();

  /// Register a workload under its name(); duplicate names are an error.
  void add(std::unique_ptr<Workload> w);
  /// Lookup by name; nullptr when unknown.
  const Workload* find(const std::string& name) const;
  /// Lookup by name; CRITTER_CHECK-fails (listing the known names) when
  /// unknown.
  const Workload& at(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::vector<std::unique_ptr<Workload>> workloads_;
};

/// Register into the global registry (safe from static initializers and
/// from main; the paper workloads are already present).
void register_workload(std::unique_ptr<Workload> w);

/// Build `name`'s study from the global registry.
Study workload_study(const std::string& name, bool paper_scale);

// --- legacy facades over the registry (paper §V-C case studies) ---------
Study capital_cholesky_study(bool paper_scale);
Study slate_cholesky_study(bool paper_scale);
Study candmc_qr_study(bool paper_scale);
Study slate_qr_study(bool paper_scale);

}  // namespace critter::tune
