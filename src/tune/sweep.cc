#include "tune/sweep.hpp"

#include <algorithm>
#include <thread>

#include "util/check.hpp"

namespace critter::tune {

namespace {

/// OS threads backing `logical` sweep workers.  Results never depend on the
/// pool size (isolated sweeps are bit-identical by construction,
/// batch-shared sweeps are a pure function of the batch size), so
/// oversubscribing the machine buys nothing but scheduler churn.
int pool_threads(int logical) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, hw > 0 ? std::min(logical, hw) : logical);
}

}  // namespace

const char* sweep_mode_name(SweepMode m) {
  switch (m) {
    case SweepMode::Serial: return "serial";
    case SweepMode::ParallelIsolated: return "parallel-isolated";
    case SweepMode::BatchShared: return "parallel-batch-shared";
  }
  return "?";
}

SweepDriver::SweepDriver(const Study& study, const TuneOptions& opt)
    : study_(study), opt_(opt), evaluator_(study, opt) {
  const int nconf = static_cast<int>(study.configs.size());
  begin_ = std::clamp(opt.config_begin, 0, nconf);
  end_ = opt.config_end < 0 ? nconf : std::clamp(opt.config_end, begin_, nconf);
  // Statistics reset between configurations (the paper's SLATE/CANDMC
  // protocol); never honored for eager propagation, which lives off
  // cross-configuration statistics.
  reset_ = opt.reset_per_config && opt.policy != Policy::EagerPropagation;
  ref_cache_.resize(nconf);
  plan_ = plan();
  if (plan_.mode == SweepMode::Serial) {
    store_.emplace(study_.nranks, profiler_config());
  } else {
    pool_ = std::make_unique<util::ThreadPool>(
        pool_threads(plan_.effective_workers));
    if (plan_.mode == SweepMode::BatchShared)
      base_ = Store(study_.nranks, profiler_config()).snapshot();
  }
}

Config SweepDriver::profiler_config() const {
  Config pc;
  pc.mode = ExecMode::Model;
  pc.policy = opt_.policy;
  pc.tolerance = opt_.tolerance;
  pc.tilde_capacity = opt_.tilde_capacity;
  pc.extrapolate = opt_.extrapolate;
  return pc;
}

SweepDriver::Plan SweepDriver::plan() const {
  // Statistical isolation holds when statistics reset between
  // configurations and no policy state survives the reset: eager
  // propagation is never reset, and the extrapolation size model outlives
  // reset_statistics() by design.
  const bool isolated_ok = opt_.reset_per_config &&
                           opt_.policy != Policy::EagerPropagation &&
                           !opt_.extrapolate;
  const int range_n = end_ - begin_;
  const int requested = std::max(1, opt_.workers);

  Plan p;
  if (range_n <= 1) {
    p.mode = SweepMode::Serial;
    if (requested > 1) p.fallback_reason = "single configuration in sweep range";
    return p;
  }
  if (isolated_ok) {
    if (requested == 1) return p;  // serial
    p.mode = SweepMode::ParallelIsolated;
    p.effective_workers = std::min(requested, range_n);
    p.batch = opt_.batch > 0 ? opt_.batch : range_n;
    return p;
  }
  // Shared statistics: batch-synchronous when parallelism (or an explicit
  // batch size, for worker-count-independence tests) was requested.
  if (requested == 1 && opt_.batch <= 0) return p;  // serial
  p.mode = SweepMode::BatchShared;
  p.batch = opt_.batch > 0 ? opt_.batch : requested;
  p.effective_workers = std::min({requested, p.batch, range_n});
  if (requested > 1 && p.effective_workers == 1)
    p.fallback_reason = "batch size 1 serializes the shared-statistics sweep";
  return p;
}

core::StatSnapshot SweepDriver::stats() const {
  if (plan_.mode == SweepMode::Serial) return store_->snapshot();
  if (plan_.mode == SweepMode::BatchShared) return base_;
  return {};  // isolated: statistics die with each configuration
}

void SweepDriver::import_stats(const core::StatSnapshot& snap) {
  if (snap.empty()) return;
  // Isolated sweeps reset statistics per configuration, so there is no
  // shared state to seed; a warm start is ignored (the documented
  // TuneOptions::warm_start contract), not an error — the same options
  // must behave the same at any worker count.
  if (plan_.mode == SweepMode::ParallelIsolated) return;
  CRITTER_CHECK(snap.nranks() == study_.nranks,
                "imported snapshot rank count does not match study");
  if (plan_.mode == SweepMode::Serial) {
    store_->restore(snap);
    return;
  }
  base_ = snap;
  // In reset mode per-configuration statistics never cross the barrier,
  // so the shared snapshot must carry only the reset-surviving state
  // (channels, size model).  A snapshot captured from a non-reset sweep
  // may hold kernel statistics; keeping them would also break the
  // workers' diff-after-reset (the delta is computed against `base_`,
  // whose K the worker no longer contains).
  if (reset_)
    for (core::KernelTable& t : base_.ranks) t.clear_statistics();
}

void SweepDriver::merge_stats(const core::StatSnapshot& delta) {
  if (delta.empty()) return;
  if (plan_.mode == SweepMode::ParallelIsolated) return;
  CRITTER_CHECK(delta.nranks() == study_.nranks,
                "merged delta rank count does not match study");
  const core::StatSnapshot* d = &delta;
  core::StatSnapshot reduced;
  if (reset_) {
    // Per-configuration statistics never cross configurations in reset
    // mode; only the reset-surviving state (channels, size model) may
    // enter the shared base — the same rule import_stats applies.
    reduced = delta;
    for (core::KernelTable& t : reduced.ranks) t.clear_statistics();
    d = &reduced;
  }
  if (plan_.mode == SweepMode::Serial) {
    core::StatSnapshot s = store_->snapshot();
    s.merge(*d);
    store_->restore(s);
  } else {  // BatchShared
    base_.merge(*d);
  }
}

void SweepDriver::run_batch(const std::vector<int>& batch,
                            const EvalControl& ctl,
                            std::vector<ConfigOutcome>& out,
                            std::vector<ConfigTotals>& tot) {
  if (batch.empty()) return;
  if (plan_.mode == SweepMode::Serial) {
    for (int idx : batch) {
      if (reset_) store_->reset_statistics();
      out[idx] =
          evaluator_.evaluate(*store_, idx, &tot[idx], ctl, &ref_cache_[idx]);
    }
  } else if (plan_.mode == SweepMode::ParallelIsolated) {
    // Each task owns an independent store (identical to a freshly reset
    // one: reset_statistics clears exactly the state a new store lacks),
    // so configurations evaluate concurrently yet bit-identically to the
    // serial sweep.
    const Config pc = profiler_config();
    pool_->parallel_for(static_cast<int>(batch.size()), [&](int k) {
      Store store(study_.nranks, pc);
      const int idx = batch[k];
      out[idx] =
          evaluator_.evaluate(store, idx, &tot[idx], ctl, &ref_cache_[idx]);
    });
  } else {  // BatchShared
    const Config pc = profiler_config();
    std::vector<core::StatSnapshot> deltas(batch.size());
    // Every worker evaluates against a private store restored from the
    // shared snapshot; its result and statistics delta are pure
    // functions of (base, index, salts, ctl), so scheduling cannot leak
    // into the outcome.
    pool_->parallel_for(static_cast<int>(batch.size()), [&](int k) {
      Store store(study_.nranks, pc);
      store.restore(base_);
      if (reset_) store.reset_statistics();
      const int idx = batch[k];
      out[idx] =
          evaluator_.evaluate(store, idx, &tot[idx], ctl, &ref_cache_[idx]);
      deltas[k] = store.diff(base_);
      if (reset_) {
        // Per-configuration statistics die with the configuration; only
        // the state that outlives reset_statistics() — channels and the
        // extrapolation size model — crosses the barrier.
        for (core::KernelTable& t : deltas[k].ranks) t.clear_statistics();
      }
    });
    // The barrier: merge deltas in configuration order (batches arrive
    // ascending).
    for (std::size_t k = 0; k < batch.size(); ++k) base_.merge(deltas[k]);
  }
}

}  // namespace critter::tune
