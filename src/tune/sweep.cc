#include "tune/sweep.hpp"

#include <algorithm>
#include <thread>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace critter::tune {

namespace {

/// OS threads backing `logical` sweep workers.  Results never depend on the
/// pool size (isolated sweeps are bit-identical by construction,
/// batch-shared sweeps are a pure function of the batch size), so
/// oversubscribing the machine buys nothing but scheduler churn.
int pool_threads(int logical) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, hw > 0 ? std::min(logical, hw) : logical);
}

}  // namespace

const char* sweep_mode_name(SweepMode m) {
  switch (m) {
    case SweepMode::Serial: return "serial";
    case SweepMode::ParallelIsolated: return "parallel-isolated";
    case SweepMode::BatchShared: return "parallel-batch-shared";
  }
  return "?";
}

SweepDriver::SweepDriver(const Study& study, const TuneOptions& opt)
    : study_(study), opt_(opt), evaluator_(study, opt) {
  const int nconf = static_cast<int>(study.configs.size());
  begin_ = std::clamp(opt.config_begin, 0, nconf);
  end_ = opt.config_end < 0 ? nconf : std::clamp(opt.config_end, begin_, nconf);
}

Config SweepDriver::profiler_config() const {
  Config pc;
  pc.mode = ExecMode::Model;
  pc.policy = opt_.policy;
  pc.tolerance = opt_.tolerance;
  pc.tilde_capacity = opt_.tilde_capacity;
  pc.extrapolate = opt_.extrapolate;
  return pc;
}

SweepDriver::Plan SweepDriver::plan() const {
  // Statistical isolation holds when statistics reset between
  // configurations and no policy state survives the reset: eager
  // propagation is never reset, and the extrapolation size model outlives
  // reset_statistics() by design.
  const bool isolated_ok = opt_.reset_per_config &&
                           opt_.policy != Policy::EagerPropagation &&
                           !opt_.extrapolate;
  const int range_n = end_ - begin_;
  const int requested = std::max(1, opt_.workers);

  Plan p;
  if (range_n <= 1) {
    p.mode = SweepMode::Serial;
    if (requested > 1) p.fallback_reason = "single configuration in sweep range";
    return p;
  }
  if (isolated_ok) {
    if (requested == 1) return p;  // serial
    p.mode = SweepMode::ParallelIsolated;
    p.effective_workers = std::min(requested, range_n);
    p.batch = opt_.batch > 0 ? opt_.batch : range_n;
    return p;
  }
  // Shared statistics: batch-synchronous when parallelism (or an explicit
  // batch size, for worker-count-independence tests) was requested.
  if (requested == 1 && opt_.batch <= 0) return p;  // serial
  p.mode = SweepMode::BatchShared;
  p.batch = opt_.batch > 0 ? opt_.batch : requested;
  p.effective_workers = std::min({requested, p.batch, range_n});
  if (requested > 1 && p.effective_workers == 1)
    p.fallback_reason = "batch size 1 serializes the shared-statistics sweep";
  return p;
}

TuneResult SweepDriver::run(SearchStrategy& strategy) {
  const int nconf = static_cast<int>(study_.configs.size());
  const Config pc = profiler_config();
  const Plan p = plan();
  // Statistics reset between configurations (the paper's SLATE/CANDMC
  // protocol); never honored for eager propagation, which lives off
  // cross-configuration statistics.
  const bool reset =
      opt_.reset_per_config && opt_.policy != Policy::EagerPropagation;

  TuneResult out;
  out.per_config.resize(nconf);
  for (int i = 0; i < nconf; ++i) out.per_config[i].config = study_.configs[i];
  std::vector<ConfigTotals> totals(nconf);

  out.mode = p.mode;
  out.requested_workers = std::max(1, opt_.workers);
  out.effective_workers = p.effective_workers;
  out.batch = p.mode == SweepMode::BatchShared ? p.batch : 0;
  out.fallback_reason = p.fallback_reason;

  if (p.mode == SweepMode::Serial) {
    Store store(study_.nranks, pc);
    if (opt_.warm_start != nullptr) store.restore(*opt_.warm_start);
    // Batch granularity 1: the strategy observes every outcome before
    // proposing the next configuration (exhaustive order is unaffected;
    // CI discard gets the freshest incumbent, i.e. batch-shared semantics
    // at batch size 1).
    for (;;) {
      const std::vector<int> batch = strategy.next_batch(1);
      if (batch.empty()) break;
      const EvalControl ctl = strategy.control();
      for (int idx : batch) {
        if (reset) store.reset_statistics();
        out.per_config[idx] =
            evaluator_.evaluate(store, idx, &totals[idx], ctl);
        strategy.observe(out.per_config[idx]);
      }
    }
    out.stats = store.snapshot();
  } else if (p.mode == SweepMode::ParallelIsolated) {
    util::ThreadPool pool(pool_threads(p.effective_workers));
    for (;;) {
      const std::vector<int> batch = strategy.next_batch(p.batch);
      if (batch.empty()) break;
      const EvalControl ctl = strategy.control();
      // Each task owns an independent store (identical to a freshly reset
      // one: reset_statistics clears exactly the state a new store lacks),
      // so configurations evaluate concurrently yet bit-identically to the
      // serial sweep.
      pool.parallel_for(static_cast<int>(batch.size()), [&](int k) {
        Store store(study_.nranks, pc);
        const int idx = batch[k];
        out.per_config[idx] =
            evaluator_.evaluate(store, idx, &totals[idx], ctl);
      });
      for (int idx : batch) strategy.observe(out.per_config[idx]);
    }
  } else {  // BatchShared
    util::ThreadPool pool(pool_threads(p.effective_workers));
    core::StatSnapshot base;
    if (opt_.warm_start != nullptr) {
      CRITTER_CHECK(opt_.warm_start->nranks() == study_.nranks,
                    "warm-start snapshot rank count does not match study");
      base = *opt_.warm_start;
      // In reset mode per-configuration statistics never cross the barrier,
      // so the shared snapshot must carry only the reset-surviving state
      // (channels, size model).  A warm-start captured from a non-reset
      // sweep may hold kernel statistics; keeping them would also break the
      // workers' diff-after-reset (the delta is computed against `base`,
      // whose K the worker no longer contains).
      if (reset)
        for (core::KernelTable& t : base.ranks) t.clear_statistics();
    } else {
      base = Store(study_.nranks, pc).snapshot();
    }
    std::vector<core::StatSnapshot> deltas;
    for (;;) {
      const std::vector<int> batch = strategy.next_batch(p.batch);
      if (batch.empty()) break;
      const EvalControl ctl = strategy.control();
      deltas.assign(batch.size(), core::StatSnapshot{});
      // Every worker evaluates against a private store restored from the
      // shared snapshot; its result and statistics delta are pure
      // functions of (base, index, salts, ctl), so scheduling cannot leak
      // into the outcome.
      pool.parallel_for(static_cast<int>(batch.size()), [&](int k) {
        Store store(study_.nranks, pc);
        store.restore(base);
        if (reset) store.reset_statistics();
        const int idx = batch[k];
        out.per_config[idx] =
            evaluator_.evaluate(store, idx, &totals[idx], ctl);
        deltas[k] = store.diff(base);
        if (reset) {
          // Per-configuration statistics die with the configuration; only
          // the state that outlives reset_statistics() — channels and the
          // extrapolation size model — crosses the barrier.
          for (core::KernelTable& t : deltas[k].ranks) t.clear_statistics();
        }
      });
      // The barrier: merge deltas in configuration order (batches arrive
      // ascending), then let the strategy observe in the same order.
      for (std::size_t k = 0; k < batch.size(); ++k) base.merge(deltas[k]);
      for (int idx : batch) strategy.observe(out.per_config[idx]);
    }
    out.stats = std::move(base);
  }

  for (const ConfigOutcome& oc : out.per_config)
    if (oc.evaluated) ++out.evaluated_configs;
  for (const ConfigTotals& t : totals) {
    out.tuning_time += t.tuning_time;
    out.full_time += t.full_time;
    out.kernel_time += t.kernel_time;
    out.full_kernel_time += t.full_kernel_time;
  }
  return out;
}

}  // namespace critter::tune
