#include "tune/strategy.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace critter::tune {

namespace {

/// Exhaustive order over [begin, end): the paper's protocol.
class ExhaustiveStrategy : public SearchStrategy {
 public:
  ExhaustiveStrategy(int begin, int end) : next_(begin), end_(end) {}

  const char* name() const override { return "exhaustive"; }

  std::vector<int> next_batch(int max_batch) override {
    std::vector<int> out;
    while (next_ < end_ && static_cast<int>(out.size()) < max_batch)
      out.push_back(next_++);
    return out;
  }

  void observe(const ConfigOutcome&) override {}

 private:
  int next_, end_;
};

/// A deterministic random subset: configurations ranked by a counter-based
/// hash of (seed, index), the `count` best kept, emitted in ascending index
/// order so statistics merge in configuration order.
class RandomSubsetStrategy : public SearchStrategy {
 public:
  RandomSubsetStrategy(int begin, int end, int count, std::uint64_t seed) {
    std::vector<std::pair<std::uint64_t, int>> scored;
    scored.reserve(static_cast<std::size_t>(end - begin));
    for (int i = begin; i < end; ++i)
      scored.push_back({util::hash_combine(seed, 0x5B5E7ull + i), i});
    std::sort(scored.begin(), scored.end());
    scored.resize(std::min<std::size_t>(scored.size(),
                                        count > 0 ? count : scored.size()));
    for (const auto& [score, i] : scored) chosen_.push_back(i);
    std::sort(chosen_.begin(), chosen_.end());
  }

  const char* name() const override { return "random-subset"; }

  std::vector<int> next_batch(int max_batch) override {
    std::vector<int> out;
    while (pos_ < chosen_.size() && static_cast<int>(out.size()) < max_batch)
      out.push_back(chosen_[pos_++]);
    return out;
  }

  void observe(const ConfigOutcome&) override {}

 private:
  std::vector<int> chosen_;
  std::size_t pos_ = 0;
};

/// Exhaustive order with CI-based early discard: the evaluator abandons a
/// configuration's remaining samples once its predicted-time confidence
/// interval is dominated by the best predicted time observed at any
/// previous batch barrier.
class CiEarlyDiscardStrategy : public ExhaustiveStrategy {
 public:
  CiEarlyDiscardStrategy(int begin, int end, double margin)
      : ExhaustiveStrategy(begin, end), margin_(margin) {}

  const char* name() const override { return "ci-early-discard"; }

  void observe(const ConfigOutcome& oc) override {
    if (oc.evaluated) incumbent_ = std::min(incumbent_, oc.pred_time);
  }

  EvalControl control() const override {
    return EvalControl{true, incumbent_, margin_};
  }

 private:
  double incumbent_ = std::numeric_limits<double>::infinity();
  double margin_;
};

}  // namespace

const char* search_name(Search s) {
  switch (s) {
    case Search::Exhaustive: return "exhaustive";
    case Search::RandomSubset: return "random-subset";
    case Search::CiEarlyDiscard: return "ci-early-discard";
  }
  return "?";
}

std::unique_ptr<SearchStrategy> make_strategy(const TuneOptions& opt,
                                              int begin, int end) {
  CRITTER_CHECK(begin >= 0 && begin <= end, "bad sweep configuration range");
  switch (opt.search) {
    case Search::Exhaustive:
      return std::make_unique<ExhaustiveStrategy>(begin, end);
    case Search::RandomSubset:
      return std::make_unique<RandomSubsetStrategy>(begin, end, opt.subset,
                                                    opt.seed_salt);
    case Search::CiEarlyDiscard:
      return std::make_unique<CiEarlyDiscardStrategy>(begin, end,
                                                      opt.discard_margin);
  }
  return std::make_unique<ExhaustiveStrategy>(begin, end);
}

}  // namespace critter::tune
