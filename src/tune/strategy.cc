#include "tune/strategy.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "model/strategies.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace critter::tune {

void check_strategy_options(const std::string& strategy,
                            const StrategyOptions& opts,
                            std::initializer_list<const char*> known) {
  std::string unknown;
  for (const auto& [key, value] : opts) {
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) unknown += (unknown.empty() ? "'" : ", '") + key + "'";
  }
  CRITTER_CHECK(unknown.empty(), "strategy '" + strategy +
                                     "' does not understand option(s) " +
                                     unknown);
}

std::int64_t strategy_opt_int(const StrategyOptions& opts,
                              const std::string& key, std::int64_t dflt) {
  const auto it = opts.find(key);
  if (it == opts.end()) return dflt;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  CRITTER_CHECK(end != nullptr && *end == '\0' && !it->second.empty(),
                "strategy option " + key + "=" + it->second +
                    " is not an integer");
  return v;
}

double strategy_opt_double(const StrategyOptions& opts,
                           const std::string& key, double dflt) {
  const auto it = opts.find(key);
  if (it == opts.end()) return dflt;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  CRITTER_CHECK(end != nullptr && *end == '\0' && !it->second.empty(),
                "strategy option " + key + "=" + it->second +
                    " is not a number");
  return v;
}

namespace {

// Local aliases: the factories below predate the public helper names.
constexpr auto check_known_keys = check_strategy_options;
constexpr auto opt_int = strategy_opt_int;
constexpr auto opt_double = strategy_opt_double;

// --- built-in strategies ---------------------------------------------------

/// Exhaustive order over [begin, end): the paper's protocol.
class ExhaustiveStrategy : public SearchStrategy {
 public:
  ExhaustiveStrategy(int begin, int end) : next_(begin), end_(end) {}

  const char* name() const override { return "exhaustive"; }

  std::vector<int> next_batch(int max_batch) override {
    std::vector<int> out;
    while (next_ < end_ && static_cast<int>(out.size()) < max_batch)
      out.push_back(next_++);
    return out;
  }

  void observe(const ConfigOutcome&) override {}

 private:
  int next_, end_;
};

/// A deterministic random subset: configurations ranked by a counter-based
/// hash of (seed, index), the `count` best kept, emitted in ascending index
/// order so statistics merge in configuration order.
class RandomSubsetStrategy : public SearchStrategy {
 public:
  RandomSubsetStrategy(int begin, int end, int count, std::uint64_t seed) {
    std::vector<std::pair<std::uint64_t, int>> scored;
    scored.reserve(static_cast<std::size_t>(end - begin));
    for (int i = begin; i < end; ++i)
      scored.push_back({util::hash_combine(seed, 0x5B5E7ull + i), i});
    std::sort(scored.begin(), scored.end());
    scored.resize(std::min<std::size_t>(scored.size(),
                                        count > 0 ? count : scored.size()));
    for (const auto& [score, i] : scored) chosen_.push_back(i);
    std::sort(chosen_.begin(), chosen_.end());
  }

  const char* name() const override { return "random-subset"; }

  std::vector<int> next_batch(int max_batch) override {
    std::vector<int> out;
    while (pos_ < chosen_.size() && static_cast<int>(out.size()) < max_batch)
      out.push_back(chosen_[pos_++]);
    return out;
  }

  void observe(const ConfigOutcome&) override {}

 private:
  std::vector<int> chosen_;
  std::size_t pos_ = 0;
};

/// Exhaustive order with CI-based early discard: the evaluator abandons a
/// configuration's remaining samples once its predicted-time confidence
/// interval is dominated by the best predicted time observed at any
/// previous batch barrier.
class CiEarlyDiscardStrategy : public ExhaustiveStrategy {
 public:
  CiEarlyDiscardStrategy(int begin, int end, double margin)
      : ExhaustiveStrategy(begin, end), margin_(margin) {}

  const char* name() const override { return "ci-discard"; }

  void observe(const ConfigOutcome& oc) override {
    if (oc.evaluated) incumbent_ = std::min(incumbent_, oc.pred_time);
  }

  EvalControl control() const override {
    EvalControl ctl;
    ctl.early_discard = true;
    ctl.incumbent_pred = incumbent_;
    ctl.margin = margin_;
    return ctl;
  }

 private:
  double incumbent_ = std::numeric_limits<double>::infinity();
  double margin_;
};

/// Successive halving: every configuration gets a small sample budget, then
/// the best 1/eta by predicted time advance to an eta-times larger budget,
/// until a rung runs at the full per-configuration budget.  The adaptive
/// ask/tell exercise: each rung's membership depends on the previous rung's
/// outcomes.  Budgets ride on EvalControl::samples_override, and because
/// salts are analytic per configuration a higher-budget re-evaluation
/// replays the earlier rung's samples exactly and extends them.
class HalvingStrategy : public SearchStrategy {
 public:
  HalvingStrategy(int begin, int end, int max_samples, int eta,
                  int min_samples)
      : max_samples_(std::max(1, max_samples)),
        eta_(std::max(2, eta)),
        budget_(std::clamp(min_samples, 1, std::max(1, max_samples))) {
    for (int i = begin; i < end; ++i) candidates_.push_back(i);
  }

  const char* name() const override { return "halving"; }

  std::vector<int> next_batch(int max_batch) override {
    std::vector<int> out;
    if (finished_) return out;
    while (pos_ < candidates_.size() &&
           static_cast<int>(out.size()) < max_batch)
      out.push_back(candidates_[pos_++]);
    return out;
  }

  void observe(const ConfigOutcome& oc) override {
    rung_.push_back({oc.pred_time, oc.config.index});
    if (rung_.size() < candidates_.size()) return;
    // Rung complete.  A rung at the full budget is final; otherwise the
    // best ceil(n/eta) (ties to the lower index) advance with eta times
    // the budget.
    if (budget_ >= max_samples_ || candidates_.size() <= 1) {
      if (budget_ >= max_samples_) {
        finished_ = true;
      } else {
        budget_ = max_samples_;  // confirm the single survivor at full budget
      }
    } else {
      const std::size_t keep =
          (candidates_.size() + static_cast<std::size_t>(eta_) - 1) /
          static_cast<std::size_t>(eta_);
      std::sort(rung_.begin(), rung_.end());
      rung_.resize(keep);
      candidates_.clear();
      for (const auto& [pred, idx] : rung_) candidates_.push_back(idx);
      std::sort(candidates_.begin(), candidates_.end());
      budget_ = std::min(budget_ * eta_, max_samples_);
    }
    rung_.clear();
    pos_ = 0;
  }

  EvalControl control() const override {
    EvalControl ctl;
    ctl.samples_override = budget_;
    return ctl;
  }

 private:
  std::vector<int> candidates_;  ///< current rung, ascending indices
  std::vector<std::pair<double, int>> rung_;  ///< (pred_time, index) observed
  std::size_t pos_ = 0;  ///< next candidate to emit within the rung
  int max_samples_;
  int eta_;
  int budget_;  ///< per-configuration samples of the current rung
  bool finished_ = false;
};

// --- the registry ----------------------------------------------------------

struct StrategyEntry {
  StrategyFactory factory;
  std::string summary;
};

struct StrategyRegistry {
  std::map<std::string, StrategyEntry> entries;
  std::mutex mutex;
};

StrategyRegistry& registry() {
  static StrategyRegistry* reg = [] {
    auto* r = new StrategyRegistry;
    r->entries["exhaustive"] = {
        [](const StrategyContext& ctx, const StrategyOptions& opts) {
          check_known_keys("exhaustive", opts, {});
          return std::make_unique<ExhaustiveStrategy>(ctx.begin, ctx.end);
        },
        "every configuration in index order (the paper's protocol)"};
    r->entries["random-subset"] = {
        [](const StrategyContext& ctx, const StrategyOptions& opts) {
          check_known_keys("random-subset", opts, {"count"});
          return std::make_unique<RandomSubsetStrategy>(
              ctx.begin, ctx.end,
              static_cast<int>(opt_int(opts, "count", 0)), ctx.seed);
        },
        "count=N — deterministic random subset of N configurations"};
    r->entries["ci-discard"] = {
        [](const StrategyContext& ctx, const StrategyOptions& opts) {
          check_known_keys("ci-discard", opts, {"margin"});
          return std::make_unique<CiEarlyDiscardStrategy>(
              ctx.begin, ctx.end, opt_double(opts, "margin", 0.10));
        },
        "margin=X — drop a config's remaining samples once its CI is "
        "dominated by the incumbent (+X slack)"};
    r->entries["halving"] = {
        [](const StrategyContext& ctx, const StrategyOptions& opts) {
          check_known_keys("halving", opts, {"eta", "min-samples"});
          return std::make_unique<HalvingStrategy>(
              ctx.begin, ctx.end, ctx.samples,
              static_cast<int>(opt_int(opts, "eta", 2)),
              static_cast<int>(opt_int(opts, "min-samples", 1)));
        },
        "eta=N,min-samples=M — successive halving: best 1/eta advance to an "
        "eta-times larger sample budget"};
    // The model-based strategies ("surrogate-ei", "copula-transfer") live
    // in src/model/ and install themselves here, so they are present
    // whenever the registry is — no static-initialization-order games.
    model::register_model_strategies(
        [r](const std::string& name, StrategyFactory factory,
            const std::string& summary) {
          r->entries[name] = {std::move(factory), summary};
        });
    return r;
  }();
  return *reg;
}

}  // namespace

void register_strategy(const std::string& name, StrategyFactory factory,
                       const std::string& summary) {
  CRITTER_CHECK(!name.empty() && static_cast<bool>(factory),
                "strategy registration needs a name and a factory");
  StrategyRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  CRITTER_CHECK(reg.entries.count(name) == 0,
                "strategy '" + name + "' already registered");
  reg.entries[name] = {std::move(factory), summary};
}

std::vector<std::string> strategy_names() {
  StrategyRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> out;
  for (const auto& [name, entry] : reg.entries) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string strategy_summary(const std::string& name) {
  StrategyRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.entries.find(name);
  return it == reg.entries.end() ? "" : it->second.summary;
}

std::unique_ptr<SearchStrategy> make_strategy(const std::string& name,
                                              const StrategyContext& ctx,
                                              const StrategyOptions& opts) {
  CRITTER_CHECK(ctx.begin >= 0 && ctx.begin <= ctx.end,
                "bad sweep configuration range");
  StrategyFactory factory;
  {
    StrategyRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.entries.find(name);
    if (it != reg.entries.end()) factory = it->second.factory;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : strategy_names()) known += " " + n;
    CRITTER_CHECK(false, "unknown strategy '" + name + "'; known:" + known);
  }
  return factory(ctx, opts);
}

std::pair<std::string, StrategyOptions> parse_strategy_spec(
    const std::string& spec) {
  std::pair<std::string, StrategyOptions> out;
  std::size_t pos = spec.find(',');
  out.first = spec.substr(0, pos);
  while (pos != std::string::npos) {
    const std::size_t next = spec.find(',', pos + 1);
    const std::string item = spec.substr(
        pos + 1, next == std::string::npos ? std::string::npos : next - pos - 1);
    const std::size_t eq = item.find('=');
    CRITTER_CHECK(eq != std::string::npos && eq > 0,
                  "strategy option '" + item + "' is not key=value");
    const bool inserted =
        out.second.emplace(item.substr(0, eq), item.substr(eq + 1)).second;
    CRITTER_CHECK(inserted, "strategy option '" + item.substr(0, eq) +
                                "' given more than once");
    pos = next;
  }
  return out;
}

}  // namespace critter::tune
