// Autotuner accelerated by critter's selective execution (paper §VI).
//
// Public facade of the tuning subsystem, which is layered as (tune/sweep.hpp
// has the driver, tune/evaluator.hpp the per-configuration protocol,
// tune/strategy.hpp the search strategies):
//
//   SearchStrategy  — which configurations to evaluate, in which batches
//                     (exhaustive; random subset; CI-based early discard);
//   Evaluator       — one configuration's protocol: optional a-priori
//                     instrumented pass, one full reference execution, then
//                     `samples` selective executions;
//   SweepDriver     — owns workers and statistics flow across
//                     configurations: serial, isolated-parallel
//                     (per-configuration statistics reset), or
//                     batch-shared-parallel (workers evaluate a batch
//                     against a shared statistics snapshot and their deltas
//                     merge in configuration order at a barrier).
//
// All runs of one configuration share a profiler Store, so kernel
// statistics persist across samples (and across configurations unless
// reset — which is what the eager policy exploits).
#pragma once

#include "core/stat_store.hpp"
#include "tune/config_space.hpp"

namespace critter::tune {

/// Which configurations an exhaustive-search budget is spent on.
enum class Search : std::uint8_t {
  Exhaustive,      ///< every configuration (the paper's protocol)
  RandomSubset,    ///< a deterministic random subset of `subset` configs
  CiEarlyDiscard,  ///< exhaustive order, but a configuration's remaining
                   ///< samples are discarded once its predicted-time CI is
                   ///< dominated by the incumbent best
};

const char* search_name(Search s);

/// How the sweep actually executed (recorded in TuneResult so drivers can
/// surface the effective mode instead of silently degrading).
enum class SweepMode : std::uint8_t {
  Serial,            ///< one store, configurations in sequence
  ParallelIsolated,  ///< per-configuration stores, statistics reset
  BatchShared,       ///< batch-synchronous shared-statistics sweep
};

const char* sweep_mode_name(SweepMode m);

struct TuneOptions {
  Policy policy = Policy::ConditionalExecution;
  double tolerance = 0.25;
  int samples = 3;
  /// Reset kernel statistics between configurations (paper: on for SLATE
  /// and CANDMC, off for Capital; never honored for eager propagation).
  bool reset_per_config = false;
  std::uint64_t seed_salt = 0;
  double comp_noise = 0.08;
  double comm_noise = 0.08;
  /// Internal-message ~K capacity (profiling-overhead ablation knob).
  int tilde_capacity = 256;
  /// Enable the §VIII cross-size kernel-model extrapolation extension.
  bool extrapolate = false;
  /// Evaluate configurations on a work-stealing pool of this many workers.
  /// Sweeps whose configurations are statistically isolated
  /// (`reset_per_config`, non-eager, non-extrapolate) parallelize
  /// bit-identically to the serial sweep.  Sweeps that share statistics
  /// across configurations (eager propagation, persistent-stats sweeps,
  /// extrapolation) run batch-synchronously: workers evaluate a batch
  /// against a shared statistics snapshot and merge their deltas in
  /// configuration order at a barrier, so results are deterministic for a
  /// given (seed, batch size) regardless of worker count.  The effective
  /// mode is recorded in TuneResult.
  int workers = 1;
  /// Batch size of the batch-shared sweep (0: use `workers`).  Also forces
  /// the batch-shared path when set on a shared-statistics sweep with
  /// workers == 1, which is how a single-worker run reproduces a
  /// multi-worker run exactly.
  int batch = 0;
  Search search = Search::Exhaustive;
  /// RandomSubset: number of configurations to evaluate (0 = all).
  int subset = 0;
  /// CiEarlyDiscard: relative slack over the incumbent's predicted time
  /// before a configuration's remaining samples are abandoned.
  double discard_margin = 0.10;
  /// Restrict the sweep to configurations [config_begin, config_end)
  /// (config_end < 0: to the end).  Noise salts stay indexed by absolute
  /// configuration index, so a sweep split into ranges — e.g. interrupted
  /// and warm-started — reproduces the uninterrupted sweep exactly.
  int config_begin = 0;
  int config_end = -1;
  /// Warm-start statistics (typically a previous sweep's
  /// TuneResult::stats round-tripped through StatSnapshot::save/load).
  /// Honored by serial and batch-shared sweeps; isolated-parallel sweeps
  /// reset statistics per configuration and ignore it.
  const core::StatSnapshot* warm_start = nullptr;
};

struct ConfigOutcome {
  Configuration config;
  double true_time = 0.0;       ///< mean uninstrumented execution time
  double pred_time = 0.0;       ///< mean modeled (selective) execution time
  double err = 0.0;             ///< mean relative execution-time error
  double true_comp_time = 0.0;  ///< critical-path computation time (full)
  double pred_comp_time = 0.0;
  double comp_err = 0.0;
  double sel_wall = 0.0;         ///< selective wall time (summed samples)
  double sel_kernel_time = 0.0;  ///< max-over-ranks executed kernel time
  std::int64_t executed = 0;
  std::int64_t skipped = 0;
  bool evaluated = false;  ///< false: skipped by the search strategy
  bool pruned = false;     ///< CI early-discard abandoned later samples
  int samples_used = 0;
};

struct TuneResult {
  std::vector<ConfigOutcome> per_config;
  double tuning_time = 0.0;       ///< exhaustive-search time with critter
  double full_time = 0.0;         ///< exhaustive search with full execution
  double kernel_time = 0.0;       ///< selective max kernel comp time, summed
  double full_kernel_time = 0.0;  ///< same for the full executions

  // --- effective sweep execution (see TuneOptions::workers) ---
  SweepMode mode = SweepMode::Serial;
  int requested_workers = 1;
  int effective_workers = 1;
  int batch = 0;               ///< batch size used (batch-shared sweeps)
  int evaluated_configs = 0;   ///< configurations actually evaluated
  /// Non-empty when fewer workers engaged than requested, with the reason.
  std::string fallback_reason;
  /// Final persistent statistics of serial and batch-shared sweeps (empty
  /// for isolated sweeps, whose statistics die with each configuration).
  /// Persist with StatSnapshot::save_file and warm-start a later sweep.
  core::StatSnapshot stats;

  // Aggregates below consider evaluated configurations only.
  double mean_err() const;
  double mean_log2_err() const;       ///< Fig 4e/4f/5e/5f y-axis
  double mean_log2_comp_err() const;  ///< Fig 4d/5d y-axis
  int best_predicted() const;
  int best_true() const;
  /// true_time(best_true) / true_time(best_predicted): 1.0 == optimal pick.
  double selection_quality() const;
};

TuneResult run_study(const Study& study, const TuneOptions& opt);

/// One fully-instrumented full execution of a configuration (no skipping):
/// the measurement backing the Fig. 3 cost/time panels.  Routed through the
/// Evaluator's reference-execution path.
Report measure_config(const Study& study, const Configuration& cfg,
                      std::uint64_t seed_salt = 0, double noise = 0.08);

}  // namespace critter::tune
