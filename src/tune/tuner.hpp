// Autotuner accelerated by critter's selective execution (paper §VI).
//
// Public facade of the tuning subsystem, which is layered as (tune/sweep.hpp
// has the batch executor, tune/evaluator.hpp the per-configuration protocol,
// tune/strategy.hpp the search-strategy registry, tune/workload.hpp the
// workload registry and studies, tune/param_space.hpp the generic
// configuration model):
//
//   SearchStrategy  — which configurations to evaluate, in which batches;
//                     string-named factories in a registry ("exhaustive",
//                     "random-subset", "ci-discard", "halving", plus
//                     user-registered ones);
//   Evaluator       — one configuration's protocol: optional a-priori
//                     instrumented pass, one full reference execution, then
//                     up to `samples` selective executions;
//   SweepDriver     — executes one strategy batch in the planned mode:
//                     serial, isolated-parallel (per-configuration
//                     statistics reset), or batch-shared-parallel (workers
//                     evaluate a batch against a shared statistics snapshot
//                     and their deltas merge in configuration order);
//   Tuner           — the stateful ask/tell session over all of the above:
//                     ask() yields a batch, evaluate() runs it, tell()
//                     feeds outcomes back, export_state()/import_state()
//                     move the shared statistics across processes.
//
// run_study() is a thin loop over a Tuner session (bit-identical to the
// pre-session sweep, asserted in tests); merge_shards() fans a sweep across
// independent session shards and merges their statistics deterministically.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "core/stat_store.hpp"
#include "tune/workload.hpp"

namespace critter::tune {

class SearchStrategy;
class SweepDriver;
struct EvalControl;

/// One configuration's contribution to the sweep-wide totals.  Kept per
/// configuration and reduced in index order at the end so every sweep mode
/// produces bit-identical TuneResults.
struct ConfigTotals {
  double tuning_time = 0.0;
  double full_time = 0.0;
  double kernel_time = 0.0;
  double full_kernel_time = 0.0;
};

/// How the sweep actually executed (recorded in TuneResult so drivers can
/// surface the effective mode instead of silently degrading).
enum class SweepMode : std::uint8_t {
  Serial,            ///< one store, configurations in sequence
  ParallelIsolated,  ///< per-configuration stores, statistics reset
  BatchShared,       ///< batch-synchronous shared-statistics sweep
};

const char* sweep_mode_name(SweepMode m);

struct TuneOptions {
  Policy policy = Policy::ConditionalExecution;
  double tolerance = 0.25;
  int samples = 3;
  /// Reset kernel statistics between configurations (paper: on for SLATE
  /// and CANDMC, off for Capital; never honored for eager propagation).
  bool reset_per_config = false;
  std::uint64_t seed_salt = 0;
  double comp_noise = 0.08;
  double comm_noise = 0.08;
  /// Internal-message ~K capacity (profiling-overhead ablation knob).
  int tilde_capacity = 256;
  /// Enable the §VIII cross-size kernel-model extrapolation extension.
  bool extrapolate = false;
  /// Evaluate configurations on a work-stealing pool of this many workers.
  /// Sweeps whose configurations are statistically isolated
  /// (`reset_per_config`, non-eager, non-extrapolate) parallelize
  /// bit-identically to the serial sweep.  Sweeps that share statistics
  /// across configurations (eager propagation, persistent-stats sweeps,
  /// extrapolation) run batch-synchronously: workers evaluate a batch
  /// against a shared statistics snapshot and merge their deltas in
  /// configuration order at a barrier, so results are deterministic for a
  /// given (seed, batch size) regardless of worker count.  The effective
  /// mode is recorded in TuneResult.
  int workers = 1;
  /// Batch size of the batch-shared sweep (0: use `workers`).  Also forces
  /// the batch-shared path when set on a shared-statistics sweep with
  /// workers == 1, which is how a single-worker run reproduces a
  /// multi-worker run exactly.
  int batch = 0;
  /// Search strategy: a registry name plus a string option map (see
  /// tune/strategy.hpp).  Built-ins: "exhaustive" (the paper's protocol),
  /// "random-subset" (count=N), "ci-discard" (margin=X), "halving"
  /// (eta=N,min-samples=N).  User code may register more.
  std::string strategy = "exhaustive";
  std::map<std::string, std::string> strategy_options;
  /// Restrict the sweep to configurations [config_begin, config_end)
  /// (config_end < 0: to the end).  Noise salts stay indexed by absolute
  /// configuration index, so a sweep split into ranges — e.g. interrupted
  /// and warm-started, or sharded via merge_shards() — reproduces the
  /// uninterrupted sweep exactly when configurations are statistically
  /// isolated.
  int config_begin = 0;
  int config_end = -1;
  /// Warm-start statistics (typically a previous sweep's
  /// TuneResult::stats round-tripped through StatSnapshot::save/load).
  /// Honored by serial and batch-shared sweeps; isolated-parallel sweeps
  /// reset statistics per configuration and ignore it.  Consumed at Tuner
  /// construction (equivalent to import_state before the first ask).
  const core::StatSnapshot* warm_start = nullptr;
  /// Prior snapshot feeding model-based strategies ("copula-transfer",
  /// and anything user-registered that overrides ingest_prior): loaded
  /// from `prior_file` at Tuner construction (StatSnapshot::load errors
  /// propagate — a named-but-unreadable prior is never silently ignored)
  /// or supplied in-memory via `prior`; when neither is set, warm_start
  /// doubles as the prior.  Unlike warm_start, the prior does NOT seed the
  /// sweep's kernel statistics — it only informs the search model; combine
  /// both to get the paper-exact warm-start behavior plus a model prior.
  std::string prior_file;
  const core::StatSnapshot* prior = nullptr;
};

struct ConfigOutcome {
  Configuration config;
  double true_time = 0.0;       ///< mean uninstrumented execution time
  double pred_time = 0.0;       ///< mean modeled (selective) execution time
  double err = 0.0;             ///< mean relative execution-time error
  double true_comp_time = 0.0;  ///< critical-path computation time (full)
  double pred_comp_time = 0.0;
  double comp_err = 0.0;
  double sel_wall = 0.0;         ///< selective wall time (summed samples)
  double sel_kernel_time = 0.0;  ///< max-over-ranks executed kernel time
  std::int64_t executed = 0;
  std::int64_t skipped = 0;
  bool evaluated = false;  ///< false: skipped by the search strategy
  bool pruned = false;     ///< CI early-discard abandoned later samples
  int samples_used = 0;
};

/// Wall-clock seconds a tuning session spent per phase — the cost
/// attribution the observability layer surfaces (DESIGN.md §14).  Sharded
/// results sum their shards' breakdowns (total CPU seconds, not elapsed
/// wall time).  Timing metadata only: non-deterministic across runs and
/// excluded from every bit-identity contract — nothing may branch on it.
struct PhaseTimes {
  double ask = 0.0;         ///< strategy batch selection
  double evaluate = 0.0;    ///< simulated evaluation (the sweep itself)
  double tell = 0.0;        ///< outcome feedback + strategy observation
  double exchange = 0.0;    ///< dist only: publishing/absorbing peer deltas
  double checkpoint = 0.0;  ///< dist only: checkpoint build + publish
  double total() const { return ask + evaluate + tell + exchange + checkpoint; }
};

/// One shard's fault-recovery record from a distributed run — filled by
/// dist::run_sharded() from the executor's ShardResults (all-zero entries
/// for executors that cannot fault, e.g. in-process shards).
struct ShardRecovery {
  int shard = 0;
  int retries = 0;          ///< relaunches consumed
  bool recovered = false;   ///< completed after >= 1 relaunch
  bool degraded = false;    ///< completed by the launcher's fallback
  int exchange_skips = 0;   ///< non-strict exchange rounds skipped
  int checkpoints = 0;      ///< checkpoints the final worker published
  int resumed_batches = 0;  ///< batches replayed from a resume checkpoint
  std::string last_failure;
};

struct TuneResult {
  std::vector<ConfigOutcome> per_config;
  /// Per-configuration contributions to the aggregate costs below, indexed
  /// like per_config.  merge_shards() re-reduces these in configuration
  /// order, so its aggregates are bit-identical to an unsharded sweep's.
  std::vector<ConfigTotals> per_config_totals;
  double tuning_time = 0.0;       ///< exhaustive-search time with critter
  double full_time = 0.0;         ///< exhaustive search with full execution
  double kernel_time = 0.0;       ///< selective max kernel comp time, summed
  double full_kernel_time = 0.0;  ///< same for the full executions

  // --- effective sweep execution (see TuneOptions::workers) ---
  SweepMode mode = SweepMode::Serial;
  std::string strategy;  ///< search strategy that drove the sweep
  int requested_workers = 1;
  int effective_workers = 1;
  int batch = 0;               ///< batch size used (batch-shared sweeps)
  int shards = 0;              ///< >0 when produced by a sharded run
  /// Executor a sharded run used ("in-process" / "subprocess"; empty for
  /// unsharded sweeps) and its mid-sweep exchange schedule: the interval in
  /// batches (0 = final-fold only) and the total delta-publish rounds the
  /// shards performed.
  std::string executor;
  int exchange_every = 0;
  int exchange_rounds = 0;
  /// Exchange payload bytes the shards moved through the shared store
  /// (sparse deltas + live peer reads; zero for executors without wire
  /// accounting, e.g. in-process shards) — divide by exchange_rounds for
  /// the per-round transport cost the sparse codec is shrinking.
  std::int64_t exchange_bytes = 0;
  /// Exchange semantics of a sharded run (see dist::ExchangePolicy::strict)
  /// and the fleet-wide count of non-strict rounds skipped.
  bool exchange_strict = true;
  int exchange_skips = 0;
  /// Per-shard fault-recovery records of a sharded run (empty otherwise).
  std::vector<ShardRecovery> shard_recovery;
  /// Where the session's wall time went (summed across shards for sharded
  /// runs); printed by the examples.  See PhaseTimes for the contract.
  PhaseTimes phases;
  int evaluated_configs = 0;   ///< configurations actually evaluated
  /// Non-empty when fewer workers engaged than requested, with the reason.
  std::string fallback_reason;
  /// Final persistent statistics of serial and batch-shared sweeps (empty
  /// for isolated sweeps, whose statistics die with each configuration).
  /// Persist with StatSnapshot::save_file and warm-start a later sweep.
  core::StatSnapshot stats;

  // Aggregates below consider evaluated configurations only.
  double mean_err() const;
  double mean_log2_err() const;       ///< Fig 4e/4f/5e/5f y-axis
  double mean_log2_comp_err() const;  ///< Fig 4d/5d y-axis
  int best_predicted() const;
  int best_true() const;
  /// true_time(best_true) / true_time(best_predicted): 1.0 == optimal pick.
  double selection_quality() const;
};

/// A stateful ask/tell tuning session: the incremental form of run_study.
///
///   Tuner session(study, opt);
///   while (!session.done()) {
///     auto batch = session.ask();               // claim a batch
///     auto outcomes = session.evaluate(batch);  // run it (or measure
///     session.tell(outcomes);                   //  externally) and report
///   }
///   TuneResult r = session.result();
///
/// step() bundles one ask/evaluate/tell round.  The session owns the shared
/// statistics (the serial store or the batch-shared snapshot);
/// export_state()/import_state() move them across processes so interrupted,
/// warm-started, and sharded sweeps are first-class.  The study and options
/// are copied in, so the session may outlive both.
class Tuner {
 public:
  Tuner(const Study& study, const TuneOptions& opt);
  ~Tuner();
  Tuner(const Tuner&) = delete;
  Tuner& operator=(const Tuner&) = delete;

  /// Claim the next batch of configuration indices from the strategy (and
  /// snapshot its evaluation hints).  Empty when the search is finished.
  /// The previous batch must have been tell()'d first.
  std::vector<int> ask();

  /// Evaluate the claimed batch in the planned sweep mode, merging its
  /// statistics into the session state, and return its outcomes in batch
  /// order.  Does not feed the strategy — follow with tell().
  std::vector<ConfigOutcome> evaluate(const std::vector<int>& batch);

  /// Report the claimed batch's outcomes (from evaluate() or an external
  /// measurement), in batch order; the strategy observes them in
  /// configuration order.  Externally produced outcomes contribute no
  /// kernel statistics — only evaluate() grows the shared state.
  void tell(const std::vector<ConfigOutcome>& outcomes);

  /// The remote form of evaluate()+tell(): report a claimed batch that a
  /// *mirror* evaluator ran elsewhere (a SweepDriver seeded with this
  /// session's export_state() and fed this session's control()), together
  /// with the mirror's FULL post-evaluation statistics and the per-entry
  /// totals contributions, in batch order.  The mirror's state *replaces*
  /// this session's — the mirror started from exactly the statistics ask()
  /// exposed, and only one batch is ever outstanding, so its post-run state
  /// IS the state a local evaluate() would have left.  Replacement (not a
  /// diff/merge round trip, which is only a float-algebraic identity, not a
  /// bitwise one) is what makes daemon-mediated tuning bit-reproduce the
  /// in-process sweep (DESIGN.md §12.3).  Then tells the outcomes.
  void tell_evaluated(const std::vector<ConfigOutcome>& outcomes,
                      const core::StatSnapshot& state,
                      const std::vector<ConfigTotals>& batch_totals);

  /// Evaluation hints the last ask() snapshotted for the claimed batch —
  /// what a remote evaluator needs to mirror evaluate() exactly.
  const EvalControl& control() const;

  /// One ask/evaluate/tell round; false when the search was exhausted.
  bool step();

  /// True once ask() returned an empty batch.
  bool done() const { return done_; }

  /// Current shared statistics (empty snapshot in isolated mode).
  core::StatSnapshot export_state() const;

  /// Seed the shared statistics (warm start / sharded resume).  Only legal
  /// before the first ask(); isolated-parallel sessions ignore the
  /// snapshot (they have no shared statistics to seed — the documented
  /// warm_start contract).
  void import_state(const core::StatSnapshot& snap);

  /// Fold a peer's statistics delta into the session mid-sweep — the
  /// distributed executors' periodic-exchange hook.  Legal between tell()
  /// and the next ask() (never with a batch claimed: the claimed batch's
  /// evaluation must be a pure function of the statistics ask() saw).
  /// Isolated sessions ignore it, like import_state().
  void merge_state(const core::StatSnapshot& delta);

  /// Checkpoint-replay half of merge_state(): feed a historical exchange
  /// delta to the strategy's prior ingestion WITHOUT folding it into the
  /// session statistics.  A resumed session restores its statistics
  /// wholesale via import_state() (which already contains every absorbed
  /// peer), so replaying the strategy's view must not double-count them.
  /// Same claimed-batch restriction as merge_state().
  void replay_exchange(const core::StatSnapshot& delta);

  /// Overwrite the accumulated per-configuration totals (indexed like the
  /// study's configuration list).  Checkpoint resume needs this: replayed
  /// tell()s rebuild outcomes and strategy state but carry no totals —
  /// those only grow through evaluate().
  void restore_totals(std::vector<ConfigTotals> totals);

  /// The accumulated per-configuration totals (what restore_totals sets
  /// and result() reduces) — the dist layer checkpoints these.
  const std::vector<ConfigTotals>& totals() const { return totals_; }

  const Study& study() const { return study_; }
  const TuneOptions& options() const { return opt_; }
  SweepMode mode() const;
  int config_begin() const;
  int config_end() const;

  /// Assemble the TuneResult from the outcomes observed so far (callable
  /// mid-session for a partial view).
  TuneResult result() const;

 private:
  Study study_;
  TuneOptions opt_;
  std::unique_ptr<SweepDriver> driver_;
  std::unique_ptr<SearchStrategy> strategy_;
  std::unique_ptr<EvalControl> control_;  ///< hints for the claimed batch
  std::vector<ConfigOutcome> per_config_;
  std::vector<ConfigTotals> totals_;
  PhaseTimes phases_;           ///< accumulated by ask/evaluate/tell
  std::vector<int> pending_;    ///< claimed, not yet told
  bool asked_ = false;          ///< a batch is claimed
  bool evaluated_ = false;      ///< the claimed batch was evaluated
  bool started_ = false;        ///< first ask() happened
  bool done_ = false;
};

TuneResult run_study(const Study& study, const TuneOptions& opt);

/// Fan the sweep range across `nshards` contiguous shards, run each as an
/// independent Tuner session, and fold the results: outcomes and totals
/// combine, and the shards' statistics snapshots merge in shard order (a
/// deterministic fold — see core/stat_store.hpp's merge contract).  Each
/// shard applies the options (workers, strategy) to its own sub-range.
///
/// When configurations are statistically isolated (reset_per_config,
/// non-eager, non-extrapolate) the combined outcomes are bit-identical to
/// the unsharded sweep.  Shared-statistics sweeps trade that identity for
/// shard independence — each shard grows its own statistics, exactly as
/// separate processes would — and the merged snapshot is still a
/// deterministic function of (study, options, nshards).
///
/// This facade runs the shards sequentially in-process with no mid-sweep
/// exchange; dist/executor.hpp's run_sharded() is the general form — pick
/// an executor (in-process, optionally thread-parallel across shards, or
/// one worker process per shard) and a periodic-exchange interval, with
/// this exact fold as its exchange-off behavior.
TuneResult merge_shards(const Study& study, const TuneOptions& opt,
                        int nshards);

/// One fully-instrumented full execution of a configuration (no skipping):
/// the measurement backing the Fig. 3 cost/time panels.  Routed through the
/// Evaluator's reference-execution path.
Report measure_config(const Study& study, const Configuration& cfg,
                      std::uint64_t seed_salt = 0, double noise = 0.08);

/// Human-readable listing of both registries — the registered workloads
/// and search strategies with their one-line summaries.  The examples
/// print this on --help.
std::string registry_help();

}  // namespace critter::tune
