// Exhaustive-search autotuner accelerated by critter's selective execution
// (paper §VI).
//
// Protocol per (policy, tolerance):
//   for each configuration:
//     * optionally reset all kernel statistics (paper: SLATE and CANDMC);
//     * a-priori propagation first runs the configuration once fully
//       instrumented to record critical-path kernel counts (that extra run
//       is charged to the tuning time, as in the paper);
//     * for each sample: one uninstrumented full execution (the "full
//       execution directly prior" used as the error reference — not charged
//       to tuning time) followed by one selective execution (charged).
//
// All runs share one profiler Store, so kernel statistics persist across
// samples (and across configurations unless reset — which is what the
// eager policy exploits).
#pragma once

#include "tune/config_space.hpp"

namespace critter::tune {

struct TuneOptions {
  Policy policy = Policy::ConditionalExecution;
  double tolerance = 0.25;
  int samples = 3;
  /// Reset kernel statistics between configurations (paper: on for SLATE
  /// and CANDMC, off for Capital; never for eager propagation).
  bool reset_per_config = false;
  std::uint64_t seed_salt = 0;
  double comp_noise = 0.08;
  double comm_noise = 0.08;
  /// Internal-message ~K capacity (profiling-overhead ablation knob).
  int tilde_capacity = 256;
  /// Enable the SVIII cross-size kernel-model extrapolation extension.
  bool extrapolate = false;
  /// Evaluate configurations on a work-stealing pool of this many workers.
  /// Parallel evaluation requires per-configuration statistics isolation,
  /// so it engages only when `reset_per_config` is set and the policy keeps
  /// no cross-configuration state (not eager propagation, not extrapolate);
  /// otherwise the sweep silently falls back to serial.  Results are
  /// bit-identical to the serial sweep by construction: each worker owns an
  /// independent Engine + Store, noise salts are assigned per configuration
  /// index, and totals reduce in configuration order.
  int workers = 1;
};

struct ConfigOutcome {
  Configuration config;
  double true_time = 0.0;       ///< mean uninstrumented execution time
  double pred_time = 0.0;       ///< mean modeled (selective) execution time
  double err = 0.0;             ///< mean relative execution-time error
  double true_comp_time = 0.0;  ///< critical-path computation time (full)
  double pred_comp_time = 0.0;
  double comp_err = 0.0;
  double sel_wall = 0.0;         ///< selective wall time (summed samples)
  double sel_kernel_time = 0.0;  ///< max-over-ranks executed kernel time
  std::int64_t executed = 0;
  std::int64_t skipped = 0;
};

struct TuneResult {
  std::vector<ConfigOutcome> per_config;
  double tuning_time = 0.0;       ///< exhaustive-search time with critter
  double full_time = 0.0;         ///< exhaustive search with full execution
  double kernel_time = 0.0;       ///< selective max kernel comp time, summed
  double full_kernel_time = 0.0;  ///< same for the full executions

  double mean_err() const;
  double mean_log2_err() const;       ///< Fig 4e/4f/5e/5f y-axis
  double mean_log2_comp_err() const;  ///< Fig 4d/5d y-axis
  int best_predicted() const;
  int best_true() const;
  /// true_time(best_true) / true_time(best_predicted): 1.0 == optimal pick.
  double selection_quality() const;
};

TuneResult run_study(const Study& study, const TuneOptions& opt);

/// One fully-instrumented full execution of a configuration (no skipping):
/// the measurement backing the Fig. 3 cost/time panels.
Report measure_config(const Study& study, const Configuration& cfg,
                      std::uint64_t seed_salt = 0, double noise = 0.08);

}  // namespace critter::tune
