#include "tune/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace critter::tune {

namespace {

sim::Machine make_machine(const Study& study, double comp_noise,
                          double comm_noise) {
  sim::Machine m = sim::Machine::knl_like();
  m.gamma = study.gamma;
  m.comp_noise = comp_noise;
  m.comm_noise = comm_noise;
  return m;
}

}  // namespace

Evaluator::Evaluator(const Study& study, const TuneOptions& opt)
    : study_(study), opt_(opt),
      machine_(make_machine(study, opt.comp_noise, opt.comm_noise)) {}

std::uint64_t Evaluator::salts_per_config() const {
  return (opt_.policy == Policy::AprioriPropagation ? 1 : 0) + 1 +
         static_cast<std::uint64_t>(opt_.samples);
}

std::uint64_t Evaluator::salt_for(int index) const {
  return util::hash_combine(opt_.seed_salt, 0xA0700) +
         static_cast<std::uint64_t>(index) * salts_per_config();
}

/// Run one configuration under the store's current profiler settings.
Report Evaluator::one_run(Store& store, const Configuration& cfg,
                          std::uint64_t salt) const {
  sim::Engine eng(study_.nranks, machine_, salt);
  Report rep;
  eng.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    run_configuration(study_, cfg);  // dispatches to study.runner
    Report r = critter::stop();
    if (ctx.rank == 0) rep = r;
  });
  return rep;
}

Report Evaluator::full_reference(const Configuration& cfg,
                                 std::uint64_t salt) const {
  // Fully instrumented (so critical-path metrics exist) but against a
  // throwaway store, so its samples do not leak into the policy's
  // statistics.  Its critical-path exec_time is the application time along
  // the critical path, free of profiling overhead.
  Config ref_cfg;
  ref_cfg.mode = ExecMode::Model;
  ref_cfg.selective = false;
  Store ref_store(study_.nranks, ref_cfg);
  return one_run(ref_store, cfg, salt);
}

ConfigOutcome Evaluator::evaluate(Store& store, int index, ConfigTotals* tot,
                                  const EvalControl& ctl,
                                  Report* ref_cache) const {
  const Configuration& cfg = study_.configs.at(index);
  std::uint64_t salt = salt_for(index);
  ConfigOutcome oc;
  oc.config = cfg;
  oc.evaluated = true;

  if (opt_.policy == Policy::AprioriPropagation) {
    // offline instrumented full pass to record critical-path counts;
    // charged to the tuning time (the paper's a-priori overhead)
    store.new_epoch();
    store.config().selective = false;
    Report offline = one_run(store, cfg, ++salt);
    store.set_apriori_from_last_run();
    store.config().selective = true;
    tot->tuning_time += offline.wall_time;
  }

  // One full execution per configuration is the error reference.  (The
  // paper pairs every approximated sample with a full execution; we
  // amortize one reference across the samples to keep benches fast and
  // charge the full-execution baseline `samples` times for a fair
  // comparison.)  The salt is consumed whether the report comes from the
  // cache or a fresh simulation, so the selective samples below draw
  // identical noise either way.
  ++salt;
  Report full;
  if (ref_cache != nullptr && ref_cache->p > 0) {
    full = *ref_cache;
  } else {
    full = full_reference(cfg, salt);
    if (ref_cache != nullptr) *ref_cache = full;
  }

  // Running moments of the per-sample predicted time for the CI discard.
  core::KernelStats pred;
  const double z = core::normal_quantile_two_sided(Config{}.confidence);

  // A strategy may lower this batch's sample budget (successive halving's
  // early rungs); the options' budget still sizes the salt block, so a
  // later full-budget evaluation replays these samples and extends them.
  const int nsamples = ctl.samples_override > 0
                           ? std::min(ctl.samples_override, opt_.samples)
                           : opt_.samples;

  for (int s = 0; s < nsamples; ++s) {
    store.new_epoch();
    Report sel = one_run(store, cfg, ++salt);
    ++oc.samples_used;

    const double true_time = full.critical.exec_time;
    oc.true_time = true_time;
    oc.pred_time += sel.critical.exec_time;
    oc.err += std::abs(sel.critical.exec_time - true_time) /
              std::max(true_time, 1e-300);
    oc.true_comp_time = full.critical.comp_time;
    oc.pred_comp_time += sel.critical.comp_time;
    oc.comp_err +=
        std::abs(sel.critical.comp_time - full.critical.comp_time) /
        std::max(full.critical.comp_time, 1e-300);
    oc.sel_wall += sel.wall_time;
    oc.sel_kernel_time += sel.max_kernel_comp_time;
    oc.executed += sel.executed;
    oc.skipped += sel.skipped;

    tot->tuning_time += sel.wall_time;
    tot->full_time += full.critical.exec_time;  // once per sample
    tot->kernel_time += sel.max_kernel_comp_time;
    tot->full_kernel_time += full.max_modeled_comp_time;

    // CI-based early discard: abandon the remaining samples once the
    // predicted-time confidence interval lies entirely above the incumbent
    // (plus slack).  The incumbent is fixed for the whole batch, so the
    // decision is deterministic regardless of worker count.
    pred.add_sample(sel.critical.exec_time);
    if (ctl.early_discard && s + 1 < nsamples && pred.n >= 2 &&
        std::isfinite(ctl.incumbent_pred)) {
      const double se =
          std::sqrt(pred.variance() / static_cast<double>(pred.n));
      if (pred.mean - z * se > ctl.incumbent_pred * (1.0 + ctl.margin)) {
        oc.pruned = true;
        break;
      }
    }
  }
  const double inv = 1.0 / oc.samples_used;
  oc.pred_time *= inv;
  oc.err *= inv;
  oc.pred_comp_time *= inv;
  oc.comp_err *= inv;
  return oc;
}

}  // namespace critter::tune
