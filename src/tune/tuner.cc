#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace critter::tune {

namespace {

sim::Machine make_machine(const Study& study, double comp_noise,
                          double comm_noise) {
  sim::Machine m = sim::Machine::knl_like();
  m.gamma = study.gamma;
  m.comp_noise = comp_noise;
  m.comm_noise = comm_noise;
  return m;
}

/// Run one configuration under the store's current profiler settings.
Report one_run(Store& store, const Study& study, const Configuration& cfg,
               const sim::Machine& machine, std::uint64_t salt) {
  sim::Engine eng(study.nranks, machine, salt);
  Report rep;
  eng.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    run_configuration(study, cfg);
    Report r = critter::stop();
    if (ctx.rank == 0) rep = r;
  });
  return rep;
}

/// One configuration's contribution to the sweep-wide totals.  Kept per
/// configuration and reduced in index order at the end so the serial and
/// thread-pooled sweeps produce bit-identical TuneResults.
struct ConfigTotals {
  double tuning_time = 0.0;
  double full_time = 0.0;
  double kernel_time = 0.0;
  double full_kernel_time = 0.0;
};

/// Number of noise salts one configuration consumes; fixed per options so
/// configuration i's salts can be assigned analytically (the serial sweep's
/// running ++salt yields exactly base + i * salts_per_config + k).
std::uint64_t salts_per_config(const TuneOptions& opt) {
  return (opt.policy == Policy::AprioriPropagation ? 1 : 0) + 1 +
         static_cast<std::uint64_t>(opt.samples);
}

/// The per-configuration protocol (see file header): optional a-priori
/// offline pass, one full reference execution, `samples` selective runs.
ConfigOutcome run_one_config(const Study& study, const TuneOptions& opt,
                             const sim::Machine& machine, Store& store,
                             const Configuration& cfg, std::uint64_t salt,
                             ConfigTotals* tot) {
  ConfigOutcome oc;
  oc.config = cfg;

  if (opt.policy == Policy::AprioriPropagation) {
    // offline instrumented full pass to record critical-path counts;
    // charged to the tuning time (the paper's a-priori overhead)
    store.new_epoch();
    store.config().selective = false;
    Report offline = one_run(store, study, cfg, machine, ++salt);
    store.set_apriori_from_last_run();
    store.config().selective = true;
    tot->tuning_time += offline.wall_time;
  }

  // One full execution per configuration is the error reference.  It
  // runs fully instrumented (so critical-path metrics exist) but against
  // a throwaway store, so its samples do not leak into the policy's
  // statistics.  Its critical-path exec_time is the application time
  // along the critical path, free of profiling overhead.  (The paper
  // pairs every approximated sample with a full execution; we amortize
  // one reference across the samples to keep benches fast and charge the
  // full-execution baseline `samples` times for a fair comparison.)
  Config ref_cfg;
  ref_cfg.mode = ExecMode::Model;
  ref_cfg.selective = false;
  Store ref_store(study.nranks, ref_cfg);
  Report full = one_run(ref_store, study, cfg, machine, ++salt);

  for (int s = 0; s < opt.samples; ++s) {
    store.new_epoch();
    Report sel = one_run(store, study, cfg, machine, ++salt);

    const double true_time = full.critical.exec_time;
    oc.true_time = true_time;
    oc.pred_time += sel.critical.exec_time;
    oc.err += std::abs(sel.critical.exec_time - true_time) /
              std::max(true_time, 1e-300);
    oc.true_comp_time = full.critical.comp_time;
    oc.pred_comp_time += sel.critical.comp_time;
    oc.comp_err +=
        std::abs(sel.critical.comp_time - full.critical.comp_time) /
        std::max(full.critical.comp_time, 1e-300);
    oc.sel_wall += sel.wall_time;
    oc.sel_kernel_time += sel.max_kernel_comp_time;
    oc.executed += sel.executed;
    oc.skipped += sel.skipped;

    tot->tuning_time += sel.wall_time;
    tot->full_time += full.critical.exec_time;  // once per sample
    tot->kernel_time += sel.max_kernel_comp_time;
    tot->full_kernel_time += full.max_modeled_comp_time;
  }
  const double inv = 1.0 / opt.samples;
  oc.pred_time *= inv;
  oc.err *= inv;
  oc.pred_comp_time *= inv;
  oc.comp_err *= inv;
  return oc;
}

}  // namespace

double TuneResult::mean_err() const {
  double s = 0;
  for (const auto& c : per_config) s += c.err;
  return per_config.empty() ? 0.0 : s / per_config.size();
}

double TuneResult::mean_log2_err() const {
  double s = 0;
  for (const auto& c : per_config) s += std::log2(std::max(c.err, 1e-4));
  return per_config.empty() ? 0.0 : s / per_config.size();
}

double TuneResult::mean_log2_comp_err() const {
  double s = 0;
  for (const auto& c : per_config) s += std::log2(std::max(c.comp_err, 1e-4));
  return per_config.empty() ? 0.0 : s / per_config.size();
}

int TuneResult::best_predicted() const {
  int best = 0;
  for (std::size_t i = 1; i < per_config.size(); ++i)
    if (per_config[i].pred_time < per_config[best].pred_time)
      best = static_cast<int>(i);
  return best;
}

int TuneResult::best_true() const {
  int best = 0;
  for (std::size_t i = 1; i < per_config.size(); ++i)
    if (per_config[i].true_time < per_config[best].true_time)
      best = static_cast<int>(i);
  return best;
}

double TuneResult::selection_quality() const {
  if (per_config.empty()) return 1.0;
  return per_config[best_true()].true_time /
         per_config[best_predicted()].true_time;
}

Report measure_config(const Study& study, const Configuration& cfg,
                      std::uint64_t seed_salt, double noise) {
  Config pc;
  pc.mode = ExecMode::Model;
  pc.selective = false;
  Store store(study.nranks, pc);
  return one_run(store, study, cfg, make_machine(study, noise, noise), seed_salt);
}

TuneResult run_study(const Study& study, const TuneOptions& opt) {
  const sim::Machine machine = make_machine(study, opt.comp_noise, opt.comm_noise);
  const int nconf = static_cast<int>(study.configs.size());

  Config pc;
  pc.mode = ExecMode::Model;
  pc.policy = opt.policy;
  pc.tolerance = opt.tolerance;
  pc.tilde_capacity = opt.tilde_capacity;
  pc.extrapolate = opt.extrapolate;

  // Parallel evaluation needs per-configuration isolation: statistics reset
  // between configurations and no policy state carried across them.  Eager
  // propagation (never reset) and the extrapolation size model (survives
  // reset_statistics) are semantically sequential, so they stay serial.
  const bool reset =
      opt.reset_per_config && opt.policy != Policy::EagerPropagation;
  const bool parallel =
      opt.workers > 1 && reset && !opt.extrapolate && nconf > 1;

  std::vector<ConfigOutcome> outcomes(nconf);
  std::vector<ConfigTotals> totals(nconf);
  const std::uint64_t salt0 = util::hash_combine(opt.seed_salt, 0xA0700);
  const std::uint64_t per_cfg = salts_per_config(opt);

  if (parallel) {
    // Each worker task owns an independent Store (identical to a freshly
    // reset one: reset_statistics clears exactly the state a new Store
    // lacks), so configurations evaluate concurrently yet bit-identically.
    util::ThreadPool pool(opt.workers);
    pool.parallel_for(nconf, [&](int i) {
      Store store(study.nranks, pc);
      outcomes[i] =
          run_one_config(study, opt, machine, store, study.configs[i],
                         salt0 + static_cast<std::uint64_t>(i) * per_cfg,
                         &totals[i]);
    });
  } else {
    Store store(study.nranks, pc);
    for (int i = 0; i < nconf; ++i) {
      if (reset) store.reset_statistics();
      outcomes[i] =
          run_one_config(study, opt, machine, store, study.configs[i],
                         salt0 + static_cast<std::uint64_t>(i) * per_cfg,
                         &totals[i]);
    }
  }

  TuneResult out;
  out.per_config = std::move(outcomes);
  for (const ConfigTotals& t : totals) {
    out.tuning_time += t.tuning_time;
    out.full_time += t.full_time;
    out.kernel_time += t.kernel_time;
    out.full_kernel_time += t.full_kernel_time;
  }
  return out;
}

}  // namespace critter::tune
