#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "tune/evaluator.hpp"
#include "tune/strategy.hpp"
#include "tune/sweep.hpp"

namespace critter::tune {

double TuneResult::mean_err() const {
  double s = 0;
  int n = 0;
  for (const auto& c : per_config)
    if (c.evaluated) {
      s += c.err;
      ++n;
    }
  return n == 0 ? 0.0 : s / n;
}

double TuneResult::mean_log2_err() const {
  double s = 0;
  int n = 0;
  for (const auto& c : per_config)
    if (c.evaluated) {
      s += std::log2(std::max(c.err, 1e-4));
      ++n;
    }
  return n == 0 ? 0.0 : s / n;
}

double TuneResult::mean_log2_comp_err() const {
  double s = 0;
  int n = 0;
  for (const auto& c : per_config)
    if (c.evaluated) {
      s += std::log2(std::max(c.comp_err, 1e-4));
      ++n;
    }
  return n == 0 ? 0.0 : s / n;
}

int TuneResult::best_predicted() const {
  int best = -1;
  for (std::size_t i = 0; i < per_config.size(); ++i) {
    if (!per_config[i].evaluated) continue;
    if (best < 0 || per_config[i].pred_time < per_config[best].pred_time)
      best = static_cast<int>(i);
  }
  return best < 0 ? 0 : best;
}

int TuneResult::best_true() const {
  int best = -1;
  for (std::size_t i = 0; i < per_config.size(); ++i) {
    if (!per_config[i].evaluated) continue;
    if (best < 0 || per_config[i].true_time < per_config[best].true_time)
      best = static_cast<int>(i);
  }
  return best < 0 ? 0 : best;
}

double TuneResult::selection_quality() const {
  if (evaluated_configs == 0) return 1.0;
  return per_config[best_true()].true_time /
         std::max(per_config[best_predicted()].true_time, 1e-300);
}

Report measure_config(const Study& study, const Configuration& cfg,
                      std::uint64_t seed_salt, double noise) {
  TuneOptions opt;
  opt.comp_noise = noise;
  opt.comm_noise = noise;
  return Evaluator(study, opt).full_reference(cfg, seed_salt);
}

TuneResult run_study(const Study& study, const TuneOptions& opt) {
  SweepDriver driver(study, opt);
  const std::unique_ptr<SearchStrategy> strategy =
      make_strategy(opt, driver.config_begin(), driver.config_end());
  return driver.run(*strategy);
}

}  // namespace critter::tune
