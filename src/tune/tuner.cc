#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/fsio.hpp"
#include "dist/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tune/evaluator.hpp"
#include "tune/strategy.hpp"
#include "tune/sweep.hpp"
#include "util/check.hpp"

namespace critter::tune {

double TuneResult::mean_err() const {
  double s = 0;
  int n = 0;
  for (const auto& c : per_config)
    if (c.evaluated) {
      s += c.err;
      ++n;
    }
  return n == 0 ? 0.0 : s / n;
}

double TuneResult::mean_log2_err() const {
  double s = 0;
  int n = 0;
  for (const auto& c : per_config)
    if (c.evaluated) {
      s += std::log2(std::max(c.err, 1e-4));
      ++n;
    }
  return n == 0 ? 0.0 : s / n;
}

double TuneResult::mean_log2_comp_err() const {
  double s = 0;
  int n = 0;
  for (const auto& c : per_config)
    if (c.evaluated) {
      s += std::log2(std::max(c.comp_err, 1e-4));
      ++n;
    }
  return n == 0 ? 0.0 : s / n;
}

int TuneResult::best_predicted() const {
  int best = -1;
  for (std::size_t i = 0; i < per_config.size(); ++i) {
    if (!per_config[i].evaluated) continue;
    if (best < 0 || per_config[i].pred_time < per_config[best].pred_time)
      best = static_cast<int>(i);
  }
  return best < 0 ? 0 : best;
}

int TuneResult::best_true() const {
  int best = -1;
  for (std::size_t i = 0; i < per_config.size(); ++i) {
    if (!per_config[i].evaluated) continue;
    if (best < 0 || per_config[i].true_time < per_config[best].true_time)
      best = static_cast<int>(i);
  }
  return best < 0 ? 0 : best;
}

double TuneResult::selection_quality() const {
  if (evaluated_configs == 0) return 1.0;
  return per_config[best_true()].true_time /
         std::max(per_config[best_predicted()].true_time, 1e-300);
}

Report measure_config(const Study& study, const Configuration& cfg,
                      std::uint64_t seed_salt, double noise) {
  TuneOptions opt;
  opt.comp_noise = noise;
  opt.comm_noise = noise;
  return Evaluator(study, opt).full_reference(cfg, seed_salt);
}

std::string registry_help() {
  std::ostringstream os;
  const WorkloadRegistry& workloads = WorkloadRegistry::instance();
  os << "registered workloads (--workload=NAME):\n";
  for (const std::string& name : workloads.names()) {
    os << "  " << name;
    for (std::size_t pad = name.size(); pad < 18; ++pad) os << ' ';
    os << ' ' << workloads.at(name).description() << '\n';
  }
  os << "registered strategies (--strategy=NAME[,key=val...]):\n";
  for (const std::string& name : strategy_names()) {
    os << "  " << name;
    for (std::size_t pad = name.size(); pad < 18; ++pad) os << ' ';
    os << ' ' << strategy_summary(name) << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Tuner: the ask/tell session
// ---------------------------------------------------------------------------

Tuner::Tuner(const Study& study, const TuneOptions& opt)
    : study_(study), opt_(opt) {
  driver_ = std::make_unique<SweepDriver>(study_, opt_);
  // Model prior: an explicit file or in-memory snapshot, else the warm
  // start doubles as one.  Delivered twice over: factories see it as
  // StrategyContext::prior (the copula factory's degradation decision),
  // and ingest_prior() feeds it before the first ask.  The pointer is
  // construction-scoped — strategies must not retain it — so no strategy
  // that ignores priors pays for a snapshot copy.  A named prior file
  // that is absent or corrupt fails here, exactly as StatSnapshot::load
  // would — never ignored.
  core::StatSnapshot loaded;
  const core::StatSnapshot* prior = nullptr;
  if (!opt_.prior_file.empty()) {
    loaded = core::StatSnapshot::load_file(opt_.prior_file);
    prior = &loaded;
  } else if (opt_.prior != nullptr) {
    prior = opt_.prior;
  } else if (opt_.warm_start != nullptr) {
    prior = opt_.warm_start;
  }
  strategy_ = make_strategy(
      opt_.strategy,
      StrategyContext{driver_->config_begin(), driver_->config_end(),
                      opt_.seed_salt, opt_.samples, &study_,
                      prior != nullptr && !prior->empty() ? prior : nullptr},
      opt_.strategy_options);
  if (prior != nullptr && !prior->empty()) strategy_->ingest_prior(*prior);
  opt_.prior = nullptr;  // consumed; never dereferenced after construction
  control_ = std::make_unique<EvalControl>();
  const int nconf = static_cast<int>(study_.configs.size());
  per_config_.resize(nconf);
  for (int i = 0; i < nconf; ++i) per_config_[i].config = study_.configs[i];
  totals_.resize(nconf);
  if (opt_.warm_start != nullptr) {
    import_state(*opt_.warm_start);
    opt_.warm_start = nullptr;  // consumed; the session owns a copy now
  }
}

Tuner::~Tuner() = default;

std::vector<int> Tuner::ask() {
  CRITTER_CHECK(!asked_, "previous batch has not been tell()'d yet");
  const double t0 = core::monotonic_s();
  started_ = true;
  if (done_) return {};
  // Per-strategy ask accounting: the registry keys counters by the
  // strategy name so a mixed fleet's snapshot attributes work correctly.
  obs::counter("tune.asks").add(1);
  obs::counter("tune.asks." + opt_.strategy).add(1);
  std::vector<int> batch = strategy_->next_batch(driver_->batch());
  if (batch.empty()) {
    done_ = true;
    return batch;
  }
  for (std::size_t k = 0; k < batch.size(); ++k) {
    CRITTER_CHECK(batch[k] >= driver_->config_begin() &&
                      batch[k] < driver_->config_end(),
                  "strategy proposed an index outside the sweep range");
    CRITTER_CHECK(k == 0 || batch[k - 1] < batch[k],
                  "strategy batches must be in ascending index order");
  }
  // Hints are sampled once per batch, so every worker of the batch sees
  // the same incumbent regardless of scheduling.
  *control_ = strategy_->control();
  pending_ = batch;
  asked_ = true;
  evaluated_ = false;
  phases_.ask += core::monotonic_s() - t0;
  return batch;
}

std::vector<ConfigOutcome> Tuner::evaluate(const std::vector<int>& batch) {
  CRITTER_CHECK(asked_ && batch == pending_,
                "evaluate() takes exactly the batch the last ask() returned");
  CRITTER_CHECK(!evaluated_,
                "the claimed batch was already evaluated; tell() it before "
                "asking again (re-evaluating would re-merge its statistics)");
  evaluated_ = true;
  const double t0 = core::monotonic_s();
  {
    obs::ScopedSpan span("tune.evaluate", "tune", "batch",
                         static_cast<std::uint64_t>(batch.size()));
    driver_->run_batch(batch, *control_, per_config_, totals_);
  }
  const double dt = core::monotonic_s() - t0;
  phases_.evaluate += dt;
  obs::counter("tune.evaluated").add(batch.size());
  obs::histogram("tune.batch_seconds").observe(dt);
  std::vector<ConfigOutcome> out;
  out.reserve(batch.size());
  for (int idx : batch) out.push_back(per_config_[idx]);
  return out;
}

void Tuner::tell(const std::vector<ConfigOutcome>& outcomes) {
  CRITTER_CHECK(asked_, "tell() without a claimed batch");
  CRITTER_CHECK(outcomes.size() == pending_.size(),
                "tell() outcome count does not match the claimed batch");
  // Accept outcomes in batch order (ascending position in study.configs —
  // a subset study's positions can differ from the configurations' space
  // indices), which is also the order the strategy observes them in.
  const double t0 = core::monotonic_s();
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    CRITTER_CHECK(
        outcomes[k].config.index == study_.configs[pending_[k]].index,
        "tell() outcomes must match the claimed batch order");
    per_config_[pending_[k]] = outcomes[k];
  }
  std::uint64_t pruned = 0;
  for (const ConfigOutcome& oc : outcomes) {
    strategy_->observe(oc);
    if (oc.pruned) ++pruned;
  }
  obs::counter("tune.tells").add(1);
  obs::counter("tune.tells." + opt_.strategy).add(1);
  // CI early-stop decisions: configurations whose later samples the
  // confidence-interval rule abandoned — the paper's discard mechanism.
  if (pruned > 0) obs::counter("tune.ci_early_stops").add(pruned);
  pending_.clear();
  asked_ = false;
  phases_.tell += core::monotonic_s() - t0;
}

void Tuner::tell_evaluated(const std::vector<ConfigOutcome>& outcomes,
                           const core::StatSnapshot& state,
                           const std::vector<ConfigTotals>& batch_totals) {
  CRITTER_CHECK(asked_, "tell_evaluated() without a claimed batch");
  CRITTER_CHECK(!evaluated_,
                "the claimed batch was already evaluated in this session — "
                "tell_evaluated() reports an external evaluation instead");
  CRITTER_CHECK(batch_totals.size() == pending_.size(),
                "tell_evaluated() totals must cover the claimed batch");
  // The remote evaluate(): the mirror ran the batch against exactly the
  // statistics ask() exposed and nothing else touched them (one batch
  // outstanding), so its post-run state replaces ours wholesale — bitwise
  // the state a local run_batch would have left.  A diff/merge round trip
  // would only be a float-algebraic identity and drift by ulps per tell.
  evaluated_ = true;
  if (!state.empty()) driver_->import_stats(state);
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    ConfigTotals& t = totals_[pending_[k]];
    t.tuning_time += batch_totals[k].tuning_time;
    t.full_time += batch_totals[k].full_time;
    t.kernel_time += batch_totals[k].kernel_time;
    t.full_kernel_time += batch_totals[k].full_kernel_time;
  }
  tell(outcomes);
}

const EvalControl& Tuner::control() const { return *control_; }

bool Tuner::step() {
  const std::vector<int> batch = ask();
  if (batch.empty()) return false;
  tell(evaluate(batch));
  return true;
}

core::StatSnapshot Tuner::export_state() const { return driver_->stats(); }

void Tuner::import_state(const core::StatSnapshot& snap) {
  CRITTER_CHECK(!started_, "import_state() is only legal before the first ask()");
  driver_->import_stats(snap);
}

void Tuner::merge_state(const core::StatSnapshot& delta) {
  CRITTER_CHECK(!asked_,
                "merge_state() with a batch claimed — exchange deltas may "
                "only fold in between tell() and the next ask()");
  driver_->merge_stats(delta);
  // Exchange deltas double as model priors: model-based strategies fold
  // the peers' runtime moments into their surrogate (deltas arrive in
  // shard-fold order, so the ingestion sequence is deterministic).
  strategy_->ingest_prior(delta);
}

void Tuner::replay_exchange(const core::StatSnapshot& delta) {
  CRITTER_CHECK(!asked_,
                "replay_exchange() with a batch claimed — exchange deltas "
                "may only fold in between tell() and the next ask()");
  strategy_->ingest_prior(delta);
}

void Tuner::restore_totals(std::vector<ConfigTotals> totals) {
  CRITTER_CHECK(totals.size() == totals_.size(),
                "restore_totals() must cover every study configuration");
  totals_ = std::move(totals);
}

SweepMode Tuner::mode() const { return driver_->mode(); }
int Tuner::config_begin() const { return driver_->config_begin(); }
int Tuner::config_end() const { return driver_->config_end(); }

TuneResult Tuner::result() const {
  TuneResult out;
  out.per_config = per_config_;
  out.mode = driver_->mode();
  out.strategy = strategy_->name();
  out.requested_workers = std::max(1, opt_.workers);
  out.effective_workers = driver_->effective_workers();
  out.batch = driver_->mode() == SweepMode::BatchShared ? driver_->batch() : 0;
  out.fallback_reason = driver_->fallback_reason();
  for (const ConfigOutcome& oc : out.per_config)
    if (oc.evaluated) ++out.evaluated_configs;
  out.per_config_totals = totals_;
  for (const ConfigTotals& t : totals_) {
    out.tuning_time += t.tuning_time;
    out.full_time += t.full_time;
    out.kernel_time += t.kernel_time;
    out.full_kernel_time += t.full_kernel_time;
  }
  out.stats = driver_->stats();
  out.phases = phases_;
  return out;
}

// ---------------------------------------------------------------------------
// run_study / merge_shards: drivers over the session
// ---------------------------------------------------------------------------

TuneResult run_study(const Study& study, const TuneOptions& opt) {
  Tuner session(study, opt);
  while (session.step()) {
  }
  return session.result();
}

TuneResult merge_shards(const Study& study, const TuneOptions& opt,
                        int nshards) {
  // The legacy semantics exactly: sequential in-process shards, statistics
  // exchanged only through the final fold.
  dist::InProcessExecutor exec;
  return dist::run_sharded(study, opt, nshards, exec);
}

}  // namespace critter::tune
