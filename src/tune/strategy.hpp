// Pluggable search strategies over a study's configuration space.
//
// The SweepDriver asks the strategy for successive batches of configuration
// indices and reports every outcome back at the batch barrier; evaluation
// hints (the CI-discard incumbent) are sampled once per batch so a batch's
// evaluations are independent of worker scheduling.  Strategies cheaper
// than exhaustive search (random subsets, CI-based early discard — cf. the
// transfer-tuning and Bayesian-autotuning lines in PAPERS.md) plug in here
// against the same statistical model the exhaustive sweep uses.
#pragma once

#include <memory>
#include <vector>

#include "tune/evaluator.hpp"

namespace critter::tune {

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  virtual const char* name() const = 0;

  /// Next configuration indices to evaluate, at most `max_batch`, in
  /// ascending index order (the driver merges statistics deltas in the
  /// returned order).  Empty means the search is finished.
  virtual std::vector<int> next_batch(int max_batch) = 0;

  /// Outcome feedback, delivered in configuration order at the barrier
  /// after each batch completes.
  virtual void observe(const ConfigOutcome& oc) = 0;

  /// Evaluation hints for the *next* batch (sampled once per batch).
  virtual EvalControl control() const { return {}; }
};

/// Strategy for `opt.search` over configurations [begin, end).
std::unique_ptr<SearchStrategy> make_strategy(const TuneOptions& opt,
                                              int begin, int end);

}  // namespace critter::tune
