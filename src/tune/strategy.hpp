// Pluggable search strategies over a study's configuration space, behind a
// string-named factory registry.
//
// The Tuner asks the strategy for successive batches of configuration
// indices and reports every outcome back at the batch barrier; evaluation
// hints (the CI-discard incumbent, a rung's sample budget) are sampled once
// per batch so a batch's evaluations are independent of worker scheduling.
// Strategies cheaper than exhaustive search — random subsets, CI-based
// early discard, successive halving, and eventually the transfer-tuning and
// Bayesian-autotuning lines in PAPERS.md — plug in here against the same
// statistical model the exhaustive sweep uses.  Registration is open:
// user code adds its own strategies under new names, and TuneOptions picks
// one by (name, option map).
#pragma once

#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/stat_store.hpp"
#include "tune/evaluator.hpp"

namespace critter::tune {

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  virtual const char* name() const = 0;

  /// Next configuration indices to evaluate, at most `max_batch`, in
  /// ascending index order (the driver merges statistics deltas in the
  /// returned order).  Empty means the search is finished.
  virtual std::vector<int> next_batch(int max_batch) = 0;

  /// Outcome feedback, delivered in configuration order at the barrier
  /// after each batch completes.
  virtual void observe(const ConfigOutcome& oc) = 0;

  /// Prior-statistics ingestion: the Tuner feeds the construction-time
  /// prior (TuneOptions::prior_file / prior / warm_start) and every
  /// mid-sweep exchange delta (in fold order, between batches) here.
  /// Model-based strategies update their surrogate; others ignore it.
  virtual void ingest_prior(const core::StatSnapshot& snap) { (void)snap; }

  /// Evaluation hints for the *next* batch (sampled once per batch).
  virtual EvalControl control() const { return {}; }
};

/// String-keyed options of one strategy instance ("count" -> "3").  An
/// ordered map, so iteration — and anything derived from it — is
/// deterministic.  Factories reject unknown keys (typos fail fast).
using StrategyOptions = std::map<std::string, std::string>;

/// Everything a factory may need beyond its own options.
struct StrategyContext {
  int begin = 0, end = 0;  ///< configuration index range [begin, end)
  std::uint64_t seed = 0;  ///< the sweep's seed salt
  int samples = 1;         ///< per-configuration sample budget
  /// The study being swept: its configuration list carries the parameter
  /// bindings model-based strategies regress on.  Always set by the Tuner;
  /// model strategies CRITTER_CHECK it.
  const Study* study = nullptr;
  /// Prior statistics snapshot (TuneOptions::prior_file / prior /
  /// warm_start), null when the sweep has none.
  const core::StatSnapshot* prior = nullptr;
};

using StrategyFactory = std::function<std::unique_ptr<SearchStrategy>(
    const StrategyContext&, const StrategyOptions&)>;

/// Register a strategy factory under `name` (user code may add its own;
/// duplicate names are an error).  `summary` is shown by the examples'
/// --help listing: keep it one line, e.g. "count=N — deterministic subset".
void register_strategy(const std::string& name, StrategyFactory factory,
                       const std::string& summary = "");

/// Registered strategy names, sorted.  Built-ins: "exhaustive",
/// "random-subset", "ci-discard", "halving".
std::vector<std::string> strategy_names();

/// One-line summary of a registered strategy ("" when unknown).
std::string strategy_summary(const std::string& name);

/// Instantiate a registered strategy; CRITTER_CHECK-fails (listing the
/// known names) when `name` is unknown or an option key is not understood.
std::unique_ptr<SearchStrategy> make_strategy(const std::string& name,
                                              const StrategyContext& ctx,
                                              const StrategyOptions& opts);

/// Parse the examples' "--strategy name,key=val,..." syntax into a
/// (name, options) pair.  Duplicate keys are rejected (the map would
/// silently keep one — the §7 fail-fast contract forbids that).
std::pair<std::string, StrategyOptions> parse_strategy_spec(
    const std::string& spec);

// --- helpers for strategy factories (built-in and user-registered) -------

/// CRITTER_CHECK-fail unless every option key is in `known`, reporting
/// *all* unknown keys in one message (the §7 fail-fast contract: a user
/// fixing a typo'd spec sees every problem at once, not one per run).
void check_strategy_options(const std::string& strategy,
                            const StrategyOptions& opts,
                            std::initializer_list<const char*> known);

/// Integer/float option lookup with a default; CRITTER_CHECK-fails when
/// the value does not parse completely.
std::int64_t strategy_opt_int(const StrategyOptions& opts,
                              const std::string& key, std::int64_t dflt);
double strategy_opt_double(const StrategyOptions& opts,
                           const std::string& key, double dflt);

}  // namespace critter::tune
