#include "tune/config_space.hpp"

#include <cmath>
#include <sstream>

#include "candmc/qr2d.hpp"
#include "capital/cholesky3d.hpp"
#include "slate/slate.hpp"
#include "util/check.hpp"

namespace critter::tune {

const char* app_name(App a) {
  switch (a) {
    case App::CapitalCholesky: return "capital-cholesky";
    case App::SlateCholesky: return "slate-cholesky";
    case App::CandmcQr: return "candmc-qr";
    case App::SlateQr: return "slate-qr";
  }
  return "?";
}

std::string Configuration::label(App app) const {
  std::ostringstream os;
  switch (app) {
    case App::CapitalCholesky:
      os << "b=" << block_size << ",strat=" << base_strategy;
      break;
    case App::SlateCholesky:
      os << "tile=" << tile << ",depth=" << lookahead;
      break;
    case App::CandmcQr:
      os << "b=" << block_size << ",grid=" << pr << "x" << pc;
      break;
    case App::SlateQr:
      os << "w=" << panel_w << ",nb=" << block_size << ",grid=" << pr << "x" << pc;
      break;
  }
  return os.str();
}

Study capital_cholesky_study(bool paper) {
  // paper: 16384^2 on 512 ranks (c=8), b = 128 * 2^(v%5), strategy ceil((v+1)/5)
  Study s;
  s.app = App::CapitalCholesky;
  s.name = "CAPITAL Cholesky";
  s.nranks = paper ? 512 : 27;
  s.n = paper ? 16384 : 384;
  s.m = s.n;
  s.gamma = paper ? 2.0e-11 : 4.0e-8;
  const int b0 = paper ? 128 : 24;
  for (int v = 0; v < 15; ++v) {
    Configuration c;
    c.index = v;
    c.block_size = b0 << (v % 5);
    c.base_strategy = (v + 5) / 5;  // == ceil((v+1)/5) for v in [0,14]
    s.configs.push_back(c);
  }
  return s;
}

Study slate_cholesky_study(bool paper) {
  // paper: 65536^2 on 1024 ranks, depth v%2, tile 256 + 64*floor(v/2)
  Study s;
  s.app = App::SlateCholesky;
  s.name = "SLATE Cholesky";
  s.nranks = paper ? 1024 : 64;
  s.n = paper ? 65536 : 2048;
  s.m = s.n;
  s.gamma = paper ? 2.0e-11 : 1.0e-8;
  const int t0 = paper ? 256 : 128;
  const int t1 = paper ? 64 : 32;
  for (int v = 0; v < 20; ++v) {
    Configuration c;
    c.index = v;
    c.lookahead = v % 2;
    c.tile = t0 + t1 * (v / 2);
    s.configs.push_back(c);
  }
  return s;
}

Study candmc_qr_study(bool paper) {
  // paper: 131072 x 8192 on 4096 ranks, b = 8 * 2^(v%5),
  // grid 64*2^(v/5) x 64/2^(v/5)
  Study s;
  s.app = App::CandmcQr;
  s.name = "CANDMC QR";
  s.nranks = paper ? 4096 : 64;
  s.m = paper ? 131072 : 1024;
  s.n = paper ? 8192 : 128;
  s.gamma = paper ? 2.0e-11 : 2.0e-8;
  const int b0 = paper ? 8 : 16;
  const int pr0 = paper ? 64 : 16;
  const int pc0 = paper ? 64 : 4;
  for (int v = 0; v < 15; ++v) {
    Configuration c;
    c.index = v;
    c.block_size = b0 << (v % 5);
    c.pr = pr0 << (v / 5);
    c.pc = pc0 >> (v / 5);
    s.configs.push_back(c);
  }
  return s;
}

Study slate_qr_study(bool paper) {
  // paper: 65536 x 4096 on 256 ranks, w = 8 * 2^(v%3),
  // panel 256 + 64*(floor(v/3) % 7), grid 64/2^(v/21) x 4*2^(v/21)
  Study s;
  s.app = App::SlateQr;
  s.name = "SLATE QR";
  s.nranks = paper ? 256 : 64;
  s.m = paper ? 65536 : 2048;
  s.n = paper ? 4096 : 512;
  s.gamma = paper ? 2.0e-11 : 1.0e-8;
  const int nb0 = paper ? 256 : 128;
  const int nb1 = paper ? 64 : 32;
  const int pr0 = paper ? 64 : 16;
  const int pc0 = paper ? 4 : 4;
  for (int v = 0; v < 63; ++v) {
    Configuration c;
    c.index = v;
    c.panel_w = 8 << (v % 3);
    c.block_size = nb0 + nb1 * ((v / 3) % 7);
    c.pr = pr0 >> (v / 21);
    c.pc = pc0 << (v / 21);
    s.configs.push_back(c);
  }
  return s;
}

void run_configuration(const Study& study, const Configuration& cfg) {
  switch (study.app) {
    case App::CapitalCholesky: {
      const int c = static_cast<int>(std::lround(std::cbrt(study.nranks)));
      CRITTER_CHECK(c * c * c == study.nranks, "capital needs a cubic rank count");
      capital::Grid3D g = capital::Grid3D::build(c);
      capital::CyclicMatrix a(study.n, g, false);
      capital::Cholesky3D chol(g, study.n,
                               {cfg.block_size, cfg.base_strategy}, false);
      chol.factor(a);
      return;
    }
    case App::SlateCholesky: {
      int pr = 1;
      while (pr * pr < study.nranks) pr *= 2;
      const int pc = study.nranks / pr;
      slate::Grid2D g = slate::Grid2D::build(pr, pc);
      slate::TileMatrix a(study.n, study.n, cfg.tile, g, false);
      slate::potrf(a, slate::PotrfConfig{cfg.lookahead});
      return;
    }
    case App::CandmcQr: {
      slate::Grid2D g = slate::Grid2D::build(cfg.pr, cfg.pc);
      slate::TileMatrix a(study.m, study.n, cfg.block_size, g, false);
      candmc::qr2d(a, candmc::QrConfig{});
      return;
    }
    case App::SlateQr: {
      slate::Grid2D g = slate::Grid2D::build(cfg.pr, cfg.pc);
      slate::TileMatrix a(study.m, study.n, cfg.block_size, g, false);
      slate::geqrf(a, slate::GeqrfConfig{cfg.panel_w, 0});
      return;
    }
  }
}

}  // namespace critter::tune
