// One configuration's evaluation protocol (paper §VI), factored out of the
// sweep driver so every sweep mode — serial, isolated-parallel,
// batch-shared-parallel — and measure_config() run the same code:
//
//   * a-priori propagation first runs the configuration once fully
//     instrumented to record critical-path kernel counts (charged to the
//     tuning time, as in the paper);
//   * one uninstrumented-equivalent full execution against a throwaway
//     store is the error reference (not charged);
//   * `samples` selective executions follow (charged).
//
// Noise salts are assigned analytically per absolute configuration index:
// configuration i consumes salts base + i*salts_per_config() + k, exactly
// the values a serial sweep's running counter would produce — this is what
// makes every sweep mode reproduce the same per-configuration randomness.
#pragma once

#include <cstdint>
#include <limits>

#include "tune/tuner.hpp"

namespace critter::tune {

/// One configuration's contribution to the sweep-wide totals.  Kept per
/// configuration and reduced in index order at the end so every sweep mode
/// produces bit-identical TuneResults.
struct ConfigTotals {
  double tuning_time = 0.0;
  double full_time = 0.0;
  double kernel_time = 0.0;
  double full_kernel_time = 0.0;
};

/// Strategy hints threaded into one configuration's evaluation.  Captured
/// once per batch at the barrier, so every worker of a batch sees the same
/// incumbent regardless of scheduling.
struct EvalControl {
  bool early_discard = false;
  double incumbent_pred = std::numeric_limits<double>::infinity();
  double margin = 0.0;  ///< relative slack over the incumbent
};

class Evaluator {
 public:
  Evaluator(const Study& study, const TuneOptions& opt);

  /// Noise salts one configuration consumes (fixed per options).
  std::uint64_t salts_per_config() const;
  /// First salt of configuration `index` (pre-incremented before use).
  std::uint64_t salt_for(int index) const;

  /// Run the full protocol for configuration `index` against `store`
  /// (which carries whatever statistics the sweep mode wants shared).
  ConfigOutcome evaluate(Store& store, int index, ConfigTotals* tot,
                         const EvalControl& ctl = {}) const;

  /// One fully-instrumented, non-selective execution against a throwaway
  /// store: the error reference of evaluate() and the Fig. 3 measurement
  /// behind measure_config().
  Report full_reference(const Configuration& cfg, std::uint64_t salt) const;

 private:
  Report one_run(Store& store, const Configuration& cfg,
                 std::uint64_t salt) const;

  const Study& study_;
  const TuneOptions& opt_;
  sim::Machine machine_;
};

}  // namespace critter::tune
