// One configuration's evaluation protocol (paper §VI), factored out of the
// sweep driver so every sweep mode — serial, isolated-parallel,
// batch-shared-parallel — and measure_config() run the same code:
//
//   * a-priori propagation first runs the configuration once fully
//     instrumented to record critical-path kernel counts (charged to the
//     tuning time, as in the paper);
//   * one uninstrumented-equivalent full execution against a throwaway
//     store is the error reference (not charged);
//   * up to `samples` selective executions follow (charged; a strategy may
//     lower the per-batch budget via EvalControl::samples_override).
//
// Noise salts are assigned analytically per absolute configuration index:
// configuration i consumes salts base + i*salts_per_config() + k, exactly
// the values a serial sweep's running counter would produce — this is what
// makes every sweep mode reproduce the same per-configuration randomness.
// A lowered sample budget consumes a prefix of the configuration's salt
// block, so re-evaluating at a higher budget replays the earlier samples
// exactly and then extends them (the successive-halving strategy relies on
// this).
#pragma once

#include <cstdint>
#include <limits>

#include "tune/tuner.hpp"

namespace critter::tune {

/// Strategy hints threaded into one configuration's evaluation.  Captured
/// once per batch at the barrier, so every worker of a batch sees the same
/// incumbent regardless of scheduling.
struct EvalControl {
  bool early_discard = false;
  double incumbent_pred = std::numeric_limits<double>::infinity();
  double margin = 0.0;  ///< relative slack over the incumbent
  /// >0: evaluate at most this many selective samples this batch (clamped
  /// to the options' sample budget, which sizes the salt blocks).
  int samples_override = 0;
};

class Evaluator {
 public:
  Evaluator(const Study& study, const TuneOptions& opt);

  /// Noise salts one configuration consumes (fixed per options).
  std::uint64_t salts_per_config() const;
  /// First salt of configuration `index` (pre-incremented before use).
  std::uint64_t salt_for(int index) const;

  /// Run the full protocol for configuration `index` against `store`
  /// (which carries whatever statistics the sweep mode wants shared).
  /// `ref_cache`, when given, caches the configuration's full-reference
  /// report across evaluations (it is a pure function of (config, salt), so
  /// successive-halving re-evaluations reuse it instead of re-simulating;
  /// `Report::p > 0` marks a filled slot).
  ConfigOutcome evaluate(Store& store, int index, ConfigTotals* tot,
                         const EvalControl& ctl = {},
                         Report* ref_cache = nullptr) const;

  /// One fully-instrumented, non-selective execution against a throwaway
  /// store: the error reference of evaluate() and the Fig. 3 measurement
  /// behind measure_config().
  Report full_reference(const Configuration& cfg, std::uint64_t salt) const;

 private:
  Report one_run(Store& store, const Configuration& cfg,
                 std::uint64_t salt) const;

  const Study& study_;
  const TuneOptions& opt_;
  sim::Machine machine_;
};

}  // namespace critter::tune
