// Surrogate-model subsystem: deterministic online models of the
// configuration space that steer model-based search strategies (the
// "surrogate-ei" and "copula-transfer" entries of the tune strategy
// registry, installed by model/strategies.cc).
//
// A Surrogate learns a cheap predictor of a configuration's runtime
// (ConfigOutcome::pred_time) from the outcomes a sweep has told so far,
// optionally seeded with a prior StatSnapshot — a warm-start file from an
// earlier sweep or a peer shard's mid-sweep exchange delta.  Two models
// ship: an additive per-dimension linear/quadratic regression
// (model/regression.hpp) and a rank-based Gaussian-copula transfer model
// whose marginals come from a prior snapshot's kernel runtime moments
// (model/copula.hpp).  Acquisition functions over Predictions live in
// model/acquisition.hpp.
//
// Determinism contract (DESIGN.md §9): refit() is a pure function of the
// observation sequence (tell order) and the prior-ingestion sequence — no
// wall clock, no global RNG, no address-dependent iteration — so
// model-guided sweeps are bit-reproducible per seed and identical across
// the in-process and subprocess executors.
#pragma once

#include <cstdint>

#include "core/stat_store.hpp"
#include "tune/param_space.hpp"

namespace critter::model {

/// Posterior prediction of one configuration's runtime (the selective
/// execution's predicted time, the quantity sweeps minimize).
struct Prediction {
  double mean = 0.0;
  double stddev = 0.0;
};

class Surrogate {
 public:
  virtual ~Surrogate() = default;

  virtual const char* name() const = 0;

  /// Feed one evaluated configuration's outcome.  Strictly in tell order —
  /// the accumulator update order is part of the determinism contract.
  virtual void observe(const tune::Configuration& cfg, double y) = 0;

  /// Seed or augment the model with a prior statistics snapshot (a
  /// warm-start file or an exchange delta, in ingestion order).  Models
  /// that cannot use one ignore it.
  virtual void ingest_prior(const core::StatSnapshot& snap) { (void)snap; }

  /// Recompute the fitted model from everything observed/ingested so far.
  /// Strategies call this at the batch barrier, after the batch's tells.
  virtual void refit() = 0;

  /// Observations fed so far.
  virtual std::int64_t observations() const = 0;

  /// Predict `cfg`'s runtime; meaningful after refit().
  virtual Prediction predict(const tune::Configuration& cfg) const = 0;
};

}  // namespace critter::model
