// Registration bridge for the model-based search strategies.
//
//   "surrogate-ei"     — the additive regression surrogate proposes each
//                        batch by acquisition ranking (expected improvement
//                        by default, LCB on request) over the unevaluated
//                        configuration indices, refitting after every tell;
//   "copula-transfer"  — a prior snapshot's Gaussian-copula marginals order
//                        the candidates cheapest-first, re-ranked from told
//                        outcomes as the sweep proceeds; with no prior it
//                        degrades (visibly — the instance reports itself
//                        as "random-subset") to the random-subset ordering.
//
// The tune strategy registry calls register_model_strategies() while
// installing its built-ins, so these names are always registered and
// static-initialization order never matters.
#pragma once

#include <functional>
#include <string>

#include "tune/strategy.hpp"

namespace critter::model {

void register_model_strategies(
    const std::function<void(const std::string&, tune::StrategyFactory,
                             const std::string&)>& add);

}  // namespace critter::model
