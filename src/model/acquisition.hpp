// Acquisition functions over Surrogate predictions: how a model-based
// strategy converts posterior (mean, stddev) into a preference over
// unevaluated configurations.  Both are standard Bayesian-optimization
// forms for a *minimized* objective, computed with the same normal-quantile
// machinery the Evaluator's CI early-discard uses (core/stats.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "model/surrogate.hpp"

namespace critter::model {

/// One-sided standard-normal quantile Phi^-1(p), composed from the
/// profiler's two-sided normal_quantile_two_sided (p in (0,1)).
double normal_quantile(double p);

/// Standard normal CDF Phi(z).
double normal_cdf(double z);

/// Expected improvement of `p` over the incumbent `best` (lower is better):
/// E[max(best - Y, 0)] for Y ~ N(p.mean, p.stddev^2).  With stddev == 0
/// this degenerates to max(best - mean, 0).  Non-negative; higher is a more
/// promising configuration.
double expected_improvement(const Prediction& p, double best);

/// Lower confidence bound mean - z * stddev: the optimistic runtime at
/// confidence z (e.g. normal_quantile_two_sided(0.95) == the Evaluator's
/// default CI width).  Returned negated so that — like EI — a *higher*
/// score means a more promising configuration.
double lower_confidence_bound_score(const Prediction& p, double z);

/// One candidate's acquisition score (higher = evaluate sooner) with the
/// configuration index used for deterministic tie-breaking.
struct ScoredCandidate {
  double score = 0.0;
  int index = 0;
};

/// The `k` best candidates by descending score, ties broken by ascending
/// configuration index (the determinism contract's tie-break rule), then
/// sorted ascending by index — the order strategy batches must be in.
std::vector<int> rank_by_acquisition(std::vector<ScoredCandidate> scored,
                                     int k);

}  // namespace critter::model
