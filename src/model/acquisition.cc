#include "model/acquisition.hpp"

#include <algorithm>
#include <cmath>

#include "core/stats.hpp"
#include "util/check.hpp"

namespace critter::model {

double normal_quantile(double p) {
  CRITTER_CHECK(p > 0.0 && p < 1.0, "normal_quantile needs p in (0,1)");
  if (p == 0.5) return 0.0;
  // Phi^-1(p) in terms of the two-sided critical value: P(|Z| < z) = c
  // gives z = Phi^-1((1 + c) / 2).
  return p > 0.5 ? core::normal_quantile_two_sided(2.0 * p - 1.0)
                 : -core::normal_quantile_two_sided(1.0 - 2.0 * p);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / 1.4142135623730951);
}

double expected_improvement(const Prediction& p, double best) {
  const double imp = best - p.mean;
  if (!(p.stddev > 0.0)) return std::max(imp, 0.0);
  const double z = imp / p.stddev;
  const double pdf = 0.3989422804014327 * std::exp(-0.5 * z * z);
  return std::max(p.stddev * (z * normal_cdf(z) + pdf), 0.0);
}

double lower_confidence_bound_score(const Prediction& p, double z) {
  return -(p.mean - z * p.stddev);
}

std::vector<int> rank_by_acquisition(std::vector<ScoredCandidate> scored,
                                     int k) {
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  if (k >= 0 && static_cast<std::size_t>(k) < scored.size())
    scored.resize(static_cast<std::size_t>(k));
  std::vector<int> out;
  out.reserve(scored.size());
  for (const ScoredCandidate& c : scored) out.push_back(c.index);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace critter::model
