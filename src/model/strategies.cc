#include "model/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include "core/stats.hpp"
#include "model/acquisition.hpp"
#include "model/copula.hpp"
#include "model/regression.hpp"
#include "util/check.hpp"

namespace critter::model {

namespace {

/// Shared scaffolding of the model strategies: the candidate positions
/// [begin, end) of the sweep range, the evaluation budget, and the
/// space-index -> position bookkeeping observe() needs (a subset study's
/// positions differ from its configurations' space indices).
class ModelStrategyBase : public tune::SearchStrategy {
 public:
  ModelStrategyBase(const tune::StrategyContext& ctx, std::int64_t count) {
    CRITTER_CHECK(ctx.study != nullptr,
                  "model-based strategies need the study in their context");
    study_ = ctx.study;
    begin_ = ctx.begin;
    end_ = ctx.end;
    const int range = end_ - begin_;
    // An empty range (e.g. config_begin == config_end) sweeps nothing —
    // budget 0 makes next_batch() finish immediately, like the built-ins.
    budget_ = range == 0 ? 0
              : count > 0
                  ? static_cast<int>(std::min<std::int64_t>(count, range))
                  : std::max(1, range / 2);
    evaluated_.assign(static_cast<std::size_t>(range), false);
    for (int pos = begin_; pos < end_; ++pos)
      pos_of_index_[study_->configs.at(pos).index] = pos;
  }

 protected:
  const tune::Configuration& config_at(int pos) const {
    return study_->configs.at(pos);
  }
  int range() const { return end_ - begin_; }
  bool is_evaluated(int pos) const {
    return evaluated_[static_cast<std::size_t>(pos - begin_)];
  }
  /// Position of a told outcome (-1 when outside the sweep range).
  int position_of(const tune::ConfigOutcome& oc) const {
    const auto it = pos_of_index_.find(oc.config.index);
    return it == pos_of_index_.end() ? -1 : it->second;
  }
  void mark_evaluated(int pos) {
    evaluated_[static_cast<std::size_t>(pos - begin_)] = true;
    ++told_;
  }
  /// Emission accounting: a strategy may never claim more than the budget.
  int emission_room(int max_batch) const {
    return std::min(max_batch, budget_ - emitted_);
  }
  void note_emitted(int n) { emitted_ += n; }
  bool budget_spent() const { return emitted_ >= budget_; }
  int budget() const { return budget_; }
  int told() const { return told_; }

  const tune::Study* study_ = nullptr;
  int begin_ = 0, end_ = 0;

 private:
  int budget_ = 0;
  int emitted_ = 0;
  int told_ = 0;
  std::vector<bool> evaluated_;
  std::map<int, int> pos_of_index_;
};

// ---------------------------------------------------------------------------
// "surrogate-ei": acquisition-ranked proposals from the regression model
// ---------------------------------------------------------------------------

class SurrogateEiStrategy final : public ModelStrategyBase {
 public:
  SurrogateEiStrategy(const tune::StrategyContext& ctx,
                      const tune::StrategyOptions& opts)
      : ModelStrategyBase(ctx, tune::strategy_opt_int(opts, "count", 0)),
        use_lcb_(false) {
    const std::string acq = opts.count("acq") ? opts.at("acq") : "ei";
    CRITTER_CHECK(acq == "ei" || acq == "lcb",
                  "surrogate-ei: acq must be 'ei' or 'lcb'");
    use_lcb_ = acq == "lcb";
    // The LCB width defaults to the Evaluator's CI confidence level.
    beta_ = tune::strategy_opt_double(
        opts, "beta", core::normal_quantile_two_sided(0.95));
    const int degree =
        static_cast<int>(tune::strategy_opt_int(opts, "degree", 2));
    CRITTER_CHECK(degree == 1 || degree == 2,
                  "surrogate-ei: degree must be 1 or 2");
    if (range() == 0) return;  // nothing to sweep, nothing to model
    std::vector<tune::Configuration> candidates;
    candidates.reserve(static_cast<std::size_t>(range()));
    for (int pos = begin_; pos < end_; ++pos)
      candidates.push_back(config_at(pos));
    model_ = std::make_unique<AdditiveRegressionSurrogate>(candidates, degree);

    // Initial design: a deterministic Latin-style spread.  Seed j targets
    // quantile (k_d + 0.5)/init of every dimension's value list, where
    // the largest-cardinality dimension walks the quantiles in order
    // (k = j) and every other dimension walks them with a stride coprime
    // to init — a lockstep design confounds dimensions (one dimension's
    // large values would only ever be observed with another's large
    // values), and a mirrored one merely reverses the confounding.  The
    // nearest unchosen candidate (normalized L1) realizes each target.  A
    // pure function of the candidate list, so proposals depend only on
    // (seed, tells).
    const std::size_t ndims = candidates.front().params.size();
    // Default design size: a third of the budget (the adaptive picks are
    // where the model earns its keep — serial sweeps refit after every
    // tell), capped at 2D+1 points, at least a pair to anchor the fit.
    const std::int64_t dflt = std::max<std::int64_t>(
        2, std::min<std::int64_t>(2 * static_cast<std::int64_t>(ndims) + 1,
                                  budget() / 3));
    const int init = static_cast<int>(std::max<std::int64_t>(
        1, std::min<std::int64_t>(tune::strategy_opt_int(opts, "init", dflt),
                                  budget())));
    std::vector<std::vector<std::int64_t>> dim_values(ndims);
    std::vector<double> lo(ndims), span(ndims);
    for (std::size_t d = 0; d < ndims; ++d) {
      for (const tune::Configuration& c : candidates)
        dim_values[d].push_back(c.params[d].second);
      std::sort(dim_values[d].begin(), dim_values[d].end());
      dim_values[d].erase(
          std::unique(dim_values[d].begin(), dim_values[d].end()),
          dim_values[d].end());
      lo[d] = static_cast<double>(dim_values[d].front());
      const double hi = static_cast<double>(dim_values[d].back());
      span[d] = hi > lo[d] ? hi - lo[d] : 1.0;
    }
    // Quantile strides: coprimes of init scanned outward from init/2,
    // preferring ones that are neither 1 (the in-order walk) nor init-1
    // (its mirror).  The largest-cardinality dimension walks in order
    // (stride 1 — the natural sweep for a value-rich dimension); the
    // others get the mixing strides, smallest dimension first, because a
    // low-cardinality dimension walked in order degenerates into blocks
    // (0,0,1,1,1) that correlate with every other dimension's trend.
    std::vector<int> coprimes;
    const int mid = std::max(init / 2, 1);
    for (int pass = 0; pass < 2; ++pass)
      for (int step = 0; step < init; ++step)
        for (const int m : {mid - step, mid + step}) {
          if (m < 1 || m > std::max(init - 1, 1) || std::gcd(m, init) != 1)
            continue;
          const bool extreme = m == 1 || m == init - 1;
          if ((pass == 0) == extreme) continue;
          if (std::find(coprimes.begin(), coprimes.end(), m) ==
              coprimes.end())
            coprimes.push_back(m);
        }
    std::vector<std::size_t> by_cardinality(ndims);
    for (std::size_t d = 0; d < ndims; ++d) by_cardinality[d] = d;
    std::sort(by_cardinality.begin(), by_cardinality.end(),
              [&](std::size_t a, std::size_t b) {
                if (dim_values[a].size() != dim_values[b].size())
                  return dim_values[a].size() < dim_values[b].size();
                return a < b;
              });
    std::vector<int> stride_of(ndims, 1);
    for (std::size_t r = 0; r + 1 < ndims; ++r)
      stride_of[by_cardinality[r]] = coprimes[r % coprimes.size()];
    std::vector<char> taken(candidates.size(), 0);
    for (int j = 0; j < init; ++j) {
      std::vector<double> target(ndims);
      for (std::size_t d = 0; d < ndims; ++d) {
        const int k = static_cast<int>(
            (static_cast<std::int64_t>(j) * stride_of[d]) % init);
        const double qd = (static_cast<double>(k) + 0.5) / init;
        const std::size_t vi = std::min(
            dim_values[d].size() - 1,
            static_cast<std::size_t>(qd * static_cast<double>(dim_values[d].size())));
        target[d] = (static_cast<double>(dim_values[d][vi]) - lo[d]) / span[d];
      }
      int best = -1;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        if (taken[k]) continue;
        double dist = 0.0;
        for (std::size_t d = 0; d < ndims; ++d)
          dist += std::abs(
              (static_cast<double>(candidates[k].params[d].second) - lo[d]) /
                  span[d] -
              target[d]);
        if (dist < best_dist) {  // ties keep the lower position
          best_dist = dist;
          best = static_cast<int>(k);
        }
      }
      if (best < 0) break;
      taken[static_cast<std::size_t>(best)] = 1;
      seeds_.push_back(begin_ + best);
    }
    std::sort(seeds_.begin(), seeds_.end());
  }

  const char* name() const override { return "surrogate-ei"; }

  std::vector<int> next_batch(int max_batch) override {
    std::vector<int> out;
    int room = emission_room(max_batch);
    if (room <= 0) return out;
    while (seed_pos_ < seeds_.size() && static_cast<int>(out.size()) < room)
      out.push_back(seeds_[seed_pos_++]);
    if (!out.empty()) {
      note_emitted(static_cast<int>(out.size()));
      return out;  // already ascending
    }
    // Model-guided phase: refit on everything told, rank the unevaluated
    // candidates by acquisition, claim the best `room`.
    model_->refit();
    std::vector<ScoredCandidate> scored;
    for (int pos = begin_; pos < end_; ++pos) {
      if (is_evaluated(pos)) continue;
      const Prediction p = model_->predict(config_at(pos));
      scored.push_back({use_lcb_ ? lower_confidence_bound_score(p, beta_)
                                 : expected_improvement(p, best_y_),
                        pos});
    }
    out = rank_by_acquisition(std::move(scored), room);
    note_emitted(static_cast<int>(out.size()));
    return out;
  }

  void observe(const tune::ConfigOutcome& oc) override {
    const int pos = position_of(oc);
    if (pos < 0) return;
    mark_evaluated(pos);  // even unevaluated tells retire the candidate
    if (!oc.evaluated) return;
    model_->observe(oc.config, oc.pred_time);
    best_y_ = std::min(best_y_, oc.pred_time);
  }

  void ingest_prior(const core::StatSnapshot& snap) override {
    if (model_) model_->ingest_prior(snap);  // a no-op for the regression model
  }

 private:
  std::unique_ptr<AdditiveRegressionSurrogate> model_;
  std::vector<int> seeds_;
  std::size_t seed_pos_ = 0;
  bool use_lcb_;
  double beta_ = 0.0;
  double best_y_ = std::numeric_limits<double>::infinity();
};

// ---------------------------------------------------------------------------
// "copula-transfer": prior-ordered sweep, re-ranked as outcomes arrive
// ---------------------------------------------------------------------------

class CopulaTransferStrategy final : public ModelStrategyBase {
 public:
  CopulaTransferStrategy(const tune::StrategyContext& ctx,
                         const tune::StrategyOptions& opts)
      : ModelStrategyBase(ctx, tune::strategy_opt_int(opts, "count", 0)),
        adapt_(tune::strategy_opt_int(opts, "adapt", 1) != 0) {
    // The prior itself arrives through ingest_prior(): the Tuner feeds the
    // construction-time snapshot before the first ask (DESIGN.md §9), so
    // it is deliberately not read from ctx here — that would double-weight
    // it.  The factory has already verified one exists.
    CRITTER_CHECK(ctx.prior != nullptr && !ctx.prior->empty(),
                  "copula-transfer needs a prior snapshot (the factory "
                  "degrades to random-subset when none is given)");
    if (range() == 0) return;  // nothing to sweep, nothing to model
    std::vector<tune::Configuration> candidates;
    candidates.reserve(static_cast<std::size_t>(range()));
    for (int pos = begin_; pos < end_; ++pos)
      candidates.push_back(config_at(pos));
    model_ = std::make_unique<GaussianCopulaSurrogate>(
        candidates, tune::strategy_opt_double(opts, "prior-weight", 8.0));
  }

  const char* name() const override { return "copula-transfer"; }

  std::vector<int> next_batch(int max_batch) override {
    const int room = emission_room(max_batch);
    std::vector<int> out;
    if (room <= 0) return out;
    // Rank the remaining candidates by the blended (prior + observed)
    // normal score, cheapest expected runtime first; ties fall back to
    // ascending position.  Every previously emitted position has been
    // told (the Tuner enforces tell() before the next ask) and is retired
    // via is_evaluated.  With adapt off the prior ordering is frozen —
    // refit() is skipped, so told outcomes never re-rank.
    if (adapt_) model_->refit();
    std::vector<ScoredCandidate> scored;
    for (int pos = begin_; pos < end_; ++pos) {
      if (is_evaluated(pos)) continue;
      scored.push_back({-model_->blended_z(config_at(pos)), pos});
    }
    out = rank_by_acquisition(std::move(scored), room);
    note_emitted(static_cast<int>(out.size()));
    return out;
  }

  void observe(const tune::ConfigOutcome& oc) override {
    const int pos = position_of(oc);
    if (pos < 0) return;
    mark_evaluated(pos);  // even unevaluated tells retire the candidate
    if (oc.evaluated && adapt_) model_->observe(oc.config, oc.pred_time);
  }

  void ingest_prior(const core::StatSnapshot& snap) override {
    if (!model_) return;
    // The first ingestion is the construction-time prior itself; later
    // ones are mid-sweep exchange deltas, which adapt=0 must ignore — the
    // frozen prior ordering may not shift between exchange rounds.
    if (primed_ && !adapt_) return;
    model_->ingest_prior(snap);
    primed_ = true;
  }

 private:
  std::unique_ptr<GaussianCopulaSurrogate> model_;
  bool adapt_;
  bool primed_ = false;  ///< construction prior ingested
};

}  // namespace

void register_model_strategies(
    const std::function<void(const std::string&, tune::StrategyFactory,
                             const std::string&)>& add) {
  add("surrogate-ei",
      [](const tune::StrategyContext& ctx, const tune::StrategyOptions& opts) {
        tune::check_strategy_options(
            "surrogate-ei", opts, {"count", "init", "acq", "beta", "degree"});
        return std::unique_ptr<tune::SearchStrategy>(
            new SurrogateEiStrategy(ctx, opts));
      },
      "count=N,init=N,acq=ei|lcb,beta=X,degree=1|2 — regression surrogate "
      "proposes batches by acquisition rank (default budget: half the "
      "space)");
  add("copula-transfer",
      [](const tune::StrategyContext& ctx, const tune::StrategyOptions& opts) {
        tune::check_strategy_options("copula-transfer", opts,
                                     {"count", "prior-weight", "adapt"});
        // A prior with no kernel runtime moments (e.g. saved from a
        // reset-per-config sweep, where only channels survive) carries
        // nothing to transfer — same degradation as no prior at all.
        const auto has_moments = [](const core::StatSnapshot& s) {
          for (const core::KernelTable& t : s.ranks)
            for (const auto& [key, ks] : t.K)
              if (ks.n > 0) return true;
          return false;
        };
        if (ctx.prior == nullptr || ctx.prior->empty() ||
            !has_moments(*ctx.prior)) {
          // Documented graceful degradation: without a prior there is
          // nothing to transfer — fall back to the random-subset ordering
          // (visibly: the instance reports itself as "random-subset") at
          // the same budget a copula sweep would have used.
          tune::StrategyOptions sub;
          sub["count"] = opts.count("count")
                             ? opts.at("count")
                             : std::to_string(
                                   std::max(1, (ctx.end - ctx.begin) / 2));
          return tune::make_strategy("random-subset", ctx, sub);
        }
        return std::unique_ptr<tune::SearchStrategy>(
            new CopulaTransferStrategy(ctx, opts));
      },
      "count=N,prior-weight=X,adapt=0|1 — prior snapshot's copula marginals "
      "order the sweep (no prior: degrades to random-subset)");
}

}  // namespace critter::model
