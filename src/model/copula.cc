#include "model/copula.hpp"

#include <algorithm>
#include <cmath>

#include "core/signature.hpp"
#include "core/stats.hpp"
#include "model/acquisition.hpp"
#include "util/check.hpp"

namespace critter::model {

namespace {

constexpr double kTinyTime = 1e-300;

/// The signature dimensions a kernel exposes as parameter-value evidence:
/// input sizes for compute kernels (dims[3] packs option flags, skipped),
/// the message byte count for communication kernels.
template <class F>
void for_each_size(const core::KernelKey& key, const F& f) {
  if (core::is_comm_kernel(key.cls)) {
    if (key.dims[0] > 0) f(key.dims[0]);
    return;
  }
  for (int i = 0; i < 3; ++i)
    if (key.dims[i] > 0) f(key.dims[i]);
}

}  // namespace

GaussianCopulaSurrogate::GaussianCopulaSurrogate(
    const std::vector<tune::Configuration>& candidates, double prior_weight)
    : prior_weight_(std::max(prior_weight, 0.0)), candidates_(candidates) {
  CRITTER_CHECK(!candidates_.empty(),
                "copula surrogate needs a non-empty candidate list");
  ndims_ = candidates_.front().params.size();
  for (const tune::Configuration& cfg : candidates_)
    CRITTER_CHECK(cfg.params.size() == ndims_,
                  "candidate configurations disagree on dimension count");
}

void GaussianCopulaSurrogate::ingest_prior(const core::StatSnapshot& snap) {
  // Chan-merge the snapshot's pooled moments into the running profile; the
  // extraction is sorted by key hash and the profile map iterates sorted,
  // so repeated ingestion (warm file, then exchange deltas in fold order)
  // is deterministic.
  for (const core::KernelMoments& m : core::extract_moments(snap)) {
    auto [it, inserted] = prior_kernels_.try_emplace(m.key.hash(), m);
    if (!inserted) {
      core::KernelStats acc = core::moments_to_stats(it->second);
      acc.merge(core::moments_to_stats(m));
      it->second = core::stats_to_moments(m.key, acc);
    }
  }

  // Rebuild the marginal fits from the merged profile (ascending hash).
  value_logtime_.clear();
  prior_samples_ = 0;
  double lw = 0, ls = 0, lss = 0;       // count-weighted log-runtime moments
  double sn = 0, sx = 0, sy = 0, sxx = 0, sxy = 0;  // log-size OLS
  for (const auto& [hash, m] : prior_kernels_) {
    const double w = static_cast<double>(m.n);
    const double logt = std::log(std::max(m.mean, kTinyTime));
    prior_samples_ += m.n;
    lw += w;
    ls += w * logt;
    lss += w * logt * logt;
    for_each_size(m.key, [&](std::int64_t size) {
      auto& [wsum, weight] = value_logtime_[size];
      wsum += w * logt;
      weight += w;
      const double x = std::log(static_cast<double>(size));
      sn += w;
      sx += w * x;
      sy += w * logt;
      sxx += w * x * x;
      sxy += w * x * logt;
    });
  }
  prior_mu_ = lw > 0 ? ls / lw : 0.0;
  prior_sd_ =
      lw > 1 ? std::sqrt(std::max(lss - ls * ls / lw, 0.0) / (lw - 1)) : 0.0;
  const double det = sn * sxx - sx * sx;
  if (std::abs(det) > 1e-12 && sn > 0) {
    size_slope_ = (sn * sxy - sx * sy) / det;
    size_intercept_ = (sy - size_slope_ * sx) / sn;
  } else {
    size_slope_ = 0.0;
    size_intercept_ = sn > 0 ? sy / sn : 0.0;
  }

  // Standardize the prior score over the candidate population, so its
  // normal-score blend with the observed copula is scale-free.
  core::KernelStats pop;
  for (const tune::Configuration& cfg : candidates_)
    pop.add_sample(prior_score(cfg));
  score_mu_ = pop.mean;
  score_sd_ = std::sqrt(pop.variance());
}

double GaussianCopulaSurrogate::prior_marginal(std::int64_t value) const {
  const auto it = value_logtime_.find(value);
  if (it != value_logtime_.end() && it->second.second > 0)
    return it->second.first / it->second.second;
  // Value never seen in the prior (the transfer-across-sizes case): read
  // the pooled log-size/log-time line at it.
  return size_intercept_ +
         size_slope_ * std::log(std::max(static_cast<double>(value), 1.0));
}

double GaussianCopulaSurrogate::prior_score(
    const tune::Configuration& cfg) const {
  if (prior_samples_ == 0) return 0.0;
  double s = 0.0;
  for (const auto& [name, value] : cfg.params) s += prior_marginal(value);
  return s;
}

void GaussianCopulaSurrogate::observe(const tune::Configuration& cfg,
                                      double y) {
  CRITTER_CHECK(cfg.params.size() == ndims_,
                "observed configuration has the wrong dimension count");
  std::vector<std::int64_t> values;
  values.reserve(ndims_);
  for (const auto& [name, value] : cfg.params) values.push_back(value);
  obs_.push_back({std::move(values), y});
}

void GaussianCopulaSurrogate::refit() {
  // Mid-rank normal scores of the observed runtimes (the rank-based copula
  // step: ties share the average rank, scores via the probit at
  // (rank + 0.5) / n).
  z_.clear();
  sorted_y_.clear();
  const std::size_t n = obs_.size();
  if (n == 0) {
    obs_sd_ = 0.0;
    return;
  }
  sorted_y_.reserve(n);
  for (const auto& [values, y] : obs_) sorted_y_.push_back(y);
  std::sort(sorted_y_.begin(), sorted_y_.end());
  core::KernelStats spread;
  for (std::size_t i = 0; i < n; ++i) {
    const double y = obs_[i].second;
    spread.add_sample(y);
    // mid-rank: average of the first and last position holding y
    const auto lo = std::lower_bound(sorted_y_.begin(), sorted_y_.end(), y);
    const auto hi = std::upper_bound(sorted_y_.begin(), sorted_y_.end(), y);
    const double rank =
        0.5 * static_cast<double>((lo - sorted_y_.begin()) +
                                  (hi - sorted_y_.begin()) - 1);
    const double z =
        normal_quantile((rank + 0.5) / static_cast<double>(n));
    for (std::size_t d = 0; d < ndims_; ++d) {
      auto& [zsum, count] = z_[{static_cast<int>(d), obs_[i].first[d]}];
      zsum += z;
      ++count;
    }
  }
  obs_sd_ = std::sqrt(spread.variance());
}

double GaussianCopulaSurrogate::marginal_z(int dim, std::int64_t value) const {
  const auto it = z_.find({dim, value});
  if (it == z_.end() || it->second.second == 0) return 0.0;
  return it->second.first / static_cast<double>(it->second.second);
}

double GaussianCopulaSurrogate::blended_z(
    const tune::Configuration& cfg) const {
  double zobs = 0.0;
  for (std::size_t d = 0; d < ndims_; ++d)
    zobs += marginal_z(static_cast<int>(d), cfg.params[d].second);
  if (ndims_ > 0) zobs /= static_cast<double>(ndims_);
  double zprior = 0.0;
  if (prior_samples_ > 0 && score_sd_ > 0.0)
    zprior = (prior_score(cfg) - score_mu_) / score_sd_;
  const double nobs = static_cast<double>(obs_.size());
  const double w =
      prior_weight_ + nobs > 0.0 ? nobs / (nobs + prior_weight_) : 1.0;
  return (1.0 - w) * zprior + w * zobs;
}

Prediction GaussianCopulaSurrogate::predict(
    const tune::Configuration& cfg) const {
  CRITTER_CHECK(cfg.params.size() == ndims_,
                "predicted configuration has the wrong dimension count");
  const double z = blended_z(cfg);
  Prediction p;
  if (sorted_y_.size() >= 2) {
    // Back-transform through the observed empirical marginal: the runtime
    // at quantile Phi(z), linearly interpolated.
    const double q = normal_cdf(z) * static_cast<double>(sorted_y_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(q);
    const std::size_t hi = std::min(lo + 1, sorted_y_.size() - 1);
    const double frac = q - static_cast<double>(lo);
    p.mean = sorted_y_[lo] * (1.0 - frac) + sorted_y_[hi] * frac;
    p.stddev = obs_sd_;
  } else if (prior_samples_ > 0) {
    // Prior log-normal marginal until the observed one exists (the
    // log-normal sd is mean * sqrt(exp(sigma^2) - 1)).
    p.mean = std::exp(prior_mu_ + z * prior_sd_);
    p.stddev = p.mean * std::sqrt(std::expm1(prior_sd_ * prior_sd_));
  } else if (!sorted_y_.empty()) {
    p.mean = sorted_y_.front();
  }
  return p;
}

}  // namespace critter::model
