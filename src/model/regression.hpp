// Additive per-dimension incremental regression surrogate.
//
// Each named dimension d carries an independent polynomial fit (degree 1 or
// 2) of runtime on that dimension's normalized value; the additive
// prediction recombines the per-dimension fits around the global mean:
//
//   yhat(x) = sum_d f_d(t_d)  -  (D - 1) * ybar,   t_d = (v_d - lo_d)/span_d
//
// — the ANOVA-style main-effects decomposition, which the tuning studies'
// smooth block-size/tile-size response surfaces fit well.  Accumulators
// (plain moment sums) grow incrementally in observe(); refit() solves the
// per-dimension normal equations and re-estimates the residual spread with
// the profiler's own Welford machinery (core::KernelStats), which is what
// acquisition CIs are computed from.  Dimensions degrade gracefully:
// quadratic -> linear -> mean as the observation count or value spread
// shrinks, so early-sweep predictions are defined from the first tell.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "model/surrogate.hpp"

namespace critter::model {

class AdditiveRegressionSurrogate final : public Surrogate {
 public:
  /// `candidates` is the configuration list the sweep ranges over (it fixes
  /// the dimension order and the per-dimension value normalization);
  /// `degree` is the per-dimension basis: 1 (linear) or 2 (quadratic).
  AdditiveRegressionSurrogate(const std::vector<tune::Configuration>& candidates,
                              int degree = 2);

  const char* name() const override { return "additive-regression"; }
  void observe(const tune::Configuration& cfg, double y) override;
  void refit() override;
  std::int64_t observations() const override { return n_; }
  Prediction predict(const tune::Configuration& cfg) const override;

 private:
  struct DimFit {
    double lo = 0.0, span = 1.0;  ///< value normalization from the space
    double s[5] = {0, 0, 0, 0, 0};   ///< sum of t^k, k = 0..4
    double sy[3] = {0, 0, 0};        ///< sum of y * t^k, k = 0..2
    double c[3] = {0, 0, 0};         ///< fitted coefficients (refit())
    int terms = 1;                   ///< basis terms actually fit
    std::map<std::int64_t, std::int64_t> seen;  ///< value -> observations

    double normalize(std::int64_t v) const;
    double eval(double t) const;
  };

  int degree_;
  std::vector<DimFit> dims_;
  std::int64_t n_ = 0;
  double sum_y_ = 0.0;
  double mean_y_ = 0.0;          ///< refit(): global mean
  double resid_sd_ = 0.0;        ///< refit(): residual standard deviation
  /// Observation log, in tell order (refit() residual pass re-reads it).
  std::vector<std::pair<std::vector<std::int64_t>, double>> obs_;
};

}  // namespace critter::model
