#include "model/regression.hpp"

#include <algorithm>
#include <cmath>

#include "core/stats.hpp"
#include "util/check.hpp"

namespace critter::model {

namespace {

/// Solve the symmetric 2x2 system [[a, b], [b, c]] x = [d, e] by Cramer;
/// false when (near-)singular.
bool solve2(double a, double b, double c, double d, double e, double* x0,
            double* x1) {
  const double det = a * c - b * b;
  if (std::abs(det) < 1e-12 * std::max(1.0, std::abs(a * c))) return false;
  *x0 = (d * c - e * b) / det;
  *x1 = (a * e - b * d) / det;
  return true;
}

}  // namespace

double AdditiveRegressionSurrogate::DimFit::normalize(std::int64_t v) const {
  return (static_cast<double>(v) - lo) / span;
}

double AdditiveRegressionSurrogate::DimFit::eval(double t) const {
  return c[0] + c[1] * t + c[2] * t * t;
}

AdditiveRegressionSurrogate::AdditiveRegressionSurrogate(
    const std::vector<tune::Configuration>& candidates, int degree)
    : degree_(std::clamp(degree, 1, 2)) {
  CRITTER_CHECK(!candidates.empty(),
                "regression surrogate needs a non-empty candidate list");
  const std::size_t ndims = candidates.front().params.size();
  dims_.resize(ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    double lo = 1e300, hi = -1e300;
    for (const tune::Configuration& cfg : candidates) {
      CRITTER_CHECK(cfg.params.size() == ndims,
                    "candidate configurations disagree on dimension count");
      const double v = static_cast<double>(cfg.params[d].second);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    dims_[d].lo = lo;
    dims_[d].span = hi > lo ? hi - lo : 1.0;
  }
}

void AdditiveRegressionSurrogate::observe(const tune::Configuration& cfg,
                                          double y) {
  CRITTER_CHECK(cfg.params.size() == dims_.size(),
                "observed configuration has the wrong dimension count");
  std::vector<std::int64_t> values;
  values.reserve(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const std::int64_t v = cfg.params[d].second;
    DimFit& f = dims_[d];
    const double t = f.normalize(v);
    double tk = 1.0;
    for (int k = 0; k < 5; ++k) {
      f.s[k] += tk;
      if (k < 3) f.sy[k] += y * tk;
      tk *= t;
    }
    ++f.seen[v];
    values.push_back(v);
  }
  ++n_;
  sum_y_ += y;
  obs_.push_back({std::move(values), y});
}

void AdditiveRegressionSurrogate::refit() {
  mean_y_ = n_ > 0 ? sum_y_ / static_cast<double>(n_) : 0.0;
  for (DimFit& f : dims_) {
    f.c[0] = mean_y_;
    f.c[1] = f.c[2] = 0.0;
    f.terms = 1;
    const std::size_t distinct = f.seen.size();
    if (degree_ >= 2 && n_ >= 3 && distinct >= 3) {
      // quadratic normal equations: [[s0 s1 s2][s1 s2 s3][s2 s3 s4]] c = sy
      const double m00 = f.s[0], m01 = f.s[1], m02 = f.s[2];
      const double m11 = f.s[2], m12 = f.s[3], m22 = f.s[4];
      const double det = m00 * (m11 * m22 - m12 * m12) -
                         m01 * (m01 * m22 - m12 * m02) +
                         m02 * (m01 * m12 - m11 * m02);
      if (std::abs(det) > 1e-10) {
        f.c[0] = (f.sy[0] * (m11 * m22 - m12 * m12) -
                  m01 * (f.sy[1] * m22 - m12 * f.sy[2]) +
                  m02 * (f.sy[1] * m12 - m11 * f.sy[2])) / det;
        f.c[1] = (m00 * (f.sy[1] * m22 - f.sy[2] * m12) -
                  f.sy[0] * (m01 * m22 - m12 * m02) +
                  m02 * (m01 * f.sy[2] - f.sy[1] * m02)) / det;
        f.c[2] = (m00 * (m11 * f.sy[2] - m12 * f.sy[1]) -
                  m01 * (m01 * f.sy[2] - f.sy[1] * m02) +
                  f.sy[0] * (m01 * m12 - m11 * m02)) / det;
        f.terms = 3;
        continue;
      }
    }
    if (n_ >= 2 && distinct >= 2 &&
        solve2(f.s[0], f.s[1], f.s[2], f.sy[0], f.sy[1], &f.c[0], &f.c[1]))
      f.terms = 2;
  }
  // Residual spread through the profiler's Welford accumulator — the same
  // machinery the Evaluator's CI discard uses.
  core::KernelStats resid;
  for (const auto& [values, y] : obs_) {
    double yhat = 0.0;
    for (std::size_t d = 0; d < dims_.size(); ++d)
      yhat += dims_[d].eval(dims_[d].normalize(values[d]));
    yhat -= static_cast<double>(dims_.size() - 1) * mean_y_;
    resid.add_sample(y - yhat);
  }
  resid_sd_ = std::sqrt(resid.variance());
  // A spread floor keeps acquisition exploration alive when the model fits
  // the observations exactly (few points, many basis terms).
  resid_sd_ = std::max(resid_sd_, 1e-6 * std::abs(mean_y_));
}

Prediction AdditiveRegressionSurrogate::predict(
    const tune::Configuration& cfg) const {
  CRITTER_CHECK(cfg.params.size() == dims_.size(),
                "predicted configuration has the wrong dimension count");
  Prediction p;
  if (n_ == 0) return p;
  int unseen = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const DimFit& f = dims_[d];
    const std::int64_t v = cfg.params[d].second;
    p.mean += f.eval(f.normalize(v));
    if (f.seen.find(v) == f.seen.end()) ++unseen;
  }
  p.mean -= static_cast<double>(dims_.size() - 1) * mean_y_;
  // Novel parameter values inflate the predictive spread: the per-dimension
  // fit is extrapolating there, and acquisition should keep exploring them.
  p.stddev = resid_sd_ *
             (1.0 + static_cast<double>(unseen) /
                        static_cast<double>(dims_.size()));
  return p;
}

}  // namespace critter::model
