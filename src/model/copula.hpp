// Rank-based Gaussian-copula transfer surrogate.
//
// The transfer-tuning observation (Randall et al. 2024, PAPERS.md): what
// carries from a cheap source sweep to an expensive target sweep is the
// *ordering* of configurations, not the absolute runtimes.  A Gaussian
// copula separates the two — marginal distributions capture scale, normal
// scores capture dependence — so this model:
//
//   * fits its prior marginals from a prior StatSnapshot's kernel runtime
//     moments (core::extract_moments): per configuration dimension, the
//     count-weighted mean log runtime of the prior kernels whose signature
//     dimensions carry that parameter value (block/tile sizes appear
//     literally in kernel keys), falling back to a pooled log-size/log-time
//     line for values the prior never saw;
//   * maps told outcomes to normal scores by mid-rank (the rank-based
//     copula step) and accumulates per-(dimension, value) mean scores;
//   * predicts a configuration as the weighted blend of the standardized
//     prior score and the observed score, the prior's weight decaying as
//     observations accumulate, back-transformed through the observed
//     empirical marginal (or the prior's log-normal marginal while fewer
//     than two observations exist).
//
// Everything is a pure function of (candidate list, ingested snapshots in
// order, observations in tell order) — the §9 determinism contract.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "model/surrogate.hpp"

namespace critter::model {

class GaussianCopulaSurrogate final : public Surrogate {
 public:
  /// `candidates` fixes the dimension order and the population the prior
  /// score is standardized over; `prior_weight` is the pseudo-observation
  /// count of the prior (its blend weight is prior_weight / (n + pw)).
  GaussianCopulaSurrogate(const std::vector<tune::Configuration>& candidates,
                          double prior_weight = 8.0);

  const char* name() const override { return "gaussian-copula"; }
  void observe(const tune::Configuration& cfg, double y) override;
  void ingest_prior(const core::StatSnapshot& snap) override;
  void refit() override;
  std::int64_t observations() const override {
    return static_cast<std::int64_t>(obs_.size());
  }
  Prediction predict(const tune::Configuration& cfg) const override;

  bool has_prior() const { return prior_samples_ > 0; }

  /// Prior-only marginal score of `cfg` (sum over dimensions of the fitted
  /// mean log runtime at each parameter value); 0 with no prior.  Lower
  /// means the prior expects cheaper kernels — the initial candidate
  /// ordering of the "copula-transfer" strategy.
  double prior_score(const tune::Configuration& cfg) const;

  /// Observed mean normal score of value `v` in dimension `dim` (mid-rank
  /// copula scores, recomputed by refit()); 0 when the value has no
  /// observations.  Exposed for the hand-computed-rank tests.
  double marginal_z(int dim, std::int64_t value) const;

  /// Blended (prior + observed) normal score of `cfg`; the strategy ranks
  /// unevaluated candidates ascending by this.
  double blended_z(const tune::Configuration& cfg) const;

 private:
  double prior_marginal(std::int64_t value) const;

  std::size_t ndims_ = 0;
  double prior_weight_;
  std::vector<tune::Configuration> candidates_;

  // --- prior state (ingest_prior) ---
  /// Pooled kernel moments by key hash (Chan-merged across ingests).
  std::map<std::uint64_t, core::KernelMoments> prior_kernels_;
  std::int64_t prior_samples_ = 0;
  /// Per parameter value: count-weighted sum/weight of log mean runtime of
  /// prior kernels whose dims carry the value.
  std::map<std::int64_t, std::pair<double, double>> value_logtime_;
  /// Pooled log-size/log-time line (fallback marginal for unseen values)
  /// and the prior's log-runtime moments (the prior marginal scale).
  double size_slope_ = 0.0, size_intercept_ = 0.0;
  double prior_mu_ = 0.0, prior_sd_ = 0.0;
  /// Standardization of prior_score over the candidate population.
  double score_mu_ = 0.0, score_sd_ = 0.0;

  // --- observed state (observe/refit) ---
  std::vector<std::pair<std::vector<std::int64_t>, double>> obs_;
  /// (dimension, value) -> (sum of normal scores, count).
  std::map<std::pair<int, std::int64_t>, std::pair<double, std::int64_t>> z_;
  std::vector<double> sorted_y_;  ///< observed marginal (back-transform)
  double obs_sd_ = 0.0;
};

}  // namespace critter::model
