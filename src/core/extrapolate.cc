#include "core/extrapolate.hpp"

#include <cmath>

namespace critter::core {

void SizeModelBucket::add(double x, double y) {
  ++n;
  sx += x;
  sy += y;
  sxx += x * x;
  sxy += x * y;
  syy += y * y;
  min_x = std::min(min_x, x);
  max_x = std::max(max_x, x);
}

void SizeModelBucket::merge(const SizeModelBucket& other) {
  n += other.n;
  sx += other.sx;
  sy += other.sy;
  sxx += other.sxx;
  sxy += other.sxy;
  syy += other.syy;
  min_x = std::min(min_x, other.min_x);
  max_x = std::max(max_x, other.max_x);
}

void SizeModelBucket::unmerge(const SizeModelBucket& base) {
  n -= base.n;
  sx -= base.sx;
  sy -= base.sy;
  sxx -= base.sxx;
  sxy -= base.sxy;
  syy -= base.syy;
  // min_x/max_x intentionally kept (see header).
}

double SizeModelBucket::slope() const {
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-30) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

double SizeModelBucket::intercept() const {
  return (sy - slope() * sx) / static_cast<double>(n);
}

double SizeModelBucket::r_squared() const {
  const double sxx_c = sxx - sx * sx / n;
  const double syy_c = syy - sy * sy / n;
  const double sxy_c = sxy - sx * sy / n;
  if (sxx_c < 1e-30 || syy_c < 1e-30) return 0.0;
  const double r = sxy_c / std::sqrt(sxx_c * syy_c);
  return r * r;
}

bool SizeModelBucket::usable(int min_points, double min_r2) const {
  // demand a 2x spread in size so the line interpolates rather than guesses
  return n >= min_points && max_x > 2.0 * min_x && r_squared() >= min_r2;
}

double SizeModelBucket::predict(double flops) const {
  return std::max(0.0, intercept() + slope() * flops);
}

void SizeModel::observe(const KernelKey& key, double flops,
                        double mean_time) {
  if (flops <= 0.0 || mean_time <= 0.0) return;
  buckets_[bucket_id(key)].add(flops, mean_time);
}

void SizeModel::merge_from(const SizeModel& other) {
  for (const auto& [id, b] : other.buckets_) {
    auto it = buckets_.find(id);
    if (it == buckets_.end())
      buckets_.emplace(id, b);
    else
      it->second.merge(b);
  }
}

void SizeModel::unmerge_from(const SizeModel& base) {
  for (const auto& [id, b] : base.buckets_) {
    auto it = buckets_.find(id);
    if (it == buckets_.end()) continue;
    if (it->second.n <= b.n) {
      buckets_.erase(it);  // no new points on top of the base
      continue;
    }
    it->second.unmerge(b);
  }
}

double SizeModel::predict(const KernelKey& key, double flops, int min_points,
                          double min_r2) const {
  auto it = buckets_.find(bucket_id(key));
  if (it == buckets_.end() || !it->second.usable(min_points, min_r2))
    return -1.0;
  return it->second.predict(flops);
}

}  // namespace critter::core
