#include "core/stat_store.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/check.hpp"
#include "util/hash.hpp"

namespace critter::core {

// ---------------------------------------------------------------------------
// KernelTable lifecycle
// ---------------------------------------------------------------------------

void KernelTable::new_epoch() {
  touch();
  ++epoch;
  for (auto& [key, ks] : K) ks.reset_epoch_counters();
}

void KernelTable::clear_statistics() {
  touch();
  K.clear();
  key_of_hash.clear();
  pending_eager.clear();
  pending_tombstones.clear();
}

namespace {

/// Table-level merge of one kernel's statistics: moments via Chan, counters
/// summed, flags OR-ed, coverage hash resolved deterministically.
void merge_kernel_stats(KernelStats& a, const KernelStats& b) {
  a.merge(b);  // n, mean, m2
  a.invocations_this_epoch += b.invocations_this_epoch;
  a.executions_this_epoch += b.executions_this_epoch;
  a.total_invocations += b.total_invocations;
  a.total_executions += b.total_executions;
  const bool steady = a.global_steady || b.global_steady;
  if (a.agg_hash == 0) {
    a.agg_hash = b.agg_hash;
  } else if (b.agg_hash != 0 && b.agg_hash != a.agg_hash && !a.global_steady) {
    // Conflicting partial coverage from independent evaluations: the two
    // hash chains cannot be combined, so coverage restarts and the kernel
    // re-aggregates from scratch — the conservative direction.
    a.agg_hash = 0;
  }
  a.global_steady = steady;
  a.extrapolation_observed = a.extrapolation_observed || b.extrapolation_observed;
  a.registered = a.registered || b.registered;
}

/// Delta of one kernel's statistics on top of `base` (exact merge inverse).
KernelStats diff_kernel_stats(const KernelStats& after, const KernelStats& base) {
  KernelStats d = after;
  d.unmerge(base);  // n, mean, m2
  // Per-epoch counters are dead across the barrier (every evaluation calls
  // new_epoch() first); zeroing them keeps merge sums meaningless-but-stable.
  d.invocations_this_epoch = 0;
  d.executions_this_epoch = 0;
  d.total_invocations = after.total_invocations - base.total_invocations;
  d.total_executions = after.total_executions - base.total_executions;
  // agg_hash/flags carry the after-state; merge_kernel_stats resolves them.
  return d;
}

bool stats_equal(const KernelStats& a, const KernelStats& b) {
  return a.n == b.n && a.mean == b.mean && a.m2 == b.m2 &&
         a.total_invocations == b.total_invocations &&
         a.total_executions == b.total_executions &&
         a.agg_hash == b.agg_hash && a.global_steady == b.global_steady &&
         a.extrapolation_observed == b.extrapolation_observed &&
         a.registered == b.registered;
}

bool bucket_equal(const SizeModelBucket& a, const SizeModelBucket& b) {
  return a.n == b.n && a.sx == b.sx && a.sy == b.sy && a.sxx == b.sxx &&
         a.sxy == b.sxy && a.syy == b.syy && a.min_x == b.min_x &&
         a.max_x == b.max_x;
}

bool size_model_equal(const SizeModel& a, const SizeModel& b) {
  if (a.bucket_count() != b.bucket_count()) return false;
  bool eq = true;
  std::unordered_map<std::uint64_t, SizeModelBucket> bb;
  b.for_each([&](std::uint64_t id, const SizeModelBucket& bk) { bb[id] = bk; });
  a.for_each([&](std::uint64_t id, const SizeModelBucket& ak) {
    auto it = bb.find(id);
    if (it == bb.end() || !bucket_equal(ak, it->second)) eq = false;
  });
  return eq;
}

}  // namespace

void KernelTable::merge(const KernelTable& other) {
  touch();  // covers kernel-moment, channel-registry-union, and refit growth
  for (const auto& [key, ks] : other.K) {
    auto [it, inserted] = K.try_emplace(key, ks);
    if (!inserted) merge_kernel_stats(it->second, ks);
  }
  for (const auto& [h, key] : other.key_of_hash) key_of_hash.try_emplace(h, key);
  // Tombstones first: the delta's evaluation absorbed our pending entry at
  // first sighting (its K contribution arrives with the absorbed moments
  // shed — see diff()), so re-absorb *our* copy into the now-registered K
  // entry and erase it.  The first sibling's tombstone consumes the entry;
  // later siblings find it gone — the absorbed samples count exactly once.
  for (std::uint64_t h : other.pending_tombstones) {
    const auto pit = pending_eager.find(h);
    if (pit == pending_eager.end()) continue;
    const auto kit = key_of_hash.find(h);
    if (kit != key_of_hash.end()) {
      const auto kk = K.find(kit->second);
      if (kk != K.end() && kk->second.registered)
        kk->second.merge(pit->second);  // moments only, like the profiler's
                                        // first-sighting absorption
    }
    pending_eager.erase(pit);
  }
  for (const auto& [h, ks] : other.pending_eager) {
    // Kernel already registered here (e.g. by an earlier sibling delta of
    // the same batch): pending growth feeds the K entry directly instead
    // of being created only to be purged below.
    const auto kit = key_of_hash.find(h);
    if (kit != key_of_hash.end()) {
      const auto kk = K.find(kit->second);
      if (kk != K.end() && kk->second.registered) {
        kk->second.merge(ks);
        continue;
      }
    }
    auto [it, inserted] = pending_eager.try_emplace(h, ks);
    if (!inserted) merge_kernel_stats(it->second, ks);
  }
  // A pending entry is dead once its kernel is registered in K on either
  // side: absorb its samples there (they were collected for that kernel,
  // only ahead of its local sighting) and erase it.  Within one batch the
  // tombstone pass above already consumed the delta-absorbed entries; this
  // sweep handles independent-table merges (merge_shards), where the two
  // sides' pending samples are disjoint by construction.
  for (auto it = pending_eager.begin(); it != pending_eager.end();) {
    const auto kit = key_of_hash.find(it->first);
    const auto kk = kit != key_of_hash.end() ? K.find(kit->second) : K.end();
    if (kk != K.end() && kk->second.registered) {
      kk->second.merge(it->second);
      it = pending_eager.erase(it);
    } else {
      ++it;
    }
  }
  channels.merge_from(other.channels);
  size_model.merge_from(other.size_model);
  epoch = std::max(epoch, other.epoch);
}

KernelTable KernelTable::diff(const KernelTable& base) const {
  KernelTable d;
  // Base pending-eager entries we no longer carry were absorbed into K at
  // first sighting.  Tombstone them and shed the absorbed moments from the
  // K delta: the merge target re-absorbs its own copy of the entry via the
  // tombstone, exactly once even when several same-batch siblings absorbed
  // the same entry.
  std::unordered_map<KernelKey, const KernelStats*, KernelKeyHash> absorbed;
  for (const auto& [h, ks] : base.pending_eager) {
    if (pending_eager.count(h) != 0) continue;
    d.pending_tombstones.push_back(h);
    const auto kit = key_of_hash.find(h);
    if (kit != key_of_hash.end()) absorbed.emplace(kit->second, &ks);
  }
  std::sort(d.pending_tombstones.begin(), d.pending_tombstones.end());

  for (const auto& [key, ks] : K) {
    const auto bit = base.K.find(key);
    const auto ab = absorbed.find(key);
    if (bit == base.K.end()) {
      if (ab == absorbed.end()) {
        d.K.emplace(key, ks);
      } else {
        KernelStats dk = ks;
        dk.unmerge(*ab->second);  // moments only: first-sighting absorption
                                  // merged moments only
        d.K.emplace(key, dk);
      }
      continue;
    }
    const KernelStats& bs = bit->second;
    if (ab == absorbed.end() && stats_equal(ks, bs)) continue;
    KernelStats dk = diff_kernel_stats(ks, bs);
    if (ab != absorbed.end()) dk.unmerge(*ab->second);
    d.K.emplace(key, dk);
  }
  for (const auto& [h, key] : key_of_hash)
    if (base.key_of_hash.count(h) == 0) d.key_of_hash.emplace(h, key);
  for (const auto& [h, ks] : pending_eager) {
    const auto bit = base.pending_eager.find(h);
    if (bit == base.pending_eager.end()) {
      d.pending_eager.emplace(h, ks);
    } else if (!stats_equal(ks, bit->second)) {
      d.pending_eager.emplace(h, diff_kernel_stats(ks, bit->second));
    }
  }
  channels.for_each([&](std::uint64_t h, const Channel& ch) {
    if (!base.channels.known(h)) d.channels.insert_raw(ch);
  });
  d.size_model = size_model;
  d.size_model.unmerge_from(base.size_model);
  d.epoch = epoch;
  return d;
}

bool KernelTable::same_statistics(const KernelTable& other) const {
  if (K.size() != other.K.size() ||
      key_of_hash.size() != other.key_of_hash.size() ||
      pending_eager.size() != other.pending_eager.size() ||
      epoch != other.epoch)
    return false;
  for (const auto& [key, ks] : K) {
    const auto it = other.K.find(key);
    if (it == other.K.end() || !stats_equal(ks, it->second)) return false;
  }
  for (const auto& [h, key] : key_of_hash) {
    const auto it = other.key_of_hash.find(h);
    if (it == other.key_of_hash.end() || !(it->second == key)) return false;
  }
  for (const auto& [h, ks] : pending_eager) {
    const auto it = other.pending_eager.find(h);
    if (it == other.pending_eager.end() || !stats_equal(ks, it->second))
      return false;
  }
  return channels.same_channels(other.channels) &&
         size_model_equal(size_model, other.size_model);
}

// ---------------------------------------------------------------------------
// StatSnapshot
// ---------------------------------------------------------------------------

void StatSnapshot::merge(const StatSnapshot& delta) {
  CRITTER_CHECK(delta.ranks.size() == ranks.size(),
                "snapshot merge rank-count mismatch");
  for (std::size_t r = 0; r < ranks.size(); ++r) ranks[r].merge(delta.ranks[r]);
}

StatSnapshot StatSnapshot::diff(const StatSnapshot& base) const {
  CRITTER_CHECK(base.ranks.size() == ranks.size(),
                "snapshot diff rank-count mismatch");
  StatSnapshot d;
  d.ranks.reserve(ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r)
    d.ranks.push_back(ranks[r].diff(base.ranks[r]));
  return d;
}

bool StatSnapshot::same_statistics(const StatSnapshot& other) const {
  if (ranks.size() != other.ranks.size()) return false;
  for (std::size_t r = 0; r < ranks.size(); ++r)
    if (!ranks[r].same_statistics(other.ranks[r])) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Serialization — shared flattening
//
// Both formats write the same logical records in the same deterministic
// order (kernels sorted by key hash, registries in ascending-hash order).
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'C', 'R', 'S', 'T', 'A', 'T', '0', '\n'};
// Version 2: per-rank length-prefixed + FNV-checksummed chunks, and the
// delta pending-tombstone list is serialized (file-borne exchange deltas).
// Version 1 (the previous release) loads through the registered upgrade
// hook; see register_snapshot_upgrade().
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kLegacyVersion = 1;
constexpr char kJsonFormatTag[] = "critter-stat-snapshot";

using util::fnv1a;  // the rank-chunk checksum

bool table_has_tombstones(const StatSnapshot& snap) {
  for (const KernelTable& t : snap.ranks)
    if (!t.pending_tombstones.empty()) return true;
  return false;
}

constexpr std::uint8_t kFlagGlobalSteady = 1;
constexpr std::uint8_t kFlagExtrapObserved = 2;
constexpr std::uint8_t kFlagRegistered = 4;

std::uint8_t pack_flags(const KernelStats& ks) {
  return (ks.global_steady ? kFlagGlobalSteady : 0) |
         (ks.extrapolation_observed ? kFlagExtrapObserved : 0) |
         (ks.registered ? kFlagRegistered : 0);
}

void unpack_flags(KernelStats& ks, std::uint8_t f) {
  ks.global_steady = (f & kFlagGlobalSteady) != 0;
  ks.extrapolation_observed = (f & kFlagExtrapObserved) != 0;
  ks.registered = (f & kFlagRegistered) != 0;
}

template <class Map>
std::vector<typename Map::const_pointer> sorted_by_key(const Map& m) {
  std::vector<typename Map::const_pointer> out;
  out.reserve(m.size());
  for (const auto& kv : m) out.push_back(&kv);
  std::sort(out.begin(), out.end(),
            [](auto* a, auto* b) { return a->first < b->first; });
  return out;
}

std::vector<const KernelArena::value_type*> sorted_kernels(
    const KernelTable& t) {
  std::vector<const KernelArena::value_type*> out;
  out.reserve(t.K.size());
  for (const auto& kv : t.K) out.push_back(&kv);
  std::sort(out.begin(), out.end(), [](auto* a, auto* b) {
    return a->first.hash() < b->first.hash();
  });
  return out;
}

// --- binary writer/reader --------------------------------------------------

/// Appends records to a caller-owned byte buffer.  Serializing into a
/// string (rather than an ostream) lets the frame writer backpatch length
/// and checksum fields in place, so a whole snapshot is produced in one
/// buffer with no per-rank scratch stream.
struct BinWriter {
  std::string& out;
  void raw(const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
};

/// Decodes records from a borrowed byte span.  Every read is bounds-checked
/// against the span end, so a corrupt length field can never drive an
/// allocation or a read past the mapped/loaded bytes — the reader works
/// equally over an in-memory payload and an mmap'ed file.
struct BinReader {
  const char* p;
  const char* end;
  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }
  void raw(void* ptr, std::size_t n) {
    CRITTER_CHECK(n <= remaining(), "stat snapshot: truncated binary input");
    std::memcpy(ptr, p, n);
    p += n;
  }
  std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
  std::uint32_t u32() { std::uint32_t v; raw(&v, 4); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, 8); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, 8); return v; }
  double f64() { double v; raw(&v, 8); return v; }
};

void write_key_binary(BinWriter& w, const KernelKey& key) {
  w.u8(static_cast<std::uint8_t>(key.cls));
  for (auto dim : key.dims) w.i64(dim);
  w.u64(key.chan);
}

KernelKey read_key_binary(BinReader& r) {
  const auto cls = static_cast<KernelClass>(r.u8());
  std::array<std::int64_t, 4> dims{};
  for (auto& dim : dims) dim = r.i64();
  const std::uint64_t chan = r.u64();
  return KernelKey{cls, dims, chan};
}

void write_stats_binary(BinWriter& w, const KernelStats& ks) {
  w.i64(ks.n);
  w.f64(ks.mean);
  w.f64(ks.m2);
  w.i64(ks.invocations_this_epoch);
  w.i64(ks.executions_this_epoch);
  w.i64(ks.total_invocations);
  w.i64(ks.total_executions);
  w.u64(ks.agg_hash);
  w.u8(pack_flags(ks));
}

KernelStats read_stats_binary(BinReader& r) {
  KernelStats ks;
  ks.n = r.i64();
  ks.mean = r.f64();
  ks.m2 = r.f64();
  ks.invocations_this_epoch = r.i64();
  ks.executions_this_epoch = r.i64();
  ks.total_invocations = r.i64();
  ks.total_executions = r.i64();
  ks.agg_hash = r.u64();
  unpack_flags(ks, r.u8());
  return ks;
}

/// Record-count sanity bounds: a truncated or corrupt count must fail fast
/// with a clear error instead of driving a near-endless read loop or an
/// allocation far beyond any plausible snapshot.
constexpr std::uint64_t kMaxRanks = 1u << 16;
constexpr std::uint64_t kMaxRecords = 1ull << 32;
constexpr std::uint64_t kMaxChunkBytes = 1ull << 33;

/// One rank table's records, without framing.  Both binary versions share
/// this body; version 2 appends the pending-tombstone list after the
/// pending-eager records.
void write_rank_binary(BinWriter& w, const KernelTable& t,
                       std::uint32_t version) {
  w.i64(t.epoch);
  w.u64(t.K.size());
  for (const auto* kv : sorted_kernels(t)) {
    write_key_binary(w, kv->first);
    write_stats_binary(w, kv->second);
  }
  w.u64(t.key_of_hash.size());
  for (const auto* kv : sorted_by_key(t.key_of_hash)) {
    w.u64(kv->first);
    write_key_binary(w, kv->second);
  }
  w.u64(t.pending_eager.size());
  for (const auto* kv : sorted_by_key(t.pending_eager)) {
    w.u64(kv->first);
    write_stats_binary(w, kv->second);
  }
  if (version >= 2) {
    w.u64(t.pending_tombstones.size());
    for (std::uint64_t h : t.pending_tombstones) w.u64(h);
  }
  w.u64(t.channels.size());
  t.channels.for_each([&](std::uint64_t, const Channel& ch) {
    w.i64(ch.offset);
    w.u8(ch.lattice ? 1 : 0);
    w.u64(ch.dims.size());
    for (const ChannelDim& d : ch.dims) {
      w.i64(d.stride);
      w.i64(d.size);
    }
  });
  w.u64(t.size_model.bucket_count());
  t.size_model.for_each([&](std::uint64_t id, const SizeModelBucket& b) {
    w.u64(id);
    w.i64(b.n);
    w.f64(b.sx);
    w.f64(b.sy);
    w.f64(b.sxx);
    w.f64(b.sxy);
    w.f64(b.syy);
    w.f64(b.min_x);
    w.f64(b.max_x);
  });
}

void read_rank_binary(BinReader& r, KernelTable& t, std::uint32_t version,
                      std::uint32_t nranks) {
  t.init_world(static_cast<int>(nranks));
  t.epoch = r.i64();
  const std::uint64_t nk = r.u64();
  CRITTER_CHECK(nk <= kMaxRecords, "stat snapshot: implausible kernel count");
  for (std::uint64_t i = 0; i < nk; ++i) {
    KernelKey key = read_key_binary(r);
    t.K.emplace(key, read_stats_binary(r));
  }
  const std::uint64_t nh = r.u64();
  CRITTER_CHECK(nh <= kMaxRecords, "stat snapshot: implausible key count");
  for (std::uint64_t i = 0; i < nh; ++i) {
    const std::uint64_t h = r.u64();
    t.key_of_hash.emplace(h, read_key_binary(r));
  }
  const std::uint64_t np = r.u64();
  CRITTER_CHECK(np <= kMaxRecords, "stat snapshot: implausible pending count");
  for (std::uint64_t i = 0; i < np; ++i) {
    const std::uint64_t h = r.u64();
    t.pending_eager.emplace(h, read_stats_binary(r));
  }
  if (version >= 2) {
    const std::uint64_t nt = r.u64();
    CRITTER_CHECK(nt <= kMaxRecords,
                  "stat snapshot: implausible tombstone count");
    t.pending_tombstones.reserve(static_cast<std::size_t>(nt));
    for (std::uint64_t i = 0; i < nt; ++i)
      t.pending_tombstones.push_back(r.u64());
  }
  const std::uint64_t nc = r.u64();
  CRITTER_CHECK(nc <= kMaxRecords, "stat snapshot: implausible channel count");
  for (std::uint64_t i = 0; i < nc; ++i) {
    Channel ch;
    ch.offset = r.i64();
    ch.lattice = r.u8() != 0;
    const std::uint64_t nd = r.u64();
    CRITTER_CHECK(nd <= (1u << 20), "stat snapshot: implausible channel");
    ch.dims.resize(nd);
    for (ChannelDim& d : ch.dims) {
      d.stride = r.i64();
      d.size = r.i64();
    }
    t.channels.insert_raw(ch);
  }
  const std::uint64_t nb = r.u64();
  CRITTER_CHECK(nb <= kMaxRecords, "stat snapshot: implausible bucket count");
  for (std::uint64_t i = 0; i < nb; ++i) {
    const std::uint64_t id = r.u64();
    SizeModelBucket b;
    b.n = r.i64();
    b.sx = r.f64();
    b.sy = r.f64();
    b.sxx = r.f64();
    b.sxy = r.f64();
    b.syy = r.f64();
    b.min_x = r.f64();
    b.max_x = r.f64();
    t.size_model.set_bucket(id, b);
  }
}

std::string save_binary_string(const StatSnapshot& snap,
                               std::uint32_t version) {
  std::string out;
  BinWriter w{out};
  w.raw(kMagic, sizeof kMagic);
  w.u32(version);
  w.u32(static_cast<std::uint32_t>(snap.ranks.size()));
  for (const KernelTable& t : snap.ranks) {
    if (version == kLegacyVersion) {
      write_rank_binary(w, t, version);
      continue;
    }
    // Version 2: each rank chunk is framed with its byte length and FNV
    // checksum so a reader rejects truncation and corruption before
    // decoding a single record.  The records are serialized straight into
    // the output buffer; the frame header is backpatched once the chunk's
    // extent is known — no scratch stream, no chunk copy.
    const std::size_t frame = out.size();
    w.u64(0);  // length placeholder
    w.u64(0);  // checksum placeholder
    const std::size_t body = out.size();
    write_rank_binary(w, t, version);
    const std::uint64_t len = out.size() - body;
    const std::uint64_t sum = fnv1a(out.data() + body, len);
    std::memcpy(out.data() + frame, &len, 8);
    std::memcpy(out.data() + frame + 8, &sum, 8);
  }
  return out;
}

// Defined below (shared with the JSON path).
void apply_snapshot_upgrade(StatSnapshot& snap, std::uint32_t from_version);

StatSnapshot load_binary(const char* data, std::size_t size) {
  BinReader r{data, data + size};
  char magic[sizeof kMagic];
  r.raw(magic, sizeof magic);
  CRITTER_CHECK(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                "stat snapshot: bad binary magic");
  const std::uint32_t version = r.u32();
  CRITTER_CHECK(version == kVersion || version == kLegacyVersion,
                "stat snapshot: unsupported version " +
                    std::to_string(version) + " (current " +
                    std::to_string(kVersion) + ", upgradable " +
                    std::to_string(kLegacyVersion) + ")");
  const std::uint32_t nranks = r.u32();
  CRITTER_CHECK(nranks >= 1 && nranks <= kMaxRanks,
                "stat snapshot: implausible rank count");
  StatSnapshot snap;
  snap.ranks.resize(nranks);
  for (KernelTable& t : snap.ranks) {
    if (version == kLegacyVersion) {
      read_rank_binary(r, t, version, nranks);
      continue;
    }
    const std::uint64_t len = r.u64();
    CRITTER_CHECK(len <= kMaxChunkBytes,
                  "stat snapshot: implausible rank-chunk size");
    const std::uint64_t sum = r.u64();
    // The length field sits outside the checksummed region; bounding it by
    // the bytes actually present means a corrupt value hits the truncation
    // error without driving any allocation — the chunk is checksummed and
    // decoded in place, never copied.
    CRITTER_CHECK(len <= r.remaining(),
                  "stat snapshot: truncated binary input");
    CRITTER_CHECK(fnv1a(r.p, static_cast<std::size_t>(len)) == sum,
                  "stat snapshot: rank-chunk checksum mismatch (corrupt or "
                  "truncated file)");
    BinReader cr{r.p, r.p + len};
    read_rank_binary(cr, t, version, nranks);
    CRITTER_CHECK(cr.p == cr.end,
                  "stat snapshot: trailing bytes in rank chunk");
    r.p += len;
  }
  CRITTER_CHECK(r.p == r.end,
                "stat snapshot: trailing content after final rank");
  if (version != kVersion) apply_snapshot_upgrade(snap, version);
  return snap;
}

// --- dirty-rank sparse transport (DESIGN.md §13) ---------------------------

constexpr char kSparseMagic[8] = {'C', 'R', 'S', 'P', 'R', 'S', '1', '\n'};

/// One rank chunk of a full v2 binary payload, located in place.
struct ChunkExtent {
  const char* frame;   ///< start of the [len][sum] header
  const char* body;    ///< start of the chunk records (epoch first)
  std::uint64_t len;   ///< body byte count
  std::uint64_t sum;   ///< recorded FNV-1a of the body
};

/// Walk a full v2 payload's frame structure without decoding any record
/// (and without re-checksumming: the caller holds the payload as trusted —
/// it was produced or checksum-verified locally).  Validates everything
/// structural: magic, version (sparse transport requires the chunked v2
/// layout), rank count, chunk lengths against the bytes present, and that
/// no trailing bytes follow the final chunk.
std::vector<ChunkExtent> chunk_extents(std::string_view full,
                                       const char* what) {
  BinReader r{full.data(), full.data() + full.size()};
  char magic[sizeof kMagic];
  r.raw(magic, sizeof magic);
  CRITTER_CHECK(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                std::string(what) + ": not a binary stat snapshot");
  const std::uint32_t version = r.u32();
  CRITTER_CHECK(version == kVersion,
                std::string(what) +
                    ": sparse transport requires the chunked version-" +
                    std::to_string(kVersion) + " layout (got version " +
                    std::to_string(version) + ")");
  const std::uint32_t nranks = r.u32();
  CRITTER_CHECK(nranks >= 1 && nranks <= kMaxRanks,
                std::string(what) + ": implausible rank count");
  std::vector<ChunkExtent> out;
  out.reserve(nranks);
  for (std::uint32_t i = 0; i < nranks; ++i) {
    ChunkExtent e{};
    e.frame = r.p;
    e.len = r.u64();
    CRITTER_CHECK(e.len <= kMaxChunkBytes,
                  std::string(what) + ": implausible rank-chunk size");
    e.sum = r.u64();
    CRITTER_CHECK(e.len <= r.remaining(),
                  std::string(what) + ": truncated rank chunk");
    // Every chunk body leads with the i64 epoch — the field the sparse
    // codec patches in place.
    CRITTER_CHECK(e.len >= 8,
                  std::string(what) + ": rank chunk shorter than its epoch");
    e.body = r.p;
    r.p += e.len;
    out.push_back(e);
  }
  CRITTER_CHECK(r.p == r.end,
                std::string(what) + ": trailing content after final rank");
  return out;
}

std::int64_t chunk_epoch(const ChunkExtent& e) {
  std::int64_t epoch;
  std::memcpy(&epoch, e.body, 8);
  return epoch;
}

/// The canonical "clean" delta chunk body: what write_rank_binary emits for
/// a default-constructed table at `epoch` — the epoch followed by six zero
/// record counts (kernels, keys, pending, tombstones, channels, buckets).
constexpr std::size_t kCleanChunkBytes = 8 + 6 * 8;

std::string clean_chunk_body(std::int64_t epoch) {
  std::string out(kCleanChunkBytes, '\0');
  std::memcpy(out.data(), &epoch, 8);
  return out;
}

/// True when the chunk's bytes beyond the epoch are exactly the clean
/// chunk's (six zero counts) — byte comparison, never table semantics.
bool chunk_is_clean(const ChunkExtent& e) {
  static constexpr char kZeros[kCleanChunkBytes - 8] = {};
  return e.len == kCleanChunkBytes &&
         std::memcmp(e.body + 8, kZeros, sizeof kZeros) == 0;
}

/// A sparse payload parsed and fully validated in place: header bounds,
/// strictly ascending rank indices (rejects duplicates and overlaps),
/// per-chunk length and checksum, no trailing bytes.
struct SparseEntry {
  std::uint32_t rank;
  std::uint64_t len;
  std::uint64_t sum;
  const char* body;
};
struct ParsedSparse {
  std::uint32_t nranks = 0;
  std::uint8_t mode = 0;
  std::vector<std::int64_t> epochs;
  std::vector<SparseEntry> entries;
};

ParsedSparse parse_sparse(std::string_view payload) {
  BinReader r{payload.data(), payload.data() + payload.size()};
  char magic[sizeof kSparseMagic];
  r.raw(magic, sizeof magic);
  CRITTER_CHECK(std::memcmp(magic, kSparseMagic, sizeof kSparseMagic) == 0,
                "sparse snapshot: bad magic");
  const std::uint32_t version = r.u32();
  CRITTER_CHECK(version == kVersion,
                "sparse snapshot: unsupported chunk version " +
                    std::to_string(version) + " (current " +
                    std::to_string(kVersion) + ")");
  ParsedSparse out;
  out.nranks = r.u32();
  CRITTER_CHECK(out.nranks >= 1 && out.nranks <= kMaxRanks,
                "sparse snapshot: implausible rank count");
  out.mode = r.u8();
  CRITTER_CHECK(out.mode <= 1, "sparse snapshot: unknown mode " +
                                   std::to_string(out.mode));
  out.epochs.resize(out.nranks);
  for (std::int64_t& e : out.epochs) e = r.i64();
  const std::uint32_t ndirty = r.u32();
  CRITTER_CHECK(ndirty <= out.nranks,
                "sparse snapshot: more dirty ranks than ranks");
  out.entries.reserve(ndirty);
  std::int64_t prev = -1;
  for (std::uint32_t i = 0; i < ndirty; ++i) {
    SparseEntry e{};
    e.rank = r.u32();
    CRITTER_CHECK(e.rank < out.nranks,
                  "sparse snapshot: dirty rank index out of range");
    CRITTER_CHECK(static_cast<std::int64_t>(e.rank) > prev,
                  "sparse snapshot: dirty ranks must be strictly ascending "
                  "(duplicate or overlapping rank)");
    prev = e.rank;
    e.len = r.u64();
    CRITTER_CHECK(e.len <= kMaxChunkBytes,
                  "sparse snapshot: implausible rank-chunk size");
    e.sum = r.u64();
    CRITTER_CHECK(e.len <= r.remaining(),
                  "sparse snapshot: truncated rank chunk");
    CRITTER_CHECK(e.len >= 8,
                  "sparse snapshot: rank chunk shorter than its epoch");
    CRITTER_CHECK(fnv1a(r.p, static_cast<std::size_t>(e.len)) == e.sum,
                  "sparse snapshot: rank-chunk checksum mismatch (corrupt "
                  "or truncated payload)");
    e.body = r.p;
    r.p += e.len;
    out.entries.push_back(e);
  }
  CRITTER_CHECK(r.p == r.end,
                "sparse snapshot: trailing content after final chunk");
  return out;
}

void write_sparse_header(BinWriter& w, std::uint32_t nranks,
                         std::uint8_t mode,
                         const std::vector<std::int64_t>& epochs) {
  w.raw(kSparseMagic, sizeof kSparseMagic);
  w.u32(kVersion);
  w.u32(nranks);
  w.u8(mode);
  for (std::int64_t e : epochs) w.i64(e);
}

void write_sparse_entry(BinWriter& w, std::uint32_t rank,
                        const ChunkExtent& e) {
  w.u32(rank);
  w.u64(e.len);
  w.u64(e.sum);
  w.raw(e.body, static_cast<std::size_t>(e.len));
}

/// Splice a parsed mode-0 patch onto a base payload's extents: dirty ranks
/// substitute their shipped chunk, epoch-only ranks get the 8-byte epoch
/// overwritten in place with the chunk checksum recomputed, clean ranks
/// copy through verbatim.
std::string splice_sparse_patch(std::string_view base_full,
                                const std::vector<ChunkExtent>& base,
                                const ParsedSparse& patch) {
  CRITTER_CHECK(base.size() == patch.nranks,
                "sparse snapshot: patch rank count does not match the base "
                "payload");
  std::string out;
  out.reserve(base_full.size() + (kCleanChunkBytes + 24) * 4);
  BinWriter w{out};
  w.raw(kMagic, sizeof kMagic);
  w.u32(kVersion);
  w.u32(patch.nranks);
  std::size_t next = 0;
  for (std::uint32_t rank = 0; rank < patch.nranks; ++rank) {
    if (next < patch.entries.size() && patch.entries[next].rank == rank) {
      const SparseEntry& e = patch.entries[next++];
      w.u64(e.len);
      w.u64(e.sum);
      w.raw(e.body, static_cast<std::size_t>(e.len));
      continue;
    }
    const ChunkExtent& b = base[rank];
    if (chunk_epoch(b) == patch.epochs[rank]) {
      // Unchanged rank: the base frame (header + body) copies through.
      w.raw(b.frame, static_cast<std::size_t>(16 + b.len));
      continue;
    }
    // Epoch-only change: patch the leading 8 bytes of the body and refresh
    // the chunk checksum — still pure byte surgery.
    w.u64(b.len);
    const std::size_t sum_at = out.size();
    w.u64(0);  // checksum backpatched below
    const std::size_t body = out.size();
    w.raw(b.body, static_cast<std::size_t>(b.len));
    std::memcpy(out.data() + body, &patch.epochs[rank], 8);
    const std::uint64_t sum = fnv1a(out.data() + body, b.len);
    std::memcpy(out.data() + sum_at, &sum, 8);
  }
  return out;
}

// --- JSON writer -----------------------------------------------------------

struct JsonWriter {
  std::ostream& os;
  void lit(const char* s) { os << s; }
  void u64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    os << buf;
  }
  void i64(std::int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    os << buf;
  }
  void f64(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
  }
};

void write_key_json(JsonWriter& w, const KernelKey& key) {
  w.u64(static_cast<std::uint64_t>(key.cls));
  for (auto dim : key.dims) {
    w.lit(",");
    w.i64(dim);
  }
  w.lit(",");
  w.u64(key.chan);
}

void write_stats_json(JsonWriter& w, const KernelStats& ks) {
  w.i64(ks.n);
  w.lit(",");
  w.f64(ks.mean);
  w.lit(",");
  w.f64(ks.m2);
  w.lit(",");
  w.i64(ks.invocations_this_epoch);
  w.lit(",");
  w.i64(ks.executions_this_epoch);
  w.lit(",");
  w.i64(ks.total_invocations);
  w.lit(",");
  w.i64(ks.total_executions);
  w.lit(",");
  w.u64(ks.agg_hash);
  w.lit(",");
  w.u64(pack_flags(ks));
}

void save_json(const StatSnapshot& snap, std::ostream& os,
               std::uint32_t version) {
  JsonWriter w{os};
  w.lit("{\"format\":\"");
  w.lit(kJsonFormatTag);
  w.lit("\",\"version\":");
  w.u64(version);
  w.lit(",\"nranks\":");
  w.u64(snap.ranks.size());
  w.lit(",\"ranks\":[");
  bool first_rank = true;
  for (const KernelTable& t : snap.ranks) {
    if (!first_rank) w.lit(",");
    first_rank = false;
    w.lit("\n{\"epoch\":");
    w.i64(t.epoch);
    // kernels: [cls,d0,d1,d2,d3,chan, n,mean,m2,inv_e,exe_e,tot_inv,tot_exe,agg,flags]
    w.lit(",\"kernels\":[");
    bool first = true;
    for (const auto* kv : sorted_kernels(t)) {
      if (!first) w.lit(",");
      first = false;
      w.lit("\n[");
      write_key_json(w, kv->first);
      w.lit(",");
      write_stats_json(w, kv->second);
      w.lit("]");
    }
    // keys: [hash, cls,d0,d1,d2,d3,chan]
    w.lit("],\"keys\":[");
    first = true;
    for (const auto* kv : sorted_by_key(t.key_of_hash)) {
      if (!first) w.lit(",");
      first = false;
      w.lit("\n[");
      w.u64(kv->first);
      w.lit(",");
      write_key_json(w, kv->second);
      w.lit("]");
    }
    // pending: [hash, n,mean,m2,inv_e,exe_e,tot_inv,tot_exe,agg,flags]
    w.lit("],\"pending\":[");
    first = true;
    for (const auto* kv : sorted_by_key(t.pending_eager)) {
      if (!first) w.lit(",");
      first = false;
      w.lit("\n[");
      w.u64(kv->first);
      w.lit(",");
      write_stats_json(w, kv->second);
      w.lit("]");
    }
    // tombstones: [hash, ...] (version >= 2; deltas only, sorted ascending)
    if (version >= 2) {
      w.lit("],\"tombstones\":[");
      first = true;
      for (std::uint64_t h : t.pending_tombstones) {
        if (!first) w.lit(",");
        first = false;
        w.u64(h);
      }
    }
    // channels: [offset, lattice, stride0, size0, stride1, size1, ...]
    w.lit("],\"channels\":[");
    first = true;
    t.channels.for_each([&](std::uint64_t, const Channel& ch) {
      if (!first) w.lit(",");
      first = false;
      w.lit("\n[");
      w.i64(ch.offset);
      w.lit(",");
      w.u64(ch.lattice ? 1 : 0);
      for (const ChannelDim& d : ch.dims) {
        w.lit(",");
        w.i64(d.stride);
        w.lit(",");
        w.i64(d.size);
      }
      w.lit("]");
    });
    // buckets: [id, n, sx, sy, sxx, sxy, syy, min_x, max_x]
    w.lit("],\"buckets\":[");
    first = true;
    t.size_model.for_each([&](std::uint64_t id, const SizeModelBucket& b) {
      if (!first) w.lit(",");
      first = false;
      w.lit("\n[");
      w.u64(id);
      w.lit(",");
      w.i64(b.n);
      w.lit(",");
      w.f64(b.sx);
      w.lit(",");
      w.f64(b.sy);
      w.lit(",");
      w.f64(b.sxx);
      w.lit(",");
      w.f64(b.sxy);
      w.lit(",");
      w.f64(b.syy);
      w.lit(",");
      w.f64(b.min_x);
      w.lit(",");
      w.f64(b.max_x);
      w.lit("]");
    });
    w.lit("]}");
  }
  w.lit("]}\n");
}

// --- JSON parser -----------------------------------------------------------
//
// A minimal recursive-descent parser for the subset of JSON the writer
// emits (objects, arrays, strings without escapes, numbers, booleans).
// Numbers keep their raw text so 64-bit integers round-trip exactly.

struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  std::string text;  // raw number token or string contents
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
  std::uint64_t as_u64() const {
    CRITTER_CHECK(kind == Kind::Number, "stat snapshot: expected JSON number");
    return std::strtoull(text.c_str(), nullptr, 10);
  }
  std::int64_t as_i64() const {
    CRITTER_CHECK(kind == Kind::Number, "stat snapshot: expected JSON number");
    return std::strtoll(text.c_str(), nullptr, 10);
  }
  double as_f64() const {
    CRITTER_CHECK(kind == Kind::Number, "stat snapshot: expected JSON number");
    return std::strtod(text.c_str(), nullptr);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    CRITTER_CHECK(pos_ == s_.size(), "stat snapshot: trailing JSON content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    skip_ws();
    CRITTER_CHECK(pos_ < s_.size(), "stat snapshot: unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    CRITTER_CHECK(peek() == c, std::string("stat snapshot: expected '") + c +
                                   "' in JSON");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string_token() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      CRITTER_CHECK(s_[pos_] != '\\', "stat snapshot: JSON escapes unsupported");
      out.push_back(s_[pos_++]);
    }
    CRITTER_CHECK(pos_ < s_.size(), "stat snapshot: unterminated JSON string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue value() {
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::Object;
      if (!consume('}')) {
        do {
          std::string key = string_token();
          expect(':');
          v.fields.emplace_back(std::move(key), value());
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::Array;
      if (!consume(']')) {
        do {
          v.items.push_back(value());
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.text = string_token();
    } else if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      const std::size_t len = c == 't' ? 4 : 5;
      CRITTER_CHECK(s_.compare(pos_, len, word) == 0,
                    "stat snapshot: bad JSON literal");
      pos_ += len;
      v.kind = JsonValue::Kind::Bool;
      v.boolean = c == 't';
    } else if (c == 'n') {
      CRITTER_CHECK(s_.compare(pos_, 4, "null") == 0,
                    "stat snapshot: bad JSON literal");
      pos_ += 4;
    } else {
      v.kind = JsonValue::Kind::Number;
      const std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
              s_[pos_] == 'e' || s_[pos_] == 'E'))
        ++pos_;
      CRITTER_CHECK(pos_ > start, "stat snapshot: bad JSON token");
      v.text = s_.substr(start, pos_ - start);
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

const JsonValue& json_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  CRITTER_CHECK(v != nullptr, std::string("stat snapshot: missing JSON field ") + key);
  return *v;
}

KernelKey read_key_json(const JsonValue& row, std::size_t at) {
  CRITTER_CHECK(row.items.size() >= at + 6, "stat snapshot: short kernel-key row");
  const auto cls = static_cast<KernelClass>(row.items[at].as_u64());
  std::array<std::int64_t, 4> dims{};
  for (int i = 0; i < 4; ++i) dims[i] = row.items[at + 1 + i].as_i64();
  return KernelKey{cls, dims, row.items[at + 5].as_u64()};
}

KernelStats read_stats_json(const JsonValue& row, std::size_t at) {
  CRITTER_CHECK(row.items.size() >= at + 9, "stat snapshot: short stats row");
  KernelStats ks;
  ks.n = row.items[at].as_i64();
  ks.mean = row.items[at + 1].as_f64();
  ks.m2 = row.items[at + 2].as_f64();
  ks.invocations_this_epoch = row.items[at + 3].as_i64();
  ks.executions_this_epoch = row.items[at + 4].as_i64();
  ks.total_invocations = row.items[at + 5].as_i64();
  ks.total_executions = row.items[at + 6].as_i64();
  ks.agg_hash = row.items[at + 7].as_u64();
  unpack_flags(ks, static_cast<std::uint8_t>(row.items[at + 8].as_u64()));
  return ks;
}

StatSnapshot load_json(const std::string& text) {
  JsonParser parser(text);
  const JsonValue root = parser.parse();
  CRITTER_CHECK(root.kind == JsonValue::Kind::Object,
                "stat snapshot: JSON root must be an object");
  CRITTER_CHECK(json_field(root, "format").text == kJsonFormatTag,
                "stat snapshot: not a stat-snapshot JSON file");
  const std::uint64_t version = json_field(root, "version").as_u64();
  CRITTER_CHECK(version == kVersion || version == kLegacyVersion,
                "stat snapshot: unsupported version " +
                    std::to_string(version) + " (current " +
                    std::to_string(kVersion) + ", upgradable " +
                    std::to_string(kLegacyVersion) + ")");
  const std::uint64_t nranks = json_field(root, "nranks").as_u64();
  CRITTER_CHECK(nranks >= 1 && nranks <= kMaxRanks,
                "stat snapshot: implausible rank count");
  const JsonValue& ranks = json_field(root, "ranks");
  CRITTER_CHECK(ranks.items.size() == nranks,
                "stat snapshot: rank count mismatch");
  StatSnapshot snap;
  snap.ranks.resize(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    const JsonValue& jt = ranks.items[r];
    KernelTable& t = snap.ranks[r];
    t.init_world(static_cast<int>(nranks));
    t.epoch = json_field(jt, "epoch").as_i64();
    for (const JsonValue& row : json_field(jt, "kernels").items)
      t.K.emplace(read_key_json(row, 0), read_stats_json(row, 6));
    for (const JsonValue& row : json_field(jt, "keys").items) {
      CRITTER_CHECK(!row.items.empty(), "stat snapshot: short key row");
      t.key_of_hash.emplace(row.items[0].as_u64(), read_key_json(row, 1));
    }
    for (const JsonValue& row : json_field(jt, "pending").items) {
      CRITTER_CHECK(!row.items.empty(), "stat snapshot: short pending row");
      t.pending_eager.emplace(row.items[0].as_u64(), read_stats_json(row, 1));
    }
    if (version >= 2)
      for (const JsonValue& h : json_field(jt, "tombstones").items)
        t.pending_tombstones.push_back(h.as_u64());
    for (const JsonValue& row : json_field(jt, "channels").items) {
      CRITTER_CHECK(row.items.size() >= 2 && row.items.size() % 2 == 0,
                    "stat snapshot: short channel row");
      Channel ch;
      ch.offset = row.items[0].as_i64();
      ch.lattice = row.items[1].as_u64() != 0;
      for (std::size_t i = 2; i + 1 < row.items.size(); i += 2)
        ch.dims.push_back({row.items[i].as_i64(), row.items[i + 1].as_i64()});
      t.channels.insert_raw(ch);
    }
    for (const JsonValue& row : json_field(jt, "buckets").items) {
      CRITTER_CHECK(row.items.size() >= 9, "stat snapshot: short bucket row");
      SizeModelBucket b;
      b.n = row.items[1].as_i64();
      b.sx = row.items[2].as_f64();
      b.sy = row.items[3].as_f64();
      b.sxx = row.items[4].as_f64();
      b.sxy = row.items[5].as_f64();
      b.syy = row.items[6].as_f64();
      b.min_x = row.items[7].as_f64();
      b.max_x = row.items[8].as_f64();
      t.size_model.set_bucket(row.items[0].as_u64(), b);
    }
  }
  if (version != kVersion)
    apply_snapshot_upgrade(snap, static_cast<std::uint32_t>(version));
  return snap;
}

// --- cross-version migration registry --------------------------------------

struct UpgradeRegistry {
  std::unordered_map<std::uint32_t, SnapshotUpgradeHook> hooks;
  UpgradeRegistry() {
    // Built-in v1 -> v2 hook: version 1 predates delta serialization, so a
    // v1 file is a full snapshot whose tombstone lists are simply empty —
    // the decoded tables already satisfy the current semantics.
    hooks.emplace(kLegacyVersion, [](StatSnapshot&) {});
  }
};

UpgradeRegistry& upgrade_registry() {
  static UpgradeRegistry reg;
  return reg;
}

void apply_snapshot_upgrade(StatSnapshot& snap, std::uint32_t from_version) {
  auto& hooks = upgrade_registry().hooks;
  const auto it = hooks.find(from_version);
  CRITTER_CHECK(it != hooks.end(),
                "stat snapshot: no upgrade hook registered for version " +
                    std::to_string(from_version));
  it->second(snap);
}

}  // namespace

std::uint32_t StatSnapshot::current_version() { return kVersion; }
std::uint32_t StatSnapshot::oldest_upgradable_version() {
  return kLegacyVersion;
}

void register_snapshot_upgrade(std::uint32_t from_version,
                               SnapshotUpgradeHook hook) {
  // The loader only ever consults the registry for version kVersion - 1
  // (older layouts are not decodable); registering anything else would be
  // silently dead, so fail at registration time instead.
  CRITTER_CHECK(from_version + 1 == kVersion,
                "snapshot upgrade hooks apply to version " +
                    std::to_string(kVersion - 1) + " only");
  CRITTER_CHECK(static_cast<bool>(hook), "null snapshot upgrade hook");
  upgrade_registry().hooks[from_version] = std::move(hook);
}

bool snapshot_upgrade_registered(std::uint32_t from_version) {
  return upgrade_registry().hooks.count(from_version) != 0;
}

void StatSnapshot::save(std::ostream& os, Format fmt) const {
  save(os, fmt, kVersion);
}

void StatSnapshot::save(std::ostream& os, Format fmt,
                        std::uint32_t version) const {
  CRITTER_CHECK(version == kVersion || version == kLegacyVersion,
                "stat snapshot: cannot write version " +
                    std::to_string(version));
  CRITTER_CHECK(version >= 2 || !table_has_tombstones(*this),
                "stat snapshot: delta tombstones are not representable in "
                "version 1 files");
  if (fmt == Format::Binary) {
    const std::string bytes = save_binary_string(*this, version);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  } else {
    save_json(*this, os, version);
  }
  CRITTER_CHECK(os.good(), "stat snapshot: write failed");
}

std::string StatSnapshot::to_string(Format fmt) const {
  if (fmt == Format::Binary) return save_binary_string(*this, kVersion);
  std::ostringstream os;
  save_json(*this, os, kVersion);
  return os.str();
}

StatSnapshot StatSnapshot::from_string(std::string_view bytes) {
  // Auto-detect: sparse and full binary formats lead with their 8-byte
  // magics (both start with 'C', so the sparse check must compare the full
  // magic), JSON with '{'.
  CRITTER_CHECK(!bytes.empty(), "stat snapshot: empty input");
  if (is_sparse_payload(bytes))
    return from_string(expand_sparse_delta(bytes));
  if (bytes.front() == kMagic[0]) return load_binary(bytes.data(), bytes.size());
  return load_json(std::string(bytes));
}

// --- dirty-rank sparse transport: public API (DESIGN.md §13) ----------------

bool is_sparse_payload(std::string_view bytes) {
  return bytes.size() >= sizeof kSparseMagic &&
         std::memcmp(bytes.data(), kSparseMagic, sizeof kSparseMagic) == 0;
}

SparsePayloadInfo sparse_payload_info(std::string_view bytes) {
  const ParsedSparse p = parse_sparse(bytes);
  return SparsePayloadInfo{p.mode, p.nranks,
                           static_cast<std::uint32_t>(p.entries.size())};
}

std::string encode_sparse_patch(std::string_view base_full,
                                std::string_view new_full) {
  const std::vector<ChunkExtent> base =
      chunk_extents(base_full, "sparse patch base");
  const std::vector<ChunkExtent> cur =
      chunk_extents(new_full, "sparse patch target");
  CRITTER_CHECK(base.size() == cur.size(),
                "sparse patch: base and target disagree on rank count");
  std::string out;
  BinWriter w{out};
  std::vector<std::int64_t> epochs;
  epochs.reserve(cur.size());
  for (const ChunkExtent& e : cur) epochs.push_back(chunk_epoch(e));
  write_sparse_header(w, static_cast<std::uint32_t>(cur.size()),
                      /*mode=*/0, epochs);
  const std::size_t ndirty_at = out.size();
  w.u32(0);  // dirty count backpatched below
  std::uint32_t ndirty = 0;
  for (std::uint32_t rank = 0; rank < cur.size(); ++rank) {
    const ChunkExtent& b = base[rank];
    const ChunkExtent& c = cur[rank];
    // Byte comparison is the sole decider (§13): identical chunks are
    // omitted outright; chunks whose only difference is the leading epoch
    // are covered by the header's epoch array; anything else ships whole.
    if (b.len == c.len) {
      if (std::memcmp(b.body, c.body, static_cast<std::size_t>(c.len)) == 0)
        continue;
      if (std::memcmp(b.body + 8, c.body + 8,
                      static_cast<std::size_t>(c.len) - 8) == 0)
        continue;  // epoch-only change, carried by the epoch array
    }
    write_sparse_entry(w, rank, c);
    ++ndirty;
  }
  std::memcpy(out.data() + ndirty_at, &ndirty, 4);
  return out;
}

std::string apply_sparse_patch(std::string_view base_full,
                               std::string_view patch) {
  const ParsedSparse p = parse_sparse(patch);
  CRITTER_CHECK(p.mode == 0,
                "sparse snapshot: expected a patch (mode 0), got a "
                "standalone delta");
  const std::vector<ChunkExtent> base =
      chunk_extents(base_full, "sparse patch base");
  return splice_sparse_patch(base_full, base, p);
}

void apply_sparse_patch_in_place(std::string& full_bytes, StatSnapshot& snap,
                                 std::string_view patch) {
  const ParsedSparse p = parse_sparse(patch);
  CRITTER_CHECK(p.mode == 0,
                "sparse snapshot: expected a patch (mode 0), got a "
                "standalone delta");
  const std::vector<ChunkExtent> base =
      chunk_extents(full_bytes, "sparse patch base");
  CRITTER_CHECK(snap.nranks() == static_cast<int>(p.nranks),
                "sparse snapshot: patch rank count does not match the "
                "decoded snapshot");
  full_bytes = splice_sparse_patch(full_bytes, base, p);
  // Refresh only the touched tables: dirty ranks re-decode their shipped
  // chunk, epoch-only ranks overwrite the one field.  Untouched ranks keep
  // their decoded table (and its dirty-tracking version) as-is.
  std::size_t next = 0;
  for (std::uint32_t rank = 0; rank < p.nranks; ++rank) {
    KernelTable& t = snap.ranks[rank];
    if (next < p.entries.size() && p.entries[next].rank == rank) {
      const SparseEntry& e = p.entries[next++];
      const std::uint64_t v = t.version;
      BinReader cr{e.body, e.body + e.len};
      t = KernelTable{};
      read_rank_binary(cr, t, p.nranks, kVersion);
      CRITTER_CHECK(cr.p == cr.end,
                    "sparse snapshot: trailing content in rank chunk");
      t.version = v + 1;
      continue;
    }
    if (t.epoch != p.epochs[rank]) {
      t.epoch = p.epochs[rank];
      t.touch();
    }
  }
}

std::string encode_sparse_delta(const StatSnapshot& delta) {
  const std::string full = save_binary_string(delta, kVersion);
  const std::vector<ChunkExtent> chunks =
      chunk_extents(full, "sparse delta source");
  std::string out;
  BinWriter w{out};
  std::vector<std::int64_t> epochs;
  epochs.reserve(chunks.size());
  for (const ChunkExtent& e : chunks) epochs.push_back(chunk_epoch(e));
  write_sparse_header(w, static_cast<std::uint32_t>(chunks.size()),
                      /*mode=*/1, epochs);
  const std::size_t ndirty_at = out.size();
  w.u32(0);
  std::uint32_t ndirty = 0;
  for (std::uint32_t rank = 0; rank < chunks.size(); ++rank) {
    // A rank a diff left untouched serializes as the clean chunk (epoch +
    // six empty sections); everything else ships byte-for-byte.
    if (chunk_is_clean(chunks[rank])) continue;
    write_sparse_entry(w, rank, chunks[rank]);
    ++ndirty;
  }
  std::memcpy(out.data() + ndirty_at, &ndirty, 4);
  return out;
}

std::string expand_sparse_delta(std::string_view sparse) {
  const ParsedSparse p = parse_sparse(sparse);
  CRITTER_CHECK(p.mode == 1,
                "sparse snapshot: expected a standalone delta (mode 1), got "
                "a patch that needs its base");
  std::string out;
  BinWriter w{out};
  w.raw(kMagic, sizeof kMagic);
  w.u32(kVersion);
  w.u32(p.nranks);
  std::size_t next = 0;
  for (std::uint32_t rank = 0; rank < p.nranks; ++rank) {
    if (next < p.entries.size() && p.entries[next].rank == rank) {
      const SparseEntry& e = p.entries[next++];
      w.u64(e.len);
      w.u64(e.sum);
      w.raw(e.body, static_cast<std::size_t>(e.len));
      continue;
    }
    const std::string body = clean_chunk_body(p.epochs[rank]);
    w.u64(body.size());
    w.u64(fnv1a(body.data(), body.size()));
    w.raw(body.data(), body.size());
  }
  return out;
}

void StatSnapshot::save_file(const std::string& path, Format fmt) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  CRITTER_CHECK(os.is_open(), "stat snapshot: cannot open " + path);
  save(os, fmt);
}

StatSnapshot StatSnapshot::load(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return from_string(buf.view());
}

KernelStats moments_to_stats(const KernelMoments& m) {
  KernelStats ks;
  ks.n = m.n;
  ks.mean = m.mean;
  ks.m2 = m.n > 1 ? m.variance * static_cast<double>(m.n - 1) : 0.0;
  return ks;
}

KernelMoments stats_to_moments(const KernelKey& key, const KernelStats& ks) {
  KernelMoments m;
  m.key = key;
  m.n = ks.n;
  m.mean = ks.mean;
  m.variance = ks.n > 1 ? ks.m2 / static_cast<double>(ks.n - 1) : 0.0;
  return m;
}

std::vector<KernelMoments> extract_moments(const StatSnapshot& snap) {
  // Fold rank tables in rank order; per-key the fold is a Chan moment
  // merge, so the pooled moments are a pure function of the snapshot.
  std::unordered_map<std::uint64_t, std::pair<KernelKey, KernelStats>> pooled;
  for (const KernelTable& t : snap.ranks) {
    for (const auto* kv : sorted_kernels(t)) {
      if (kv->second.n == 0) continue;
      auto [it, inserted] =
          pooled.try_emplace(kv->first.hash(), kv->first, KernelStats{});
      it->second.second.merge(kv->second);
    }
  }
  std::vector<KernelMoments> out;
  out.reserve(pooled.size());
  for (const auto& [hash, entry] : pooled)
    out.push_back(stats_to_moments(entry.first, entry.second));
  std::sort(out.begin(), out.end(),
            [](const KernelMoments& a, const KernelMoments& b) {
              return a.key.hash() < b.key.hash();
            });
  return out;
}

StatSnapshot StatSnapshot::load_file(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  // Map the file and decode in place: the span-based reader never copies a
  // rank chunk, so an mmap'ed load touches each byte exactly twice (checksum,
  // decode) with zero intermediate buffers.  Irregular or empty files — and
  // any mmap failure — fall back to the stream path below.
  struct FdGuard {
    int fd;
    ~FdGuard() { if (fd >= 0) ::close(fd); }
  } fg{::open(path.c_str(), O_RDONLY)};
  CRITTER_CHECK(fg.fd >= 0, "stat snapshot: cannot open " + path);
  struct stat st{};
  if (::fstat(fg.fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    const auto size = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fg.fd, 0);
    if (map != MAP_FAILED) {
      struct MapGuard {
        void* p;
        std::size_t n;
        ~MapGuard() { ::munmap(p, n); }
      } mg{map, size};
      try {
        return from_string(
            std::string_view(static_cast<const char*>(map), size));
      } catch (const std::exception& e) {
        // Re-anchor deep parse failures to the file: "which snapshot file
        // was bad" is the actionable part when a sweep folds many of them.
        throw std::runtime_error("stat snapshot: failed to load '" + path +
                                 "': " + e.what());
      }
    }
  }
#endif
  std::ifstream is(path, std::ios::binary);
  CRITTER_CHECK(is.is_open(), "stat snapshot: cannot open " + path);
  try {
    return load(is);
  } catch (const std::exception& e) {
    throw std::runtime_error("stat snapshot: failed to load '" + path +
                             "': " + e.what());
  }
}

}  // namespace critter::core
