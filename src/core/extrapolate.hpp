// Kernel performance-model extrapolation across input sizes — the paper's
// §VIII future-work extension:
//
//   "Extrapolation of individual kernel performance models to characterize
//    kernel performance across varying input sizes can benefit a wide class
//    of algorithms, including CANDMC's pipelined QR factorization
//    algorithm.  Such line-fitting approaches can permit kernel execution
//    to be more selective."
//
// Each (kernel class, option flags) bucket accumulates (flops, mean-time)
// points from kernels that reached steady state and fits a least-squares
// line t = a + b*flops — the affine shape of real kernel costs (per-call
// overhead plus time-per-flop).  Once a bucket holds enough well-spread
// points and the line fits tightly (R² gate), a *never-executed* kernel of
// the same class is skipped immediately: its execution time is predicted
// from the line.
// CANDMC's shrinking trailing matrix — a fresh gemm signature per panel —
// is exactly the workload this collapses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/signature.hpp"

namespace critter::core {

struct SizeModelBucket {
  // accumulators of the OLS fit (x = flops, y = time)
  std::int64_t n = 0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  double min_x = 1e300, max_x = -1e300;

  void add(double flops, double time);

  /// Pool another bucket's observations: the fit accumulators are plain
  /// moment sums, so merging adds them and the line is implicitly refit
  /// from the merged moments on the next slope()/intercept() call.
  void merge(const SizeModelBucket& other);

  /// Inverse of merge() for the sums; the spread bounds are kept as-is
  /// (min/max cannot be subtracted), which is exact whenever the delta is
  /// merged back into a bucket containing `base` — min/max re-merge
  /// idempotently.
  void unmerge(const SizeModelBucket& base);
  /// Least-squares slope/intercept; only meaningful when usable().
  double slope() const;
  double intercept() const;
  double r_squared() const;
  /// Enough points, enough spread in size, and a tight fit?
  bool usable(int min_points, double min_r2) const;
  /// Predicted execution time for a kernel with the given flop count.
  double predict(double flops) const;
};

/// Per-rank registry of extrapolation buckets.
class SizeModel {
 public:
  /// Record a steady kernel's (flops, mean time) observation.
  void observe(const KernelKey& key, double flops, double mean_time);

  /// Predicted time for an unseen kernel, or a negative value if the
  /// bucket is not usable yet.
  double predict(const KernelKey& key, double flops, int min_points = 3,
                 double min_r2 = 0.98) const;

  std::size_t bucket_count() const { return buckets_.size(); }

  /// Pool another model's buckets (statistics-lifecycle merge).
  void merge_from(const SizeModel& other);

  /// Reduce to the contribution on top of `base` (see bucket unmerge);
  /// buckets with no new points are dropped entirely.
  void unmerge_from(const SizeModel& base);

  /// Visit buckets in ascending-id (deterministic) order.
  template <class F>
  void for_each(F&& f) const {
    std::vector<std::uint64_t> ids;
    ids.reserve(buckets_.size());
    for (const auto& [id, b] : buckets_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) f(id, buckets_.at(id));
  }

  /// Deserialization: install a fully-populated bucket.
  void set_bucket(std::uint64_t id, const SizeModelBucket& b) {
    buckets_[id] = b;
  }

 private:
  static std::uint64_t bucket_id(const KernelKey& key) {
    // class + option flags; dims vary within a bucket by design
    return (static_cast<std::uint64_t>(key.cls) << 32) ^
           static_cast<std::uint64_t>(key.dims[3]);
  }
  std::unordered_map<std::uint64_t, SizeModelBucket> buckets_;
};

}  // namespace critter::core
