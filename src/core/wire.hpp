// Fixed-size wire format of the internal propagation message (IntMsg).
//
// Every intercepted communication kernel piggybacks one of these: path
// metrics, the execute flag, the ~K path-count table, and (eager policy)
// kernel statistics being aggregated along the channel.  The buffer size is
// fixed by the configured capacities so the internal allreduce/sendrecv has
// a uniform payload — its transfer time is the profiling overhead the paper
// reports as "minimal", and we charge it honestly through the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/profiler.hpp"
#include "sim/engine.hpp"

namespace critter::core {

struct WireHeader {
  double metrics[PathMetrics::kFields];
  std::int64_t execute;   // max-merged want-execution flag
  std::int64_t n_tilde;   // valid ~K entries
  std::int64_t n_eager;   // valid eager entries
};

struct WireTilde {
  std::uint64_t key;
  std::int64_t freq;
};

struct WireEager {
  std::uint64_t key;
  std::uint64_t agg;  // coverage hash *before* this aggregation step
  std::int64_t n;
  double mean;
  double m2;
};

/// Owning view over one serialized IntMsg.
class IntMsg {
 public:
  IntMsg(int tilde_cap, int eager_cap);

  static int wire_bytes(int tilde_cap, int eager_cap);

  std::byte* data() { return buf_.data(); }
  const std::byte* data() const { return buf_.data(); }
  int bytes() const { return static_cast<int>(buf_.size()); }

  WireHeader& header();
  const WireHeader& header() const;
  WireTilde* tilde();
  const WireTilde* tilde() const;
  WireEager* eager();
  const WireEager* eager() const;

  int tilde_cap() const { return tilde_cap_; }
  int eager_cap() const { return eager_cap_; }

  /// Fill from the current rank state: path metrics, execute flag, ~K
  /// entries (largest-frequency first when over capacity).
  void pack(const RankProfiler& rp, bool want_execute);

  /// Merge a received/folded message into the rank state: adopt metrics
  /// (elementwise max with own), adopt ~K of the longer path, fold eager
  /// entries into K / pending_eager and extend channel coverage.
  void unpack_into(RankProfiler& rp, const Config& cfg,
                   std::uint64_t chan_hash) const;

  /// Associative fold used as the internal allreduce operator.
  static sim::ReduceFn fold_fn(int tilde_cap, int eager_cap);

 private:
  int tilde_cap_;
  int eager_cap_;
  std::vector<std::byte> buf_;
};

/// Append eligible eager entries for aggregation along `chan_hash`
/// (steady, not yet globally propagated, coverage extendable).
void pack_eager_entries(IntMsg& msg, const RankProfiler& rp, const Config& cfg,
                        std::uint64_t chan_hash);

}  // namespace critter::core
