#include "core/stats.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace critter::core {

double normal_quantile_two_sided(double confidence) {
  CRITTER_CHECK(confidence > 0.0 && confidence < 1.0, "confidence in (0,1)");
  // Acklam's rational approximation of the probit function, evaluated at
  // p = (1 + confidence) / 2 for the two-sided interval.
  const double p = 0.5 * (1.0 + confidence);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double normal_quantile_cached(double confidence) {
  // The confidence level is fixed for the lifetime of a run in practice;
  // a 1-entry memo turns the per-decision probit evaluation into a compare.
  thread_local double conf = -1.0;
  thread_local double z = 0.0;
  if (confidence != conf) {
    z = normal_quantile_two_sided(confidence);
    conf = confidence;
  }
  return z;
}

double KernelStats::relative_ci(double z, std::int64_t k_eff,
                                std::int64_t min_samples) const {
  if (n < min_samples || mean <= 0.0)
    return std::numeric_limits<double>::infinity();
  const double se = std::sqrt(variance() / static_cast<double>(n));
  const double shrink = std::sqrt(static_cast<double>(k_eff < 1 ? 1 : k_eff));
  return z * se / (shrink * mean);
}

bool KernelStats::is_steady(double z, double tolerance, std::int64_t k_eff,
                            std::int64_t min_samples) const {
  return relative_ci(z, k_eff, min_samples) <= tolerance;
}

void KernelStats::merge(const KernelStats& other) {
  if (other.n == 0) return;
  if (n == 0) {
    n = other.n;
    mean = other.mean;
    m2 = other.m2;
    return;
  }
  const double na = static_cast<double>(n), nb = static_cast<double>(other.n);
  const double delta = other.mean - mean;
  const double nt = na + nb;
  mean += delta * nb / nt;
  m2 += other.m2 + delta * delta * na * nb / nt;
  n += other.n;
}

void KernelStats::unmerge(const KernelStats& base) {
  if (base.n == 0) return;
  CRITTER_CHECK(n >= base.n, "unmerge against a larger base");
  const double nt = static_cast<double>(n), na = static_cast<double>(base.n);
  const double nb = nt - na;
  if (base.n == n) {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    return;
  }
  const double mean_b = (nt * mean - na * base.mean) / nb;
  const double delta = mean_b - base.mean;
  const double m2_b = m2 - base.m2 - delta * delta * na * nb / nt;
  n -= base.n;
  mean = mean_b;
  m2 = m2_b > 0.0 ? m2_b : 0.0;
}

}  // namespace critter::core
