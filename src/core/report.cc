// Final reduction producing the run Report (critical-path maxima +
// volumetric averages), mirroring critter's stop-time reduction.
#include <cstring>

#include "core/profiler.hpp"
#include "sim/api.hpp"
#include "util/check.hpp"

namespace critter {

namespace {

// Wire block for the stop() reduction: a max section and a sum section.
struct Packed {
  // max-combined
  double path[PathMetrics::kFields];
  double elapsed;
  double kernel_comp_time;
  double modeled_comp_time;
  double overhead_time;
  // sum-combined
  double s_modeled_comp;
  double s_modeled_comm;
  double s_flops;
  double s_words;
  double s_syncs;
  double s_executed;
  double s_skipped;
};
constexpr int kMaxFields = PathMetrics::kFields + 4;

sim::ReduceFn packed_fold() {
  return [](const void* in_v, void* inout_v, int bytes) {
    CRITTER_CHECK(bytes == sizeof(Packed), "report fold size mismatch");
    const auto* in = static_cast<const Packed*>(in_v);
    auto* io = static_cast<Packed*>(inout_v);
    const double* a = reinterpret_cast<const double*>(in);
    double* b = reinterpret_cast<double*>(io);
    constexpr int total = sizeof(Packed) / sizeof(double);
    for (int i = 0; i < kMaxFields; ++i) b[i] = std::max(b[i], a[i]);
    for (int i = kMaxFields; i < total; ++i) b[i] += a[i];
  };
}

}  // namespace

Report stop() {
  RankProfiler& rp = prof();
  CRITTER_CHECK(rp.active, "critter::stop without start");
  sim::RankCtx& ctx = sim::Engine::ctx();

  Packed mine{};
  std::memcpy(mine.path, rp.path.as_array(), sizeof mine.path);
  mine.elapsed = ctx.clock - rp.start_clock;
  mine.kernel_comp_time = rp.local.kernel_comp_time;
  mine.modeled_comp_time = rp.local.modeled_comp_time;
  mine.overhead_time = rp.local.overhead_time;
  mine.s_modeled_comp = rp.local.modeled_comp_time;
  mine.s_modeled_comm = rp.local.modeled_comm_time;
  mine.s_flops = rp.local.flops;
  mine.s_words = rp.local.words;
  mine.s_syncs = rp.local.syncs;
  mine.s_executed = static_cast<double>(rp.local.executed);
  mine.s_skipped = static_cast<double>(rp.local.skipped);

  Packed out{};
  sim::allreduce(&mine, &out, sizeof(Packed), packed_fold(), sim::world());

  const int p = sim::world_size();
  Report r;
  std::memcpy(r.critical.as_array(), out.path, sizeof out.path);
  r.wall_time = out.elapsed;
  r.max_kernel_comp_time = out.kernel_comp_time;
  r.max_modeled_comp_time = out.modeled_comp_time;
  r.overhead_time = out.overhead_time;
  r.executed = static_cast<std::int64_t>(out.s_executed);
  r.skipped = static_cast<std::int64_t>(out.s_skipped);
  r.p = p;
  r.volavg.exec_time = (out.s_modeled_comp + out.s_modeled_comm) / p;
  r.volavg.comp_time = out.s_modeled_comp / p;
  r.volavg.comm_time = out.s_modeled_comm / p;
  r.volavg.sync_cost = out.s_syncs / p;
  r.volavg.comm_cost = out.s_words / p;
  r.volavg.comp_cost = out.s_flops / p;

  // Snapshot for a-priori propagation.
  rp.last_exec_time = rp.path.exec_time;
  rp.last_tilde = rp.tilde;

  rp.active = false;
  ctx.user_data = nullptr;
  return r;
}

}  // namespace critter
