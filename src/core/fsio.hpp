// Filesystem primitives and the atomic-publish protocol, shared by every
// layer that persists or exchanges artifacts (dist run directories, the net
// blob store, the serve daemon's session journals).
//
// Extracted from src/dist/protocol.* so the network and daemon layers reuse
// one implementation of the two-step publish instead of re-implementing it:
//
//   1. the payload is written to `<name>.tmp` and renamed to `<name>`;
//   2. a manifest `<name>.ok` (payload byte count + FNV-1a checksum) is
//      written the same way.
//
// A reader polls for the manifest only: once `<name>.ok` is visible the
// payload rename has already happened (same directory, program order), so a
// visible manifest whose payload is missing or does not match the declared
// size/checksum is *stale* — evidence of a torn publish or an unrelated
// file — and is reported as such rather than retried forever.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace critter::core {

bool file_exists(const std::string& path);
std::string read_file(const std::string& path);
/// Plain (non-atomic) write; for artifacts produced before any reader
/// exists, e.g. a run manifest written before workers launch.
void write_file(const std::string& path, const std::string& content);
/// Atomic single-file write (tmp + rename, no manifest): readers see the
/// old content or the new, never a torn mix.  For frequently rewritten
/// best-effort artifacts like heartbeat files, where the two-step publish
/// protocol's manifest would double the write traffic for no benefit (a
/// heartbeat's value is that it *changed*, not what it says).
void write_file_atomic(const std::string& path, const std::string& content);
/// Append to the end of `path`, creating it if absent.  The increment-log
/// primitive: an interrupted append can tear only the new tail, which the
/// framed-record scan rejects — the existing prefix stays trustworthy.
void append_file(const std::string& path, const std::string& content);
/// mkdir, existing directory OK; parents must exist.
void make_dir(const std::string& path);
/// Immediate children of `path` (files and directories), sorted by name —
/// deterministic scan order for resume code.  Empty for a missing path.
std::vector<std::string> list_dir(const std::string& path);
/// Fresh private directory under $TMPDIR (default /tmp).
std::string make_temp_dir(const std::string& prefix);
/// Best-effort recursive removal (shallow directory trees); never throws.
void remove_dir_tree(const std::string& path);

/// Render the publish manifest for a payload (the size/FNV stamp readers
/// verify).  One implementation so the file protocol, the net blob store,
/// and any future transport agree byte-for-byte on what "published" means.
std::string publish_manifest(const std::string& payload);
/// Verify `payload` against a manifest produced by publish_manifest();
/// throws with a "stale manifest" message naming `what` on any mismatch.
void check_publish_manifest(const std::string& manifest,
                            const std::string& payload,
                            const std::string& what);

/// Atomically publish `payload` as `dir/name` (tmp + rename + manifest).
void publish_file(const std::string& dir, const std::string& name,
                  const std::string& payload);
/// True once `dir/name`'s manifest is visible.
bool published(const std::string& dir, const std::string& name);
/// Read a published payload, verifying the manifest's size and checksum.
/// Throws with "missing"/"stale manifest" in the message when the payload
/// is absent, short, or does not hash to the manifest's declared value.
std::string read_published(const std::string& dir, const std::string& name);

void sleep_ms(int ms);
double monotonic_s();

}  // namespace critter::core
