#include "core/wire.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace critter::core {

IntMsg::IntMsg(int tilde_cap, int eager_cap)
    : tilde_cap_(tilde_cap), eager_cap_(eager_cap),
      buf_(wire_bytes(tilde_cap, eager_cap)) {
  header() = WireHeader{};
}

int IntMsg::wire_bytes(int tilde_cap, int eager_cap) {
  return static_cast<int>(sizeof(WireHeader) + tilde_cap * sizeof(WireTilde) +
                          eager_cap * sizeof(WireEager));
}

WireHeader& IntMsg::header() { return *reinterpret_cast<WireHeader*>(buf_.data()); }
const WireHeader& IntMsg::header() const {
  return *reinterpret_cast<const WireHeader*>(buf_.data());
}
WireTilde* IntMsg::tilde() {
  return reinterpret_cast<WireTilde*>(buf_.data() + sizeof(WireHeader));
}
const WireTilde* IntMsg::tilde() const {
  return reinterpret_cast<const WireTilde*>(buf_.data() + sizeof(WireHeader));
}
WireEager* IntMsg::eager() {
  return reinterpret_cast<WireEager*>(buf_.data() + sizeof(WireHeader) +
                                      tilde_cap_ * sizeof(WireTilde));
}
const WireEager* IntMsg::eager() const {
  return reinterpret_cast<const WireEager*>(buf_.data() + sizeof(WireHeader) +
                                            tilde_cap_ * sizeof(WireTilde));
}

void IntMsg::pack(const RankProfiler& rp, bool want_execute) {
  WireHeader& h = header();
  std::memcpy(h.metrics, rp.path.as_array(), sizeof h.metrics);
  h.execute = want_execute ? 1 : 0;
  h.n_eager = 0;

  WireTilde* t = tilde();
  if (static_cast<int>(rp.tilde.size()) <= tilde_cap_) {
    // fast path: everything fits, no ordering needed
    std::int64_t n = 0;
    rp.tilde.for_each(
        [&](std::uint64_t key, std::int64_t freq) { t[n++] = WireTilde{key, freq}; });
    h.n_tilde = n;
    return;
  }
  // over capacity: keep the highest-frequency kernels (they matter most
  // for the sqrt(k) shrink), deterministically ordered.
  std::vector<std::pair<std::int64_t, std::uint64_t>> order;
  order.reserve(rp.tilde.size());
  rp.tilde.for_each(
      [&](std::uint64_t key, std::int64_t freq) { order.push_back({freq, key}); });
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  order.resize(tilde_cap_);
  h.n_tilde = static_cast<std::int64_t>(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    t[i] = WireTilde{order[i].second, order[i].first};
}

void pack_eager_entries(IntMsg& msg, const RankProfiler& rp, const Config& cfg,
                        std::uint64_t chan_hash) {
  WireHeader& h = msg.header();
  WireEager* e = msg.eager();
  const double z = normal_quantile_cached(cfg.confidence);
  for (const auto& [key, ks] : rp.table.K) {
    if (h.n_eager >= msg.eager_cap()) break;
    if (ks.global_steady || ks.n < cfg.min_samples) continue;
    if (!ks.is_steady(z, cfg.tolerance, 1, cfg.min_samples)) continue;
    std::uint64_t combined = 0;
    if (!rp.table.channels.try_extend_coverage(ks.agg_hash, chan_hash, &combined))
      continue;
    e[h.n_eager++] =
        WireEager{key.hash(), ks.agg_hash, ks.n, ks.mean, ks.m2};
  }
}

void IntMsg::unpack_into(RankProfiler& rp, const Config& cfg,
                         std::uint64_t chan_hash) const {
  const WireHeader& h = header();
  // Adopt the folded per-metric maxima.  If the folded execution-time path
  // is longer than ours, its ~K table replaces ours (paper Fig. 2 lines
  // 64-65); on ties we necessarily contributed the max, so keep ours.
  const bool adopt_tilde = h.metrics[0] > rp.path.exec_time;
  PathMetrics folded;
  std::memcpy(folded.as_array(), h.metrics, sizeof h.metrics);
  rp.path.max_with(folded);
  if (adopt_tilde) {
    rp.tilde.clear();
    const WireTilde* t = tilde();
    for (std::int64_t i = 0; i < h.n_tilde; ++i) rp.tilde[t[i].key] = t[i].freq;
  }

  // Eager statistics aggregation (paper Fig. 2 aggregate_statistics).
  const double z = normal_quantile_cached(cfg.confidence);
  const WireEager* e = eager();
  for (std::int64_t i = 0; i < h.n_eager; ++i) {
    const auto kit = rp.table.key_of_hash.find(e[i].key);
    KernelStats incoming;
    incoming.n = e[i].n;
    incoming.mean = e[i].mean;
    incoming.m2 = e[i].m2;
    if (kit == rp.table.key_of_hash.end()) {
      // Kernel not seen locally yet: stash; merged when first encountered.
      KernelStats& pend = rp.table.pending_eager[e[i].key];
      pend.merge(incoming);
      std::uint64_t combined = 0;
      if (rp.table.channels.try_extend_coverage(e[i].agg, chan_hash, &combined))
        pend.agg_hash = combined;
      continue;
    }
    KernelStats& ks = rp.table.K.at(kit->second);
    if (ks.global_steady) continue;
    // Only merge when the aggregation base matches ours; otherwise the
    // sample sets could overlap (the bias the paper's channel algebra
    // exists to prevent).  Exception: a fresh local kernel (agg 0) adopts.
    if (ks.agg_hash != e[i].agg && ks.agg_hash != 0) continue;
    ks.merge(incoming);
    std::uint64_t combined = 0;
    if (rp.table.channels.try_extend_coverage(e[i].agg, chan_hash, &combined)) {
      ks.agg_hash = combined;
      if (rp.table.channels.covers_world(combined) &&
          ks.is_steady(z, cfg.tolerance, 1, cfg.min_samples))
        ks.global_steady = true;
    }
  }
}

sim::ReduceFn IntMsg::fold_fn(int tilde_cap, int eager_cap) {
  return [tilde_cap, eager_cap](const void* in_v, void* inout_v, int bytes) {
    CRITTER_CHECK(bytes == wire_bytes(tilde_cap, eager_cap),
                  "IntMsg fold size mismatch");
    const std::byte* inb = static_cast<const std::byte*>(in_v);
    std::byte* iob = static_cast<std::byte*>(inout_v);
    const auto* hin = reinterpret_cast<const WireHeader*>(inb);
    auto* hio = reinterpret_cast<WireHeader*>(iob);
    const double in_exec = hin->metrics[0];
    const double io_exec = hio->metrics[0];

    for (int i = 0; i < PathMetrics::kFields; ++i)
      hio->metrics[i] = std::max(hio->metrics[i], hin->metrics[i]);
    hio->execute = std::max(hio->execute, hin->execute);

    if (in_exec > io_exec) {
      // adopt the longer path's ~K table wholesale
      hio->n_tilde = hin->n_tilde;
      std::memcpy(iob + sizeof(WireHeader), inb + sizeof(WireHeader),
                  static_cast<std::size_t>(tilde_cap) * sizeof(WireTilde));
    }

    // Merge eager entries by kernel hash.
    const auto* ein = reinterpret_cast<const WireEager*>(
        inb + sizeof(WireHeader) + tilde_cap * sizeof(WireTilde));
    auto* eio = reinterpret_cast<WireEager*>(
        iob + sizeof(WireHeader) + tilde_cap * sizeof(WireTilde));
    for (std::int64_t i = 0; i < hin->n_eager; ++i) {
      const WireEager& e = ein[i];
      bool merged = false;
      for (std::int64_t j = 0; j < hio->n_eager; ++j) {
        if (eio[j].key != e.key) continue;
        if (eio[j].agg == e.agg) {
          // Chan parallel merge of (n, mean, m2)
          KernelStats a, b;
          a.n = eio[j].n; a.mean = eio[j].mean; a.m2 = eio[j].m2;
          b.n = e.n; b.mean = e.mean; b.m2 = e.m2;
          a.merge(b);
          eio[j].n = a.n; eio[j].mean = a.mean; eio[j].m2 = a.m2;
        } else if (e.n > eio[j].n) {
          eio[j] = e;  // different base: keep the better-sampled view
        }
        merged = true;
        break;
      }
      if (!merged && hio->n_eager < eager_cap) eio[hio->n_eager++] = e;
    }
  };
}

}  // namespace critter::core
