// Statistics-lifecycle subsystem: the persistent kernel-statistics state of
// one profiled rank as a first-class value type.
//
// The paper's accelerator is the *reuse* of kernel statistics — across
// samples, configurations (persistent-stats sweeps), grid channels (eager
// propagation), and input sizes (§VIII extrapolation).  This layer owns
// that state so it can move independently of the profiler that grows it:
//
//   * KernelTable   — one rank's persistent statistics (K, the hash->key
//     registry, pending eager stats, the channel registry, the cross-size
//     model, and the tuning epoch) with a deterministic merge() and an
//     exact diff() (merge inverse) for extracting a sweep worker's batch
//     contribution;
//   * StatSnapshot  — all ranks' tables, the unit of snapshot/restore on a
//     profiler Store and of warm-start persistence: a versioned binary or
//     JSON serialization (save()/load()) lets a sweep resume in another
//     process with bit-identical statistics.
//
// Determinism contract: merge() is a pure function of its two operands —
// per-key operations are independent and channel/bucket iteration happens
// in sorted-hash order — so folding a fixed sequence of deltas produces
// identical tables regardless of how many threads produced them
// (tune/sweep.cc relies on this for batch-synchronous shared-stat sweeps).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/channel.hpp"
#include "core/extrapolate.hpp"
#include "core/kernel_arena.hpp"
#include "core/signature.hpp"
#include "core/stats.hpp"

namespace critter::core {

/// One rank's persistent kernel-statistics state (survives engine runs and,
/// unless cleared, tuning configurations).
struct KernelTable {
  /// Arena-backed: contiguous block storage, dense-index addressing, stable
  /// references, insertion-order iteration (see core/kernel_arena.hpp).
  KernelArena K;
  /// Kernel-hash -> key registry (kernels referenced by hash on the wire).
  std::unordered_map<std::uint64_t, KernelKey> key_of_hash;
  /// Eager propagation: statistics received for kernels not yet seen
  /// locally, absorbed into K on first local sighting.
  std::unordered_map<std::uint64_t, KernelStats> pending_eager;
  /// Delta-only bookkeeping (produced by diff(), consumed by merge();
  /// serialized since snapshot version 2 so file-borne deltas — the
  /// distributed executors' mid-sweep exchange — stay exact): hashes of
  /// base pending-eager entries this table absorbed into K.  diff() subtracts the absorbed moments from the K delta and
  /// records the tombstone; merge() then absorbs the *target's* copy of the
  /// pending entry exactly once — the first tombstone erases it — so
  /// sibling deltas of one batch cannot double-count the absorbed samples.
  /// Sorted ascending; empty outside deltas.
  std::vector<std::uint64_t> pending_tombstones;
  ChannelRegistry channels;
  SizeModel size_model;  ///< cross-size extrapolation (§VIII)
  std::int64_t epoch = 0;
  /// Dirty-tracking version counter (DESIGN.md §13): bumped by every
  /// mutation path that can change the table's serialized bytes — merge,
  /// epoch advance, statistics reset, wholesale restore.  Profiler writes
  /// during a run are covered because every evaluation window opens with
  /// new_epoch().  NOT serialized and NOT part of any equality: it is a
  /// change *pre-filter* (an unchanged version means the chunk bytes are
  /// unchanged; a changed version means "re-compare"), never the decider —
  /// transport correctness always rests on byte comparison.
  std::uint64_t version = 0;

  /// Record a mutation for the dirty-tracking pre-filter.
  void touch() { ++version; }

  /// Register the world communicator's channel (required before use).
  void init_world(int nranks) { channels.init_world(nranks); }

  /// Advance the tuning epoch: non-eager policies re-execute every kernel
  /// at least once per epoch, enforced through the per-epoch counters.
  void new_epoch();

  /// Drop kernel statistics (K, hash registry, pending eager stats).  The
  /// channel registry, size model, and epoch survive — matching the
  /// paper's per-configuration reset, which the extrapolation extension
  /// deliberately outlives.
  void clear_statistics();

  /// Deterministic union/moment merge: Welford moments via Chan's parallel
  /// merge, execution counters summed, channel registries unioned, size
  /// model refit from summed moments, epoch max-merged.  Eager coverage
  /// hashes that conflict restart at zero (re-aggregation is always safe).
  /// Pending-eager entries whose kernel is registered in K on either side
  /// are absorbed into that K entry (moments only, mirroring the
  /// profiler's first-sighting absorption) rather than dropped, and a
  /// delta's pending tombstones absorb the target's copy exactly once —
  /// so same-batch siblings that each consumed the base's pending entry
  /// count its samples once, and pending growth merged after a sibling
  /// registered the kernel is not lost.
  void merge(const KernelTable& other);

  /// Exact merge inverse: reduce *this* (which evolved on top of `base`)
  /// to the delta such that base.merge(delta) reproduces it.  Per-epoch
  /// counters are zeroed in the delta — they are dead state across the
  /// batch barrier because every evaluation starts with new_epoch().
  KernelTable diff(const KernelTable& base) const;

  /// Exact statistical equality (bitwise on moments), used by tests and by
  /// the warm-start resume check.  Ignores per-epoch counters.
  bool same_statistics(const KernelTable& other) const;
};

/// All ranks' tables: the unit of Store snapshot/restore and of warm-start
/// persistence across processes.
struct StatSnapshot {
  std::vector<KernelTable> ranks;

  int nranks() const { return static_cast<int>(ranks.size()); }
  bool empty() const { return ranks.empty(); }

  /// Per-rank table merge, `delta.ranks.size()` must match.
  void merge(const StatSnapshot& delta);

  /// Per-rank exact merge inverse (see KernelTable::diff): *this* must have
  /// evolved on top of `base`; base.merge(diff) reproduces it.  The delta
  /// carries pending tombstones, so it round-trips through save()/load()
  /// (version >= 2) without losing exactness — the unit of the distributed
  /// executors' incremental publishes.
  StatSnapshot diff(const StatSnapshot& base) const;

  bool same_statistics(const StatSnapshot& other) const;

  enum class Format : std::uint8_t { Binary, Json };

  /// Current serialization version (written by default) and the oldest
  /// version load() upgrades from via a registered hook.
  static std::uint32_t current_version();
  static std::uint32_t oldest_upgradable_version();

  /// Versioned serialization.  Binary is the compact exact format — since
  /// version 2 each rank table is a length-prefixed, checksummed chunk, so
  /// truncation and corruption are detected before any record is decoded;
  /// JSON is the interoperable one (doubles printed with 17 significant
  /// digits, so both round-trip bit-exactly).  `version` may name the
  /// previous version to produce files for older readers (the snapshot must
  /// then carry no version-2-only state, i.e. no pending tombstones).
  void save(std::ostream& os, Format fmt) const;
  void save(std::ostream& os, Format fmt, std::uint32_t version) const;
  void save_file(const std::string& path, Format fmt = Format::Binary) const;

  /// Serialize to an in-memory payload (current version).  The binary
  /// encoder writes straight into the returned buffer — the hot path for
  /// the distributed executors' delta publishes, which frame the payload
  /// themselves and never want a stream in between.
  std::string to_string(Format fmt = Format::Binary) const;

  /// Load either format (auto-detected from the leading bytes).  Snapshots
  /// of the previous version are accepted when an upgrade hook is
  /// registered for it (the library pre-registers the v1 -> v2 hook).
  /// Throws std::runtime_error on truncated, corrupt, or unsupported-
  /// version input — always before returning partial state.
  /// from_string decodes a borrowed payload in place (rank chunks are
  /// checksummed and parsed without copying); load_file prefers an mmap of
  /// the file for the same zero-copy decode, falling back to a stream read.
  static StatSnapshot load(std::istream& is);
  static StatSnapshot from_string(std::string_view bytes);
  static StatSnapshot load_file(const std::string& path);
};

/// One kernel's pooled runtime moments, extracted read-only from a
/// snapshot: the per-rank Welford accumulators of the same key merged
/// across ranks (Chan), so `n`/`mean`/`variance` describe every timing
/// sample any rank holds for that kernel.  The surrogate-model subsystem
/// consumes this as its transfer prior (DESIGN.md §9).
struct KernelMoments {
  KernelKey key;
  std::int64_t n = 0;
  double mean = 0.0;
  double variance = 0.0;
};

/// Deterministic read-only moment extraction: every registered kernel's
/// pooled moments, ranks folded in rank order and the result sorted by
/// ascending key hash.  Does not modify the snapshot; kernels with no
/// timing samples (n == 0) are omitted.
std::vector<KernelMoments> extract_moments(const StatSnapshot& snap);

/// KernelMoments <-> KernelStats conversion (m2 = variance * (n - 1)), so
/// pooled-moment records merge through the one Welford/Chan implementation
/// instead of re-deriving the moment algebra at every call site.
KernelStats moments_to_stats(const KernelMoments& m);
KernelMoments stats_to_moments(const KernelKey& key, const KernelStats& ks);

// ---------------------------------------------------------------------------
// Dirty-rank sparse transport (DESIGN.md §13)
// ---------------------------------------------------------------------------
//
// The v2 binary snapshot frames every rank table as a length-prefixed,
// FNV-checksummed chunk.  The sparse codec rides that framing: a sparse
// payload names only the *dirty* ranks and carries their chunks verbatim,
// plus the authoritative per-rank epoch array (the epoch is the first 8
// bytes of every chunk body, so a rank whose bytes changed only in its
// epoch ships 8 bytes instead of its whole table).  Application is byte
// splicing — chunk substitution plus an in-place epoch overwrite with a
// checksum refresh — so sparse transport is *byte-equivalent* to shipping
// the full snapshot: no float algebra, no ulp drift, bit-identity by
// construction.  Two modes:
//
//   * mode 0 (patch): relative to a full v2 base payload the receiver
//     already holds — the tuner daemon's TELL and journal records;
//   * mode 1 (standalone delta): self-contained — a rank absent from the
//     dirty list reconstructs as the canonical "clean" delta chunk (its
//     epoch, zero records) — the exchange mailbox and checkpoint blobs.
//     from_string() auto-detects mode-1 payloads and expands them, so
//     every existing snapshot reader accepts sparse deltas unchanged.
//
// Every decoder is fuzz-hardened like the full codec: magic/version/mode
// checked first, rank indices strictly ascending and bounded (duplicates
// and overlaps rejected), every chunk length bounded by the bytes
// remaining, every chunk checksum verified before use, trailing bytes
// rejected.

/// True when `bytes` lead with the sparse-payload magic ("CRSPRS1\n").
bool is_sparse_payload(std::string_view bytes);

/// Header summary of a sparse payload (validates magic/version/mode/nranks
/// and the dirty count's bound, not the chunks).
struct SparsePayloadInfo {
  int mode = 0;               ///< 0 = patch-onto-base, 1 = standalone delta
  std::uint32_t nranks = 0;   ///< rank count of the (base) snapshot
  std::uint32_t ndirty = 0;   ///< ranks shipping a full chunk
};
SparsePayloadInfo sparse_payload_info(std::string_view bytes);

/// Encode the mode-0 patch turning full v2 payload `base_full` into
/// `new_full` (same rank count required).  A rank whose chunk bytes are
/// unchanged — or differ only in the leading epoch field — ships no chunk;
/// the decision is a byte comparison, never a version-counter shortcut.
std::string encode_sparse_patch(std::string_view base_full,
                                std::string_view new_full);

/// Apply a mode-0 patch to a full v2 payload, returning the new full
/// payload: exactly the `new_full` bytes encode_sparse_patch() saw.
std::string apply_sparse_patch(std::string_view base_full,
                               std::string_view patch);

/// Apply a mode-0 patch to a cached (bytes, parsed) pair in lock step:
/// `full_bytes` is spliced, and only the dirty ranks of `snap` are
/// re-decoded (epoch-only ranks just overwrite the epoch field) — the
/// tuner daemon's TELL hot path, which must not re-parse clean ranks.
void apply_sparse_patch_in_place(std::string& full_bytes, StatSnapshot& snap,
                                 std::string_view patch);

/// Encode a snapshot as a mode-1 standalone sparse delta: ranks whose
/// chunk equals the canonical clean chunk (epoch + zero records — what
/// diff() produces for an untouched rank) are carried by the epoch array
/// alone.  expand_sparse_delta(encode_sparse_delta(s)) == s.to_string().
std::string encode_sparse_delta(const StatSnapshot& delta);

/// Expand a mode-1 sparse delta to the exact full v2 payload it encodes.
/// Rejects mode-0 patches (those need a base only their producer holds).
std::string expand_sparse_delta(std::string_view sparse);

/// Cross-version migration scaffolding: a hook registered for version `v`
/// upgrades a snapshot decoded with version v's physical layout to the
/// current version's semantics.  load() consults the registry whenever it
/// meets a version-`current - 1` file; without a registered hook the load
/// fails with an unsupported-version error.  Re-registering replaces the
/// hook (user code may wrap the built-in one).
using SnapshotUpgradeHook = std::function<void(StatSnapshot&)>;
void register_snapshot_upgrade(std::uint32_t from_version,
                               SnapshotUpgradeHook hook);
bool snapshot_upgrade_registered(std::uint32_t from_version);

}  // namespace critter::core
