// Communication channels and aggregate channels (paper Fig. 2, §III-B).
//
// A channel is the (offset, {(stride, size)...}) signature of a
// sub-communicator's world-rank set: communicators that slice a cartesian
// processor grid (rows, columns, fibers, layers) decompose into arithmetic
// lattices.  The channel *hash* deliberately excludes the offset, so all
// parallel instances of the same grid slice (every column, say) share one
// signature — that is what lets kernel statistics be keyed per-slice-shape
// and aggregated across the grid.
//
// Aggregate channels implement the paper's recursive basis construction:
// two channels combine when their stride/size lattices are disjoint and
// stack into a larger cartesian sub-grid; once a kernel's statistics have
// been propagated along a combination covering the full grid, every rank
// holds them and the kernel may be switched off globally (eager policy).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace critter::core {

struct ChannelDim {
  std::int64_t stride = 1;
  std::int64_t size = 1;
  bool operator==(const ChannelDim&) const = default;
};

struct Channel {
  std::int64_t offset = 0;
  std::vector<ChannelDim> dims;  ///< sorted by ascending stride
  bool lattice = true;  ///< false if the rank set is not an arithmetic lattice

  /// Number of ranks spanned.
  std::int64_t span() const;

  /// Hash from (stride, size) pairs only (offset-free, per the paper).
  std::uint64_t hash() const;

  std::vector<std::int64_t> world_ranks() const;
};

/// Factor a sorted world-rank list into a channel.  Falls back to a
/// non-lattice channel (hashed over the full list) when the set is not an
/// arithmetic lattice.
Channel channel_from_ranks(const std::vector<int>& sorted_world_ranks);

/// True if the two channels' dimension sets are disjoint and interleave into
/// a valid mixed-radix lattice (i.e. they are orthogonal slices of one
/// cartesian grid); fills `out` with the combined channel if so.
bool combine_channels(const Channel& a, const Channel& b, Channel* out);

/// Per-rank registry of channels and recursively built aggregates.
class ChannelRegistry {
 public:
  /// Register the world communicator's channel; returns its hash (which is
  /// also the "full coverage" target for eager propagation).
  std::uint64_t init_world(int nranks);

  /// Register a sub-communicator's channel; builds new aggregates per the
  /// paper's recursive rule.  Returns the channel hash.
  std::uint64_t add_channel(const std::vector<int>& sorted_world_ranks);

  /// Hash of the registered channel for a communicator id, if known.
  bool known(std::uint64_t hash) const { return channels_.count(hash) > 0; }
  const Channel* find(std::uint64_t hash) const;

  std::uint64_t world_hash() const { return world_hash_; }
  std::int64_t world_span() const { return world_span_; }

  /// True if the coverage hash refers to a (possibly aggregate) channel
  /// spanning the entire grid.  Note a row x column aggregate covers the
  /// world even though its hash differs from the world channel's hash.
  bool covers_world(std::uint64_t agg) const {
    const Channel* c = find(agg);
    return c != nullptr && c->lattice && c->span() >= world_span_;
  }

  /// Eager propagation support: given a kernel whose statistics have been
  /// aggregated along channels with combined coverage hash `agg` (0 = only
  /// local), would also aggregating along channel `chan` produce a strictly
  /// larger valid coverage?  On success sets `*combined` to the new
  /// coverage hash (which equals world_hash() at full coverage).
  bool try_extend_coverage(std::uint64_t agg, std::uint64_t chan,
                           std::uint64_t* combined) const;

  std::size_t size() const { return channels_.size(); }

  /// Union with another registry (same world): adopts every channel and
  /// aggregate the other side knows.  Insertion is keyed by the
  /// content-derived hash, so the merge is idempotent, commutative, and
  /// independent of iteration order.
  void merge_from(const ChannelRegistry& other);

  /// Insert a fully-built channel (e.g. deserialized, or copied from a peer
  /// registry) without re-running the aggregate construction — the source
  /// registry already materialized its aggregates.
  void insert_raw(const Channel& ch) { insert(ch.hash(), ch); }

  /// Visit every channel in ascending-hash (deterministic) order.
  template <class F>
  void for_each(F&& f) const {
    for (std::uint64_t h : sorted_hashes_) f(h, channels_.at(h));
  }

  /// Same registered channel set (hashes are content-derived, so comparing
  /// the sorted hash lists compares the channels).
  bool same_channels(const ChannelRegistry& other) const {
    return sorted_hashes_ == other.sorted_hashes_;
  }

 private:
  /// try_emplace + sorted-hash-list maintenance; true if newly inserted.
  bool insert(std::uint64_t h, Channel ch);

  std::unordered_map<std::uint64_t, Channel> channels_;  // includes aggregates
  std::vector<std::uint64_t> sorted_hashes_;  // deterministic iteration order
  std::uint64_t world_hash_ = 0;
  std::int64_t world_span_ = 0;
};

}  // namespace critter::core
