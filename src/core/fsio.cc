#include "core/fsio.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace critter::core {

using util::fnv1a;  // the publish-manifest checksum

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CRITTER_CHECK(is.is_open(), "cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  CRITTER_CHECK(!is.bad(), "read failed for " + path);
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  CRITTER_CHECK(os.is_open(), "cannot open " + path + " for writing");
  os.write(content.data(), static_cast<std::streamsize>(content.size()));
  os.close();
  CRITTER_CHECK(!os.fail(), "write failed for " + path);
}

void append_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::app);
  CRITTER_CHECK(os.is_open(), "cannot open " + path + " for append");
  os.write(content.data(), static_cast<std::streamsize>(content.size()));
  os.close();
  CRITTER_CHECK(!os.fail(), "append failed for " + path);
}

void make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
    CRITTER_CHECK(false, "mkdir failed for " + path + ": " +
                             std::strerror(errno));
}

std::vector<std::string> list_dir(const std::string& path) {
  std::vector<std::string> out;
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

std::string make_temp_dir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr && *base != '\0' ? base
                                                                  : "/tmp") +
                     "/" + prefix + "XXXXXX";
  std::string buf = tmpl;
  CRITTER_CHECK(::mkdtemp(buf.data()) != nullptr,
                "mkdtemp failed for " + tmpl + ": " + std::strerror(errno));
  return buf;
}

void remove_dir_tree(const std::string& path) {
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    const std::string child = path + "/" + name;
    struct stat st;
    if (::lstat(child.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode))
      remove_dir_tree(child);
    else
      ::unlink(child.c_str());
  }
  ::closedir(d);
  ::rmdir(path.c_str());
}

namespace {

void atomic_write(const std::string& dir, const std::string& name,
                  const std::string& content) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  write_file(tmp, content);
  CRITTER_CHECK(::rename(tmp.c_str(), final_path.c_str()) == 0,
                "rename failed for " + final_path + ": " +
                    std::strerror(errno));
}

std::string manifest_name(const std::string& name) { return name + ".ok"; }

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  write_file(tmp, content);
  CRITTER_CHECK(::rename(tmp.c_str(), path.c_str()) == 0,
                "rename failed for " + path + ": " + std::strerror(errno));
}

std::string publish_manifest(const std::string& payload) {
  std::ostringstream manifest;
  manifest << "bytes=" << payload.size() << "\nfnv=" << std::hex
           << fnv1a(payload.data(), payload.size()) << "\n";
  return manifest.str();
}

void check_publish_manifest(const std::string& manifest,
                            const std::string& payload,
                            const std::string& what) {
  std::size_t bytes = 0;
  unsigned long long sum = 0;
  const int parsed = std::sscanf(manifest.c_str(), "bytes=%zu\nfnv=%llx",
                                 &bytes, &sum);
  CRITTER_CHECK(parsed == 2,
                "stale manifest " + what + ": unparsable content");
  CRITTER_CHECK(payload.size() == bytes,
                "stale manifest " + what + ": payload has " +
                    std::to_string(payload.size()) + " bytes, manifest "
                    "declares " + std::to_string(bytes));
  CRITTER_CHECK(fnv1a(payload.data(), payload.size()) == sum,
                "stale manifest " + what +
                    ": payload checksum mismatch (torn or corrupt publish)");
}

void publish_file(const std::string& dir, const std::string& name,
                  const std::string& payload) {
  atomic_write(dir, name, payload);
  atomic_write(dir, manifest_name(name), publish_manifest(payload));
}

bool published(const std::string& dir, const std::string& name) {
  return file_exists(dir + "/" + manifest_name(name));
}

std::string read_published(const std::string& dir, const std::string& name) {
  const std::string ok_path = dir + "/" + manifest_name(name);
  CRITTER_CHECK(file_exists(ok_path),
                "missing publish manifest " + ok_path +
                    " — the artifact was never published");
  const std::string manifest = read_file(ok_path);
  const std::string payload_path = dir + "/" + name;
  CRITTER_CHECK(file_exists(payload_path),
                "stale manifest " + ok_path + ": payload " + payload_path +
                    " is missing");
  const std::string payload = read_file(payload_path);
  check_publish_manifest(manifest, payload, ok_path);
  return payload;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace critter::core
