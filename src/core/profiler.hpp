// The approximate-autotuning profiler (paper §III–§IV).
//
// A Store holds per-rank profiler state that persists across simulated runs
// (kernel statistics survive between tuning samples and, unless reset,
// between configurations — that persistence is what the eager policy
// exploits).  Inside an Engine::run body, each rank attaches its slice with
// critter::start(store) and detaches with critter::stop(), which returns the
// run's critical-path report.
//
// Selective execution: every intercepted kernel is either executed (sample
// collected, virtual clock advances) or skipped (its sample mean is charged
// to the online critical-path model P instead).  Communication kernels
// reach a consistent execute/skip decision through an internal allreduce
// (blocking collectives) or a piggybacked sender-side flag (point-to-point;
// see DESIGN.md for the deliberate divergence from Fig. 2's pseudocode).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/stat_store.hpp"
#include "sim/engine.hpp"
#include "util/flat_map.hpp"

namespace critter {

/// Kernel execution policies of §IV-B.
enum class Policy : std::uint8_t {
  ConditionalExecution,  ///< no count propagation; k_eff = 1
  EagerPropagation,      ///< global skip after grid-wide stat aggregation
  LocalPropagation,      ///< k_eff = local invocation count
  OnlinePropagation,     ///< k_eff = count along current sub-critical path
  AprioriPropagation,    ///< k_eff from a prior full execution's path counts
};

const char* policy_name(Policy p);

/// Model: kernels advance virtual time only (no data).  Real: kernels also
/// perform actual linear algebra on caller buffers (for correctness tests).
enum class ExecMode : std::uint8_t { Model, Real };

struct Config {
  Policy policy = Policy::ConditionalExecution;
  double tolerance = 0.25;  ///< epsilon: relative CI threshold
  double confidence = 0.95;
  int min_samples = 3;
  ExecMode mode = ExecMode::Model;
  /// false disables skipping (full execution) but keeps profiling.
  bool selective = true;
  /// false disables all interception bookkeeping and internal messages;
  /// used to measure the "true" uninstrumented execution time.
  bool instrument = true;
  /// Capacities of the piggybacked internal message (fixed wire size);
  /// these set the profiling-overhead bytes charged per intercepted
  /// communication kernel (ablated in bench_ablation).
  int tilde_capacity = 64;
  int eager_capacity = 16;
  /// Fixed per-kernel launch overhead added to the gamma*flops model (s).
  double kernel_overhead = 5.0e-7;
  /// §VIII extension: skip never-executed compute kernels whose (class,
  /// flags) bucket has a tight log-log size model fitted from steady
  /// kernels of other sizes.
  bool extrapolate = false;
};

/// Metrics propagated along execution paths.  Each metric is max-merged
/// independently, i.e. each has its own critical path (paper Fig. 1).
struct PathMetrics {
  double exec_time = 0.0;  ///< modeled execution time (the estimate of c_phi)
  double comp_time = 0.0;  ///< computation kernel time along the path
  double comm_time = 0.0;  ///< communication kernel time along the path
  double sync_cost = 0.0;  ///< BSP alpha term: number of super-steps
  double comm_cost = 0.0;  ///< BSP beta term: words moved
  double comp_cost = 0.0;  ///< BSP gamma term: flops

  static constexpr int kFields = 6;
  void max_with(const PathMetrics& o);
  double* as_array() { return &exec_time; }
  const double* as_array() const { return &exec_time; }
};

/// Per-rank volumetric counters (not path-propagated).
struct LocalCounters {
  double kernel_comp_time = 0.0;  ///< measured, executed kernels only
  double kernel_comm_time = 0.0;
  double modeled_comp_time = 0.0;  ///< executed + skipped (model view)
  double modeled_comm_time = 0.0;
  double overhead_time = 0.0;  ///< internal propagation message time
  double flops = 0.0;
  double words = 0.0;
  double syncs = 0.0;
  std::int64_t executed = 0;
  std::int64_t skipped = 0;
  std::int64_t extrapolated = 0;  ///< skipped via the cross-size model
};

/// Per-rank profiler state.  The persistent statistics lifecycle (K, the
/// channel registry, the size model, the epoch) lives in a core::KernelTable
/// so it can be snapshotted, merged, and persisted independently of the
/// per-run path state (P, ~K), which resets at start().
struct RankProfiler {
  using CountMap = util::FlatMap<std::uint64_t, std::int64_t, util::IdentityHash>;

  // --- persistent across runs (see core/stat_store.hpp) ---
  core::KernelTable table;
  CountMap apriori;  // kernel hash -> critical-path count (per configuration)

  // --- per-run state ---
  PathMetrics path;
  CountMap tilde;  // ~K: cp counts
  LocalCounters local;
  std::unordered_map<int, std::uint64_t> chan_of_comm;  // sim comm id -> hash
  /// (comm id << 32 | peer) -> channel hash, so repeated p2p kernels skip
  /// the registry's factorization/aggregation path.  Valid for one run
  /// (comm ids are engine-local); cleared at start().
  util::FlatMap<std::uint64_t, std::uint64_t, util::IdentityHash> p2p_chan;
  /// One-entry interned-handle cache: tight kernel loops hit the same
  /// signature repeatedly, so the last kernel's dense arena index is
  /// remembered and revalidated with a single key compare (the entry holds
  /// its key).  Indices survive inserts (the arena never moves entries) and
  /// are invalidated on reset_statistics()/restore().
  std::uint32_t cached_idx = core::KernelArena::npos;
  double start_clock = 0.0;
  bool active = false;

  // --- snapshot of the last completed run (for a-priori propagation) ---
  double last_exec_time = 0.0;
  CountMap last_tilde;
};

/// The profiler store shared by all ranks of a simulated job; persists
/// across Engine::run invocations (one Engine per run).
class Store {
 public:
  Store(int nranks, Config cfg);

  Config& config() { return cfg_; }
  const Config& config() const { return cfg_; }
  int nranks() const { return static_cast<int>(ranks_.size()); }
  RankProfiler& rank(int r) { return ranks_.at(r); }

  /// Advance the tuning epoch (call when switching to a new configuration;
  /// non-eager policies re-execute every kernel at least once per epoch).
  void new_epoch();

  /// Clear all kernel statistics (paper: done between configurations for
  /// SLATE's and CANDMC's algorithms).
  void reset_statistics();

  /// After a full (non-selective) run, install its critical-path kernel
  /// execution counts as the a-priori table on every rank.
  void set_apriori_from_last_run();

  /// Deep copy of every rank's persistent statistics (the statistics
  /// lifecycle's snapshot point; see core/stat_store.hpp).
  core::StatSnapshot snapshot() const;

  /// Replace every rank's persistent statistics with the snapshot's.
  /// Rank counts must match.  Invalidate-sensitive caches are cleared.
  void restore(const core::StatSnapshot& snap);

  /// Per-rank statistics delta accumulated since `base` was captured from
  /// (or restored into) this store: base.merge(diff) reproduces the
  /// current state.
  core::StatSnapshot diff(const core::StatSnapshot& base) const;

 private:
  Config cfg_;
  std::vector<RankProfiler> ranks_;
};

/// Attach the current sim rank to its profiler slice; must be called inside
/// an Engine::run body before any critter::mpi / critter::blas call.
void start(Store& store);

/// Current rank's profiler (between start and stop).
RankProfiler& prof();
Store& store();
const Config& config();

/// Report of one run; identical on every rank (built via a final reduction).
struct Report {
  PathMetrics critical;  ///< per-metric maxima over ranks (critical paths)
  PathMetrics volavg;    ///< volumetric averages over ranks
  double wall_time = 0.0;             ///< max elapsed virtual time (tuning cost)
  double max_kernel_comp_time = 0.0;  ///< max over ranks, executed kernels
  double max_modeled_comp_time = 0.0;
  double overhead_time = 0.0;  ///< max over ranks of internal-message time
  std::int64_t executed = 0;
  std::int64_t skipped = 0;
  int p = 0;
};

/// Final path/counter reduction; detaches the rank from the store.
Report stop();

// --- internals shared by the interception layers ---
namespace detail {
/// Channel hash for a communicator (registers it on first sight).
std::uint64_t channel_of(sim::Comm c);
/// K lookup through the rank's one-entry interned-handle cache: a hit is an
/// index load plus one key compare — no hashing, no probe.
inline core::KernelStats& stats_for(RankProfiler& rp,
                                    const core::KernelKey& key) {
  core::KernelArena& K = rp.table.K;
  if (rp.cached_idx != core::KernelArena::npos) {
    core::KernelArena::value_type& e = K.entry(rp.cached_idx);
    if (e.first == key) return e.second;
  }
  const auto [idx, inserted] = K.insert_index(key);
  (void)inserted;
  rp.cached_idx = idx;
  return K.entry(idx).second;
}
/// Effective critical-path count for the CI shrink, per policy.
std::int64_t k_effective(const RankProfiler& rp, const Config& cfg,
                         const core::KernelKey& key,
                         const core::KernelStats& ks);
/// Local execute decision for a kernel (before any inter-rank agreement).
bool wants_execution(const RankProfiler& rp, const Config& cfg,
                     const core::KernelKey& key, const core::KernelStats& ks);
/// Record a kernel on the local path: bumps ~K and invocation counters.
void note_invocation(RankProfiler& rp, const core::KernelKey& key,
                     core::KernelStats& ks);
}  // namespace detail

}  // namespace critter
