#include "core/signature.hpp"

#include <sstream>

namespace critter::core {

const char* kernel_class_name(KernelClass c) {
  switch (c) {
    case KernelClass::Gemm: return "gemm";
    case KernelClass::Syrk: return "syrk";
    case KernelClass::Trsm: return "trsm";
    case KernelClass::Trmm: return "trmm";
    case KernelClass::Potrf: return "potrf";
    case KernelClass::Trtri: return "trtri";
    case KernelClass::Getrf: return "getrf";
    case KernelClass::Geqrf: return "geqrf";
    case KernelClass::Ormqr: return "ormqr";
    case KernelClass::Geqrt: return "geqrt";
    case KernelClass::Tpqrt: return "tpqrt";
    case KernelClass::Tpmqrt: return "tpmqrt";
    case KernelClass::User: return "user";
    case KernelClass::Bcast: return "bcast";
    case KernelClass::Reduce: return "reduce";
    case KernelClass::Allreduce: return "allreduce";
    case KernelClass::Allgather: return "allgather";
    case KernelClass::Gather: return "gather";
    case KernelClass::Scatter: return "scatter";
    case KernelClass::Barrier: return "barrier";
    case KernelClass::Send: return "send";
    case KernelClass::Recv: return "recv";
    case KernelClass::Isend: return "isend";
  }
  return "?";
}

std::string KernelKey::to_string() const {
  std::ostringstream os;
  os << kernel_class_name(cls) << "[" << dims[0] << "," << dims[1] << ","
     << dims[2] << "," << dims[3] << "]";
  if (chan != 0) os << "@" << std::hex << (chan & 0xFFFF);
  return os.str();
}

}  // namespace critter::core
