#include "core/mpi.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "core/channel.hpp"
#include "core/wire.hpp"
#include "util/check.hpp"

namespace critter::mpi {

namespace {

constexpr int kInternalTagOffset = 1 << 20;

// Reusable wire buffers: two per *rank* (send-side and merged/received) —
// they must not be shared across ranks, because a rank can yield inside a
// sim call while its buffer is still pending staging or unpacking, and
// another rank would otherwise overwrite it.  Rebuilt when capacities
// change; a cached fold functor avoids a std::function allocation per op.
// thread_local so concurrent tuner workers (one engine per thread) do not
// share scratch state.
core::IntMsg& scratch_msg(int tilde_cap, int eager_cap, int slot) {
  const int rank = sim::world_rank();
  thread_local std::vector<std::array<std::unique_ptr<core::IntMsg>, 2>> per_rank;
  if (static_cast<int>(per_rank.size()) <= rank) per_rank.resize(rank + 1);
  auto& p = per_rank[rank][slot];
  if (!p || p->tilde_cap() != tilde_cap || p->eager_cap() != eager_cap)
    p = std::make_unique<core::IntMsg>(tilde_cap, eager_cap);
  return *p;
}

const sim::ReduceFn& cached_fold(int tilde_cap, int eager_cap) {
  thread_local sim::ReduceFn fn;
  thread_local int tc = -1, ec = -1;
  if (tc != tilde_cap || ec != eager_cap) {
    fn = core::IntMsg::fold_fn(tilde_cap, eager_cap);
    tc = tilde_cap;
    ec = eager_cap;
  }
  return fn;
}

core::KernelClass coll_kernel_class(sim::CollType t) {
  switch (t) {
    case sim::CollType::Bcast: return core::KernelClass::Bcast;
    case sim::CollType::Reduce: return core::KernelClass::Reduce;
    case sim::CollType::Allreduce: return core::KernelClass::Allreduce;
    case sim::CollType::Allgather: return core::KernelClass::Allgather;
    case sim::CollType::Gather: return core::KernelClass::Gather;
    case sim::CollType::Scatter: return core::KernelClass::Scatter;
    case sim::CollType::Barrier: return core::KernelClass::Barrier;
    case sim::CollType::Split: break;
  }
  CRITTER_CHECK(false, "no kernel class for collective");
}

/// Channel signature of a point-to-point pair: a size-2 sub-communicator
/// whose stride is the world-rank distance (paper §V-D).  The hash is
/// computed directly — pair channels are deliberately NOT registered in the
/// ChannelRegistry: no coverage query (try_extend_coverage / covers_world)
/// ever names a p2p channel, and registering one forces the registry to
/// combine it against every existing channel, which profiling shows
/// dominates the instrumented-sim event loop on p2p-heavy workloads.
/// Cached per (comm, peer) for the run so repeated messages on a pair skip
/// even the factorization.
std::uint64_t p2p_channel(sim::Comm c, int peer_local) {
  critter::RankProfiler& rp = critter::prof();
  const std::uint64_t cache_key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.id)) << 32) |
      static_cast<std::uint32_t>(peer_local);
  std::uint64_t& cached = rp.p2p_chan[cache_key];
  if (cached != 0) return cached;
  const auto& members = sim::engine().comm_members(c);
  const int me_world = sim::Engine::ctx().rank;
  const int peer_world = members[peer_local];
  std::vector<int> pair{std::min(me_world, peer_world),
                        std::max(me_world, peer_world)};
  if (pair[0] == pair[1]) pair.pop_back();  // self-message
  cached = core::channel_from_ranks(pair).hash();
  return cached;
}

/// Shared bookkeeping after the execute/skip decision of a communication
/// kernel: updates statistics, the path model P, and volumetric counters.
/// `measured` is the user operation's duration if executed.
void account_comm(critter::RankProfiler& rp, core::KernelStats& ks,
                  double words, bool executed, double measured) {
  double dt;
  if (executed) {
    dt = measured;
    ks.add_sample(dt);
    ++ks.executions_this_epoch;
    ++ks.total_executions;
    rp.local.kernel_comm_time += dt;
    ++rp.local.executed;
  } else {
    dt = ks.mean;
    ++rp.local.skipped;
  }
  rp.path.exec_time += dt;
  rp.path.comm_time += dt;
  rp.path.sync_cost += 1.0;
  rp.path.comm_cost += words;
  rp.local.modeled_comm_time += dt;
  rp.local.syncs += 1.0;
  rp.local.words += words;
}

void intercepted_coll(sim::CollType type, const void* sendbuf, void* recvbuf,
                      int bytes, int root, const sim::ReduceFn& fn,
                      sim::Comm c) {
  const Config& cfg = critter::config();
  if (!cfg.instrument) {
    sim::engine().f_coll(type, sendbuf, recvbuf, bytes, root, fn, c);
    return;
  }
  critter::RankProfiler& rp = critter::prof();
  const std::uint64_t chan = critter::detail::channel_of(c);
  core::KernelKey key{coll_kernel_class(type),
                      {static_cast<std::int64_t>(bytes), 0, 0, 0}, chan};
  core::KernelStats& ks = critter::detail::stats_for(rp, key);
  critter::detail::note_invocation(rp, key, ks);
  const bool want = critter::detail::wants_execution(rp, cfg, key, ks);

  // Internal allreduce: propagate path profiles, reach a consistent
  // execute decision, and (eager) aggregate kernel statistics.
  core::IntMsg& msg = scratch_msg(cfg.tilde_capacity, cfg.eager_capacity, 0);
  msg.pack(rp, want);
  if (cfg.policy == Policy::EagerPropagation)
    core::pack_eager_entries(msg, rp, cfg, chan);
  core::IntMsg& merged = scratch_msg(cfg.tilde_capacity, cfg.eager_capacity, 1);
  const double t0 = sim::now();
  sim::allreduce(msg.data(), merged.data(), msg.bytes(),
                 cached_fold(cfg.tilde_capacity, cfg.eager_capacity), c);
  rp.local.overhead_time += sim::now() - t0;
  merged.unpack_into(rp, cfg, chan);
  const bool execute = merged.header().execute != 0;

  double measured = 0.0;
  if (execute) {
    const double t1 = sim::now();
    sim::engine().f_coll(type, sendbuf, recvbuf, bytes, root, fn, c);
    measured = sim::now() - t1;
  }
  const int p = sim::comm_size(c);
  const double words = sim::Machine::coll_bytes_moved(type, bytes, p) / 8.0;
  account_comm(rp, ks, words, execute, measured);
}

}  // namespace

void bcast(void* buf, int bytes, int root, sim::Comm c) {
  intercepted_coll(sim::CollType::Bcast, buf, buf, bytes, root, nullptr, c);
}
void reduce(const void* sbuf, void* rbuf, int bytes, const sim::ReduceFn& fn,
            int root, sim::Comm c) {
  intercepted_coll(sim::CollType::Reduce, sbuf, rbuf, bytes, root, fn, c);
}
void allreduce(const void* sbuf, void* rbuf, int bytes, const sim::ReduceFn& fn,
               sim::Comm c) {
  intercepted_coll(sim::CollType::Allreduce, sbuf, rbuf, bytes, 0, fn, c);
}
void allgather(const void* sbuf, int bytes, void* rbuf, sim::Comm c) {
  intercepted_coll(sim::CollType::Allgather, sbuf, rbuf, bytes, 0, nullptr, c);
}
void gather(const void* sbuf, int bytes, void* rbuf, int root, sim::Comm c) {
  intercepted_coll(sim::CollType::Gather, sbuf, rbuf, bytes, root, nullptr, c);
}
void scatter(const void* sbuf, int bytes, void* rbuf, int root, sim::Comm c) {
  intercepted_coll(sim::CollType::Scatter, sbuf, rbuf, bytes, root, nullptr, c);
}
void barrier(sim::Comm c) {
  intercepted_coll(sim::CollType::Barrier, nullptr, nullptr, 0, 0, nullptr, c);
}

void send(const void* buf, int bytes, int dest, int tag, sim::Comm c) {
  const Config& cfg = critter::config();
  if (!cfg.instrument) {
    sim::send(buf, bytes, dest, tag, c);
    return;
  }
  critter::RankProfiler& rp = critter::prof();
  core::KernelKey key{core::KernelClass::Send,
                      {static_cast<std::int64_t>(bytes), 0, 0, 0},
                      p2p_channel(c, dest)};
  core::KernelStats& ks = critter::detail::stats_for(rp, key);
  critter::detail::note_invocation(rp, key, ks);
  const bool execute = critter::detail::wants_execution(rp, cfg, key, ks);

  core::IntMsg& msg = scratch_msg(cfg.tilde_capacity, cfg.eager_capacity, 0);
  msg.pack(rp, execute);
  const double t0 = sim::now();
  sim::send(msg.data(), msg.bytes(), dest, tag + kInternalTagOffset, c);
  rp.local.overhead_time += sim::now() - t0;

  double measured = 0.0;
  if (execute) {
    const double t1 = sim::now();
    sim::send(buf, bytes, dest, tag, c);
    measured = sim::now() - t1;
  }
  account_comm(rp, ks, bytes / 8.0, execute, measured);
}

void recv(void* buf, int bytes, int src, int tag, sim::Comm c) {
  const Config& cfg = critter::config();
  if (!cfg.instrument) {
    sim::recv(buf, bytes, src, tag, c);
    return;
  }
  critter::RankProfiler& rp = critter::prof();
  const std::uint64_t chan = p2p_channel(c, src);
  core::KernelKey key{core::KernelClass::Recv,
                      {static_cast<std::int64_t>(bytes), 0, 0, 0}, chan};
  core::KernelStats& ks = critter::detail::stats_for(rp, key);
  critter::detail::note_invocation(rp, key, ks);

  core::IntMsg& peer = scratch_msg(cfg.tilde_capacity, cfg.eager_capacity, 1);
  const double t0 = sim::now();
  sim::recv(peer.data(), peer.bytes(), src, tag + kInternalTagOffset, c);
  rp.local.overhead_time += sim::now() - t0;
  peer.unpack_into(rp, cfg, chan);
  // Sender-decides rule: the data transfer happens iff the sender executed.
  const bool execute = peer.header().execute != 0;

  double measured = 0.0;
  if (execute) {
    const double t1 = sim::now();
    sim::recv(buf, bytes, src, tag, c);
    measured = sim::now() - t1;
  }
  account_comm(rp, ks, bytes / 8.0, execute, measured);
}

Request isend(const void* buf, int bytes, int dest, int tag, sim::Comm c) {
  Request out;
  out.valid = true;
  const Config& cfg = critter::config();
  if (!cfg.instrument) {
    out.user = sim::isend(buf, bytes, dest, tag, c);
    out.executed = true;
    return out;
  }
  critter::RankProfiler& rp = critter::prof();
  core::KernelKey key{core::KernelClass::Isend,
                      {static_cast<std::int64_t>(bytes), 0, 0, 0},
                      p2p_channel(c, dest)};
  core::KernelStats& ks = critter::detail::stats_for(rp, key);
  critter::detail::note_invocation(rp, key, ks);
  const bool execute = critter::detail::wants_execution(rp, cfg, key, ks);

  core::IntMsg& msg = scratch_msg(cfg.tilde_capacity, cfg.eager_capacity, 0);
  msg.pack(rp, execute);
  const double t0 = sim::now();
  sim::send(msg.data(), msg.bytes(), dest, tag + kInternalTagOffset, c);
  rp.local.overhead_time += sim::now() - t0;

  if (execute) out.user = sim::isend(buf, bytes, dest, tag, c);
  out.key = key;
  out.executed = execute;

  // Structural costs are attributed at post time; the timing sample is
  // collected at wait() (paper's MPI_Wait interception).
  rp.path.sync_cost += 1.0;
  rp.path.comm_cost += bytes / 8.0;
  rp.local.syncs += 1.0;
  rp.local.words += bytes / 8.0;
  return out;
}

Request ibcast(void* buf, int bytes, int root, sim::Comm c) {
  Request out;
  out.valid = true;
  const Config& cfg = critter::config();
  out.user = sim::ibcast(buf, bytes, root, c);
  out.executed = true;
  if (!cfg.instrument) return out;
  critter::RankProfiler& rp = critter::prof();
  const std::uint64_t chan = critter::detail::channel_of(c);
  out.key = core::KernelKey{core::KernelClass::Bcast,
                            {static_cast<std::int64_t>(bytes), 0, 0, 1}, chan};
  core::KernelStats& ks = critter::detail::stats_for(rp, out.key);
  critter::detail::note_invocation(rp, out.key, ks);
  out.words = sim::Machine::coll_bytes_moved(sim::CollType::Bcast, bytes,
                                             sim::comm_size(c)) /
              8.0;
  return out;
}

void wait(Request& r) {
  CRITTER_CHECK(r.valid, "wait on an empty critter request");
  r.valid = false;
  const Config& cfg = critter::config();
  if (!cfg.instrument) {
    sim::wait(r.user);
    return;
  }
  critter::RankProfiler& rp = critter::prof();
  core::KernelStats& ks = critter::detail::stats_for(rp, r.key);
  double dt;
  if (r.executed) {
    const double t0 = sim::now();
    sim::wait(r.user);
    dt = sim::now() - t0;
    ks.add_sample(dt);
    ++ks.executions_this_epoch;
    ++ks.total_executions;
    rp.local.kernel_comm_time += dt;
    ++rp.local.executed;
  } else {
    dt = ks.mean;
    ++rp.local.skipped;
  }
  if (r.words > 0.0) {
    rp.path.sync_cost += 1.0;
    rp.path.comm_cost += r.words;
    rp.local.syncs += 1.0;
    rp.local.words += r.words;
  }
  rp.path.exec_time += dt;
  rp.path.comm_time += dt;
  rp.local.modeled_comm_time += dt;
}

sim::Comm comm_split(sim::Comm parent, int color, int key) {
  sim::Comm out = sim::split(parent, color, key);
  if (critter::config().instrument) {
    critter::detail::channel_of(out);  // register channel + aggregates
  }
  return out;
}

}  // namespace critter::mpi
