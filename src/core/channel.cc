#include "core/channel.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace critter::core {

std::int64_t Channel::span() const {
  std::int64_t s = 1;
  for (const auto& d : dims) s *= d.size;
  return s;
}

std::uint64_t Channel::hash() const {
  if (!lattice) {
    // Non-lattice channels hash over their explicit rank set.
    std::uint64_t h = 0xBADC0FFEULL;
    for (const auto& d : dims)
      h = util::hash_combine(h, util::hash_combine(d.stride, d.size));
    return util::hash_combine(h, static_cast<std::uint64_t>(offset));
  }
  std::uint64_t h = 0x5EEDULL;
  for (const auto& d : dims)
    h = util::hash_combine(h, util::hash_combine(
                                  static_cast<std::uint64_t>(d.stride),
                                  static_cast<std::uint64_t>(d.size)));
  return h;
}

std::vector<std::int64_t> Channel::world_ranks() const {
  std::vector<std::int64_t> out{offset};
  for (const auto& d : dims) {
    std::vector<std::int64_t> next;
    next.reserve(out.size() * d.size);
    for (std::int64_t i = 0; i < d.size; ++i)
      for (auto base : out) next.push_back(base + i * d.stride);
    out = std::move(next);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Channel channel_from_ranks(const std::vector<int>& ranks) {
  CRITTER_CHECK(!ranks.empty(), "empty rank set has no channel");
  CRITTER_CHECK(std::is_sorted(ranks.begin(), ranks.end()),
                "channel factorization expects sorted ranks");
  Channel ch;
  ch.offset = ranks.front();
  if (ranks.size() == 1) return ch;

  // Greedy lattice factorization from the smallest stride outward.
  std::vector<std::int64_t> rel(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) rel[i] = ranks[i] - ch.offset;
  while (rel.size() > 1) {
    const std::int64_t s = rel[1];
    if (s <= 0) break;  // duplicate ranks: not a lattice
    // longest initial run 0, s, 2s, ...
    std::size_t c = 1;
    while (c < rel.size() && rel[c] == static_cast<std::int64_t>(c) * s) ++c;
    if (rel.size() % c != 0) {
      ch.lattice = false;
      break;
    }
    // verify the whole set is (outer) x (0..c-1)*s
    bool ok = true;
    for (std::size_t blk = 0; ok && blk < rel.size() / c; ++blk)
      for (std::size_t i = 0; i < c; ++i)
        if (rel[blk * c + i] != rel[blk * c] + static_cast<std::int64_t>(i) * s) {
          ok = false;
          break;
        }
    if (!ok) {
      ch.lattice = false;
      break;
    }
    ch.dims.push_back({s, static_cast<std::int64_t>(c)});
    std::vector<std::int64_t> outer;
    outer.reserve(rel.size() / c);
    for (std::size_t blk = 0; blk < rel.size() / c; ++blk)
      outer.push_back(rel[blk * c]);
    rel = std::move(outer);
  }
  if (!ch.lattice) {
    // Encode the explicit set so distinct irregular sets hash differently.
    ch.dims.clear();
    for (int r : ranks) ch.dims.push_back({r, 1});
  }
  return ch;
}

bool combine_channels(const Channel& a, const Channel& b, Channel* out) {
  if (!a.lattice || !b.lattice) return false;
  // Merge dim lists by stride; reject overlapping strides.
  std::vector<ChannelDim> dims = a.dims;
  dims.insert(dims.end(), b.dims.begin(), b.dims.end());
  std::sort(dims.begin(), dims.end(),
            [](const ChannelDim& x, const ChannelDim& y) { return x.stride < y.stride; });
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    if (dims[i].stride == dims[i + 1].stride) return false;  // overlapping
    // mixed-radix validity: the next stride must be reachable by stacking
    // this dimension (compact grids satisfy stride_{i+1} == stride_i*size_i;
    // we accept >= so padded grids still combine).
    if (dims[i + 1].stride < dims[i].stride * dims[i].size) return false;
  }
  if (out != nullptr) {
    out->offset = std::min(a.offset, b.offset);
    out->dims = std::move(dims);
    out->lattice = true;
  }
  return true;
}

std::uint64_t ChannelRegistry::init_world(int nranks) {
  std::vector<int> all(nranks);
  for (int i = 0; i < nranks; ++i) all[i] = i;
  Channel w = channel_from_ranks(all);
  world_hash_ = w.hash();
  world_span_ = w.span();
  channels_[world_hash_] = std::move(w);
  return world_hash_;
}

const Channel* ChannelRegistry::find(std::uint64_t hash) const {
  auto it = channels_.find(hash);
  return it == channels_.end() ? nullptr : &it->second;
}

std::uint64_t ChannelRegistry::add_channel(const std::vector<int>& ranks) {
  Channel ch = channel_from_ranks(ranks);
  const std::uint64_t h = ch.hash();
  if (channels_.count(h) > 0) return h;
  channels_[h] = ch;

  // Recursive aggregate construction: combine the new channel with every
  // known channel/aggregate it is orthogonal to (paper Fig. 2 lines 17-25).
  // Iterate over a snapshot since we insert while combining.
  std::vector<std::uint64_t> existing;
  existing.reserve(channels_.size());
  for (const auto& [eh, _] : channels_) existing.push_back(eh);
  std::sort(existing.begin(), existing.end());  // deterministic order
  for (std::uint64_t eh : existing) {
    if (eh == h) continue;
    Channel combined;
    if (combine_channels(channels_.at(eh), ch, &combined)) {
      const std::uint64_t nh = combined.hash();
      channels_.emplace(nh, std::move(combined));
    }
  }
  return h;
}

bool ChannelRegistry::try_extend_coverage(std::uint64_t agg, std::uint64_t chan,
                                          std::uint64_t* combined) const {
  const Channel* c = find(chan);
  if (c == nullptr || !c->lattice) return false;
  if (agg == 0) {
    // first aggregation step: coverage becomes the channel itself
    if (combined != nullptr) *combined = chan;
    return true;
  }
  const Channel* a = find(agg);
  if (a == nullptr) return false;
  Channel merged;
  if (!combine_channels(*a, *c, &merged)) return false;
  if (combined != nullptr) *combined = merged.hash();
  return true;
}

}  // namespace critter::core
