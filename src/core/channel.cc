#include "core/channel.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace critter::core {

std::int64_t Channel::span() const {
  std::int64_t s = 1;
  for (const auto& d : dims) s *= d.size;
  return s;
}

std::uint64_t Channel::hash() const {
  if (!lattice) {
    // Non-lattice channels hash over their explicit rank set.
    std::uint64_t h = 0xBADC0FFEULL;
    for (const auto& d : dims)
      h = util::hash_combine(h, util::hash_combine(d.stride, d.size));
    return util::hash_combine(h, static_cast<std::uint64_t>(offset));
  }
  std::uint64_t h = 0x5EEDULL;
  for (const auto& d : dims)
    h = util::hash_combine(h, util::hash_combine(
                                  static_cast<std::uint64_t>(d.stride),
                                  static_cast<std::uint64_t>(d.size)));
  return h;
}

std::vector<std::int64_t> Channel::world_ranks() const {
  std::vector<std::int64_t> out{offset};
  for (const auto& d : dims) {
    std::vector<std::int64_t> next;
    next.reserve(out.size() * d.size);
    for (std::int64_t i = 0; i < d.size; ++i)
      for (auto base : out) next.push_back(base + i * d.stride);
    out = std::move(next);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Channel channel_from_ranks(const std::vector<int>& ranks) {
  CRITTER_CHECK(!ranks.empty(), "empty rank set has no channel");
  CRITTER_CHECK(std::is_sorted(ranks.begin(), ranks.end()),
                "channel factorization expects sorted ranks");
  Channel ch;
  ch.offset = ranks.front();
  if (ranks.size() == 1) return ch;

  // Greedy lattice factorization from the smallest stride outward.
  std::vector<std::int64_t> rel(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) rel[i] = ranks[i] - ch.offset;
  while (rel.size() > 1) {
    const std::int64_t s = rel[1];
    if (s <= 0) break;  // duplicate ranks: not a lattice
    // longest initial run 0, s, 2s, ...
    std::size_t c = 1;
    while (c < rel.size() && rel[c] == static_cast<std::int64_t>(c) * s) ++c;
    if (rel.size() % c != 0) {
      ch.lattice = false;
      break;
    }
    // verify the whole set is (outer) x (0..c-1)*s
    bool ok = true;
    for (std::size_t blk = 0; ok && blk < rel.size() / c; ++blk)
      for (std::size_t i = 0; i < c; ++i)
        if (rel[blk * c + i] != rel[blk * c] + static_cast<std::int64_t>(i) * s) {
          ok = false;
          break;
        }
    if (!ok) {
      ch.lattice = false;
      break;
    }
    ch.dims.push_back({s, static_cast<std::int64_t>(c)});
    std::vector<std::int64_t> outer;
    outer.reserve(rel.size() / c);
    for (std::size_t blk = 0; blk < rel.size() / c; ++blk)
      outer.push_back(rel[blk * c]);
    rel = std::move(outer);
  }
  if (!ch.lattice) {
    // Encode the explicit set so distinct irregular sets hash differently.
    ch.dims.clear();
    for (int r : ranks) ch.dims.push_back({r, 1});
  }
  return ch;
}

bool combine_channels(const Channel& a, const Channel& b, Channel* out) {
  if (!a.lattice || !b.lattice) return false;
  // Two-pointer merge over the (already stride-sorted) dim lists.  The
  // registry calls this O(registry size) times per new channel and nearly
  // every pairing rejects, so the reject path must not allocate; the merged
  // list is materialized only on success.
  std::size_t ia = 0, ib = 0;
  const ChannelDim* prev = nullptr;
  while (ia < a.dims.size() || ib < b.dims.size()) {
    const ChannelDim* next;
    if (ia == a.dims.size()) next = &b.dims[ib++];
    else if (ib == b.dims.size()) next = &a.dims[ia++];
    else if (a.dims[ia].stride <= b.dims[ib].stride) next = &a.dims[ia++];
    else next = &b.dims[ib++];
    if (prev != nullptr) {
      if (prev->stride == next->stride) return false;  // overlapping
      // mixed-radix validity: the next stride must be reachable by stacking
      // this dimension (compact grids satisfy stride_{i+1} == stride_i*size_i;
      // we accept >= so padded grids still combine).
      if (next->stride < prev->stride * prev->size) return false;
    }
    prev = next;
  }
  if (out != nullptr) {
    out->dims.clear();
    out->dims.reserve(a.dims.size() + b.dims.size());
    ia = ib = 0;
    while (ia < a.dims.size() || ib < b.dims.size()) {
      if (ia == a.dims.size()) out->dims.push_back(b.dims[ib++]);
      else if (ib == b.dims.size()) out->dims.push_back(a.dims[ia++]);
      else if (a.dims[ia].stride <= b.dims[ib].stride)
        out->dims.push_back(a.dims[ia++]);
      else out->dims.push_back(b.dims[ib++]);
    }
    out->offset = std::min(a.offset, b.offset);
    out->lattice = true;
  }
  return true;
}

std::uint64_t ChannelRegistry::init_world(int nranks) {
  std::vector<int> all(nranks);
  for (int i = 0; i < nranks; ++i) all[i] = i;
  Channel w = channel_from_ranks(all);
  world_hash_ = w.hash();
  world_span_ = w.span();
  insert(world_hash_, std::move(w));
  return world_hash_;
}

const Channel* ChannelRegistry::find(std::uint64_t hash) const {
  auto it = channels_.find(hash);
  return it == channels_.end() ? nullptr : &it->second;
}

std::uint64_t ChannelRegistry::add_channel(const std::vector<int>& ranks) {
  Channel ch = channel_from_ranks(ranks);
  const std::uint64_t h = ch.hash();
  if (!insert(h, ch)) return h;

  // Recursive aggregate construction: combine the new channel with every
  // known channel/aggregate it is orthogonal to (paper Fig. 2 lines 17-25).
  // Iterate over a snapshot since we insert while combining;
  // sorted_hashes_ keeps the order deterministic without per-call sorting.
  const std::vector<std::uint64_t> existing = sorted_hashes_;
  for (std::uint64_t eh : existing) {
    if (eh == h) continue;
    Channel combined;
    if (combine_channels(channels_.at(eh), ch, &combined)) {
      const std::uint64_t nh = combined.hash();
      insert(nh, std::move(combined));
    }
  }
  return h;
}

bool ChannelRegistry::insert(std::uint64_t h, Channel ch) {
  const auto [it, inserted] = channels_.try_emplace(h, std::move(ch));
  (void)it;
  if (inserted)
    sorted_hashes_.insert(
        std::lower_bound(sorted_hashes_.begin(), sorted_hashes_.end(), h), h);
  return inserted;
}

void ChannelRegistry::merge_from(const ChannelRegistry& other) {
  other.for_each([&](std::uint64_t h, const Channel& ch) { insert(h, ch); });
}

bool ChannelRegistry::try_extend_coverage(std::uint64_t agg, std::uint64_t chan,
                                          std::uint64_t* combined) const {
  const Channel* c = find(chan);
  if (c == nullptr || !c->lattice) return false;
  if (agg == 0) {
    // first aggregation step: coverage becomes the channel itself
    if (combined != nullptr) *combined = chan;
    return true;
  }
  const Channel* a = find(agg);
  if (a == nullptr) return false;
  Channel merged;
  if (!combine_channels(*a, *c, &merged)) return false;
  if (combined != nullptr) *combined = merged.hash();
  return true;
}

}  // namespace critter::core
