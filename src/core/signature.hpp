// Kernel signatures.
//
// Following §V-D of the paper: computational kernels are parameterized on
// the routine and its input dimensions (plus transposition flags folded into
// dims); communication kernels on the routine, message size, and the
// (stride, size) decomposition of the sub-communicator relative to the world
// communicator.  Point-to-point kernels are treated as size-2
// sub-communicators whose stride is the world-rank distance.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace critter::core {

enum class KernelClass : std::uint8_t {
  // computation kernels
  Gemm, Syrk, Trsm, Trmm, Potrf, Trtri, Getrf, Geqrf, Ormqr,
  Geqrt, Tpqrt, Tpmqrt, User,
  // communication kernels
  Bcast, Reduce, Allreduce, Allgather, Gather, Scatter, Barrier,
  Send, Recv, Isend,
};

constexpr bool is_comm_kernel(KernelClass c) {
  return c >= KernelClass::Bcast;
}

const char* kernel_class_name(KernelClass c);

struct KernelKey {
  KernelClass cls{};
  /// Input dimensions (m, n, k, flags) for compute kernels — transposition
  /// and side/uplo options are packed into the last slot; {bytes, 0, 0, 0}
  /// for communication kernels.
  std::array<std::int64_t, 4> dims{};
  /// Channel signature hash (stride/size decomposition) for communication
  /// kernels; zero for compute kernels.
  std::uint64_t chan = 0;

  KernelKey() : hash_(compute_hash()) {}
  KernelKey(KernelClass c, std::array<std::int64_t, 4> d, std::uint64_t ch)
      : cls(c), dims(d), chan(ch), hash_(compute_hash()) {}

  bool operator==(const KernelKey& o) const {
    return hash_ == o.hash_ && cls == o.cls && dims == o.dims && chan == o.chan;
  }

  /// Memoized at construction: the intercept path hashes every key several
  /// times per invocation (K lookup, ~K bump, hash registry), and the dims
  /// never change after construction.
  std::uint64_t hash() const { return hash_; }

  std::string to_string() const;

 private:
  std::uint64_t compute_hash() const {
    std::uint64_t h = util::mix64(static_cast<std::uint64_t>(cls) + 0x1234);
    for (auto d : dims) h = util::hash_combine(h, static_cast<std::uint64_t>(d));
    return util::hash_combine(h, chan);
  }

  std::uint64_t hash_;
};

struct KernelKeyHash {
  std::size_t operator()(const KernelKey& k) const { return k.hash(); }
};

}  // namespace critter::core
