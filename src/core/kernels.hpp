// Intercepted BLAS / LAPACK computational kernels.
//
// Each wrapper derives the kernel signature from the routine and its
// dimensions (paper §V-D), consults the selective-execution policy, and
// either executes (advancing the virtual clock by a noisy cost-model sample
// and, in ExecMode::Real, performing the actual arithmetic on the caller's
// buffers) or skips (charging the sample mean to the path model).
//
// In ExecMode::Model all pointers may be null.  In ExecMode::Real a skipped
// kernel still performs its arithmetic — local work has no distributed
// matching constraints, so keeping the numerics alive is free fidelity.
#pragma once

#include "core/profiler.hpp"
#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "la/tile_qr.hpp"
#include "util/function_ref.hpp"

namespace critter::blas {

void gemm(la::Trans ta, la::Trans tb, int m, int n, int k, double alpha,
          const double* a, int lda, const double* b, int ldb, double beta,
          double* c, int ldc);
void syrk(la::Uplo uplo, la::Trans trans, int n, int k, double alpha,
          const double* a, int lda, double beta, double* c, int ldc);
void trsm(la::Side side, la::Uplo uplo, la::Trans trans, la::Diag diag, int m,
          int n, double alpha, const double* a, int lda, double* b, int ldb);
void trmm(la::Side side, la::Uplo uplo, la::Trans trans, la::Diag diag, int m,
          int n, double alpha, const double* a, int lda, double* b, int ldb);

}  // namespace critter::blas

namespace critter::lapack {

void potrf(la::Uplo uplo, int n, double* a, int lda);
void trtri(la::Uplo uplo, la::Diag diag, int n, double* a, int lda);
void getrf(int m, int n, double* a, int lda, int* ipiv);
void geqrf(int m, int n, double* a, int lda, double* tau, int nb);
void ormqr(la::Side side, la::Trans trans, int m, int n, int k,
           const double* a, int lda, const double* tau, double* c, int ldc,
           int nb);
void geqrt(int m, int n, double* a, int lda, double* t, int ldt);
void tpqrt(int m, int n, int l, double* a, int lda, double* b, int ldb,
           double* t, int ldt);
void tpmqrt(la::Trans trans, int m, int ncols, int k, const double* v, int ldv,
            const double* t, int ldt, double* a, int lda, double* b, int ldb);

}  // namespace critter::lapack

namespace critter {

/// User-defined kernel interception (paper §IV-A: "allows library
/// developers to selectively execute loop nests and other structures").
/// `name_hash` distinguishes user kernels; d0/d1 parameterize the input;
/// `flops` drives the cost model; `real_work` runs in ExecMode::Real.
/// Returns the modeled duration charged to the path.
double user_kernel(std::uint64_t name_hash, std::int64_t d0, std::int64_t d1,
                   double flops, util::FunctionRef real_work);

namespace detail {
/// Shared implementation for all compute interceptions.
double intercept_compute(const core::KernelKey& key, double flops,
                         util::FunctionRef real_work);
}  // namespace detail

}  // namespace critter
