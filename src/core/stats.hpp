// Single-pass statistical profiles of kernel execution time (§III-A).
//
// Each kernel signature carries a Welford mean/variance accumulator.  The
// steady-state test compares the kernel's relative confidence-interval size
// against the tolerance epsilon; the effective sample variance may be
// shrunk by the kernel's execution count k along the current sub-critical
// path (the paper's sqrt(k) confidence-interval reduction).
#pragma once

#include <cstdint>

namespace critter::core {

/// Two-sided normal critical value for a given confidence level
/// (0.95 -> 1.96).  Supports the handful of levels used in practice via
/// a rational approximation of the probit function.
double normal_quantile_two_sided(double confidence);

/// Same value, memoized per thread on the (run-constant) confidence level —
/// use on per-event paths where the probit polynomial would be re-evaluated
/// for every execute/skip decision.
double normal_quantile_cached(double confidence);

struct KernelStats {
  std::int64_t n = 0;  ///< number of timing samples
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations (Welford)

  /// Executions and invocations bookkeeping for policies.
  std::int64_t invocations_this_epoch = 0;
  std::int64_t executions_this_epoch = 0;
  std::int64_t total_invocations = 0;
  std::int64_t total_executions = 0;

  /// Eager propagation: XOR-combined hash of the cartesian channels along
  /// which this kernel's statistics have been aggregated; `global_steady`
  /// is set once coverage reaches the full grid.
  std::uint64_t agg_hash = 0;
  bool global_steady = false;
  /// Already contributed a point to the cross-size extrapolation model.
  bool extrapolation_observed = false;
  /// Key registered in key_of_hash / pending-eager absorbed (first sighting
  /// bookkeeping runs once per key instead of once per invocation).
  bool registered = false;

  void add_sample(double x) {
    ++n;
    const double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }

  double variance() const { return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0; }

  /// Relative half-width of the confidence interval of the sample mean,
  /// shrunk by sqrt(k_eff) per the paper's critical-path count argument.
  /// Returns +inf until enough samples exist or the mean is non-positive.
  double relative_ci(double z, std::int64_t k_eff, std::int64_t min_samples) const;

  /// Steady == "sufficiently predictable": relative CI <= tolerance.
  bool is_steady(double z, double tolerance, std::int64_t k_eff,
                 std::int64_t min_samples) const;

  /// Merge another estimator of the same distribution (Chan et al.),
  /// used when aggregating statistics across processor-grid channels.
  void merge(const KernelStats& other);

  /// Exact algebraic inverse of merge() over the (n, mean, m2) moments:
  /// given that *this* holds merge(base, X) for some contribution X, reduce
  /// *this* to X.  Used to extract the per-batch statistics delta of a
  /// shared-snapshot sweep worker (core/stat_store).  The recovered m2 is
  /// clamped at zero against floating-point cancellation.
  void unmerge(const KernelStats& base);

  void reset_epoch_counters() {
    invocations_this_epoch = 0;
    executions_this_epoch = 0;
  }
};

}  // namespace critter::core
