// The little string-backed binary writer/reader every byte-exact wire
// format in the tree shares: the dist layer's shard-result and checkpoint
// payloads, and the net layer's frame payloads (which must serialize
// outcomes identically to the file formats — a told batch journaled by the
// daemon replays bit-equal to one a run directory would carry).
//
// Fixed-width little-endian-as-memcpy fields; strings are [i32 length] +
// bytes with a plausibility bound so a corrupt length cannot allocate the
// universe.  Readers CRITTER_CHECK-fail on truncation instead of returning
// partial state.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "util/check.hpp"

namespace critter::core {

struct WireWriter {
  std::string out;
  void raw(const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(const std::string& s) {
    i32(static_cast<std::int32_t>(s.size()));
    raw(s.data(), s.size());
  }
};

struct WireReader {
  const std::string& in;
  std::size_t pos = 0;
  void raw(void* p, std::size_t n) {
    CRITTER_CHECK(pos + n <= in.size(), "wire: truncated payload");
    std::memcpy(p, in.data() + pos, n);
    pos += n;
  }
  std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
  std::int32_t i32() { std::int32_t v; raw(&v, 4); return v; }
  std::uint32_t u32() { std::uint32_t v; raw(&v, 4); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, 8); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, 8); return v; }
  double f64() { double v; raw(&v, 8); return v; }
  std::string str() {
    const std::int32_t n = i32();
    CRITTER_CHECK(n >= 0 && n <= (1 << 20), "wire: implausible string");
    std::string s(static_cast<std::size_t>(n), '\0');
    raw(s.data(), s.size());
    return s;
  }
  bool done() const { return pos == in.size(); }
};

}  // namespace critter::core
