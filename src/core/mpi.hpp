// Intercepted MPI layer (paper Fig. 2).
//
// Application code calls critter::mpi::* exactly as it would call MPI (or
// the raw sim API).  Each call:
//   1. derives the kernel signature (routine, message size, channel),
//   2. exchanges an internal message carrying the path profile, the ~K
//      execution-count table, and the execute flag (allreduce for blocking
//      collectives; a one-way sender->receiver message for point-to-point),
//   3. selectively executes the user operation, and
//   4. updates the kernel's statistics and the online critical-path model.
//
// Divergence from Fig. 2 (documented in DESIGN.md): for point-to-point
// kernels the *sender's* decision alone controls the data transfer.  The
// paper's pseudocode takes max(sender, receiver) flags at the receiver, but
// the sender cannot learn the receiver's flag before posting a nonblocking
// send, so that rule is unimplementable without an extra round-trip; the
// sender-decides rule is deadlock-free and keeps both sides consistent.
#pragma once

#include "core/profiler.hpp"
#include "sim/api.hpp"

namespace critter::mpi {

void bcast(void* buf, int bytes, int root, sim::Comm c);
void reduce(const void* sbuf, void* rbuf, int bytes, const sim::ReduceFn& fn,
            int root, sim::Comm c);
void allreduce(const void* sbuf, void* rbuf, int bytes, const sim::ReduceFn& fn,
               sim::Comm c);
void allgather(const void* sbuf, int bytes, void* rbuf, sim::Comm c);
void gather(const void* sbuf, int bytes, void* rbuf, int root, sim::Comm c);
void scatter(const void* sbuf, int bytes, void* rbuf, int root, sim::Comm c);
void barrier(sim::Comm c);

void send(const void* buf, int bytes, int dest, int tag, sim::Comm c);
void recv(void* buf, int bytes, int src, int tag, sim::Comm c);

/// Nonblocking send handle; statistics are updated at wait() (paper's
/// MPI_Wait interception).
struct Request {
  sim::Request user{};
  core::KernelKey key{};
  bool executed = false;
  bool valid = false;
  double words = 0.0;  ///< BSP words accounted at wait (collectives)
};

Request isend(const void* buf, int bytes, int dest, int tag, sim::Comm c);

/// Intercepted nonblocking broadcast.  Nonblocking collectives are always
/// executed (never skipped): a selective decision would need a consensus
/// that is not available until wait(), and the paper itself reports that
/// nonblocking kernels resist prediction.  Timing is sampled at wait().
Request ibcast(void* buf, int bytes, int root, sim::Comm c);

void wait(Request& r);

/// Intercepted communicator split: creates the sub-communicator and
/// registers its channel (building aggregate channels, Fig. 2 lines 8-26).
sim::Comm comm_split(sim::Comm parent, int color, int key);

}  // namespace critter::mpi
