#include "core/profiler.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace critter {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::ConditionalExecution: return "conditional";
    case Policy::EagerPropagation: return "eager";
    case Policy::LocalPropagation: return "local";
    case Policy::OnlinePropagation: return "online";
    case Policy::AprioriPropagation: return "apriori";
  }
  return "?";
}

void PathMetrics::max_with(const PathMetrics& o) {
  double* a = as_array();
  const double* b = o.as_array();
  for (int i = 0; i < kFields; ++i) a[i] = std::max(a[i], b[i]);
}

Store::Store(int nranks, Config cfg) : cfg_(cfg), ranks_(nranks) {
  CRITTER_CHECK(nranks >= 1, "store needs at least one rank");
  // Only the eager policy ships aggregation entries; dropping the section
  // otherwise shrinks every internal message (less profiling overhead).
  if (cfg_.policy != Policy::EagerPropagation) cfg_.eager_capacity = 0;
  for (auto& rp : ranks_) rp.table.init_world(nranks);
}

void Store::new_epoch() {
  for (auto& rp : ranks_) rp.table.new_epoch();
}

void Store::reset_statistics() {
  for (auto& rp : ranks_) {
    rp.table.clear_statistics();
    rp.apriori.clear();
    rp.cached_idx = core::KernelArena::npos;  // indexed the cleared K
  }
}

core::StatSnapshot Store::snapshot() const {
  core::StatSnapshot snap;
  snap.ranks.reserve(ranks_.size());
  for (const auto& rp : ranks_) snap.ranks.push_back(rp.table);
  return snap;
}

void Store::restore(const core::StatSnapshot& snap) {
  CRITTER_CHECK(snap.nranks() == nranks(),
                "stat snapshot rank count does not match store");
  for (int r = 0; r < nranks(); ++r) {
    // The wholesale replacement is a mutation of this store's table, so the
    // dirty-tracking counter must advance monotonically past both the old
    // value and whatever the snapshot happens to carry (§13 pre-filter:
    // equal versions may only ever mean unchanged bytes).
    const std::uint64_t v =
        std::max(ranks_[r].table.version, snap.ranks[r].version);
    ranks_[r].table = snap.ranks[r];
    ranks_[r].table.version = v + 1;
    ranks_[r].cached_idx = core::KernelArena::npos;  // indexed the replaced K
  }
}

core::StatSnapshot Store::diff(const core::StatSnapshot& base) const {
  CRITTER_CHECK(base.nranks() == nranks(),
                "stat snapshot rank count does not match store");
  core::StatSnapshot delta;
  delta.ranks.reserve(ranks_.size());
  for (int r = 0; r < nranks(); ++r)
    delta.ranks.push_back(ranks_[r].table.diff(base.ranks[r]));
  return delta;
}

void Store::set_apriori_from_last_run() {
  // Pick the rank whose last run carried the longest modeled path; its ~K
  // holds the critical path's kernel execution counts.
  int best = 0;
  for (int r = 1; r < nranks(); ++r)
    if (ranks_[r].last_exec_time > ranks_[best].last_exec_time) best = r;
  const auto counts = ranks_[best].last_tilde;
  for (auto& rp : ranks_) rp.apriori = counts;
}

namespace {
RankProfiler* current_profiler() {
  if (!sim::Engine::in_rank()) return nullptr;
  return static_cast<RankProfiler*>(sim::Engine::ctx().user_data);
}
// One active store per OS thread: each tuner worker drives its own engine +
// store pair, so the slot must be thread-local rather than process-global.
thread_local Store* g_store = nullptr;
}  // namespace

void start(Store& s) {
  sim::RankCtx& ctx = sim::Engine::ctx();
  CRITTER_CHECK(ctx.user_data == nullptr, "critter::start called twice");
  CRITTER_CHECK(ctx.engine->nranks() == s.nranks(),
                "store rank count does not match engine");
  RankProfiler& rp = s.rank(ctx.rank);
  rp.path = PathMetrics{};
  rp.tilde.clear();
  rp.local = LocalCounters{};
  rp.chan_of_comm.clear();
  rp.p2p_chan.clear();  // comm ids are engine-local
  rp.chan_of_comm[0] = rp.table.channels.world_hash();
  rp.start_clock = ctx.clock;
  rp.active = true;
  ctx.user_data = &rp;
  g_store = &s;
}

RankProfiler& prof() {
  RankProfiler* rp = current_profiler();
  CRITTER_CHECK(rp != nullptr, "critter profiler not started on this rank");
  return *rp;
}

Store& store() {
  CRITTER_CHECK(g_store != nullptr, "no active critter store");
  return *g_store;
}

const Config& config() { return store().config(); }

namespace detail {

std::uint64_t channel_of(sim::Comm c) {
  RankProfiler& rp = prof();
  auto it = rp.chan_of_comm.find(c.id);
  if (it != rp.chan_of_comm.end()) return it->second;
  const std::vector<int>& members = sim::Engine::ctx().engine->comm_members(c);
  std::vector<int> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t h = rp.table.channels.add_channel(sorted);
  rp.chan_of_comm[c.id] = h;
  return h;
}

std::int64_t k_effective(const RankProfiler& rp, const Config& cfg,
                         const core::KernelKey& key,
                         const core::KernelStats& ks) {
  switch (cfg.policy) {
    case Policy::ConditionalExecution:
    case Policy::EagerPropagation:
      return 1;
    case Policy::LocalPropagation:
      return std::max<std::int64_t>(1, ks.invocations_this_epoch);
    case Policy::OnlinePropagation: {
      const std::int64_t* f = rp.tilde.find(key.hash());
      return f == nullptr ? 1 : std::max<std::int64_t>(1, *f);
    }
    case Policy::AprioriPropagation: {
      const std::int64_t* f = rp.apriori.find(key.hash());
      return f == nullptr ? 1 : std::max<std::int64_t>(1, *f);
    }
  }
  return 1;
}

bool wants_execution(const RankProfiler& rp, const Config& cfg,
                     const core::KernelKey& key,
                     const core::KernelStats& ks) {
  if (!cfg.selective) return true;
  if (cfg.policy == Policy::EagerPropagation &&
      !(key.cls == core::KernelClass::Send ||
        key.cls == core::KernelClass::Recv ||
        key.cls == core::KernelClass::Isend)) {
    // Globally consistent decision: skip only once the statistics have
    // been propagated across the whole grid.  Point-to-point kernels are
    // exempt: their size-2 channels cannot tile the grid, so they fall
    // back to the local rule below (the paper's eager policy targets
    // bulk-synchronous collectives).
    return !ks.global_steady;
  }
  // Every kernel executes at least once per tuning epoch.
  if (ks.executions_this_epoch == 0) return true;
  const double z = core::normal_quantile_cached(cfg.confidence);
  return !ks.is_steady(z, cfg.tolerance, k_effective(rp, cfg, key, ks),
                       cfg.min_samples);
}

void note_invocation(RankProfiler& rp, const core::KernelKey& key,
                     core::KernelStats& ks) {
  ++ks.invocations_this_epoch;
  ++ks.total_invocations;
  ++rp.tilde[key.hash()];
  if (!ks.registered) {
    // first sighting: register the hash and absorb any eager statistics
    // that arrived early
    ks.registered = true;
    rp.table.key_of_hash.emplace(key.hash(), key);
    auto pend = rp.table.pending_eager.find(key.hash());
    if (pend != rp.table.pending_eager.end()) {
      ks.merge(pend->second);
      ks.agg_hash = pend->second.agg_hash;
      rp.table.pending_eager.erase(pend);
    }
  }
}

}  // namespace detail

}  // namespace critter
