#include "core/kernels.hpp"

#include "sim/api.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace critter {

namespace detail {

namespace {
/// One noisy sample of the kernel's execution time: gamma*flops plus launch
/// overhead, scaled by a unit-mean lognormal factor drawn deterministically
/// from (machine seed, signature, rank, execution index).
double noisy_cost(const Config& cfg, const core::KernelKey& key, double flops,
                  std::int64_t draw_index) {
  const sim::Machine& m = sim::engine().machine();
  const double factor = util::lognormal_factor(
      m.comp_noise, util::hash_combine(m.seed, key.hash()),
      util::hash_combine(static_cast<std::uint64_t>(sim::world_rank()),
                         static_cast<std::uint64_t>(draw_index)));
  return (m.gamma * flops + cfg.kernel_overhead) * factor;
}
}  // namespace

double intercept_compute(const core::KernelKey& key, double flops,
                         util::FunctionRef real_work) {
  const Config& cfg = config();
  if (!cfg.instrument) {
    // Uninstrumented baseline: every kernel executes with the same noisy
    // cost distribution, no statistics, no decisions.
    RankProfiler& rp = prof();
    core::KernelStats& ks = detail::stats_for(rp, key);  // only used as a draw counter
    const double dt = noisy_cost(cfg, key, flops, ks.total_executions++);
    sim::advance(dt);
    if (cfg.mode == ExecMode::Real && real_work) real_work();
    return dt;
  }
  RankProfiler& rp = prof();
  core::KernelStats& ks = detail::stats_for(rp, key);
  detail::note_invocation(rp, key, ks);
  bool execute = detail::wants_execution(rp, cfg, key, ks);

  // Cross-size extrapolation (paper SVIII): an unseen kernel whose
  // (class, flags) bucket already has a tight size model is skipped
  // outright; the model's prediction seeds its statistics.
  if (execute && cfg.extrapolate && cfg.selective && ks.n == 0) {
    const double predicted = rp.table.size_model.predict(key, flops);
    if (predicted > 0.0) {
      ks.add_sample(predicted);  // seed so skips have a mean to charge
      execute = false;
      ++rp.local.extrapolated;
    }
  }

  double dt;
  if (execute) {
    dt = noisy_cost(cfg, key, flops, ks.total_executions);
    sim::advance(dt);
    ks.add_sample(dt);
    ++ks.executions_this_epoch;
    ++ks.total_executions;
    rp.local.kernel_comp_time += dt;
    ++rp.local.executed;
  } else {
    dt = ks.mean;
    ++rp.local.skipped;
    if (cfg.extrapolate && !ks.extrapolation_observed) {
      // the kernel is steady (it was just skipped): contribute its mean
      // as one (flops, time) point of the size model
      ks.extrapolation_observed = true;
      rp.table.size_model.observe(key, flops, ks.mean);
    }
  }
  if (cfg.mode == ExecMode::Real && real_work) real_work();

  rp.path.exec_time += dt;
  rp.path.comp_time += dt;
  rp.path.comp_cost += flops;
  rp.local.modeled_comp_time += dt;
  rp.local.flops += flops;
  return dt;
}

}  // namespace detail

double user_kernel(std::uint64_t name_hash, std::int64_t d0, std::int64_t d1,
                   double flops, util::FunctionRef real_work) {
  core::KernelKey key{core::KernelClass::User,
                      {d0, d1, static_cast<std::int64_t>(name_hash & 0x7FFFFFFF), 0},
                      0};
  return detail::intercept_compute(key, flops, real_work);
}

}  // namespace critter

namespace critter::blas {

namespace {
using core::KernelClass;
using core::KernelKey;
using detail::intercept_compute;

std::int64_t fb(int a, int b = 0, int c = 0, int d = 0) {
  return a | (b << 2) | (c << 4) | (d << 6);
}
}  // namespace

void gemm(la::Trans ta, la::Trans tb, int m, int n, int k, double alpha,
          const double* a, int lda, const double* b, int ldb, double beta,
          double* c, int ldc) {
  KernelKey key{KernelClass::Gemm, {m, n, k, fb(static_cast<int>(ta), static_cast<int>(tb))}, 0};
  intercept_compute(key, la::gemm_flops(m, n, k), [&] {
    la::gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  });
}

void syrk(la::Uplo uplo, la::Trans trans, int n, int k, double alpha,
          const double* a, int lda, double beta, double* c, int ldc) {
  KernelKey key{KernelClass::Syrk, {n, k, 0, fb(static_cast<int>(uplo), static_cast<int>(trans))}, 0};
  intercept_compute(key, la::syrk_flops(n, k), [&] {
    la::syrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
  });
}

void trsm(la::Side side, la::Uplo uplo, la::Trans trans, la::Diag diag, int m,
          int n, double alpha, const double* a, int lda, double* b, int ldb) {
  KernelKey key{KernelClass::Trsm,
                {m, n, 0, fb(static_cast<int>(side), static_cast<int>(uplo),
                             static_cast<int>(trans), static_cast<int>(diag))},
                0};
  intercept_compute(key, la::trsm_flops(side, m, n), [&] {
    la::trsm(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb);
  });
}

void trmm(la::Side side, la::Uplo uplo, la::Trans trans, la::Diag diag, int m,
          int n, double alpha, const double* a, int lda, double* b, int ldb) {
  KernelKey key{KernelClass::Trmm,
                {m, n, 0, fb(static_cast<int>(side), static_cast<int>(uplo),
                             static_cast<int>(trans), static_cast<int>(diag))},
                0};
  intercept_compute(key, la::trmm_flops(side, m, n), [&] {
    la::trmm(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb);
  });
}

}  // namespace critter::blas

namespace critter::lapack {

namespace {
using core::KernelClass;
using core::KernelKey;
using critter::detail::intercept_compute;
}  // namespace

void potrf(la::Uplo uplo, int n, double* a, int lda) {
  KernelKey key{KernelClass::Potrf, {n, 0, 0, static_cast<int>(uplo)}, 0};
  intercept_compute(key, la::potrf_flops(n), [&] {
    const int info = la::potrf(uplo, n, a, lda);
    CRITTER_CHECK(info == 0, "potrf failed on a non-SPD block");
  });
}

void trtri(la::Uplo uplo, la::Diag diag, int n, double* a, int lda) {
  KernelKey key{KernelClass::Trtri,
                {n, 0, 0, static_cast<int>(uplo) | (static_cast<int>(diag) << 2)}, 0};
  intercept_compute(key, la::trtri_flops(n), [&] {
    const int info = la::trtri(uplo, diag, n, a, lda);
    CRITTER_CHECK(info == 0, "trtri failed on a singular block");
  });
}

void getrf(int m, int n, double* a, int lda, int* ipiv) {
  KernelKey key{KernelClass::Getrf, {m, n, 0, 0}, 0};
  intercept_compute(key, la::getrf_flops(m, n), [&] {
    const int info = la::getrf(m, n, a, lda, ipiv);
    CRITTER_CHECK(info == 0, "getrf failed on a singular block");
  });
}

void geqrf(int m, int n, double* a, int lda, double* tau, int nb) {
  KernelKey key{KernelClass::Geqrf, {m, n, nb, 0}, 0};
  intercept_compute(key, la::geqrf_flops(m, n),
                    [&] { la::geqrf(m, n, a, lda, tau, nb); });
}

void ormqr(la::Side side, la::Trans trans, int m, int n, int k,
           const double* a, int lda, const double* tau, double* c, int ldc,
           int nb) {
  KernelKey key{KernelClass::Ormqr,
                {m, n, k, static_cast<int>(side) | (static_cast<int>(trans) << 2)}, 0};
  intercept_compute(key, la::ormqr_flops(side, m, n, k), [&] {
    la::ormqr(side, trans, m, n, k, a, lda, tau, c, ldc, nb);
  });
}

void geqrt(int m, int n, double* a, int lda, double* t, int ldt) {
  KernelKey key{KernelClass::Geqrt, {m, n, 0, 0}, 0};
  intercept_compute(key, la::geqrt_flops(m, n),
                    [&] { la::geqrt(m, n, a, lda, t, ldt); });
}

void tpqrt(int m, int n, int l, double* a, int lda, double* b, int ldb,
           double* t, int ldt) {
  KernelKey key{KernelClass::Tpqrt, {m, n, l, 0}, 0};
  intercept_compute(key, la::tpqrt_flops(m, n, l),
                    [&] { la::tpqrt(m, n, l, a, lda, b, ldb, t, ldt); });
}

void tpmqrt(la::Trans trans, int m, int ncols, int k, const double* v, int ldv,
            const double* t, int ldt, double* a, int lda, double* b, int ldb) {
  KernelKey key{KernelClass::Tpmqrt, {m, ncols, k, static_cast<int>(trans)}, 0};
  intercept_compute(key, la::tpmqrt_flops(m, ncols, k, 0), [&] {
    la::tpmqrt(trans, m, ncols, k, v, ldv, t, ldt, a, lda, b, ldb);
  });
}

}  // namespace critter::lapack
