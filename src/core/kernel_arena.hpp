// Arena-backed kernel-statistics table.
//
// Replaces the node-based `unordered_map<KernelKey, KernelStats>` that used
// to hold K: entries live contiguously in fixed-size blocks (no per-kernel
// allocation on insert, merge, or diff) and are addressed by a dense
// 32-bit index, so the profiler's hot-path cache can hold an *index*
// instead of a pointer or a hash.  A FlatMap keyed on the (memoized) kernel
// hash maps key -> index.
//
// Guarantees the rest of the system relies on:
//   * references returned by entry()/operator[]/at() are stable for the
//     lifetime of the arena (blocks never move or shrink) — exactly the
//     stability the old node-based map provided;
//   * iteration order is insertion order (first-sighting order), which is
//     deterministic for a deterministic simulation.  Consumers that need a
//     canonical order (serialization, digests, moment extraction) already
//     sort by kernel hash;
//   * the kernel hash is identity: the wire formats, the hash->key
//     registry, and eager propagation all already treat the 64-bit hash as
//     the kernel's name.  A hash collision between distinct keys is checked
//     and fatal rather than silently merged.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/signature.hpp"
#include "core/stats.hpp"
#include "util/check.hpp"
#include "util/flat_map.hpp"

namespace critter::core {

class KernelArena {
 public:
  using value_type = std::pair<KernelKey, KernelStats>;
  static constexpr std::uint32_t npos = 0xffffffffu;

  KernelArena() = default;
  KernelArena(KernelArena&&) = default;
  KernelArena& operator=(KernelArena&&) = default;
  KernelArena(const KernelArena& o) { *this = o; }
  KernelArena& operator=(const KernelArena& o) {
    if (this == &o) return *this;
    blocks_.clear();
    blocks_.reserve(o.blocks_.size());
    for (const auto& b : o.blocks_) {
      blocks_.push_back(std::make_unique<value_type[]>(kBlockSize));
      for (std::size_t i = 0; i < kBlockSize; ++i) blocks_.back()[i] = b[i];
    }
    size_ = o.size_;
    index_ = o.index_;
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() {
    blocks_.clear();
    size_ = 0;
    index_.clear();
  }

  value_type& entry(std::uint32_t i) {
    return blocks_[i >> kBlockShift][i & kBlockMask];
  }
  const value_type& entry(std::uint32_t i) const {
    return blocks_[i >> kBlockShift][i & kBlockMask];
  }

  /// Index of `key`, or npos.  Never inserts.
  std::uint32_t find_index(const KernelKey& key) const {
    const std::uint32_t* slot = index_.find(key.hash());
    if (slot == nullptr) return npos;
    const std::uint32_t i = *slot - 1;
    CRITTER_CHECK(entry(i).first == key, "kernel hash collision");
    return i;
  }

  /// Find-or-insert (default stats); returns {index, inserted}.
  std::pair<std::uint32_t, bool> insert_index(const KernelKey& key) {
    std::uint32_t& slot = index_[key.hash()];
    if (slot != 0) {
      const std::uint32_t i = slot - 1;
      CRITTER_CHECK(entry(i).first == key, "kernel hash collision");
      return {i, false};
    }
    if (size_ == blocks_.size() * kBlockSize)
      blocks_.push_back(std::make_unique<value_type[]>(kBlockSize));
    const std::uint32_t i = static_cast<std::uint32_t>(size_++);
    entry(i).first = key;
    slot = i + 1;
    return {i, true};
  }

  // --- map-compatible shims (iteration yields pair references) ---

  template <bool Const>
  class Iter {
    using ArenaP = std::conditional_t<Const, const KernelArena*, KernelArena*>;

   public:
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;
    Iter() = default;
    Iter(ArenaP a, std::uint32_t i) : a_(a), i_(i) {}
    Ref operator*() const { return a_->entry(i_); }
    Ptr operator->() const { return &a_->entry(i_); }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }
    operator Iter<true>() const { return Iter<true>(a_, i_); }

   private:
    friend class KernelArena;
    ArenaP a_ = nullptr;
    std::uint32_t i_ = 0;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, static_cast<std::uint32_t>(size_)}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const {
    return {this, static_cast<std::uint32_t>(size_)};
  }

  KernelStats& operator[](const KernelKey& key) {
    return entry(insert_index(key).first).second;
  }
  std::pair<iterator, bool> try_emplace(const KernelKey& key,
                                        const KernelStats& ks) {
    const auto [i, inserted] = insert_index(key);
    if (inserted) entry(i).second = ks;
    return {iterator(this, i), inserted};
  }
  std::pair<iterator, bool> emplace(const KernelKey& key,
                                    const KernelStats& ks) {
    return try_emplace(key, ks);
  }
  iterator find(const KernelKey& key) {
    const std::uint32_t i = find_index(key);
    return i == npos ? end() : iterator(this, i);
  }
  const_iterator find(const KernelKey& key) const {
    const std::uint32_t i = find_index(key);
    return i == npos ? end() : const_iterator(this, i);
  }
  std::size_t count(const KernelKey& key) const {
    return find_index(key) == npos ? 0 : 1;
  }
  KernelStats& at(const KernelKey& key) {
    const std::uint32_t i = find_index(key);
    CRITTER_CHECK(i != npos, "KernelArena::at: no such kernel");
    return entry(i).second;
  }
  const KernelStats& at(const KernelKey& key) const {
    const std::uint32_t i = find_index(key);
    CRITTER_CHECK(i != npos, "KernelArena::at: no such kernel");
    return entry(i).second;
  }

 private:
  static constexpr std::size_t kBlockShift = 8;  // 256 entries per block
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  static constexpr std::uint32_t kBlockMask =
      static_cast<std::uint32_t>(kBlockSize - 1);

  std::vector<std::unique_ptr<value_type[]>> blocks_;
  std::size_t size_ = 0;
  /// key.hash() -> entry index + 1 (0 marks an empty FlatMap slot).
  util::FlatMap<std::uint64_t, std::uint32_t, util::IdentityHash> index_;
};

}  // namespace critter::core
