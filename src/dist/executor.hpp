// Distributed sweep execution: shards as first-class execution units.
//
// merge_shards() partitions a sweep into contiguous shards; this layer owns
// *how* those shards run.  A ShardExecutor runs every shard as an
// independent Tuner session and returns per-shard products for the
// deterministic fold in run_sharded():
//
//   InProcessExecutor   — shards in this process, sequentially (the legacy
//                         merge_shards semantics, bit-identical) or
//                         thread-parallel across shards;
//   SubprocessExecutor  — one worker process per shard (a re-exec of the
//                         current binary through the --shard-worker entry
//                         point), exchanging versioned StatSnapshot files
//                         through a run directory (dist/protocol.hpp).
//
// Periodic mid-sweep exchange (ExchangePolicy::every > 0): after every N
// strategy batches a shard publishes the statistics delta it grew since its
// last publish and folds in the deltas its peers published for the same
// round — so ci-discard/halving-style strategies see cross-shard statistics
// *during* the sweep, not only in the final fold.  The schedule is aligned
// by round: a shard's round-r delta is a pure function of (study, options,
// shard ranges, r), peers' deltas merge in ascending shard order, and a
// shard's own contribution is tracked separately so the final fold counts
// every sample exactly once.  The result is deterministic for a fixed
// (seed, shard count, exchange interval) and identical across executors;
// with exchange off every executor reproduces the legacy merge_shards fold
// bit-exactly.  DESIGN.md §8 has the full contract.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/stat_store.hpp"
#include "tune/tuner.hpp"

namespace critter::dist {

/// Mid-sweep snapshot exchange schedule: every `every` strategy batches a
/// shard publishes its delta and folds in its peers' (0 = exchange only
/// through the final fold — the legacy merge_shards behavior).
///
/// `strict` governs what a shard does when a peer's round delta is not
/// available in time (missing past the exchange deadline, or published but
/// corrupt).  Strict — the default, and the only mode under which the
/// cross-executor determinism contract is asserted — keeps the historical
/// abort semantics: the waiting worker fails and the fleet handles it per
/// its FaultPolicy.  Non-strict degrades gracefully: the shard skips that
/// peer for that round, records the skip (it replays identically from a
/// checkpoint and is surfaced in the result), and sweeps on — trading
/// exchange determinism for availability, never correctness of the final
/// fold (own contributions are tracked separately and still count exactly
/// once).
struct ExchangePolicy {
  int every = 0;
  bool strict = true;
};

/// Per-shard fault handling of the subprocess fleet (DESIGN.md §10).
///
/// Deadlines are per-phase, replacing the old single flat run timeout:
/// `startup_deadline_s` bounds launch → first heartbeat,
/// `progress_deadline_s` bounds the gap between heartbeat advances (it must
/// exceed the slowest single batch — workers beat per batch and during
/// exchange waits), and `exchange_deadline_s` bounds a worker's wait for
/// one peer's round delta.  A worker making steady progress is never
/// killed, no matter how long the whole sweep runs.
struct FaultPolicy {
  /// Relaunches per shard before the fault is terminal (0 = the historical
  /// abort-on-first-fault behavior).
  int max_retries = 0;
  /// Exponential backoff before relaunch k (1-based):
  /// min(backoff_initial_s * 2^(k-1), backoff_max_s).
  double backoff_initial_s = 0.25;
  double backoff_max_s = 4.0;
  double startup_deadline_s = 60.0;
  double progress_deadline_s = 300.0;
  double exchange_deadline_s = 300.0;
  /// What a shard's terminal fault does to the run: Abort fails the fleet
  /// (every retry exhausted — the strict default); Degrade abandons the
  /// worker and the launcher completes the shard's range in-process
  /// instead.  Degraded completion is bit-identical with exchange off; with
  /// exchange on it requires non-strict mode and explicitly relaxes the
  /// exchange-determinism contract (the fallback session exchanges
  /// nothing), while the final fold still counts every shard's own
  /// contribution exactly once.
  enum class OnExhausted : std::uint8_t { Abort, Degrade };
  OnExhausted on_exhausted = OnExhausted::Abort;
  /// Publish a recovery checkpoint every N completed batches (0 = off).
  /// A relaunched worker resumes from its last valid checkpoint; resume is
  /// bit-identical to an uninterrupted run (DESIGN.md §10 replay rules).
  int checkpoint_every = 0;
};

/// One shard's contiguous slice [begin, end) of the sweep's configuration
/// range; `index` is its rank in the shard fleet (the exchange and fold
/// order).
struct ShardRange {
  int index = 0;
  int begin = 0;
  int end = 0;
};

/// One shard's sweep product — exactly what the fold consumes.  `outcomes`
/// and `totals` are indexed relative to the range (size end - begin).
/// `stats` holds the shard's *own* statistics contribution: with exchange
/// off it is the session's final snapshot; with exchange on, peer-imported
/// state is excluded so the fold counts every sample once.
struct ShardResult {
  ShardRange range;
  std::vector<tune::ConfigOutcome> outcomes;
  std::vector<tune::ConfigTotals> totals;
  tune::SweepMode mode = tune::SweepMode::Serial;
  std::string strategy;
  int effective_workers = 1;
  int batch = 0;
  std::string fallback_reason;
  int evaluated = 0;
  int exchange_rounds = 0;  ///< delta-publish rounds this shard performed
  /// Where this shard's wall time went (tune::PhaseTimes contract: timing
  /// metadata, excluded from bit-identity).  ask/evaluate/tell come from
  /// the shard's Tuner session; exchange/checkpoint are filled by
  /// executors that perform those phases out-of-session (the subprocess
  /// worker loop).
  tune::PhaseTimes phases;
  core::StatSnapshot stats;

  // --- fault-recovery record (subprocess executor; zero elsewhere) ---
  int retries = 0;          ///< relaunches this shard consumed
  bool recovered = false;   ///< completed after >= 1 relaunch
  bool degraded = false;    ///< completed by the launcher's in-process fallback
  int exchange_skips = 0;   ///< non-strict exchange rounds skipped
  int checkpoints = 0;      ///< checkpoints the final worker attempt published
  int resumed_batches = 0;  ///< batches replayed from the resume checkpoint
  /// Exchange payload bytes the final worker attempt moved through the
  /// store (published deltas + live peer reads) — the wire-accounting
  /// companion to the sparse delta encoding (DESIGN.md §13): the bench
  /// harness divides by exchange_rounds for bytes_per_exchange_round.
  std::int64_t exchange_bytes = 0;
  std::string failure;      ///< last classified failure, empty if none
};

/// Transport-agnostic shard execution: run every range as an independent
/// sweep over `study` under `opt` (with the range applied as
/// config_begin/config_end), exchanging deltas per `exchange`.  Ranges must
/// be non-empty, disjoint, and ascending by index.  Implementations throw
/// (never hang) on shard failure, with the failing shard identified.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;
  virtual const char* name() const = 0;
  virtual std::vector<ShardResult> run(const tune::Study& study,
                                       const tune::TuneOptions& opt,
                                       const std::vector<ShardRange>& shards,
                                       const ExchangePolicy& exchange) = 0;
};

/// Shards inside this process.  Sequential by default — with exchange off
/// this is bit-identical to the legacy merge_shards loop.  With
/// `parallel_shards`, shards run on a thread pool (one logical worker per
/// shard, capped at the hardware concurrency); results are identical to
/// the sequential run because shard segments are independent between
/// exchange points and all merging happens at the round barrier in shard
/// order.
class InProcessExecutor final : public ShardExecutor {
 public:
  explicit InProcessExecutor(bool parallel_shards = false)
      : parallel_shards_(parallel_shards) {}
  const char* name() const override { return "in-process"; }
  std::vector<ShardResult> run(const tune::Study& study,
                               const tune::TuneOptions& opt,
                               const std::vector<ShardRange>& shards,
                               const ExchangePolicy& exchange) override;

 private:
  bool parallel_shards_;
};

struct SubprocessOptions {
  /// Run directory holding the manifest, per-shard artifacts, and the
  /// exchange mailbox.  Empty: a fresh private directory under $TMPDIR,
  /// removed on success and kept (and named in the error) on failure.  A
  /// caller-provided directory is created if needed, must not already
  /// contain a run manifest, and is always kept.
  std::string run_dir;
  /// Binary to re-exec as the shard worker; empty: /proc/self/exe.  The
  /// binary's main() must route --shard-worker invocations into
  /// shard_worker_main() before any other argument handling.
  std::string worker_binary;
  /// Per-shard retry/backoff/deadline/checkpoint policy.  The defaults
  /// reproduce the historical behavior (no retries, no checkpoints, abort
  /// on the first fault) with stall detection now progress-based (per-shard
  /// heartbeats) instead of a whole-run wall clock.
  FaultPolicy fault;
  bool keep_run_dir = false;
  /// Test-only fault injection, written into the run manifest:
  /// "<shard>:<mode>[:<arg>[:<times>]]" — see DESIGN.md §10 for the modes
  /// (crash-after-batch, crash-on-start, hang-after-batch, corrupt-delta,
  /// corrupt-checkpoint, kill-mid-checkpoint, slow-exchange, skip-result).
  /// The CRITTER_SHARD_FAULT environment variable overrides this knob.
  std::string fault_injection;
  /// How the fleet shares its coordination artifacts (DESIGN.md §12.2):
  /// "dir" (default) — the run directory, byte-identical to the historical
  /// file protocol; "socket" — an in-memory store served over TCP from the
  /// launcher (net::BlobServer), with workers connecting per --connect and
  /// per-op deadlines mapped from the FaultPolicy phases.  Results are
  /// bit-identical across transports; worker-local checkpoints and logs
  /// stay in the run directory either way.
  std::string transport;
};

/// One OS process per shard: the distributed-memory execution the paper
/// targets, exercised on one host.  Requires a registry workload
/// (Study::workload) so workers can rebuild the study; subset
/// configuration lists travel through the run manifest by absolute index.
/// Worker crashes, stale manifests, and missing snapshots surface as
/// std::runtime_error naming the shard — the launcher aborts the remaining
/// fleet instead of hanging.
class SubprocessExecutor final : public ShardExecutor {
 public:
  explicit SubprocessExecutor(SubprocessOptions opts = {})
      : opts_(std::move(opts)) {}
  const char* name() const override { return "subprocess"; }
  std::vector<ShardResult> run(const tune::Study& study,
                               const tune::TuneOptions& opt,
                               const std::vector<ShardRange>& shards,
                               const ExchangePolicy& exchange) override;

 private:
  SubprocessOptions opts_;
};

/// The contiguous balanced partition merge_shards has always used (empty
/// slices of an over-sharded range are dropped; `index` numbers the kept
/// shards densely).
std::vector<ShardRange> partition_range(int begin, int end, int nshards);

/// Run `study` sharded via `exec` and fold: outcomes and totals copy into
/// place, aggregates re-reduce in configuration order over the whole range,
/// shard statistics merge in shard order.  tune::merge_shards() is this
/// with a sequential InProcessExecutor and exchange off.
tune::TuneResult run_sharded(const tune::Study& study,
                             const tune::TuneOptions& opt, int nshards,
                             ShardExecutor& exec,
                             const ExchangePolicy& exchange = {});

/// CLI convenience (the examples' --shards/--executor/--exchange-every/
/// --max-retries/--checkpoint-every/--exchange-strict flags): run through
/// the executor named "subprocess" or "in-process" (thread-parallel
/// shards), or plain run_study() when nshards <= 1.  `fault` only applies
/// to the subprocess executor (in-process shards cannot crash
/// independently).  Unknown names CRITTER_CHECK-fail listing the known
/// ones.
tune::TuneResult run_sharded_named(const tune::Study& study,
                                   const tune::TuneOptions& opt, int nshards,
                                   const std::string& executor,
                                   const ExchangePolicy& exchange = {},
                                   const FaultPolicy& fault = {});

/// True when argv carries --shard-worker: main() must then hand the
/// process to shard_worker_main() (and exit with its return value) before
/// any other argument handling of its own.  Custom workloads must be
/// registered *before* the hand-off — the worker rebuilds the study from
/// the registry (the paper studies are pre-registered).
bool is_shard_worker(int argc, char** argv);

/// The --shard-worker entry point: rebuilds the study and options from the
/// run directory named on the command line, sweeps its shard (exchanging
/// deltas per the run manifest), and publishes its ShardResult.  Returns a
/// process exit code; failures are also recorded in the shard's error file
/// for the launcher to surface.
int shard_worker_main(int argc, char** argv);

}  // namespace critter::dist
