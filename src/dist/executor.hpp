// Distributed sweep execution: shards as first-class execution units.
//
// merge_shards() partitions a sweep into contiguous shards; this layer owns
// *how* those shards run.  A ShardExecutor runs every shard as an
// independent Tuner session and returns per-shard products for the
// deterministic fold in run_sharded():
//
//   InProcessExecutor   — shards in this process, sequentially (the legacy
//                         merge_shards semantics, bit-identical) or
//                         thread-parallel across shards;
//   SubprocessExecutor  — one worker process per shard (a re-exec of the
//                         current binary through the --shard-worker entry
//                         point), exchanging versioned StatSnapshot files
//                         through a run directory (dist/protocol.hpp).
//
// Periodic mid-sweep exchange (ExchangePolicy::every > 0): after every N
// strategy batches a shard publishes the statistics delta it grew since its
// last publish and folds in the deltas its peers published for the same
// round — so ci-discard/halving-style strategies see cross-shard statistics
// *during* the sweep, not only in the final fold.  The schedule is aligned
// by round: a shard's round-r delta is a pure function of (study, options,
// shard ranges, r), peers' deltas merge in ascending shard order, and a
// shard's own contribution is tracked separately so the final fold counts
// every sample exactly once.  The result is deterministic for a fixed
// (seed, shard count, exchange interval) and identical across executors;
// with exchange off every executor reproduces the legacy merge_shards fold
// bit-exactly.  DESIGN.md §8 has the full contract.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/stat_store.hpp"
#include "tune/tuner.hpp"

namespace critter::dist {

/// Mid-sweep snapshot exchange schedule: every `every` strategy batches a
/// shard publishes its delta and folds in its peers' (0 = exchange only
/// through the final fold — the legacy merge_shards behavior).
struct ExchangePolicy {
  int every = 0;
};

/// One shard's contiguous slice [begin, end) of the sweep's configuration
/// range; `index` is its rank in the shard fleet (the exchange and fold
/// order).
struct ShardRange {
  int index = 0;
  int begin = 0;
  int end = 0;
};

/// One shard's sweep product — exactly what the fold consumes.  `outcomes`
/// and `totals` are indexed relative to the range (size end - begin).
/// `stats` holds the shard's *own* statistics contribution: with exchange
/// off it is the session's final snapshot; with exchange on, peer-imported
/// state is excluded so the fold counts every sample once.
struct ShardResult {
  ShardRange range;
  std::vector<tune::ConfigOutcome> outcomes;
  std::vector<tune::ConfigTotals> totals;
  tune::SweepMode mode = tune::SweepMode::Serial;
  std::string strategy;
  int effective_workers = 1;
  int batch = 0;
  std::string fallback_reason;
  int evaluated = 0;
  int exchange_rounds = 0;  ///< delta-publish rounds this shard performed
  core::StatSnapshot stats;
};

/// Transport-agnostic shard execution: run every range as an independent
/// sweep over `study` under `opt` (with the range applied as
/// config_begin/config_end), exchanging deltas per `exchange`.  Ranges must
/// be non-empty, disjoint, and ascending by index.  Implementations throw
/// (never hang) on shard failure, with the failing shard identified.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;
  virtual const char* name() const = 0;
  virtual std::vector<ShardResult> run(const tune::Study& study,
                                       const tune::TuneOptions& opt,
                                       const std::vector<ShardRange>& shards,
                                       const ExchangePolicy& exchange) = 0;
};

/// Shards inside this process.  Sequential by default — with exchange off
/// this is bit-identical to the legacy merge_shards loop.  With
/// `parallel_shards`, shards run on a thread pool (one logical worker per
/// shard, capped at the hardware concurrency); results are identical to
/// the sequential run because shard segments are independent between
/// exchange points and all merging happens at the round barrier in shard
/// order.
class InProcessExecutor final : public ShardExecutor {
 public:
  explicit InProcessExecutor(bool parallel_shards = false)
      : parallel_shards_(parallel_shards) {}
  const char* name() const override { return "in-process"; }
  std::vector<ShardResult> run(const tune::Study& study,
                               const tune::TuneOptions& opt,
                               const std::vector<ShardRange>& shards,
                               const ExchangePolicy& exchange) override;

 private:
  bool parallel_shards_;
};

struct SubprocessOptions {
  /// Run directory holding the manifest, per-shard artifacts, and the
  /// exchange mailbox.  Empty: a fresh private directory under $TMPDIR,
  /// removed on success and kept (and named in the error) on failure.  A
  /// caller-provided directory is created if needed, must not already
  /// contain a run manifest, and is always kept.
  std::string run_dir;
  /// Binary to re-exec as the shard worker; empty: /proc/self/exe.  The
  /// binary's main() must route --shard-worker invocations into
  /// shard_worker_main() before any other argument handling.
  std::string worker_binary;
  /// Abandon the run (abort the fleet, fail with a diagnosis) when a worker
  /// has neither exited nor published within this budget.
  double timeout_s = 300.0;
  bool keep_run_dir = false;
};

/// One OS process per shard: the distributed-memory execution the paper
/// targets, exercised on one host.  Requires a registry workload
/// (Study::workload) so workers can rebuild the study; subset
/// configuration lists travel through the run manifest by absolute index.
/// Worker crashes, stale manifests, and missing snapshots surface as
/// std::runtime_error naming the shard — the launcher aborts the remaining
/// fleet instead of hanging.
class SubprocessExecutor final : public ShardExecutor {
 public:
  explicit SubprocessExecutor(SubprocessOptions opts = {})
      : opts_(std::move(opts)) {}
  const char* name() const override { return "subprocess"; }
  std::vector<ShardResult> run(const tune::Study& study,
                               const tune::TuneOptions& opt,
                               const std::vector<ShardRange>& shards,
                               const ExchangePolicy& exchange) override;

 private:
  SubprocessOptions opts_;
};

/// The contiguous balanced partition merge_shards has always used (empty
/// slices of an over-sharded range are dropped; `index` numbers the kept
/// shards densely).
std::vector<ShardRange> partition_range(int begin, int end, int nshards);

/// Run `study` sharded via `exec` and fold: outcomes and totals copy into
/// place, aggregates re-reduce in configuration order over the whole range,
/// shard statistics merge in shard order.  tune::merge_shards() is this
/// with a sequential InProcessExecutor and exchange off.
tune::TuneResult run_sharded(const tune::Study& study,
                             const tune::TuneOptions& opt, int nshards,
                             ShardExecutor& exec,
                             const ExchangePolicy& exchange = {});

/// CLI convenience (the examples' --shards/--executor/--exchange-every
/// flags): run through the executor named "subprocess" or "in-process"
/// (thread-parallel shards), or plain run_study() when nshards <= 1.
/// Unknown names CRITTER_CHECK-fail listing the known ones.
tune::TuneResult run_sharded_named(const tune::Study& study,
                                   const tune::TuneOptions& opt, int nshards,
                                   const std::string& executor,
                                   int exchange_every);

/// True when argv carries --shard-worker: main() must then hand the
/// process to shard_worker_main() (and exit with its return value) before
/// any other argument handling of its own.  Custom workloads must be
/// registered *before* the hand-off — the worker rebuilds the study from
/// the registry (the paper studies are pre-registered).
bool is_shard_worker(int argc, char** argv);

/// The --shard-worker entry point: rebuilds the study and options from the
/// run directory named on the command line, sweeps its shard (exchanging
/// deltas per the run manifest), and publishes its ShardResult.  Returns a
/// process exit code; failures are also recorded in the shard's error file
/// for the launcher to surface.
int shard_worker_main(int argc, char** argv);

}  // namespace critter::dist
