#include "dist/manifest.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace critter::dist {

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

Manifest parse_manifest(const std::string& text) {
  Manifest m;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    CRITTER_CHECK(eq != std::string::npos,
                  "run manifest: malformed line '" + line + "'");
    m[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return m;
}

std::string manifest_get(const Manifest& m, const std::string& key) {
  const auto it = m.find(key);
  CRITTER_CHECK(it != m.end(), "run manifest: missing key '" + key + "'");
  return it->second;
}

std::int64_t manifest_int(const Manifest& m, const std::string& key) {
  return std::strtoll(manifest_get(m, key).c_str(), nullptr, 10);
}

std::uint64_t manifest_u64(const Manifest& m, const std::string& key) {
  return std::strtoull(manifest_get(m, key).c_str(), nullptr, 10);
}

double manifest_double(const Manifest& m, const std::string& key) {
  return std::strtod(manifest_get(m, key).c_str(), nullptr);
}

std::vector<int> parse_index_list(const std::string& csv) {
  std::vector<int> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ','))
    if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
  return out;
}

void write_study_identity(std::string& out, const tune::Study& study,
                          bool paper_scale) {
  std::ostringstream os;
  os << "workload=" << study.workload << "\n";
  os << "paper_scale=" << (paper_scale ? 1 : 0) << "\n";
  os << "nranks=" << study.nranks << "\n";
  os << "config_indices=";
  for (std::size_t i = 0; i < study.configs.size(); ++i)
    os << (i > 0 ? "," : "") << study.configs[i].index;
  os << "\n";
  out += os.str();
}

tune::Study rebuild_study(const Manifest& m) {
  const std::string workload = manifest_get(m, "workload");
  tune::Study study =
      tune::workload_study(workload, manifest_int(m, "paper_scale") != 0);
  CRITTER_CHECK(study.nranks == manifest_int(m, "nranks"),
                "run manifest: study rank count mismatch for " + workload);
  const std::vector<int> indices =
      parse_index_list(manifest_get(m, "config_indices"));
  std::vector<tune::Configuration> configs;
  configs.reserve(indices.size());
  for (int idx : indices) {
    CRITTER_CHECK(idx >= 0 && idx < static_cast<int>(study.configs.size()) &&
                      study.configs[idx].index == idx,
                  "run manifest: configuration index " + std::to_string(idx) +
                      " not in the workload's space");
    configs.push_back(study.configs[idx]);
  }
  study.configs = std::move(configs);
  return study;
}

void write_tune_options(std::string& out, const tune::TuneOptions& opt) {
  std::ostringstream os;
  os << "policy=" << static_cast<int>(opt.policy) << "\n";
  os << "tolerance=" << hex_double(opt.tolerance) << "\n";
  os << "samples=" << opt.samples << "\n";
  os << "reset_per_config=" << (opt.reset_per_config ? 1 : 0) << "\n";
  os << "seed_salt=" << opt.seed_salt << "\n";
  os << "comp_noise=" << hex_double(opt.comp_noise) << "\n";
  os << "comm_noise=" << hex_double(opt.comm_noise) << "\n";
  os << "tilde_capacity=" << opt.tilde_capacity << "\n";
  os << "extrapolate=" << (opt.extrapolate ? 1 : 0) << "\n";
  os << "workers=" << opt.workers << "\n";
  os << "batch=" << opt.batch << "\n";
  os << "strategy=" << opt.strategy << "\n";
  for (const auto& [k, v] : opt.strategy_options) {
    CRITTER_CHECK(v.find('\n') == std::string::npos &&
                      k.find('\n') == std::string::npos,
                  "strategy options must be single-line");
    os << "strategy_opt." << k << "=" << v << "\n";
  }
  CRITTER_CHECK(opt.prior_file.find('\n') == std::string::npos,
                "prior_file must be single-line");
  os << "prior_file=" << opt.prior_file << "\n";
  out += os.str();
}

tune::TuneOptions rebuild_options(const Manifest& m) {
  tune::TuneOptions opt;
  const std::int64_t policy = manifest_int(m, "policy");
  CRITTER_CHECK(policy >= 0 && policy < 8, "run manifest: bad policy");
  opt.policy = static_cast<Policy>(policy);
  opt.tolerance = manifest_double(m, "tolerance");
  opt.samples = static_cast<int>(manifest_int(m, "samples"));
  opt.reset_per_config = manifest_int(m, "reset_per_config") != 0;
  opt.seed_salt = manifest_u64(m, "seed_salt");
  opt.comp_noise = manifest_double(m, "comp_noise");
  opt.comm_noise = manifest_double(m, "comm_noise");
  opt.tilde_capacity = static_cast<int>(manifest_int(m, "tilde_capacity"));
  opt.extrapolate = manifest_int(m, "extrapolate") != 0;
  opt.workers = static_cast<int>(manifest_int(m, "workers"));
  opt.batch = static_cast<int>(manifest_int(m, "batch"));
  opt.strategy = manifest_get(m, "strategy");
  for (const auto& [k, v] : m)
    if (k.rfind("strategy_opt.", 0) == 0)
      opt.strategy_options[k.substr(13)] = v;
  opt.prior_file = manifest_get(m, "prior_file");
  return opt;
}

bool detect_paper_scale(const tune::Study& study) {
  for (const bool scale : {false, true}) {
    const tune::Study ref = tune::workload_study(study.workload, scale);
    if (ref.nranks == study.nranks && ref.m == study.m &&
        ref.n == study.n && ref.space.size() == study.space.size())
      return scale;
  }
  CRITTER_CHECK(false,
                "cannot reconstruct study '" + study.name +
                    "' from workload '" + study.workload +
                    "' at either scale — tune it in-process instead");
  return false;
}

std::string build_run_manifest(const tune::Study& study, bool paper_scale,
                               const tune::TuneOptions& opt,
                               const std::vector<ShardRange>& shards,
                               const ExchangePolicy& exchange,
                               const FaultPolicy& fault,
                               const std::string& fault_injection,
                               bool warm) {
  std::string out;
  write_study_identity(out, study, paper_scale);
  write_tune_options(out, opt);
  std::ostringstream os;
  os << "exchange_every=" << exchange.every << "\n";
  os << "exchange_strict=" << (exchange.strict ? 1 : 0) << "\n";
  os << "exchange_deadline_s=" << hex_double(fault.exchange_deadline_s)
     << "\n";
  os << "checkpoint_every=" << fault.checkpoint_every << "\n";
  // Exchange-mailbox garbage collection (DESIGN.md §13) is only sound when
  // no worker can ever resume and replay history: a retried shard re-reads
  // its absorbed deltas from the mailbox, so any checkpoint/retry policy
  // pins the full delta history for the run's lifetime.
  os << "gc_exchange="
     << (fault.checkpoint_every <= 0 && fault.max_retries == 0 ? 1 : 0)
     << "\n";
  CRITTER_CHECK(fault_injection.find('\n') == std::string::npos,
                "fault-injection spec must be single-line");
  os << "fault=" << fault_injection << "\n";
  os << "nshards=" << shards.size() << "\n";
  os << "warm_start=" << (warm ? 1 : 0) << "\n";
  // An in-memory model prior travels as a published snapshot, exactly like
  // the warm start (the worker cannot see the launcher's memory).
  os << "prior_snap=" << (opt.prior != nullptr && !opt.prior->empty() ? 1 : 0)
     << "\n";
  for (const ShardRange& s : shards)
    os << "shard" << s.index << "=" << s.begin << "," << s.end << "\n";
  out += os.str();
  return out;
}

ShardRange shard_range_of(const Manifest& m, int shard) {
  const std::string spec = manifest_get(m, "shard" + std::to_string(shard));
  int lo = 0, hi = 0;
  CRITTER_CHECK(std::sscanf(spec.c_str(), "%d,%d", &lo, &hi) == 2,
                "run manifest: malformed shard range '" + spec + "'");
  return {shard, lo, hi};
}

}  // namespace critter::dist
