// Internal: one shard's sweep session with exchange-delta bookkeeping,
// shared by the in-process executor's lockstep rounds and the subprocess
// worker loop so both realize the identical exchange semantics (the
// cross-executor determinism contract, DESIGN.md §8).
#pragma once

#include <memory>

#include "core/stat_store.hpp"
#include "dist/executor.hpp"
#include "tune/tuner.hpp"
#include "util/check.hpp"

namespace critter::dist {

/// The shard product of a plain (exchange-off) sweep result — the
/// executors' and the worker's shared slicing of a TuneResult.
ShardResult shard_result_from(const tune::TuneResult& r,
                              const ShardRange& range);

/// A Tuner session plus the delta-tracking state of the exchange protocol:
/// `mark` is the statistics baseline of the next delta (the session state
/// right after the previous round's peer absorption), `own` accumulates the
/// shard's own contribution (initial state + own deltas, never peers') —
/// the snapshot the final fold consumes.
class ShardSession {
 public:
  ShardSession(const tune::Study& study, const tune::TuneOptions& opt)
      : session_(study, opt) {
    mark_ = session_.export_state();
    own_ = mark_;
  }

  /// Run up to `max_batches` ask/evaluate/tell rounds; returns how many
  /// ran (fewer means the strategy is exhausted — done() from then on).
  int run_segment(int max_batches) {
    int ran = 0;
    while (ran < max_batches) {
      if (!session_.step()) {
        done_ = true;
        break;
      }
      ++ran;
    }
    return ran;
  }

  /// One ask/evaluate/tell round, reporting the batch positions and their
  /// outcomes (the subprocess worker's checkpoint log); false when the
  /// strategy is exhausted.  Bit-identical to run_segment(1).
  bool step_logged(std::vector<int>* batch,
                   std::vector<tune::ConfigOutcome>* outcomes) {
    *batch = session_.ask();
    if (batch->empty()) {
      done_ = true;
      return false;
    }
    *outcomes = session_.evaluate(*batch);
    session_.tell(*outcomes);
    return true;
  }

  /// Checkpoint replay: re-ask the strategy and feed it the recorded
  /// outcomes without evaluating (tell() contributes no kernel statistics
  /// — the resumed session's statistics were restored wholesale).  The
  /// strategy must propose the recorded batch exactly; anything else means
  /// the checkpoint belongs to a different run.
  void replay_tell(const std::vector<int>& batch,
                   const std::vector<tune::ConfigOutcome>& outcomes) {
    const std::vector<int> asked = session_.ask();
    CRITTER_CHECK(asked == batch,
                  "checkpoint replay diverged: the strategy proposed a "
                  "different batch than the checkpoint recorded");
    session_.tell(outcomes);
  }

  /// Checkpoint replay of one peer's historical round delta: strategy
  /// ingestion only (see Tuner::replay_exchange).
  void replay_exchange(const core::StatSnapshot& peer_delta) {
    session_.replay_exchange(peer_delta);
  }

  /// Restore the exchange bookkeeping a checkpoint recorded (after the
  /// told-batch replay): the delta baseline, the own-contribution
  /// accumulator, and the completed-round count.
  void restore_exchange_state(core::StatSnapshot mark, core::StatSnapshot own,
                              int rounds) {
    mark_ = std::move(mark);
    own_ = std::move(own);
    rounds_ = rounds;
  }

  /// The statistics delta grown since the last publish point; folds it
  /// into the shard's own contribution and advances the publish baseline.
  core::StatSnapshot take_delta() {
    core::StatSnapshot now = session_.export_state();
    core::StatSnapshot delta = now.diff(mark_);
    if (!own_.empty())
      own_.merge(delta);
    else
      own_ = delta;
    mark_ = std::move(now);
    ++rounds_;
    return delta;
  }

  /// Fold one peer's round delta into the live session (call in ascending
  /// peer order); finish the round with refresh_mark() so the next delta
  /// diffs against the post-absorption state.
  void absorb(const core::StatSnapshot& peer_delta) {
    session_.merge_state(peer_delta);
  }
  void refresh_mark() { mark_ = session_.export_state(); }

  bool done() const { return done_; }
  int rounds() const { return rounds_; }
  tune::Tuner& session() { return session_; }
  const core::StatSnapshot& own_stats() const { return own_; }
  const core::StatSnapshot& mark() const { return mark_; }

  /// The shard product for the fold: session outcomes restricted to the
  /// range, with `stats` replaced by the shard's own contribution.
  ShardResult result(const ShardRange& range) const {
    ShardResult out = shard_result_from(session_.result(), range);
    out.exchange_rounds = rounds_;
    out.stats = own_;
    return out;
  }

 private:
  tune::Tuner session_;
  core::StatSnapshot mark_;
  core::StatSnapshot own_;
  int rounds_ = 0;
  bool done_ = false;
};

}  // namespace critter::dist
