// Run-manifest codec: the text key=value format through which a launcher
// tells a worker — or a tuner daemon tells itself, across a restart —
// exactly which study and TuneOptions to rebuild.  Doubles travel as C
// "%a" hex floats so a round-trip is bit-exact; configuration subsets
// travel by absolute index and are re-validated against the registry
// workload's space on the way back in.
//
// Extracted from the subprocess executor so the serve daemon's session
// journals speak the identical study/options identity (a session resumed
// from its journal must rebuild the same sweep a worker would).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/executor.hpp"
#include "tune/tuner.hpp"

namespace critter::dist {

using Manifest = std::map<std::string, std::string>;

/// Bit-exact double formatting ("%a") for manifest values.
std::string hex_double(double v);

/// Parse key=value lines; CRITTER_CHECK-fails on a malformed line.
Manifest parse_manifest(const std::string& text);

std::string manifest_get(const Manifest& m, const std::string& key);
std::int64_t manifest_int(const Manifest& m, const std::string& key);
std::uint64_t manifest_u64(const Manifest& m, const std::string& key);
double manifest_double(const Manifest& m, const std::string& key);

std::vector<int> parse_index_list(const std::string& csv);

/// The study-identity lines: workload, scale, rank count, configuration
/// indices.  rebuild_study() is the inverse, re-deriving the study from
/// the workload registry and validating every index against its space.
void write_study_identity(std::string& out, const tune::Study& study,
                          bool paper_scale);
tune::Study rebuild_study(const Manifest& m);

/// The TuneOptions lines (everything a worker needs except the range and
/// the in-memory warm/prior snapshots, which travel separately).
/// rebuild_options() is the inverse.
void write_tune_options(std::string& out, const tune::TuneOptions& opt);
tune::TuneOptions rebuild_options(const Manifest& m);

/// Whether the launcher's study matches the registry workload at paper or
/// smoke scale; CRITTER_CHECK-fails if neither (ad-hoc studies cannot be
/// rebuilt from a manifest).
bool detect_paper_scale(const tune::Study& study);

/// The full subprocess-run manifest (study + options + shard plan +
/// exchange/fault policy + injection spec).
std::string build_run_manifest(const tune::Study& study, bool paper_scale,
                               const tune::TuneOptions& opt,
                               const std::vector<ShardRange>& shards,
                               const ExchangePolicy& exchange,
                               const FaultPolicy& fault,
                               const std::string& fault_injection, bool warm);

/// Parse this shard's "shard<k>=begin,end" line.
ShardRange shard_range_of(const Manifest& m, int shard);

}  // namespace critter::dist
