// SubprocessExecutor and the --shard-worker entry point: one OS process
// per shard, coordinated exclusively through run-directory files
// (dist/protocol.hpp).  Layout:
//
//   <run_dir>/run.txt            run manifest: study identity (workload,
//                                scale, configuration indices), tuning
//                                options, shard ranges, exchange interval,
//                                fault-injection spec
//   <run_dir>/warm.snap[.ok]     optional warm-start snapshot
//   <run_dir>/shard<k>/          per-shard: result.bin[.ok] (published
//                                ShardResult), ckpt_a.bin/ckpt_b.bin[.ok]
//                                (alternating recovery checkpoints),
//                                heartbeat (atomically rewritten liveness
//                                counter), error.txt, log.txt
//   <run_dir>/exchange/          mailbox: s<k>_r<j>.snap[.ok] round deltas,
//                                s<k>.done final round-count markers
//   <run_dir>/abort[.ok]         published by the launcher on fleet
//                                failure; waiting workers poll it and bail
//
// Fault tolerance (DESIGN.md §10): the launcher classifies worker faults —
// nonzero exit, stalled heartbeat, unusable result — and relaunches with
// exponential backoff per FaultPolicy instead of aborting on first fault.
// A relaunched worker resumes from its last valid checkpoint and replays
// the recorded session prefix, so recovery is bit-identical to an
// uninterrupted run.  Terminal faults either abort the fleet (the strict
// default, with the shard and kept run directory named in the error) or
// degrade: the launcher completes the shard's range in-process.
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/checkpoint.hpp"
#include "dist/executor.hpp"
#include "dist/manifest.hpp"
#include "dist/protocol.hpp"
#include "dist/shard_session.hpp"
#include "dist/wire.hpp"
#include "net/blob.hpp"
#include "net/socket.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace critter::dist {

namespace {

// ---------------------------------------------------------------------------
// ShardResult wire format (framing helpers in dist/wire.hpp)
// ---------------------------------------------------------------------------

// Version 4: appends the per-phase wall-time breakdown (tune::PhaseTimes)
// after the fault counters — timing metadata the fold sums into
// TuneResult::phases; never part of any bit-identity comparison.
constexpr char kResultMagic[8] = {'C', 'R', 'S', 'H', 'R', 'E', 'S', '4'};

std::string serialize_result(const ShardResult& r) {
  WireWriter w;
  w.raw(kResultMagic, sizeof kResultMagic);
  w.i32(r.range.index);
  w.i32(r.range.begin);
  w.i32(r.range.end);
  w.u8(static_cast<std::uint8_t>(r.mode));
  w.str(r.strategy);
  w.i32(r.effective_workers);
  w.i32(r.batch);
  w.str(r.fallback_reason);
  w.i32(r.evaluated);
  w.i32(r.exchange_rounds);
  w.i32(r.exchange_skips);
  w.i32(r.checkpoints);
  w.i32(r.resumed_batches);
  w.i64(r.exchange_bytes);
  w.f64(r.phases.ask);
  w.f64(r.phases.evaluate);
  w.f64(r.phases.tell);
  w.f64(r.phases.exchange);
  w.f64(r.phases.checkpoint);
  for (std::size_t j = 0; j < r.outcomes.size(); ++j) {
    write_outcome(w, r.outcomes[j]);
    write_totals(w, r.totals[j]);
  }
  w.u8(r.stats.empty() ? 0 : 1);
  if (!r.stats.empty()) {
    const std::string blob = r.stats.to_string();
    w.raw(blob.data(), blob.size());
  }
  return w.out;
}

/// Parse a published result; `study` rebinds the configurations (the wire
/// carries only their absolute indices, which must match the launcher's
/// view of the study).
ShardResult parse_result(const std::string& payload, const tune::Study& study,
                         const ShardRange& expect) {
  WireReader r{payload};
  char magic[sizeof kResultMagic];
  r.raw(magic, sizeof magic);
  CRITTER_CHECK(std::memcmp(magic, kResultMagic, sizeof kResultMagic) == 0,
                "shard result: bad magic");
  ShardResult out;
  out.range.index = r.i32();
  out.range.begin = r.i32();
  out.range.end = r.i32();
  CRITTER_CHECK(out.range.index == expect.index &&
                    out.range.begin == expect.begin &&
                    out.range.end == expect.end,
                "shard result: range does not match the launcher's shard "
                "plan (stale run directory?)");
  out.mode = static_cast<tune::SweepMode>(r.u8());
  out.strategy = r.str();
  out.effective_workers = r.i32();
  out.batch = r.i32();
  out.fallback_reason = r.str();
  out.evaluated = r.i32();
  out.exchange_rounds = r.i32();
  out.exchange_skips = r.i32();
  out.checkpoints = r.i32();
  out.resumed_batches = r.i32();
  out.exchange_bytes = r.i64();
  out.phases.ask = r.f64();
  out.phases.evaluate = r.f64();
  out.phases.tell = r.f64();
  out.phases.exchange = r.f64();
  out.phases.checkpoint = r.f64();
  const int n = expect.end - expect.begin;
  out.outcomes.resize(n);
  out.totals.resize(n);
  for (int j = 0; j < n; ++j) {
    out.outcomes[j].config = study.configs[expect.begin + j];
    read_outcome(r, out.outcomes[j], "shard result");
    read_totals(r, out.totals[j]);
  }
  if (r.u8() != 0) {
    out.stats = core::StatSnapshot::from_string(
        std::string_view(payload).substr(r.pos));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exchange mailbox naming
// ---------------------------------------------------------------------------

std::string delta_name(int shard, int round) {
  std::string n = "s";
  n += std::to_string(shard);
  n += "_r";
  n += std::to_string(round);
  n += ".snap";
  return n;
}
std::string done_name(int shard) {
  std::string n = "s";
  n += std::to_string(shard);
  n += ".done";
  return n;
}
/// Fold-progress marker for mailbox GC: "rounds=<n>" = this shard has
/// completed n full fold rounds, i.e. consumed every peer's round-(n-1)
/// delta.  Plain put (monotonic counter; readers tolerate absence).
std::string progress_name(int shard) {
  std::string n = "s";
  n += std::to_string(shard);
  n += ".progress";
  return n;
}

// ---------------------------------------------------------------------------
// Fault injection (test-only)
// ---------------------------------------------------------------------------

/// "<index>:<mode>[:<arg>[:<times>]]" from the CRITTER_SHARD_FAULT
/// environment variable (overrides) or the run manifest's `fault=` key.
/// Modes and their `arg`:
///   crash-after-batch   _exit(42) after `arg` batches of the attempt (1)
///   crash-on-start      _exit(41) before doing anything
///   hang-after-batch    stop beating and sleep forever after `arg` batches
///   corrupt-delta       corrupt the published round-`arg` delta (0)
///   corrupt-checkpoint  corrupt checkpoint #`arg` (2), then _exit(43)
///   kill-mid-checkpoint SIGKILL between checkpoint #`arg` (2)'s payload
///                       rename and its manifest write (the kill-9 torn
///                       point)
///   slow-exchange       delay the round-0 delta publish by `arg` ms (1000)
///   skip-result         finish but never publish the result (always fires)
/// `times` bounds how many worker attempts fire the fault (default 1), via
/// a counter file in the shard directory — a relaunch runs clean, which is
/// what makes recovery testable.
struct FaultSpec {
  std::string mode;
  long arg = 0;
  long times = 1;
};

FaultSpec shard_fault(int index, const Manifest& m) {
  std::string s;
  if (const char* env = std::getenv("CRITTER_SHARD_FAULT"); env != nullptr)
    s = env;
  else if (const auto it = m.find("fault"); it != m.end())
    s = it->second;
  if (s.empty()) return {};
  std::vector<std::string> tok;
  std::istringstream is(s);
  std::string t;
  while (std::getline(is, t, ':')) tok.push_back(t);
  if (tok.size() < 2) return {};
  if (std::atoi(tok[0].c_str()) != index) return {};
  FaultSpec f;
  f.mode = tok[1];
  if (tok.size() > 2 && !tok[2].empty()) f.arg = std::atol(tok[2].c_str());
  if (tok.size() > 3 && !tok[3].empty()) f.times = std::atol(tok[3].c_str());
  return f;
}

/// Consume one firing of the fault; false once `times` attempts fired.
bool fault_fires(const std::string& shard_dir, const FaultSpec& f) {
  const std::string marker = shard_dir + "/fault_" + f.mode + ".count";
  long fired = 0;
  if (file_exists(marker)) {
    try {
      fired = std::atol(read_file(marker).c_str());
    } catch (...) {
    }
  }
  if (fired >= f.times) return false;
  write_file(marker, std::to_string(fired + 1));
  return true;
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

struct WorkerArgs {
  std::string run_dir;
  int shard = -1;
  /// "host:port" of the launcher's blob server; empty = the run directory
  /// itself is the shared store (the historical file transport).
  std::string connect;
  /// Per-op deadlines for the socket transport, mapped from the launcher's
  /// FaultPolicy phases (connect/handshake from startup_deadline_s, every
  /// steady-state request from progress_deadline_s).
  double connect_deadline_s = 60.0;
  double op_deadline_s = 300.0;
};

WorkerArgs parse_worker_args(int argc, char** argv) {
  WorkerArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shard-dir=", 0) == 0) a.run_dir = arg.substr(12);
    if (arg.rfind("--shard-index=", 0) == 0)
      a.shard = std::atoi(arg.c_str() + 14);
    if (arg.rfind("--connect=", 0) == 0) a.connect = arg.substr(10);
    if (arg.rfind("--connect-deadline=", 0) == 0)
      a.connect_deadline_s = std::strtod(arg.c_str() + 19, nullptr);
    if (arg.rfind("--op-deadline=", 0) == 0)
      a.op_deadline_s = std::strtod(arg.c_str() + 14, nullptr);
  }
  CRITTER_CHECK(!a.run_dir.empty() && a.shard >= 0,
                "--shard-worker needs --shard-dir=DIR and --shard-index=N");
  return a;
}

/// Graceful-shutdown flag: SIGTERM/SIGINT ask the worker to flush a final
/// full checkpoint (plus its statistics snapshots, which the checkpoint
/// carries) at the next batch boundary and exit; a relaunch resumes
/// exactly where the flush left off.
volatile std::sig_atomic_t g_worker_terminate = 0;

void worker_signal_handler(int) { g_worker_terminate = 1; }

/// The exit code of a signal-flushed worker: a classified fault (so the
/// launcher relaunches and resumes per its FaultPolicy), distinguishable
/// in diagnostics from a crash.
constexpr int kTerminatedExit = 40;

void check_not_aborted(net::Store& store) {
  // The abort marker goes through the same atomic publish protocol as
  // every other run artifact, so a poll never observes a half-written
  // reason.
  if (!store.published("abort")) return;
  std::string why;
  try {
    why = store.read_published("abort");
  } catch (...) {
  }
  CRITTER_CHECK(false, "run aborted by launcher: " + why);
}

/// Per-shard liveness blob: an atomically rewritten monotone counter.  The
/// launcher's stall detector only reads whether the content *changed*, so
/// pid + counter make every write (and every relaunch) distinct.  Beats are
/// best-effort — a worker must never die because its heartbeat write
/// failed.
struct Heartbeat {
  net::Store* store = nullptr;
  std::string key;
  std::uint64_t n = 0;
  void beat(int batches) {
    // Line 1 is the liveness counter plus the current execution phase (the
    // stall report quotes phase= and batches=); line 2 is a compact metrics
    // snapshot so the monitor can say *why* a shard is slow, not just that
    // it is.
    std::string s = "pid=" + std::to_string(static_cast<long>(::getpid())) +
                    " beat=" + std::to_string(n++) +
                    " batches=" + std::to_string(batches) +
                    " phase=" + obs::current_phase() + "\n" +
                    "metrics: " + obs::metrics_compact() + "\n";
    try {
      store->put(key, s);
    } catch (...) {
    }
  }
};

struct PeerWait {
  bool skipped = false;
  core::StatSnapshot snap;
  std::int64_t bytes = 0;  ///< mailbox payload size (wire accounting)
};

/// Per-rank dirty-tracking versions of a snapshot (DESIGN.md §13).  Equal
/// vectors mean "no table was reassigned or mutated since the last capture"
/// — every mutation path bumps, and the profiler store's counters only
/// grow, so equality is a sound pre-filter for skipping re-serialization.
std::vector<std::uint64_t> version_vector(const core::StatSnapshot& s) {
  std::vector<std::uint64_t> v;
  v.reserve(s.ranks.size());
  for (const core::KernelTable& t : s.ranks) v.push_back(t.version);
  return v;
}

/// One checkpoint-increment patch field: "" when the serialized state is
/// byte-identical, a wholesale payload when the previous record had none,
/// otherwise a mode-0 sparse patch shipping only dirty rank chunks.  Throws
/// when the transition cannot be patched (state reset to empty, rank-count
/// change); the caller falls back to a full checkpoint slot.
std::string make_patch(const std::string& base, const std::string& cur) {
  if (base == cur) return {};
  if (base.empty()) return cur;
  CRITTER_CHECK(!cur.empty(),
                "checkpoint increment: statistics state reset to empty");
  return core::encode_sparse_patch(base, cur);
}

/// Block until peer `p`'s round-`round` delta is available or provably
/// absent (the peer finished earlier).  Strict mode fails on a corrupt
/// delta or past the deadline (today's abort semantics); non-strict
/// returns skipped=true instead — a corrupt publish is permanent (the
/// rename is atomic), so it skips immediately rather than waiting out the
/// deadline.  Beats `hb` while waiting so a legitimately-waiting worker is
/// never stall-killed.
PeerWait await_peer_delta(net::Store& store, int p, int round,
                          double deadline_s, bool strict, Heartbeat& hb,
                          int batches) {
  const double deadline = monotonic_s() + deadline_s;
  int polls = 0;
  while (true) {
    if (store.published("exchange/" + delta_name(p, round))) {
      try {
        const std::string payload =
            store.read_published("exchange/" + delta_name(p, round));
        // Empty payload: the peer session has no shared statistics to
        // trade (isolated mode) — a published, verifiable nothing.
        if (payload.empty()) return {};
        return {false, core::StatSnapshot::from_string(payload),
                static_cast<std::int64_t>(payload.size())};
      } catch (...) {
        if (strict) throw;
        return {true, {}};
      }
    }
    if (store.published("exchange/" + done_name(p))) {
      const std::string marker =
          store.read_published("exchange/" + done_name(p));
      int rounds = -1;
      if (std::sscanf(marker.c_str(), "rounds=%d", &rounds) != 1) rounds = -1;
      CRITTER_CHECK(rounds >= 0,
                    "stale done marker from shard " + std::to_string(p));
      // The peer publishes every delta before its done marker, so a
      // visible marker with rounds <= round proves no delta is coming.
      if (rounds <= round) return {};
    }
    check_not_aborted(store);
    if (monotonic_s() >= deadline) {
      CRITTER_CHECK(!strict, "timed out waiting for shard " +
                                 std::to_string(p) + "'s round-" +
                                 std::to_string(round) + " exchange delta");
      return {true, {}};
    }
    if (++polls % 20 == 0) hb.beat(batches);
    sleep_ms(5);
  }
}

/// Non-blocking mailbox read for checkpoint replay: everything the
/// original session absorbed is still published (deltas are never
/// retracted), so an unreadable entry means the run directory is
/// inconsistent with the checkpoint — the caller falls back to a clean
/// restart.
core::StatSnapshot read_peer_now(net::Store& store, int p, int round) {
  if (store.published("exchange/" + delta_name(p, round))) {
    const std::string payload =
        store.read_published("exchange/" + delta_name(p, round));
    if (payload.empty()) return {};
    return core::StatSnapshot::from_string(payload);
  }
  if (store.published("exchange/" + done_name(p))) {
    const std::string marker = store.read_published("exchange/" + done_name(p));
    int rounds = -1;
    if (std::sscanf(marker.c_str(), "rounds=%d", &rounds) == 1 &&
        rounds >= 0 && rounds <= round)
      return {};
  }
  CRITTER_CHECK(false, "checkpoint replay: peer " + std::to_string(p) +
                           "'s round-" + std::to_string(round) +
                           " delta vanished from the mailbox");
  return {};
}

/// Rebuild a session at the checkpoint's cursor: import the statistics
/// wholesale, then re-ask/re-tell every recorded batch (asks are a pure
/// function of strategy state; tells grow no statistics) with historical
/// exchange deltas re-read from the mailbox and fed to the strategy only —
/// merge_state would double-count what the imported snapshot already
/// contains.  Throws if anything diverges; the caller then restarts clean.
std::unique_ptr<ShardSession> resume_session(
    const tune::Study& study, const tune::TuneOptions& opt,
    const ShardRange& range, const ShardCheckpoint& ck, bool exchanging,
    int every, int nshards, net::Store& store, Heartbeat& hb) {
  auto ss = std::make_unique<ShardSession>(study, opt);
  ss->session().import_state(ck.full);
  const auto skipped_at = [&ck](int round, int peer) {
    for (const auto& [r, p] : ck.skipped)
      if (r == round && p == peer) return true;
    return false;
  };
  int round = 0, in_round = 0, batches = 0;
  for (const ShardCheckpoint::ToldBatch& tb : ck.told) {
    ss->replay_tell(tb.positions, tb.outcomes);
    hb.beat(++batches);
    ++in_round;
    if (exchanging && in_round == every) {
      for (int p = 0; p < nshards; ++p) {
        if (p == range.index || skipped_at(round, p)) continue;
        const core::StatSnapshot peer = read_peer_now(store, p, round);
        if (!peer.empty()) ss->replay_exchange(peer);
      }
      ++round;
      in_round = 0;
    }
  }
  CRITTER_CHECK(round == ck.rounds && in_round == ck.in_round,
                "checkpoint replay diverged: round cursors do not match");
  std::vector<tune::ConfigTotals> totals(study.configs.size());
  for (int i = range.begin; i < range.end; ++i)
    totals[i] = ck.totals[i - range.begin];
  ss->session().restore_totals(std::move(totals));
  if (ck.has_exchange_state)
    ss->restore_exchange_state(ck.mark, ck.own, ck.rounds);
  return ss;
}

int worker_body(const WorkerArgs& args) {
  // Export trace events under the shard index, not the OS pid: the merged
  // fleet timeline then has one stable process row per shard no matter how
  // many relaunches the shard took.
  obs::trace_set_pid(args.shard);
  // The shared store: every cross-process artifact (manifest, snapshots,
  // exchange mailbox, abort marker, heartbeats, results) goes through it.
  // Worker-local state — checkpoints, logs, fault counters — stays on
  // local disk either way.
  std::unique_ptr<net::Store> store_owner;
  if (args.connect.empty()) {
    store_owner = std::make_unique<net::DirStore>(args.run_dir);
  } else {
    const net::Address addr = net::parse_address(args.connect);
    store_owner = std::make_unique<net::BlobClient>(
        addr.host, addr.port, args.connect_deadline_s, args.op_deadline_s);
  }
  net::Store& store = *store_owner;

  const Manifest m = parse_manifest(store.get("run.txt"));
  const tune::Study study = rebuild_study(m);
  tune::TuneOptions opt = rebuild_options(m);
  const ShardRange range = shard_range_of(m, args.shard);
  opt.config_begin = range.begin;
  opt.config_end = range.end;
  core::StatSnapshot warm;
  if (manifest_int(m, "warm_start") != 0) {
    const std::string payload = store.read_published("warm.snap");
    warm = core::StatSnapshot::from_string(payload);
    opt.warm_start = &warm;
  }
  core::StatSnapshot prior;
  if (manifest_int(m, "prior_snap") != 0) {
    const std::string payload = store.read_published("prior.snap");
    prior = core::StatSnapshot::from_string(payload);
    opt.prior = &prior;
  }
  const int nshards = static_cast<int>(manifest_int(m, "nshards"));
  const int every = static_cast<int>(manifest_int(m, "exchange_every"));
  const bool strict = manifest_int(m, "exchange_strict") != 0;
  const int ckpt_every = static_cast<int>(manifest_int(m, "checkpoint_every"));
  const double exchange_deadline_s = manifest_double(m, "exchange_deadline_s");
  const std::string shard_dir =
      args.run_dir + "/shard" + std::to_string(args.shard);
  const std::string shard_key = "shard" + std::to_string(args.shard);
  const FaultSpec fault = shard_fault(args.shard, m);
  const bool exchanging = every > 0 && nshards > 1;
  // Mailbox GC (DESIGN.md §13): the launcher grants it only for runs that
  // can never resume-and-replay (no checkpoints, no retries) — a replaying
  // worker re-reads historical deltas, so GC would tear its history out
  // from under it.  Absent key (older manifest) means off.
  const auto git = m.find("gc_exchange");
  const bool gc = exchanging && git != m.end() && git->second == "1";

  Heartbeat hb{&store, shard_key + "/heartbeat"};
  if (fault.mode == "crash-on-start" && fault_fires(shard_dir, fault))
    ::_exit(41);
  obs::set_phase("resume");
  hb.beat(0);

  // --- resume from the last valid checkpoint, if any ---
  std::unique_ptr<ShardSession> ss;
  std::vector<ShardCheckpoint::ToldBatch> told;
  std::vector<std::pair<int, int>> skipped;
  int batches = 0, round = 0, in_round = 0, skips = 0, resumed_batches = 0;
  std::int64_t ckpt_seq = 0;
  // Mailbox traffic this attempt moved: published delta payloads plus live
  // peer reads (replay re-reads during resume are history, not new wire).
  std::int64_t exchange_bytes = 0;
  // Wall seconds this attempt spent in exchange rounds and checkpoint
  // writes — the worker's share of TuneResult::phases (ask/evaluate/tell
  // come from the Tuner itself).
  double exchange_s = 0.0, checkpoint_s = 0.0;
  int gc_next = 0;  ///< first own-delta round not yet retired by GC
  // Incremental-checkpoint bookkeeping: the base full checkpoint the log
  // extends, the slot the *next* full should use (always the one not
  // holding the current base), and the state as of the previous record so
  // increments can carry byte patches (serialized payloads) and suffixes
  // (told, skipped).  The version vectors pre-filter mark/own work: those
  // snapshots only move at exchange rounds, so most checkpoints skip their
  // serialization outright.
  std::int64_t ckpt_base_seq = 0;
  std::string next_full_slot = "ckpt_a.bin";
  std::string prev_full_bytes, prev_mark_bytes, prev_own_bytes;
  std::vector<std::uint64_t> prev_mark_vers, prev_own_vers;
  std::size_t prev_told = 0, prev_skipped = 0;
  const std::string ckpt_log = shard_dir + "/ckpt_log.bin";
  // Probe for resumable checkpoints regardless of ckpt_every: a signal-
  // flushed worker leaves a final checkpoint behind even when periodic
  // checkpointing is off, and its relaunch must pick it up.
  {
    ShardCheckpoint ck;
    std::string base_slot;
    if (load_latest_checkpoint(shard_dir, study, range, &ck, &ckpt_base_seq,
                               &base_slot)) {
      try {
        ss = resume_session(study, opt, range, ck, exchanging, every, nshards,
                            store, hb);
        batches = ck.batches;
        round = ck.rounds;
        in_round = ck.in_round;
        skips = ck.exchange_skips;
        skipped = ck.skipped;
        resumed_batches = ck.batches;
        ckpt_seq = ck.seq;
        next_full_slot =
            base_slot == "ckpt_a.bin" ? "ckpt_b.bin" : "ckpt_a.bin";
        prev_full_bytes = std::move(ck.full_bytes);
        prev_mark_bytes = std::move(ck.mark_bytes);
        prev_own_bytes = std::move(ck.own_bytes);
        prev_mark_vers = version_vector(ss->mark());
        prev_own_vers = version_vector(ss->own_stats());
        told = std::move(ck.told);
        prev_told = told.size();
        prev_skipped = skipped.size();
      } catch (const std::exception& e) {
        obs::log_warn("shard %d: checkpoint resume failed (%s) — restarting "
                      "clean",
                      args.shard, e.what());
        ss.reset();
        told.clear();
        skipped.clear();
        batches = round = in_round = skips = resumed_batches = 0;
        ckpt_seq = 0;
        ckpt_base_seq = 0;
        next_full_slot = "ckpt_a.bin";
        prev_full_bytes.clear();
        prev_mark_bytes.clear();
        prev_own_bytes.clear();
        prev_mark_vers.clear();
        prev_own_vers.clear();
        prev_told = prev_skipped = 0;
      }
    }
  }
  if (!ss) {
    discard_checkpoints(shard_dir);
    ss = std::make_unique<ShardSession>(study, opt);
  }

  const auto publish_delta = [&](int round_no) {
    const core::StatSnapshot delta = ss->take_delta();
    std::string payload;
    // Mode-1 sparse encoding: ranks the round left untouched collapse to an
    // entry in the epoch array.  Readers auto-expand via from_string to the
    // exact full payload, so the fold stays bit-identical.
    if (!delta.empty()) payload = core::encode_sparse_delta(delta);
    if (fault.mode == "slow-exchange" && round_no == 0 &&
        fault_fires(shard_dir, fault)) {
      // A slow peer, not a dead one: keep beating while stalling so the
      // launcher sees a live worker — peers decide via their own exchange
      // deadline.
      const double until = monotonic_s() + (fault.arg > 0 ? fault.arg : 1000) /
                                               1000.0;
      while (monotonic_s() < until) {
        hb.beat(batches);
        sleep_ms(10);
      }
    }
    const int corrupt_round = fault.arg > 0 ? static_cast<int>(fault.arg) : 0;
    if (fault.mode == "corrupt-delta" && round_no == corrupt_round &&
        fault_fires(shard_dir, fault)) {
      // Corrupt the mailbox copy only (own_ already folded the real delta):
      // the publish itself is well-formed but the snapshot bytes inside are
      // flipped, so every reader deterministically rejects the blob —
      // corruption at the source, which the manifest cannot catch.
      std::string bad = payload.empty() ? std::string("x") : payload;
      bad[0] = static_cast<char>(bad[0] ^ 0x5a);
      store.publish("exchange/" + delta_name(range.index, round_no), bad);
      exchange_bytes += static_cast<std::int64_t>(bad.size());
      return;
    }
    store.publish("exchange/" + delta_name(range.index, round_no), payload);
    exchange_bytes += static_cast<std::int64_t>(payload.size());
  };

  // A full checkpoint every kIncrementsPerFull records bounds both the log
  // length a resume replays and the window a lost log can cost; in between,
  // each checkpoint appends one constant-sized increment.
  constexpr std::int64_t kIncrementsPerFull = 16;
  int checkpoints_taken = 0;
  const auto take_checkpoint_body = [&](bool force_full) {
    ++ckpt_seq;
    ++checkpoints_taken;
    const int ordinal = fault.arg > 0 ? static_cast<int>(fault.arg) : 2;
    // Serialize the session state once; what ships is decided by byte
    // comparison against the previous record's payload (DESIGN.md §13).
    core::StatSnapshot cur_full = ss->session().export_state();
    std::string cur_full_bytes;
    if (!cur_full.empty()) cur_full_bytes = cur_full.to_string();
    // mark/own only move at exchange rounds: when their per-rank version
    // vectors are unchanged the bytes provably are too, and both the
    // serialization and the patch are skipped.
    std::vector<std::uint64_t> cur_mark_vers, cur_own_vers;
    std::string cur_mark_bytes, cur_own_bytes;
    bool mark_same = false, own_same = false;
    if (exchanging) {
      cur_mark_vers = version_vector(ss->mark());
      cur_own_vers = version_vector(ss->own_stats());
      mark_same = !prev_mark_vers.empty() && cur_mark_vers == prev_mark_vers;
      own_same = !prev_own_vers.empty() && cur_own_vers == prev_own_vers;
      if (mark_same)
        cur_mark_bytes = prev_mark_bytes;
      else if (!ss->mark().empty())
        cur_mark_bytes = ss->mark().to_string();
      if (own_same)
        cur_own_bytes = prev_own_bytes;
      else if (!ss->own_stats().empty())
        cur_own_bytes = ss->own_stats().to_string();
    }
    if (!force_full && ckpt_base_seq > 0 &&
        ckpt_seq - ckpt_base_seq <= kIncrementsPerFull) {
      CheckpointIncrement inc;
      bool delta_ok = true;
      try {
        // Byte patches against the previous record's payloads.  make_patch
        // throws if the state did not evolve patchably (e.g. a reset); the
        // record then falls back to a full checkpoint.
        inc.full_patch = make_patch(prev_full_bytes, cur_full_bytes);
        if (exchanging) {
          if (!mark_same)
            inc.mark_patch = make_patch(prev_mark_bytes, cur_mark_bytes);
          if (!own_same)
            inc.own_patch = make_patch(prev_own_bytes, cur_own_bytes);
        }
      } catch (const std::exception&) {
        delta_ok = false;
      }
      if (delta_ok) {
        inc.base_seq = ckpt_base_seq;
        inc.seq = ckpt_seq;
        inc.batches = batches;
        inc.rounds = round;
        inc.in_round = in_round;
        inc.exchange_skips = skips;
        inc.new_skipped.assign(skipped.begin() + prev_skipped, skipped.end());
        inc.new_told.assign(told.begin() + prev_told, told.end());
        std::vector<int> dirty;
        for (const ShardCheckpoint::ToldBatch& tb : inc.new_told)
          for (int pos : tb.positions) dirty.push_back(pos - range.begin);
        std::sort(dirty.begin(), dirty.end());
        dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
        for (int idx : dirty)
          inc.dirty_totals.emplace_back(
              idx, ss->session().totals()[range.begin + idx]);
        inc.has_exchange_state = exchanging;
        const std::string rec = frame_log_record(serialize_increment(inc));
        if (fault.mode == "kill-mid-checkpoint" &&
            checkpoints_taken == ordinal && fault_fires(shard_dir, fault)) {
          // The kill-9 torn point for an increment: half the framed record
          // reaches the log — the scan rejects the tail, the prefix and the
          // base slot stay good.
          append_file(ckpt_log, rec.substr(0, rec.size() / 2));
          ::kill(::getpid(), SIGKILL);
        }
        if (fault.mode == "corrupt-checkpoint" &&
            checkpoints_taken == ordinal && fault_fires(shard_dir, fault)) {
          std::string bad = rec;
          bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x5a);
          append_file(ckpt_log, bad);
          ::_exit(43);
        }
        append_file(ckpt_log, rec);
        prev_full_bytes = std::move(cur_full_bytes);
        if (exchanging) {
          prev_mark_bytes = std::move(cur_mark_bytes);
          prev_own_bytes = std::move(cur_own_bytes);
          prev_mark_vers = std::move(cur_mark_vers);
          prev_own_vers = std::move(cur_own_vers);
        }
        prev_told = told.size();
        prev_skipped = skipped.size();
        return;
      }
    }
    ShardCheckpoint c;
    c.seq = ckpt_seq;
    c.batches = batches;
    c.rounds = round;
    c.in_round = in_round;
    c.exchange_skips = skips;
    c.skipped = skipped;
    c.told = told;
    c.totals.assign(ss->session().totals().begin() + range.begin,
                    ss->session().totals().begin() + range.end);
    c.full = std::move(cur_full);
    c.full_bytes = std::move(cur_full_bytes);
    if (exchanging) {
      // The byte payloads alone feed serialize_checkpoint (written
      // verbatim); the decoded mark/own snapshots are not needed here.
      c.has_exchange_state = true;
      c.mark_bytes = std::move(cur_mark_bytes);
      c.own_bytes = std::move(cur_own_bytes);
    }
    const std::string payload = serialize_checkpoint(c);
    const std::string slot = next_full_slot;
    if (fault.mode == "kill-mid-checkpoint" && checkpoints_taken == ordinal &&
        fault_fires(shard_dir, fault)) {
      // The kill-9 torn point: payload renamed into place, manifest never
      // written — the slot's previous manifest (if any) now mismatches.
      write_file_atomic(shard_dir + "/" + slot, payload);
      ::kill(::getpid(), SIGKILL);
    }
    publish_file(shard_dir, slot, payload);
    if (fault.mode == "corrupt-checkpoint" && checkpoints_taken == ordinal &&
        fault_fires(shard_dir, fault)) {
      std::string bad = payload;
      bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x5a);
      write_file(shard_dir + "/" + slot, bad);
      ::_exit(43);
    }
    // Only after the new base is fully published: drop the log extending
    // the previous base (a crash in between resumes from whichever base
    // survives, each with a consistent log view).
    ::remove(ckpt_log.c_str());
    ckpt_base_seq = ckpt_seq;
    next_full_slot =
        slot == "ckpt_a.bin" ? std::string("ckpt_b.bin") : "ckpt_a.bin";
    prev_full_bytes = std::move(c.full_bytes);
    prev_mark_bytes = std::move(c.mark_bytes);
    prev_own_bytes = std::move(c.own_bytes);
    prev_mark_vers = std::move(cur_mark_vers);
    prev_own_vers = std::move(cur_own_vers);
    prev_told = told.size();
    prev_skipped = skipped.size();
  };
  const auto take_checkpoint = [&](bool force_full = false) {
    obs::set_phase("checkpoint");
    const double t0 = monotonic_s();
    {
      obs::ScopedSpan span("dist.checkpoint", "dist", "seq",
                           static_cast<std::uint64_t>(ckpt_seq + 1));
      take_checkpoint_body(force_full);
    }
    const double dt = monotonic_s() - t0;
    checkpoint_s += dt;
    obs::histogram("dist.checkpoint.write_seconds").observe(dt);
    obs::set_phase("evaluate");
  };

  const long fault_batch = fault.arg > 0 ? fault.arg : 1;
  int attempt_batches = 0;
  obs::set_phase("evaluate");
  while (true) {
    if (g_worker_terminate) {
      // Graceful shutdown: flush a final full checkpoint (state snapshot
      // included) so a relaunch resumes exactly here, then exit with the
      // classified termination code.
      take_checkpoint(/*force_full=*/true);
      try {
        write_file(shard_dir + "/error.txt",
                   "terminated by signal after " + std::to_string(batches) +
                       " batches — final checkpoint flushed\n");
      } catch (...) {
      }
      return kTerminatedExit;
    }
    check_not_aborted(store);
    std::vector<int> batch;
    std::vector<tune::ConfigOutcome> outcomes;
    bool stepped;
    {
      const double t0 = monotonic_s();
      obs::ScopedSpan span("dist.batch", "dist", "batch",
                           static_cast<std::uint64_t>(batches));
      stepped = ss->step_logged(&batch, &outcomes);
      if (stepped) {
        obs::counter("dist.batches").add();
        obs::histogram("dist.batch_seconds").observe(monotonic_s() - t0);
      }
    }
    if (!stepped) break;
    told.push_back({batch, std::move(outcomes)});
    ++batches;
    ++attempt_batches;
    ++in_round;
    hb.beat(batches);
    if (fault.mode == "crash-after-batch" && attempt_batches == fault_batch &&
        fault_fires(shard_dir, fault))
      ::_exit(42);
    if (fault.mode == "hang-after-batch" && attempt_batches == fault_batch &&
        fault_fires(shard_dir, fault))
      while (true) sleep_ms(1000);  // a genuine hang: no beats, no exit
    if (exchanging && in_round == every) {
      obs::set_phase("exchange");
      const double round_t0 = monotonic_s();
      const std::int64_t round_bytes0 = exchange_bytes;
      obs::ScopedSpan round_span("dist.exchange_round", "dist", "round",
                                 static_cast<std::uint64_t>(round));
      // Publish this shard's round delta, then fold in every peer's, in
      // ascending shard order (the determinism contract).
      publish_delta(round);
      // Flow id (shard << 16) | round: the publish starts the flow, every
      // peer that absorbs this round's delta finishes it — the merged
      // fleet timeline draws the exchange as arrows between process rows.
      obs::trace_flow(
          's', "exchange", "dist",
          (static_cast<std::uint64_t>(range.index) << 16) |
              static_cast<std::uint64_t>(round));
      for (int p = 0; p < nshards; ++p) {
        if (p == range.index) continue;
        PeerWait peer = await_peer_delta(store, p, round,
                                       exchange_deadline_s, strict, hb,
                                       batches);
        if (peer.skipped) {
          skipped.emplace_back(round, p);
          ++skips;
          obs::counter("dist.exchange.skips").add();
        } else if (!peer.snap.empty()) {
          obs::trace_flow('f', "exchange", "dist",
                          (static_cast<std::uint64_t>(p) << 16) |
                              static_cast<std::uint64_t>(round));
          ss->absorb(peer.snap);
        }
        exchange_bytes += peer.bytes;
      }
      ss->refresh_mark();
      obs::counter("dist.exchange.bytes")
          .add(static_cast<std::uint64_t>(exchange_bytes - round_bytes0));
      const double round_dt = monotonic_s() - round_t0;
      exchange_s += round_dt;
      obs::histogram("dist.exchange.round_seconds").observe(round_dt);
      obs::set_phase("evaluate");
      ++round;
      in_round = 0;
      if (gc) {
        // Advertise the fold we just completed, then retire own deltas
        // every peer has provably consumed (their progress counters are
        // past that round).  An unreadable or absent peer marker counts
        // as zero — GC waits rather than guesses.
        store.put("exchange/" + progress_name(range.index),
                  "rounds=" + std::to_string(round) + "\n");
        int min_rounds = round;
        for (int p = 0; p < nshards && min_rounds > gc_next; ++p) {
          if (p == range.index) continue;
          int rounds = 0;
          try {
            const std::string marker =
                store.get("exchange/" + progress_name(p));
            if (std::sscanf(marker.c_str(), "rounds=%d", &rounds) != 1)
              rounds = 0;
          } catch (...) {
            rounds = 0;
          }
          min_rounds = std::min(min_rounds, rounds);
        }
        for (; gc_next < min_rounds; ++gc_next)
          store.remove("exchange/" + delta_name(range.index, gc_next));
      }
    }
    if (ckpt_every > 0 && batches % ckpt_every == 0) take_checkpoint();
  }
  if (exchanging) {
    if (in_round > 0) {
      // Trailing partial round: publish so peers still sweeping see it;
      // a finished shard reads no more peers.
      publish_delta(round);
      obs::trace_flow(
          's', "exchange", "dist",
          (static_cast<std::uint64_t>(range.index) << 16) |
              static_cast<std::uint64_t>(round));
      ++round;
    }
    store.publish("exchange/" + done_name(range.index),
                  "rounds=" + std::to_string(round) + "\n");
  }

  // Exchange-off results slice the plain session result (stats = the
  // session's final snapshot, the legacy run_study semantics); exchange-on
  // results carry the own-contribution snapshot so the fold counts every
  // sample once.
  ShardResult result = exchanging
                           ? ss->result(range)
                           : shard_result_from(ss->session().result(), range);
  result.exchange_skips = skips;
  result.checkpoints = checkpoints_taken;
  result.resumed_batches = resumed_batches;
  result.exchange_bytes = exchange_bytes;
  // ask/evaluate/tell arrived via the Tuner's own phase clock; the worker
  // loop owns the exchange and checkpoint time.
  result.phases.exchange = exchange_s;
  result.phases.checkpoint = checkpoint_s;

  obs::set_phase("publish");
  if (fault.mode == "skip-result") return 0;
  // Flush the per-shard trace file *before* publishing the result: the
  // launcher merges shard traces as soon as every result is in hand, so
  // the publish is the ordering barrier that makes the file visible.
  obs::trace_flush_env();
  store.publish(shard_key + "/result.bin", serialize_result(result));
  return 0;
}

// ---------------------------------------------------------------------------
// Launcher side
// ---------------------------------------------------------------------------

std::string self_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  CRITTER_CHECK(n > 0, "cannot resolve /proc/self/exe for worker re-exec");
  return std::string(buf, static_cast<std::size_t>(n));
}

pid_t spawn_worker(const std::string& binary, const std::string& run_dir,
                   int shard, const std::string& connect,
                   const FaultPolicy& fault) {
  // Re-point the worker's tracing at a per-shard file; the launcher merges
  // them into one fleet timeline after the run.  The env assignment is
  // built before fork so the child only calls putenv — no allocation
  // between fork and execv (the launcher may be running server threads).
  std::string trace_env;
  if (obs::trace_enabled())
    trace_env = "CRITTER_TRACE=" + run_dir + "/shard" +
                std::to_string(shard) + "/trace.json";
  const pid_t pid = ::fork();
  CRITTER_CHECK(pid >= 0, "fork failed for shard worker");
  if (pid > 0) return pid;
  if (!trace_env.empty()) ::putenv(const_cast<char*>(trace_env.data()));
  // Child: capture output, then become the worker.
  const std::string log =
      run_dir + "/shard" + std::to_string(shard) + "/log.txt";
  const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  const std::string dir_arg = "--shard-dir=" + run_dir;
  const std::string idx_arg = "--shard-index=" + std::to_string(shard);
  std::vector<const char*> argv = {binary.c_str(), "--shard-worker",
                                   dir_arg.c_str(), idx_arg.c_str()};
  // Socket transport: point the worker at the launcher's blob server, with
  // per-op deadlines mapped from the FaultPolicy phases.
  std::string conn_arg, cdl_arg, odl_arg;
  if (!connect.empty()) {
    conn_arg = "--connect=" + connect;
    cdl_arg = "--connect-deadline=" + hex_double(fault.startup_deadline_s);
    odl_arg = "--op-deadline=" + hex_double(fault.progress_deadline_s);
    argv.push_back(conn_arg.c_str());
    argv.push_back(cdl_arg.c_str());
    argv.push_back(odl_arg.c_str());
  }
  argv.push_back(nullptr);
  ::execv(binary.c_str(), const_cast<char* const*>(argv.data()));
  obs::log_error("execv %s failed: %s", binary.c_str(), std::strerror(errno));
  ::_exit(127);
}

std::string describe_exit(int status) {
  if (WIFEXITED(status))
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return std::string("killed by signal ") + std::to_string(WTERMSIG(status));
  return "ended abnormally";
}

std::string shard_diagnosis(const std::string& run_dir, int shard) {
  const std::string base = run_dir + "/shard" + std::to_string(shard);
  for (const char* name : {"/error.txt", "/log.txt"}) {
    if (!file_exists(base + name)) continue;
    std::string text;
    try {
      text = read_file(base + name);
    } catch (...) {
      continue;
    }
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
      text.pop_back();
    if (!text.empty()) return text;
  }
  return "(no diagnostics recorded)";
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", s);
  return buf;
}

/// " (last phase=evaluate, batch 12)" recovered from a shard's final
/// heartbeat content, so a stall report says what the worker was doing
/// when it went quiet; empty when no heartbeat was ever observed (or it
/// predates the phase field).
std::string describe_last_beat(const std::string& beat) {
  const char* batches_at = std::strstr(beat.c_str(), "batches=");
  const char* phase_at = std::strstr(beat.c_str(), "phase=");
  if (batches_at == nullptr && phase_at == nullptr) return "";
  char phase[64] = {0};
  if (phase_at != nullptr) std::sscanf(phase_at + 6, "%63s", phase);
  const int batches = batches_at != nullptr ? std::atoi(batches_at + 8) : 0;
  std::string out = " (last phase=";
  out += phase[0] != '\0' ? phase : "?";
  out += ", batch " + std::to_string(batches) + ")";
  return out;
}

struct Child {
  ShardRange range;
  pid_t pid = -1;
  bool running = false;
  int attempts = 0;           ///< launches so far
  double launched_at = 0.0;
  std::string beat;           ///< last heartbeat content observed
  double beat_at = 0.0;
  bool beat_seen = false;
  double relaunch_at = -1.0;  ///< >= 0: waiting out a backoff
  bool done = false;          ///< usable result parsed
  bool degraded = false;      ///< abandoned to the launcher's fallback
  std::string last_failure;
  ShardResult result;
};

/// Spawn, supervise, and collect the whole fleet: classify every fault
/// (exit code vs. stalled heartbeat vs. unusable result), relaunch with
/// exponential backoff while retries remain, and on exhaustion either
/// abort the fleet (publishing the abort marker so waiting peers bail) or
/// degrade the shard to an in-launcher completion.
std::vector<ShardResult> run_fleet(const tune::Study& study,
                                   const tune::TuneOptions& opt,
                                   const std::vector<ShardRange>& shards,
                                   const ExchangePolicy& exchange,
                                   const FaultPolicy& fault,
                                   const std::string& binary,
                                   const std::string& run_dir,
                                   net::Store& store,
                                   const std::string& connect) {
  const bool exchanging = exchange.every > 0 && shards.size() > 1;
  std::vector<Child> fleet(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) fleet[i].range = shards[i];

  const auto shard_dir_of = [&](const Child& c) {
    return run_dir + "/shard" + std::to_string(c.range.index);
  };
  const auto shard_key_of = [&](const Child& c) {
    return "shard" + std::to_string(c.range.index);
  };
  const auto spawn = [&](Child& c) {
    // A stale error file from a previous attempt must not masquerade as
    // this attempt's diagnosis.
    ::remove((shard_dir_of(c) + "/error.txt").c_str());
    c.pid = spawn_worker(binary, run_dir, c.range.index, connect, fault);
    c.running = true;
    ++c.attempts;
    c.launched_at = monotonic_s();
    c.beat_seen = false;
    c.relaunch_at = -1.0;
  };
  const auto poll_exits = [&]() {
    for (Child& c : fleet) {
      if (!c.running) continue;
      int status = 0;
      if (::waitpid(c.pid, &status, WNOHANG) == c.pid) c.running = false;
    }
  };
  const auto any_running = [&]() {
    for (const Child& c : fleet)
      if (c.running) return true;
    return false;
  };
  const auto abort_fleet = [&](const std::string& failure) {
    store.publish("abort", failure + "\n");
    const double grace_deadline = monotonic_s() + 10.0;
    while (any_running() && monotonic_s() < grace_deadline) {
      poll_exits();
      sleep_ms(10);
    }
    for (Child& c : fleet)
      if (c.running) ::kill(c.pid, SIGKILL);
    while (any_running()) {
      poll_exits();
      sleep_ms(5);
    }
    CRITTER_CHECK(false, failure + " — run directory kept at " + run_dir);
  };
  const auto try_finish = [&](Child& c) {
    if (!store.published(shard_key_of(c) + "/result.bin")) return false;
    try {
      c.result =
          parse_result(store.read_published(shard_key_of(c) + "/result.bin"),
                       study, c.range);
    } catch (const std::exception&) {
      return false;
    }
    c.done = true;
    return true;
  };
  const auto fault_out = [&](Child& c, const std::string& reason) {
    c.last_failure = reason;
    if (c.attempts <= fault.max_retries) {
      double backoff = fault.backoff_initial_s;
      for (int i = 1; i < c.attempts; ++i) backoff *= 2.0;
      const double wait = std::min(backoff, fault.backoff_max_s);
      c.relaunch_at = monotonic_s() + wait;
      obs::counter("dist.retries").add();
      obs::histogram("dist.backoff_wait_seconds").observe(wait);
      obs::log_info("shard %d faulted (%s) — relaunch in %gs",
                    c.range.index, reason.c_str(), wait);
      return;
    }
    if (fault.on_exhausted == FaultPolicy::OnExhausted::Degrade) {
      c.degraded = true;
      // Tell waiting peers no more deltas are coming from this shard, so
      // non-strict rounds skip it immediately instead of waiting out the
      // exchange deadline every round.
      if (exchanging &&
          !store.published("exchange/" + done_name(c.range.index)))
        store.publish("exchange/" + done_name(c.range.index), "rounds=0\n");
      return;
    }
    std::string failure = "shard worker " + std::to_string(c.range.index) +
                          " (pid " + std::to_string(c.pid) + ") " + reason;
    if (c.attempts > 1)
      failure += " (after " + std::to_string(c.attempts - 1) + " relaunch" +
                 (c.attempts == 2 ? "" : "es") + ")";
    abort_fleet(failure);
  };

  for (Child& c : fleet) spawn(c);
  while (true) {
    bool all_settled = true;
    for (const Child& c : fleet)
      all_settled = all_settled && (c.done || c.degraded);
    if (all_settled) break;
    for (Child& c : fleet) {
      if (c.done || c.degraded) continue;
      if (!c.running) {
        if (c.relaunch_at >= 0.0 && monotonic_s() >= c.relaunch_at) spawn(c);
        continue;
      }
      int status = 0;
      if (::waitpid(c.pid, &status, WNOHANG) == c.pid) {
        c.running = false;
        // A published, parseable result settles the shard no matter how
        // the process went out (it may have crashed after publishing).
        if (try_finish(c)) continue;
        if (status == 0)
          fault_out(c,
                    "exited cleanly without publishing a usable shard "
                    "result");
        else
          fault_out(c, describe_exit(status) + ": " +
                           shard_diagnosis(run_dir, c.range.index));
        continue;
      }
      // Progress-based stall detection: the startup deadline bounds launch
      // → first heartbeat, the progress deadline bounds the gap between
      // heartbeat advances.
      std::string beat;
      try {
        if (store.exists(shard_key_of(c) + "/heartbeat"))
          beat = store.get(shard_key_of(c) + "/heartbeat");
      } catch (...) {
      }
      if (!beat.empty() && beat != c.beat) {
        c.beat = beat;
        c.beat_at = monotonic_s();
        c.beat_seen = true;
        continue;
      }
      const double ref = c.beat_seen ? c.beat_at : c.launched_at;
      const double limit =
          c.beat_seen ? fault.progress_deadline_s : fault.startup_deadline_s;
      if (monotonic_s() - ref <= limit) continue;
      ::kill(c.pid, SIGKILL);
      ::waitpid(c.pid, &status, 0);
      c.running = false;
      if (try_finish(c)) continue;  // hung after publishing: still usable
      fault_out(c, "stalled: no heartbeat progress within " +
                       format_seconds(limit) + "s" +
                       describe_last_beat(c.beat));
    }
    sleep_ms(5);
  }

  // Degraded completion: the launcher sweeps the abandoned ranges itself,
  // in shard order.  Bit-identical with exchange off; with exchange on the
  // fallback session exchanges nothing (the documented §10 relaxation).
  for (Child& c : fleet) {
    if (!c.degraded) continue;
    tune::TuneOptions sopt = opt;
    sopt.config_begin = c.range.begin;
    sopt.config_end = c.range.end;
    c.result = shard_result_from(tune::run_study(study, sopt), c.range);
  }

  std::vector<ShardResult> results;
  results.reserve(fleet.size());
  for (Child& c : fleet) {
    c.result.retries = c.attempts - 1;
    c.result.recovered = c.done && c.attempts > 1;
    c.result.degraded = c.degraded;
    c.result.failure = c.last_failure;
    results.push_back(std::move(c.result));
  }
  return results;
}

}  // namespace

std::vector<ShardResult> SubprocessExecutor::run(
    const tune::Study& study, const tune::TuneOptions& opt,
    const std::vector<ShardRange>& shards, const ExchangePolicy& exchange) {
  CRITTER_CHECK(!study.workload.empty(),
                "subprocess executor requires a registry workload "
                "(Study::workload) so shard workers can rebuild the study; "
                "ad-hoc studies can only run in-process");
  CRITTER_CHECK(
      !(opts_.fault.on_exhausted == FaultPolicy::OnExhausted::Degrade &&
        exchange.every > 0 && shards.size() > 1 && exchange.strict),
      "degraded shard completion with mid-sweep exchange requires "
      "non-strict mode (ExchangePolicy::strict = false) — a degraded "
      "shard stops exchanging, which strict peers treat as a fault");
  const bool paper_scale = detect_paper_scale(study);
  const std::string binary =
      opts_.worker_binary.empty() ? self_binary() : opts_.worker_binary;

  const bool temp_dir = opts_.run_dir.empty();
  const std::string run_dir =
      temp_dir ? make_temp_dir("critter-run-") : opts_.run_dir;
  if (!temp_dir) {
    make_dir(run_dir);
    CRITTER_CHECK(!file_exists(run_dir + "/run.txt"),
                  "run directory " + run_dir +
                      " already holds a run manifest (stale run "
                      "directory?) — point --run-dir at a fresh one");
  }
  make_dir(run_dir + "/exchange");
  for (const ShardRange& s : shards)
    make_dir(run_dir + "/shard" + std::to_string(s.index));

  // The shared store the fleet coordinates through.  File transport: the
  // run directory itself (byte-identical to the historical layout).
  // Socket transport: an in-memory store served over TCP from this
  // process; workers get --connect and never touch the shared files (the
  // run directory still holds their local checkpoints and logs).
  std::unique_ptr<net::Store> store;
  std::unique_ptr<net::BlobServer> server;
  std::string connect;
  if (opts_.transport == "socket") {
    store = std::make_unique<net::MemStore>();
    server = std::make_unique<net::BlobServer>(*store);
    connect = "127.0.0.1:" + std::to_string(server->port());
  } else {
    CRITTER_CHECK(opts_.transport.empty() || opts_.transport == "dir",
                  "unknown subprocess transport '" + opts_.transport +
                      "' (known: dir, socket)");
    store = std::make_unique<net::DirStore>(run_dir);
  }

  if (opt.warm_start != nullptr && !opt.warm_start->empty())
    store->publish("warm.snap", opt.warm_start->to_string());
  if (opt.prior != nullptr && !opt.prior->empty())
    store->publish("prior.snap", opt.prior->to_string());
  const bool warm = opt.warm_start != nullptr && !opt.warm_start->empty();
  store->put("run.txt",
             build_run_manifest(study, paper_scale, opt, shards, exchange,
                                opts_.fault, opts_.fault_injection, warm));

  const std::vector<ShardResult> results =
      run_fleet(study, opt, shards, exchange, opts_.fault, binary, run_dir,
                *store, connect);

  // Fleet timeline (DESIGN.md §14): each worker wrote a per-shard trace
  // (pid = shard index) before publishing its result; merge them with the
  // launcher's own events into the CRITTER_TRACE file.  Best-effort —
  // shards that died before flushing simply have no rows.
  if (const std::string trace_path = obs::trace_env_path();
      !trace_path.empty()) {
    std::vector<std::string> docs;
    std::vector<std::pair<int, std::string>> names;
    for (const ShardRange& s : shards) {
      const std::string p =
          run_dir + "/shard" + std::to_string(s.index) + "/trace.json";
      if (!file_exists(p)) continue;
      try {
        docs.push_back(read_file(p));
        names.emplace_back(s.index, "shard " + std::to_string(s.index));
      } catch (...) {
      }
    }
    docs.push_back(obs::trace_export_chrome());
    names.emplace_back(static_cast<int>(::getpid()), "launcher");
    try {
      write_file(trace_path, obs::trace_merge_chrome(docs, names));
    } catch (const std::exception& e) {
      obs::log_warn("fleet trace merge to %s failed: %s", trace_path.c_str(),
                    e.what());
    }
  }

  // End-of-run mailbox sweep: every result is in hand, so no worker will
  // read another delta — retire whatever the in-run GC couldn't (trailing
  // rounds, early-finisher tails) plus the progress markers.  Idempotent;
  // done markers stay (they are the mailbox's historical record).
  if (exchange.every > 0 && shards.size() > 1) {
    for (const ShardResult& r : results) {
      for (int j = 0; j < r.exchange_rounds; ++j)
        store->remove("exchange/" + delta_name(r.range.index, j));
      store->remove("exchange/" + progress_name(r.range.index));
    }
  }

  if (server) server->stop();
  if (temp_dir && !opts_.keep_run_dir) remove_dir_tree(run_dir);
  return results;
}

bool is_shard_worker(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--shard-worker") == 0) return true;
  return false;
}

int shard_worker_main(int argc, char** argv) {
  // Graceful shutdown: SIGTERM/SIGINT set a flag the sweep loop checks at
  // each batch boundary — the worker flushes a final full checkpoint and
  // exits instead of dying mid-batch.
  struct sigaction sa {};
  sa.sa_handler = worker_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  WorkerArgs args;
  try {
    args = parse_worker_args(argc, argv);
  } catch (const std::exception& e) {
    obs::log_error("%s", e.what());
    return 2;
  }
  try {
    return worker_body(args);
  } catch (const std::exception& e) {
    try {
      write_file(args.run_dir + "/shard" + std::to_string(args.shard) +
                     "/error.txt",
                 std::string(e.what()) + "\n");
    } catch (...) {
    }
    obs::log_error("shard worker %d failed: %s", args.shard, e.what());
    return 1;
  }
}

}  // namespace critter::dist
