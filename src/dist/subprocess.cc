// SubprocessExecutor and the --shard-worker entry point: one OS process
// per shard, coordinated exclusively through run-directory files
// (dist/protocol.hpp).  Layout:
//
//   <run_dir>/run.txt            run manifest: study identity (workload,
//                                scale, configuration indices), tuning
//                                options, shard ranges, exchange interval
//   <run_dir>/warm.snap[.ok]     optional warm-start snapshot
//   <run_dir>/shard<k>/          per-shard: result.bin[.ok] (published
//                                ShardResult), error.txt, log.txt
//   <run_dir>/exchange/          mailbox: s<k>_r<j>.snap[.ok] round deltas,
//                                s<k>.done final round-count markers
//   <run_dir>/abort              written by the launcher on fleet failure;
//                                waiting workers poll it and bail out
//
// The launcher never blocks without watching its children: a worker that
// crashes, stalls past the timeout, or exits without publishing surfaces
// as a std::runtime_error naming the shard and the kept run directory.
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/executor.hpp"
#include "dist/protocol.hpp"
#include "dist/shard_session.hpp"
#include "util/check.hpp"

namespace critter::dist {

namespace {

// ---------------------------------------------------------------------------
// Little binary writer/reader over strings (the ShardResult wire format)
// ---------------------------------------------------------------------------

constexpr char kResultMagic[8] = {'C', 'R', 'S', 'H', 'R', 'E', 'S', '1'};

struct WireWriter {
  std::string out;
  void raw(const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(const std::string& s) {
    i32(static_cast<std::int32_t>(s.size()));
    raw(s.data(), s.size());
  }
};

struct WireReader {
  const std::string& in;
  std::size_t pos = 0;
  void raw(void* p, std::size_t n) {
    CRITTER_CHECK(pos + n <= in.size(), "shard result: truncated payload");
    std::memcpy(p, in.data() + pos, n);
    pos += n;
  }
  std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
  std::int32_t i32() { std::int32_t v; raw(&v, 4); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, 8); return v; }
  double f64() { double v; raw(&v, 8); return v; }
  std::string str() {
    const std::int32_t n = i32();
    CRITTER_CHECK(n >= 0 && n <= (1 << 20), "shard result: implausible string");
    std::string s(static_cast<std::size_t>(n), '\0');
    raw(s.data(), s.size());
    return s;
  }
};

std::string serialize_result(const ShardResult& r) {
  WireWriter w;
  w.raw(kResultMagic, sizeof kResultMagic);
  w.i32(r.range.index);
  w.i32(r.range.begin);
  w.i32(r.range.end);
  w.u8(static_cast<std::uint8_t>(r.mode));
  w.str(r.strategy);
  w.i32(r.effective_workers);
  w.i32(r.batch);
  w.str(r.fallback_reason);
  w.i32(r.evaluated);
  w.i32(r.exchange_rounds);
  for (std::size_t j = 0; j < r.outcomes.size(); ++j) {
    const tune::ConfigOutcome& oc = r.outcomes[j];
    w.i32(oc.config.index);
    w.u8(oc.evaluated ? 1 : 0);
    w.u8(oc.pruned ? 1 : 0);
    w.f64(oc.true_time);
    w.f64(oc.pred_time);
    w.f64(oc.err);
    w.f64(oc.true_comp_time);
    w.f64(oc.pred_comp_time);
    w.f64(oc.comp_err);
    w.f64(oc.sel_wall);
    w.f64(oc.sel_kernel_time);
    w.i64(oc.executed);
    w.i64(oc.skipped);
    w.i32(oc.samples_used);
    const tune::ConfigTotals& t = r.totals[j];
    w.f64(t.tuning_time);
    w.f64(t.full_time);
    w.f64(t.kernel_time);
    w.f64(t.full_kernel_time);
  }
  w.u8(r.stats.empty() ? 0 : 1);
  if (!r.stats.empty()) {
    std::ostringstream os;
    r.stats.save(os, core::StatSnapshot::Format::Binary);
    w.raw(os.str().data(), os.str().size());
  }
  return w.out;
}

/// Parse a published result; `study` rebinds the configurations (the wire
/// carries only their absolute indices, which must match the launcher's
/// view of the study).
ShardResult parse_result(const std::string& payload, const tune::Study& study,
                         const ShardRange& expect) {
  WireReader r{payload};
  char magic[sizeof kResultMagic];
  r.raw(magic, sizeof magic);
  CRITTER_CHECK(std::memcmp(magic, kResultMagic, sizeof kResultMagic) == 0,
                "shard result: bad magic");
  ShardResult out;
  out.range.index = r.i32();
  out.range.begin = r.i32();
  out.range.end = r.i32();
  CRITTER_CHECK(out.range.index == expect.index &&
                    out.range.begin == expect.begin &&
                    out.range.end == expect.end,
                "shard result: range does not match the launcher's shard "
                "plan (stale run directory?)");
  out.mode = static_cast<tune::SweepMode>(r.u8());
  out.strategy = r.str();
  out.effective_workers = r.i32();
  out.batch = r.i32();
  out.fallback_reason = r.str();
  out.evaluated = r.i32();
  out.exchange_rounds = r.i32();
  const int n = expect.end - expect.begin;
  out.outcomes.resize(n);
  out.totals.resize(n);
  for (int j = 0; j < n; ++j) {
    tune::ConfigOutcome& oc = out.outcomes[j];
    const std::int32_t idx = r.i32();
    oc.config = study.configs[expect.begin + j];
    CRITTER_CHECK(idx == oc.config.index,
                  "shard result: configuration index mismatch — worker and "
                  "launcher disagree about the study");
    oc.evaluated = r.u8() != 0;
    oc.pruned = r.u8() != 0;
    oc.true_time = r.f64();
    oc.pred_time = r.f64();
    oc.err = r.f64();
    oc.true_comp_time = r.f64();
    oc.pred_comp_time = r.f64();
    oc.comp_err = r.f64();
    oc.sel_wall = r.f64();
    oc.sel_kernel_time = r.f64();
    oc.executed = r.i64();
    oc.skipped = r.i64();
    oc.samples_used = r.i32();
    tune::ConfigTotals& t = out.totals[j];
    t.tuning_time = r.f64();
    t.full_time = r.f64();
    t.kernel_time = r.f64();
    t.full_kernel_time = r.f64();
  }
  if (r.u8() != 0) {
    std::istringstream is(payload.substr(r.pos));
    out.stats = core::StatSnapshot::load(is);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Run manifest (text key=value lines)
// ---------------------------------------------------------------------------

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

using Manifest = std::map<std::string, std::string>;

std::string manifest_get(const Manifest& m, const std::string& key) {
  const auto it = m.find(key);
  CRITTER_CHECK(it != m.end(), "run manifest: missing key '" + key + "'");
  return it->second;
}

std::int64_t manifest_int(const Manifest& m, const std::string& key) {
  return std::strtoll(manifest_get(m, key).c_str(), nullptr, 10);
}

std::uint64_t manifest_u64(const Manifest& m, const std::string& key) {
  return std::strtoull(manifest_get(m, key).c_str(), nullptr, 10);
}

double manifest_double(const Manifest& m, const std::string& key) {
  return std::strtod(manifest_get(m, key).c_str(), nullptr);
}

Manifest parse_manifest(const std::string& text) {
  Manifest m;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    CRITTER_CHECK(eq != std::string::npos,
                  "run manifest: malformed line '" + line + "'");
    m[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return m;
}

std::string build_manifest(const tune::Study& study, bool paper_scale,
                           const tune::TuneOptions& opt,
                           const std::vector<ShardRange>& shards,
                           const ExchangePolicy& exchange, double timeout_s,
                           bool warm) {
  std::ostringstream os;
  os << "workload=" << study.workload << "\n";
  os << "paper_scale=" << (paper_scale ? 1 : 0) << "\n";
  os << "nranks=" << study.nranks << "\n";
  os << "config_indices=";
  for (std::size_t i = 0; i < study.configs.size(); ++i)
    os << (i > 0 ? "," : "") << study.configs[i].index;
  os << "\n";
  os << "policy=" << static_cast<int>(opt.policy) << "\n";
  os << "tolerance=" << hex_double(opt.tolerance) << "\n";
  os << "samples=" << opt.samples << "\n";
  os << "reset_per_config=" << (opt.reset_per_config ? 1 : 0) << "\n";
  os << "seed_salt=" << opt.seed_salt << "\n";
  os << "comp_noise=" << hex_double(opt.comp_noise) << "\n";
  os << "comm_noise=" << hex_double(opt.comm_noise) << "\n";
  os << "tilde_capacity=" << opt.tilde_capacity << "\n";
  os << "extrapolate=" << (opt.extrapolate ? 1 : 0) << "\n";
  os << "workers=" << opt.workers << "\n";
  os << "batch=" << opt.batch << "\n";
  os << "strategy=" << opt.strategy << "\n";
  for (const auto& [k, v] : opt.strategy_options) {
    CRITTER_CHECK(v.find('\n') == std::string::npos &&
                      k.find('\n') == std::string::npos,
                  "strategy options must be single-line");
    os << "strategy_opt." << k << "=" << v << "\n";
  }
  CRITTER_CHECK(opt.prior_file.find('\n') == std::string::npos,
                "prior_file must be single-line");
  os << "prior_file=" << opt.prior_file << "\n";
  os << "exchange_every=" << exchange.every << "\n";
  os << "nshards=" << shards.size() << "\n";
  os << "timeout_s=" << hex_double(timeout_s) << "\n";
  os << "warm_start=" << (warm ? 1 : 0) << "\n";
  // An in-memory model prior travels as a published snapshot, exactly like
  // the warm start (the worker cannot see the launcher's memory).
  os << "prior_snap=" << (opt.prior != nullptr && !opt.prior->empty() ? 1 : 0)
     << "\n";
  for (const ShardRange& s : shards)
    os << "shard" << s.index << "=" << s.begin << "," << s.end << "\n";
  return os.str();
}

std::vector<int> parse_index_list(const std::string& csv) {
  std::vector<int> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ','))
    if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
  return out;
}

// ---------------------------------------------------------------------------
// Exchange mailbox naming
// ---------------------------------------------------------------------------

std::string delta_name(int shard, int round) {
  std::string n = "s";
  n += std::to_string(shard);
  n += "_r";
  n += std::to_string(round);
  n += ".snap";
  return n;
}
std::string done_name(int shard) {
  std::string n = "s";
  n += std::to_string(shard);
  n += ".done";
  return n;
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Test-only fault injection: CRITTER_SHARD_FAULT="<index>:<mode>" makes
/// shard <index> misbehave — "crash-after-batch" kills the process after
/// its first evaluated batch, "skip-result" finishes the sweep but never
/// publishes its result.  Exercised by the failure-path tests.
std::string shard_fault(int index) {
  const char* spec = std::getenv("CRITTER_SHARD_FAULT");
  if (spec == nullptr) return {};
  const std::string s = spec;
  const auto colon = s.find(':');
  if (colon == std::string::npos) return {};
  if (std::atoi(s.substr(0, colon).c_str()) != index) return {};
  return s.substr(colon + 1);
}

struct WorkerArgs {
  std::string run_dir;
  int shard = -1;
};

WorkerArgs parse_worker_args(int argc, char** argv) {
  WorkerArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shard-dir=", 0) == 0) a.run_dir = arg.substr(12);
    if (arg.rfind("--shard-index=", 0) == 0)
      a.shard = std::atoi(arg.c_str() + 14);
  }
  CRITTER_CHECK(!a.run_dir.empty() && a.shard >= 0,
                "--shard-worker needs --shard-dir=DIR and --shard-index=N");
  return a;
}

tune::Study rebuild_study(const Manifest& m) {
  const std::string workload = manifest_get(m, "workload");
  tune::Study study =
      tune::workload_study(workload, manifest_int(m, "paper_scale") != 0);
  CRITTER_CHECK(study.nranks == manifest_int(m, "nranks"),
                "run manifest: study rank count mismatch for " + workload);
  const std::vector<int> indices =
      parse_index_list(manifest_get(m, "config_indices"));
  std::vector<tune::Configuration> configs;
  configs.reserve(indices.size());
  for (int idx : indices) {
    CRITTER_CHECK(idx >= 0 && idx < static_cast<int>(study.configs.size()) &&
                      study.configs[idx].index == idx,
                  "run manifest: configuration index " + std::to_string(idx) +
                      " not in the workload's space");
    configs.push_back(study.configs[idx]);
  }
  study.configs = std::move(configs);
  return study;
}

tune::TuneOptions rebuild_options(const Manifest& m) {
  tune::TuneOptions opt;
  const std::int64_t policy = manifest_int(m, "policy");
  CRITTER_CHECK(policy >= 0 && policy < 8, "run manifest: bad policy");
  opt.policy = static_cast<Policy>(policy);
  opt.tolerance = manifest_double(m, "tolerance");
  opt.samples = static_cast<int>(manifest_int(m, "samples"));
  opt.reset_per_config = manifest_int(m, "reset_per_config") != 0;
  opt.seed_salt = manifest_u64(m, "seed_salt");
  opt.comp_noise = manifest_double(m, "comp_noise");
  opt.comm_noise = manifest_double(m, "comm_noise");
  opt.tilde_capacity = static_cast<int>(manifest_int(m, "tilde_capacity"));
  opt.extrapolate = manifest_int(m, "extrapolate") != 0;
  opt.workers = static_cast<int>(manifest_int(m, "workers"));
  opt.batch = static_cast<int>(manifest_int(m, "batch"));
  opt.strategy = manifest_get(m, "strategy");
  for (const auto& [k, v] : m)
    if (k.rfind("strategy_opt.", 0) == 0)
      opt.strategy_options[k.substr(13)] = v;
  opt.prior_file = manifest_get(m, "prior_file");
  return opt;
}

ShardRange shard_range_of(const Manifest& m, int shard) {
  const std::string spec = manifest_get(m, "shard" + std::to_string(shard));
  int lo = 0, hi = 0;
  CRITTER_CHECK(std::sscanf(spec.c_str(), "%d,%d", &lo, &hi) == 2,
                "run manifest: malformed shard range '" + spec + "'");
  return {shard, lo, hi};
}

void check_not_aborted(const std::string& run_dir) {
  if (!file_exists(run_dir + "/abort")) return;
  std::string why;
  try {
    why = read_file(run_dir + "/abort");
  } catch (...) {
  }
  CRITTER_CHECK(false, "run aborted by launcher: " + why);
}

/// Block until peer `p`'s round-`round` delta is available or provably
/// absent (the peer finished earlier); returns the delta or an empty
/// snapshot.  Never waits past `timeout_s` or an abort marker.
core::StatSnapshot await_peer_delta(const std::string& run_dir, int p,
                                    int round, double timeout_s) {
  const std::string exch = run_dir + "/exchange";
  const double deadline = monotonic_s() + timeout_s;
  while (true) {
    if (published(exch, delta_name(p, round))) {
      const std::string payload = read_published(exch, delta_name(p, round));
      // Empty payload: the peer session has no shared statistics to trade
      // (isolated mode) — a published, verifiable nothing.
      if (payload.empty()) return {};
      std::istringstream is(payload);
      return core::StatSnapshot::load(is);
    }
    if (published(exch, done_name(p))) {
      const std::string marker = read_published(exch, done_name(p));
      int rounds = -1;
      if (std::sscanf(marker.c_str(), "rounds=%d", &rounds) != 1) rounds = -1;
      CRITTER_CHECK(rounds >= 0, "stale done marker from shard " +
                                     std::to_string(p));
      // The peer publishes every delta before its done marker, so a
      // visible marker with rounds <= round proves no delta is coming.
      if (rounds <= round) return {};
    }
    check_not_aborted(run_dir);
    CRITTER_CHECK(monotonic_s() < deadline,
                  "timed out waiting for shard " + std::to_string(p) +
                      "'s round-" + std::to_string(round) +
                      " exchange delta");
    sleep_ms(5);
  }
}

int worker_body(const WorkerArgs& args) {
  const Manifest m = parse_manifest(read_file(args.run_dir + "/run.txt"));
  const tune::Study study = rebuild_study(m);
  tune::TuneOptions opt = rebuild_options(m);
  const ShardRange range = shard_range_of(m, args.shard);
  opt.config_begin = range.begin;
  opt.config_end = range.end;
  core::StatSnapshot warm;
  if (manifest_int(m, "warm_start") != 0) {
    const std::string payload = read_published(args.run_dir, "warm.snap");
    std::istringstream is(payload);
    warm = core::StatSnapshot::load(is);
    opt.warm_start = &warm;
  }
  core::StatSnapshot prior;
  if (manifest_int(m, "prior_snap") != 0) {
    const std::string payload = read_published(args.run_dir, "prior.snap");
    std::istringstream is(payload);
    prior = core::StatSnapshot::load(is);
    opt.prior = &prior;
  }
  const int nshards = static_cast<int>(manifest_int(m, "nshards"));
  const int every = static_cast<int>(manifest_int(m, "exchange_every"));
  const double timeout_s = manifest_double(m, "timeout_s");
  const std::string shard_dir =
      args.run_dir + "/shard" + std::to_string(args.shard);
  const std::string exch = args.run_dir + "/exchange";
  const std::string fault = shard_fault(args.shard);

  ShardResult result;
  if (every <= 0 || nshards <= 1) {
    // No mid-sweep exchange: the plain sweep, so an exchange-off worker is
    // bit-identical to the legacy in-process shard.
    if (fault == "crash-after-batch") {
      // Die genuinely mid-sweep: one batch through a session, then crash.
      tune::Tuner session(study, opt);
      session.step();
      ::_exit(42);
    }
    const tune::TuneResult r = tune::run_study(study, opt);
    result = shard_result_from(r, range);
  } else {
    ShardSession ss(study, opt);
    // An isolated-mode session exports no shared statistics; its rounds
    // publish empty payloads that peers skip — the same no-op the
    // in-process executor's absorb of an empty delta performs.
    const auto publish_delta = [&](int round_no) {
      const core::StatSnapshot delta = ss.take_delta();
      std::string payload;
      if (!delta.empty()) {
        std::ostringstream os;
        delta.save(os, core::StatSnapshot::Format::Binary);
        payload = os.str();
      }
      publish_file(exch, delta_name(range.index, round_no), payload);
    };
    int in_round = 0, round = 0, total = 0;
    while (true) {
      check_not_aborted(args.run_dir);
      if (ss.run_segment(1) == 0) break;
      ++total;
      if (fault == "crash-after-batch" && total == 1) ::_exit(42);
      if (++in_round < every) continue;
      // Publish this shard's round delta, then fold in every peer's, in
      // ascending shard order (the determinism contract).
      publish_delta(round);
      for (int p = 0; p < nshards; ++p) {
        if (p == range.index) continue;
        const core::StatSnapshot peer =
            await_peer_delta(args.run_dir, p, round, timeout_s);
        if (!peer.empty()) ss.absorb(peer);
      }
      ss.refresh_mark();
      ++round;
      in_round = 0;
    }
    if (in_round > 0) {
      // Trailing partial round: publish so peers still sweeping see it;
      // a finished shard reads no more peers.
      publish_delta(round);
      ++round;
    }
    publish_file(exch, done_name(range.index),
                 "rounds=" + std::to_string(round) + "\n");
    result = ss.result(range);
  }

  if (fault == "skip-result") return 0;
  publish_file(shard_dir, "result.bin", serialize_result(result));
  return 0;
}

// ---------------------------------------------------------------------------
// Launcher side
// ---------------------------------------------------------------------------

std::string self_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  CRITTER_CHECK(n > 0, "cannot resolve /proc/self/exe for worker re-exec");
  return std::string(buf, static_cast<std::size_t>(n));
}

bool detect_paper_scale(const tune::Study& study) {
  for (const bool scale : {false, true}) {
    const tune::Study ref = tune::workload_study(study.workload, scale);
    if (ref.nranks == study.nranks && ref.m == study.m &&
        ref.n == study.n && ref.space.size() == study.space.size())
      return scale;
  }
  CRITTER_CHECK(false,
                "subprocess executor cannot reconstruct study '" +
                    study.name + "' from workload '" + study.workload +
                    "' at either scale — tune it in-process instead");
  return false;
}

pid_t spawn_worker(const std::string& binary, const std::string& run_dir,
                   int shard) {
  const pid_t pid = ::fork();
  CRITTER_CHECK(pid >= 0, "fork failed for shard worker");
  if (pid > 0) return pid;
  // Child: capture output, then become the worker.
  const std::string log =
      run_dir + "/shard" + std::to_string(shard) + "/log.txt";
  const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  const std::string dir_arg = "--shard-dir=" + run_dir;
  const std::string idx_arg = "--shard-index=" + std::to_string(shard);
  const char* argv[] = {binary.c_str(), "--shard-worker", dir_arg.c_str(),
                        idx_arg.c_str(), nullptr};
  ::execv(binary.c_str(), const_cast<char* const*>(argv));
  std::fprintf(stderr, "execv %s failed: %s\n", binary.c_str(),
               std::strerror(errno));
  ::_exit(127);
}

std::string describe_exit(int status) {
  if (WIFEXITED(status))
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return std::string("killed by signal ") + std::to_string(WTERMSIG(status));
  return "ended abnormally";
}

std::string shard_diagnosis(const std::string& run_dir, int shard) {
  const std::string base = run_dir + "/shard" + std::to_string(shard);
  for (const char* name : {"/error.txt", "/log.txt"}) {
    if (!file_exists(base + name)) continue;
    std::string text;
    try {
      text = read_file(base + name);
    } catch (...) {
      continue;
    }
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
      text.pop_back();
    if (!text.empty()) return text;
  }
  return "(no diagnostics recorded)";
}

struct Child {
  pid_t pid = -1;
  int shard = -1;
  bool running = true;
  int status = 0;
};

/// Reap children until all exited, the deadline passes, or one fails.  On
/// failure/timeout: write the abort marker (so peers blocked in exchange
/// waits bail out), give the rest a grace period, SIGKILL stragglers, and
/// throw the diagnosis.
void monitor_fleet(std::vector<Child>& fleet, const std::string& run_dir,
                   double timeout_s) {
  const double deadline = monotonic_s() + timeout_s;
  auto poll = [&]() {
    for (Child& c : fleet) {
      if (!c.running) continue;
      int status = 0;
      const pid_t got = ::waitpid(c.pid, &status, WNOHANG);
      if (got == c.pid) {
        c.running = false;
        c.status = status;
      }
    }
  };
  auto first_failure = [&]() -> const Child* {
    for (const Child& c : fleet)
      if (!c.running && c.status != 0) return &c;
    return nullptr;
  };
  auto any_running = [&]() {
    for (const Child& c : fleet)
      if (c.running) return true;
    return false;
  };

  std::string failure;
  while (true) {
    poll();
    if (const Child* bad = first_failure()) {
      failure = "shard worker " + std::to_string(bad->shard) + " (pid " +
                std::to_string(bad->pid) + ") " + describe_exit(bad->status) +
                ": " + shard_diagnosis(run_dir, bad->shard);
      break;
    }
    if (!any_running()) return;
    if (monotonic_s() > deadline) {
      failure = "timed out after " + std::to_string(timeout_s) +
                "s waiting for shard workers";
      break;
    }
    sleep_ms(10);
  }

  write_file(run_dir + "/abort", failure + "\n");
  const double grace_deadline = monotonic_s() + 10.0;
  while (any_running() && monotonic_s() < grace_deadline) {
    poll();
    sleep_ms(10);
  }
  for (Child& c : fleet)
    if (c.running) ::kill(c.pid, SIGKILL);
  while (any_running()) {
    poll();
    sleep_ms(5);
  }
  CRITTER_CHECK(false, failure + " — run directory kept at " + run_dir);
}

}  // namespace

std::vector<ShardResult> SubprocessExecutor::run(
    const tune::Study& study, const tune::TuneOptions& opt,
    const std::vector<ShardRange>& shards, const ExchangePolicy& exchange) {
  CRITTER_CHECK(!study.workload.empty(),
                "subprocess executor requires a registry workload "
                "(Study::workload) so shard workers can rebuild the study; "
                "ad-hoc studies can only run in-process");
  const bool paper_scale = detect_paper_scale(study);
  const std::string binary =
      opts_.worker_binary.empty() ? self_binary() : opts_.worker_binary;

  const bool temp_dir = opts_.run_dir.empty();
  const std::string run_dir =
      temp_dir ? make_temp_dir("critter-run-") : opts_.run_dir;
  if (!temp_dir) {
    make_dir(run_dir);
    CRITTER_CHECK(!file_exists(run_dir + "/run.txt"),
                  "run directory " + run_dir +
                      " already holds a run manifest (stale run "
                      "directory?) — point --run-dir at a fresh one");
  }
  make_dir(run_dir + "/exchange");
  for (const ShardRange& s : shards)
    make_dir(run_dir + "/shard" + std::to_string(s.index));

  if (opt.warm_start != nullptr && !opt.warm_start->empty()) {
    std::ostringstream os;
    opt.warm_start->save(os, core::StatSnapshot::Format::Binary);
    publish_file(run_dir, "warm.snap", os.str());
  }
  if (opt.prior != nullptr && !opt.prior->empty()) {
    std::ostringstream os;
    opt.prior->save(os, core::StatSnapshot::Format::Binary);
    publish_file(run_dir, "prior.snap", os.str());
  }
  const bool warm = opt.warm_start != nullptr && !opt.warm_start->empty();
  write_file(run_dir + "/run.txt",
             build_manifest(study, paper_scale, opt, shards, exchange,
                            opts_.timeout_s, warm));

  std::vector<Child> fleet;
  fleet.reserve(shards.size());
  for (const ShardRange& s : shards)
    fleet.push_back({spawn_worker(binary, run_dir, s.index), s.index});

  monitor_fleet(fleet, run_dir, opts_.timeout_s);

  std::vector<ShardResult> results;
  results.reserve(shards.size());
  for (const ShardRange& s : shards) {
    const std::string shard_dir = run_dir + "/shard" + std::to_string(s.index);
    try {
      results.push_back(
          parse_result(read_published(shard_dir, "result.bin"), study, s));
    } catch (const std::exception& e) {
      throw std::runtime_error(
          "shard worker " + std::to_string(s.index) +
          " exited cleanly but its result snapshot is unusable (" + e.what() +
          ") — run directory kept at " + run_dir);
    }
  }
  if (temp_dir && !opts_.keep_run_dir) remove_dir_tree(run_dir);
  return results;
}

bool is_shard_worker(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--shard-worker") == 0) return true;
  return false;
}

int shard_worker_main(int argc, char** argv) {
  WorkerArgs args;
  try {
    args = parse_worker_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  try {
    return worker_body(args);
  } catch (const std::exception& e) {
    try {
      write_file(args.run_dir + "/shard" + std::to_string(args.shard) +
                     "/error.txt",
                 std::string(e.what()) + "\n");
    } catch (...) {
    }
    std::fprintf(stderr, "shard worker %d failed: %s\n", args.shard, e.what());
    return 1;
  }
}

}  // namespace critter::dist
