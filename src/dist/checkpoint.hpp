// Shard checkpoint format: the durable record a subprocess worker
// periodically publishes so a relaunched worker can resume its sweep
// bit-identically (DESIGN.md §10).
//
// A checkpoint is the full replay recipe of a session prefix:
//
//   * the progress cursor (completed batches, completed exchange rounds,
//     batches into the current round);
//   * every batch told so far — positions plus raw outcome bits — so the
//     resumed session can re-ask/re-tell the strategy into the exact state
//     the crashed worker had (asks are a pure function of told outcomes and
//     ingested priors, and tell() contributes no kernel statistics);
//   * the accumulated per-configuration totals, which tell() does not
//     carry;
//   * the session's statistics snapshots: the full state (wholesale
//     import on resume), and with mid-sweep exchange on, the delta
//     baseline `mark` and the shard's own-contribution `own`;
//   * the non-strict exchange skips taken so far, so replay skips the
//     same (round, peer) pairs the live run skipped.
//
// The payload ends in an FNV-1a trailer over everything before it, so any
// truncation or byte flip is rejected by parse_checkpoint() even when the
// publish manifest happens to match (e.g. corruption at the source).
// Workers alternate between two slots (ckpt_a.bin / ckpt_b.bin): a torn or
// corrupt latest checkpoint falls back to the previous one, and a worker
// with no valid checkpoint restarts cleanly — which is still bit-identical,
// since round deltas persist in the exchange mailbox and re-publishing is
// idempotent.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/stat_store.hpp"
#include "dist/executor.hpp"
#include "tune/tuner.hpp"

namespace critter::dist {

struct ShardCheckpoint {
  std::int64_t seq = 0;     ///< monotonically increasing per shard
  int batches = 0;          ///< completed (told) batches — the cursor
  int rounds = 0;           ///< completed exchange rounds
  int in_round = 0;         ///< batches into the current round
  int exchange_skips = 0;   ///< non-strict rounds skipped so far
  /// (round, peer) pairs skipped in non-strict mode, in occurrence order.
  std::vector<std::pair<int, int>> skipped;
  struct ToldBatch {
    std::vector<int> positions;  ///< study.configs positions, ascending
    std::vector<tune::ConfigOutcome> outcomes;
  };
  std::vector<ToldBatch> told;  ///< one entry per completed batch
  /// Accumulated totals for the shard's range, indexed range-relative.
  std::vector<tune::ConfigTotals> totals;
  core::StatSnapshot full;  ///< session statistics at the checkpoint
  bool has_exchange_state = false;
  core::StatSnapshot mark;  ///< delta baseline (exchange on)
  core::StatSnapshot own;   ///< own-contribution accumulator (exchange on)
  /// Serialized v2 payloads of the three snapshots ("" = empty snapshot).
  /// parse_checkpoint fills them alongside the decoded snapshots; they are
  /// the splice bases for the log's byte patches (apply_increment), and
  /// serialize_checkpoint reuses them verbatim when set — sparing a
  /// re-serialization and guaranteeing the written blob is the exact byte
  /// string the patches were computed against.
  std::string full_bytes;
  std::string mark_bytes;
  std::string own_bytes;
};

/// Incremental checkpoint record.  Between two full checkpoints a worker
/// appends one framed increment per checkpoint to the shard's append-only
/// ckpt_log.bin instead of rewriting the whole replay recipe — the full
/// snapshot, the complete told history, and the totals grow with the sweep,
/// while what a single checkpoint actually adds stays constant-sized.  An
/// increment carries only the change since the previous record (full or
/// increment): the advanced cursors, the newly told batches and skips, the
/// totals of the configurations those batches touched, and *byte patches*
/// for the session statistics and — with exchange on — the mark/own
/// snapshots.  Each patch field is one of:
///
///   * "" — the snapshot's serialized bytes are unchanged;
///   * a mode-0 sparse payload (core::encode_sparse_patch, DESIGN.md §13)
///     that splices dirty rank chunks onto the previous record's bytes;
///   * a full CRSTAT payload — wholesale replacement, used when the
///     previous record had no snapshot to patch (empty -> non-empty).
///
/// Byte patches replace the StatSnapshot::diff deltas of the original
/// CRCKINC1 scheme: a spliced payload is the *exact* byte string the worker
/// held, where diff + merge reconstruction — though exact by the merge
/// algebra — still paid a full semantic walk on both ends.  Resume loads
/// the best full slot and replays the longest valid prefix of the log on
/// top of it (apply_increment), so a torn append costs at most one
/// checkpoint of progress, never the base.
struct CheckpointIncrement {
  std::int64_t base_seq = 0;  ///< seq of the full checkpoint the log extends
  std::int64_t seq = 0;       ///< overall checkpoint sequence number
  // Absolute cursor values as of this record.
  int batches = 0;
  int rounds = 0;
  int in_round = 0;
  int exchange_skips = 0;
  std::vector<std::pair<int, int>> new_skipped;
  std::vector<ShardCheckpoint::ToldBatch> new_told;
  /// Rewritten totals, as (range-relative index, value), ascending — the
  /// dirty subset named by the new batches' positions.
  std::vector<std::pair<int, tune::ConfigTotals>> dirty_totals;
  std::string full_patch;  ///< session-stats byte patch since previous record
  bool has_exchange_state = false;
  std::string mark_patch;  ///< delta-baseline byte patch (exchange on)
  std::string own_patch;   ///< own-contribution byte patch (exchange on)
};

std::string serialize_checkpoint(const ShardCheckpoint& c);
std::string serialize_increment(const CheckpointIncrement& inc);

/// Parse and validate one increment payload (unframed).  Shape checks
/// mirror parse_checkpoint: positions inside the shard range and ordered,
/// plausible counts, no trailing bytes.  Continuity against the base is
/// apply_increment's job.
CheckpointIncrement parse_increment(const std::string& payload,
                                    const tune::Study& study,
                                    const ShardRange& range);

/// Extend `ck` — a full checkpoint, possibly already extended — by one
/// increment.  Byte patches splice onto ck's *_bytes fields and the decoded
/// snapshots are refreshed from the spliced payloads (which re-validates
/// every patched chunk).  Throws on any discontinuity: wrong base, sequence
/// gap, cursors that do not add up, or a patch that does not fit its base;
/// `ck` is unchanged on throw.
void apply_increment(ShardCheckpoint& ck, std::int64_t base_seq,
                     CheckpointIncrement&& inc);

/// Log framing: [u64 payload length][u64 FNV-1a of payload][payload].
std::string frame_log_record(const std::string& payload);

/// The longest valid framed-record prefix of a log blob.  Scanning stops at
/// the first truncated frame or checksum mismatch — everything before a
/// torn or corrupt append is still trusted.
std::vector<std::string> scan_log_records(const std::string& blob);

/// Parse and fully validate a checkpoint payload; `study`/`range` rebind
/// the outcome configurations and bound every cursor.  Throws on any
/// corruption — truncation, byte flips (FNV trailer), implausible
/// counters, positions outside the range — before returning partial state.
ShardCheckpoint parse_checkpoint(const std::string& payload,
                                 const tune::Study& study,
                                 const ShardRange& range);

/// The slot a checkpoint of sequence number `seq` publishes to: odd
/// sequences use "ckpt_a.bin", even ones "ckpt_b.bin" (double buffering —
/// the previous checkpoint survives a torn publish of the next).
std::string checkpoint_slot_name(std::int64_t seq);

/// Load the best full checkpoint slot under `dir`, then extend it with the
/// longest valid prefix of the increment log (DESIGN.md §11): records that
/// frame-verify, parse, and apply continuously on top of the base.  A torn
/// or corrupt record ends the prefix — everything before it already
/// reproduced a consistent state.  Reports the base's slot and sequence so
/// the resumed owner keeps alternating slots and appending increments
/// against the right base.  False when neither slot holds a usable
/// checkpoint.  Shared by relaunched shard workers and the resuming tuner
/// daemon (serve/daemon.hpp).
bool load_latest_checkpoint(const std::string& dir, const tune::Study& study,
                            const ShardRange& range, ShardCheckpoint* out,
                            std::int64_t* base_seq, std::string* base_slot);

/// Clean restart must drop any surviving slots: later checkpoints restart
/// the sequence at 1, and a stale higher-seq slot would win the next
/// resume.  The increment log goes with them — its records extend a base
/// that no longer exists.
void discard_checkpoints(const std::string& dir);

}  // namespace critter::dist
