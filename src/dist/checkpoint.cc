#include "dist/checkpoint.hpp"

#include <cstring>
#include <sstream>

#include "dist/wire.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace critter::dist {

namespace {

constexpr char kCheckpointMagic[8] = {'C', 'R', 'C', 'K', 'P', 'T', '0', '1'};

void write_snapshot_blob(WireWriter& w, const core::StatSnapshot& snap) {
  if (snap.empty()) {
    w.i64(0);
    return;
  }
  std::ostringstream os;
  snap.save(os, core::StatSnapshot::Format::Binary);
  const std::string blob = os.str();
  w.i64(static_cast<std::int64_t>(blob.size()));
  w.raw(blob.data(), blob.size());
}

core::StatSnapshot read_snapshot_blob(WireReader& r) {
  const std::int64_t len = r.i64();
  CRITTER_CHECK(len >= 0 && r.pos + static_cast<std::size_t>(len) <=
                                r.in.size(),
                "shard checkpoint: truncated snapshot blob");
  if (len == 0) return {};
  std::istringstream is(r.in.substr(r.pos, static_cast<std::size_t>(len)));
  r.pos += static_cast<std::size_t>(len);
  return core::StatSnapshot::load(is);
}

}  // namespace

std::string serialize_checkpoint(const ShardCheckpoint& c) {
  WireWriter w;
  w.raw(kCheckpointMagic, sizeof kCheckpointMagic);
  w.i64(c.seq);
  w.i32(c.batches);
  w.i32(c.rounds);
  w.i32(c.in_round);
  w.i32(c.exchange_skips);
  w.i32(static_cast<std::int32_t>(c.skipped.size()));
  for (const auto& [round, peer] : c.skipped) {
    w.i32(round);
    w.i32(peer);
  }
  w.i32(static_cast<std::int32_t>(c.told.size()));
  for (const ShardCheckpoint::ToldBatch& b : c.told) {
    w.i32(static_cast<std::int32_t>(b.positions.size()));
    for (std::size_t k = 0; k < b.positions.size(); ++k) {
      w.i32(b.positions[k]);
      write_outcome(w, b.outcomes[k]);
    }
  }
  w.i32(static_cast<std::int32_t>(c.totals.size()));
  for (const tune::ConfigTotals& t : c.totals) write_totals(w, t);
  w.u8(c.has_exchange_state ? 1 : 0);
  write_snapshot_blob(w, c.full);
  if (c.has_exchange_state) {
    write_snapshot_blob(w, c.mark);
    write_snapshot_blob(w, c.own);
  }
  // Payload-level checksum: the publish manifest already guards the file in
  // transit, this trailer guards the bytes at the source — any flip or
  // truncation is rejected before a single field is trusted.
  const std::uint64_t sum = util::fnv1a(w.out.data(), w.out.size());
  w.raw(&sum, sizeof sum);
  return w.out;
}

ShardCheckpoint parse_checkpoint(const std::string& payload,
                                 const tune::Study& study,
                                 const ShardRange& range) {
  CRITTER_CHECK(payload.size() >= sizeof kCheckpointMagic + 8,
                "shard checkpoint: payload too short");
  std::uint64_t declared = 0;
  std::memcpy(&declared, payload.data() + payload.size() - 8, 8);
  CRITTER_CHECK(util::fnv1a(payload.data(), payload.size() - 8) == declared,
                "shard checkpoint: checksum trailer mismatch (corrupt or "
                "torn checkpoint)");
  WireReader r{payload};
  char magic[sizeof kCheckpointMagic];
  r.raw(magic, sizeof magic);
  CRITTER_CHECK(std::memcmp(magic, kCheckpointMagic, sizeof magic) == 0,
                "shard checkpoint: bad magic");
  ShardCheckpoint c;
  c.seq = r.i64();
  c.batches = r.i32();
  c.rounds = r.i32();
  c.in_round = r.i32();
  c.exchange_skips = r.i32();
  CRITTER_CHECK(c.seq >= 1 && c.batches >= 0 && c.rounds >= 0 &&
                    c.in_round >= 0 && c.exchange_skips >= 0,
                "shard checkpoint: implausible cursors");
  const std::int32_t nskips = r.i32();
  CRITTER_CHECK(nskips >= 0 && nskips <= c.exchange_skips,
                "shard checkpoint: implausible skip list");
  c.skipped.reserve(static_cast<std::size_t>(nskips));
  for (std::int32_t i = 0; i < nskips; ++i) {
    const std::int32_t round = r.i32();
    const std::int32_t peer = r.i32();
    CRITTER_CHECK(round >= 0 && peer >= 0 && peer != range.index,
                  "shard checkpoint: implausible skip entry");
    c.skipped.emplace_back(round, peer);
  }
  const std::int32_t ntold = r.i32();
  CRITTER_CHECK(ntold == c.batches,
                "shard checkpoint: told-batch count does not match the "
                "cursor");
  c.told.resize(static_cast<std::size_t>(ntold));
  const int nconf = static_cast<int>(study.configs.size());
  for (std::int32_t b = 0; b < ntold; ++b) {
    const std::int32_t k = r.i32();
    CRITTER_CHECK(k > 0 && k <= nconf, "shard checkpoint: implausible batch");
    ShardCheckpoint::ToldBatch& tb = c.told[static_cast<std::size_t>(b)];
    tb.positions.resize(static_cast<std::size_t>(k));
    tb.outcomes.resize(static_cast<std::size_t>(k));
    for (std::int32_t j = 0; j < k; ++j) {
      const std::int32_t pos = r.i32();
      CRITTER_CHECK(pos >= range.begin && pos < range.end &&
                        pos < nconf &&
                        (j == 0 || tb.positions[j - 1] < pos),
                    "shard checkpoint: batch position outside the shard "
                    "range or out of order");
      tb.positions[static_cast<std::size_t>(j)] = pos;
      tb.outcomes[static_cast<std::size_t>(j)].config = study.configs[pos];
      read_outcome(r, tb.outcomes[static_cast<std::size_t>(j)],
                   "shard checkpoint");
    }
  }
  const std::int32_t ntotals = r.i32();
  CRITTER_CHECK(ntotals == range.end - range.begin,
                "shard checkpoint: totals do not cover the shard range");
  c.totals.resize(static_cast<std::size_t>(ntotals));
  for (std::int32_t i = 0; i < ntotals; ++i)
    read_totals(r, c.totals[static_cast<std::size_t>(i)]);
  c.has_exchange_state = r.u8() != 0;
  c.full = read_snapshot_blob(r);
  if (c.has_exchange_state) {
    c.mark = read_snapshot_blob(r);
    c.own = read_snapshot_blob(r);
  }
  CRITTER_CHECK(r.pos == payload.size() - 8,
                "shard checkpoint: trailing garbage");
  return c;
}

std::string checkpoint_slot_name(std::int64_t seq) {
  return (seq % 2 != 0) ? "ckpt_a.bin" : "ckpt_b.bin";
}

}  // namespace critter::dist
