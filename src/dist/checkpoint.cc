#include "dist/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

#include "core/fsio.hpp"
#include "dist/wire.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace critter::dist {

namespace {

constexpr char kCheckpointMagic[8] = {'C', 'R', 'C', 'K', 'P', 'T', '0', '1'};

/// Write a snapshot's serialized payload.  When the caller carries the
/// pre-serialized bytes (ShardCheckpoint::*_bytes) they are written
/// verbatim — the blob is then bit-identical to the splice base the log's
/// byte patches were computed against, and the snapshot is not serialized
/// a second time.
void write_snapshot_blob(WireWriter& w, const core::StatSnapshot& snap,
                         const std::string& bytes) {
  if (!bytes.empty()) {
    w.i64(static_cast<std::int64_t>(bytes.size()));
    w.raw(bytes.data(), bytes.size());
    return;
  }
  if (snap.empty()) {
    w.i64(0);
    return;
  }
  const std::string blob = snap.to_string();
  w.i64(static_cast<std::int64_t>(blob.size()));
  w.raw(blob.data(), blob.size());
}

/// Read a snapshot blob, keeping both the decoded snapshot and the raw
/// bytes (the splice base for byte patches).
core::StatSnapshot read_snapshot_blob(WireReader& r, std::string* bytes) {
  const std::int64_t len = r.i64();
  CRITTER_CHECK(len >= 0 && r.pos + static_cast<std::size_t>(len) <=
                                r.in.size(),
                "shard checkpoint: truncated snapshot blob");
  if (bytes) bytes->clear();
  if (len == 0) return {};
  const std::string_view blob =
      std::string_view(r.in).substr(r.pos, static_cast<std::size_t>(len));
  r.pos += static_cast<std::size_t>(len);
  if (bytes) bytes->assign(blob);
  return core::StatSnapshot::from_string(blob);
}

}  // namespace

std::string serialize_checkpoint(const ShardCheckpoint& c) {
  WireWriter w;
  w.raw(kCheckpointMagic, sizeof kCheckpointMagic);
  w.i64(c.seq);
  w.i32(c.batches);
  w.i32(c.rounds);
  w.i32(c.in_round);
  w.i32(c.exchange_skips);
  w.i32(static_cast<std::int32_t>(c.skipped.size()));
  for (const auto& [round, peer] : c.skipped) {
    w.i32(round);
    w.i32(peer);
  }
  w.i32(static_cast<std::int32_t>(c.told.size()));
  for (const ShardCheckpoint::ToldBatch& b : c.told) {
    w.i32(static_cast<std::int32_t>(b.positions.size()));
    for (std::size_t k = 0; k < b.positions.size(); ++k) {
      w.i32(b.positions[k]);
      write_outcome(w, b.outcomes[k]);
    }
  }
  w.i32(static_cast<std::int32_t>(c.totals.size()));
  for (const tune::ConfigTotals& t : c.totals) write_totals(w, t);
  w.u8(c.has_exchange_state ? 1 : 0);
  write_snapshot_blob(w, c.full, c.full_bytes);
  if (c.has_exchange_state) {
    write_snapshot_blob(w, c.mark, c.mark_bytes);
    write_snapshot_blob(w, c.own, c.own_bytes);
  }
  // Payload-level checksum: the publish manifest already guards the file in
  // transit, this trailer guards the bytes at the source — any flip or
  // truncation is rejected before a single field is trusted.
  const std::uint64_t sum = util::fnv1a(w.out.data(), w.out.size());
  w.raw(&sum, sizeof sum);
  return w.out;
}

ShardCheckpoint parse_checkpoint(const std::string& payload,
                                 const tune::Study& study,
                                 const ShardRange& range) {
  CRITTER_CHECK(payload.size() >= sizeof kCheckpointMagic + 8,
                "shard checkpoint: payload too short");
  std::uint64_t declared = 0;
  std::memcpy(&declared, payload.data() + payload.size() - 8, 8);
  CRITTER_CHECK(util::fnv1a(payload.data(), payload.size() - 8) == declared,
                "shard checkpoint: checksum trailer mismatch (corrupt or "
                "torn checkpoint)");
  WireReader r{payload};
  char magic[sizeof kCheckpointMagic];
  r.raw(magic, sizeof magic);
  CRITTER_CHECK(std::memcmp(magic, kCheckpointMagic, sizeof magic) == 0,
                "shard checkpoint: bad magic");
  ShardCheckpoint c;
  c.seq = r.i64();
  c.batches = r.i32();
  c.rounds = r.i32();
  c.in_round = r.i32();
  c.exchange_skips = r.i32();
  CRITTER_CHECK(c.seq >= 1 && c.batches >= 0 && c.rounds >= 0 &&
                    c.in_round >= 0 && c.exchange_skips >= 0,
                "shard checkpoint: implausible cursors");
  const std::int32_t nskips = r.i32();
  CRITTER_CHECK(nskips >= 0 && nskips <= c.exchange_skips,
                "shard checkpoint: implausible skip list");
  c.skipped.reserve(static_cast<std::size_t>(nskips));
  for (std::int32_t i = 0; i < nskips; ++i) {
    const std::int32_t round = r.i32();
    const std::int32_t peer = r.i32();
    CRITTER_CHECK(round >= 0 && peer >= 0 && peer != range.index,
                  "shard checkpoint: implausible skip entry");
    c.skipped.emplace_back(round, peer);
  }
  const std::int32_t ntold = r.i32();
  CRITTER_CHECK(ntold == c.batches,
                "shard checkpoint: told-batch count does not match the "
                "cursor");
  c.told.resize(static_cast<std::size_t>(ntold));
  const int nconf = static_cast<int>(study.configs.size());
  for (std::int32_t b = 0; b < ntold; ++b) {
    const std::int32_t k = r.i32();
    CRITTER_CHECK(k > 0 && k <= nconf, "shard checkpoint: implausible batch");
    ShardCheckpoint::ToldBatch& tb = c.told[static_cast<std::size_t>(b)];
    tb.positions.resize(static_cast<std::size_t>(k));
    tb.outcomes.resize(static_cast<std::size_t>(k));
    for (std::int32_t j = 0; j < k; ++j) {
      const std::int32_t pos = r.i32();
      CRITTER_CHECK(pos >= range.begin && pos < range.end &&
                        pos < nconf &&
                        (j == 0 || tb.positions[j - 1] < pos),
                    "shard checkpoint: batch position outside the shard "
                    "range or out of order");
      tb.positions[static_cast<std::size_t>(j)] = pos;
      tb.outcomes[static_cast<std::size_t>(j)].config = study.configs[pos];
      read_outcome(r, tb.outcomes[static_cast<std::size_t>(j)],
                   "shard checkpoint");
    }
  }
  const std::int32_t ntotals = r.i32();
  CRITTER_CHECK(ntotals == range.end - range.begin,
                "shard checkpoint: totals do not cover the shard range");
  c.totals.resize(static_cast<std::size_t>(ntotals));
  for (std::int32_t i = 0; i < ntotals; ++i)
    read_totals(r, c.totals[static_cast<std::size_t>(i)]);
  c.has_exchange_state = r.u8() != 0;
  c.full = read_snapshot_blob(r, &c.full_bytes);
  if (c.has_exchange_state) {
    c.mark = read_snapshot_blob(r, &c.mark_bytes);
    c.own = read_snapshot_blob(r, &c.own_bytes);
  }
  CRITTER_CHECK(r.pos == payload.size() - 8,
                "shard checkpoint: trailing garbage");
  return c;
}

namespace {

// Version 2: the statistics fields switched from StatSnapshot::diff deltas
// (merged back on resume) to byte patches (spliced on resume).  A CRCKINC1
// log cannot extend a CRCKINC2 reader's base — parse_increment rejects the
// old magic, load_latest_checkpoint stops at the first unreadable record,
// and the resume costs at most the increments since the last full slot.
constexpr char kIncrementMagic[8] = {'C', 'R', 'C', 'K', 'I', 'N', 'C', '2'};

void write_patch_blob(WireWriter& w, const std::string& patch) {
  w.i64(static_cast<std::int64_t>(patch.size()));
  w.raw(patch.data(), patch.size());
}

std::string read_patch_blob(WireReader& r) {
  const std::int64_t len = r.i64();
  CRITTER_CHECK(len >= 0 && r.pos + static_cast<std::size_t>(len) <=
                                r.in.size(),
                "checkpoint increment: truncated patch blob");
  std::string out(r.in.data() + r.pos, static_cast<std::size_t>(len));
  r.pos += static_cast<std::size_t>(len);
  // Shape check only ("" / sparse / full snapshot payload); the chunk-level
  // validation happens when apply_increment splices and re-decodes.
  CRITTER_CHECK(out.empty() || core::is_sparse_payload(out) ||
                    out.front() == 'C',
                "checkpoint increment: patch blob is neither empty, sparse, "
                "nor a snapshot payload");
  return out;
}

/// Resolve one increment patch field against the base payload bytes.
std::string patch_bytes(const std::string& base, const std::string& patch) {
  if (patch.empty()) return base;  // unchanged
  if (core::is_sparse_payload(patch)) return core::apply_sparse_patch(base, patch);
  return patch;  // wholesale replacement (empty -> non-empty transitions)
}

core::StatSnapshot decode_or_empty(const std::string& bytes) {
  if (bytes.empty()) return {};
  return core::StatSnapshot::from_string(bytes);
}

}  // namespace

std::string serialize_increment(const CheckpointIncrement& inc) {
  WireWriter w;
  w.raw(kIncrementMagic, sizeof kIncrementMagic);
  w.i64(inc.base_seq);
  w.i64(inc.seq);
  w.i32(inc.batches);
  w.i32(inc.rounds);
  w.i32(inc.in_round);
  w.i32(inc.exchange_skips);
  w.i32(static_cast<std::int32_t>(inc.new_skipped.size()));
  for (const auto& [round, peer] : inc.new_skipped) {
    w.i32(round);
    w.i32(peer);
  }
  w.i32(static_cast<std::int32_t>(inc.new_told.size()));
  for (const ShardCheckpoint::ToldBatch& b : inc.new_told) {
    w.i32(static_cast<std::int32_t>(b.positions.size()));
    for (std::size_t k = 0; k < b.positions.size(); ++k) {
      w.i32(b.positions[k]);
      write_outcome(w, b.outcomes[k]);
    }
  }
  w.i32(static_cast<std::int32_t>(inc.dirty_totals.size()));
  for (const auto& [idx, t] : inc.dirty_totals) {
    w.i32(idx);
    write_totals(w, t);
  }
  w.u8(inc.has_exchange_state ? 1 : 0);
  write_patch_blob(w, inc.full_patch);
  if (inc.has_exchange_state) {
    write_patch_blob(w, inc.mark_patch);
    write_patch_blob(w, inc.own_patch);
  }
  return w.out;
}

CheckpointIncrement parse_increment(const std::string& payload,
                                    const tune::Study& study,
                                    const ShardRange& range) {
  WireReader r{payload};
  char magic[sizeof kIncrementMagic];
  r.raw(magic, sizeof magic);
  CRITTER_CHECK(std::memcmp(magic, kIncrementMagic, sizeof magic) == 0,
                "checkpoint increment: bad magic");
  CheckpointIncrement inc;
  inc.base_seq = r.i64();
  inc.seq = r.i64();
  inc.batches = r.i32();
  inc.rounds = r.i32();
  inc.in_round = r.i32();
  inc.exchange_skips = r.i32();
  CRITTER_CHECK(inc.base_seq >= 1 && inc.seq > inc.base_seq &&
                    inc.batches >= 0 && inc.rounds >= 0 && inc.in_round >= 0 &&
                    inc.exchange_skips >= 0,
                "checkpoint increment: implausible cursors");
  const std::int32_t nskips = r.i32();
  CRITTER_CHECK(nskips >= 0 && nskips <= inc.exchange_skips,
                "checkpoint increment: implausible skip list");
  inc.new_skipped.reserve(static_cast<std::size_t>(nskips));
  for (std::int32_t i = 0; i < nskips; ++i) {
    const std::int32_t round = r.i32();
    const std::int32_t peer = r.i32();
    CRITTER_CHECK(round >= 0 && peer >= 0 && peer != range.index,
                  "checkpoint increment: implausible skip entry");
    inc.new_skipped.emplace_back(round, peer);
  }
  const std::int32_t ntold = r.i32();
  CRITTER_CHECK(ntold >= 0 && ntold <= inc.batches,
                "checkpoint increment: implausible batch count");
  inc.new_told.resize(static_cast<std::size_t>(ntold));
  const int nconf = static_cast<int>(study.configs.size());
  for (std::int32_t b = 0; b < ntold; ++b) {
    const std::int32_t k = r.i32();
    CRITTER_CHECK(k > 0 && k <= nconf,
                  "checkpoint increment: implausible batch");
    ShardCheckpoint::ToldBatch& tb = inc.new_told[static_cast<std::size_t>(b)];
    tb.positions.resize(static_cast<std::size_t>(k));
    tb.outcomes.resize(static_cast<std::size_t>(k));
    for (std::int32_t j = 0; j < k; ++j) {
      const std::int32_t pos = r.i32();
      CRITTER_CHECK(pos >= range.begin && pos < range.end && pos < nconf &&
                        (j == 0 || tb.positions[j - 1] < pos),
                    "checkpoint increment: batch position outside the shard "
                    "range or out of order");
      tb.positions[static_cast<std::size_t>(j)] = pos;
      tb.outcomes[static_cast<std::size_t>(j)].config = study.configs[pos];
      read_outcome(r, tb.outcomes[static_cast<std::size_t>(j)],
                   "checkpoint increment");
    }
  }
  const std::int32_t ndirty = r.i32();
  const std::int32_t nrange = range.end - range.begin;
  CRITTER_CHECK(ndirty >= 0 && ndirty <= nrange,
                "checkpoint increment: implausible dirty-totals count");
  inc.dirty_totals.resize(static_cast<std::size_t>(ndirty));
  for (std::int32_t i = 0; i < ndirty; ++i) {
    const std::int32_t idx = r.i32();
    CRITTER_CHECK(idx >= 0 && idx < nrange &&
                      (i == 0 || inc.dirty_totals[i - 1].first < idx),
                  "checkpoint increment: dirty-totals index outside the "
                  "shard range or out of order");
    inc.dirty_totals[static_cast<std::size_t>(i)].first = idx;
    read_totals(r, inc.dirty_totals[static_cast<std::size_t>(i)].second);
  }
  inc.has_exchange_state = r.u8() != 0;
  inc.full_patch = read_patch_blob(r);
  if (inc.has_exchange_state) {
    inc.mark_patch = read_patch_blob(r);
    inc.own_patch = read_patch_blob(r);
  }
  CRITTER_CHECK(r.pos == payload.size(),
                "checkpoint increment: trailing garbage");
  return inc;
}

void apply_increment(ShardCheckpoint& ck, std::int64_t base_seq,
                     CheckpointIncrement&& inc) {
  CRITTER_CHECK(inc.base_seq == base_seq,
                "checkpoint increment: extends a different base checkpoint");
  CRITTER_CHECK(inc.seq == ck.seq + 1, "checkpoint increment: sequence gap");
  CRITTER_CHECK(inc.batches ==
                    ck.batches + static_cast<int>(inc.new_told.size()),
                "checkpoint increment: batch cursor does not add up");
  CRITTER_CHECK(inc.exchange_skips ==
                    ck.exchange_skips + static_cast<int>(inc.new_skipped.size()),
                "checkpoint increment: skip cursor does not add up");
  CRITTER_CHECK(inc.rounds >= ck.rounds,
                "checkpoint increment: round cursor went backwards");
  CRITTER_CHECK(inc.has_exchange_state == ck.has_exchange_state,
                "checkpoint increment: exchange-state flag mismatch");
  for (const auto& [idx, t] : inc.dirty_totals)
    CRITTER_CHECK(static_cast<std::size_t>(idx) < ck.totals.size(),
                  "checkpoint increment: dirty-totals index out of range");
  // Resolve every byte patch (and re-decode the results — which validates
  // each spliced payload chunk by chunk) before mutating anything, so a
  // patch that does not fit its base leaves `ck` untouched.
  std::string full_bytes = patch_bytes(ck.full_bytes, inc.full_patch);
  std::string mark_bytes, own_bytes;
  if (inc.has_exchange_state) {
    mark_bytes = patch_bytes(ck.mark_bytes, inc.mark_patch);
    own_bytes = patch_bytes(ck.own_bytes, inc.own_patch);
  }
  core::StatSnapshot full, mark, own;
  if (!inc.full_patch.empty()) full = decode_or_empty(full_bytes);
  if (!inc.mark_patch.empty()) mark = decode_or_empty(mark_bytes);
  if (!inc.own_patch.empty()) own = decode_or_empty(own_bytes);
  ck.seq = inc.seq;
  ck.batches = inc.batches;
  ck.rounds = inc.rounds;
  ck.in_round = inc.in_round;
  ck.exchange_skips = inc.exchange_skips;
  ck.skipped.insert(ck.skipped.end(), inc.new_skipped.begin(),
                    inc.new_skipped.end());
  for (ShardCheckpoint::ToldBatch& tb : inc.new_told)
    ck.told.push_back(std::move(tb));
  for (auto& [idx, t] : inc.dirty_totals)
    ck.totals[static_cast<std::size_t>(idx)] = t;
  ck.full_bytes = std::move(full_bytes);
  if (!inc.full_patch.empty()) ck.full = std::move(full);
  if (inc.has_exchange_state) {
    ck.mark_bytes = std::move(mark_bytes);
    ck.own_bytes = std::move(own_bytes);
    if (!inc.mark_patch.empty()) ck.mark = std::move(mark);
    if (!inc.own_patch.empty()) ck.own = std::move(own);
  }
}

std::string frame_log_record(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  const std::uint64_t len = payload.size();
  const std::uint64_t sum = util::fnv1a(payload.data(), payload.size());
  out.append(reinterpret_cast<const char*>(&len), 8);
  out.append(reinterpret_cast<const char*>(&sum), 8);
  out.append(payload);
  return out;
}

std::vector<std::string> scan_log_records(const std::string& blob) {
  std::vector<std::string> records;
  std::size_t pos = 0;
  while (blob.size() - pos >= 16) {
    std::uint64_t len = 0, sum = 0;
    std::memcpy(&len, blob.data() + pos, 8);
    std::memcpy(&sum, blob.data() + pos + 8, 8);
    if (len > blob.size() - pos - 16) break;  // torn append
    const char* p = blob.data() + pos + 16;
    if (util::fnv1a(p, static_cast<std::size_t>(len)) != sum) break;
    records.emplace_back(p, static_cast<std::size_t>(len));
    pos += 16 + static_cast<std::size_t>(len);
  }
  return records;
}

std::string checkpoint_slot_name(std::int64_t seq) {
  return (seq % 2 != 0) ? "ckpt_a.bin" : "ckpt_b.bin";
}

bool load_latest_checkpoint(const std::string& dir, const tune::Study& study,
                            const ShardRange& range, ShardCheckpoint* out,
                            std::int64_t* base_seq, std::string* base_slot) {
  bool found = false;
  for (const char* name : {"ckpt_a.bin", "ckpt_b.bin"}) {
    if (!core::published(dir, name)) continue;
    try {
      ShardCheckpoint c =
          parse_checkpoint(core::read_published(dir, name), study, range);
      if (!found || c.seq > out->seq) {
        *out = std::move(c);
        *base_slot = name;
        found = true;
      }
    } catch (const std::exception&) {
      // Torn or corrupt slot: fall back to the other one, or clean restart.
    }
  }
  if (!found) return false;
  *base_seq = out->seq;
  const std::string log_path = dir + "/ckpt_log.bin";
  if (core::file_exists(log_path)) {
    for (const std::string& payload :
         scan_log_records(core::read_file(log_path))) {
      try {
        apply_increment(*out, *base_seq,
                        parse_increment(payload, study, range));
      } catch (const std::exception&) {
        break;  // discontinuity (e.g. a log outliving its base): stop here
      }
    }
  }
  return true;
}

void discard_checkpoints(const std::string& dir) {
  for (const char* name : {"ckpt_a.bin", "ckpt_b.bin"}) {
    for (const char* suffix : {"", ".ok", ".tmp", ".ok.tmp"})
      std::remove((dir + "/" + name + suffix).c_str());
  }
  std::remove((dir + "/ckpt_log.bin").c_str());
}

}  // namespace critter::dist
