// Run-directory file protocol of the distributed sweep executors.
//
// Shard processes share nothing but a run directory.  Every artifact —
// exchange deltas, shard results — is published with the same two-step
// protocol on top of POSIX rename atomicity; the implementation lives in
// core/fsio.hpp (shared with the net blob store and the serve daemon's
// session journals), and this header re-exports it under the historical
// dist:: names so the executor code reads as before.
//
// DESIGN.md §8 documents the full directory layout and determinism rules.
#pragma once

#include "core/fsio.hpp"

namespace critter::dist {

using core::append_file;
using core::file_exists;
using core::make_dir;
using core::make_temp_dir;
using core::monotonic_s;
using core::publish_file;
using core::published;
using core::read_file;
using core::read_published;
using core::remove_dir_tree;
using core::sleep_ms;
using core::write_file;
using core::write_file_atomic;

}  // namespace critter::dist
