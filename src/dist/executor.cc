#include "dist/executor.hpp"

#include <algorithm>
#include <thread>

#include "dist/shard_session.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace critter::dist {

std::vector<ShardRange> partition_range(int begin, int end, int nshards) {
  CRITTER_CHECK(nshards >= 1, "sharded run needs at least one shard");
  CRITTER_CHECK(begin <= end, "sharded run range is inverted");
  std::vector<ShardRange> out;
  const int range_n = end - begin;
  for (int s = 0; s < nshards; ++s) {
    // Contiguous balanced partition; noise salts stay indexed by absolute
    // configuration index, so each shard reproduces exactly the samples
    // the unsharded sweep would draw for its range.
    const int lo = begin + static_cast<int>(
                               static_cast<std::int64_t>(range_n) * s / nshards);
    const int hi = begin + static_cast<int>(static_cast<std::int64_t>(range_n) *
                                            (s + 1) / nshards);
    if (lo >= hi) continue;
    out.push_back({static_cast<int>(out.size()), lo, hi});
  }
  return out;
}

// ---------------------------------------------------------------------------
// InProcessExecutor
// ---------------------------------------------------------------------------

namespace {

int shard_pool_threads(int nshards) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, hw > 0 ? std::min(nshards, hw) : nshards);
}

tune::TuneOptions range_options(const tune::TuneOptions& opt,
                                const ShardRange& r) {
  tune::TuneOptions shard_opt = opt;
  shard_opt.config_begin = r.begin;
  shard_opt.config_end = r.end;
  return shard_opt;
}

}  // namespace

ShardResult shard_result_from(const tune::TuneResult& r,
                              const ShardRange& sr) {
  ShardResult out;
  out.range = sr;
  out.outcomes.assign(r.per_config.begin() + sr.begin,
                      r.per_config.begin() + sr.end);
  out.totals.assign(r.per_config_totals.begin() + sr.begin,
                    r.per_config_totals.begin() + sr.end);
  out.mode = r.mode;
  out.strategy = r.strategy;
  out.effective_workers = r.effective_workers;
  out.batch = r.batch;
  out.fallback_reason = r.fallback_reason;
  out.evaluated = r.evaluated_configs;
  out.stats = r.stats;
  out.phases = r.phases;
  return out;
}

std::vector<ShardResult> InProcessExecutor::run(
    const tune::Study& study, const tune::TuneOptions& opt,
    const std::vector<ShardRange>& shards, const ExchangePolicy& exchange) {
  std::vector<ShardResult> results(shards.size());
  if (shards.empty()) return results;

  const bool exchanging = exchange.every > 0 && shards.size() > 1;
  if (!exchanging) {
    // Independent full sweeps — with sequential execution this is the
    // legacy merge_shards loop verbatim (bit-identity anchor).
    auto run_one = [&](int s) {
      results[s] =
          shard_result_from(run_study(study, range_options(opt, shards[s])),
                           shards[s]);
    };
    if (parallel_shards_ && shards.size() > 1) {
      util::ThreadPool pool(shard_pool_threads(static_cast<int>(shards.size())));
      pool.parallel_for(static_cast<int>(shards.size()), run_one);
    } else {
      for (int s = 0; s < static_cast<int>(shards.size()); ++s) run_one(s);
    }
    return results;
  }

  // Lockstep exchange rounds, the in-memory realization of the run-dir
  // protocol: each live shard runs `every` batches, every shard that ran
  // publishes its delta, then each shard still sweeping absorbs its peers'
  // round deltas in ascending shard order.  Deltas are all taken before
  // any absorption — exactly what concurrent worker processes see, since a
  // worker publishes before it reads its peers.
  const int n = static_cast<int>(shards.size());
  std::vector<std::unique_ptr<ShardSession>> sessions;
  sessions.reserve(shards.size());
  for (const ShardRange& sr : shards)
    sessions.push_back(
        std::make_unique<ShardSession>(study, range_options(opt, sr)));

  std::unique_ptr<util::ThreadPool> pool;
  if (parallel_shards_) pool = std::make_unique<util::ThreadPool>(
      shard_pool_threads(n));

  std::vector<int> ran(n, 0);
  while (true) {
    bool any_live = false;
    for (int s = 0; s < n; ++s) any_live = any_live || !sessions[s]->done();
    if (!any_live) break;

    auto segment = [&](int s) {
      ran[s] = sessions[s]->done() ? 0
                                   : sessions[s]->run_segment(exchange.every);
    };
    if (pool)
      pool->parallel_for(n, segment);
    else
      for (int s = 0; s < n; ++s) segment(s);

    std::vector<core::StatSnapshot> deltas(n);
    std::vector<bool> present(n, false);
    for (int s = 0; s < n; ++s)
      if (ran[s] > 0) {
        deltas[s] = sessions[s]->take_delta();
        present[s] = true;
      }
    for (int s = 0; s < n; ++s) {
      // A shard absorbs a round's peer deltas only while still sweeping: a
      // worker that finished mid-round publishes its trailing delta and
      // exits without reading peers (its result is already determined).
      if (ran[s] < exchange.every || sessions[s]->done()) continue;
      for (int p = 0; p < n; ++p)
        if (p != s && present[p]) sessions[s]->absorb(deltas[p]);
      sessions[s]->refresh_mark();
    }
  }

  for (int s = 0; s < n; ++s) results[s] = sessions[s]->result(shards[s]);
  return results;
}

// ---------------------------------------------------------------------------
// run_sharded: the executor-agnostic fold
// ---------------------------------------------------------------------------

tune::TuneResult run_sharded(const tune::Study& study,
                             const tune::TuneOptions& opt, int nshards,
                             ShardExecutor& exec,
                             const ExchangePolicy& exchange) {
  CRITTER_CHECK(nshards >= 1, "merge_shards needs at least one shard");
  const int nconf = static_cast<int>(study.configs.size());
  const int begin = std::clamp(opt.config_begin, 0, nconf);
  const int end =
      opt.config_end < 0 ? nconf : std::clamp(opt.config_end, begin, nconf);
  const std::vector<ShardRange> shards = partition_range(begin, end, nshards);

  tune::TuneResult out;
  out.per_config.resize(nconf);
  for (int i = 0; i < nconf; ++i) out.per_config[i].config = study.configs[i];
  out.per_config_totals.resize(nconf);
  out.shards = nshards;
  out.requested_workers = std::max(1, opt.workers);
  out.executor = exec.name();
  out.exchange_every = shards.size() > 1 ? std::max(exchange.every, 0) : 0;
  out.exchange_strict = exchange.strict;

  const std::vector<ShardResult> results =
      shards.empty() ? std::vector<ShardResult>{}
                     : exec.run(study, opt, shards, exchange);
  CRITTER_CHECK(results.size() == shards.size(),
                "executor returned a result per shard");

  bool first_shard = true;
  for (const ShardResult& r : results) {
    const ShardRange& sr = r.range;
    CRITTER_CHECK(r.outcomes.size() ==
                          static_cast<std::size_t>(sr.end - sr.begin) &&
                      r.totals.size() == r.outcomes.size(),
                  "shard result does not cover its range");
    for (int i = sr.begin; i < sr.end; ++i) {
      out.per_config[i] = r.outcomes[i - sr.begin];
      out.per_config_totals[i] = r.totals[i - sr.begin];
    }
    out.evaluated_configs += r.evaluated;
    out.exchange_rounds += r.exchange_rounds;
    out.exchange_bytes += r.exchange_bytes;
    out.exchange_skips += r.exchange_skips;
    // Phase times sum across shards: total CPU seconds per phase, the
    // attribution the examples print (not elapsed wall time).
    out.phases.ask += r.phases.ask;
    out.phases.evaluate += r.phases.evaluate;
    out.phases.tell += r.phases.tell;
    out.phases.exchange += r.phases.exchange;
    out.phases.checkpoint += r.phases.checkpoint;
    tune::ShardRecovery rec;
    rec.shard = sr.index;
    rec.retries = r.retries;
    rec.recovered = r.recovered;
    rec.degraded = r.degraded;
    rec.exchange_skips = r.exchange_skips;
    rec.checkpoints = r.checkpoints;
    rec.resumed_batches = r.resumed_batches;
    rec.last_failure = r.failure;
    out.shard_recovery.push_back(std::move(rec));
    if (first_shard) {
      out.mode = r.mode;
      out.strategy = r.strategy;
      out.effective_workers = r.effective_workers;
      out.batch = r.batch;
      out.fallback_reason = r.fallback_reason;
      out.stats = r.stats;
      first_shard = false;
    } else if (!r.stats.empty()) {
      // Deterministic fold in shard order (see core/stat_store.hpp's merge
      // contract): every shard's statistics are counted exactly once.
      if (out.stats.empty())
        out.stats = r.stats;
      else
        out.stats.merge(r.stats);
    }
  }
  // Reduce the aggregates in configuration order over the whole range, the
  // association an unsharded sweep uses — so an isolated sharded sweep's
  // aggregates are bit-identical to it, not merely equal to rounding.
  for (const tune::ConfigTotals& t : out.per_config_totals) {
    out.tuning_time += t.tuning_time;
    out.full_time += t.full_time;
    out.kernel_time += t.kernel_time;
    out.full_kernel_time += t.full_kernel_time;
  }
  return out;
}

tune::TuneResult run_sharded_named(const tune::Study& study,
                                   const tune::TuneOptions& opt, int nshards,
                                   const std::string& executor,
                                   const ExchangePolicy& exchange,
                                   const FaultPolicy& fault) {
  if (nshards <= 1) return run_study(study, opt);
  if (executor == "subprocess" || executor == "socket") {
    SubprocessOptions sopts;
    sopts.fault = fault;
    if (executor == "socket") sopts.transport = "socket";
    SubprocessExecutor exec(std::move(sopts));
    return run_sharded(study, opt, nshards, exec, exchange);
  }
  if (executor == "in-process") {
    InProcessExecutor exec(/*parallel_shards=*/true);
    return run_sharded(study, opt, nshards, exec, exchange);
  }
  CRITTER_CHECK(false, "unknown shard executor '" + executor +
                           "' (known: subprocess, socket, in-process)");
  return {};
}

}  // namespace critter::dist
