// Internal binary framing shared by the dist layer's file formats: the
// little string-backed writer/reader both the shard-result and the shard-
// checkpoint payloads use, plus the ConfigOutcome/ConfigTotals field codecs
// so the two formats serialize outcomes identically (a checkpointed outcome
// replayed through tell() must be bit-equal to the outcome a result file
// would carry).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "tune/tuner.hpp"
#include "util/check.hpp"

namespace critter::dist {

struct WireWriter {
  std::string out;
  void raw(const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(const std::string& s) {
    i32(static_cast<std::int32_t>(s.size()));
    raw(s.data(), s.size());
  }
};

struct WireReader {
  const std::string& in;
  std::size_t pos = 0;
  void raw(void* p, std::size_t n) {
    CRITTER_CHECK(pos + n <= in.size(), "dist wire: truncated payload");
    std::memcpy(p, in.data() + pos, n);
    pos += n;
  }
  std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
  std::int32_t i32() { std::int32_t v; raw(&v, 4); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, 8); return v; }
  double f64() { double v; raw(&v, 8); return v; }
  std::string str() {
    const std::int32_t n = i32();
    CRITTER_CHECK(n >= 0 && n <= (1 << 20), "dist wire: implausible string");
    std::string s(static_cast<std::size_t>(n), '\0');
    raw(s.data(), s.size());
    return s;
  }
};

/// Every outcome field except the configuration itself, which travels as
/// its absolute index (the reader rebinds it from its view of the study).
inline void write_outcome(WireWriter& w, const tune::ConfigOutcome& oc) {
  w.i32(oc.config.index);
  w.u8(oc.evaluated ? 1 : 0);
  w.u8(oc.pruned ? 1 : 0);
  w.f64(oc.true_time);
  w.f64(oc.pred_time);
  w.f64(oc.err);
  w.f64(oc.true_comp_time);
  w.f64(oc.pred_comp_time);
  w.f64(oc.comp_err);
  w.f64(oc.sel_wall);
  w.f64(oc.sel_kernel_time);
  w.i64(oc.executed);
  w.i64(oc.skipped);
  w.i32(oc.samples_used);
}

/// Fill `oc` (whose `config` the caller has already rebound); checks the
/// wire's configuration index against the rebound one.
inline void read_outcome(WireReader& r, tune::ConfigOutcome& oc,
                         const char* what) {
  const std::int32_t idx = r.i32();
  CRITTER_CHECK(idx == oc.config.index,
                std::string(what) +
                    ": configuration index mismatch — writer and reader "
                    "disagree about the study");
  oc.evaluated = r.u8() != 0;
  oc.pruned = r.u8() != 0;
  oc.true_time = r.f64();
  oc.pred_time = r.f64();
  oc.err = r.f64();
  oc.true_comp_time = r.f64();
  oc.pred_comp_time = r.f64();
  oc.comp_err = r.f64();
  oc.sel_wall = r.f64();
  oc.sel_kernel_time = r.f64();
  oc.executed = r.i64();
  oc.skipped = r.i64();
  oc.samples_used = r.i32();
}

inline void write_totals(WireWriter& w, const tune::ConfigTotals& t) {
  w.f64(t.tuning_time);
  w.f64(t.full_time);
  w.f64(t.kernel_time);
  w.f64(t.full_kernel_time);
}

inline void read_totals(WireReader& r, tune::ConfigTotals& t) {
  t.tuning_time = r.f64();
  t.full_time = r.f64();
  t.kernel_time = r.f64();
  t.full_kernel_time = r.f64();
}

}  // namespace critter::dist
