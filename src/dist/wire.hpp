// ConfigOutcome/ConfigTotals field codecs shared by the dist layer's file
// formats and the net layer's tuner protocol, so every format serializes
// outcomes identically (a checkpointed outcome replayed through tell(), a
// result-file outcome, and a daemon-told outcome must all be bit-equal).
// The writer/reader primitives themselves live in core/wire_codec.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "core/wire_codec.hpp"
#include "tune/tuner.hpp"
#include "util/check.hpp"

namespace critter::dist {

using core::WireReader;
using core::WireWriter;

/// Every outcome field except the configuration itself, which travels as
/// its absolute index (the reader rebinds it from its view of the study).
inline void write_outcome(WireWriter& w, const tune::ConfigOutcome& oc) {
  w.i32(oc.config.index);
  w.u8(oc.evaluated ? 1 : 0);
  w.u8(oc.pruned ? 1 : 0);
  w.f64(oc.true_time);
  w.f64(oc.pred_time);
  w.f64(oc.err);
  w.f64(oc.true_comp_time);
  w.f64(oc.pred_comp_time);
  w.f64(oc.comp_err);
  w.f64(oc.sel_wall);
  w.f64(oc.sel_kernel_time);
  w.i64(oc.executed);
  w.i64(oc.skipped);
  w.i32(oc.samples_used);
}

/// Fill `oc` (whose `config` the caller has already rebound); checks the
/// wire's configuration index against the rebound one.
inline void read_outcome(WireReader& r, tune::ConfigOutcome& oc,
                         const char* what) {
  const std::int32_t idx = r.i32();
  CRITTER_CHECK(idx == oc.config.index,
                std::string(what) +
                    ": configuration index mismatch — writer and reader "
                    "disagree about the study");
  oc.evaluated = r.u8() != 0;
  oc.pruned = r.u8() != 0;
  oc.true_time = r.f64();
  oc.pred_time = r.f64();
  oc.err = r.f64();
  oc.true_comp_time = r.f64();
  oc.pred_comp_time = r.f64();
  oc.comp_err = r.f64();
  oc.sel_wall = r.f64();
  oc.sel_kernel_time = r.f64();
  oc.executed = r.i64();
  oc.skipped = r.i64();
  oc.samples_used = r.i32();
}

inline void write_totals(WireWriter& w, const tune::ConfigTotals& t) {
  w.f64(t.tuning_time);
  w.f64(t.full_time);
  w.f64(t.kernel_time);
  w.f64(t.full_kernel_time);
}

inline void read_totals(WireReader& r, tune::ConfigTotals& t) {
  t.tuning_time = r.f64();
  t.full_time = r.f64();
  t.kernel_time = r.f64();
  t.full_kernel_time = r.f64();
}

}  // namespace critter::dist
