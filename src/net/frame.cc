#include "net/frame.hpp"

#include <cstring>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace critter::net {

namespace {

using util::fnv1a;

struct Header {
  std::uint32_t magic = 0;
  std::uint32_t verb = 0;
  std::uint64_t length = 0;
  std::uint64_t checksum = 0;
};

void pack_header(const Header& h, char* out) {
  std::memcpy(out + 0, &h.magic, 4);
  std::memcpy(out + 4, &h.verb, 4);
  std::memcpy(out + 8, &h.length, 8);
  std::memcpy(out + 16, &h.checksum, 8);
}

Header unpack_header(const char* in) {
  Header h;
  std::memcpy(&h.magic, in + 0, 4);
  std::memcpy(&h.verb, in + 4, 4);
  std::memcpy(&h.length, in + 8, 8);
  std::memcpy(&h.checksum, in + 16, 8);
  return h;
}

/// Header-only validation — everything checkable before touching (or
/// allocating for) the payload.
void check_header(const Header& h, std::uint64_t max_payload) {
  CRITTER_CHECK(h.magic == kFrameMagic,
                "net: bad frame magic — not a critter frame stream");
  CRITTER_CHECK(known_verb(h.verb),
                "net: unknown frame verb " + std::to_string(h.verb));
  CRITTER_CHECK(h.length <= max_payload,
                "net: frame payload of " + std::to_string(h.length) +
                    " bytes exceeds the " + std::to_string(max_payload) +
                    "-byte bound");
}

void check_payload(const Header& h, const std::string& payload) {
  CRITTER_CHECK(fnv1a(payload.data(), payload.size()) == h.checksum,
                "net: frame payload checksum mismatch (torn or corrupted "
                "frame)");
}

}  // namespace

bool known_verb(std::uint32_t verb) {
  switch (verb) {
    case kHello:
    case kOk:
    case kErr:
    case kBlobPut:
    case kBlobGet:
    case kBlobExists:
    case kBlobAppend:
    case kBlobRemove:
    case kBlobPublish:
    case kBlobPublished:
    case kBlobReadPublished:
    case kTuneOpen:
    case kTuneAsk:
    case kTuneTell:
    case kTuneExport:
    case kTuneImport:
    case kTuneStatus:
    case kTuneShutdown:
      return true;
    default:
      return false;
  }
}

std::string encode_frame(std::uint32_t verb, const std::string& payload) {
  Header h;
  h.magic = kFrameMagic;
  h.verb = verb;
  h.length = payload.size();
  h.checksum = fnv1a(payload.data(), payload.size());
  std::string out(kFrameHeaderBytes, '\0');
  pack_header(h, out.data());
  out += payload;
  return out;
}

std::size_t decode_frame(const std::string& bytes, Frame& out,
                         std::uint64_t max_payload) {
  CRITTER_CHECK(bytes.size() >= kFrameHeaderBytes,
                "net: truncated frame header (" +
                    std::to_string(bytes.size()) + " of " +
                    std::to_string(kFrameHeaderBytes) + " bytes)");
  const Header h = unpack_header(bytes.data());
  check_header(h, max_payload);
  CRITTER_CHECK(bytes.size() - kFrameHeaderBytes >= h.length,
                "net: truncated frame payload (" +
                    std::to_string(bytes.size() - kFrameHeaderBytes) +
                    " of " + std::to_string(h.length) + " bytes)");
  out.verb = h.verb;
  out.payload = bytes.substr(kFrameHeaderBytes,
                             static_cast<std::size_t>(h.length));
  check_payload(h, out.payload);
  return kFrameHeaderBytes + static_cast<std::size_t>(h.length);
}

void send_frame(Connection& conn, std::uint32_t verb,
                const std::string& payload, double deadline_s) {
  const std::string bytes = encode_frame(verb, payload);
  conn.send_all(bytes.data(), bytes.size(), deadline_s);
  note_frame_sent();
}

bool recv_frame_opt(Connection& conn, Frame& out, double deadline_s,
                    std::uint64_t max_payload) {
  char raw[kFrameHeaderBytes];
  if (!conn.recv_all_opt(raw, sizeof raw, deadline_s)) return false;
  const Header h = unpack_header(raw);
  check_header(h, max_payload);
  out.verb = h.verb;
  out.payload.resize(static_cast<std::size_t>(h.length));
  if (h.length > 0)
    conn.recv_all(out.payload.data(), out.payload.size(), deadline_s);
  check_payload(h, out.payload);
  note_frame_received();
  return true;
}

Frame recv_frame(Connection& conn, double deadline_s,
                 std::uint64_t max_payload) {
  Frame f;
  CRITTER_CHECK(recv_frame_opt(conn, f, deadline_s, max_payload),
                "net: peer closed connection before a frame");
  return f;
}

}  // namespace critter::net
