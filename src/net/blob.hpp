// The blob store: the shared-artifact surface of a distributed sweep,
// abstracted from the filesystem (DESIGN.md §12.2).
//
// A run directory is, to the protocol, just a keyed blob namespace with
// two write disciplines: plain puts (run.txt, heartbeats) and two-step
// publishes (deltas, results, abort markers) whose manifest stamps size +
// FNV so a reader never consumes a torn artifact.  `Store` captures
// exactly that surface; the dist executors are written against it, so the
// same worker loop runs over a local directory (DirStore), in-memory
// (MemStore, which also backs the TCP server), or across machines
// (BlobClient speaking frames to a BlobServer).  Keys are relative paths
// ("exchange/s0_r1.snap", "shard0/result.bin") — same layout everywhere.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace critter::net {

class Store {
 public:
  virtual ~Store() = default;
  /// Plain overwrite (atomic where the backend has a notion of tearing).
  virtual void put(const std::string& key, const std::string& content) = 0;
  /// Read a plain blob; throws if absent.
  virtual std::string get(const std::string& key) = 0;
  virtual bool exists(const std::string& key) = 0;
  /// Two-step publish: payload, then size/FNV manifest.
  virtual void publish(const std::string& key, const std::string& payload) = 0;
  /// True once `key`'s publish manifest is visible.
  virtual bool published(const std::string& key) = 0;
  /// Read a published payload, verifying the manifest; throws "stale
  /// manifest ..." on any mismatch, exactly like the run-directory reader.
  virtual std::string read_published(const std::string& key) = 0;
  /// Delete a blob and (if published) its manifest.  Removing an absent
  /// key is a no-op — the garbage-collection primitive (DESIGN.md §13):
  /// workers retire exchange-round deltas every peer has folded, so a
  /// long sweep's mailbox stays bounded by the live window, not its
  /// history.  Manifest goes first (mirror-image of publish): a reader
  /// that still sees one never finds a half-deleted payload "published".
  virtual void remove(const std::string& key) = 0;
};

/// A run directory as a Store — the historical layout, byte-for-byte.
class DirStore final : public Store {
 public:
  explicit DirStore(std::string root) : root_(std::move(root)) {}
  void put(const std::string& key, const std::string& content) override;
  std::string get(const std::string& key) override;
  bool exists(const std::string& key) override;
  void publish(const std::string& key, const std::string& payload) override;
  bool published(const std::string& key) override;
  std::string read_published(const std::string& key) override;
  void remove(const std::string& key) override;

 private:
  std::string root_;
};

/// Thread-safe in-memory Store; manifests are stored alongside payloads
/// and verified on read with the same core/fsio checks as on disk.
class MemStore final : public Store {
 public:
  void put(const std::string& key, const std::string& content) override;
  std::string get(const std::string& key) override;
  bool exists(const std::string& key) override;
  void publish(const std::string& key, const std::string& payload) override;
  bool published(const std::string& key) override;
  std::string read_published(const std::string& key) override;
  void remove(const std::string& key) override;

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::string> blobs_;
  std::unordered_map<std::string, std::string> manifests_;
};

/// Serves a Store over frames: one thread per connection, request/reply
/// (kBlob* in, kOk/kErr out).  Store exceptions travel back as kErr with
/// the original message, so a remote "stale manifest" reads identically
/// to a local one.
class BlobServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept loop.  The store must outlive the server.
  BlobServer(Store& store, int port = 0);
  ~BlobServer();
  int port() const { return port_; }
  /// Stop accepting, wake every connection thread, join all.  Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(Connection conn);

  Store& store_;
  std::unique_ptr<Listener> listener_;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::vector<std::thread> conn_threads_;
};

/// A Store whose backend is a BlobServer across a socket.  Thread-safe
/// (one in-flight request at a time).  `op_deadline_s` bounds every
/// request/reply pair; callers map it from the owning FaultPolicy phase.
class BlobClient final : public Store {
 public:
  BlobClient(const std::string& host, int port, double connect_deadline_s,
             double op_deadline_s);
  void put(const std::string& key, const std::string& content) override;
  std::string get(const std::string& key) override;
  bool exists(const std::string& key) override;
  void publish(const std::string& key, const std::string& payload) override;
  bool published(const std::string& key) override;
  std::string read_published(const std::string& key) override;
  void remove(const std::string& key) override;

 private:
  std::string request(std::uint32_t verb, const std::string& payload);

  std::mutex mu_;
  Connection conn_;
  double op_deadline_s_;
};

/// The service name BlobClient offers in its kHello (and BlobServer
/// requires) so a blob stream never cross-wires into another service.
inline constexpr const char* kBlobService = "critter-blob/1";

}  // namespace critter::net
