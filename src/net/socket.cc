#include "net/socket.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/fsio.hpp"
#include "util/check.hpp"

namespace critter::net {

namespace {

std::string errno_str() { return std::strerror(errno); }

// Wire accounting (socket.hpp): counted on completed transfers only — a
// transfer that throws mid-way tears its connection, so partial counts
// would meter traffic no layer above ever saw.
std::atomic<std::uint64_t> g_bytes_sent{0};
std::atomic<std::uint64_t> g_bytes_received{0};
std::atomic<std::uint64_t> g_frames_sent{0};
std::atomic<std::uint64_t> g_frames_received{0};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CRITTER_CHECK(flags >= 0, "net: fcntl(F_GETFL) failed: " + errno_str());
  CRITTER_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "net: fcntl(F_SETFL) failed: " + errno_str());
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Wait until `fd` is ready for `events` or `deadline` (absolute
/// monotonic_s time) passes; returns false on timeout.
bool wait_ready(int fd, short events, double deadline, const char* op) {
  for (;;) {
    const double left = deadline - core::monotonic_s();
    if (left <= 0.0) return false;
    pollfd pfd{fd, events, 0};
    const int ms = left * 1000.0 > 2e9 ? 2000000000
                                       : static_cast<int>(left * 1000.0) + 1;
    const int rc = ::poll(&pfd, 1, ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      CRITTER_CHECK(false,
                    std::string("net: poll failed during ") + op + ": " +
                        errno_str());
    }
    if (rc > 0) return true;
  }
}

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  CRITTER_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "net: not an IPv4 address: " + host);
  return addr;
}

}  // namespace

WireCounters wire_counters() {
  WireCounters c;
  c.bytes_sent = g_bytes_sent.load(std::memory_order_relaxed);
  c.bytes_received = g_bytes_received.load(std::memory_order_relaxed);
  c.frames_sent = g_frames_sent.load(std::memory_order_relaxed);
  c.frames_received = g_frames_received.load(std::memory_order_relaxed);
  return c;
}

void reset_wire_counters() {
  g_bytes_sent.store(0, std::memory_order_relaxed);
  g_bytes_received.store(0, std::memory_order_relaxed);
  g_frames_sent.store(0, std::memory_order_relaxed);
  g_frames_received.store(0, std::memory_order_relaxed);
}

void note_frame_sent() {
  g_frames_sent.fetch_add(1, std::memory_order_relaxed);
}

void note_frame_received() {
  g_frames_received.fetch_add(1, std::memory_order_relaxed);
}

Address parse_address(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  CRITTER_CHECK(colon != std::string::npos && colon > 0 &&
                    colon + 1 < spec.size(),
                "net: malformed address \"" + spec +
                    "\" — expected host:port");
  Address out;
  out.host = spec.substr(0, colon);
  const std::string port_s = spec.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_s.c_str(), &end, 10);
  CRITTER_CHECK(end != nullptr && *end == '\0' && port > 0 && port <= 65535,
                "net: malformed port in address \"" + spec + "\"");
  out.port = static_cast<int>(port);
  return out;
}

Connection::Connection(int fd) : fd_(fd) {
  if (fd_ >= 0) {
    set_nonblocking(fd_);
    set_nodelay(fd_);
  }
}

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Connection Connection::connect(const std::string& host, int port,
                               double deadline_s) {
  const double deadline = core::monotonic_s() + deadline_s;
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CRITTER_CHECK(fd >= 0, "net: socket() failed: " + errno_str());
  set_nonblocking(fd);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    const std::string why = errno_str();
    ::close(fd);
    CRITTER_CHECK(false, "net: connect to " + host + ":" +
                             std::to_string(port) + " failed: " + why);
  }
  if (rc != 0) {
    if (!wait_ready(fd, POLLOUT, deadline, "connect")) {
      ::close(fd);
      CRITTER_CHECK(false, "net: connect to " + host + ":" +
                               std::to_string(port) + " timed out after " +
                               std::to_string(deadline_s) + "s");
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      CRITTER_CHECK(false, "net: connect to " + host + ":" +
                               std::to_string(port) + " failed: " +
                               std::strerror(err));
    }
  }
  set_nodelay(fd);
  Connection conn;
  conn.fd_ = fd;
  return conn;
}

void Connection::send_all(const void* p, std::size_t n, double deadline_s) {
  CRITTER_CHECK(valid(), "net: send on closed connection");
  const double deadline = core::monotonic_s() + deadline_s;
  const char* cur = static_cast<const char*>(p);
  std::size_t left = n;
  while (left > 0) {
    const ssize_t k = ::send(fd_, cur, left, MSG_NOSIGNAL);
    if (k > 0) {
      cur += k;
      left -= static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      CRITTER_CHECK(wait_ready(fd_, POLLOUT, deadline, "send"),
                    "net: send timed out with " + std::to_string(left) +
                        " of " + std::to_string(n) + " bytes unsent");
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    CRITTER_CHECK(false, "net: send failed: " +
                             std::string(k < 0 ? errno_str()
                                               : "peer closed connection"));
  }
  g_bytes_sent.fetch_add(n, std::memory_order_relaxed);
}

bool Connection::recv_all_opt(void* p, std::size_t n, double deadline_s) {
  CRITTER_CHECK(valid(), "net: recv on closed connection");
  const double deadline = core::monotonic_s() + deadline_s;
  char* cur = static_cast<char*>(p);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd_, cur + got, n - got, 0);
    if (k > 0) {
      got += static_cast<std::size_t>(k);
      continue;
    }
    if (k == 0) {
      // Orderly close: a session-end signal at a message boundary, a torn
      // message anywhere else.
      CRITTER_CHECK(got == 0, "net: peer closed connection mid-message (" +
                                  std::to_string(got) + " of " +
                                  std::to_string(n) + " bytes received)");
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      CRITTER_CHECK(wait_ready(fd_, POLLIN, deadline, "recv"),
                    "net: recv timed out with " + std::to_string(got) +
                        " of " + std::to_string(n) + " bytes received");
      continue;
    }
    if (errno == EINTR) continue;
    CRITTER_CHECK(false, "net: recv failed: " + errno_str());
  }
  g_bytes_received.fetch_add(n, std::memory_order_relaxed);
  return true;
}

bool Connection::readable(double timeout_s) {
  CRITTER_CHECK(valid(), "net: readable() on closed connection");
  return wait_ready(fd_, POLLIN, core::monotonic_s() + timeout_s,
                    "readable");
}

void Connection::recv_all(void* p, std::size_t n, double deadline_s) {
  CRITTER_CHECK(recv_all_opt(p, n, deadline_s),
                "net: peer closed connection before a " + std::to_string(n) +
                    "-byte message");
}

Listener::Listener(int port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CRITTER_CHECK(fd_ >= 0, "net: socket() failed: " + errno_str());
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr("127.0.0.1", port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string why = errno_str();
    ::close(fd_);
    fd_ = -1;
    CRITTER_CHECK(false, "net: bind to 127.0.0.1:" + std::to_string(port) +
                             " failed: " + why);
  }
  CRITTER_CHECK(::listen(fd_, backlog) == 0,
                "net: listen failed: " + errno_str());
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  CRITTER_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                              &len) == 0,
                "net: getsockname failed: " + errno_str());
  port_ = ntohs(bound.sin_port);
  set_nonblocking(fd_);
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Connection Listener::accept(double timeout_s) {
  CRITTER_CHECK(valid(), "net: accept on closed listener");
  const double deadline = core::monotonic_s() + timeout_s;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Connection(fd);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_ready(fd_, POLLIN, deadline, "accept")) return Connection();
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    CRITTER_CHECK(false, "net: accept failed: " + errno_str());
  }
}

}  // namespace critter::net
