// Length-prefixed, FNV-checksummed frames — the one message shape every
// critter network service speaks (DESIGN.md §12.1):
//
//   [u32 magic "CRF1"][u32 verb][u64 payload length][u64 payload FNV-1a]
//   [payload bytes]
//
// The header is validated before the payload is read: wrong magic,
// unknown verb, or a length above the caller's bound rejects the frame
// without allocating, and a checksum mismatch after the body arrives
// rejects a torn or corrupted payload — the same stamp-then-verify
// discipline as the run-directory publish manifests (core/fsio.hpp), just
// inline in the stream.  Payload contents use core::WireWriter/WireReader,
// so outcomes and snapshots serialize bit-identically to the file formats.
//
// encode_frame/decode_frame are pure string transforms (what the fuzz
// tests chew on); send_frame/recv_frame bind them to a Connection with a
// per-operation deadline.
#pragma once

#include <cstdint>
#include <string>

#include "net/socket.hpp"

namespace critter::net {

inline constexpr std::uint32_t kFrameMagic = 0x31465243u;  // "CRF1"
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Hard upper bound on a payload; services pass tighter bounds where the
/// verb implies one.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

/// Every verb any critter service speaks, in one table so the decode
/// whitelist is the closed set (values are wire-stable; never renumber).
enum Verb : std::uint32_t {
  // Handshake + generic replies, shared by all services.
  kHello = 0x01,
  kOk = 0x02,
  kErr = 0x03,
  // Blob-store service (net/blob.hpp): the run-directory artifact surface.
  kBlobPut = 0x10,
  kBlobGet = 0x11,
  kBlobExists = 0x12,
  kBlobAppend = 0x13,
  kBlobRemove = 0x14,
  kBlobPublish = 0x15,
  kBlobPublished = 0x16,
  kBlobReadPublished = 0x17,
  // Tuner service (serve/protocol.hpp): ask/tell over the wire.
  kTuneOpen = 0x20,
  kTuneAsk = 0x21,
  kTuneTell = 0x22,
  kTuneExport = 0x23,
  kTuneImport = 0x24,
  kTuneStatus = 0x25,
  kTuneShutdown = 0x26,
};

struct Frame {
  std::uint32_t verb = 0;
  std::string payload;
};

/// True iff `verb` is one this build knows — the whitelist every decode
/// checks so a stray stream desyncs loudly instead of being interpreted.
bool known_verb(std::uint32_t verb);

std::string encode_frame(std::uint32_t verb, const std::string& payload);

/// Decode one frame from the front of `bytes`; returns the number of bytes
/// consumed.  CRITTER_CHECK-fails on truncation at any point, bad magic,
/// unknown verb, a declared length above `max_payload`, or a payload
/// checksum mismatch.
std::size_t decode_frame(const std::string& bytes, Frame& out,
                         std::uint64_t max_payload = kMaxFramePayload);

void send_frame(Connection& conn, std::uint32_t verb,
                const std::string& payload, double deadline_s);

/// Receive one frame; throws on timeout, mid-frame close, or any of the
/// decode_frame rejections.
Frame recv_frame(Connection& conn, double deadline_s,
                 std::uint64_t max_payload = kMaxFramePayload);

/// Like recv_frame, but an orderly peer close at a frame boundary returns
/// false (end of session) instead of throwing.
bool recv_frame_opt(Connection& conn, Frame& out, double deadline_s,
                    std::uint64_t max_payload = kMaxFramePayload);

}  // namespace critter::net
