// Blocking-socket layer of the network subsystem (DESIGN.md §12): a
// listener and a connection with per-operation deadlines, nothing more.
// Framing lives in net/frame.hpp, services (the blob store, the tuner
// daemon) on top of that.
//
// Deadlines are relative seconds per call, enforced with poll() over
// non-blocking descriptors — a slow or dead peer surfaces as a thrown
// timeout naming the operation, never a hung process (mirroring the dist
// layer's "throw, never hang" contract).  Callers map them from
// dist::FaultPolicy phases: connect/handshake from `startup_deadline_s`,
// steady-state request/response traffic from `progress_deadline_s`, and
// waits for a peer's artifact from `exchange_deadline_s`.
#pragma once

#include <cstddef>
#include <string>

namespace critter::net {

/// "host:port" -> (host, port); CRITTER_CHECK-fails on malformed input.
struct Address {
  std::string host;
  int port = 0;
};
Address parse_address(const std::string& spec);

/// One established stream connection (move-only; closes on destruction).
/// All I/O is all-or-nothing under a deadline: a partial transfer past the
/// deadline or a mid-message peer close throws.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd);
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connect to host:port within `deadline_s` seconds.
  static Connection connect(const std::string& host, int port,
                            double deadline_s);

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Send exactly `n` bytes before the deadline; throws on error/timeout.
  void send_all(const void* p, std::size_t n, double deadline_s);
  /// Receive exactly `n` bytes before the deadline; throws on
  /// error/timeout/mid-message close.
  void recv_all(void* p, std::size_t n, double deadline_s);
  /// Like recv_all, but an orderly peer close *before the first byte*
  /// returns false instead of throwing (the end-of-session signal at a
  /// message boundary).
  bool recv_all_opt(void* p, std::size_t n, double deadline_s);

  /// True once data (or a close) is ready to read, false if `timeout_s`
  /// elapses first — the slice a server loop polls between checks of its
  /// shutdown flag.
  bool readable(double timeout_s);

 private:
  int fd_ = -1;
};

/// Bound, listening TCP socket on 127.0.0.1 (port 0: kernel-assigned —
/// read the outcome from port()).
class Listener {
 public:
  explicit Listener(int port, int backlog = 64);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  void close();

  /// Accept one connection, waiting at most `timeout_s`; an invalid
  /// Connection means the timeout elapsed (poll again — this is how the
  /// serve daemon's accept loop observes its shutdown flag).
  Connection accept(double timeout_s);

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace critter::net
