// Blocking-socket layer of the network subsystem (DESIGN.md §12): a
// listener and a connection with per-operation deadlines, nothing more.
// Framing lives in net/frame.hpp, services (the blob store, the tuner
// daemon) on top of that.
//
// Deadlines are relative seconds per call, enforced with poll() over
// non-blocking descriptors — a slow or dead peer surfaces as a thrown
// timeout naming the operation, never a hung process (mirroring the dist
// layer's "throw, never hang" contract).  Callers map them from
// dist::FaultPolicy phases: connect/handshake from `startup_deadline_s`,
// steady-state request/response traffic from `progress_deadline_s`, and
// waits for a peer's artifact from `exchange_deadline_s`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace critter::net {

/// Process-wide wire accounting: every byte send_all() pushes and
/// recv_all()/recv_all_opt() drains, and every frame the frame codec
/// (net/frame.hpp) completes, land in one set of atomic counters — the
/// substrate for `tunectl status --wire`, the shard workers'
/// exchange-byte reporting, and the bench harness's bytes_per_tell /
/// bytes_per_exchange_round metrics (sparse transport made the payloads
/// worth metering, DESIGN.md §13).  Counters are monotonic within the
/// process and cheap (relaxed atomics on the transfer path);
/// reset_wire_counters() zeroes them for interval measurements.
struct WireCounters {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
};
WireCounters wire_counters();
void reset_wire_counters();
/// Frame-codec completion hooks (called by net/frame.cc only).
void note_frame_sent();
void note_frame_received();

/// "host:port" -> (host, port); CRITTER_CHECK-fails on malformed input.
struct Address {
  std::string host;
  int port = 0;
};
Address parse_address(const std::string& spec);

/// One established stream connection (move-only; closes on destruction).
/// All I/O is all-or-nothing under a deadline: a partial transfer past the
/// deadline or a mid-message peer close throws.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd);
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Connect to host:port within `deadline_s` seconds.
  static Connection connect(const std::string& host, int port,
                            double deadline_s);

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Send exactly `n` bytes before the deadline; throws on error/timeout.
  void send_all(const void* p, std::size_t n, double deadline_s);
  /// Receive exactly `n` bytes before the deadline; throws on
  /// error/timeout/mid-message close.
  void recv_all(void* p, std::size_t n, double deadline_s);
  /// Like recv_all, but an orderly peer close *before the first byte*
  /// returns false instead of throwing (the end-of-session signal at a
  /// message boundary).
  bool recv_all_opt(void* p, std::size_t n, double deadline_s);

  /// True once data (or a close) is ready to read, false if `timeout_s`
  /// elapses first — the slice a server loop polls between checks of its
  /// shutdown flag.
  bool readable(double timeout_s);

 private:
  int fd_ = -1;
};

/// Bound, listening TCP socket on 127.0.0.1 (port 0: kernel-assigned —
/// read the outcome from port()).
class Listener {
 public:
  explicit Listener(int port, int backlog = 64);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  void close();

  /// Accept one connection, waiting at most `timeout_s`; an invalid
  /// Connection means the timeout elapsed (poll again — this is how the
  /// serve daemon's accept loop observes its shutdown flag).
  Connection accept(double timeout_s);

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace critter::net
