#include "net/blob.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/fsio.hpp"
#include "core/wire_codec.hpp"
#include "util/check.hpp"

namespace critter::net {

namespace {

/// Frame payloads of the blob protocol are [str key] or [str key][str
/// content] on the way in, raw content (kOk) or a message (kErr) on the
/// way out, with exists/published answered as a single "0"/"1" byte.
std::string pack_key(const std::string& key) {
  core::WireWriter w;
  w.str(key);
  return w.out;
}

std::string pack_key_content(const std::string& key,
                             const std::string& content) {
  core::WireWriter w;
  w.str(key);
  w.str(content);
  return w.out;
}

/// Split "exchange/s0_r1.snap" under `root` into its directory and leaf
/// for the two-step publish helpers, creating intermediate directories
/// (EEXIST-tolerant) so a fresh DirStore works on an empty root.
std::pair<std::string, std::string> split_dir(const std::string& root,
                                              const std::string& key) {
  std::string dir = root;
  std::size_t start = 0;
  for (std::size_t pos = key.find('/'); pos != std::string::npos;
       pos = key.find('/', start)) {
    dir += "/" + key.substr(start, pos - start);
    core::make_dir(dir);
    start = pos + 1;
  }
  return {dir, key.substr(start)};
}

}  // namespace

void DirStore::put(const std::string& key, const std::string& content) {
  const auto [dir, name] = split_dir(root_, key);
  core::write_file_atomic(dir + "/" + name, content);
}

std::string DirStore::get(const std::string& key) {
  return core::read_file(root_ + "/" + key);
}

bool DirStore::exists(const std::string& key) {
  return core::file_exists(root_ + "/" + key);
}

void DirStore::publish(const std::string& key, const std::string& payload) {
  const auto [dir, name] = split_dir(root_, key);
  core::publish_file(dir, name, payload);
}

bool DirStore::published(const std::string& key) {
  return core::file_exists(root_ + "/" + key + ".ok");
}

std::string DirStore::read_published(const std::string& key) {
  const auto [dir, name] = split_dir(root_, key);
  return core::read_published(dir, name);
}

void DirStore::remove(const std::string& key) {
  // Manifest first, then payload (the publish order reversed): a reader
  // polling published() stops seeing the key before the payload can go
  // missing under it.  ENOENT is the idempotent no-op.
  std::remove((root_ + "/" + key + ".ok").c_str());
  std::remove((root_ + "/" + key).c_str());
}

void MemStore::put(const std::string& key, const std::string& content) {
  std::lock_guard<std::mutex> lk(mu_);
  blobs_[key] = content;
}

std::string MemStore::get(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = blobs_.find(key);
  CRITTER_CHECK(it != blobs_.end(), "cannot open " + key);
  return it->second;
}

bool MemStore::exists(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  return blobs_.count(key) != 0;
}

void MemStore::publish(const std::string& key, const std::string& payload) {
  std::lock_guard<std::mutex> lk(mu_);
  // Same order as on disk: payload first, manifest last, so a concurrent
  // reader that sees the manifest always finds a complete payload.
  blobs_[key] = payload;
  manifests_[key] = core::publish_manifest(payload);
}

bool MemStore::published(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  return manifests_.count(key) != 0;
}

std::string MemStore::read_published(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto mit = manifests_.find(key);
  CRITTER_CHECK(mit != manifests_.end(),
                "missing publish manifest " + key +
                    " — the artifact was never published");
  const auto bit = blobs_.find(key);
  CRITTER_CHECK(bit != blobs_.end(),
                "stale manifest " + key + ": payload is missing");
  core::check_publish_manifest(mit->second, bit->second, key);
  return bit->second;
}

void MemStore::remove(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  manifests_.erase(key);
  blobs_.erase(key);
}

BlobServer::BlobServer(Store& store, int port) : store_(store) {
  listener_ = std::make_unique<Listener>(port);
  port_ = listener_->port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

BlobServer::~BlobServer() { stop(); }

void BlobServer::stop() {
  if (stop_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_->close();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(threads_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
}

void BlobServer::accept_loop() {
  while (!stop_.load()) {
    Connection conn = listener_->accept(0.1);
    if (!conn.valid()) continue;
    std::lock_guard<std::mutex> lk(threads_mu_);
    conn_threads_.emplace_back(
        [this, c = std::move(conn)]() mutable { serve_connection(std::move(c)); });
  }
}

void BlobServer::serve_connection(Connection conn) {
  try {
    // Handshake first: refuse streams meant for another service.
    const Frame hello = recv_frame(conn, 10.0);
    if (hello.verb != kHello || hello.payload != kBlobService) {
      send_frame(conn, kErr, "blob server: bad handshake", 10.0);
      return;
    }
    send_frame(conn, kOk, "", 10.0);
    while (!stop_.load()) {
      if (!conn.readable(0.2)) continue;
      Frame req;
      if (!recv_frame_opt(conn, req, 30.0)) return;  // orderly client exit
      std::string reply;
      std::uint32_t verb = kOk;
      try {
        core::WireReader r{req.payload};
        const std::string key = r.str();
        switch (req.verb) {
          case kBlobPut:
            store_.put(key, r.str());
            break;
          case kBlobGet:
            reply = store_.get(key);
            break;
          case kBlobExists:
            reply = store_.exists(key) ? "1" : "0";
            break;
          case kBlobPublish:
            store_.publish(key, r.str());
            break;
          case kBlobPublished:
            reply = store_.published(key) ? "1" : "0";
            break;
          case kBlobReadPublished:
            reply = store_.read_published(key);
            break;
          case kBlobRemove:
            store_.remove(key);
            break;
          default:
            verb = kErr;
            reply = "blob server: verb " + std::to_string(req.verb) +
                    " is not a blob operation";
        }
      } catch (const std::exception& e) {
        verb = kErr;
        reply = e.what();
      }
      send_frame(conn, verb, reply, 30.0);
    }
  } catch (const std::exception&) {
    // A torn frame or timed-out peer kills this connection, not the
    // server; the dist layer's retry/degrade machinery owns recovery.
  }
}

BlobClient::BlobClient(const std::string& host, int port,
                       double connect_deadline_s, double op_deadline_s)
    : op_deadline_s_(op_deadline_s) {
  conn_ = Connection::connect(host, port, connect_deadline_s);
  send_frame(conn_, kHello, kBlobService, connect_deadline_s);
  const Frame ack = recv_frame(conn_, connect_deadline_s);
  CRITTER_CHECK(ack.verb == kOk,
                "net: blob handshake refused: " + ack.payload);
}

std::string BlobClient::request(std::uint32_t verb,
                                const std::string& payload) {
  std::lock_guard<std::mutex> lk(mu_);
  send_frame(conn_, verb, payload, op_deadline_s_);
  const Frame reply = recv_frame(conn_, op_deadline_s_);
  if (reply.verb == kErr) throw std::runtime_error(reply.payload);
  CRITTER_CHECK(reply.verb == kOk,
                "net: unexpected blob reply verb " +
                    std::to_string(reply.verb));
  return reply.payload;
}

void BlobClient::put(const std::string& key, const std::string& content) {
  request(kBlobPut, pack_key_content(key, content));
}

std::string BlobClient::get(const std::string& key) {
  return request(kBlobGet, pack_key(key));
}

bool BlobClient::exists(const std::string& key) {
  return request(kBlobExists, pack_key(key)) == "1";
}

void BlobClient::publish(const std::string& key, const std::string& payload) {
  request(kBlobPublish, pack_key_content(key, payload));
}

bool BlobClient::published(const std::string& key) {
  return request(kBlobPublished, pack_key(key)) == "1";
}

std::string BlobClient::read_published(const std::string& key) {
  return request(kBlobReadPublished, pack_key(key));
}

void BlobClient::remove(const std::string& key) {
  request(kBlobRemove, pack_key(key));
}

}  // namespace critter::net
