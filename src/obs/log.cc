#include "obs/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace critter::obs {

namespace {

std::atomic<int> g_forced{-1};

LogLevel parse_level(const char* s) {
  if (!s || !*s) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

void vlog(LogLevel level, const char* fmt, va_list ap) {
  if (!log_enabled(level)) return;
  char line[1024];
  int n = std::snprintf(line, sizeof line, "critter[%d] %s ",
                        static_cast<int>(::getpid()), level_tag(level));
  if (n < 0) return;
  int m = std::vsnprintf(line + n, sizeof line - static_cast<std::size_t>(n) -
                                       1,
                         fmt, ap);
  if (m < 0) return;
  n += m;
  if (n > static_cast<int>(sizeof line) - 2) n = sizeof line - 2;
  line[n++] = '\n';
  // One fwrite per line: interleaving fleets tear at line granularity
  // only.
  std::fwrite(line, 1, static_cast<std::size_t>(n), stderr);
}

}  // namespace

LogLevel log_level() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<LogLevel>(forced);
  // Parsed once; the environment does not change mid-process.
  static const LogLevel env_level = parse_level(std::getenv("CRITTER_LOG"));
  return env_level;
}

void log_force_level(LogLevel level) {
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log(LogLevel level, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  vlog(level, fmt, ap);
  va_end(ap);
}

void log_error(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  vlog(LogLevel::kError, fmt, ap);
  va_end(ap);
}

void log_warn(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  vlog(LogLevel::kWarn, fmt, ap);
  va_end(ap);
}

void log_info(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  vlog(LogLevel::kInfo, fmt, ap);
  va_end(ap);
}

void log_debug(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  vlog(LogLevel::kDebug, fmt, ap);
  va_end(ap);
}

}  // namespace critter::obs
