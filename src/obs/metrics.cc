#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "util/check.hpp"

namespace critter::obs {

namespace {

/// Exactly one of the pointers is set — the kind the name registered as.
struct Entry {
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry {
  std::mutex m;
  // Ordered map: snapshots iterate sorted by name with no extra sort.
  std::map<std::string, Entry> entries;
};

/// Leaked on purpose: metric references outlive every static destructor
/// (atexit trace flushes and worker teardown may still bump counters).
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<const char*> g_phase{"idle"};

/// Shortest round-trip-safe decimal for doubles; integral values print
/// without a fraction so counters-as-gauges stay readable.
std::string num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  CRITTER_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must ascend");
}

void Histogram::observe(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

std::vector<double> latency_buckets_s() {
  // 1us, 4us, 16us, ... x4 per bucket up to ~68s: 13 bounds.
  std::vector<double> b;
  double v = 1e-6;
  for (int i = 0; i < 13; ++i, v *= 4.0) b.push_back(v);
  return b;
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  Entry& e = r.entries[name];
  if (!e.counter) {
    CRITTER_CHECK(!e.gauge && !e.histogram,
                  "metric '" + name + "' already registered as another kind");
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  Entry& e = r.entries[name];
  if (!e.gauge) {
    CRITTER_CHECK(!e.counter && !e.histogram,
                  "metric '" + name + "' already registered as another kind");
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& histogram(const std::string& name,
                     const std::vector<double>& bounds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  Entry& e = r.entries[name];
  if (!e.histogram) {
    CRITTER_CHECK(!e.counter && !e.gauge,
                  "metric '" + name + "' already registered as another kind");
    e.histogram = std::make_unique<Histogram>(bounds);
  }
  return *e.histogram;
}

std::string metrics_text() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  std::string out;
  for (const auto& [name, e] : r.entries) {
    if (e.counter) {
      out += name + " " + num(static_cast<double>(e.counter->value())) + "\n";
    } else if (e.gauge) {
      out += name + " " + num(e.gauge->value()) + "\n";
    } else if (e.histogram) {
      out += name + ".count " +
             num(static_cast<double>(e.histogram->count())) + "\n";
      out += name + ".sum " + num(e.histogram->sum()) + "\n";
    }
  }
  return out;
}

std::string metrics_json() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  std::string counters, gauges, histograms;
  for (const auto& [name, e] : r.entries) {
    if (e.counter) {
      if (!counters.empty()) counters += ",";
      counters += quote(name) + ":" +
                  num(static_cast<double>(e.counter->value()));
    } else if (e.gauge) {
      if (!gauges.empty()) gauges += ",";
      gauges += quote(name) + ":" + num(e.gauge->value());
    } else if (e.histogram) {
      if (!histograms.empty()) histograms += ",";
      std::string buckets;
      const std::vector<double>& bounds = e.histogram->bounds();
      const std::vector<std::uint64_t> counts = e.histogram->bucket_counts();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (!buckets.empty()) buckets += ",";
        const std::string bound =
            i < bounds.size() ? num(bounds[i]) : std::string("\"inf\"");
        buckets += "[" + bound + "," +
                   num(static_cast<double>(counts[i])) + "]";
      }
      histograms += quote(name) + ":{\"count\":" +
                    num(static_cast<double>(e.histogram->count())) +
                    ",\"sum\":" + num(e.histogram->sum()) +
                    ",\"buckets\":[" + buckets + "]}";
    }
  }
  return "{\"phase\":" + quote(current_phase()) + ",\"counters\":{" +
         counters + "},\"gauges\":{" + gauges + "},\"histograms\":{" +
         histograms + "}}";
}

std::string metrics_compact() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  std::string out;
  for (const auto& [name, e] : r.entries) {
    if (!out.empty()) out += " ";
    if (e.counter) {
      out += name + "=" + num(static_cast<double>(e.counter->value()));
    } else if (e.gauge) {
      out += name + "=" + num(e.gauge->value());
    } else if (e.histogram) {
      out += name + ".count=" + num(static_cast<double>(e.histogram->count()));
      out += " " + name + ".sum=" + num(e.histogram->sum());
    }
  }
  return out;
}

void metrics_reset_for_tests() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  r.entries.clear();
}

void set_phase(const char* phase) {
  g_phase.store(phase, std::memory_order_relaxed);
}

const char* current_phase() {
  return g_phase.load(std::memory_order_relaxed);
}

}  // namespace critter::obs
