#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/log.hpp"

namespace critter::obs {

namespace {

struct TraceEvent {
  const char* name;
  const char* cat;
  const char* arg_name;  ///< nullptr: no args object
  std::int64_t ts_us;
  std::int64_t dur_us;  ///< 'X' only
  std::uint64_t id;     ///< flow events only
  std::uint64_t arg;
  char ph;  ///< 'X', 'i', 's', 'f'
};

struct Ring {
  std::vector<TraceEvent> slots;
  std::uint64_t next = 0;  ///< monotonic write cursor (mod size = slot)
  int tid = 0;

  std::uint64_t dropped() const {
    return next > slots.size() ? next - slots.size() : 0;
  }
};

struct TraceState {
  std::mutex m;
  std::vector<std::unique_ptr<Ring>> rings;  ///< owned here, never freed
  int next_tid = 1;
  std::size_t capacity = 16384;
  bool env_path_written = false;
  bool atexit_installed = false;
};

/// Leaked: rings must survive static destruction (the atexit flush).
TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

// -1: follow the environment; 0/1: forced.
std::atomic<int> g_force{-1};
std::atomic<int> g_pid_override{-1};

bool env_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("CRITTER_TRACE");
    return v && *v && std::strcmp(v, "0") != 0;
  }();
  return on;
}

std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-anchored timestamp: steady intervals, wall alignment — concurrent
/// processes on one host merge onto one coherent timeline.
std::int64_t wall_anchor_us() {
  static const std::int64_t anchor = [] {
    const std::int64_t wall =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    return wall - steady_us();
  }();
  return anchor;
}

std::int64_t now_us() { return steady_us() + wall_anchor_us(); }

thread_local Ring* t_ring = nullptr;

Ring& ring() {
  if (t_ring) return *t_ring;
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  s.rings.push_back(std::make_unique<Ring>());
  Ring& r = *s.rings.back();
  r.slots.resize(std::max<std::size_t>(1, s.capacity));
  r.tid = s.next_tid++;
  t_ring = &r;
  if (!s.atexit_installed && !trace_env_path().empty()) {
    s.atexit_installed = true;
    std::atexit(trace_flush_env);
  }
  return r;
}

void emit(const TraceEvent& ev) {
  Ring& r = ring();
  r.slots[r.next % r.slots.size()] = ev;
  ++r.next;
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

void append_event_json(std::string& out, const TraceEvent& ev, int pid,
                       int tid) {
  char buf[256];
  out += "{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
         json_escape(ev.cat) + "\",\"ph\":\"";
  out += ev.ph;
  std::snprintf(buf, sizeof buf, "\",\"ts\":%lld,\"pid\":%d,\"tid\":%d",
                static_cast<long long>(ev.ts_us), pid, tid);
  out += buf;
  if (ev.ph == 'X') {
    std::snprintf(buf, sizeof buf, ",\"dur\":%lld",
                  static_cast<long long>(ev.dur_us));
    out += buf;
  }
  if (ev.ph == 'i') out += ",\"s\":\"t\"";
  if (ev.ph == 's' || ev.ph == 'f') {
    std::snprintf(buf, sizeof buf, ",\"id\":%llu",
                  static_cast<unsigned long long>(ev.id));
    out += buf;
    if (ev.ph == 'f') out += ",\"bp\":\"e\"";
  }
  if (ev.arg_name) {
    std::snprintf(buf, sizeof buf, ",\"args\":{\"%s\":%llu}", ev.arg_name,
                  static_cast<unsigned long long>(ev.arg));
    out += buf;
  }
  out += "}";
}

int export_pid() {
  const int o = g_pid_override.load(std::memory_order_relaxed);
  return o >= 0 ? o : static_cast<int>(::getpid());
}

/// The events array body of a chrome document produced by our own
/// exporter: everything between the first '[' and the last ']'.
std::string chrome_body(const std::string& doc) {
  const std::size_t open = doc.find('[');
  const std::size_t close = doc.rfind(']');
  if (open == std::string::npos || close == std::string::npos ||
      close <= open)
    return "";
  return doc.substr(open + 1, close - open - 1);
}

}  // namespace

bool trace_enabled() {
  const int f = g_force.load(std::memory_order_relaxed);
  if (f >= 0) return f != 0;
  return env_enabled();
}

void trace_force(bool on) {
  g_force.store(on ? 1 : 0, std::memory_order_relaxed);
}

void trace_unforce() { g_force.store(-1, std::memory_order_relaxed); }

std::string trace_env_path() {
  const char* v = std::getenv("CRITTER_TRACE");
  if (!v || !*v) return "";
  const std::string s = v;
  if (s.size() > 5 && s.compare(s.size() - 5, 5, ".json") == 0) return s;
  return "";
}

void trace_set_capacity(std::size_t events_per_thread) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  s.capacity = events_per_thread;
}

void trace_reset_for_tests() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  for (std::unique_ptr<Ring>& r : s.rings) {
    r->next = 0;
    r->slots.assign(std::max<std::size_t>(1, s.capacity), TraceEvent{});
  }
  s.env_path_written = false;
}

std::uint64_t trace_dropped() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  std::uint64_t total = 0;
  for (const std::unique_ptr<Ring>& r : s.rings) total += r->dropped();
  return total;
}

void trace_set_pid(int pid) {
  g_pid_override.store(pid, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, const char* cat,
                       const char* arg_name, std::uint64_t arg)
    : name_(name), cat_(cat), arg_name_(arg_name), arg_(arg) {
  if (!trace_enabled()) return;
  t0_us_ = now_us();
}

ScopedSpan::~ScopedSpan() {
  if (t0_us_ < 0) return;
  TraceEvent ev{};
  ev.name = name_;
  ev.cat = cat_;
  ev.arg_name = arg_name_;
  ev.ts_us = t0_us_;
  ev.dur_us = now_us() - t0_us_;
  ev.arg = arg_;
  ev.ph = 'X';
  emit(ev);
}

void trace_instant(const char* name, const char* cat, const char* arg_name,
                   std::uint64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent ev{};
  ev.name = name;
  ev.cat = cat;
  ev.arg_name = arg_name;
  ev.ts_us = now_us();
  ev.arg = arg;
  ev.ph = 'i';
  emit(ev);
}

void trace_flow(char ph, const char* name, const char* cat,
                std::uint64_t id) {
  if (!trace_enabled()) return;
  TraceEvent ev{};
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = now_us();
  ev.id = id;
  ev.ph = ph;
  emit(ev);
}

std::string trace_export_chrome() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.m);
  const int pid = export_pid();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const std::unique_ptr<Ring>& r : s.rings) {
    const std::size_t cap = r->slots.size();
    const std::uint64_t n = std::min<std::uint64_t>(r->next, cap);
    // Oldest-first: the cursor's slot is the oldest once wrapped.
    const std::uint64_t start = r->next > cap ? r->next % cap : 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!first) out += ",\n";
      first = false;
      append_event_json(out, r->slots[(start + i) % cap], pid, r->tid);
    }
  }
  out += "]}";
  return out;
}

bool trace_write_chrome(const std::string& path) {
  const std::string doc = trace_export_chrome();
  // Best-effort by contract: an unwritable trace path must never fail the
  // traced run (passivity), so no fsio CHECK-throwing writers here.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    log_warn("trace: cannot write %s", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok) log_warn("trace: short write to %s", path.c_str());
  return ok;
}

void trace_flush_env() {
  if (!trace_enabled()) return;
  const std::string path = trace_env_path();
  if (path.empty()) return;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.m);
    if (s.env_path_written) return;
    s.env_path_written = true;
  }
  trace_write_chrome(path);
}

std::string trace_merge_chrome(
    const std::vector<std::string>& docs,
    const std::vector<std::pair<int, std::string>>& process_names) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [pid, name] : process_names) {
    if (!first) out += ",\n";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof buf, "{\"name\":\"process_name\",\"ph\":\"M\","
                                   "\"pid\":%d,\"tid\":0,",
                  pid);
    out += buf;
    out += "\"args\":{\"name\":\"" + json_escape(name.c_str()) + "\"}}";
  }
  for (const std::string& doc : docs) {
    const std::string body = chrome_body(doc);
    if (body.find('{') == std::string::npos) continue;  // empty trace
    if (!first) out += ",\n";
    first = false;
    out += body;
  }
  out += "]}";
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.m);
    s.env_path_written = true;  // the merged file owns the env path now
  }
  return out;
}

}  // namespace critter::obs
