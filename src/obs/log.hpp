// Leveled diagnostics for every long-lived process in the tree (fleet
// launchers, shard workers, the tuner daemon): one line per event on
// stderr, filtered by CRITTER_LOG=error|warn|info|debug (default warn).
//
// Replaces the scattered fprintf(stderr, ...) calls the dist and serve
// layers grew — a fleet interleaves many processes on one stderr, so every
// line carries the pid and level, and each message is emitted with a
// single fwrite so concurrent processes cannot tear each other's lines.
//
// Logging is diagnostics, not data: nothing in the tree may branch on
// whether a line was emitted, and no test asserts on log output (the
// observability passivity rule, DESIGN.md §14).
#pragma once

#include <cstdarg>

namespace critter::obs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// The active level: parsed from CRITTER_LOG once, on first use.  Unknown
/// values fall back to the default (warn) — a typo must not silence
/// errors.
LogLevel log_level();

/// Test/tool override (takes precedence over the environment).
void log_force_level(LogLevel level);

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// printf-style emit; a no-op when `level` is filtered.  The formatted
/// line becomes "critter[<pid>] <LEVEL> <message>\n" written atomically.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void log_error(const char* fmt, ...);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void log_warn(const char* fmt, ...);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void log_info(const char* fmt, ...);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void log_debug(const char* fmt, ...);

}  // namespace critter::obs
