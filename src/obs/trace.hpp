// Low-overhead trace spans (DESIGN.md §14): thread-local fixed-capacity
// ring buffers of binary span records, drop-oldest on overflow, exported
// to Chrome trace-event JSON (load chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is compiled in always and gated at runtime by CRITTER_TRACE:
// unset (or "0") every emitter is a no-op behind one relaxed load — the
// Release events/s headline is gated in CI with tracing in exactly this
// state.  Set CRITTER_TRACE=1 to record, or CRITTER_TRACE=<file>.json to
// record and write the trace at process exit (the fleet launcher
// re-points each worker's environment at a per-shard file and merges them
// into one fleet timeline, exchange rounds linked as flow events).
//
// Records carry string *literals* by pointer (name/category/arg name must
// outlive the process); timestamps are wall-anchored microseconds so
// traces from concurrent processes on one host align when merged.
// Passivity rule: spans observe, they never steer — and the golden
// bit-identity fixtures run with CRITTER_TRACE=1 in CI to prove it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace critter::obs {

/// Runtime gate: CRITTER_TRACE set and not "0", unless forced.
bool trace_enabled();

/// Force the gate on/off regardless of the environment (bench A/B and
/// tests); trace_unforce() returns to the environment's verdict.
void trace_force(bool on);
void trace_unforce();

/// The CRITTER_TRACE value when it names a file ("...json"), else "".
std::string trace_env_path();

/// Capacity (events per thread) for rings created after the call — set
/// before the first emit on a thread (tests use tiny rings to exercise
/// overflow).  Default 16384.
void trace_set_capacity(std::size_t events_per_thread);

/// Drop every recorded event (tests); total drop-oldest casualties.
void trace_reset_for_tests();
std::uint64_t trace_dropped();

/// The pid recorded in exported events (fleet workers export under their
/// shard index so the merged timeline has stable process rows); -1 = the
/// real pid.
void trace_set_pid(int pid);

/// RAII complete-span ('X') emitter.  Costs one relaxed load when tracing
/// is disabled.  `arg_name`/`arg` attach one integer argument ("args"
/// in the JSON) when arg_name is non-null.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat,
                      const char* arg_name = nullptr, std::uint64_t arg = 0);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  const char* arg_name_;
  std::uint64_t arg_;
  std::int64_t t0_us_ = -1;  ///< -1: tracing was disabled at entry
};

/// Zero-duration instant event ('i', thread scope).
void trace_instant(const char* name, const char* cat,
                   const char* arg_name = nullptr, std::uint64_t arg = 0);

/// Flow events: 's' starts a flow, 'f' finishes it; both sides must use
/// the same (cat, id).  Emit inside an enclosing span on each side — the
/// viewer binds the arrow to the enclosing slice.
void trace_flow(char ph, const char* name, const char* cat, std::uint64_t id);

/// All threads' events as one Chrome trace-event document
/// {"traceEvents":[...]} in (tid, time) order.  Does not clear the rings.
std::string trace_export_chrome();

/// trace_export_chrome() to a file; false (with a warn log) on I/O error.
bool trace_write_chrome(const std::string& path);

/// Flush this process's events to trace_env_path() if tracing is enabled,
/// a path is configured, and no explicit flush/merge already wrote it.
/// Installed via atexit on first emit; harmless to call directly.
void trace_flush_env();

/// Merge full chrome documents (each as written by trace_write_chrome,
/// with per-document pids already distinct) into one document, prepending
/// process_name metadata from `process_names` (pid, name) pairs.  Used by
/// the fleet launcher; marks the env path as written so the atexit flush
/// does not clobber the merged file.
std::string trace_merge_chrome(
    const std::vector<std::string>& docs,
    const std::vector<std::pair<int, std::string>>& process_names);

}  // namespace critter::obs
