// Process-wide metrics registry (DESIGN.md §14): lock-free counters,
// gauges, and fixed-bucket histograms registered by dotted name
// ("subsystem.noun[.qualifier]"), snapshot-able to a stable text and JSON
// form.
//
// Registration takes a mutex (first use per name); every update after that
// is a relaxed atomic on a stable object — hot paths cache the returned
// reference (objects are never deleted, so references never dangle).
// Metrics are always on: there is no enable flag, because an update is one
// relaxed add.  The passivity rule applies: metrics observe execution,
// they never steer it — no simulation, tuning, or protocol decision may
// read one.
//
// Snapshot forms:
//   * metrics_text(): "name value" lines sorted by name, histograms
//     expanded to name.count / name.sum;
//   * metrics_json(): one stable JSON object, keys sorted — the same
//     schema `tunectl status --json` and the heartbeat snapshot embed;
//   * metrics_compact(): single-line "name=value ..." of the counters and
//     gauges only — small enough for per-batch heartbeat rewrites.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace critter::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed upper-bound buckets chosen at registration (first caller wins;
/// later registrations of the same name reuse the existing buckets).  The
/// observe path is one binary search plus two relaxed atomics — safe from
/// any thread.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts; index bounds_.size() is overflow.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential seconds-scale buckets 1us .. ~65s — the default for every
/// latency histogram in the tree so snapshots compare across subsystems.
std::vector<double> latency_buckets_s();

/// Look up (registering on first use) by name.  References are stable for
/// the process lifetime.  A name must keep one kind: re-registering it as
/// a different kind CRITTER_CHECK-fails.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     const std::vector<double>& bounds = latency_buckets_s());

/// "name value" per line, sorted by name.  Histograms expand to
/// "name.count N" and "name.sum S".
std::string metrics_text();

/// One JSON object, stable key order:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":N,"sum":S,
///                          "buckets":[[bound,count],...,["inf",count]]}}}
std::string metrics_json();

/// Single-line "name=value ..." of counters and gauges (histograms
/// collapse to name.count/name.sum) — the heartbeat form.
std::string metrics_compact();

/// Drop every registered metric (tests only — references obtained before
/// a reset dangle).
void metrics_reset_for_tests();

/// The process-wide current execution phase ("evaluate", "exchange",
/// "checkpoint", "resume", ...): a label for heartbeats and stall
/// diagnostics, set by the owning loop.  Values must be string literals
/// (stored by pointer).
void set_phase(const char* phase);
const char* current_phase();

}  // namespace critter::obs
