// Capital's communication-avoiding recursive Cholesky on a 3D processor
// grid (paper §V-A).
//
// The algorithm recursively factors A = L L^T and simultaneously builds
// L^{-1} via the triangular identity
//   [A11 A21^T; A21 A22] = [L11; L21 L22][L11^T L21^T; L22^T],
//   Linv = [L11inv; S21 L22inv],  S21 = -L22inv L21 L11inv.
// Matrix products use the classic 3D schedule: each layer owns the cyclic
// k-slice g = layer (mod c); the A-operand slab is broadcast along layer
// rows, the B-operand slab along layer columns, and partial C products are
// combined across the depth dimension (allreduce, or reduce+bcast, which
// surfaces both collectives in the kernel profile as the paper lists).
//
// The base case (block size b, chosen by the tuner) gathers the b x b block
// and factors it locally with potrf + a blocked triangular inversion
// (trtri + trmm), under one of three distribution strategies:
//   1  gather to one rank of layer 0, factor, scatter, broadcast over depth
//   2  allgather within every layer, factor redundantly everywhere
//   3  allgather within layer 0 only, factor there, broadcast over depth
//
// Divergences from the original Capital library (see DESIGN.md): both
// orientations of L and Linv are maintained so every 3D product is
// transpose-free; the transposes themselves use one pairwise exchange
// across the layer diagonal (adds send/recv kernels to the profile).
#pragma once

#include "capital/cyclic.hpp"

namespace critter::capital {

struct CholeskyConfig {
  int block_size = 64;    ///< base-case dimension b (multiple of grid c)
  int base_strategy = 1;  ///< 1, 2, or 3 (see above)
};

class Cholesky3D {
 public:
  /// `real` selects ExecMode-style storage: true allocates local matrix
  /// data (numerics verified in tests), false runs the schedule only.
  Cholesky3D(const Grid3D& g, int n, CholeskyConfig cfg, bool real);

  /// Factor the distributed SPD matrix in place; on return L() holds the
  /// lower-triangular factor and Linv() its inverse (both replicated-cyclic,
  /// valid in the lower triangle of the factored range).
  void factor(CyclicMatrix& a);

  CyclicMatrix& L() { return l_; }
  CyclicMatrix& Linv() { return ut_; }

 private:
  enum class DepthCombine { Allreduce, ReduceBcast };

  void recurse(int r0, int r1);
  void base_case(int r0, int r1);
  void factor_base_block(int bs, double* lblk, double* linv);

  /// C[range] = alpha * A[range] * B[range] + beta * C[range] via the 3D
  /// schedule.  If `syrk_diag`, diagonal layer-grid ranks use a local syrk.
  void gemm3d(CyclicMatrix& cm, int cr0, int cc0, const CyclicMatrix& am,
              int ar0, int ac0, const CyclicMatrix& bm, int br0, int bc0,
              int m, int n, int k, double alpha, double beta,
              bool syrk_diag, DepthCombine combine);

  /// dst[c-range, r-range] = src[r-range, c-range]^T via one pairwise
  /// exchange across the layer diagonal (local transpose on the diagonal).
  void transpose3d(const CyclicMatrix& src, int r0, int c0, CyclicMatrix& dst,
                   int rows, int cols);

  // share staging helpers (no-ops in model mode)
  void share_out(const CyclicMatrix& x, int r0, int c0, int rows, int cols,
                 double* dst) const;
  void share_in(CyclicMatrix& x, int r0, int c0, int rows, int cols,
                const double* src) const;

  const Grid3D& g_;
  int n_;
  CholeskyConfig cfg_;
  bool real_;
  CyclicMatrix* a_ = nullptr;
  CyclicMatrix l_, lt_, u_, ut_, w_;  // L, L^T, Linv^T, Linv, scratch
};

}  // namespace critter::capital
