// 3D processor grid and replicated-cyclic matrix distribution used by
// Capital's communication-avoiding Cholesky (paper §V-A).
//
// The grid is c x c x c with c = p^(1/3).  Every layer (fixed depth index)
// holds a full cyclic copy of each matrix: element (gi, gj) lives on the
// layer-grid position (gi mod c, gj mod c) of every layer.  Layer-local
// row/column communicators carry the slab broadcasts of the 3D products;
// the depth communicator carries the k-slice reduction and base-case
// replication.
//
// In ExecMode::Model no element storage is allocated — the schedule runs on
// byte counts alone.
#pragma once

#include <cstdint>
#include <optional>

#include "la/matrix.hpp"
#include "sim/api.hpp"

namespace critter::capital {

struct Grid3D {
  int c = 1;       ///< cube side: p = c^3
  int li = 0;      ///< my row coordinate within the layer grid
  int lj = 0;      ///< my column coordinate within the layer grid
  int layer = 0;   ///< my depth coordinate
  sim::Comm world{};
  sim::Comm layer_comm{};  ///< all ranks of my layer (c*c)
  sim::Comm row_comm{};    ///< fixed (layer, li), varying lj (size c)
  sim::Comm col_comm{};    ///< fixed (layer, lj), varying li (size c)
  sim::Comm depth_comm{};  ///< fixed (li, lj), varying layer (size c)

  /// Build the grid from the world communicator via intercepted splits.
  /// World rank r maps to (li, lj, layer) = (r % c, (r/c) % c, r / c^2).
  static Grid3D build(int c);
};

/// One rank's share of an n x n matrix in the replicated-cyclic layout.
class CyclicMatrix {
 public:
  CyclicMatrix() = default;
  /// `real` allocates local storage (ExecMode::Real); model mode passes
  /// false and all data pointers are null.
  CyclicMatrix(int n, const Grid3D& g, bool real);

  int n() const { return n_; }
  bool real() const { return static_cast<bool>(local_); }
  int local_dim() const { return nloc_; }

  /// Local storage (null in model mode): nloc x nloc column-major where
  /// local (a, b) is global (a*c + li, b*c + lj).
  double* data() { return local_ ? local_->data() : nullptr; }
  const double* data() const { return local_ ? local_->data() : nullptr; }

  double& at_local(int a, int b) { return (*local_)(a, b); }
  double at_global(int gi, int gj) const;  ///< valid only on the owner
  bool owns(int gi, int gj) const;

  /// Fill from a full replicated matrix (each rank copies its entries).
  void scatter_from_full(const la::Matrix& full);
  /// Gather the full matrix by combining all ranks of one layer
  /// (test/verification helper; collective over layer_comm).
  la::Matrix gather_full() const;

  /// Number of locally owned rows/cols of the global range [lo, hi) —
  /// indices g in the range with g % c == coord.
  int local_count(int lo, int hi, int coord) const;
  /// Bytes of the local share of an r x s global sub-block (upper bound,
  /// identical on all ranks, used for uniform collective payloads).
  static std::int64_t share_bytes(int rows, int cols, int c);

  const Grid3D* grid() const { return grid_; }

 private:
  int n_ = 0;
  int nloc_ = 0;
  const Grid3D* grid_ = nullptr;
  std::optional<la::Matrix> local_;
};

}  // namespace critter::capital
