#include "capital/cyclic.hpp"

#include "core/mpi.hpp"
#include "util/check.hpp"

namespace critter::capital {

Grid3D Grid3D::build(int c) {
  Grid3D g;
  g.c = c;
  g.world = sim::world();
  const int r = sim::world_rank();
  CRITTER_CHECK(sim::world_size() == c * c * c,
                "3D grid requires exactly c^3 ranks");
  g.li = r % c;
  g.lj = (r / c) % c;
  g.layer = r / (c * c);
  g.layer_comm = mpi::comm_split(g.world, g.layer, g.li + c * g.lj);
  g.row_comm = mpi::comm_split(g.world, g.layer * c + g.li, g.lj);
  g.col_comm = mpi::comm_split(g.world, g.layer * c + g.lj, g.li);
  g.depth_comm = mpi::comm_split(g.world, g.li + c * g.lj, g.layer);
  return g;
}

CyclicMatrix::CyclicMatrix(int n, const Grid3D& g, bool real)
    : n_(n), grid_(&g) {
  CRITTER_CHECK(n % g.c == 0, "matrix dimension must be divisible by c");
  nloc_ = n / g.c;
  if (real) local_.emplace(nloc_, nloc_);
}

bool CyclicMatrix::owns(int gi, int gj) const {
  return gi % grid_->c == grid_->li && gj % grid_->c == grid_->lj;
}

double CyclicMatrix::at_global(int gi, int gj) const {
  CRITTER_CHECK(owns(gi, gj), "element not owned by this rank");
  return (*local_)(gi / grid_->c, gj / grid_->c);
}

void CyclicMatrix::scatter_from_full(const la::Matrix& full) {
  CRITTER_CHECK(local_.has_value(), "scatter_from_full needs real storage");
  const int c = grid_->c;
  for (int b = 0; b < nloc_; ++b)
    for (int a = 0; a < nloc_; ++a)
      (*local_)(a, b) = full(a * c + grid_->li, b * c + grid_->lj);
}

la::Matrix CyclicMatrix::gather_full() const {
  CRITTER_CHECK(local_.has_value(), "gather_full needs real storage");
  const int c = grid_->c;
  // allgather local blocks across the layer; reassemble in cyclic order
  const int bytes = nloc_ * nloc_ * 8;
  std::vector<double> all(static_cast<std::size_t>(nloc_) * nloc_ * c * c);
  mpi::allgather(local_->data(), bytes, all.data(), grid_->layer_comm);
  la::Matrix full(n_, n_);
  // layer_comm local rank of (li, lj) is li + c*lj (split key above)
  for (int lj = 0; lj < c; ++lj)
    for (int li = 0; li < c; ++li) {
      const double* blk =
          all.data() + static_cast<std::size_t>(li + c * lj) * nloc_ * nloc_;
      for (int b = 0; b < nloc_; ++b)
        for (int a = 0; a < nloc_; ++a)
          full(a * c + li, b * c + lj) = blk[static_cast<std::size_t>(b) * nloc_ + a];
    }
  return full;
}

int CyclicMatrix::local_count(int lo, int hi, int coord) const {
  const int c = grid_->c;
  // count g in [lo, hi) with g % c == coord
  if (hi <= lo) return 0;
  const int first = lo + ((coord - lo) % c + c) % c;
  if (first >= hi) return 0;
  return (hi - 1 - first) / c + 1;
}

std::int64_t CyclicMatrix::share_bytes(int rows, int cols, int c) {
  const std::int64_t r = (rows + c - 1) / c;
  const std::int64_t s = (cols + c - 1) / c;
  return r * s * 8;
}

}  // namespace critter::capital
