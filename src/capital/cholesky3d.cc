#include "capital/cholesky3d.hpp"

#include <vector>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "util/check.hpp"

namespace critter::capital {

namespace {
constexpr std::uint64_t kCyclicToBlock = 0xC2B0;
constexpr std::uint64_t kBlockToCyclic = 0xB2C0;
constexpr std::uint64_t kLocalTranspose = 0x7A55;
}  // namespace

Cholesky3D::Cholesky3D(const Grid3D& g, int n, CholeskyConfig cfg, bool real)
    : g_(g), n_(n), cfg_(cfg), real_(real) {
  CRITTER_CHECK(cfg.block_size % g.c == 0,
                "base-case block size must be a multiple of the grid side");
  CRITTER_CHECK(n % cfg.block_size == 0,
                "matrix dimension must be a multiple of the block size");
  CRITTER_CHECK(cfg.base_strategy >= 1 && cfg.base_strategy <= 3,
                "base strategy in {1,2,3}");
  l_ = CyclicMatrix(n, g, real);
  lt_ = CyclicMatrix(n, g, real);
  u_ = CyclicMatrix(n, g, real);
  ut_ = CyclicMatrix(n, g, real);
  w_ = CyclicMatrix(n, g, real);
}

void Cholesky3D::factor(CyclicMatrix& a) {
  CRITTER_CHECK(a.n() == n_, "matrix size mismatch");
  CRITTER_CHECK(a.real() == real_, "storage mode mismatch");
  CRITTER_CHECK(real_ == (config().mode == ExecMode::Real),
                "storage mode must match the profiler's ExecMode");
  const int levels = n_ / cfg_.block_size;
  CRITTER_CHECK((levels & (levels - 1)) == 0,
                "n / block_size must be a power of two (recursive halving)");
  a_ = &a;
  recurse(0, n_);
  a_ = nullptr;
}

void Cholesky3D::recurse(int r0, int r1) {
  const int len = r1 - r0;
  if (len <= cfg_.block_size) {
    base_case(r0, r1);
    return;
  }
  const int mid = r0 + len / 2;
  const int h1 = mid - r0, h2 = r1 - mid;

  recurse(r0, mid);
  // L21 = A21 * L11inv^T = A21 * U11   (reduce+bcast combine surfaces the
  // reduce collective Capital's profile lists)
  gemm3d(l_, mid, r0, *a_, mid, r0, u_, r0, r0, h2, h1, h1, 1.0, 0.0,
         /*syrk_diag=*/false, DepthCombine::ReduceBcast);
  transpose3d(l_, mid, r0, lt_, h2, h1);
  // A22 -= L21 * L21^T (symmetric rank-k update)
  gemm3d(*a_, mid, mid, l_, mid, r0, lt_, r0, mid, h2, h2, h1, -1.0, 1.0,
         /*syrk_diag=*/true, DepthCombine::Allreduce);
  recurse(mid, r1);
  // S21 = -L22inv * L21 * L11inv = -(UT22 * L21) * UT11
  gemm3d(w_, mid, r0, ut_, mid, mid, l_, mid, r0, h2, h1, h2, 1.0, 0.0, false,
         DepthCombine::Allreduce);
  gemm3d(ut_, mid, r0, w_, mid, r0, ut_, r0, r0, h2, h1, h1, -1.0, 0.0, false,
         DepthCombine::Allreduce);
  transpose3d(ut_, mid, r0, u_, h2, h1);
}

void Cholesky3D::share_out(const CyclicMatrix& x, int r0, int c0, int rows,
                           int cols, double* dst) const {
  if (!real_ || dst == nullptr) return;
  const int c = g_.c;
  const int lr0 = r0 / c, lc0 = c0 / c, lr = rows / c, lc = cols / c;
  const double* src = x.data();
  const int ld = x.local_dim();
  for (int b = 0; b < lc; ++b)
    for (int a = 0; a < lr; ++a)
      dst[static_cast<std::size_t>(b) * lr + a] =
          src[static_cast<std::size_t>(lc0 + b) * ld + lr0 + a];
}

void Cholesky3D::share_in(CyclicMatrix& x, int r0, int c0, int rows, int cols,
                          const double* src) const {
  if (!real_ || src == nullptr) return;
  const int c = g_.c;
  const int lr0 = r0 / c, lc0 = c0 / c, lr = rows / c, lc = cols / c;
  double* dst = x.data();
  const int ld = x.local_dim();
  for (int b = 0; b < lc; ++b)
    for (int a = 0; a < lr; ++a)
      dst[static_cast<std::size_t>(lc0 + b) * ld + lr0 + a] =
          src[static_cast<std::size_t>(b) * lr + a];
}

void Cholesky3D::gemm3d(CyclicMatrix& cm, int cr0, int cc0,
                        const CyclicMatrix& am, int ar0, int ac0,
                        const CyclicMatrix& bm, int br0, int bc0, int m, int n,
                        int k, double alpha, double beta, bool syrk_diag,
                        DepthCombine combine) {
  const int c = g_.c;
  const int lm = m / c, ln = n / c, lk = k / c;

  // A slab: rows == li of [ar0, ar0+m), contraction columns in the cyclic
  // class g == layer — exactly the local share of layer-grid rank
  // (li, layer), broadcast along my row.
  std::vector<double> aslab(real_ ? static_cast<std::size_t>(lm) * lk : 0);
  if (g_.lj == g_.layer) share_out(am, ar0, ac0, m, k, aslab.data());
  mpi::bcast(real_ ? aslab.data() : nullptr, lm * lk * 8, g_.layer,
             g_.row_comm);

  // B slab: contraction rows in class g == layer, columns == lj — the
  // share of layer-grid rank (layer, lj), broadcast along my column.
  std::vector<double> bslab(real_ ? static_cast<std::size_t>(lk) * ln : 0);
  if (g_.li == g_.layer) share_out(bm, br0, bc0, k, n, bslab.data());
  mpi::bcast(real_ ? bslab.data() : nullptr, lk * ln * 8, g_.layer,
             g_.col_comm);

  // Local contraction of the two slabs into a partial C block.
  std::vector<double> part(real_ ? static_cast<std::size_t>(lm) * ln : 0);
  if (syrk_diag && g_.li == g_.lj) {
    // The two slabs hold transposed copies of the same data on diagonal
    // ranks of a symmetric update: use the syrk kernel, then mirror.
    blas::syrk(la::Uplo::Lower, la::Trans::N, lm, lk, 1.0,
               real_ ? aslab.data() : nullptr, lm, 0.0,
               real_ ? part.data() : nullptr, lm);
    if (real_)
      for (int j = 0; j < ln; ++j)
        for (int i = 0; i < j; ++i)
          part[static_cast<std::size_t>(j) * lm + i] =
              part[static_cast<std::size_t>(i) * lm + j];
  } else {
    blas::gemm(la::Trans::N, la::Trans::N, lm, ln, lk, 1.0,
               real_ ? aslab.data() : nullptr, lm,
               real_ ? bslab.data() : nullptr, lk, 0.0,
               real_ ? part.data() : nullptr, lm);
  }

  // Combine the c layers' k-slices.
  std::vector<double> sum(real_ ? static_cast<std::size_t>(lm) * ln : 0);
  if (combine == DepthCombine::Allreduce) {
    mpi::allreduce(real_ ? part.data() : nullptr,
                   real_ ? sum.data() : nullptr, lm * ln * 8,
                   sim::reduce_sum_double(), g_.depth_comm);
  } else {
    mpi::reduce(real_ ? part.data() : nullptr, real_ ? sum.data() : nullptr,
                lm * ln * 8, sim::reduce_sum_double(), 0, g_.depth_comm);
    mpi::bcast(real_ ? sum.data() : nullptr, lm * ln * 8, 0, g_.depth_comm);
  }

  // C[range] = alpha*sum + beta*C[range] (local).
  if (real_) {
    const int lr0 = cr0 / c, lc0 = cc0 / c;
    double* cd = cm.data();
    const int ld = cm.local_dim();
    for (int b = 0; b < ln; ++b)
      for (int a = 0; a < lm; ++a) {
        double& dst = cd[static_cast<std::size_t>(lc0 + b) * ld + lr0 + a];
        dst = alpha * sum[static_cast<std::size_t>(b) * lm + a] + beta * dst;
      }
  }
}

void Cholesky3D::transpose3d(const CyclicMatrix& src, int r0, int c0,
                             CyclicMatrix& dst, int rows, int cols) {
  const int c = g_.c;
  const int lr = rows / c, lc = cols / c;
  const std::int64_t bytes = static_cast<std::int64_t>(lr) * lc * 8;
  std::vector<double> mine(real_ ? static_cast<std::size_t>(lr) * lc : 0);
  share_out(src, r0, c0, rows, cols, mine.data());

  std::vector<double> theirs(real_ ? static_cast<std::size_t>(lc) * lr : 0);
  if (g_.li == g_.lj) {
    user_kernel(kLocalTranspose, lr, lc, static_cast<double>(lr) * lc, [&] {
      for (int b = 0; b < lc; ++b)
        for (int a = 0; a < lr; ++a)
          theirs[static_cast<std::size_t>(a) * lc + b] =
              mine[static_cast<std::size_t>(b) * lr + a];
    });
  } else {
    // partner at the mirrored layer-grid position, same layer
    const int partner = g_.lj + c * g_.li + c * c * g_.layer;
    mpi::send(real_ ? mine.data() : nullptr, static_cast<int>(bytes), partner,
              /*tag=*/17, g_.world);
    std::vector<double> recv_buf(real_ ? static_cast<std::size_t>(lc) * lr : 0);
    mpi::recv(real_ ? recv_buf.data() : nullptr, static_cast<int>(bytes),
              partner, 17, g_.world);
    // partner sent its (lc x lr)-shaped share of src == my dst^T share
    user_kernel(kLocalTranspose, lc, lr, static_cast<double>(lr) * lc, [&] {
      for (int b = 0; b < lr; ++b)
        for (int a = 0; a < lc; ++a)
          theirs[static_cast<std::size_t>(b) * lc + a] =
              recv_buf[static_cast<std::size_t>(a) * lc + b];
    });
  }
  share_in(dst, c0, r0, cols, rows, theirs.data());
}

void Cholesky3D::factor_base_block(int bs, double* lblk, double* linv) {
  lapack::potrf(la::Uplo::Lower, bs, lblk, bs);
  if (real_ && linv != nullptr) {
    // linv starts as a copy of L (lower triangle).
    for (int j = 0; j < bs; ++j)
      for (int i = 0; i < bs; ++i)
        linv[static_cast<std::size_t>(j) * bs + i] =
            (i >= j) ? lblk[static_cast<std::size_t>(j) * bs + i] : 0.0;
  }
  if (bs == 1) {
    lapack::trtri(la::Uplo::Lower, la::Diag::NonUnit, 1, linv, 1);
    return;
  }
  // Blocked inversion: invert the two diagonal halves, then the coupling
  // block S = -inv(L22) * L21 * inv(L11) via two trmm products.
  const int h = bs / 2, h2 = bs - h;
  double* l11 = linv;
  double* l21 = linv == nullptr ? nullptr : linv + h;
  double* l22 = linv == nullptr ? nullptr
                                : linv + static_cast<std::size_t>(h) * bs + h;
  lapack::trtri(la::Uplo::Lower, la::Diag::NonUnit, h, l11, bs);
  lapack::trtri(la::Uplo::Lower, la::Diag::NonUnit, h2, l22, bs);
  blas::trmm(la::Side::Left, la::Uplo::Lower, la::Trans::N, la::Diag::NonUnit,
             h2, h, -1.0, l22, bs, l21, bs);
  blas::trmm(la::Side::Right, la::Uplo::Lower, la::Trans::N, la::Diag::NonUnit,
             h2, h, 1.0, l11, bs, l21, bs);
}

void Cholesky3D::base_case(int r0, int r1) {
  const int c = g_.c;
  const int bs = r1 - r0;
  const int lsh = (bs / c) * (bs / c);
  const int sh_bytes = lsh * 8;

  std::vector<double> mine(real_ ? lsh : 0);
  share_out(*a_, r0, r0, bs, bs, mine.data());

  std::vector<double> lblk, linv;
  if (real_) {
    lblk.assign(static_cast<std::size_t>(bs) * bs, 0.0);
    linv.assign(static_cast<std::size_t>(bs) * bs, 0.0);
  }
  auto assemble = [&](const std::vector<double>& all) {
    // cyclic shares (layer-comm rank li + c*lj) -> dense bs x bs block
    user_kernel(kCyclicToBlock, bs, c, static_cast<double>(bs) * bs, [&] {
      for (int lj = 0; lj < c; ++lj)
        for (int li = 0; li < c; ++li) {
          const double* blk =
              all.data() + static_cast<std::size_t>(li + c * lj) * lsh;
          for (int b = 0; b < bs / c; ++b)
            for (int a = 0; a < bs / c; ++a)
              lblk[static_cast<std::size_t>(b * c + lj) * bs + a * c + li] =
                  blk[static_cast<std::size_t>(b) * (bs / c) + a];
        }
    });
  };
  auto extract_share = [&](const std::vector<double>& full, int li, int lj,
                           double* out) {
    for (int b = 0; b < bs / c; ++b)
      for (int a = 0; a < bs / c; ++a)
        out[static_cast<std::size_t>(b) * (bs / c) + a] =
            full[static_cast<std::size_t>(b * c + lj) * bs + a * c + li];
  };

  std::vector<double> lshare(real_ ? lsh : 0), invshare(real_ ? lsh : 0);

  if (cfg_.base_strategy == 1) {
    // gather onto layer 0's root, factor, scatter, broadcast over depth
    if (g_.layer == 0) {
      const bool root = g_.li == 0 && g_.lj == 0;
      std::vector<double> all(real_ && root ? static_cast<std::size_t>(lsh) * c * c : 0);
      mpi::gather(real_ ? mine.data() : nullptr, sh_bytes,
                  real_ && root ? all.data() : nullptr, 0, g_.layer_comm);
      std::vector<double> lall(real_ && root ? all.size() : 0),
          iall(real_ && root ? all.size() : 0);
      if (root) {
        if (real_) assemble(all);
        factor_base_block(bs, real_ ? lblk.data() : nullptr,
                          real_ ? linv.data() : nullptr);
        user_kernel(kBlockToCyclic, bs, c, 2.0 * bs * bs, [&] {
          for (int lj = 0; lj < c; ++lj)
            for (int li = 0; li < c; ++li) {
              extract_share(lblk, li, lj,
                            lall.data() + static_cast<std::size_t>(li + c * lj) * lsh);
              extract_share(linv, li, lj,
                            iall.data() + static_cast<std::size_t>(li + c * lj) * lsh);
            }
        });
      }
      mpi::scatter(real_ && root ? lall.data() : nullptr, sh_bytes,
                   real_ ? lshare.data() : nullptr, 0, g_.layer_comm);
      mpi::scatter(real_ && root ? iall.data() : nullptr, sh_bytes,
                   real_ ? invshare.data() : nullptr, 0, g_.layer_comm);
    }
    mpi::bcast(real_ ? lshare.data() : nullptr, sh_bytes, 0, g_.depth_comm);
    mpi::bcast(real_ ? invshare.data() : nullptr, sh_bytes, 0, g_.depth_comm);
  } else if (cfg_.base_strategy == 2) {
    // allgather within every layer; factor redundantly everywhere
    std::vector<double> all(real_ ? static_cast<std::size_t>(lsh) * c * c : 0);
    mpi::allgather(real_ ? mine.data() : nullptr, sh_bytes,
                   real_ ? all.data() : nullptr, g_.layer_comm);
    if (real_) assemble(all);
    factor_base_block(bs, real_ ? lblk.data() : nullptr,
                      real_ ? linv.data() : nullptr);
    user_kernel(kBlockToCyclic, bs, c, 2.0 * bs * bs, [&] {
      extract_share(lblk, g_.li, g_.lj, lshare.data());
      extract_share(linv, g_.li, g_.lj, invshare.data());
    });
  } else {
    // strategy 3: allgather within layer 0 only; factor there; broadcast
    if (g_.layer == 0) {
      std::vector<double> all(real_ ? static_cast<std::size_t>(lsh) * c * c : 0);
      mpi::allgather(real_ ? mine.data() : nullptr, sh_bytes,
                     real_ ? all.data() : nullptr, g_.layer_comm);
      if (real_) assemble(all);
      factor_base_block(bs, real_ ? lblk.data() : nullptr,
                        real_ ? linv.data() : nullptr);
      user_kernel(kBlockToCyclic, bs, c, 2.0 * bs * bs, [&] {
        extract_share(lblk, g_.li, g_.lj, lshare.data());
        extract_share(linv, g_.li, g_.lj, invshare.data());
      });
    }
    mpi::bcast(real_ ? lshare.data() : nullptr, sh_bytes, 0, g_.depth_comm);
    mpi::bcast(real_ ? invshare.data() : nullptr, sh_bytes, 0, g_.depth_comm);
  }

  // Write the factored block into all four orientation stores.
  if (real_) {
    share_in(l_, r0, r0, bs, bs, lshare.data());
    share_in(ut_, r0, r0, bs, bs, invshare.data());
    // transposed shares: my (li,lj) share of X^T equals the (lj,li) share
    // of X; rebuild locally from the full block when available, otherwise
    // via the pairwise exchange.  The base-case block is small, so rebuild
    // from the replicated full block when we have it (strategies 2/3 on
    // layer 0) and fall back to transpose3d otherwise.
  }
  transpose3d(l_, r0, r0, lt_, bs, bs);
  transpose3d(ut_, r0, r0, u_, bs, bs);
}

}  // namespace critter::capital
