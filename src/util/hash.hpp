// FNV-1a over a byte range — the one checksum both file-format layers use
// (stat-snapshot rank chunks, run-directory publish manifests).  Not
// cryptographic: it guards against truncation, torn writes, and bit rot,
// not adversaries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace critter::util {

inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace critter::util
