// Deterministic counter-based random number generation.
//
// The simulator needs reproducible noise that depends only on logical
// identifiers (seed, kernel signature, rank, invocation count), never on
// scheduling order.  A counter-based generator (SplitMix64 over a mixed key)
// provides exactly that: hash the identifiers, get an i.i.d.-quality stream.
#pragma once

#include <cmath>
#include <cstdint>

namespace critter::util {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combine two 64-bit values into one (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Uniform double in [0, 1) from a 64-bit hash value.
inline double u01_from_bits(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Standard normal deviate generated from two independent keys
/// (Box–Muller; deterministic in the keys).
inline double normal_from_keys(std::uint64_t k1, std::uint64_t k2) {
  double u1 = u01_from_bits(mix64(k1));
  double u2 = u01_from_bits(mix64(k2));
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// Multiplicative lognormal noise factor with unit mean.
///
/// exp(sigma*Z - sigma^2/2) has E[.] = 1, so noisy costs are unbiased
/// around the analytic cost model.
inline double lognormal_factor(double sigma, std::uint64_t k1,
                               std::uint64_t k2) {
  if (sigma <= 0.0) return 1.0;
  const double z = normal_from_keys(k1, k2);
  return std::exp(sigma * z - 0.5 * sigma * sigma);
}

}  // namespace critter::util
