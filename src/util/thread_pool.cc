#include "util/thread_pool.hpp"

#include "util/check.hpp"

namespace critter::util {

ThreadPool::ThreadPool(int threads) {
  CRITTER_CHECK(threads >= 1, "thread pool needs at least one worker");
  queues_.reserve(threads);
  for (int i = 0; i < threads; ++i) queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(threads - 1);
  for (int i = 1; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::try_get(int self, int* out) {
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lk(own.m);
    if (!own.d.empty()) {
      *out = own.d.front();
      own.d.pop_front();
      return true;
    }
  }
  // Steal from a victim's back (the opposite end its owner pops from).
  const int w = size();
  for (int k = 1; k < w; ++k) {
    Queue& victim = *queues_[(self + k) % w];
    std::lock_guard<std::mutex> lk(victim.m);
    if (!victim.d.empty()) {
      *out = victim.d.back();
      victim.d.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(int idx) {
  // fn_ is stored (under m_) before any task of its job is enqueued, so a
  // worker that popped an index observes the matching function.
  const std::function<void(int)>& fn = *fn_.load(std::memory_order_acquire);
  try {
    fn(idx);
  } catch (...) {
    std::lock_guard<std::mutex> lk(m_);
    if (!error_) error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(m_);
  if (--pending_ == 0) done_cv_.notify_all();
}

void ThreadPool::worker_loop(int self) {
  std::uint64_t seen_job = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      work_cv_.wait(lk, [&] { return stop_ || job_id_ != seen_job; });
      if (stop_) return;
      seen_job = job_id_;
    }
    int idx;
    while (try_get(self, &idx)) run_task(idx);
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  {
    std::lock_guard<std::mutex> lk(m_);
    CRITTER_CHECK(pending_ == 0, "nested parallel_for is not supported");
    fn_.store(&fn, std::memory_order_release);
    pending_ = n;
    error_ = nullptr;
    for (int i = 0; i < n; ++i) {
      Queue& q = *queues_[i % queues_.size()];
      std::lock_guard<std::mutex> ql(q.m);
      q.d.push_back(i);
    }
    ++job_id_;
  }
  work_cv_.notify_all();

  // The caller is worker 0.
  int idx;
  while (try_get(0, &idx)) run_task(idx);

  std::unique_lock<std::mutex> lk(m_);
  done_cv_.wait(lk, [&] { return pending_ == 0; });
  fn_.store(nullptr, std::memory_order_release);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace critter::util
