#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace critter::util {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    CRITTER_CHECK(arg.rfind("--", 0) == 0, "expected --key[=value], got: " + arg);
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "1";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& dflt) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? dflt : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t dflt) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? dflt : std::stoll(it->second);
}

double Options::get_double(const std::string& key, double dflt) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? dflt : std::stod(it->second);
}

std::int64_t env_int(const char* name, std::int64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return std::stoll(v);
}

bool paper_scale() { return env_int("CRITTER_PAPER_SCALE", 0) != 0; }

}  // namespace critter::util
