#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace critter::util {

void Table::header(std::vector<std::string> cols) { header_ = std::move(cols); }

void Table::row(std::vector<std::string> cells) {
  CRITTER_CHECK(header_.empty() || cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

void Table::print() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
    std::printf("\n");
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
  }
  for (const auto& r : rows_) print_row(r);
  std::fflush(stdout);
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace critter::util
