// Open-addressed (linear-probe) hash map for hot lookup paths.
//
// Deliberately minimal: insert, find, clear — no per-key erase.  That
// restriction removes tombstones and keeps probes short, and it matches the
// engine's per-pair message tables and the profiler's per-run count tables,
// whose key populations only grow between clears.  Values live inline in
// the slot array, so probing is cache-friendly.  clear() is O(1): slots are
// tagged with a map version and stale slots read as empty.  operator[] may
// rehash, which invalidates pointers previously returned by find().
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace critter::util {

template <typename K, typename V, typename Hash>
class FlatMap {
 public:
  explicit FlatMap(std::size_t initial_capacity = 16) {
    std::size_t cap = 8;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Find-or-default-insert.  May rehash (grows at ~70% load).
  V& operator[](const K& key) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    Slot& s = slots_[probe(key)];
    if (s.tag != version_) {
      s.tag = version_;
      s.key = key;
      s.value = V{};
      ++size_;
    }
    return s.value;
  }

  /// Null if absent.  The pointer is valid until the next operator[].
  V* find(const K& key) {
    Slot& s = slots_[probe(key)];
    return s.tag == version_ ? &s.value : nullptr;
  }
  const V* find(const K& key) const {
    const Slot& s = slots_[probe(key)];
    return s.tag == version_ ? &s.value : nullptr;
  }

  /// O(1): bumps the version so every slot reads as empty.  Capacity (and
  /// any heap owned by stale values) is retained for reuse.
  void clear() {
    ++version_;
    size_ = 0;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_)
      if (s.tag == version_) f(s.key, s.value);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t count(const K& key) const { return find(key) != nullptr ? 1 : 0; }

 private:
  struct Slot {
    K key{};
    V value{};
    std::uint32_t tag = 0;  // slot is live iff tag == version_
  };

  std::size_t probe(const K& key) const {
    std::size_t i = Hash{}(key)&mask_;
    while (slots_[i].tag == version_ && !(slots_[i].key == key))
      i = (i + 1) & mask_;
    return i;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(old.size() * 2);
    mask_ = slots_.size() - 1;
    for (Slot& s : old) {
      if (s.tag != version_) continue;
      std::size_t i = Hash{}(s.key)&mask_;
      while (slots_[i].tag == version_) i = (i + 1) & mask_;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t version_ = 1;
};

/// Identity hasher for keys that are already high-quality hashes
/// (e.g. mix64 outputs used as kernel/channel ids).
struct IdentityHash {
  std::size_t operator()(std::uint64_t v) const {
    return static_cast<std::size_t>(v);
  }
};

/// FIFO over a contiguous buffer: a vector plus a head index.  Unlike
/// std::deque it allocates nothing while empty (the engine keeps one per
/// (comm, dst, src, tag) key, almost all of which are empty at any moment)
/// and compacts to offset zero whenever it drains.
template <typename T>
class Fifo {
 public:
  bool empty() const { return head_ == v_.size(); }
  std::size_t size() const { return v_.size() - head_; }

  void push_back(T x) {
    if (head_ == v_.size() && head_ != 0) {
      v_.clear();
      head_ = 0;
    }
    v_.push_back(std::move(x));
  }

  T& front() { return v_[head_]; }

  void pop_front() {
    ++head_;
    if (head_ == v_.size()) {
      v_.clear();
      head_ = 0;
    }
  }

 private:
  std::vector<T> v_;
  std::size_t head_ = 0;
};

}  // namespace critter::util
