// Fixed-width console tables and CSV emission for the benchmark harness.
//
// Every bench binary prints the rows/series of the corresponding paper
// figure through this printer so output stays uniform and grep-able.
#pragma once

#include <string>
#include <vector>

namespace critter::util {

/// A simple column-aligned table.  Add a header once, then rows; `print`
/// pads every cell to the widest entry of its column.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void header(std::vector<std::string> cols);
  void row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 4);
  static std::string sci(double v, int precision = 3);

  /// Render to stdout.
  void print() const;
  /// Render as CSV (header + rows) to the returned string.
  std::string csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace critter::util
