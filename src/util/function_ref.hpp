// Non-owning callable reference: a {object pointer, trampoline} pair.
//
// The compute-kernel intercept path takes its "real work" continuation by
// callable; building a std::function there heap-allocates whenever the
// capture list exceeds the small-object buffer (every BLAS wrapper's does),
// and in ExecMode::Model the continuation is never even invoked.  A
// FunctionRef borrows the caller's lambda in place — two words, no
// allocation, a single indirect call when actually used.
//
// Lifetime rule: the referenced callable must outlive every invocation —
// i.e. pass temporaries only to functions that call (or drop) the ref
// before returning, which is exactly the intercept contract.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace critter::util {

class FunctionRef {
 public:
  FunctionRef() = default;
  FunctionRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_v<F&>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* o) { (*static_cast<std::remove_reference_t<F>*>(o))(); }) {}

  explicit operator bool() const { return call_ != nullptr; }
  void operator()() const { call_(obj_); }

 private:
  void* obj_ = nullptr;
  void (*call_)(void*) = nullptr;
};

}  // namespace critter::util
