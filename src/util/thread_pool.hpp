// Work-stealing thread pool for coarse-grained index tasks.
//
// Built for the tuner's sweep: a parallel_for over (configuration) indices
// whose tasks each run a whole simulated job (milliseconds to seconds), so
// queue operations are far off the critical path and a mutex per deque is
// plenty.  Indices are dealt round-robin to per-worker deques; a worker pops
// its own queue from the front and steals from a victim's back when empty,
// so imbalanced tasks migrate to idle workers.
//
// The calling thread participates as worker 0, so ThreadPool(n) gives
// exactly n concurrent executors while parallel_for runs.  Exceptions from
// tasks are captured and the first one is rethrown on the caller once all
// tasks finished.  Nested parallel_for is not supported.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace critter::util {

class ThreadPool {
 public:
  /// Spawns `threads - 1` OS threads (the caller is the remaining worker).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(queues_.size()); }

  /// Run fn(0) .. fn(n-1) across the pool; returns when all completed.
  void parallel_for(int n, const std::function<void(int)>& fn);

 private:
  struct Queue {
    std::mutex m;
    std::deque<int> d;
  };

  void worker_loop(int self);
  bool try_get(int self, int* out);
  void run_task(int idx);

  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::mutex m_;
  std::condition_variable work_cv_, done_cv_;
  std::atomic<const std::function<void(int)>*> fn_{nullptr};
  int pending_ = 0;
  std::uint64_t job_id_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace critter::util
