// Minimal command-line/environment option handling for examples & benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace critter::util {

/// Parses `--key=value` and bare `--flag` arguments.  Unrecognized
/// positional arguments are rejected so typos fail fast.
class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  double get_double(const std::string& key, double dflt) const;

 private:
  std::map<std::string, std::string> kv_;
};

/// Environment variable helpers (used for CRITTER_PAPER_SCALE etc.).
std::int64_t env_int(const char* name, std::int64_t dflt);
bool paper_scale();

}  // namespace critter::util
