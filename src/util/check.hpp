// Lightweight runtime checking used across the library.
//
// CRITTER_CHECK aborts the current operation with a std::runtime_error that
// carries the failing expression and a caller-supplied message.  It is always
// on (simulation correctness depends on these invariants); the hot paths it
// guards are dominated by cost-model arithmetic, not by the branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace critter::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: (" << expr << ")";
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace critter::util

#define CRITTER_CHECK(expr, ...)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::critter::util::check_failed(#expr, __FILE__, __LINE__,              \
                                    ::std::string(__VA_ARGS__));            \
    }                                                                       \
  } while (0)
