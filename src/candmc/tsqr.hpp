// TSQR panel factorization for CANDMC-style QR (paper §V-B).
//
// Stage A: each participating rank stacks its owned panel tiles and runs a
// local blocked geqrf.  Stage B: a binary reduction tree over the grid
// column combines b x b R factors with tpqrt (l = n, "triangular on
// triangular").  Stage C/D: the explicit orthonormal panel Q1 is rebuilt by
// a backward sweep (tpmqrt) plus a local ormqr — Q1 feeds the Householder
// reconstruction of the 2D algorithm.
//
// Alternatively the panel can be factored with CholeskyQR2 (the paper names
// it as a CANDMC panel option): two rounds of syrk + allreduce + potrf +
// trsm.  Both produce an explicit Q1 and R.
#pragma once

#include <cstdint>
#include <vector>

#include "slate/tile_matrix.hpp"

namespace critter::candmc {

enum class PanelKind : std::uint8_t { Tsqr, CholeskyQr2 };

/// Result of one panel factorization on a participating rank.
struct PanelResult {
  /// Explicit orthonormal panel slice: mloc x width, rows matching this
  /// rank's stacked panel-tile rows (empty/0 if no tiles owned).
  std::vector<double> q1;
  int mloc = 0;
  int width = 0;
  /// Final R (width x width, upper), valid on the root (owner of the
  /// diagonal tile) only.
  std::vector<double> r;
  bool is_root = false;
};

/// Factor panel column `t` of the block-cyclic matrix `a` (columns
/// [t*nb, t*nb + width)).  Collective over the grid column owning the
/// panel; ranks outside that grid column must not call it.
PanelResult panel_factor(slate::TileMatrix& a, int t, PanelKind kind);

}  // namespace critter::candmc
