#include "candmc/tsqr.hpp"

#include <cstring>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "util/check.hpp"

namespace critter::candmc {

namespace {

constexpr int kRTag = 1 << 16;
constexpr int kETag = 1 << 15;

/// Grid rows participating in panel t, ordered so participant 0 owns the
/// diagonal tile (t, t).
int participant_count(const slate::TileMatrix& a, int t) {
  return std::min(a.grid().pr, a.tile_rows_count() - t);
}
int participant_rank(const slate::TileMatrix& a, int t, int q) {
  const slate::Grid2D& g = a.grid();
  return g.rank_of(t + q, t);
}

/// Stack this rank's owned panel tiles (rows >= t) into a contiguous
/// column-major mloc x width buffer; returns mloc (>= width via padding).
int stack_panel(slate::TileMatrix& a, int t, int width,
                std::vector<double>* out) {
  int mloc = 0;
  for (int i = t; i < a.tile_rows_count(); ++i)
    if (a.mine(i, t)) mloc += a.tile_rows(i);
  const int padded = std::max(mloc, width);
  if (!a.real()) return padded;
  out->assign(static_cast<std::size_t>(padded) * width, 0.0);
  int r0 = 0;
  for (int i = t; i < a.tile_rows_count(); ++i) {
    if (!a.mine(i, t)) continue;
    const la::Matrix& tl = a.tile(i, t);
    for (int b = 0; b < width; ++b)
      for (int r = 0; r < tl.rows(); ++r)
        (*out)[static_cast<std::size_t>(b) * padded + r0 + r] = tl(r, b);
    r0 += tl.rows();
  }
  return padded;
}

PanelResult tsqr_panel(slate::TileMatrix& a, int t) {
  const slate::Grid2D& g = a.grid();
  const bool real = a.real();
  const int width = a.tile_cols(t);
  const int P = participant_count(a, t);
  // my participant index (grid-row distance from the diagonal tile's row)
  const int q = ((g.pi - (t % g.pr)) % g.pr + g.pr) % g.pr;
  CRITTER_CHECK(q < P || participant_count(a, t) == P,
                "tsqr called by a non-participant");

  PanelResult res;
  res.width = width;
  res.is_root = (q == 0);

  // --- stage A: local QR of the stacked panel ---------------------------
  std::vector<double> local;
  const int mloc = stack_panel(a, t, width, &local);
  res.mloc = mloc;
  std::vector<double> tau(real ? width : 0);
  lapack::geqrf(mloc, width, real ? local.data() : nullptr, mloc,
                real ? tau.data() : nullptr, width);

  // my current R (width x width upper)
  std::vector<double> rmine(real ? static_cast<std::size_t>(width) * width : 0);
  if (real)
    for (int b = 0; b < width; ++b)
      for (int r = 0; r <= b; ++r)
        rmine[static_cast<std::size_t>(b) * width + r] =
            local[static_cast<std::size_t>(b) * mloc + r];

  // --- stage B: binary reduction tree over participants -----------------
  struct Level {
    int gap;
    std::vector<double> v;  // transformed partner R (Householder tails)
    std::vector<double> tm;
  };
  std::vector<Level> levels;
  const int rbytes = width * width * 8;
  for (int gap = 1; gap < P; gap *= 2) {
    if (q % (2 * gap) == 0 && q + gap < P) {
      Level lv;
      lv.gap = gap;
      lv.v.assign(real ? static_cast<std::size_t>(width) * width : 0, 0.0);
      lv.tm.assign(real ? static_cast<std::size_t>(width) * width : 0, 0.0);
      mpi::recv(real ? lv.v.data() : nullptr, rbytes,
                participant_rank(a, t, q + gap), kRTag + gap, g.world);
      lapack::tpqrt(width, width, /*l=*/width,
                    real ? rmine.data() : nullptr, width,
                    real ? lv.v.data() : nullptr, width,
                    real ? lv.tm.data() : nullptr, width);
      levels.push_back(std::move(lv));
    } else if (q % (2 * gap) == gap) {
      mpi::Request rq = mpi::isend(real ? rmine.data() : nullptr, rbytes,
                                   participant_rank(a, t, q - gap),
                                   kRTag + gap, g.world);
      mpi::wait(rq);
      break;
    }
  }
  if (res.is_root) res.r = rmine;

  // --- stage C: backward sweep building the tree's explicit Q blocks ----
  // E starts as I_width at the root and propagates down the tree.
  std::vector<double> e(real ? static_cast<std::size_t>(width) * width : 0, 0.0);
  if (res.is_root && real)
    for (int d = 0; d < width; ++d) e[static_cast<std::size_t>(d) * width + d] = 1.0;
  // Receive my E from the partner that combined me (the lowest level at
  // which I was a sender), unless I am the root.
  if (!res.is_root) {
    int my_gap = 0;
    for (int gap = 1; gap < P; gap *= 2)
      if (q % (2 * gap) == gap) {
        my_gap = gap;
        break;
      }
    mpi::recv(real ? e.data() : nullptr, rbytes,
              participant_rank(a, t, q - my_gap), kETag + my_gap, g.world);
  }
  // Descend my own combine levels (highest gap first), emitting partner Es.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    std::vector<double> ebot(real ? static_cast<std::size_t>(width) * width : 0, 0.0);
    lapack::tpmqrt(la::Trans::N, width, width, width,
                   real ? it->v.data() : nullptr, width,
                   real ? it->tm.data() : nullptr, width,
                   real ? e.data() : nullptr, width,
                   real ? ebot.data() : nullptr, width);
    mpi::Request rq = mpi::isend(real ? ebot.data() : nullptr, rbytes,
                                 participant_rank(a, t, q + it->gap),
                                 kETag + it->gap, g.world);
    mpi::wait(rq);
  }

  // --- stage D: local Q1 slice = Q_loc * [E; 0] --------------------------
  res.q1.assign(real ? static_cast<std::size_t>(mloc) * width : 0, 0.0);
  if (real)
    for (int b = 0; b < width; ++b)
      for (int r = 0; r < width; ++r)
        res.q1[static_cast<std::size_t>(b) * mloc + r] =
            e[static_cast<std::size_t>(b) * width + r];
  lapack::ormqr(la::Side::Left, la::Trans::N, mloc, width,
                std::min(mloc, width), real ? local.data() : nullptr, mloc,
                real ? tau.data() : nullptr, real ? res.q1.data() : nullptr,
                mloc, width);
  return res;
}

PanelResult cqr2_panel(slate::TileMatrix& a, int t) {
  const slate::Grid2D& g = a.grid();
  const bool real = a.real();
  const int width = a.tile_cols(t);
  PanelResult res;
  res.width = width;
  res.is_root = a.mine(t, t);

  std::vector<double> q1;
  const int mloc = stack_panel(a, t, width, &q1);
  res.mloc = mloc;

  std::vector<double> r_accum(real ? static_cast<std::size_t>(width) * width : 0);
  const int wbytes = width * width * 8;
  for (int round = 0; round < 2; ++round) {
    std::vector<double> w(real ? static_cast<std::size_t>(width) * width : 0);
    blas::syrk(la::Uplo::Upper, la::Trans::T, width, mloc, 1.0,
               real ? q1.data() : nullptr, mloc, 0.0,
               real ? w.data() : nullptr, width);
    if (real)  // mirror for the allreduce (syrk fills one triangle)
      for (int b = 0; b < width; ++b)
        for (int r = b + 1; r < width; ++r)
          w[static_cast<std::size_t>(b) * width + r] =
              w[static_cast<std::size_t>(r) * width + b];
    std::vector<double> wsum(real ? w.size() : 0);
    mpi::allreduce(real ? w.data() : nullptr, real ? wsum.data() : nullptr,
                   wbytes, sim::reduce_sum_double(), g.col_comm);
    lapack::potrf(la::Uplo::Upper, width, real ? wsum.data() : nullptr, width);
    blas::trsm(la::Side::Right, la::Uplo::Upper, la::Trans::N,
               la::Diag::NonUnit, mloc, width, 1.0,
               real ? wsum.data() : nullptr, width,
               real ? q1.data() : nullptr, mloc);
    if (real) {
      if (round == 0) {
        r_accum = wsum;  // R1
      } else {
        // R = R2 * R1 (both upper triangular)
        blas::trmm(la::Side::Left, la::Uplo::Upper, la::Trans::N,
                   la::Diag::NonUnit, width, width, 1.0, wsum.data(), width,
                   r_accum.data(), width);
      }
    } else if (round == 1) {
      blas::trmm(la::Side::Left, la::Uplo::Upper, la::Trans::N,
                 la::Diag::NonUnit, width, width, 1.0, nullptr, width, nullptr,
                 width);
    }
  }
  res.q1 = std::move(q1);
  res.r = std::move(r_accum);
  return res;
}

}  // namespace

PanelResult panel_factor(slate::TileMatrix& a, int t, PanelKind kind) {
  return kind == PanelKind::Tsqr ? tsqr_panel(a, t) : cqr2_panel(a, t);
}

}  // namespace critter::candmc
