#include "candmc/qr2d.hpp"

#include <optional>
#include <vector>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "util/check.hpp"

namespace critter::candmc {

namespace {

constexpr std::uint64_t kLaswp = 0x1A59;

/// Rows of panel t stacked on grid row `pi` (without QR padding).
int real_mloc(const slate::TileMatrix& a, int t, int pi) {
  int m = 0;
  for (int i = t; i < a.tile_rows_count(); ++i)
    if (i % a.grid().pr == pi) m += a.tile_rows(i);
  return m;
}

}  // namespace

void qr2d(slate::TileMatrix& a, const QrConfig& cfg) {
  const slate::Grid2D& g = a.grid();
  const bool real = a.real();
  const int tr = a.tile_rows_count();
  const int tc = a.tile_cols_count();
  int panels = std::min(tr, tc);
  if (cfg.max_panels >= 0) panels = std::min(panels, cfg.max_panels);

  std::optional<PanelResult> cached;
  int cached_t = -1;

  // Pipelined Y distribution: with lookahead, the next panel's Y broadcast
  // is posted as a nonblocking ibcast right after the panel pre-factors, so
  // the payload is in flight while every rank processes the current phase's
  // trailing updates.
  struct PendingY {
    int t = -1;
    std::vector<double> y;
    mpi::Request req{};
    bool posted = false;
  } pend;

  // Build the local Y = Q1 - [I; 0] slice for panel t from a panel result.
  auto build_y = [&](const std::optional<PanelResult>& pres, int mloc,
                     int width, std::vector<double>* y) {
    y->assign(real ? static_cast<std::size_t>(std::max(mloc, 1)) * width : 0, 0.0);
    if (!real || !pres.has_value() || mloc == 0) return;
    for (int b = 0; b < width; ++b)
      for (int r = 0; r < mloc; ++r)
        (*y)[static_cast<std::size_t>(b) * mloc + r] =
            pres->q1[static_cast<std::size_t>(b) * pres->mloc + r];
    if (pres->is_root)
      for (int b = 0; b < width; ++b)
        (*y)[static_cast<std::size_t>(b) * mloc + b] -= 1.0;
  };

  auto run_panel = [&](int t) -> std::optional<PanelResult> {
    const int pcol = t % g.pc;
    const int prow = t % g.pr;
    if (g.pj != pcol) return std::nullopt;
    const int P = std::min(g.pr, tr - t);
    const int q = ((g.pi - prow) % g.pr + g.pr) % g.pr;
    if (cfg.panel == PanelKind::Tsqr && q >= P) return std::nullopt;
    return panel_factor(a, t, cfg.panel);
  };

  for (int t = 0; t < panels; ++t) {
    const int width = a.tile_cols(t);
    const int pcol = t % g.pc;
    const int prow = t % g.pr;
    const int mloc = real_mloc(a, t, g.pi);

    // --- panel factorization (possibly pre-run by the pipeline) ----------
    std::optional<PanelResult> pres;
    if (cached_t == t) {
      pres = std::move(cached);
      cached.reset();
      cached_t = -1;
    } else {
      pres = run_panel(t);
    }

    // Root writes R into tile (t, t).
    if (pres.has_value() && pres->is_root && real) {
      la::Matrix& tt = a.tile(t, t);
      for (int b = 0; b < width; ++b)
        for (int r = 0; r <= b; ++r)
          tt(r, b) = pres->r[static_cast<std::size_t>(b) * width + r];
    }

    // --- distribute Y along rows (pipelined or blocking) -----------------
    std::vector<double> y;
    if (pend.t == t) {
      y = std::move(pend.y);
      pend.t = -1;
      if (pend.posted) {
        mpi::wait(pend.req);
        pend.posted = false;
      }
    } else {
      build_y(pres, mloc, width, &y);
      if (mloc > 0)
        mpi::bcast(real ? y.data() : nullptr, mloc * width * 8, pcol,
                   g.row_comm);
    }

    // --- B1 (top block of Q1) along the root row, then down columns ------
    std::vector<double> b1(real ? static_cast<std::size_t>(width) * width : 0, 0.0);
    if (pres.has_value() && pres->is_root && real)
      for (int b = 0; b < width; ++b)
        for (int r = 0; r < width; ++r)
          b1[static_cast<std::size_t>(b) * width + r] =
              pres->q1[static_cast<std::size_t>(b) * pres->mloc + r];
    if (g.pi == prow)
      mpi::bcast(real ? b1.data() : nullptr, width * width * 8, pcol, g.row_comm);
    mpi::bcast(real ? b1.data() : nullptr, width * width * 8, prow, g.col_comm);

    // --- S = I - B1 factored once per rank (Yamamoto's T application) ----
    std::vector<double> s(real ? static_cast<std::size_t>(width) * width : 0);
    std::vector<int> ipiv(real ? width : 0);
    if (real) {
      for (int b = 0; b < width; ++b)
        for (int r = 0; r < width; ++r)
          s[static_cast<std::size_t>(b) * width + r] =
              (r == b ? 1.0 : 0.0) - b1[static_cast<std::size_t>(b) * width + r];
    }
    lapack::getrf(width, width, real ? s.data() : nullptr, width,
                  real ? ipiv.data() : nullptr);

    // Y row offsets per owned tile row (stacked ascending).
    std::vector<int> yoff(tr, -1);
    {
      int off = 0;
      for (int i = t; i < tr; ++i)
        if (i % g.pr == g.pi) {
          yoff[i] = off;
          off += a.tile_rows(i);
        }
    }

    // --- trailing update of one tile column ------------------------------
    auto update_columns = [&](const std::vector<int>& cols) {
      if (cols.empty()) return;
      int total_cols = 0;
      for (int j : cols) total_cols += a.tile_cols(j);
      // W1 = Y^T A for the selected columns (partial, then column-reduced)
      std::vector<double> w1(real ? static_cast<std::size_t>(width) * total_cols : 0,
                             0.0);
      int c0 = 0;
      for (int j : cols) {
        const int nc = a.tile_cols(j);
        for (int i = t; i < tr; ++i) {
          if (i % g.pr != g.pi) continue;
          blas::gemm(la::Trans::T, la::Trans::N, width, nc, a.tile_rows(i),
                     1.0, real ? y.data() + yoff[i] : nullptr, mloc,
                     a.tile_data(i, j), a.tile_rows(i), 1.0,
                     real ? w1.data() + static_cast<std::size_t>(c0) * width : nullptr,
                     width);
        }
        c0 += nc;
      }
      std::vector<double> w1sum(real ? w1.size() : 0);
      mpi::allreduce(real ? w1.data() : nullptr,
                     real ? w1sum.data() : nullptr,
                     width * total_cols * 8, sim::reduce_sum_double(),
                     g.col_comm);
      // W2 = S^{-1} W1 via the LU of S (row swaps + two triangular solves).
      user_kernel(kLaswp, width, total_cols, static_cast<double>(width) * total_cols,
                  [&] {
                    for (int r = 0; r < width; ++r) {
                      if (ipiv[r] == r) continue;
                      for (int cidx = 0; cidx < total_cols; ++cidx)
                        std::swap(w1sum[static_cast<std::size_t>(cidx) * width + r],
                                  w1sum[static_cast<std::size_t>(cidx) * width + ipiv[r]]);
                    }
                  });
      blas::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::N, la::Diag::Unit,
                 width, total_cols, 1.0, real ? s.data() : nullptr, width,
                 real ? w1sum.data() : nullptr, width);
      blas::trsm(la::Side::Left, la::Uplo::Upper, la::Trans::N,
                 la::Diag::NonUnit, width, total_cols, 1.0,
                 real ? s.data() : nullptr, width,
                 real ? w1sum.data() : nullptr, width);
      // A -= Y W2
      c0 = 0;
      for (int j : cols) {
        const int nc = a.tile_cols(j);
        for (int i = t; i < tr; ++i) {
          if (i % g.pr != g.pi) continue;
          blas::gemm(la::Trans::N, la::Trans::N, a.tile_rows(i), nc, width,
                     -1.0, real ? y.data() + yoff[i] : nullptr, mloc,
                     real ? w1sum.data() + static_cast<std::size_t>(c0) * width : nullptr,
                     width, 1.0, a.tile_data(i, j), a.tile_rows(i));
        }
        c0 += nc;
      }
    };

    // urgent column (the next panel) first, then the rest — the pipeline.
    std::vector<int> urgent, rest;
    for (int j = t + 1; j < tc; ++j) {
      if (j % g.pc != g.pj) continue;
      if (cfg.lookahead > 0 && j == t + 1) urgent.push_back(j);
      else rest.push_back(j);
    }
    update_columns(urgent);
    if (cfg.lookahead > 0 && t + 1 < panels) {
      std::optional<PanelResult> next = run_panel(t + 1);
      if (next.has_value()) {
        cached = std::move(next);
        cached_t = t + 1;
      }
      // Post the next panel's Y broadcast now; it is in flight during the
      // remaining trailing updates (the lookahead payoff).
      const int t2 = t + 1;
      const int width2 = a.tile_cols(t2);
      const int mloc2 = real_mloc(a, t2, g.pi);
      build_y(cached, mloc2, width2, &pend.y);
      if (mloc2 > 0) {
        pend.req = mpi::ibcast(real ? pend.y.data() : nullptr,
                               mloc2 * width2 * 8, t2 % g.pc, g.row_comm);
        pend.posted = true;
      }
      pend.t = t2;
    }
    update_columns(rest);
  }
}

}  // namespace critter::candmc
