// CANDMC-style pipelined 2D Householder QR (paper §V-B).
//
// Panels of width nb (the block size b) are factored with TSQR (or
// CholeskyQR2) on the owning grid column; the Householder representation
// Y, T with Q_panel = I - Y T Y^T is rebuilt from the explicit panel Q1 via
// Yamamoto's basis-kernel formula Y = Q1 - [I; 0], T = (I - B1)^{-T}
// (B1 the top b x b block of Q1), applied through an LU factorization of
// S = I - B1 — the same O(b^3) + O(m b^2) reconstruction cost shape as
// CANDMC's LU-based variant.  Trailing updates follow the paper's 2D
// schedule: Y broadcast along grid rows, W1 = Y^T A reduced along grid
// columns (urgent next-panel column first, the rest batched — this is the
// lookahead pipelining), W2 = T^T W1 via two trsm solves, then local gemms.
#pragma once

#include "candmc/tsqr.hpp"
#include "slate/tile_matrix.hpp"

namespace critter::candmc {

struct QrConfig {
  PanelKind panel = PanelKind::Tsqr;
  int lookahead = 1;   ///< 0 disables the urgent-column pipelining
  int max_panels = -1; ///< factor only the first k panel columns (-1: all)
};

/// Factor the m x n (m >= n) block-cyclic matrix in place: on return the
/// upper-triangular tiles hold R (panel columns' sub-diagonal tiles hold
/// Householder data).
void qr2d(slate::TileMatrix& a, const QrConfig& cfg);

}  // namespace critter::candmc
