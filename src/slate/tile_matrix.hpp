// 2D block-cyclic tile matrix shared by the SLATE-style and CANDMC-style
// algorithms (paper §V-A/B).
//
// Tiles of size nb x nb (ragged at the bottom/right edges) are distributed
// over a pr x pc grid: tile (I, J) lives on rank (I mod pr, J mod pc).
// Real mode materializes owned tiles as la::Matrix blocks; model mode
// tracks only shapes.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "la/matrix.hpp"
#include "sim/api.hpp"

namespace critter::slate {

struct Grid2D {
  int pr = 1, pc = 1;  ///< grid shape (pr * pc == world size)
  int pi = 0, pj = 0;  ///< my coordinates
  sim::Comm world{};
  sim::Comm row_comm{};  ///< fixed pi, varying pj
  sim::Comm col_comm{};  ///< fixed pj, varying pi

  /// Build from the world communicator; world rank r -> (r / pc, r % pc).
  static Grid2D build(int pr, int pc);

  int rank_of(int i, int j) const { return (i % pr) * pc + (j % pc); }
  int me() const { return pi * pc + pj; }
};

class TileMatrix {
 public:
  TileMatrix() = default;
  TileMatrix(int rows, int cols, int nb, const Grid2D& g, bool real);

  int rows() const { return m_; }
  int cols() const { return n_; }
  int nb() const { return nb_; }
  bool real() const { return real_; }
  int tile_rows_count() const { return (m_ + nb_ - 1) / nb_; }
  int tile_cols_count() const { return (n_ + nb_ - 1) / nb_; }
  int tile_rows(int ti) const;  ///< row count of tile row ti (ragged edge)
  int tile_cols(int tj) const;
  int owner(int ti, int tj) const { return g_->rank_of(ti, tj); }
  bool mine(int ti, int tj) const { return owner(ti, tj) == g_->me(); }
  const Grid2D& grid() const { return *g_; }

  /// Owned tile storage; creates the tile on first access (real mode).
  la::Matrix& tile(int ti, int tj);
  double* tile_data(int ti, int tj);  ///< null in model mode

  /// Initialize owned tiles from a full matrix / assemble the full matrix
  /// on every rank (test helpers; assemble is collective via allgather of
  /// padded tiles).
  void scatter_from_full(const la::Matrix& full);
  la::Matrix gather_full() const;

 private:
  int m_ = 0, n_ = 0, nb_ = 1;
  const Grid2D* g_ = nullptr;
  bool real_ = false;
  std::map<std::pair<int, int>, la::Matrix> tiles_;
};

}  // namespace critter::slate
