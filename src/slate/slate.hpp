// SLATE-style task-based dense factorizations on a 2D block-cyclic tile
// distribution (paper §V-A, §V-B).
//
// Both routines are right-looking tile algorithms whose inter-rank traffic
// uses nonblocking isend + blocking recv (the kernel mix the paper reports
// for SLATE).  Lookahead pipelining is modeled faithfully for the
// discrete-event execution: with depth d >= 1 the owner of the next panel
// pre-factors it (and launches its tile broadcasts) as soon as its own
// urgent updates complete, while other ranks are still processing trailing
// updates — shortening the critical path exactly the way SLATE's lookahead
// does.
#pragma once

#include "slate/tile_matrix.hpp"

namespace critter::slate {

struct PotrfConfig {
  int lookahead = 0;  ///< pipeline depth (paper tunes v % 2 in {0, 1})
};

/// Cholesky factorization of an SPD tile matrix (lower triangle); the
/// strictly-upper tiles are untouched.
void potrf(TileMatrix& a, const PotrfConfig& cfg);

struct GeqrfConfig {
  int panel_width = 8;  ///< internal blocking w of the panel factorization
  int lookahead = 0;
};

/// Householder QR via flat-tree tile QR (geqrt / tpqrt cascade down each
/// panel column, ormqr / tpmqrt updates).  On return the upper-triangular
/// tiles hold R; V/T factors are kept internally per panel for tests.
void geqrf(TileMatrix& a, const GeqrfConfig& cfg);

}  // namespace critter::slate
