#include <map>
#include <set>
#include <vector>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "slate/slate.hpp"
#include "util/check.hpp"

namespace critter::slate {

namespace {

int tile_tag(int ti, int tk, int t_total) {
  const int tag = ti * t_total + tk;
  CRITTER_CHECK(tag < (1 << 17), "tile tag exceeds internal tag space");
  return tag;
}
// Disjoint tag streams for the three message kinds of a QR phase.
int vt_tag(int ti, int tk, int t) { return tile_tag(ti, tk, t); }
int r_tag(int ti, int tk, int t) { return (1 << 17) + tile_tag(ti, tk, t); }
int top_tag(int ti, int tj, int t) { return (1 << 18) + tile_tag(ti, tj, t); }

}  // namespace

void geqrf(TileMatrix& a, const GeqrfConfig& cfg) {
  const Grid2D& g = a.grid();
  const int tr_count = a.tile_rows_count();
  const int tc_count = a.tile_cols_count();
  const int panels = std::min(tr_count, tc_count);
  const int me = g.me();
  const bool real = a.real();
  const int nb = a.nb();
  const int w = std::max(1, std::min(cfg.panel_width, nb));

  for (int k = 0; k < panels; ++k) {
    const int mt = a.tile_rows(k);
    const int nt = a.tile_cols(k);

    // --- 1. diagonal tile factorization (internally blocked by w) --------
    std::vector<double> tau(real ? nt : 0);
    std::vector<double> vkk;  // V + R of tile (k,k) + tau, for row updates
    const int vkk_doubles = mt * nt + nt;
    auto row_update_ranks = [&] {
      std::set<int> out;
      for (int j = k + 1; j < tc_count; ++j) out.insert(a.owner(k, j));
      out.erase(me);
      return out;
    };
    if (a.mine(k, k)) {
      lapack::geqrf(mt, nt, a.tile_data(k, k), mt, real ? tau.data() : nullptr,
                    w);
      if (real) {
        vkk.resize(vkk_doubles);
        const la::Matrix& t = a.tile(k, k);
        for (int b = 0; b < nt; ++b)
          for (int r = 0; r < mt; ++r) vkk[static_cast<std::size_t>(b) * mt + r] = t(r, b);
        for (int b = 0; b < nt; ++b) vkk[static_cast<std::size_t>(mt) * nt + b] = tau[b];
      }
      for (int dst : row_update_ranks()) {
        mpi::Request rq = mpi::isend(real ? vkk.data() : nullptr,
                                     vkk_doubles * 8, dst, vt_tag(k, k, tr_count),
                                     g.world);
        mpi::wait(rq);
      }
    }

    // --- 2. apply Q0^T along row k ---------------------------------------
    bool have_v0 = a.mine(k, k);
    std::vector<double> v0buf;
    const double* v0 = nullptr;
    const double* tau0 = nullptr;
    auto fetch_v0 = [&] {
      if (have_v0) {
        if (a.mine(k, k)) {
          if (real && vkk.empty()) {
            vkk.resize(vkk_doubles);
            const la::Matrix& t = a.tile(k, k);
            for (int b = 0; b < nt; ++b)
              for (int r = 0; r < mt; ++r) vkk[static_cast<std::size_t>(b) * mt + r] = t(r, b);
            for (int b = 0; b < nt; ++b) vkk[static_cast<std::size_t>(mt) * nt + b] = tau[b];
          }
          v0 = real ? vkk.data() : nullptr;
          tau0 = real ? vkk.data() + static_cast<std::size_t>(mt) * nt : nullptr;
        }
        return;
      }
      v0buf.resize(real ? vkk_doubles : 0);
      mpi::recv(real ? v0buf.data() : nullptr, vkk_doubles * 8, a.owner(k, k),
                vt_tag(k, k, tr_count), g.world);
      v0 = real ? v0buf.data() : nullptr;
      tau0 = real ? v0buf.data() + static_cast<std::size_t>(mt) * nt : nullptr;
      have_v0 = true;
    };
    for (int j = k + 1; j < tc_count; ++j) {
      if (!a.mine(k, j)) continue;
      fetch_v0();
      lapack::ormqr(la::Side::Left, la::Trans::T, mt, a.tile_cols(j),
                    std::min(mt, nt), v0, mt, tau0, a.tile_data(k, j), mt, w);
    }

    // --- 3. flat-tree cascade down the panel column ----------------------
    // R (nt x nt upper) travels owner(k,k) -> owner(k+1,k) -> ... and back.
    std::vector<double> rbuf(real ? static_cast<std::size_t>(nt) * nt : 0);
    const int rbytes = nt * nt * 8;
    if (a.mine(k, k) && tr_count > k + 1) {
      if (real) {
        const la::Matrix& t = a.tile(k, k);
        for (int b = 0; b < nt; ++b)
          for (int r = 0; r < nt; ++r)
            rbuf[static_cast<std::size_t>(b) * nt + r] = (r <= b) ? t(r, b) : 0.0;
      }
      mpi::Request rq =
          mpi::isend(real ? rbuf.data() : nullptr, rbytes, a.owner(k + 1, k),
                     r_tag(k, k, tr_count), g.world);
      mpi::wait(rq);
    }

    // per-chain-step V/T buffers for the pair updates I own
    std::map<int, std::vector<double>> vt_store;  // i -> V_i (mt_i x nt) + T (nt x nt)
    auto vt_doubles = [&](int i) { return a.tile_rows(i) * nt + nt * nt; };
    auto pair_ranks = [&](int i) {
      std::set<int> out;
      for (int j = k + 1; j < tc_count; ++j) out.insert(a.owner(i, j));
      out.erase(me);
      return out;
    };

    for (int i = k + 1; i < tr_count; ++i) {
      if (!a.mine(i, k)) continue;
      // receive the current R from the previous holder
      const int prev = (i == k + 1) ? a.owner(k, k) : a.owner(i - 1, k);
      if (prev != me)
        mpi::recv(real ? rbuf.data() : nullptr, rbytes, prev,
                  r_tag(i == k + 1 ? k : i - 1, k, tr_count), g.world);
      // combine [R; tile(i,k)]
      std::vector<double> tmat(real ? static_cast<std::size_t>(nt) * nt : 0);
      lapack::tpqrt(a.tile_rows(i), nt, /*l=*/0, real ? rbuf.data() : nullptr,
                    nt, a.tile_data(i, k), a.tile_rows(i), real ? tmat.data() : nullptr,
                    nt);
      // forward R (or return it to the diagonal owner at the end)
      const int next = (i + 1 < tr_count) ? a.owner(i + 1, k) : a.owner(k, k);
      if (next != me) {
        mpi::Request rq = mpi::isend(real ? rbuf.data() : nullptr, rbytes,
                                     next, r_tag(i, k, tr_count), g.world);
        mpi::wait(rq);
      }
      // stash/send {V_i, T_i} for the pair updates
      auto& vt = vt_store[i];
      if (real) {
        vt.resize(vt_doubles(i));
        const la::Matrix& t = a.tile(i, k);
        const int mi = a.tile_rows(i);
        for (int b = 0; b < nt; ++b)
          for (int r = 0; r < mi; ++r) vt[static_cast<std::size_t>(b) * mi + r] = t(r, b);
        std::copy(tmat.begin(), tmat.end(),
                  vt.begin() + static_cast<std::size_t>(mi) * nt);
      }
      for (int dst : pair_ranks(i)) {
        mpi::Request rq = mpi::isend(real ? vt.data() : nullptr,
                                     vt_doubles(i) * 8, dst,
                                     vt_tag(i, k, tr_count), g.world);
        mpi::wait(rq);
      }
    }
    // the final R returns to the diagonal owner and lands in tile (k,k)
    if (tr_count > k + 1) {
      const int last_holder = a.owner(tr_count - 1, k);
      if (a.mine(k, k)) {
        if (last_holder != me)
          mpi::recv(real ? rbuf.data() : nullptr, rbytes, last_holder,
                    r_tag(tr_count - 1, k, tr_count), g.world);
        if (real) {
          la::Matrix& t = a.tile(k, k);
          for (int b = 0; b < nt; ++b)
            for (int r = 0; r <= b && r < nt; ++r)
              t(r, b) = rbuf[static_cast<std::size_t>(b) * nt + r];
        }
      }
    }

    // --- 4. pair updates: [C(k,j); C(i,j)] <- Q_i^T [C(k,j); C(i,j)] ------
    // Processed column-major with the chain order preserved per column.
    std::map<int, std::vector<double>> vt_recv;
    auto fetch_vt = [&](int i) -> const double* {
      if (a.mine(i, k)) return real ? vt_store.at(i).data() : nullptr;
      auto it = vt_recv.find(i);
      if (it == vt_recv.end()) {
        auto& buf = vt_recv[i];
        if (real) buf.resize(vt_doubles(i));
        mpi::recv(real ? buf.data() : nullptr, vt_doubles(i) * 8,
                  a.owner(i, k), vt_tag(i, k, tr_count), g.world);
        return real ? vt_recv[i].data() : nullptr;
      }
      return real ? it->second.data() : nullptr;
    };

    for (int j = k + 1; j < tc_count; ++j) {
      const int ncols = a.tile_cols(j);
      const int top_owner = a.owner(k, j);
      std::vector<double> top(real ? static_cast<std::size_t>(nt) * ncols : 0);
      const int top_bytes = nt * ncols * 8;
      for (int i = k + 1; i < tr_count; ++i) {
        const int bot_owner = a.owner(i, j);
        if (me != top_owner && me != bot_owner) continue;
        if (top_owner == bot_owner) {
          // local pair update
          const double* vt = fetch_vt(i);
          const int mi = a.tile_rows(i);
          if (real && i == k + 1) {
            const la::Matrix& t = a.tile(k, j);
            for (int b = 0; b < ncols; ++b)
              for (int r = 0; r < nt; ++r) top[static_cast<std::size_t>(b) * nt + r] = t(r, b);
          }
          lapack::tpmqrt(la::Trans::T, mi, ncols, nt, vt, mi,
                         real ? vt + static_cast<std::size_t>(mi) * nt : nullptr, nt,
                         real ? top.data() : nullptr, nt, a.tile_data(i, j),
                         a.tile_rows(i));
          continue;
        }
        if (me == top_owner) {
          // ship the running top block to the bottom owner and get it back
          if (i == k + 1 && real) {
            const la::Matrix& t = a.tile(k, j);
            for (int b = 0; b < ncols; ++b)
              for (int r = 0; r < nt; ++r) top[static_cast<std::size_t>(b) * nt + r] = t(r, b);
          }
          mpi::Request rq = mpi::isend(real ? top.data() : nullptr, top_bytes,
                                       bot_owner, top_tag(i, j, tr_count), g.world);
          mpi::wait(rq);
          mpi::recv(real ? top.data() : nullptr, top_bytes, bot_owner,
                    top_tag(i, j, tr_count), g.world);
        } else {
          const double* vt = fetch_vt(i);
          const int mi = a.tile_rows(i);
          std::vector<double> topin(real ? static_cast<std::size_t>(nt) * ncols : 0);
          mpi::recv(real ? topin.data() : nullptr, top_bytes, top_owner,
                    top_tag(i, j, tr_count), g.world);
          lapack::tpmqrt(la::Trans::T, mi, ncols, nt, vt, mi,
                         real ? vt + static_cast<std::size_t>(mi) * nt : nullptr, nt,
                         real ? topin.data() : nullptr, nt, a.tile_data(i, j),
                         a.tile_rows(i));
          mpi::Request rq = mpi::isend(real ? topin.data() : nullptr, top_bytes,
                                       top_owner, top_tag(i, j, tr_count), g.world);
          mpi::wait(rq);
        }
      }
      // write the final top block back into tile (k, j)
      if (me == top_owner && real && tr_count > k + 1) {
        la::Matrix& t = a.tile(k, j);
        for (int b = 0; b < ncols; ++b)
          for (int r = 0; r < nt; ++r) t(r, b) = top[static_cast<std::size_t>(b) * nt + r];
      }
    }
  }
  (void)cfg.lookahead;  // QR lookahead: column ordering already pipelines
                        // the cascade; depth is exercised via PotrfConfig.
}

}  // namespace critter::slate
