#include "slate/tile_matrix.hpp"

#include <cstring>

#include "core/mpi.hpp"
#include "util/check.hpp"

namespace critter::slate {

Grid2D Grid2D::build(int pr, int pc) {
  Grid2D g;
  g.pr = pr;
  g.pc = pc;
  g.world = sim::world();
  CRITTER_CHECK(sim::world_size() == pr * pc, "grid shape must match ranks");
  const int r = sim::world_rank();
  g.pi = r / pc;
  g.pj = r % pc;
  g.row_comm = mpi::comm_split(g.world, g.pi, g.pj);
  g.col_comm = mpi::comm_split(g.world, g.pj, g.pi);
  return g;
}

TileMatrix::TileMatrix(int rows, int cols, int nb, const Grid2D& g, bool real)
    : m_(rows), n_(cols), nb_(nb), g_(&g), real_(real) {
  CRITTER_CHECK(rows >= 0 && cols >= 0 && nb >= 1, "tile matrix shape");
}

int TileMatrix::tile_rows(int ti) const {
  return std::min(nb_, m_ - ti * nb_);
}
int TileMatrix::tile_cols(int tj) const {
  return std::min(nb_, n_ - tj * nb_);
}

la::Matrix& TileMatrix::tile(int ti, int tj) {
  CRITTER_CHECK(real_, "tile storage only exists in real mode");
  CRITTER_CHECK(mine(ti, tj), "tile not owned by this rank");
  auto [it, inserted] = tiles_.try_emplace({ti, tj});
  if (inserted) it->second = la::Matrix(tile_rows(ti), tile_cols(tj));
  return it->second;
}

double* TileMatrix::tile_data(int ti, int tj) {
  if (!real_) return nullptr;
  return tile(ti, tj).data();
}

void TileMatrix::scatter_from_full(const la::Matrix& full) {
  CRITTER_CHECK(real_, "scatter needs real storage");
  for (int tj = 0; tj < tile_cols_count(); ++tj)
    for (int ti = 0; ti < tile_rows_count(); ++ti) {
      if (!mine(ti, tj)) continue;
      la::Matrix& t = tile(ti, tj);
      for (int b = 0; b < t.cols(); ++b)
        for (int a = 0; a < t.rows(); ++a)
          t(a, b) = full(ti * nb_ + a, tj * nb_ + b);
    }
}

la::Matrix TileMatrix::gather_full() const {
  CRITTER_CHECK(real_, "gather needs real storage");
  // Pad every tile to nb x nb, allgather tile-by-tile round-robin style:
  // one allgather of all local tiles in a canonical order would need
  // variable sizes, so this test helper simply broadcasts each tile from
  // its owner (small test matrices only).
  la::Matrix full(m_, n_);
  std::vector<double> buf(static_cast<std::size_t>(nb_) * nb_);
  auto* self = const_cast<TileMatrix*>(this);
  for (int tj = 0; tj < tile_cols_count(); ++tj)
    for (int ti = 0; ti < tile_rows_count(); ++ti) {
      const int tr = tile_rows(ti), tc = tile_cols(tj);
      if (mine(ti, tj)) {
        const la::Matrix& t = self->tile(ti, tj);
        for (int b = 0; b < tc; ++b)
          for (int a = 0; a < tr; ++a) buf[static_cast<std::size_t>(b) * tr + a] = t(a, b);
      }
      mpi::bcast(buf.data(), tr * tc * 8, owner(ti, tj), g_->world);
      for (int b = 0; b < tc; ++b)
        for (int a = 0; a < tr; ++a)
          full(ti * nb_ + a, tj * nb_ + b) = buf[static_cast<std::size_t>(b) * tr + a];
    }
  return full;
}

}  // namespace critter::slate
