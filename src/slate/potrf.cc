#include <map>
#include <set>
#include <vector>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "slate/slate.hpp"
#include "util/check.hpp"

namespace critter::slate {

namespace {

/// Tag for the transfer of tile (ti, tk): unique per source tile; phases
/// are ordered and matching is FIFO per (source, tag), so reuse across
/// phases cannot collide.
int tile_tag(int ti, int tk, int t_total) {
  const int tag = ti * t_total + tk;
  CRITTER_CHECK(tag < (1 << 20), "tile tag exceeds internal tag space");
  return tag;
}

struct PhaseState {
  // tiles received this phase: key (ti, tk) -> buffer (tile_rows x nb)
  std::map<std::pair<int, int>, std::vector<double>> lbuf;
};

}  // namespace

void potrf(TileMatrix& a, const PotrfConfig& cfg) {
  const Grid2D& g = a.grid();
  const int t_count = a.tile_rows_count();
  CRITTER_CHECK(a.rows() == a.cols(), "potrf needs a square matrix");
  const int me = g.me();
  const bool real = a.real();

  std::vector<bool> panel_prefactored(t_count, false);

  // --- helpers -----------------------------------------------------------
  // ranks owning sub-diagonal tiles of panel column k
  auto trsm_ranks = [&](int k) {
    std::set<int> out;
    for (int i = k + 1; i < t_count; ++i) out.insert(a.owner(i, k));
    out.erase(a.owner(k, k));
    return out;
  };
  // destination ranks for factored panel tile L(i,k)
  auto lik_dests = [&](int i, int k) {
    std::set<int> out;
    for (int j = k + 1; j <= i; ++j) out.insert(a.owner(i, j));     // left op
    for (int i2 = i; i2 < t_count; ++i2) out.insert(a.owner(i2, i));  // right op
    out.erase(me);
    return out;
  };

  auto factor_diag = [&](int k) {
    lapack::potrf(la::Uplo::Lower, a.tile_rows(k), a.tile_data(k, k),
                  a.tile_rows(k));
    const int bytes = a.tile_rows(k) * a.tile_rows(k) * 8;
    for (int dst : trsm_ranks(k)) {
      mpi::Request rq = mpi::isend(a.tile_data(k, k), bytes, dst,
                                   tile_tag(k, k, t_count), g.world);
      mpi::wait(rq);
    }
  };

  // --- main phase loop ---------------------------------------------------
  for (int k = 0; k < t_count; ++k) {
    PhaseState ps;

    // 1. panel: potrf at the diagonal owner (unless pre-factored by
    //    lookahead), then trsm on sub-diagonal tiles.
    if (a.mine(k, k) && !panel_prefactored[k]) factor_diag(k);

    bool have_lkk = a.mine(k, k);
    std::vector<double> lkk(real && !have_lkk
                                ? static_cast<std::size_t>(a.tile_rows(k)) * a.tile_rows(k)
                                : 0);
    for (int i = k + 1; i < t_count; ++i) {
      if (!a.mine(i, k)) continue;
      if (!have_lkk) {
        mpi::recv(real ? lkk.data() : nullptr,
                  a.tile_rows(k) * a.tile_rows(k) * 8, a.owner(k, k),
                  tile_tag(k, k, t_count), g.world);
        have_lkk = true;
      }
      const double* dk = a.mine(k, k) ? a.tile_data(k, k)
                                      : (real ? lkk.data() : nullptr);
      blas::trsm(la::Side::Right, la::Uplo::Lower, la::Trans::T,
                 la::Diag::NonUnit, a.tile_rows(i), a.tile_rows(k), 1.0, dk,
                 a.tile_rows(k), a.tile_data(i, k), a.tile_rows(i));
      const int bytes = a.tile_rows(i) * a.tile_rows(k) * 8;
      for (int dst : lik_dests(i, k)) {
        mpi::Request rq = mpi::isend(a.tile_data(i, k), bytes, dst,
                                     tile_tag(i, k, t_count), g.world);
        mpi::wait(rq);
      }
    }

    // 2. receive the panel tiles my updates need (deterministic order).
    auto need_tile = [&](int i) -> const double* {
      if (a.mine(i, k)) return a.tile_data(i, k);
      auto it = ps.lbuf.find({i, k});
      if (it == ps.lbuf.end()) {
        auto& buf = ps.lbuf[{i, k}];
        if (real) buf.resize(static_cast<std::size_t>(a.tile_rows(i)) * a.tile_rows(k));
        mpi::recv(real ? buf.data() : nullptr,
                  a.tile_rows(i) * a.tile_rows(k) * 8, a.owner(i, k),
                  tile_tag(i, k, t_count), g.world);
        return real ? ps.lbuf[{i, k}].data() : nullptr;
      }
      return real ? it->second.data() : nullptr;
    };
    for (int j = k + 1; j < t_count; ++j)
      for (int i = j; i < t_count; ++i) {
        if (!a.mine(i, j)) continue;
        (void)need_tile(i);
        if (i != j) (void)need_tile(j);
      }

    // 3+5. trailing updates, urgent panel columns first (lookahead), with
    //      the next panel pre-factored in between.
    auto update = [&](int i, int j) {
      const double* li = need_tile(i);
      if (i == j) {
        blas::syrk(la::Uplo::Lower, la::Trans::N, a.tile_rows(j),
                   a.tile_rows(k), -1.0, li, a.tile_rows(j), 1.0,
                   a.tile_data(j, j), a.tile_rows(j));
      } else {
        const double* lj = need_tile(j);
        blas::gemm(la::Trans::N, la::Trans::T, a.tile_rows(i), a.tile_rows(j),
                   a.tile_rows(k), -1.0, li, a.tile_rows(i), lj,
                   a.tile_rows(j), 1.0, a.tile_data(i, j), a.tile_rows(i));
      }
    };
    const int urgent_hi = std::min(t_count - 1, k + 1 + cfg.lookahead);
    for (int j = k + 1; j <= urgent_hi; ++j)
      for (int i = j; i < t_count; ++i)
        if (a.mine(i, j)) update(i, j);

    if (cfg.lookahead > 0 && k + 1 < t_count && a.mine(k + 1, k + 1)) {
      factor_diag(k + 1);
      panel_prefactored[k + 1] = true;
    }

    for (int j = urgent_hi + 1; j < t_count; ++j)
      for (int i = j; i < t_count; ++i)
        if (a.mine(i, j)) update(i, j);
  }
}

}  // namespace critter::slate
