// The tuner-daemon wire protocol (DESIGN.md §12.3): payload codecs for the
// ask/tell verbs net/frame.hpp reserves in the 0x2x range.  Shared by the
// daemon (serve/daemon.hpp) and the client (serve/client.hpp) so both sides
// serialize sessions, batches, and outcomes through the same functions —
// outcome bytes on this wire are identical to the dist layer's file formats
// (dist/wire.hpp), which is what lets the daemon journal a remote tell and
// replay it bit-equal after a restart.
//
// Every request is one frame; every reply is one frame (kOk with the
// verb-specific payload below, or kErr carrying a human-readable reason).
// A connection speaks the protocol after a hello exchange: the client sends
// kHello with kTuneService, the daemon answers kOk.
#pragma once

#include <string>
#include <vector>

#include "core/wire_codec.hpp"
#include "dist/wire.hpp"
#include "tune/evaluator.hpp"
#include "tune/tuner.hpp"
#include "util/check.hpp"

namespace critter::serve {

/// Hello payload naming the protocol; bumped on incompatible change.
/// Version 2: dirty-rank statistics transport (DESIGN.md §13) — ASK carries
/// a generation token so an unchanged session state ships zero snapshot
/// bytes, TELL may carry a sparse patch against the state the claim was
/// issued on, and the TELL reply returns the session's new state
/// generation.
/// Version 3: STATUS replies carry the daemon's process-wide metrics
/// snapshot (obs::metrics_json(), DESIGN.md §14) after the per-session
/// wire accounting — `tunectl status --json` and `tunectl watch` read it.
inline constexpr const char* kTuneService = "critter-tune/3";

/// Session names become journal directory names: a restrictive charset
/// keeps them shell- and path-safe (no separators, no leading dot).
inline bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64 || name[0] == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

// --- kTuneOpen -------------------------------------------------------------

/// Open (or join) a session: the manifest is the study/options identity in
/// the run-manifest codec (dist/manifest.hpp) plus warm_start=/prior_snap=
/// flags; the snapshots travel inline since the daemon cannot see the
/// client's memory.  Joining an existing session requires a byte-identical
/// manifest — concurrent clients must agree on what they are tuning.
struct OpenRequest {
  std::string session;
  std::string manifest;
  std::string warm;   ///< serialized StatSnapshot, empty = none
  std::string prior;  ///< serialized StatSnapshot, empty = none
};

inline std::string encode_open(const OpenRequest& rq) {
  core::WireWriter w;
  w.str(rq.session);
  w.str(rq.manifest);
  w.str(rq.warm);
  w.str(rq.prior);
  return w.out;
}

inline OpenRequest decode_open(const std::string& payload) {
  core::WireReader r{payload};
  OpenRequest rq;
  rq.session = r.str();
  rq.manifest = r.str();
  // Snapshots can exceed the WireReader string bound; length-check manually.
  const auto blob = [&r]() {
    const std::int32_t n = r.i32();
    CRITTER_CHECK(n >= 0, "tune open: negative snapshot length");
    std::string s(static_cast<std::size_t>(n), '\0');
    r.raw(s.data(), s.size());
    return s;
  };
  rq.warm = blob();
  rq.prior = blob();
  CRITTER_CHECK(r.done(), "tune open: trailing bytes");
  return rq;
}

/// Open reply: the daemon's view of the session — configuration count (the
/// client cross-checks its study) and how many batches are already told
/// (resumed or tuned by earlier clients).
struct OpenReply {
  std::int32_t nconfigs = 0;
  std::int32_t tells = 0;
  bool done = false;
};

inline std::string encode_open_reply(const OpenReply& rp) {
  core::WireWriter w;
  w.i32(rp.nconfigs);
  w.i32(rp.tells);
  w.u8(rp.done ? 1 : 0);
  return w.out;
}

inline OpenReply decode_open_reply(const std::string& payload) {
  core::WireReader r{payload};
  OpenReply rp;
  rp.nconfigs = r.i32();
  rp.tells = r.i32();
  rp.done = r.u8() != 0;
  CRITTER_CHECK(r.done(), "tune open reply: trailing bytes");
  return rp;
}

// --- kTuneAsk --------------------------------------------------------------

/// [Export/Status/Shutdown requests]: just the session name.
inline std::string encode_session_ref(const std::string& session) {
  core::WireWriter w;
  w.str(session);
  return w.out;
}

inline std::string decode_session_ref(const std::string& payload) {
  core::WireReader r{payload};
  std::string s = r.str();
  CRITTER_CHECK(r.done(), "tune request: trailing bytes");
  return s;
}

/// Ask request: the session name plus the state generation the client
/// already holds (0 = none).  When it matches the daemon's, the reply
/// ships no snapshot bytes at all — the steady-state single-evaluator
/// loop, where the client's mirror already holds the exact session state
/// its own last tell produced.
struct AskRequest {
  std::string session;
  std::uint64_t have_gen = 0;
};

inline std::string encode_ask_request(const AskRequest& rq) {
  core::WireWriter w;
  w.str(rq.session);
  w.u64(rq.have_gen);
  return w.out;
}

inline AskRequest decode_ask_request(const std::string& payload) {
  core::WireReader r{payload};
  AskRequest rq;
  rq.session = r.str();
  rq.have_gen = r.u64();
  CRITTER_CHECK(r.done(), "tune ask: trailing bytes");
  return rq;
}

/// What a remote evaluator needs to mirror evaluate() exactly: the claimed
/// batch, the evaluation hints ask() snapshotted, and the session's shared
/// statistics at claim time (imported wholesale by the mirror driver).
/// `state_gen` names the daemon's state; `state_mode` says how the reply
/// carries it: 0 = unchanged from the client's have_gen (no bytes shipped),
/// 1 = the full serialized snapshot follows.
struct AskReply {
  bool done = false;
  std::vector<int> batch;
  tune::EvalControl control;
  std::uint64_t state_gen = 0;
  std::uint8_t state_mode = 1;
  std::string state;  ///< serialized StatSnapshot (state_mode == 1)
};

inline std::string encode_ask_reply(const AskReply& rp) {
  core::WireWriter w;
  w.u8(rp.done ? 1 : 0);
  if (rp.done) return w.out;
  w.i32(static_cast<std::int32_t>(rp.batch.size()));
  for (int pos : rp.batch) w.i32(pos);
  w.u8(rp.control.early_discard ? 1 : 0);
  w.f64(rp.control.incumbent_pred);
  w.f64(rp.control.margin);
  w.i32(rp.control.samples_override);
  w.u64(rp.state_gen);
  w.u8(rp.state_mode);
  if (rp.state_mode == 1) {
    w.i32(static_cast<std::int32_t>(rp.state.size()));
    w.raw(rp.state.data(), rp.state.size());
  }
  return w.out;
}

inline AskReply decode_ask_reply(const std::string& payload) {
  core::WireReader r{payload};
  AskReply rp;
  rp.done = r.u8() != 0;
  if (rp.done) {
    CRITTER_CHECK(r.done(), "tune ask reply: trailing bytes");
    return rp;
  }
  const std::int32_t n = r.i32();
  CRITTER_CHECK(n > 0 && n <= (1 << 20), "tune ask reply: implausible batch");
  rp.batch.resize(static_cast<std::size_t>(n));
  for (int& pos : rp.batch) pos = r.i32();
  rp.control.early_discard = r.u8() != 0;
  rp.control.incumbent_pred = r.f64();
  rp.control.margin = r.f64();
  rp.control.samples_override = r.i32();
  rp.state_gen = r.u64();
  rp.state_mode = r.u8();
  CRITTER_CHECK(rp.state_mode <= 1, "tune ask reply: unknown state mode");
  if (rp.state_mode == 1) {
    const std::int32_t sn = r.i32();
    CRITTER_CHECK(sn >= 0, "tune ask reply: negative state length");
    rp.state.resize(static_cast<std::size_t>(sn));
    r.raw(rp.state.data(), rp.state.size());
  }
  CRITTER_CHECK(r.done(), "tune ask reply: trailing bytes");
  return rp;
}

// --- kTuneTell -------------------------------------------------------------

/// The remote evaluation's products, in batch order: outcomes (serialized
/// exactly as the dist file formats do), the totals contributions the batch
/// accumulated, and the mirror's post-evaluation statistics.  `state` is
/// one of:
///
///   * "" — the evaluation changed no statistics bytes;
///   * a mode-0 sparse patch (core::encode_sparse_patch) against the state
///     the claim was issued on — `base_gen` MUST name that state's
///     generation, and the daemon rejects a stale base outright (the client
///     then re-asks and resends full);
///   * a full serialized StatSnapshot — wholesale replacement, the v1
///     behavior, used on the first tell after a (re)connect.
///
/// Replacement-by-bytes rather than merge-of-deltas is what keeps the
/// daemon bitwise-exact: the mirror started from exactly what ASK shipped
/// and one batch is ever outstanding, so the spliced state is the mirror's
/// state to the last bit, where a diff/merge round trip is only
/// float-algebraically exact.
struct TellRequest {
  std::string session;
  std::uint64_t base_gen = 0;  ///< generation `state` patches (sparse only)
  std::vector<int> batch;
  std::vector<tune::ConfigOutcome> outcomes;
  std::vector<tune::ConfigTotals> totals;
  std::string state;  ///< "" | sparse patch | full serialized StatSnapshot
};

inline std::string encode_tell(const TellRequest& rq) {
  core::WireWriter w;
  w.str(rq.session);
  w.u64(rq.base_gen);
  w.i32(static_cast<std::int32_t>(rq.batch.size()));
  for (std::size_t k = 0; k < rq.batch.size(); ++k) {
    w.i32(rq.batch[k]);
    dist::write_outcome(w, rq.outcomes[k]);
    dist::write_totals(w, rq.totals[k]);
  }
  w.i32(static_cast<std::int32_t>(rq.state.size()));
  w.raw(rq.state.data(), rq.state.size());
  return w.out;
}

/// Decoding needs the study to rebind each outcome's configuration, and the
/// study hangs off the session — so the session name is read first and the
/// body second, once the daemon has resolved it.
inline std::string decode_tell_session(core::WireReader& r) { return r.str(); }

inline void decode_tell_body(core::WireReader& r, const tune::Study& study,
                             TellRequest* rq) {
  rq->base_gen = r.u64();
  const std::int32_t n = r.i32();
  CRITTER_CHECK(n > 0 && n <= (1 << 20), "tune tell: implausible batch");
  rq->batch.resize(static_cast<std::size_t>(n));
  rq->outcomes.resize(static_cast<std::size_t>(n));
  rq->totals.resize(static_cast<std::size_t>(n));
  const int nconf = static_cast<int>(study.configs.size());
  for (std::int32_t k = 0; k < n; ++k) {
    const std::int32_t pos = r.i32();
    CRITTER_CHECK(pos >= 0 && pos < nconf,
                  "tune tell: batch position outside the study");
    rq->batch[static_cast<std::size_t>(k)] = pos;
    rq->outcomes[static_cast<std::size_t>(k)].config =
        study.configs[static_cast<std::size_t>(pos)];
    dist::read_outcome(r, rq->outcomes[static_cast<std::size_t>(k)],
                       "tune tell");
    dist::read_totals(r, rq->totals[static_cast<std::size_t>(k)]);
  }
  const std::int32_t dn = r.i32();
  CRITTER_CHECK(dn >= 0, "tune tell: negative state length");
  rq->state.resize(static_cast<std::size_t>(dn));
  r.raw(rq->state.data(), rq->state.size());
  CRITTER_CHECK(r.done(), "tune tell: trailing bytes");
}

/// Tell reply: the session's state generation after this tell — the token
/// the client hands back on its next ask to skip the state payload.
inline std::string encode_tell_reply(std::uint64_t state_gen) {
  core::WireWriter w;
  w.u64(state_gen);
  return w.out;
}

inline std::uint64_t decode_tell_reply(const std::string& payload) {
  core::WireReader r{payload};
  const std::uint64_t gen = r.u64();
  CRITTER_CHECK(r.done(), "tune tell reply: trailing bytes");
  return gen;
}

// --- kTuneImport -----------------------------------------------------------

/// Seed a fresh session's statistics (legal only before its first ask, the
/// same rule as Tuner::import_state).  kTuneExport's reply payload is the
/// raw serialized snapshot, no codec needed.
inline std::string encode_import(const std::string& session,
                                 const std::string& snapshot) {
  core::WireWriter w;
  w.str(session);
  w.i32(static_cast<std::int32_t>(snapshot.size()));
  w.raw(snapshot.data(), snapshot.size());
  return w.out;
}

inline void decode_import(const std::string& payload, std::string* session,
                          std::string* snapshot) {
  core::WireReader r{payload};
  *session = r.str();
  const std::int32_t n = r.i32();
  CRITTER_CHECK(n >= 0, "tune import: negative snapshot length");
  snapshot->resize(static_cast<std::size_t>(n));
  r.raw(snapshot->data(), snapshot->size());
  CRITTER_CHECK(r.done(), "tune import: trailing bytes");
}

// --- kTuneStatus -----------------------------------------------------------

struct StatusReply {
  bool done = false;
  std::int32_t tells = 0;
  std::int32_t evaluated = 0;
  std::int32_t best_predicted = -1;  ///< -1 until anything evaluated
  /// Wire accounting for the session (request + reply payload bytes the
  /// daemon handled on its behalf): sparse transport made the payloads
  /// measurable, not vibes.
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
  std::int64_t sparse_tells = 0;  ///< tells whose state arrived as a patch
  std::string text;               ///< one human-readable summary line
  /// The daemon's process-wide metrics snapshot (obs::metrics_json()):
  /// ask/tell latency histograms, journal flush cost, per-session wire
  /// counters in aggregate.  Process-wide by design — a daemon is one
  /// tuning fleet's shared brain, and `tunectl watch` polls this field.
  std::string metrics;
};

inline std::string encode_status_reply(const StatusReply& rp) {
  core::WireWriter w;
  w.u8(rp.done ? 1 : 0);
  w.i32(rp.tells);
  w.i32(rp.evaluated);
  w.i32(rp.best_predicted);
  w.i64(rp.bytes_in);
  w.i64(rp.bytes_out);
  w.i64(rp.sparse_tells);
  w.str(rp.text);
  w.str(rp.metrics);
  return w.out;
}

inline StatusReply decode_status_reply(const std::string& payload) {
  core::WireReader r{payload};
  StatusReply rp;
  rp.done = r.u8() != 0;
  rp.tells = r.i32();
  rp.evaluated = r.i32();
  rp.best_predicted = r.i32();
  rp.bytes_in = r.i64();
  rp.bytes_out = r.i64();
  rp.sparse_tells = r.i64();
  rp.text = r.str();
  rp.metrics = r.str();
  CRITTER_CHECK(r.done(), "tune status reply: trailing bytes");
  return rp;
}

}  // namespace critter::serve
