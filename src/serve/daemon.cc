#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/fsio.hpp"
#include "dist/checkpoint.hpp"
#include "dist/manifest.hpp"
#include "tune/evaluator.hpp"
#include "tune/strategy.hpp"
#include "tune/sweep.hpp"
#include "util/check.hpp"

namespace critter::serve {

using core::StatSnapshot;
using dist::ShardCheckpoint;
using dist::ShardRange;

namespace {

volatile std::sig_atomic_t g_daemon_terminate = 0;
void daemon_signal_handler(int) { g_daemon_terminate = 1; }

}  // namespace

// ---------------------------------------------------------------------------
// Session: one (workload, options) tuning state, shared by all clients
// ---------------------------------------------------------------------------

struct TunerDaemon::Session {
  std::string name;
  std::string dir;            ///< <state_dir>/sessions/<name>
  std::string manifest_text;  ///< the identity clients must agree on
  tune::Study study;
  tune::TuneOptions opt;
  StatSnapshot warm, prior;  ///< stable storage opt points into
  std::unique_ptr<tune::Tuner> tuner;

  std::mutex mu;
  std::condition_variable cv;
  // At most one outstanding claim (the determinism contract): `claimed`
  // while a batch is out, `owner` the holding connection (0 = the holder
  // disconnected — the cached batch re-issues unchanged to the next asker).
  bool claimed = false;
  std::uint64_t owner = 0;
  std::vector<int> batch;

  // Journal bookkeeping, in the shard worker's checkpoint format but with
  // every record a full snapshot (see journal_tell) and no exchange state
  // — a daemon session has no peers.
  std::vector<ShardCheckpoint::ToldBatch> told;
  std::int64_t seq = 0;
  std::string next_full_slot = "ckpt_a.bin";

  ShardRange range() const {
    return {0, 0, static_cast<int>(study.configs.size())};
  }
};

// ---------------------------------------------------------------------------
// Construction / resume
// ---------------------------------------------------------------------------

TunerDaemon::TunerDaemon(DaemonOptions opt) : opt_(std::move(opt)) {
  CRITTER_CHECK(!opt_.state_dir.empty(), "tuner daemon needs a state directory");
  core::make_dir(opt_.state_dir);
  core::make_dir(opt_.state_dir + "/sessions");
  resume_sessions();
  listener_ = std::make_unique<net::Listener>(opt_.port);
  // Port file last: a reader that sees it can connect immediately.
  core::write_file_atomic(opt_.state_dir + "/port",
                          std::to_string(listener_->port()) + "\n");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TunerDaemon::~TunerDaemon() { stop(); }

int TunerDaemon::port() const { return listener_->port(); }

bool TunerDaemon::stopping() const { return stop_.load(); }

void TunerDaemon::wait() {
  while (!stop_.load()) core::sleep_ms(20);
}

void TunerDaemon::stop() {
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  if (listener_) listener_->close();
  // Final flush: a full checkpoint per session, so a restart resumes from
  // here without replaying any increment log.
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto& [name, s] : sessions_) {
    std::lock_guard<std::mutex> slk(s->mu);
    try {
      flush_session(*s);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tuner daemon: final flush of session %s failed: %s\n",
                   name.c_str(), e.what());
    }
  }
}

std::unique_ptr<TunerDaemon::Session> TunerDaemon::load_session(
    const std::string& name) {
  auto s = std::make_unique<Session>();
  s->name = name;
  s->dir = opt_.state_dir + "/sessions/" + name;
  s->manifest_text = core::read_file(s->dir + "/manifest.txt");
  const dist::Manifest m = dist::parse_manifest(s->manifest_text);
  s->study = dist::rebuild_study(m);
  s->opt = dist::rebuild_options(m);
  if (dist::manifest_int(m, "warm_start") != 0) {
    s->warm = StatSnapshot::from_string(core::read_published(s->dir, "warm.snap"));
    s->opt.warm_start = &s->warm;
  }
  if (dist::manifest_int(m, "prior_snap") != 0) {
    s->prior =
        StatSnapshot::from_string(core::read_published(s->dir, "prior.snap"));
    s->opt.prior = &s->prior;
  }
  s->tuner = std::make_unique<tune::Tuner>(s->study, s->opt);

  // Journal replay: the best full slot (every record is self-contained —
  // journal_tell writes no increments), then re-ask/re-tell each journaled
  // batch.  Import of the serialized statistics is bitwise-exact, and asks
  // are a pure function of told outcomes and ingested priors, so the
  // resumed strategy re-proposes exactly the recorded batches — anything
  // else is a divergence bug, not a degraded resume.
  ShardCheckpoint ck;
  std::int64_t base_seq = 0;
  std::string base_slot;
  if (dist::load_latest_checkpoint(s->dir, s->study, s->range(), &ck,
                                   &base_seq, &base_slot)) {
    s->tuner->import_state(ck.full);
    for (const ShardCheckpoint::ToldBatch& tb : ck.told) {
      const std::vector<int> b = s->tuner->ask();
      CRITTER_CHECK(b == tb.positions,
                    "session journal replay diverged: the resumed strategy "
                    "proposed a different batch");
      s->tuner->tell(tb.outcomes);
    }
    s->tuner->restore_totals(
        std::vector<tune::ConfigTotals>(ck.totals.begin(), ck.totals.end()));
    s->told = std::move(ck.told);
    s->seq = ck.seq;
    s->next_full_slot =
        base_slot == "ckpt_a.bin" ? "ckpt_b.bin" : "ckpt_a.bin";
  }
  return s;
}

void TunerDaemon::resume_sessions() {
  for (const std::string& name :
       core::list_dir(opt_.state_dir + "/sessions")) {
    if (!valid_session_name(name)) continue;
    if (!core::file_exists(opt_.state_dir + "/sessions/" + name +
                           "/manifest.txt"))
      continue;  // a torn create never got its identity; nothing to resume
    sessions_[name] = load_session(name);
  }
}

TunerDaemon::Session& TunerDaemon::open_session(const OpenRequest& rq) {
  CRITTER_CHECK(valid_session_name(rq.session),
                "tune open: invalid session name '" + rq.session + "'");
  std::lock_guard<std::mutex> lk(sessions_mu_);
  auto it = sessions_.find(rq.session);
  if (it != sessions_.end()) {
    // Joining: concurrent clients must agree on what they are tuning.
    Session& s = *it->second;
    CRITTER_CHECK(rq.manifest == s.manifest_text,
                  "tune open: session '" + rq.session +
                      "' exists with a different study/options identity");
    const std::string warm = s.warm.empty() ? std::string() : s.warm.to_string();
    const std::string prior =
        s.prior.empty() ? std::string() : s.prior.to_string();
    CRITTER_CHECK(rq.warm == warm && rq.prior == prior,
                  "tune open: session '" + rq.session +
                      "' exists with different warm/prior snapshots");
    return s;
  }
  // Fresh session: persist the identity first (manifest + snapshots), then
  // build the in-memory state through the same loader a restart uses.
  const std::string dir = opt_.state_dir + "/sessions/" + rq.session;
  core::make_dir(dir);
  if (!rq.warm.empty()) core::publish_file(dir, "warm.snap", rq.warm);
  if (!rq.prior.empty()) core::publish_file(dir, "prior.snap", rq.prior);
  core::write_file_atomic(dir + "/manifest.txt", rq.manifest);
  auto s = load_session(rq.session);
  Session& ref = *s;
  sessions_[rq.session] = std::move(s);
  return ref;
}

TunerDaemon::Session& TunerDaemon::resolve_session(const std::string& name) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  auto it = sessions_.find(name);
  CRITTER_CHECK(it != sessions_.end(),
                "unknown tuning session '" + name + "' — open it first");
  return *it->second;
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

void TunerDaemon::journal_tell(Session& s) {
  // Every record is a FULL checkpoint, never an increment: increments
  // reconstruct on resume via base.merge(full_delta), and diff/merge is
  // only a float-algebraic identity — a kill -9 resume through even one
  // increment would drift from the in-process sweep by ulps.  A full
  // snapshot round-trips bitwise (serialize ∘ parse is exact), so the
  // resumed session is the journaled one to the last bit.  Daemon tells
  // are seconds apart, not milliseconds, so the constant-size-increment
  // economy the shard workers need buys nothing here.
  ++s.seq;
  ShardCheckpoint c;
  c.seq = s.seq;
  c.batches = static_cast<int>(s.told.size());
  c.rounds = 0;
  c.in_round = c.batches;  // the non-exchanging worker's cursor shape
  c.told = s.told;
  c.totals = s.tuner->totals();
  c.full = s.tuner->export_state();
  const std::string slot = s.next_full_slot;
  core::publish_file(s.dir, slot, dist::serialize_checkpoint(c));
  // Only after the new base is fully published: drop any increment log an
  // older daemon build may have left extending the previous base (a crash
  // in between resumes from whichever base survives).
  ::remove((s.dir + "/ckpt_log.bin").c_str());
  s.next_full_slot = slot == "ckpt_a.bin" ? "ckpt_b.bin" : "ckpt_a.bin";
}

void TunerDaemon::flush_session(Session& s) {
  // Journal records are already self-contained full snapshots; a flush is
  // one more of them, covering sessions opened (or resumed) but not told
  // since.
  journal_tell(s);
}

// ---------------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------------

void TunerDaemon::accept_loop() {
  while (!stop_.load()) {
    net::Connection conn = listener_->accept(0.2);
    if (!conn.valid()) continue;
    const std::uint64_t id = next_conn_id_.fetch_add(1);
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_threads_.emplace_back(
        [this, id](net::Connection c) { serve_connection(std::move(c), id); },
        std::move(conn));
  }
}

void TunerDaemon::serve_connection(net::Connection conn,
                                   std::uint64_t conn_id) {
  const double deadline = opt_.op_deadline_s;
  try {
    net::Frame hello = net::recv_frame(conn, deadline);
    if (hello.verb != net::kHello || hello.payload != kTuneService) {
      net::send_frame(conn, net::kErr, "tuner daemon: bad handshake",
                      deadline);
      release_claims(conn_id);
      return;
    }
    net::send_frame(conn, net::kOk, "", deadline);
    while (!stop_.load()) {
      if (!conn.readable(0.2)) continue;
      net::Frame rq;
      if (!net::recv_frame_opt(conn, rq, deadline)) break;
      net::Frame rp;
      try {
        rp = handle_request(rq, conn_id);
      } catch (const std::exception& e) {
        rp = {net::kErr, e.what()};
      }
      net::send_frame(conn, rp.verb, rp.payload, deadline);
      if (rq.verb == net::kTuneShutdown) break;
    }
  } catch (const std::exception&) {
    // A torn frame or timed-out peer ends this connection only; its claim
    // (if any) re-issues to the next asker below.
  }
  release_claims(conn_id);
}

void TunerDaemon::release_claims(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto& [name, s] : sessions_) {
    std::lock_guard<std::mutex> slk(s->mu);
    if (s->claimed && s->owner == conn_id) {
      // Orphan, don't abandon: the cached batch re-issues unchanged —
      // client churn costs wall-clock, never determinism (§10 semantics).
      s->owner = 0;
      s->cv.notify_all();
    }
  }
}

net::Frame TunerDaemon::handle_request(const net::Frame& rq,
                                       std::uint64_t conn_id) {
  switch (rq.verb) {
    case net::kTuneOpen: {
      const OpenRequest orq = decode_open(rq.payload);
      Session& s = open_session(orq);
      std::lock_guard<std::mutex> lk(s.mu);
      OpenReply rp;
      rp.nconfigs = static_cast<std::int32_t>(s.study.configs.size());
      rp.tells = static_cast<std::int32_t>(s.told.size());
      rp.done = s.tuner->done();
      return {net::kOk, encode_open_reply(rp)};
    }
    case net::kTuneAsk: {
      Session& s = resolve_session(decode_session_ref(rq.payload));
      std::unique_lock<std::mutex> lk(s.mu);
      while (s.claimed && s.owner != 0 && s.owner != conn_id) {
        if (stop_.load())
          throw std::runtime_error("tuner daemon: shutting down");
        s.cv.wait_for(lk, std::chrono::milliseconds(50));
      }
      AskReply rp;
      if (!s.claimed) {
        if (s.tuner->done()) {
          rp.done = true;
          return {net::kOk, encode_ask_reply(rp)};
        }
        const std::vector<int> batch = s.tuner->ask();
        if (batch.empty()) {
          rp.done = true;
          return {net::kOk, encode_ask_reply(rp)};
        }
        s.batch = batch;
        s.claimed = true;
      }
      s.owner = conn_id;
      rp.batch = s.batch;
      rp.control = s.tuner->control();
      rp.state = s.tuner->export_state().to_string();
      return {net::kOk, encode_ask_reply(rp)};
    }
    case net::kTuneTell: {
      core::WireReader r{rq.payload};
      const std::string name = decode_tell_session(r);
      Session& s = resolve_session(name);
      std::lock_guard<std::mutex> lk(s.mu);
      TellRequest trq;
      decode_tell_body(r, s.study, &trq);
      CRITTER_CHECK(s.claimed && trq.batch == s.batch,
                    "tune tell: not the claimed batch of session '" + name +
                        "'");
      CRITTER_CHECK(s.owner == conn_id || s.owner == 0,
                    "tune tell: the claimed batch belongs to another client");
      StatSnapshot state;
      if (!trq.state.empty()) state = StatSnapshot::from_string(trq.state);
      s.tuner->tell_evaluated(trq.outcomes, state, trq.totals);
      s.told.push_back({trq.batch, std::move(trq.outcomes)});
      journal_tell(s);
      s.claimed = false;
      s.owner = 0;
      s.batch.clear();
      s.cv.notify_all();
      return {net::kOk, ""};
    }
    case net::kTuneExport: {
      Session& s = resolve_session(decode_session_ref(rq.payload));
      std::lock_guard<std::mutex> lk(s.mu);
      return {net::kOk, s.tuner->export_state().to_string()};
    }
    case net::kTuneImport: {
      std::string name, snapshot;
      decode_import(rq.payload, &name, &snapshot);
      Session& s = resolve_session(name);
      std::lock_guard<std::mutex> lk(s.mu);
      s.tuner->import_state(StatSnapshot::from_string(snapshot));
      return {net::kOk, ""};
    }
    case net::kTuneStatus: {
      Session& s = resolve_session(decode_session_ref(rq.payload));
      std::lock_guard<std::mutex> lk(s.mu);
      StatusReply rp;
      rp.done = s.tuner->done();
      rp.tells = static_cast<std::int32_t>(s.told.size());
      for (const ShardCheckpoint::ToldBatch& tb : s.told)
        for (const tune::ConfigOutcome& oc : tb.outcomes)
          if (oc.evaluated) ++rp.evaluated;
      if (rp.evaluated > 0)
        rp.best_predicted = s.tuner->result().best_predicted();
      rp.text = "session " + s.name + ": " + std::to_string(rp.tells) +
                " tells, " + std::to_string(rp.evaluated) + " evaluated" +
                (rp.done ? ", done" : "") +
                (rp.best_predicted >= 0
                     ? ", best=" + std::to_string(rp.best_predicted)
                     : "");
      return {net::kOk, encode_status_reply(rp)};
    }
    case net::kTuneShutdown: {
      stop_.store(true);
      return {net::kOk, ""};
    }
    default:
      throw std::runtime_error("tuner daemon: unexpected verb " +
                               std::to_string(rq.verb));
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

int read_daemon_port(const std::string& state_dir, double deadline_s) {
  const std::string path = state_dir + "/port";
  const double deadline = core::monotonic_s() + deadline_s;
  while (true) {
    if (core::file_exists(path)) {
      const int port = std::atoi(core::read_file(path).c_str());
      if (port > 0) return port;
    }
    CRITTER_CHECK(core::monotonic_s() < deadline,
                  "tuner daemon did not publish " + path + " within " +
                      std::to_string(deadline_s) + "s");
    core::sleep_ms(10);
  }
}

bool is_tuner_daemon(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--tuner-daemon") == 0) return true;
  return false;
}

int tuner_daemon_main(int argc, char** argv) {
  std::string state_dir;
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--state-dir=", 0) == 0) state_dir = a.substr(12);
    if (a.rfind("--port=", 0) == 0) port = std::atoi(a.c_str() + 7);
  }
  if (state_dir.empty()) {
    std::fprintf(stderr, "usage: --tuner-daemon --state-dir=DIR [--port=N]\n");
    return 2;
  }
  struct sigaction sa {};
  sa.sa_handler = daemon_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  try {
    TunerDaemon daemon({state_dir, port});
    std::printf("critter-tuner-daemon port=%d\n", daemon.port());
    std::fflush(stdout);
    while (!daemon.stopping() && g_daemon_terminate == 0) core::sleep_ms(20);
    // stop() flushes a final full checkpoint per session — the graceful
    // SIGTERM/SIGINT contract.
    daemon.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tuner daemon: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace critter::serve
