#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/fsio.hpp"
#include "core/stat_store.hpp"
#include "core/wire_codec.hpp"
#include "dist/checkpoint.hpp"
#include "dist/manifest.hpp"
#include "dist/wire.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tune/evaluator.hpp"
#include "tune/strategy.hpp"
#include "tune/sweep.hpp"
#include "util/check.hpp"

namespace critter::serve {

using core::StatSnapshot;
using dist::ShardCheckpoint;
using dist::ShardRange;

namespace {

volatile std::sig_atomic_t g_daemon_terminate = 0;
void daemon_signal_handler(int) { g_daemon_terminate = 1; }

// ---------------------------------------------------------------------------
// CRJTELL1: the daemon's incremental journal record
// ---------------------------------------------------------------------------
//
// One record per tell between full checkpoint slots, appended framed
// (dist::frame_log_record) to <session>/ckpt_log.bin:
//
//   [8B magic "CRJTELL1"] [i64 seq]
//   [i32 k] k × { [i32 position] [outcome] [totals] }
//   [i64 blob_len] [state blob]
//
// The state blob is the TELL's wire state field *verbatim*: "" (statistics
// unchanged), a mode-0 sparse patch whose base is the session state after
// the previous record — exactly what the telling client patched against —
// or a full v2 payload (wholesale replacement).  Resume splices the blobs
// in sequence onto the base slot's serialized statistics, so no
// re-encoding happens on either the journal or the resume path and the
// reconstructed bytes are the live daemon's to the last bit.  Totals are
// absolute post-tell values for the batch's positions (the only ones a
// tell touches) — replay overwrites.
//
// The magic is deliberately not CRCKINC*: dist::load_latest_checkpoint
// applies any log it finds as shard increments, and the first CRJTELL1
// record fails that parse — ending the (empty) increment prefix — so the
// shared loader returns the base slot untouched and the daemon replays the
// log itself.

constexpr char kTellRecordMagic[8] = {'C', 'R', 'J', 'T', 'E', 'L', 'L', '1'};

/// Full-slot cadence: the journal replays at most this many records, and
/// the log holds at most this many state blobs before it is truncated by
/// the next full slot.
constexpr int kTellsPerFull = 16;

struct TellRecord {
  std::int64_t seq = 0;
  ShardCheckpoint::ToldBatch told;
  std::vector<std::pair<int, tune::ConfigTotals>> totals;
  std::string state_blob;
};

std::string encode_tell_record(std::int64_t seq,
                               const ShardCheckpoint::ToldBatch& tb,
                               const std::vector<tune::ConfigTotals>& all_totals,
                               const std::string& state_blob) {
  core::WireWriter w;
  w.raw(kTellRecordMagic, 8);
  w.i64(seq);
  w.i32(static_cast<std::int32_t>(tb.positions.size()));
  for (std::size_t j = 0; j < tb.positions.size(); ++j) {
    const int pos = tb.positions[j];
    w.i32(pos);
    dist::write_outcome(w, tb.outcomes[j]);
    dist::write_totals(w, all_totals[static_cast<std::size_t>(pos)]);
  }
  w.i64(static_cast<std::int64_t>(state_blob.size()));
  w.raw(state_blob.data(), state_blob.size());
  return w.out;
}

bool is_tell_record(const std::string& payload) {
  return payload.size() >= 8 &&
         std::memcmp(payload.data(), kTellRecordMagic, 8) == 0;
}

/// Parse and validate one unframed CRJTELL1 payload.  Throws on anything
/// implausible — the caller treats a bad record as the end of the valid
/// log prefix, exactly like a torn frame.
TellRecord parse_tell_record(const std::string& payload,
                             const tune::Study& study) {
  CRITTER_CHECK(is_tell_record(payload), "tell journal record: bad magic");
  const int nconfigs = static_cast<int>(study.configs.size());
  core::WireReader r{payload};
  r.pos = 8;
  TellRecord rec;
  rec.seq = r.i64();
  CRITTER_CHECK(rec.seq > 0, "tell journal record: bad sequence number");
  const std::int32_t k = r.i32();
  CRITTER_CHECK(k > 0 && k <= nconfigs,
                "tell journal record: implausible batch size");
  rec.told.positions.resize(static_cast<std::size_t>(k));
  rec.told.outcomes.resize(static_cast<std::size_t>(k));
  rec.totals.resize(static_cast<std::size_t>(k));
  int prev = -1;
  for (std::int32_t j = 0; j < k; ++j) {
    const std::int32_t pos = r.i32();
    CRITTER_CHECK(pos > prev && pos < nconfigs,
                  "tell journal record: positions not ascending in-range");
    prev = pos;
    rec.told.positions[static_cast<std::size_t>(j)] = pos;
    rec.told.outcomes[static_cast<std::size_t>(j)].config =
        study.configs[static_cast<std::size_t>(pos)];
    dist::read_outcome(r, rec.told.outcomes[static_cast<std::size_t>(j)],
                       "tell journal record");
    rec.totals[static_cast<std::size_t>(j)].first = pos;
    dist::read_totals(r, rec.totals[static_cast<std::size_t>(j)].second);
  }
  const std::int64_t blob_len = r.i64();
  CRITTER_CHECK(blob_len >= 0 &&
                    r.pos + static_cast<std::size_t>(blob_len) ==
                        payload.size(),
                "tell journal record: bad state blob length");
  rec.state_blob.assign(payload.data() + r.pos,
                        static_cast<std::size_t>(blob_len));
  return rec;
}

/// Apply one journal state blob to the running serialized-state string:
/// the same three-way semantics the TELL handler applies live.
void splice_state_blob(std::string& state_bytes, const std::string& blob) {
  if (blob.empty()) return;  // statistics unchanged at this tell
  if (core::is_sparse_payload(blob)) {
    state_bytes = core::apply_sparse_patch(state_bytes, blob);
    return;
  }
  state_bytes = blob;  // full payload: wholesale replacement
}

/// Observe the enclosing scope's wall time into a latency histogram —
/// the per-request serve.*_seconds instruments.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(obs::Histogram& h)
      : h_(h), t0_(core::monotonic_s()) {}
  ~ScopedHistTimer() { h_.observe(core::monotonic_s() - t0_); }
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  obs::Histogram& h_;
  double t0_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Session: one (workload, options) tuning state, shared by all clients
// ---------------------------------------------------------------------------

struct TunerDaemon::Session {
  std::string name;
  std::string dir;            ///< <state_dir>/sessions/<name>
  std::string manifest_text;  ///< the identity clients must agree on
  tune::Study study;
  tune::TuneOptions opt;
  StatSnapshot warm, prior;  ///< stable storage opt points into
  std::unique_ptr<tune::Tuner> tuner;

  std::mutex mu;
  std::condition_variable cv;
  // At most one outstanding claim (the determinism contract): `claimed`
  // while a batch is out, `owner` the holding connection (0 = the holder
  // disconnected — the cached batch re-issues unchanged to the next asker).
  bool claimed = false;
  std::uint64_t owner = 0;
  std::vector<int> batch;

  // Authoritative serialized session statistics (DESIGN.md §13): "" while
  // empty, otherwise the exact full v2 payload.  `state_snap` mirrors the
  // decoded bytes so the TELL hot path never re-parses clean ranks, and
  // `state_gen` names the bytes — bumped exactly when they change, so a
  // client whose generation token matches holds these exact bytes and ASK
  // ships nothing.
  std::string state_bytes;
  StatSnapshot state_snap;
  std::uint64_t state_gen = 1;

  // Journal bookkeeping, in the shard worker's checkpoint format with no
  // exchange state — a daemon session has no peers.  Full slots every
  // kTellsPerFull tells; CRJTELL1 records in ckpt_log.bin in between.
  std::vector<ShardCheckpoint::ToldBatch> told;
  std::int64_t seq = 0;
  std::int64_t base_seq = 0;  ///< seq of the newest full slot on disk
  std::string next_full_slot = "ckpt_a.bin";
  /// Next journal_tell must write a full slot: set when an out-of-band
  /// state change (kTuneImport) or a resumed/stale increment log would
  /// leave log records splicing onto the wrong base.
  bool force_full_slot = false;

  // Wire accounting: request/reply payload bytes handled for this session,
  // and how many tells arrived as sparse patches (kTuneStatus surfaces
  // them; bench_tuner derives bytes_per_tell).
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
  std::int64_t sparse_tells = 0;

  ShardRange range() const {
    return {0, 0, static_cast<int>(study.configs.size())};
  }
};

// ---------------------------------------------------------------------------
// Construction / resume
// ---------------------------------------------------------------------------

TunerDaemon::TunerDaemon(DaemonOptions opt) : opt_(std::move(opt)) {
  CRITTER_CHECK(!opt_.state_dir.empty(), "tuner daemon needs a state directory");
  core::make_dir(opt_.state_dir);
  core::make_dir(opt_.state_dir + "/sessions");
  resume_sessions();
  listener_ = std::make_unique<net::Listener>(opt_.port);
  // Port file last: a reader that sees it can connect immediately.
  core::write_file_atomic(opt_.state_dir + "/port",
                          std::to_string(listener_->port()) + "\n");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TunerDaemon::~TunerDaemon() { stop(); }

int TunerDaemon::port() const { return listener_->port(); }

bool TunerDaemon::stopping() const { return stop_.load(); }

void TunerDaemon::wait() {
  while (!stop_.load()) core::sleep_ms(20);
}

void TunerDaemon::stop() {
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  if (listener_) listener_->close();
  // Final flush: a full checkpoint per session, so a restart resumes from
  // here without replaying any increment log.
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto& [name, s] : sessions_) {
    std::lock_guard<std::mutex> slk(s->mu);
    try {
      flush_session(*s);
    } catch (const std::exception& e) {
      obs::log_error("tuner daemon: final flush of session %s failed: %s",
                     name.c_str(), e.what());
    }
  }
}

std::unique_ptr<TunerDaemon::Session> TunerDaemon::load_session(
    const std::string& name) {
  auto s = std::make_unique<Session>();
  s->name = name;
  s->dir = opt_.state_dir + "/sessions/" + name;
  s->manifest_text = core::read_file(s->dir + "/manifest.txt");
  const dist::Manifest m = dist::parse_manifest(s->manifest_text);
  s->study = dist::rebuild_study(m);
  s->opt = dist::rebuild_options(m);
  if (dist::manifest_int(m, "warm_start") != 0) {
    s->warm = StatSnapshot::from_string(core::read_published(s->dir, "warm.snap"));
    s->opt.warm_start = &s->warm;
  }
  if (dist::manifest_int(m, "prior_snap") != 0) {
    s->prior =
        StatSnapshot::from_string(core::read_published(s->dir, "prior.snap"));
    s->opt.prior = &s->prior;
  }
  s->tuner = std::make_unique<tune::Tuner>(s->study, s->opt);

  // Journal replay: the best full slot, then the longest valid CRJTELL1
  // prefix of ckpt_log.bin on top — seq-continuous records whose state
  // blobs byte-splice in sequence onto the slot's serialized statistics.
  // The final spliced bytes import once (bitwise-exact), and asks are a
  // pure function of told outcomes and ingested priors, so the resumed
  // strategy re-proposes exactly the recorded batches — anything else is a
  // divergence bug, not a degraded resume.
  ShardCheckpoint ck;
  std::int64_t base_seq = 0;
  std::string base_slot;
  if (dist::load_latest_checkpoint(s->dir, s->study, s->range(), &ck,
                                   &base_seq, &base_slot)) {
    s->told = std::move(ck.told);
    s->seq = ck.seq;
    s->base_seq = ck.seq;
    s->state_bytes = std::move(ck.full_bytes);
    std::vector<tune::ConfigTotals> totals(ck.totals.begin(), ck.totals.end());
    const std::string log_path = s->dir + "/ckpt_log.bin";
    if (core::file_exists(log_path)) {
      // Whatever the log holds, the next journaled tell starts a fresh
      // full slot: appending after a stale or partially-replayed log would
      // strand the new records behind a broken prefix on the next resume.
      s->force_full_slot = true;
      std::int64_t prev_seq = ck.seq;
      for (const std::string& payload :
           dist::scan_log_records(core::read_file(log_path))) {
        TellRecord rec;
        try {
          rec = parse_tell_record(payload, s->study);
          CRITTER_CHECK(rec.seq == prev_seq + 1,
                        "tell journal record out of sequence");
          splice_state_blob(s->state_bytes, rec.state_blob);
        } catch (const std::exception&) {
          break;  // torn/stale tail: everything before it is consistent
        }
        prev_seq = rec.seq;
        for (const auto& [pos, t] : rec.totals)
          totals[static_cast<std::size_t>(pos)] = t;
        s->told.push_back(std::move(rec.told));
        s->seq = rec.seq;
      }
    }
    if (!s->state_bytes.empty())
      s->state_snap = StatSnapshot::from_string(s->state_bytes);
    s->tuner->import_state(s->state_snap);
    for (const ShardCheckpoint::ToldBatch& tb : s->told) {
      const std::vector<int> b = s->tuner->ask();
      CRITTER_CHECK(b == tb.positions,
                    "session journal replay diverged: the resumed strategy "
                    "proposed a different batch");
      s->tuner->tell(tb.outcomes);
    }
    s->tuner->restore_totals(std::move(totals));
    s->next_full_slot =
        base_slot == "ckpt_a.bin" ? "ckpt_b.bin" : "ckpt_a.bin";
  }
  return s;
}

void TunerDaemon::resume_sessions() {
  for (const std::string& name :
       core::list_dir(opt_.state_dir + "/sessions")) {
    if (!valid_session_name(name)) continue;
    if (!core::file_exists(opt_.state_dir + "/sessions/" + name +
                           "/manifest.txt"))
      continue;  // a torn create never got its identity; nothing to resume
    sessions_[name] = load_session(name);
  }
}

TunerDaemon::Session& TunerDaemon::open_session(const OpenRequest& rq) {
  CRITTER_CHECK(valid_session_name(rq.session),
                "tune open: invalid session name '" + rq.session + "'");
  std::lock_guard<std::mutex> lk(sessions_mu_);
  auto it = sessions_.find(rq.session);
  if (it != sessions_.end()) {
    // Joining: concurrent clients must agree on what they are tuning.
    Session& s = *it->second;
    CRITTER_CHECK(rq.manifest == s.manifest_text,
                  "tune open: session '" + rq.session +
                      "' exists with a different study/options identity");
    const std::string warm = s.warm.empty() ? std::string() : s.warm.to_string();
    const std::string prior =
        s.prior.empty() ? std::string() : s.prior.to_string();
    CRITTER_CHECK(rq.warm == warm && rq.prior == prior,
                  "tune open: session '" + rq.session +
                      "' exists with different warm/prior snapshots");
    return s;
  }
  // Fresh session: persist the identity first (manifest + snapshots), then
  // build the in-memory state through the same loader a restart uses.
  const std::string dir = opt_.state_dir + "/sessions/" + rq.session;
  core::make_dir(dir);
  if (!rq.warm.empty()) core::publish_file(dir, "warm.snap", rq.warm);
  if (!rq.prior.empty()) core::publish_file(dir, "prior.snap", rq.prior);
  core::write_file_atomic(dir + "/manifest.txt", rq.manifest);
  auto s = load_session(rq.session);
  Session& ref = *s;
  sessions_[rq.session] = std::move(s);
  return ref;
}

TunerDaemon::Session& TunerDaemon::resolve_session(const std::string& name) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  auto it = sessions_.find(name);
  CRITTER_CHECK(it != sessions_.end(),
                "unknown tuning session '" + name + "' — open it first");
  return *it->second;
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

void TunerDaemon::journal_tell(Session& s, const std::string& state_blob) {
  ScopedHistTimer flush_timer(obs::histogram("serve.journal_flush_seconds"));
  // Between full slots, one constant-sized CRJTELL1 record per tell: the
  // told batch, its totals, and the TELL's state blob verbatim — the
  // sparse patch a client sent splices on resume exactly as it spliced
  // live, so the journal stays bitwise without re-serializing the whole
  // session state per tell (the original full-checkpoint-per-tell scheme
  // cost O(tells²) journal bytes; DESIGN.md §13).  Every kTellsPerFull
  // tells a full slot re-bases the log: `s.state_bytes` is already the
  // serialized statistics, so even the full slot serializes no snapshot.
  ++s.seq;
  const bool full_slot = s.base_seq == 0 || s.force_full_slot ||
                         s.seq - s.base_seq >= kTellsPerFull;
  if (!full_slot) {
    core::append_file(s.dir + "/ckpt_log.bin",
                      dist::frame_log_record(encode_tell_record(
                          s.seq, s.told.back(), s.tuner->totals(),
                          state_blob)));
    return;
  }
  ShardCheckpoint c;
  c.seq = s.seq;
  c.batches = static_cast<int>(s.told.size());
  c.rounds = 0;
  c.in_round = c.batches;  // the non-exchanging worker's cursor shape
  c.told = s.told;
  c.totals = s.tuner->totals();
  c.full = s.state_snap;
  c.full_bytes = s.state_bytes;  // written verbatim: no re-serialization
  const std::string slot = s.next_full_slot;
  core::publish_file(s.dir, slot, dist::serialize_checkpoint(c));
  // Only after the new base is fully published: drop the increment log
  // extending the previous base (a crash in between resumes from whichever
  // base survives; a stale log fails seq continuity and is ignored).
  ::remove((s.dir + "/ckpt_log.bin").c_str());
  s.base_seq = s.seq;
  s.force_full_slot = false;
  s.next_full_slot = slot == "ckpt_a.bin" ? "ckpt_b.bin" : "ckpt_a.bin";
}

void TunerDaemon::flush_session(Session& s) {
  // A flush must be self-contained — it covers sessions opened (or
  // resumed) but not told since, and the final slot a restart resumes
  // from — so it always forces a full slot (there is no freshly told
  // batch to journal incrementally).
  s.force_full_slot = true;
  journal_tell(s, "");
}

// ---------------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------------

void TunerDaemon::accept_loop() {
  while (!stop_.load()) {
    net::Connection conn = listener_->accept(0.2);
    if (!conn.valid()) continue;
    const std::uint64_t id = next_conn_id_.fetch_add(1);
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_threads_.emplace_back(
        [this, id](net::Connection c) { serve_connection(std::move(c), id); },
        std::move(conn));
  }
}

void TunerDaemon::serve_connection(net::Connection conn,
                                   std::uint64_t conn_id) {
  const double deadline = opt_.op_deadline_s;
  try {
    net::Frame hello = net::recv_frame(conn, deadline);
    if (hello.verb != net::kHello || hello.payload != kTuneService) {
      net::send_frame(conn, net::kErr, "tuner daemon: bad handshake",
                      deadline);
      release_claims(conn_id);
      return;
    }
    net::send_frame(conn, net::kOk, "", deadline);
    while (!stop_.load()) {
      if (!conn.readable(0.2)) continue;
      net::Frame rq;
      if (!net::recv_frame_opt(conn, rq, deadline)) break;
      net::Frame rp;
      try {
        rp = handle_request(rq, conn_id);
      } catch (const std::exception& e) {
        rp = {net::kErr, e.what()};
      }
      net::send_frame(conn, rp.verb, rp.payload, deadline);
      if (rq.verb == net::kTuneShutdown) break;
    }
  } catch (const std::exception&) {
    // A torn frame or timed-out peer ends this connection only; its claim
    // (if any) re-issues to the next asker below.
  }
  release_claims(conn_id);
}

void TunerDaemon::release_claims(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto& [name, s] : sessions_) {
    std::lock_guard<std::mutex> slk(s->mu);
    if (s->claimed && s->owner == conn_id) {
      // Orphan, don't abandon: the cached batch re-issues unchanged —
      // client churn costs wall-clock, never determinism (§10 semantics).
      s->owner = 0;
      s->cv.notify_all();
    }
  }
}

net::Frame TunerDaemon::handle_request(const net::Frame& rq,
                                       std::uint64_t conn_id) {
  switch (rq.verb) {
    case net::kTuneOpen: {
      const OpenRequest orq = decode_open(rq.payload);
      Session& s = open_session(orq);
      std::lock_guard<std::mutex> lk(s.mu);
      OpenReply rp;
      rp.nconfigs = static_cast<std::int32_t>(s.study.configs.size());
      rp.tells = static_cast<std::int32_t>(s.told.size());
      rp.done = s.tuner->done();
      return {net::kOk, encode_open_reply(rp)};
    }
    case net::kTuneAsk: {
      obs::ScopedSpan span("serve.ask", "serve");
      ScopedHistTimer timer(obs::histogram("serve.ask_seconds"));
      obs::counter("serve.asks").add();
      const AskRequest arq = decode_ask_request(rq.payload);
      Session& s = resolve_session(arq.session);
      std::unique_lock<std::mutex> lk(s.mu);
      s.bytes_in += static_cast<std::int64_t>(rq.payload.size());
      while (s.claimed && s.owner != 0 && s.owner != conn_id) {
        if (stop_.load())
          throw std::runtime_error("tuner daemon: shutting down");
        s.cv.wait_for(lk, std::chrono::milliseconds(50));
      }
      AskReply rp;
      if (!s.claimed) {
        if (s.tuner->done()) {
          rp.done = true;
          const std::string payload = encode_ask_reply(rp);
          s.bytes_out += static_cast<std::int64_t>(payload.size());
          return {net::kOk, payload};
        }
        const std::vector<int> batch = s.tuner->ask();
        if (batch.empty()) {
          rp.done = true;
          const std::string payload = encode_ask_reply(rp);
          s.bytes_out += static_cast<std::int64_t>(payload.size());
          return {net::kOk, payload};
        }
        s.batch = batch;
        s.claimed = true;
      }
      s.owner = conn_id;
      rp.batch = s.batch;
      rp.control = s.tuner->control();
      rp.state_gen = s.state_gen;
      if (arq.have_gen == s.state_gen) {
        // The asker's mirror already holds these exact bytes (generations
        // only bump when the bytes change, and only TELLs of the single
        // outstanding claim change them) — ship nothing.
        rp.state_mode = 0;
      } else {
        rp.state_mode = 1;
        rp.state = s.state_bytes;  // "" = empty statistics, skip import
      }
      const std::string payload = encode_ask_reply(rp);
      s.bytes_out += static_cast<std::int64_t>(payload.size());
      return {net::kOk, payload};
    }
    case net::kTuneTell: {
      obs::ScopedSpan span("serve.tell", "serve");
      ScopedHistTimer timer(obs::histogram("serve.tell_seconds"));
      obs::counter("serve.tells").add();
      core::WireReader r{rq.payload};
      const std::string name = decode_tell_session(r);
      Session& s = resolve_session(name);
      std::lock_guard<std::mutex> lk(s.mu);
      s.bytes_in += static_cast<std::int64_t>(rq.payload.size());
      TellRequest trq;
      decode_tell_body(r, s.study, &trq);
      CRITTER_CHECK(s.claimed && trq.batch == s.batch,
                    "tune tell: not the claimed batch of session '" + name +
                        "'");
      CRITTER_CHECK(s.owner == conn_id || s.owner == 0,
                    "tune tell: the claimed batch belongs to another client");
      // Three-way state field (serve/protocol.hpp): "" = statistics
      // unchanged; a mode-0 sparse patch against the generation the client
      // was shipped at ASK; or a full payload.  The patch splices into the
      // cached (bytes, snapshot) pair — clean ranks are never re-parsed.
      if (!trq.state.empty()) {
        if (core::is_sparse_payload(trq.state)) {
          CRITTER_CHECK(trq.base_gen == s.state_gen,
                        "tune tell: sparse state patch against a stale "
                        "generation — re-ask and send full state");
          core::apply_sparse_patch_in_place(s.state_bytes, s.state_snap,
                                            trq.state);
          ++s.sparse_tells;
          obs::counter("serve.tells.sparse").add();
        } else {
          obs::counter("serve.tells.full").add();
          s.state_snap = StatSnapshot::from_string(trq.state);
          s.state_bytes = trq.state;
        }
        ++s.state_gen;
      }
      const StatSnapshot no_state;  // empty = unchanged: skip the re-import
      s.tuner->tell_evaluated(trq.outcomes,
                              trq.state.empty() ? no_state : s.state_snap,
                              trq.totals);
      s.told.push_back({trq.batch, std::move(trq.outcomes)});
      journal_tell(s, trq.state);
      s.claimed = false;
      s.owner = 0;
      s.batch.clear();
      s.cv.notify_all();
      const std::string payload = encode_tell_reply(s.state_gen);
      s.bytes_out += static_cast<std::int64_t>(payload.size());
      return {net::kOk, payload};
    }
    case net::kTuneExport: {
      Session& s = resolve_session(decode_session_ref(rq.payload));
      std::lock_guard<std::mutex> lk(s.mu);
      // The cache IS the serialized state (serialize ∘ parse is exact) —
      // no per-export re-serialization.
      return {net::kOk, s.state_bytes};
    }
    case net::kTuneImport: {
      std::string name, snapshot;
      decode_import(rq.payload, &name, &snapshot);
      Session& s = resolve_session(name);
      std::lock_guard<std::mutex> lk(s.mu);
      s.bytes_in += static_cast<std::int64_t>(rq.payload.size());
      // from_string expands mode-1 sparse deltas; to_string canonicalizes
      // the cache to the full v2 payload either way.
      s.state_snap = StatSnapshot::from_string(snapshot);
      s.state_bytes = s.state_snap.to_string();
      s.tuner->import_state(s.state_snap);
      ++s.state_gen;
      // Out-of-band state change between full slots: journal records after
      // it would splice onto bytes no resume can reconstruct — force the
      // next journaled tell to re-base with a full slot.
      s.force_full_slot = true;
      return {net::kOk, ""};
    }
    case net::kTuneStatus: {
      Session& s = resolve_session(decode_session_ref(rq.payload));
      std::lock_guard<std::mutex> lk(s.mu);
      StatusReply rp;
      rp.done = s.tuner->done();
      rp.tells = static_cast<std::int32_t>(s.told.size());
      for (const ShardCheckpoint::ToldBatch& tb : s.told)
        for (const tune::ConfigOutcome& oc : tb.outcomes)
          if (oc.evaluated) ++rp.evaluated;
      if (rp.evaluated > 0)
        rp.best_predicted = s.tuner->result().best_predicted();
      rp.bytes_in = s.bytes_in;
      rp.bytes_out = s.bytes_out;
      rp.sparse_tells = s.sparse_tells;
      rp.text = "session " + s.name + ": " + std::to_string(rp.tells) +
                " tells, " + std::to_string(rp.evaluated) + " evaluated" +
                (rp.done ? ", done" : "") +
                (rp.best_predicted >= 0
                     ? ", best=" + std::to_string(rp.best_predicted)
                     : "") +
                ", wire " + std::to_string(rp.bytes_in) + "B in/" +
                std::to_string(rp.bytes_out) + "B out, " +
                std::to_string(rp.sparse_tells) + " sparse tells";
      rp.metrics = obs::metrics_json();
      return {net::kOk, encode_status_reply(rp)};
    }
    case net::kTuneShutdown: {
      stop_.store(true);
      return {net::kOk, ""};
    }
    default:
      throw std::runtime_error("tuner daemon: unexpected verb " +
                               std::to_string(rq.verb));
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

int read_daemon_port(const std::string& state_dir, double deadline_s) {
  const std::string path = state_dir + "/port";
  const double deadline = core::monotonic_s() + deadline_s;
  while (true) {
    if (core::file_exists(path)) {
      const int port = std::atoi(core::read_file(path).c_str());
      if (port > 0) return port;
    }
    CRITTER_CHECK(core::monotonic_s() < deadline,
                  "tuner daemon did not publish " + path + " within " +
                      std::to_string(deadline_s) + "s");
    core::sleep_ms(10);
  }
}

bool is_tuner_daemon(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--tuner-daemon") == 0) return true;
  return false;
}

int tuner_daemon_main(int argc, char** argv) {
  std::string state_dir;
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--state-dir=", 0) == 0) state_dir = a.substr(12);
    if (a.rfind("--port=", 0) == 0) port = std::atoi(a.c_str() + 7);
  }
  if (state_dir.empty()) {
    obs::log_error("usage: --tuner-daemon --state-dir=DIR [--port=N]");
    return 2;
  }
  struct sigaction sa {};
  sa.sa_handler = daemon_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  try {
    TunerDaemon daemon({state_dir, port});
    std::printf("critter-tuner-daemon port=%d\n", daemon.port());
    std::fflush(stdout);
    while (!daemon.stopping() && g_daemon_terminate == 0) core::sleep_ms(20);
    // stop() flushes a final full checkpoint per session — the graceful
    // SIGTERM/SIGINT contract.
    daemon.stop();
  } catch (const std::exception& e) {
    obs::log_error("tuner daemon: %s", e.what());
    return 1;
  }
  return 0;
}

}  // namespace critter::serve
