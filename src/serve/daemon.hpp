// TunerDaemon: ask/tell tuning as a long-lived multi-client service
// (DESIGN.md §12.3-§12.5).
//
// The daemon owns the authoritative Tuner session per (session name); any
// number of clients connect over TCP (net/socket.hpp, net/frame.hpp) and
// speak the serve/protocol.hpp verbs.  Evaluation happens *client-side*: an
// ASK hands out the claimed batch, the evaluation hints, and the session's
// shared statistics; the client mirrors evaluate() with its own SweepDriver
// and TELLs back outcomes, totals contributions, and its full
// post-evaluation statistics.  Tuner::tell_evaluated *replaces* the session
// state with that snapshot — sound because the mirror started from exactly
// what ASK shipped and only one claim is ever outstanding — so the state
// after every tell is bit-identical to having evaluated locally, and N
// concurrent clients produce exactly the single-process run_study() result.
//
// Determinism across concurrent clients: a session has at most ONE
// outstanding claim.  The first asker claims the next strategy batch;
// later askers block until the claim is told.  A client that disconnects
// mid-batch orphans its claim — the daemon re-issues the *same* batch (same
// hints, same statistics — nothing can change while the claim is open) to
// the next asker, the §10 degrade/skip analogue: churn costs wall-clock,
// never a different answer.
//
// Durability: every TELL journals through the dist/checkpoint.hpp
// machinery — a FULL checkpoint (alternating ckpt_a.bin/ckpt_b.bin slots,
// atomic publish) every kTellsPerFull tells, and a constant-sized CRJTELL1
// record appended to ckpt_log.bin in between.  A journal record carries the
// told batch, its totals, and the TELL's state blob *verbatim* ("" =
// unchanged, sparse patch, or full payload); resume byte-splices the blobs
// onto the base slot's serialized statistics (DESIGN.md §13), so the
// reconstructed state is the exact byte string the live daemon held — the
// bitwise contract the original full-checkpoint-per-tell scheme bought with
// O(tells²) journal bytes, now at O(tells).  A daemon killed outright
// (kill -9 included) and restarted on the same state directory replays
// each session — best full slot, longest valid log prefix, re-ask/re-tell
// strategy-only — into the exact state it held at its last journaled tell;
// a torn append costs at most that one tell.  SIGTERM/SIGINT flush a final
// full checkpoint per session before exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"

namespace critter::serve {

struct DaemonOptions {
  /// Session journals, the port file, and the resume state live here.
  /// Created if missing; a restart on the same directory resumes every
  /// journaled session.
  std::string state_dir;
  /// TCP port to listen on; 0 binds an ephemeral port.  Either way the
  /// bound port is published atomically to <state_dir>/port.
  int port = 0;
  /// Per-operation socket deadline for client connections (a stuck client
  /// cannot wedge its serving thread past this).
  double op_deadline_s = 30.0;
};

class TunerDaemon {
 public:
  /// Binds, resumes journaled sessions, publishes the port file, and starts
  /// serving.  Throws on a bad state directory or an unusable port.
  explicit TunerDaemon(DaemonOptions opt);
  ~TunerDaemon();

  int port() const;

  /// Graceful shutdown: stop accepting, drain connection threads, flush a
  /// final full checkpoint per session.  Idempotent; the destructor calls
  /// it.  kTuneShutdown triggers the same path.
  void stop();

  /// True once stop() ran or a client sent kTuneShutdown.
  bool stopping() const;

  /// Block until stopping() (polling; signal handlers just set a flag and
  /// let the owner call stop()).
  void wait();

  TunerDaemon(const TunerDaemon&) = delete;
  TunerDaemon& operator=(const TunerDaemon&) = delete;

 private:
  struct Session;

  void accept_loop();
  void serve_connection(net::Connection conn, std::uint64_t conn_id);
  net::Frame handle_request(const net::Frame& rq, std::uint64_t conn_id);
  void release_claims(std::uint64_t conn_id);

  Session& resolve_session(const std::string& name);
  Session& open_session(const OpenRequest& rq);
  void resume_sessions();
  std::unique_ptr<Session> load_session(const std::string& name);
  /// Journal one completed tell: a CRJTELL1 log record carrying
  /// `state_blob` (the TELL's state field verbatim) between full slots, a
  /// full checkpoint every kTellsPerFull tells (and whenever
  /// `s.force_full_slot` demands one — an out-of-band import desyncs the
  /// log's patch bases).
  void journal_tell(Session& s, const std::string& state_blob);
  void flush_session(Session& s);

  DaemonOptions opt_;
  std::unique_ptr<net::Listener> listener_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
};

/// Poll <state_dir>/port until the daemon publishes it (or the deadline
/// passes — then throws).  The launcher-side rendezvous.
int read_daemon_port(const std::string& state_dir, double deadline_s = 10.0);

/// True when argv carries --tuner-daemon: main() must then hand the process
/// to tuner_daemon_main() (and exit with its return value) before any other
/// argument handling, with custom workloads registered first — resumed
/// sessions rebuild their studies from the registry.
bool is_tuner_daemon(int argc, char** argv);

/// The --tuner-daemon entry point: --state-dir=DIR [--port=N].  Serves
/// until SIGTERM/SIGINT (flushing every session) or a client's
/// kTuneShutdown.  Returns 0 on a clean exit.
int tuner_daemon_main(int argc, char** argv);

}  // namespace critter::serve
