// TunerClient: the evaluating side of daemon-mediated tuning
// (DESIGN.md §12.4).
//
// A client owns a *mirror* SweepDriver but no strategy: per batch it ASKs
// the daemon, imports the session statistics the reply carries (or skips
// the ship entirely when its generation token proves the mirror already
// holds them), runs the batch under the reply's evaluation hints — exactly
// what Tuner::evaluate() would do — and TELLs back the outcomes, the
// totals contributions, and the statistics it grew as a dirty-rank sparse
// patch (DESIGN.md §13).  Because evaluation is a pure function of
// (study, options, statistics, batch, hints), every client computes the
// same bytes for the same claim, which is why client churn and concurrency
// never change the tuned answer.
//
// Fault handling mirrors the dist layer's degrade-not-abort stance: any
// connection failure mid-iteration abandons the in-flight operation,
// reconnects with exponential backoff, and restarts from ASK.  If the tell
// had landed before the cut, the re-ask claims the next batch; if not, the
// daemon re-issues the orphaned one and the client re-evaluates it to the
// identical result.
#pragma once

#include <memory>
#include <string>

#include "net/frame.hpp"
#include "serve/protocol.hpp"
#include "tune/tuner.hpp"

namespace critter::serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  double connect_deadline_s = 10.0;  ///< FaultPolicy startup phase
  double op_deadline_s = 120.0;      ///< FaultPolicy progress phase
  /// Consecutive failed iterations before run() gives up.
  int max_reconnects = 8;
  double backoff_initial_s = 0.05;
  double backoff_max_s = 1.0;
  /// Stop after evaluating this many batches (0 = until the sweep is
  /// done) — lets a test split one sweep across cooperating clients.
  int max_batches = 0;
  /// Injected churn: close the connection right after the Nth ask of this
  /// client's lifetime, leaving the claim orphaned, and return.  The
  /// daemon-smoke scenario: a disconnected evaluator's batch must re-issue
  /// to its peers with no effect on the tuned result.
  int drop_after_asks = 0;
};

/// What run() did — counters for tests and the bench harness.
struct ClientReport {
  int asks = 0;
  int tells = 0;
  int reconnects = 0;
  bool done = false;     ///< the daemon reported the sweep complete
  bool dropped = false;  ///< returned via drop_after_asks
  double ask_tell_wall_s = 0.0;  ///< summed request round-trip time
};

class TunerClient {
 public:
  /// `study`/`opt` must be the session identity every participating client
  /// agrees on; warm/prior snapshots are forwarded to the daemon on open
  /// (the daemon owns them from then on).  Requires a registry workload,
  /// like the subprocess executor.
  TunerClient(const tune::Study& study, const tune::TuneOptions& opt,
              std::string session, ClientOptions copt);
  ~TunerClient();

  /// Evaluate batches until the sweep is done or a limit hits.
  ClientReport run();

  /// One-shot verbs (connect on demand).
  std::string export_stats();
  StatusReply status();
  void shutdown_daemon();

  TunerClient(const TunerClient&) = delete;
  TunerClient& operator=(const TunerClient&) = delete;

 private:
  void ensure_open();
  net::Frame request(std::uint32_t verb, const std::string& payload);

  tune::Study study_;
  tune::TuneOptions opt_;        ///< mirror options (warm/prior stripped)
  std::string session_;
  ClientOptions copt_;
  std::string open_payload_;     ///< identity + snapshots, rebuilt per open
  std::unique_ptr<tune::SweepDriver> mirror_;
  std::unique_ptr<net::Connection> conn_;
  bool opened_ = false;
  int lifetime_asks_ = 0;
  /// Generation-tracked state mirror (DESIGN.md §13): the exact serialized
  /// session statistics this client last synchronized with the daemon, and
  /// the daemon's generation token for them.  A matching token lets ASK
  /// ship nothing (the mirror already holds the bytes) and lets TELL ship
  /// a sparse patch against them.  Reset on ANY failure or reconnect —
  /// generation tokens are only comparable within one daemon lifetime and
  /// one uninterrupted exchange.
  std::string held_state_;
  std::uint64_t held_gen_ = 0;
};

}  // namespace critter::serve
