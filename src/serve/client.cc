#include "serve/client.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/fsio.hpp"
#include "core/stat_store.hpp"
#include "dist/manifest.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "tune/evaluator.hpp"
#include "tune/sweep.hpp"
#include "util/check.hpp"

namespace critter::serve {

using core::StatSnapshot;

TunerClient::TunerClient(const tune::Study& study,
                         const tune::TuneOptions& opt, std::string session,
                         ClientOptions copt)
    : study_(study),
      opt_(opt),
      session_(std::move(session)),
      copt_(std::move(copt)) {
  CRITTER_CHECK(valid_session_name(session_),
                "invalid tuning session name '" + session_ + "'");
  // The session identity every participant must agree on, in the run-
  // manifest codec — generated from (study, options) so cooperating
  // clients produce it byte-identically.
  std::string manifest;
  dist::write_study_identity(manifest, study_,
                             dist::detect_paper_scale(study_));
  dist::write_tune_options(manifest, opt_);
  const bool warm = opt_.warm_start != nullptr && !opt_.warm_start->empty();
  const bool prior = opt_.prior != nullptr && !opt_.prior->empty();
  manifest += "warm_start=" + std::string(warm ? "1" : "0") + "\n";
  manifest += "prior_snap=" + std::string(prior ? "1" : "0") + "\n";
  OpenRequest orq;
  orq.session = session_;
  orq.manifest = std::move(manifest);
  if (warm) orq.warm = opt_.warm_start->to_string();
  if (prior) orq.prior = opt_.prior->to_string();
  open_payload_ = encode_open(orq);
  // The daemon owns the snapshots and the strategy from here on; the
  // mirror evaluates whole-study batches with state imported per ask, so
  // it runs the daemon's full range regardless of the caller's slicing.
  opt_.warm_start = nullptr;
  opt_.prior = nullptr;
  opt_.config_begin = 0;
  opt_.config_end = -1;
  mirror_ = std::make_unique<tune::SweepDriver>(study_, opt_);
}

TunerClient::~TunerClient() = default;

net::Frame TunerClient::request(std::uint32_t verb,
                                const std::string& payload) {
  net::send_frame(*conn_, verb, payload, copt_.op_deadline_s);
  net::Frame reply = net::recv_frame(*conn_, copt_.op_deadline_s);
  if (reply.verb == net::kErr)
    throw std::runtime_error("tuner daemon error: " + reply.payload);
  CRITTER_CHECK(reply.verb == net::kOk, "tuner client: unexpected reply verb");
  return reply;
}

void TunerClient::ensure_open() {
  if (opened_ && conn_ != nullptr && conn_->valid()) return;
  opened_ = false;
  // A (re)connect invalidates the generation cache: tokens are only
  // comparable within one daemon lifetime, and a restarted daemon restarts
  // them — the first ask after any reconnect must fetch full state.
  held_state_.clear();
  held_gen_ = 0;
  conn_ = std::make_unique<net::Connection>(net::Connection::connect(
      copt_.host, copt_.port, copt_.connect_deadline_s));
  net::send_frame(*conn_, net::kHello, kTuneService, copt_.op_deadline_s);
  const net::Frame hello = net::recv_frame(*conn_, copt_.op_deadline_s);
  CRITTER_CHECK(hello.verb == net::kOk,
                "tuner daemon rejected the handshake: " + hello.payload);
  const net::Frame orp = request(net::kTuneOpen, open_payload_);
  const OpenReply rp = decode_open_reply(orp.payload);
  CRITTER_CHECK(rp.nconfigs == static_cast<std::int32_t>(study_.configs.size()),
                "tuner daemon session disagrees about the study size");
  opened_ = true;
}

ClientReport TunerClient::run() {
  ClientReport rep;
  const int nconf = static_cast<int>(study_.configs.size());
  double backoff = copt_.backoff_initial_s;
  int consecutive_failures = 0;
  while (true) {
    if (copt_.max_batches > 0 && rep.tells >= copt_.max_batches) break;
    try {
      ensure_open();
      double t0 = core::monotonic_s();
      AskRequest arq;
      arq.session = session_;
      arq.have_gen = held_gen_;
      const net::Frame arf = request(net::kTuneAsk, encode_ask_request(arq));
      rep.ask_tell_wall_s += core::monotonic_s() - t0;
      ++rep.asks;
      ++lifetime_asks_;
      if (copt_.drop_after_asks > 0 &&
          lifetime_asks_ >= copt_.drop_after_asks) {
        // Injected churn: walk away with the claim open; the daemon must
        // re-issue it unchanged.
        conn_->close();
        opened_ = false;
        rep.dropped = true;
        break;
      }
      const AskReply ar = decode_ask_reply(arf.payload);
      if (ar.done) {
        rep.done = true;
        break;
      }
      // Mirror Tuner::evaluate(): import the session statistics the claim
      // was issued against, run the batch under the issued hints, and
      // extract exactly what the evaluation grew/accumulated.  Mode 0
      // means the daemon verified our generation token: the mirror already
      // holds these exact bytes from the previous iteration — no payload,
      // no parse, no import (the steady-state single-client fast path).
      if (ar.state_mode != 0) {
        if (!ar.state.empty()) {
          const StatSnapshot state = StatSnapshot::from_string(ar.state);
          if (!state.empty()) mirror_->import_stats(state);
        }
        held_state_ = ar.state;
        held_gen_ = ar.state_gen;
      }
      std::vector<tune::ConfigOutcome> out(
          static_cast<std::size_t>(nconf));
      for (int i = 0; i < nconf; ++i)
        out[static_cast<std::size_t>(i)].config =
            study_.configs[static_cast<std::size_t>(i)];
      std::vector<tune::ConfigTotals> tot(static_cast<std::size_t>(nconf));
      mirror_->run_batch(ar.batch, ar.control, out, tot);
      TellRequest trq;
      trq.session = session_;
      trq.batch = ar.batch;
      for (int pos : ar.batch) {
        trq.outcomes.push_back(out[static_cast<std::size_t>(pos)]);
        trq.totals.push_back(tot[static_cast<std::size_t>(pos)]);
      }
      // Ship the post-evaluation state relative to the base the daemon
      // issued the claim against: nothing when the bytes are unchanged, a
      // mode-0 sparse patch when we hold the base (byte splicing, so the
      // daemon's state stays bitwise what a full ship would make it —
      // never a stats diff, whose merge round trip drifts by ulps), a full
      // payload when we hold no base.  base_gen names the base; the
      // daemon rejects a patch against a generation it no longer has.
      const StatSnapshot after = mirror_->stats();
      std::string after_bytes;
      if (!after.empty()) after_bytes = after.to_string();
      trq.base_gen = held_gen_;
      if (after_bytes == held_state_) {
        // unchanged: trq.state stays "" and the daemon skips the import
      } else if (held_state_.empty()) {
        trq.state = after_bytes;
      } else {
        try {
          trq.state = core::encode_sparse_patch(held_state_, after_bytes);
        } catch (const std::exception&) {
          trq.state = after_bytes;  // e.g. rank count changed: ship full
        }
      }
      t0 = core::monotonic_s();
      const net::Frame trf = request(net::kTuneTell, encode_tell(trq));
      rep.ask_tell_wall_s += core::monotonic_s() - t0;
      held_gen_ = decode_tell_reply(trf.payload);
      if (!trq.state.empty()) held_state_ = std::move(after_bytes);
      ++rep.tells;
      consecutive_failures = 0;
      backoff = copt_.backoff_initial_s;
    } catch (const std::exception& e) {
      // Abandon the in-flight operation and restart from ASK: if the tell
      // landed, the re-ask claims the next batch; if not, the orphaned one
      // re-issues and re-evaluates to the identical result.
      if (conn_) conn_->close();
      opened_ = false;
      ++rep.reconnects;
      if (++consecutive_failures > copt_.max_reconnects)
        throw std::runtime_error(
            "tuner client: giving up after " +
            std::to_string(consecutive_failures) +
            " consecutive failures — last: " + e.what());
      core::sleep_ms(static_cast<int>(backoff * 1000));
      backoff = std::min(backoff * 2, copt_.backoff_max_s);
    }
  }
  return rep;
}

std::string TunerClient::export_stats() {
  ensure_open();
  return request(net::kTuneExport, encode_session_ref(session_)).payload;
}

StatusReply TunerClient::status() {
  ensure_open();
  return decode_status_reply(
      request(net::kTuneStatus, encode_session_ref(session_)).payload);
}

void TunerClient::shutdown_daemon() {
  ensure_open();
  request(net::kTuneShutdown, "");
}

}  // namespace critter::serve
