#include "sim/engine.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace critter::sim {

namespace {
// One engine is confined to one OS thread; the thread's currently running
// engine lives in a thread-local slot so rank-side free functions can find
// their context.  Independent engines on different threads never interact.
thread_local Engine* g_engine = nullptr;
}  // namespace

ReduceFn reduce_sum_double() {
  return [](const void* in, void* inout, int bytes) {
    const auto* a = static_cast<const double*>(in);
    auto* b = static_cast<double*>(inout);
    for (int i = 0; i < bytes / 8; ++i) b[i] += a[i];
  };
}
ReduceFn reduce_max_double() {
  return [](const void* in, void* inout, int bytes) {
    const auto* a = static_cast<const double*>(in);
    auto* b = static_cast<double*>(inout);
    for (int i = 0; i < bytes / 8; ++i) b[i] = std::max(b[i], a[i]);
  };
}
ReduceFn reduce_sum_i64() {
  return [](const void* in, void* inout, int bytes) {
    const auto* a = static_cast<const std::int64_t*>(in);
    auto* b = static_cast<std::int64_t*>(inout);
    for (int i = 0; i < bytes / 8; ++i) b[i] += a[i];
  };
}
ReduceFn reduce_max_i64() {
  return [](const void* in, void* inout, int bytes) {
    const auto* a = static_cast<const std::int64_t*>(in);
    auto* b = static_cast<std::int64_t*>(inout);
    for (int i = 0; i < bytes / 8; ++i) b[i] = std::max(b[i], a[i]);
  };
}

struct Engine::RankState {
  RankCtx ctx;
  std::unique_ptr<Fiber> fiber;
  enum class St { Ready, Running, Blocked, Done } st = St::Ready;
  const char* block_reason = nullptr;
  std::uint64_t blocked_req = 0;
  int split_result = -1;
};

// --- ReadyHeap -------------------------------------------------------------

void Engine::ReadyHeap::push(double time, int rank) {
  // Batched sift-up: hold the new entry in registers, shift losing parents
  // down, store once at the final hole.
  times_.push_back(0.0);
  ranks_.push_back(0);
  std::size_t i = times_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(parent, time, rank)) {
      times_[i] = times_[parent];
      ranks_[i] = ranks_[parent];
      i = parent;
      ++sift_steps_;
    } else {
      break;
    }
  }
  times_[i] = time;
  ranks_[i] = rank;
}

int Engine::ReadyHeap::pop() {
  const int rank = ranks_[0];
  const double time = times_.back();
  const int last = ranks_.back();
  times_.pop_back();
  ranks_.pop_back();
  const std::size_t n = times_.size();
  if (n == 0) return rank;
  // Batched sift-down of the displaced last entry: the hole descends toward
  // the smaller child, one store per level, until the entry fits.
  std::size_t i = 0;
  for (;;) {
    const std::size_t l = 2 * i + 1, r = l + 1;
    if (l >= n) break;
    std::size_t c = l;
    if (r < n && less(r, times_[l], ranks_[l])) c = r;
    if (!less(c, time, last)) break;
    times_[i] = times_[c];
    ranks_[i] = ranks_[c];
    i = c;
    ++sift_steps_;
  }
  times_[i] = time;
  ranks_[i] = last;
  return rank;
}

// --- ReqTable --------------------------------------------------------------

std::uint64_t Engine::ReqTable::alloc(ReqState** out) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.active = true;
  s.st = ReqState{};
  *out = &s.st;
  return (static_cast<std::uint64_t>(slot) + 1) << 32 | s.gen;
}

Engine::ReqState* Engine::ReqTable::find(std::uint64_t id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return nullptr;
  Slot& s = slots_[hi - 1];
  if (!s.active || s.gen != static_cast<std::uint32_t>(id)) return nullptr;
  return &s.st;
}

void Engine::ReqTable::release(std::uint64_t id) {
  const std::uint32_t slot = static_cast<std::uint32_t>((id >> 32) - 1);
  Slot& s = slots_[slot];
  s.active = false;
  ++s.gen;  // stale ids now fail find()
  free_.push_back(slot);
}

// --- CollTable -------------------------------------------------------------

int Engine::CollTable::alloc() {
  if (!free_.empty()) {
    const int slot = free_.back();
    free_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<int>(slots_.size()) - 1;
}

// --- message-buffer pool ----------------------------------------------------

std::vector<std::byte> Engine::pool_acquire(int bytes) {
  std::vector<std::byte> v;
  if (!pool_.empty()) {
    v = std::move(pool_.back());
    pool_.pop_back();
  }
  v.resize(bytes);  // contents are always fully overwritten by the caller
  return v;
}

void Engine::pool_release(std::vector<std::byte>&& buf) {
  if (buf.capacity() > 0 && pool_.size() < 4096) pool_.push_back(std::move(buf));
}

// --- engine ----------------------------------------------------------------

Engine::Engine(int nranks, Machine machine, std::uint64_t seed_salt)
    : nranks_(nranks), machine_(machine),
      seed_(util::hash_combine(machine.seed, seed_salt)) {
  CRITTER_CHECK(nranks >= 1, "engine needs at least one rank");
  ranks_.resize(nranks_);
  for (int r = 0; r < nranks_; ++r) {
    ranks_[r].ctx.rank = r;
    ranks_[r].ctx.engine = this;
  }
  ready_.reserve(nranks_);
  std::vector<int> all(nranks_);
  for (int r = 0; r < nranks_; ++r) all[r] = r;
  register_comm(std::move(all));  // id 0 == world
}

Engine::~Engine() = default;

int Engine::register_comm(std::vector<int> members) {
  CommData cd;
  cd.members = std::move(members);
  cd.local_of_world.assign(nranks_, -1);
  for (std::size_t i = 0; i < cd.members.size(); ++i)
    cd.local_of_world[cd.members[i]] = static_cast<int>(i);
  cd.seq.assign(cd.members.size(), 0);
  comms_.push_back(std::move(cd));
  return static_cast<int>(comms_.size()) - 1;
}

RankCtx& Engine::ctx() {
  CRITTER_CHECK(g_engine != nullptr && g_engine->running_ >= 0,
                "sim API called outside a rank fiber");
  return g_engine->ranks_[g_engine->running_].ctx;
}

bool Engine::in_rank() { return g_engine != nullptr && g_engine->running_ >= 0; }

Engine::RankState& Engine::current() {
  CRITTER_CHECK(running_ >= 0, "no rank is running");
  return ranks_[running_];
}

int Engine::comm_size(Comm c) const {
  return static_cast<int>(comms_.at(c.id).members.size());
}

int Engine::comm_rank(Comm c) const {
  const int wr = ranks_[running_].ctx.rank;
  const int lr = comms_.at(c.id).local_of_world[wr];
  CRITTER_CHECK(lr >= 0, "rank not a member of this communicator");
  return lr;
}

const std::vector<int>& Engine::comm_members(Comm c) const {
  return comms_.at(c.id).members;
}

double Engine::noise_comm(std::uint64_t k1, std::uint64_t k2) const {
  return util::lognormal_factor(machine_.comm_noise,
                                util::hash_combine(seed_, k1), k2);
}

void Engine::sync_to_min() {
  RankState& rs = current();
  if (ready_.empty()) return;
  if (rs.ctx.clock < ready_.top_time() ||
      (rs.ctx.clock == ready_.top_time() && rs.ctx.rank <= ready_.top_rank()))
    return;
  // Another runnable rank is earlier in virtual time; let it act first so
  // communication events are processed in order.
  ready_.push(rs.ctx.clock, rs.ctx.rank);
  rs.st = RankState::St::Ready;
  const int self = running_;
  rs.fiber->yield();
  CRITTER_CHECK(running_ == self, "scheduler resumed wrong fiber");
}

void Engine::block_current(const char* why) {
  RankState& rs = current();
  rs.st = RankState::St::Blocked;
  rs.block_reason = why;
  rs.fiber->yield();
  CRITTER_CHECK(rs.st == RankState::St::Running, "resumed while not running");
}

void Engine::make_ready(int rank, double at_time) {
  RankState& rs = ranks_[rank];
  CRITTER_CHECK(rs.st == RankState::St::Blocked, "waking a non-blocked rank");
  rs.ctx.clock = std::max(rs.ctx.clock, at_time);
  rs.st = RankState::St::Ready;
  rs.blocked_req = 0;
  rs.block_reason = nullptr;
  ready_.push(rs.ctx.clock, rs.ctx.rank);
}

void Engine::f_advance(double seconds) {
  CRITTER_CHECK(seconds >= 0.0, "cannot advance time backwards");
  current().ctx.clock += seconds;
}

void Engine::f_send(const void* buf, int bytes, int dest, int tag, Comm c) {
  // Buffered semantics: the isend request is already complete.
  const Request r = f_isend(buf, bytes, dest, tag, c);
  reqs_.release(r.id);
}

Request Engine::f_isend(const void* buf, int bytes, int dest, int tag, Comm c) {
  RankState& rs = current();
  sync_to_min();
  const CommData& cd = comms_.at(c.id);
  CRITTER_CHECK(dest >= 0 && dest < static_cast<int>(cd.members.size()),
                "send destination out of range");
  const int src_local = cd.local_of_world[rs.ctx.rank];
  CRITTER_CHECK(src_local >= 0, "sender not in communicator");

  rs.ctx.clock += machine_.alpha;  // injection overhead
  const P2PKey key{c.id, dest, src_local, tag};
  const std::uint64_t sq = pair_seq_[key]++;
  const double noise = noise_comm(
      util::hash_combine(static_cast<std::uint64_t>(c.id) * 1315423911ULL + tag,
                         (static_cast<std::uint64_t>(src_local) << 20) | dest),
      sq);
  const double avail =
      rs.ctx.clock + machine_.beta * static_cast<double>(bytes) * noise;
  ++p2p_count_;

  // Model-mode fast path: a null buffer ships no payload, so nothing is
  // copied and no allocation happens on either side.
  std::vector<std::byte> data;
  if (buf != nullptr && bytes > 0) {
    data = pool_acquire(bytes);
    std::memcpy(data.data(), buf, bytes);
  }

  auto* pr = posted_recvs_.find(key);
  if (pr != nullptr && !pr->empty()) {
    const std::uint64_t rid = pr->front();
    pr->pop_front();
    ReqState* q = reqs_.find(rid);
    CRITTER_CHECK(q != nullptr, "posted recv request vanished");
    CRITTER_CHECK(q->bytes == bytes, "p2p message size mismatch");
    if (q->recv_buf != nullptr && !data.empty())
      std::memcpy(q->recv_buf, data.data(), bytes);
    pool_release(std::move(data));
    q->done = true;
    q->done_time = avail;
    RankState& owner = ranks_[q->owner];
    if (owner.st == RankState::St::Blocked && owner.blocked_req == rid)
      make_ready(owner.ctx.rank, avail);
  } else {
    mailbox_[key].push_back(MsgInFlight{avail, bytes, std::move(data)});
  }

  // Eager/buffered: the send buffer is copied, so the request is
  // immediately complete at the sender's current clock.
  ReqState* q = nullptr;
  Request r{reqs_.alloc(&q)};
  q->done = true;
  q->done_time = rs.ctx.clock;
  q->owner = rs.ctx.rank;
  return r;
}

Request Engine::f_irecv(void* buf, int bytes, int src, int tag, Comm c) {
  RankState& rs = current();
  sync_to_min();
  const CommData& cd = comms_.at(c.id);
  const int me = cd.local_of_world[rs.ctx.rank];
  CRITTER_CHECK(me >= 0, "receiver not in communicator");
  CRITTER_CHECK(src >= 0 && src < static_cast<int>(cd.members.size()),
                "recv source out of range (wildcards unsupported)");
  const P2PKey key{c.id, me, src, tag};

  ReqState* q = nullptr;
  Request r{reqs_.alloc(&q)};
  q->owner = rs.ctx.rank;
  q->is_recv = true;
  q->recv_buf = buf;
  q->bytes = bytes;

  auto* mb = mailbox_.find(key);
  if (mb != nullptr && !mb->empty()) {
    MsgInFlight& msg = mb->front();
    CRITTER_CHECK(msg.bytes == bytes, "p2p message size mismatch");
    if (buf != nullptr && !msg.data.empty())
      std::memcpy(buf, msg.data.data(), bytes);
    q->done = true;
    q->done_time = msg.avail;
    pool_release(std::move(msg.data));
    mb->pop_front();
  } else {
    posted_recvs_[key].push_back(r.id);
  }
  return r;
}

void Engine::f_recv(void* buf, int bytes, int src, int tag, Comm c) {
  f_wait(f_irecv(buf, bytes, src, tag, c));
}

void Engine::f_wait(Request r) {
  RankState& rs = current();
  sync_to_min();
  ReqState* q = reqs_.find(r.id);
  CRITTER_CHECK(q != nullptr, "wait on unknown or already-waited request");
  CRITTER_CHECK(q->owner == rs.ctx.rank, "wait on another rank's request");
  if (!q->done) {
    rs.blocked_req = r.id;
    block_current("wait");  // q stays valid: slots live in a stable deque
  } else {
    rs.ctx.clock = std::max(rs.ctx.clock, q->done_time);
  }
  const int coll_slot = q->coll_slot;
  reqs_.release(r.id);
  if (coll_slot >= 0 && --colls_[coll_slot].outstanding_waits == 0)
    release_coll(coll_slot);
}

bool Engine::f_test(Request r) {
  RankState& rs = current();
  sync_to_min();
  ReqState* q = reqs_.find(r.id);
  CRITTER_CHECK(q != nullptr, "test on unknown request");
  if (!q->done) return false;
  rs.ctx.clock = std::max(rs.ctx.clock, q->done_time);
  const int coll_slot = q->coll_slot;
  reqs_.release(r.id);
  if (coll_slot >= 0 && --colls_[coll_slot].outstanding_waits == 0)
    release_coll(coll_slot);
  return true;
}

void Engine::release_coll(int slot) {
  CollOp& op = colls_[slot];
  auto& active = comms_.at(op.comm_id).active;
  for (auto it = active.begin(); it != active.end(); ++it) {
    if (it->second == slot) {
      *it = active.back();
      active.pop_back();
      break;
    }
  }
  colls_.release(slot);
}

Request Engine::f_icoll(CollType type, const void* sendbuf, void* recvbuf,
                        int bytes, int root, const ReduceFn& fn, Comm c) {
  RankState& rs = current();
  sync_to_min();
  CommData& cd = comms_.at(c.id);
  const int p = static_cast<int>(cd.members.size());
  const int lr = cd.local_of_world[rs.ctx.rank];
  CRITTER_CHECK(lr >= 0, "caller not in communicator");
  const std::uint64_t seq = cd.seq[lr]++;

  int slot = -1;
  for (const auto& [sq, sl] : cd.active) {
    if (sq == seq) {
      slot = sl;
      break;
    }
  }
  const bool inserted = slot < 0;
  if (inserted) {
    slot = colls_.alloc();
    cd.active.emplace_back(seq, slot);
  }
  CollOp& op = colls_[slot];
  if (inserted) {
    op.type = type;
    op.bytes = bytes;
    op.root = root;
    op.arrived = 0;
    op.comm_id = c.id;
    op.seq = seq;
    op.max_arrival = 0.0;
    op.root_arrived = false;
    op.root_time = 0.0;
    op.fn = fn;
    op.contrib.resize(p);
    for (auto& v : op.contrib) v.clear();  // recycled slots keep capacity
    op.recv_bufs.assign(p, nullptr);
    op.req_ids.assign(p, 0);
    op.has_arrived.assign(p, false);
    op.arrival.assign(p, 0.0);
    op.colorkey.clear();
    if (type == CollType::Split) op.colorkey.resize(p);
    op.folded.clear();
    op.folded_done = false;
    op.split_done = false;
    op.outstanding_waits = p;
    op.cost = machine_.coll_cost(type, bytes, p) *
              noise_comm(util::hash_combine(0xC011EC71FULL,
                                            static_cast<std::uint64_t>(c.id)),
                         seq);
    ++coll_count_;
  } else if (op.type != type || op.bytes != bytes || op.root != root) {
    // Diagnostic built only on actual mismatch: the happy path must not pay
    // for an ostringstream per collective arrival.
    std::ostringstream os;
    os << "collective mismatch on comm " << c.id << " seq " << seq << ": "
       << coll_name(op.type) << "/" << op.bytes << "/root " << op.root
       << " vs " << coll_name(type) << "/" << bytes << "/root " << root;
    CRITTER_CHECK(false, os.str());
  }

  // Stage this rank's contribution.
  const bool is_root = (lr == root);
  int contrib_bytes = 0;
  switch (type) {
    case CollType::Bcast: contrib_bytes = is_root ? bytes : 0; break;
    case CollType::Reduce:
    case CollType::Allreduce:
    case CollType::Allgather:
    case CollType::Gather: contrib_bytes = bytes; break;
    case CollType::Scatter: contrib_bytes = is_root ? bytes * p : 0; break;
    case CollType::Barrier: contrib_bytes = 0; break;
    case CollType::Split: {
      const int* ck = static_cast<const int*>(sendbuf);
      op.colorkey[lr] = {ck[0], ck[1]};
      contrib_bytes = 0;
      break;
    }
  }
  if (contrib_bytes > 0 && sendbuf != nullptr) {
    op.contrib[lr].resize(contrib_bytes);
    std::memcpy(op.contrib[lr].data(), sendbuf, contrib_bytes);
  }
  op.recv_bufs[lr] = recvbuf;

  ReqState* q = nullptr;
  Request r{reqs_.alloc(&q)};
  q->owner = rs.ctx.rank;
  q->coll_slot = slot;
  op.req_ids[lr] = r.id;

  ++op.arrived;
  op.has_arrived[lr] = true;
  op.arrival[lr] = rs.ctx.clock;
  op.max_arrival = std::max(op.max_arrival, rs.ctx.clock);

  // Completion semantics depend on the operation's data-flow direction:
  //  * allreduce / allgather / barrier / split synchronize everyone;
  //  * bcast / scatter receivers depend on the root only (a pipelined MPI
  //    broadcast does not make receivers wait for one another);
  //  * reduce / gather contributors inject their payload and leave — only
  //    the root waits for everyone.
  switch (type) {
    case CollType::Allreduce:
    case CollType::Allgather:
    case CollType::Barrier:
    case CollType::Split:
      if (op.arrived == p) complete_coll_sync(c.id, op);
      break;
    case CollType::Bcast:
    case CollType::Scatter: {
      const CommData& cdata = comms_.at(c.id);
      if (lr == root) {
        op.root_arrived = true;
        op.root_time = rs.ctx.clock;
        for (int m = 0; m < p; ++m)
          if (op.has_arrived[m])
            finalize_coll_member(op, cdata, m,
                                 std::max(op.arrival[m], op.root_time + op.cost));
      } else if (op.root_arrived) {
        finalize_coll_member(op, cdata, lr,
                             std::max(rs.ctx.clock, op.root_time + op.cost));
      }
      break;
    }
    case CollType::Reduce:
    case CollType::Gather: {
      const CommData& cdata = comms_.at(c.id);
      if (lr != root)
        finalize_coll_member(op, cdata, lr, rs.ctx.clock + machine_.alpha);
      if (op.arrived == p)
        finalize_coll_member(op, cdata, root, op.max_arrival + op.cost);
      break;
    }
  }
  return r;
}

void Engine::finalize_coll_member(CollOp& op, const CommData& cd, int lr,
                                  double when) {
  ReqState* q = reqs_.find(op.req_ids[lr]);
  CRITTER_CHECK(q != nullptr, "collective request state missing");
  if (q->done) return;
  deliver_coll_data(op, cd, lr);
  q->done = true;
  q->done_time = when;
  RankState& owner = ranks_[cd.members[lr]];
  if (owner.st == RankState::St::Blocked && owner.blocked_req == op.req_ids[lr])
    make_ready(owner.ctx.rank, when);
}

void Engine::complete_coll_sync(int comm_id, CollOp& op) {
  const int p = static_cast<int>(comms_.at(comm_id).members.size());
  const double completion = op.max_arrival + op.cost;
  // Deliver data for everyone; re-fetch the comm each call because Split
  // registers communicators, which can reallocate comms_.
  for (int lr = 0; lr < p; ++lr) deliver_coll_data(op, comms_.at(comm_id), lr);
  const CommData& cd = comms_.at(comm_id);
  for (int lr = 0; lr < p; ++lr) {
    ReqState* q = reqs_.find(op.req_ids[lr]);
    CRITTER_CHECK(q != nullptr, "collective request state missing");
    if (q->done) continue;
    q->done = true;
    q->done_time = completion;
    RankState& owner = ranks_[cd.members[lr]];
    if (owner.st == RankState::St::Blocked && owner.blocked_req == op.req_ids[lr])
      make_ready(owner.ctx.rank, completion);
  }
}

void Engine::deliver_coll_data(CollOp& op, const CommData& cd, int lr) {
  const int p = static_cast<int>(cd.members.size());
  const int bytes = op.bytes;
  // Lazily fold reduction contributions once (valid only when everyone has
  // arrived, which the per-type finalize ordering guarantees).
  auto folded = [&]() -> const std::vector<std::byte>& {
    if (!op.folded_done) {
      op.folded_done = true;
      if (!op.contrib[0].empty()) {
        op.folded = op.contrib[0];
        for (int m = 1; m < p; ++m) {
          CRITTER_CHECK(!op.contrib[m].empty(), "reduce with partial data");
          op.fn(op.contrib[m].data(), op.folded.data(), bytes);
        }
      }
    }
    return op.folded;
  };
  switch (op.type) {
    case CollType::Bcast: {
      const auto& src = op.contrib[op.root];
      if (src.empty()) return;  // model mode
      if (op.recv_bufs[lr] != nullptr && lr != op.root)
        std::memcpy(op.recv_bufs[lr], src.data(), bytes);
      return;
    }
    case CollType::Reduce: {
      if (lr != op.root) return;
      const auto& acc = folded();
      if (!acc.empty() && op.recv_bufs[lr] != nullptr)
        std::memcpy(op.recv_bufs[lr], acc.data(), bytes);
      return;
    }
    case CollType::Allreduce: {
      const auto& acc = folded();
      if (!acc.empty() && op.recv_bufs[lr] != nullptr)
        std::memcpy(op.recv_bufs[lr], acc.data(), bytes);
      return;
    }
    case CollType::Allgather:
    case CollType::Gather: {
      if (op.type == CollType::Gather && lr != op.root) return;
      void* dst = op.recv_bufs[lr];
      if (dst == nullptr || op.contrib[0].empty()) return;
      for (int s = 0; s < p; ++s) {
        CRITTER_CHECK(!op.contrib[s].empty(), "gather with partial data");
        std::memcpy(static_cast<std::byte*>(dst) + static_cast<std::size_t>(s) * bytes,
                    op.contrib[s].data(), bytes);
      }
      return;
    }
    case CollType::Scatter: {
      const auto& src = op.contrib[op.root];
      if (src.empty()) return;
      if (op.recv_bufs[lr] != nullptr)
        std::memcpy(op.recv_bufs[lr],
                    src.data() + static_cast<std::size_t>(lr) * bytes, bytes);
      return;
    }
    case CollType::Barrier:
      return;
    case CollType::Split: {
      if (op.split_done) return;
      op.split_done = true;
      // Group members by color, order each group by (key, world rank), and
      // register one new communicator per color.  Cold path: std::map keeps
      // the color iteration order deterministic.
      std::map<int, std::vector<std::pair<std::pair<int, int>, int>>> groups;
      for (int m = 0; m < p; ++m) {
        const int color = op.colorkey[m][0];
        const int key = op.colorkey[m][1];
        groups[color].push_back({{key, cd.members[m]}, cd.members[m]});
      }
      for (auto& [color, v] : groups) {
        std::sort(v.begin(), v.end());
        std::vector<int> members;
        members.reserve(v.size());
        for (auto& e : v) members.push_back(e.second);
        const int id = register_comm(std::move(members));
        for (auto& e : v) ranks_[e.second].split_result = id;
      }
      return;
    }
  }
}

void Engine::f_coll(CollType type, const void* sendbuf, void* recvbuf,
                    int bytes, int root, const ReduceFn& fn, Comm c) {
  f_wait(f_icoll(type, sendbuf, recvbuf, bytes, root, fn, c));
}

Comm Engine::f_split(Comm parent, int color, int key) {
  RankState& rs = current();
  const int ck[2] = {color, key};
  f_coll(CollType::Split, ck, nullptr, 0, 0, nullptr, parent);
  CRITTER_CHECK(rs.split_result >= 0, "split produced no communicator");
  const Comm out{rs.split_result};
  rs.split_result = -1;
  return out;
}

namespace {

/// One flush per completed run keeps the event loop itself free of atomics:
/// the engine accumulates plain per-instance counters and deposits them
/// here.  References are resolved once per process (registry entries are
/// never deleted).
void flush_run_metrics(std::int64_t switches, std::int64_t sifts,
                       std::int64_t p2p, std::int64_t coll) {
  static obs::Counter& jobs = obs::counter("sim.jobs");
  static obs::Counter& fiber_switches = obs::counter("sim.fiber_switches");
  static obs::Counter& heap_sifts = obs::counter("sim.heap_sifts");
  static obs::Counter& p2p_msgs = obs::counter("sim.p2p_msgs");
  static obs::Counter& coll_ops = obs::counter("sim.coll_ops");
  jobs.add(1);
  fiber_switches.add(static_cast<std::uint64_t>(switches));
  heap_sifts.add(static_cast<std::uint64_t>(sifts));
  p2p_msgs.add(static_cast<std::uint64_t>(p2p));
  coll_ops.add(static_cast<std::uint64_t>(coll));
}

}  // namespace

void Engine::run(const std::function<void(RankCtx&)>& body) {
  CRITTER_CHECK(final_clocks_.empty(), "Engine::run may only be called once");
  obs::ScopedSpan span("sim.run", "sim", "ranks",
                       static_cast<std::uint64_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    RankState* rs = &ranks_[r];
    rs->fiber = std::make_unique<Fiber>([this, rs, &body] { body(rs->ctx); });
    ready_.push(0.0, r);
  }
  Engine* prev = g_engine;
  g_engine = this;
  while (!ready_.empty()) {
    const int r = ready_.pop();
    RankState& rs = ranks_[r];
    rs.st = RankState::St::Running;
    running_ = r;
    rs.fiber->resume();
    ++fiber_switches_;
    running_ = -1;
    if (rs.fiber->finished()) {
      rs.st = RankState::St::Done;
      if (rs.fiber->error() && !first_error_) {
        first_error_ = rs.fiber->error();
        break;
      }
    }
  }
  g_engine = prev;
  flush_run_metrics(fiber_switches_, ready_.sift_steps(), p2p_count_,
                    coll_count_);
  if (first_error_) std::rethrow_exception(first_error_);

  for (const auto& rs : ranks_)
    if (rs.st != RankState::St::Done) report_deadlock();

  final_clocks_.resize(nranks_);
  for (int r = 0; r < nranks_; ++r) {
    final_clocks_[r] = ranks_[r].ctx.clock;
    max_time_ = std::max(max_time_, final_clocks_[r]);
  }
}

void Engine::report_deadlock() {
  std::ostringstream os;
  os << "simulated deadlock: ranks still blocked — ";
  int shown = 0;
  for (const auto& rs : ranks_) {
    if (rs.st == RankState::St::Done) continue;
    if (shown++ >= 8) {
      os << "...";
      break;
    }
    os << "[rank " << rs.ctx.rank << " @t=" << rs.ctx.clock << " "
       << (rs.block_reason == nullptr ? "ready?" : rs.block_reason) << "] ";
  }
  throw std::runtime_error(os.str());
}

}  // namespace critter::sim
