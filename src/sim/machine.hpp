// Machine cost model: alpha-beta-gamma (latency / inverse bandwidth / time
// per flop) with tree-based collective formulas and lognormal noise knobs.
//
// This stands in for the paper's Stampede2 testbed (KNL nodes, Omni-Path
// fat-tree).  Absolute constants are tunable; the autotuning experiments
// depend on cost *trade-offs* (latency vs bandwidth vs compute terms), which
// the model preserves.
#pragma once

#include <cstdint>

namespace critter::sim {

enum class CollType : std::uint8_t {
  Bcast,
  Reduce,
  Allreduce,
  Allgather,
  Gather,
  Scatter,
  Barrier,
  Split,
};

const char* coll_name(CollType t);

struct Machine {
  double alpha = 2.0e-6;   ///< per-message latency (s)
  double beta = 8.0e-10;   ///< per-byte transfer time (s)
  double gamma = 2.0e-11;  ///< per-flop compute time (s)

  /// Lognormal sigma for communication / computation timing noise.  The
  /// paper reports high variability on Stampede2; these default to a
  /// moderate 8%.
  double comm_noise = 0.08;
  double comp_noise = 0.08;

  std::uint64_t seed = 0x517cc1b727220a95ULL;

  /// Preset loosely calibrated to one KNL core driving Omni-Path.
  static Machine knl_like();
  /// Noise-free variant for exactness tests.
  static Machine noiseless();

  /// Expected point-to-point cost (latency + payload) for one message.
  double p2p_cost(std::int64_t bytes) const;

  /// Expected collective cost for `p` participants moving `bytes` per rank.
  double coll_cost(CollType type, std::int64_t bytes, int p) const;

  /// Bytes moved along one rank's execution path for BSP communication-cost
  /// accounting (the "h-relation" size matching coll_cost's beta term).
  static double coll_bytes_moved(CollType type, std::int64_t bytes, int p);
};

}  // namespace critter::sim
