// Rank-side convenience API: free functions that forward to the engine of
// the currently running fiber.  Application code (the factorization
// libraries, examples) reads like an MPI program:
//
//   sim::bcast(buf, bytes, /*root=*/0, comm);
//   sim::advance(machine.gamma * flops);
//
// The critter interception layer (core/mpi.hpp) wraps these with profiling
// and selective execution; library code should normally go through critter.
#pragma once

#include "sim/engine.hpp"

namespace critter::sim {

inline RankCtx& this_ctx() { return Engine::ctx(); }
inline Engine& engine() { return *Engine::ctx().engine; }
inline double now() { return Engine::ctx().clock; }

inline Comm world() { return engine().world(); }
inline int comm_size(Comm c) { return engine().comm_size(c); }
inline int comm_rank(Comm c) { return engine().comm_rank(c); }
inline int world_rank() { return Engine::ctx().rank; }
inline int world_size() { return engine().nranks(); }

/// Advance this rank's virtual clock by `seconds` of local work.
inline void advance(double seconds) { engine().f_advance(seconds); }

inline void send(const void* buf, int bytes, int dest, int tag, Comm c) {
  engine().f_send(buf, bytes, dest, tag, c);
}
inline Request isend(const void* buf, int bytes, int dest, int tag, Comm c) {
  return engine().f_isend(buf, bytes, dest, tag, c);
}
inline void recv(void* buf, int bytes, int src, int tag, Comm c) {
  engine().f_recv(buf, bytes, src, tag, c);
}
inline Request irecv(void* buf, int bytes, int src, int tag, Comm c) {
  return engine().f_irecv(buf, bytes, src, tag, c);
}
inline void wait(Request r) { engine().f_wait(r); }
inline bool test(Request r) { return engine().f_test(r); }

inline void sendrecv(const void* sbuf, int sbytes, int dest, int stag,
                     void* rbuf, int rbytes, int src, int rtag, Comm c) {
  Request r = engine().f_irecv(rbuf, rbytes, src, rtag, c);
  engine().f_send(sbuf, sbytes, dest, stag, c);
  engine().f_wait(r);
}

inline void bcast(void* buf, int bytes, int root, Comm c) {
  engine().f_coll(CollType::Bcast, buf, buf, bytes, root, nullptr, c);
}
inline void reduce(const void* sbuf, void* rbuf, int bytes, const ReduceFn& fn,
                   int root, Comm c) {
  engine().f_coll(CollType::Reduce, sbuf, rbuf, bytes, root, fn, c);
}
inline void allreduce(const void* sbuf, void* rbuf, int bytes,
                      const ReduceFn& fn, Comm c) {
  engine().f_coll(CollType::Allreduce, sbuf, rbuf, bytes, 0, fn, c);
}
/// Each rank contributes `bytes`; every rank receives `bytes * p`.
inline void allgather(const void* sbuf, int bytes, void* rbuf, Comm c) {
  engine().f_coll(CollType::Allgather, sbuf, rbuf, bytes, 0, nullptr, c);
}
/// Each rank contributes `bytes`; root receives `bytes * p`.
inline void gather(const void* sbuf, int bytes, void* rbuf, int root, Comm c) {
  engine().f_coll(CollType::Gather, sbuf, rbuf, bytes, root, nullptr, c);
}
/// Root provides `bytes * p`; every rank receives its `bytes` slice.
inline void scatter(const void* sbuf, int bytes, void* rbuf, int root, Comm c) {
  engine().f_coll(CollType::Scatter, sbuf, rbuf, bytes, root, nullptr, c);
}
inline void barrier(Comm c) {
  engine().f_coll(CollType::Barrier, nullptr, nullptr, 0, 0, nullptr, c);
}

inline Request ibcast(void* buf, int bytes, int root, Comm c) {
  return engine().f_icoll(CollType::Bcast, buf, buf, bytes, root, nullptr, c);
}
inline Request iallreduce(const void* sbuf, void* rbuf, int bytes,
                          const ReduceFn& fn, Comm c) {
  return engine().f_icoll(CollType::Allreduce, sbuf, rbuf, bytes, 0, fn, c);
}

inline Comm split(Comm parent, int color, int key) {
  return engine().f_split(parent, color, key);
}

}  // namespace critter::sim
