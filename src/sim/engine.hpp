// Deterministic discrete-event engine simulating an MPI job.
//
// Each rank is a fiber with a virtual clock.  The scheduler always resumes
// the runnable rank with the smallest (clock, rank) pair, so communication
// events are processed in virtual-time order and the simulation is a
// conservative, fully deterministic discrete-event execution.
//
// Semantics notes (documented divergences from MPI are deliberate; see
// DESIGN.md for the full contract):
//  * sends are eager/buffered: a sender never blocks on its peer;
//  * wildcard source/tag matching is unsupported;
//  * a buffer handed to a nonblocking op must not be reused before wait(),
//    exactly like MPI;
//  * all buffers may be null ("model mode"): costs accrue, no data moves.
//
// Hot-path data structures: the ready queue is a binary min-heap keyed on
// (clock, rank); the per-pair message tables are open-addressed hash maps
// over a hashed P2PKey; request and collective state live in slot/freelist
// tables indexed by id, and message payloads recycle through a buffer pool.
// One engine instance is confined to one OS thread, but independent engines
// may run concurrently on different threads (the tuner's worker pool does).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/machine.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace critter::sim {

class Engine;

/// Communicator handle (cheap value type; state lives in the engine).
struct Comm {
  int id = -1;
  bool operator==(const Comm&) const = default;
};

/// Nonblocking-operation handle.
struct Request {
  std::uint64_t id = 0;
};

/// Elementwise combine for reduce/allreduce: fold `in` into `inout`.
using ReduceFn = std::function<void(const void* in, void* inout, int bytes)>;

ReduceFn reduce_sum_double();
ReduceFn reduce_max_double();
ReduceFn reduce_sum_i64();
ReduceFn reduce_max_i64();

/// Per-rank execution context.  `user_data` is owned by higher layers
/// (the critter profiler hangs its per-rank state here).
struct RankCtx {
  int rank = -1;
  double clock = 0.0;
  void* user_data = nullptr;
  Engine* engine = nullptr;
};

class Engine {
 public:
  Engine(int nranks, Machine machine, std::uint64_t seed_salt = 0);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run one SPMD program to completion: `body` is invoked once per rank on
  /// that rank's fiber.  Throws on deadlock or if any rank throws.
  void run(const std::function<void(RankCtx&)>& body);

  int nranks() const { return nranks_; }
  const Machine& machine() const { return machine_; }

  /// Virtual time at which the last rank finished (valid after run()).
  double max_time() const { return max_time_; }
  /// Final virtual clock of each rank (valid after run()).
  const std::vector<double>& final_clocks() const { return final_clocks_; }

  /// Number of point-to-point messages / collective operations executed.
  std::int64_t p2p_count() const { return p2p_count_; }
  std::int64_t coll_count() const { return coll_count_; }

  // --- rank-side API (must be called from inside a rank fiber) ---

  /// Context of the currently running rank (of this thread's engine).
  static RankCtx& ctx();
  /// True if a fiber of some engine is currently running on this thread.
  static bool in_rank();

  Comm world() const { return Comm{0}; }
  int comm_size(Comm c) const;
  int comm_rank(Comm c) const;  // local rank of the *current* fiber
  /// Sorted world ranks of the communicator's group.
  const std::vector<int>& comm_members(Comm c) const;

  void f_advance(double seconds);
  void f_send(const void* buf, int bytes, int dest, int tag, Comm c);
  Request f_isend(const void* buf, int bytes, int dest, int tag, Comm c);
  void f_recv(void* buf, int bytes, int src, int tag, Comm c);
  Request f_irecv(void* buf, int bytes, int src, int tag, Comm c);
  void f_wait(Request r);
  bool f_test(Request r);  ///< poll without blocking (consumes if done)

  void f_coll(CollType type, const void* sendbuf, void* recvbuf, int bytes,
              int root, const ReduceFn& fn, Comm c);
  Request f_icoll(CollType type, const void* sendbuf, void* recvbuf, int bytes,
                  int root, const ReduceFn& fn, Comm c);
  Comm f_split(Comm parent, int color, int key);

 private:
  struct RankState;

  struct P2PKey {
    int comm, dst, src, tag;
    bool operator==(const P2PKey&) const = default;
  };
  struct P2PKeyHash {
    std::size_t operator()(const P2PKey& k) const {
      const std::uint64_t a =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.comm)) << 32) |
          static_cast<std::uint32_t>(k.tag);
      const std::uint64_t b =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.dst)) << 32) |
          static_cast<std::uint32_t>(k.src);
      return util::hash_combine(a, b);
    }
  };

  struct MsgInFlight {
    double avail;
    int bytes;
    std::vector<std::byte> data;
  };

  struct ReqState {
    bool done = false;
    bool is_recv = false;
    int owner = -1;
    int bytes = 0;
    int coll_slot = -1;  ///< owning collective op, -1 for p2p
    double done_time = 0.0;
    void* recv_buf = nullptr;
  };

  struct CollOp {
    CollType type{};
    int bytes = 0;
    int root = 0;
    int arrived = 0;
    int comm_id = -1;          ///< owning communicator (for slot release)
    std::uint64_t seq = 0;     ///< per-comm collective sequence number
    double max_arrival = 0.0;
    double cost = 0.0;         ///< noisy cost, fixed at op creation
    bool root_arrived = false;
    double root_time = 0.0;
    ReduceFn fn;
    std::vector<std::vector<std::byte>> contrib;  // per local rank
    std::vector<void*> recv_bufs;                 // per local rank
    std::vector<std::uint64_t> req_ids;           // per local rank
    std::vector<bool> has_arrived;                // per local rank
    std::vector<double> arrival;                  // per local rank
    std::vector<std::array<int, 2>> colorkey;     // split payload
    std::vector<std::byte> folded;                // cached reduction result
    bool folded_done = false;
    bool split_done = false;
    int outstanding_waits = 0;
  };

  struct CommData {
    std::vector<int> members;        // world ranks, ordered by local rank
    std::vector<int> local_of_world; // world rank -> local rank (-1 if absent)
    std::vector<std::uint64_t> seq;  // per local rank collective sequence no.
    /// In-flight collectives: (seq, coll slot).  At most a handful are live
    /// per communicator, so linear search beats any tree/hash here.
    std::vector<std::pair<std::uint64_t, int>> active;
  };

  /// Binary min-heap of runnable ranks ordered by (clock, rank).  A rank
  /// appears at most once, so the (clock, rank) keys are unique and pops
  /// reproduce exactly the std::map iteration order the engine had before.
  /// Stored as a structure of arrays — the time lane is what every sift
  /// comparison touches, so comparisons stay within one dense double array —
  /// and sifts are batched: the displaced entry is held in registers while
  /// the hole moves, one store per level instead of a three-store swap.
  class ReadyHeap {
   public:
    bool empty() const { return times_.empty(); }
    std::size_t size() const { return times_.size(); }
    void reserve(std::size_t n) {
      times_.reserve(n);
      ranks_.reserve(n);
    }
    double top_time() const { return times_[0]; }
    int top_rank() const { return ranks_[0]; }
    void push(double time, int rank);
    int pop();  ///< removes and returns the minimal entry's rank
    /// Total sift levels moved by push/pop — the heap-work observability
    /// counter (a plain per-level increment; flushed to the metrics
    /// registry once per run, never read by the simulation itself).
    std::int64_t sift_steps() const { return sift_steps_; }
   private:
    bool less(std::size_t i, double time, int rank) const {
      return times_[i] < time || (times_[i] == time && ranks_[i] < rank);
    }
    std::vector<double> times_;
    std::vector<int> ranks_;
    std::int64_t sift_steps_ = 0;
  };

  /// Slot/freelist table of nonblocking requests.  A request id encodes
  /// (slot + 1) in the high 32 bits and the slot's generation in the low 32,
  /// so stale or double waits are still detected in O(1).  Slots live in a
  /// deque: references stay valid while a blocked rank's peer allocates new
  /// requests (no defensive re-lookup after wakeup).
  class ReqTable {
   public:
    std::uint64_t alloc(ReqState** out);
    ReqState* find(std::uint64_t id);
    void release(std::uint64_t id);
   private:
    struct Slot {
      ReqState st;
      std::uint32_t gen = 1;
      bool active = false;
    };
    std::deque<Slot> slots_;
    std::vector<std::uint32_t> free_;
  };

  /// Slot/freelist table of collective operations.  Recycled slots keep
  /// their per-rank vector capacities, so steady-state collectives allocate
  /// nothing.
  class CollTable {
   public:
    int alloc();
    CollOp& operator[](int slot) { return slots_[slot]; }
    void release(int slot) { free_.push_back(slot); }
   private:
    std::deque<CollOp> slots_;
    std::vector<int> free_;
  };

  RankState& current();
  void sync_to_min();                 // wait until this rank is globally minimal
  void block_current(const char* why);
  void make_ready(int rank, double at_time);
  double noise_comm(std::uint64_t k1, std::uint64_t k2) const;
  /// Mark one participant's collective request done at `when`, deliver its
  /// data, and wake it if blocked.
  void finalize_coll_member(CollOp& op, const CommData& cd, int lr,
                            double when);
  void complete_coll_sync(int comm_id, CollOp& op);
  void deliver_coll_data(CollOp& op, const CommData& cd, int lr);
  void release_coll(int slot);
  int register_comm(std::vector<int> members);
  std::vector<std::byte> pool_acquire(int bytes);
  void pool_release(std::vector<std::byte>&& buf);
  [[noreturn]] void report_deadlock();

  int nranks_;
  Machine machine_;
  std::uint64_t seed_;
  /// Sized once at construction, never resized: fibers and the profiler
  /// hold stable pointers into these contiguous per-rank records.
  /// (std::vector of the incomplete RankState is fine — every member
  /// function is instantiated in engine.cc where the type is complete.)
  std::vector<RankState> ranks_;
  std::vector<CommData> comms_;
  ReadyHeap ready_;
  int running_ = -1;
  util::FlatMap<P2PKey, util::Fifo<MsgInFlight>, P2PKeyHash> mailbox_;
  util::FlatMap<P2PKey, util::Fifo<std::uint64_t>, P2PKeyHash> posted_recvs_;
  util::FlatMap<P2PKey, std::uint64_t, P2PKeyHash> pair_seq_;
  ReqTable reqs_;
  CollTable colls_;
  std::vector<std::vector<std::byte>> pool_;  // recycled message payloads
  double max_time_ = 0.0;
  std::vector<double> final_clocks_;
  std::int64_t p2p_count_ = 0;
  std::int64_t coll_count_ = 0;
  std::int64_t fiber_switches_ = 0;  ///< scheduler dispatches (run() only)
  std::exception_ptr first_error_;
};

}  // namespace critter::sim
