// Deterministic discrete-event engine simulating an MPI job.
//
// Each rank is a fiber with a virtual clock.  The scheduler always resumes
// the runnable rank with the smallest (clock, rank) pair, so communication
// events are processed in virtual-time order and the simulation is a
// conservative, fully deterministic discrete-event execution.
//
// Semantics notes (documented divergences from MPI are deliberate):
//  * sends are eager/buffered: a sender never blocks on its peer;
//  * wildcard source/tag matching is unsupported;
//  * a buffer handed to a nonblocking op must not be reused before wait(),
//    exactly like MPI;
//  * all buffers may be null ("model mode"): costs accrue, no data moves.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/machine.hpp"

namespace critter::sim {

class Engine;

/// Communicator handle (cheap value type; state lives in the engine).
struct Comm {
  int id = -1;
  bool operator==(const Comm&) const = default;
};

/// Nonblocking-operation handle.
struct Request {
  std::uint64_t id = 0;
};

/// Elementwise combine for reduce/allreduce: fold `in` into `inout`.
using ReduceFn = std::function<void(const void* in, void* inout, int bytes)>;

ReduceFn reduce_sum_double();
ReduceFn reduce_max_double();
ReduceFn reduce_sum_i64();
ReduceFn reduce_max_i64();

/// Per-rank execution context.  `user_data` is owned by higher layers
/// (the critter profiler hangs its per-rank state here).
struct RankCtx {
  int rank = -1;
  double clock = 0.0;
  void* user_data = nullptr;
  Engine* engine = nullptr;
};

class Engine {
 public:
  Engine(int nranks, Machine machine, std::uint64_t seed_salt = 0);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run one SPMD program to completion: `body` is invoked once per rank on
  /// that rank's fiber.  Throws on deadlock or if any rank throws.
  void run(const std::function<void(RankCtx&)>& body);

  int nranks() const { return nranks_; }
  const Machine& machine() const { return machine_; }

  /// Virtual time at which the last rank finished (valid after run()).
  double max_time() const { return max_time_; }
  /// Final virtual clock of each rank (valid after run()).
  const std::vector<double>& final_clocks() const { return final_clocks_; }

  /// Number of point-to-point messages / collective operations executed.
  std::int64_t p2p_count() const { return p2p_count_; }
  std::int64_t coll_count() const { return coll_count_; }

  // --- rank-side API (must be called from inside a rank fiber) ---

  /// Context of the currently running rank.
  static RankCtx& ctx();
  /// True if a fiber of some engine is currently running.
  static bool in_rank();

  Comm world() const { return Comm{0}; }
  int comm_size(Comm c) const;
  int comm_rank(Comm c) const;  // local rank of the *current* fiber
  /// Sorted world ranks of the communicator's group.
  const std::vector<int>& comm_members(Comm c) const;

  void f_advance(double seconds);
  void f_send(const void* buf, int bytes, int dest, int tag, Comm c);
  Request f_isend(const void* buf, int bytes, int dest, int tag, Comm c);
  void f_recv(void* buf, int bytes, int src, int tag, Comm c);
  Request f_irecv(void* buf, int bytes, int src, int tag, Comm c);
  void f_wait(Request r);
  bool f_test(Request r);  ///< poll without blocking (consumes if done)

  void f_coll(CollType type, const void* sendbuf, void* recvbuf, int bytes,
              int root, const ReduceFn& fn, Comm c);
  Request f_icoll(CollType type, const void* sendbuf, void* recvbuf, int bytes,
                  int root, const ReduceFn& fn, Comm c);
  Comm f_split(Comm parent, int color, int key);

 private:
  struct RankState;
  struct P2PKey {
    int comm, dst, src, tag;
    auto operator<=>(const P2PKey&) const = default;
  };
  struct MsgInFlight {
    double avail;
    std::vector<std::byte> data;
    int bytes;
  };
  struct ReqState {
    bool done = false;
    double done_time = 0.0;
    int owner = -1;
    bool is_recv = false;
    void* recv_buf = nullptr;
    int bytes = 0;
    P2PKey key{};
    bool is_coll = false;
    std::pair<int, std::uint64_t> coll_key{};
  };
  struct CollOp {
    CollType type{};
    int bytes = 0;
    int root = 0;
    int arrived = 0;
    double max_arrival = 0.0;
    double cost = 0.0;        // noisy cost, fixed at op creation
    bool root_arrived = false;
    double root_time = 0.0;
    ReduceFn fn;
    std::vector<std::vector<std::byte>> contrib;  // per local rank
    std::vector<void*> recv_bufs;                 // per local rank
    std::vector<std::uint64_t> req_ids;           // per local rank
    std::vector<bool> has_arrived;                // per local rank
    std::vector<double> arrival;                  // per local rank
    std::vector<std::array<int, 2>> colorkey;     // split payload
    std::vector<std::byte> folded;                // cached reduction result
    bool folded_done = false;
    bool split_done = false;
    int outstanding_waits = 0;
  };
  struct CommData {
    std::vector<int> members;        // world ranks, ordered by local rank
    std::vector<int> local_of_world; // world rank -> local rank (-1 if absent)
    std::vector<std::uint64_t> seq;  // per local rank collective sequence no.
  };

  RankState& current();
  void sync_to_min();                 // wait until this rank is globally minimal
  void block_current(const std::string& why);
  void make_ready(int rank, double at_time);
  double noise_comm(std::uint64_t k1, std::uint64_t k2) const;
  std::uint64_t new_req_id() { return next_req_id_++; }
  /// Mark one participant's collective request done at `when`, deliver its
  /// data, and wake it if blocked.
  void finalize_coll_member(CollOp& op, const CommData& cd, int lr,
                            double when);
  void complete_coll_sync(int comm_id, CollOp& op);
  void deliver_coll_data(CollOp& op, const CommData& cd, int lr);
  int register_comm(std::vector<int> members);
  [[noreturn]] void report_deadlock();

  int nranks_;
  Machine machine_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::vector<CommData> comms_;
  std::map<std::pair<double, int>, int> ready_;  // (time, rank) -> rank
  int running_ = -1;
  std::map<P2PKey, std::deque<MsgInFlight>> mailbox_;
  std::map<P2PKey, std::deque<std::uint64_t>> posted_recvs_;
  std::map<P2PKey, std::uint64_t> pair_seq_;
  std::map<std::uint64_t, ReqState> reqs_;
  std::map<std::pair<int, std::uint64_t>, CollOp> colls_;
  std::uint64_t next_req_id_ = 1;
  double max_time_ = 0.0;
  std::vector<double> final_clocks_;
  std::int64_t p2p_count_ = 0;
  std::int64_t coll_count_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace critter::sim
