#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>

#include "util/check.hpp"

namespace critter::sim {

namespace {
// makecontext() passes only int arguments portably; hand the Fiber* over in
// a file-local slot instead.  Safe because the engine is single-threaded and
// the slot is consumed synchronously inside resume().
Fiber* g_trampoline_arg = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_bytes_(stack_bytes) {
  const long page = sysconf(_SC_PAGESIZE);
  stack_bytes_ = ((stack_bytes_ + page - 1) / page) * page + page;  // + guard
  stack_ = mmap(nullptr, stack_bytes_, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  CRITTER_CHECK(stack_ != MAP_FAILED, "fiber stack mmap failed");
  // Guard page at the low end (stacks grow down) turns overflow into SIGSEGV
  // instead of silent corruption.
  CRITTER_CHECK(mprotect(stack_, page, PROT_NONE) == 0, "guard page mprotect");
}

Fiber::~Fiber() {
  if (stack_ != nullptr) munmap(stack_, stack_bytes_);
}

void Fiber::trampoline() {
  Fiber* self = g_trampoline_arg;
  g_trampoline_arg = nullptr;
  try {
    self->body_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->finished_ = true;
  // Return to the scheduler; the context is never resumed again.
  swapcontext(&self->context_, &self->scheduler_context_);
}

void Fiber::resume() {
  CRITTER_CHECK(!finished_, "resuming a finished fiber");
  if (!started_) {
    started_ = true;
    CRITTER_CHECK(getcontext(&context_) == 0, "getcontext");
    const long page = sysconf(_SC_PAGESIZE);
    context_.uc_stack.ss_sp = static_cast<char*>(stack_) + page;
    context_.uc_stack.ss_size = stack_bytes_ - page;
    context_.uc_link = nullptr;
    g_trampoline_arg = this;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  swapcontext(&scheduler_context_, &context_);
}

void Fiber::yield() { swapcontext(&context_, &scheduler_context_); }

}  // namespace critter::sim
