#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>

#include "util/check.hpp"

// AddressSanitizer tracks one shadow stack per thread; switching stacks
// underneath it without notice produces false positives (and breaks
// use-after-return detection).  The __sanitizer_*_switch_fiber protocol
// hands the stack bounds over at every switch, which keeps the ASan+UBSan
// CI job honest on the fiber-based engine.  All annotations compile away in
// non-sanitized builds.
#if defined(__SANITIZE_ADDRESS__)
#define CRITTER_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CRITTER_ASAN_FIBERS 1
#endif
#endif

#if defined(CRITTER_ASAN_FIBERS)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace critter::sim {

namespace {
// makecontext() passes only int arguments portably; hand the Fiber* over in
// a thread-local slot instead.  Safe because a fiber never migrates between
// OS threads and the slot is consumed synchronously inside resume(); the
// thread_local keeps concurrent engines (one per tuner worker) independent.
thread_local Fiber* g_trampoline_arg = nullptr;

#if defined(CRITTER_ASAN_FIBERS)
// Scheduler-side fake-stack handle plus the scheduler stack bounds a fiber
// must announce when switching back (captured from the finish call that
// runs on fiber entry).  One engine runs per OS thread, so thread_local
// slots suffice.
thread_local void* g_sched_fake_stack = nullptr;
thread_local const void* g_sched_stack_bottom = nullptr;
thread_local std::size_t g_sched_stack_size = 0;
#endif
}  // namespace

#if defined(CRITTER_FIBER_FAST)

// Hand-rolled System V AMD64 context switch.  glibc's swapcontext saves and
// restores the signal mask with a sigprocmask syscall on every switch
// (~200ns each); the engine switches fibers millions of times per simulated
// run and never touches signal state from a fiber, so we save exactly what
// the psABI requires across a call — callee-saved GPRs plus the x87/SSE
// control words — and swap stack pointers in userspace (~10ns).
asm(R"(
.text
.globl critter_fiber_swap
.hidden critter_fiber_swap
.type critter_fiber_swap, @function
.align 16
critter_fiber_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq  $8, %rsp
    stmxcsr 4(%rsp)
    fnstcw  (%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    fldcw   (%rsp)
    ldmxcsr 4(%rsp)
    addq  $8, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
.size critter_fiber_swap, .-critter_fiber_swap
)");

extern "C" void critter_fiber_swap(void** save_sp, void* restore_sp);

#endif  // CRITTER_FIBER_FAST

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_bytes_(stack_bytes) {
  const long page = sysconf(_SC_PAGESIZE);
  stack_bytes_ = ((stack_bytes_ + page - 1) / page) * page + page;  // + guard
  stack_ = mmap(nullptr, stack_bytes_, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  CRITTER_CHECK(stack_ != MAP_FAILED, "fiber stack mmap failed");
  // Guard page at the low end (stacks grow down) turns overflow into SIGSEGV
  // instead of silent corruption.
  CRITTER_CHECK(mprotect(stack_, page, PROT_NONE) == 0, "guard page mprotect");
}

Fiber::~Fiber() {
  if (stack_ != nullptr) {
#if defined(CRITTER_ASAN_FIBERS)
    // Frames poisoned on this stack would otherwise outlive the mapping
    // and trip ASan when the address range is reused.
    __asan_unpoison_memory_region(stack_, stack_bytes_);
#endif
    munmap(stack_, stack_bytes_);
  }
}

void Fiber::trampoline() {
  Fiber* self = g_trampoline_arg;
  g_trampoline_arg = nullptr;
#if defined(CRITTER_ASAN_FIBERS)
  // First time on this stack: no fake stack to restore; remember the
  // scheduler stack we came from for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &g_sched_stack_bottom,
                                  &g_sched_stack_size);
#endif
  try {
    self->body_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->finished_ = true;
  // Return to the scheduler; the context is never resumed again.
  self->yield();
  __builtin_unreachable();
}

#if defined(CRITTER_FIBER_FAST)

void Fiber::resume() {
  CRITTER_CHECK(!finished_, "resuming a finished fiber");
  if (!started_) {
    started_ = true;
    // Craft an initial stack frame such that the first swap "returns" into
    // trampoline().  The layout must mirror critter_fiber_swap exactly:
    // [6 callee-saved slots][8-byte fpu word][return address], with the
    // return-address slot placed so %rsp ≡ 8 (mod 16) at trampoline entry,
    // as the psABI requires at a function's first instruction.
    auto top = reinterpret_cast<std::uintptr_t>(
                   static_cast<char*>(stack_) + stack_bytes_) &
               ~static_cast<std::uintptr_t>(15);
    auto* frame = reinterpret_cast<std::uintptr_t*>(top - 16) - 7;
    std::uint32_t fpu[2] = {0, 0};
    asm volatile("fnstcw %0; stmxcsr %1"
                 : "=m"(*reinterpret_cast<std::uint16_t*>(&fpu[0])),
                   "=m"(fpu[1]));
    frame[0] = *reinterpret_cast<std::uintptr_t*>(fpu);  // fcw @0, mxcsr @4
    for (int i = 1; i < 7; ++i) frame[i] = 0;  // r15, r14, r13, r12, rbx, rbp
    frame[7] = reinterpret_cast<std::uintptr_t>(&Fiber::trampoline);
    sp_ = frame;
    g_trampoline_arg = this;
  }
#if defined(CRITTER_ASAN_FIBERS)
  const long page = sysconf(_SC_PAGESIZE);
  __sanitizer_start_switch_fiber(&g_sched_fake_stack,
                                 static_cast<char*>(stack_) + page,
                                 stack_bytes_ - page);
#endif
  critter_fiber_swap(&scheduler_sp_, sp_);
#if defined(CRITTER_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(g_sched_fake_stack, nullptr, nullptr);
#endif
}

void Fiber::yield() {
#if defined(CRITTER_ASAN_FIBERS)
  // A finished fiber never comes back: a null save slot tells ASan to
  // destroy its fake stack instead of parking it.
  __sanitizer_start_switch_fiber(finished_ ? nullptr : &asan_fake_stack_,
                                 g_sched_stack_bottom, g_sched_stack_size);
#endif
  critter_fiber_swap(&sp_, scheduler_sp_);
#if defined(CRITTER_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(asan_fake_stack_, &g_sched_stack_bottom,
                                  &g_sched_stack_size);
#endif
}

#else  // ucontext fallback for non-x86-64 targets

void Fiber::resume() {
  CRITTER_CHECK(!finished_, "resuming a finished fiber");
  if (!started_) {
    started_ = true;
    CRITTER_CHECK(getcontext(&context_) == 0, "getcontext");
    const long page = sysconf(_SC_PAGESIZE);
    context_.uc_stack.ss_sp = static_cast<char*>(stack_) + page;
    context_.uc_stack.ss_size = stack_bytes_ - page;
    context_.uc_link = nullptr;
    g_trampoline_arg = this;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
#if defined(CRITTER_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&g_sched_fake_stack,
                                 context_.uc_stack.ss_sp,
                                 context_.uc_stack.ss_size);
#endif
  swapcontext(&scheduler_context_, &context_);
#if defined(CRITTER_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(g_sched_fake_stack, nullptr, nullptr);
#endif
}

void Fiber::yield() {
#if defined(CRITTER_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(finished_ ? nullptr : &asan_fake_stack_,
                                 g_sched_stack_bottom, g_sched_stack_size);
#endif
  swapcontext(&context_, &scheduler_context_);
#if defined(CRITTER_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(asan_fake_stack_, &g_sched_stack_bottom,
                                  &g_sched_stack_size);
#endif
}

#endif

}  // namespace critter::sim
