#include "sim/machine.hpp"

#include <cmath>

namespace critter::sim {

namespace {
double log2p(int p) { return p <= 1 ? 1.0 : std::log2(static_cast<double>(p)); }
}  // namespace

const char* coll_name(CollType t) {
  switch (t) {
    case CollType::Bcast: return "bcast";
    case CollType::Reduce: return "reduce";
    case CollType::Allreduce: return "allreduce";
    case CollType::Allgather: return "allgather";
    case CollType::Gather: return "gather";
    case CollType::Scatter: return "scatter";
    case CollType::Barrier: return "barrier";
    case CollType::Split: return "comm_split";
  }
  return "?";
}

Machine Machine::knl_like() { return Machine{}; }

Machine Machine::noiseless() {
  Machine m;
  m.comm_noise = 0.0;
  m.comp_noise = 0.0;
  return m;
}

double Machine::p2p_cost(std::int64_t bytes) const {
  return alpha + beta * static_cast<double>(bytes);
}

double Machine::coll_cost(CollType type, std::int64_t bytes, int p) const {
  const double b = static_cast<double>(bytes);
  const double lg = log2p(p);
  switch (type) {
    case CollType::Bcast:
    case CollType::Reduce:
      // pipelined tree: latency scales with depth, bandwidth with payload
      return lg * alpha + beta * b;
    case CollType::Allreduce:
      return 2.0 * lg * alpha + 2.0 * beta * b;
    case CollType::Allgather:
    case CollType::Gather:
    case CollType::Scatter:
      // `bytes` is the per-rank contribution; total moved ~ p*bytes
      return lg * alpha + beta * b * static_cast<double>(p - 1);
    case CollType::Barrier:
      return 2.0 * lg * alpha;
    case CollType::Split:
      return lg * alpha + beta * 16.0 * static_cast<double>(p - 1);
  }
  return 0.0;
}

double Machine::coll_bytes_moved(CollType type, std::int64_t bytes, int p) {
  const double b = static_cast<double>(bytes);
  switch (type) {
    case CollType::Bcast:
    case CollType::Reduce:
      return b;
    case CollType::Allreduce:
      return 2.0 * b;
    case CollType::Allgather:
    case CollType::Gather:
    case CollType::Scatter:
      return b * static_cast<double>(p - 1);
    case CollType::Barrier:
      return 0.0;
    case CollType::Split:
      return 16.0 * static_cast<double>(p - 1);
  }
  return 0.0;
}

}  // namespace critter::sim
