// Cooperative user-level fibers.
//
// Each simulated MPI rank runs as a fiber so rank programs can be written in
// natural blocking style (call sim::recv and "block").  Each engine runs on
// one OS thread and resumes exactly one fiber at a time, which makes its
// execution deterministic; independent engines may run on separate threads.
//
// On x86-64 the switch is a hand-rolled userspace stack swap (callee-saved
// registers + FPU control words, ~10ns); glibc's swapcontext performs a
// sigprocmask syscall per switch, which dominated the scheduler's hot path.
// Other architectures fall back to ucontext.  Define CRITTER_FIBER_UCONTEXT
// to force the portable path (e.g. when debugging under sanitizers that
// track stacks through swapcontext).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

#if defined(__x86_64__) && !defined(CRITTER_FIBER_UCONTEXT)
#define CRITTER_FIBER_FAST 1
#else
#include <ucontext.h>
#endif

namespace critter::sim {

class Fiber {
 public:
  /// `body` runs on the fiber's own stack on first resume().  Stacks are
  /// mmap'd with a guard page; they are virtual memory, so thousands of
  /// fibers are cheap until pages are actually touched.
  explicit Fiber(std::function<void()> body, std::size_t stack_bytes = 512 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the scheduler into the fiber; returns when the fiber
  /// yields or finishes.
  void resume();

  /// Switch from inside the fiber back to the scheduler.  Must be called
  /// on the currently running fiber.
  void yield();

  bool finished() const { return finished_; }

  /// Exception thrown by the body, if any (captured, not propagated,
  /// so the scheduler decides when to rethrow).
  std::exception_ptr error() const { return error_; }

 private:
  static void trampoline();

  std::function<void()> body_;
#if defined(CRITTER_FIBER_FAST)
  void* sp_ = nullptr;            ///< fiber's saved stack pointer
  void* scheduler_sp_ = nullptr;  ///< scheduler's saved stack pointer
#else
  ucontext_t context_{};
  ucontext_t scheduler_context_{};
#endif
  /// AddressSanitizer fake-stack handle of this fiber while it is switched
  /// out (see the __sanitizer_*_switch_fiber annotations in fiber.cc).
  void* asan_fake_stack_ = nullptr;
  void* stack_ = nullptr;
  std::size_t stack_bytes_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
};

}  // namespace critter::sim
