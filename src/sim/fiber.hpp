// Cooperative user-level fibers (ucontext-based).
//
// Each simulated MPI rank runs as a fiber so rank programs can be written in
// natural blocking style (call sim::recv and "block").  The whole simulation
// is single-OS-thread; the engine resumes exactly one fiber at a time, which
// makes execution deterministic.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <ucontext.h>

namespace critter::sim {

class Fiber {
 public:
  /// `body` runs on the fiber's own stack on first resume().  Stacks are
  /// mmap'd with a guard page; they are virtual memory, so thousands of
  /// fibers are cheap until pages are actually touched.
  explicit Fiber(std::function<void()> body, std::size_t stack_bytes = 512 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the scheduler into the fiber; returns when the fiber
  /// yields or finishes.
  void resume();

  /// Switch from inside the fiber back to the scheduler.  Must be called
  /// on the currently running fiber.
  void yield();

  bool finished() const { return finished_; }

  /// Exception thrown by the body, if any (captured, not propagated,
  /// so the scheduler decides when to rethrow).
  std::exception_ptr error() const { return error_; }

 private:
  static void trampoline();

  std::function<void()> body_;
  ucontext_t context_{};
  ucontext_t scheduler_context_{};
  void* stack_ = nullptr;
  std::size_t stack_bytes_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
};

}  // namespace critter::sim
