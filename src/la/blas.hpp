// BLAS-3 kernels (column-major, LAPACK calling conventions).
//
// These are correctness-oriented reference implementations: the simulator's
// cost model provides timing at scale, so clarity and exact flop accounting
// matter more here than peak throughput.
#pragma once

#include <cstdint>

namespace critter::la {

enum class Trans : std::uint8_t { N, T };
enum class Uplo : std::uint8_t { Lower, Upper };
enum class Side : std::uint8_t { Left, Right };
enum class Diag : std::uint8_t { NonUnit, Unit };

/// C <- alpha*op(A)*op(B) + beta*C, op(A) is m x k, op(B) is k x n.
void gemm(Trans ta, Trans tb, int m, int n, int k, double alpha,
          const double* a, int lda, const double* b, int ldb, double beta,
          double* c, int ldc);

/// C <- alpha*A*A^T + beta*C (trans=N) or alpha*A^T*A + beta*C (trans=T),
/// touching only the `uplo` triangle of the n x n matrix C.
void syrk(Uplo uplo, Trans trans, int n, int k, double alpha, const double* a,
          int lda, double beta, double* c, int ldc);

/// Solve op(A)*X = alpha*B (Side::Left) or X*op(A) = alpha*B (Side::Right)
/// in-place in B, where A is triangular.
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n,
          double alpha, const double* a, int lda, double* b, int ldb);

/// B <- alpha*op(A)*B (Side::Left) or alpha*B*op(A) (Side::Right),
/// A triangular.
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n,
          double alpha, const double* a, int lda, double* b, int ldb);

// --- exact flop counts used by the simulator's gamma cost model ---
double gemm_flops(double m, double n, double k);
double syrk_flops(double n, double k);
double trsm_flops(Side side, double m, double n);
double trmm_flops(Side side, double m, double n);

}  // namespace critter::la
