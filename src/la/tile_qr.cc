#include "la/tile_qr.hpp"

#include <cmath>
#include <vector>

#include "la/lapack.hpp"
#include "util/check.hpp"

namespace critter::la {

namespace {
inline const double& el(const double* a, int lda, int i, int j) {
  return a[static_cast<std::size_t>(j) * lda + i];
}
inline double& el(double* a, int lda, int i, int j) {
  return a[static_cast<std::size_t>(j) * lda + i];
}
}  // namespace

void geqrt(int m, int n, double* a, int lda, double* t, int ldt) {
  CRITTER_CHECK(m >= n, "geqrt expects m >= n");
  std::vector<double> tau(n);
  geqr2(m, n, a, lda, tau.data());
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) el(t, ldt, i, j) = 0.0;
  larft(m, n, a, lda, tau.data(), t, ldt);
}

void tpqrt(int m, int n, int l, double* a, int lda, double* b, int ldb,
           double* t, int ldt) {
  CRITTER_CHECK(l == 0 || l == n, "tpqrt: only l=0 (tsqrt) or l=n (ttqrt)");
  std::vector<double> tau(n);
  for (int j = 0; j < n; ++j) {
    // Reflector from x = [A(j,j); B(:,j)].  The top part of the vector is
    // e_j (the identity block of V), so only B's column participates.
    double alpha = el(a, lda, j, j);
    double xnorm = 0.0;
    for (int i = 0; i < m; ++i) xnorm += el(b, ldb, i, j) * el(b, ldb, i, j);
    xnorm = std::sqrt(xnorm);
    if (xnorm == 0.0) {
      tau[j] = 0.0;
    } else {
      const double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
      tau[j] = (beta - alpha) / beta;
      const double scale = 1.0 / (alpha - beta);
      for (int i = 0; i < m; ++i) el(b, ldb, i, j) *= scale;
      el(a, lda, j, j) = beta;
    }
    // Apply H_j = I - tau (e_j; v) (e_j; v)^T to the remaining columns.
    if (tau[j] != 0.0) {
      for (int jj = j + 1; jj < n; ++jj) {
        double w = el(a, lda, j, jj);
        for (int i = 0; i < m; ++i) w += el(b, ldb, i, j) * el(b, ldb, i, jj);
        w *= tau[j];
        el(a, lda, j, jj) -= w;
        for (int i = 0; i < m; ++i) el(b, ldb, i, jj) -= w * el(b, ldb, i, j);
      }
    }
  }
  // T factor: T(j,j) = tau_j; T(0:j,j) = -tau_j * T(0:j,0:j) * (B_{:,0:j}^T b_j)
  // (the identity top of V contributes nothing off-diagonal).
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) el(t, ldt, i, j) = 0.0;
  for (int j = 0; j < n; ++j) {
    el(t, ldt, j, j) = tau[j];
    if (tau[j] == 0.0) continue;
    std::vector<double> w(j, 0.0);
    for (int i = 0; i < j; ++i) {
      double s = 0.0;
      for (int r = 0; r < m; ++r) s += el(b, ldb, r, i) * el(b, ldb, r, j);
      w[i] = s;
    }
    for (int i = 0; i < j; ++i) {
      double s = 0.0;
      for (int c = i; c < j; ++c) s += el(t, ldt, i, c) * w[c];
      el(t, ldt, i, j) = -tau[j] * s;
    }
  }
}

void tpmqrt(Trans trans, int m, int ncols, int k, const double* v, int ldv,
            const double* t, int ldt, double* a, int lda, double* b, int ldb) {
  // H = I - [I; V] T [I; V]^T.  W = T^op (A + V^T B); A -= W; B -= V W.
  std::vector<double> w(static_cast<std::size_t>(k) * ncols);
  for (int j = 0; j < ncols; ++j)
    for (int i = 0; i < k; ++i) {
      double s = el(a, lda, i, j);
      for (int r = 0; r < m; ++r) s += el(v, ldv, r, i) * el(b, ldb, r, j);
      w[static_cast<std::size_t>(j) * k + i] = s;
    }
  trmm(Side::Left, Uplo::Upper, trans, Diag::NonUnit, k, ncols, 1.0, t, ldt,
       w.data(), k);
  for (int j = 0; j < ncols; ++j) {
    for (int i = 0; i < k; ++i)
      el(a, lda, i, j) -= w[static_cast<std::size_t>(j) * k + i];
    for (int r = 0; r < m; ++r) {
      double s = 0.0;
      for (int i = 0; i < k; ++i)
        s += el(v, ldv, r, i) * w[static_cast<std::size_t>(j) * k + i];
      el(b, ldb, r, j) -= s;
    }
  }
}

double geqrt_flops(double m, double n) {
  return 2.0 * m * n * n - 2.0 * n * n * n / 3.0 + m * n * n;
}

double tpqrt_flops(double m, double n, double l) {
  const double me = m - 0.5 * l;  // pentagonal rows participate ~half
  return 3.0 * me * n * n + n * n * n / 3.0;
}

double tpmqrt_flops(double m, double n, double k, double l) {
  const double me = m - 0.5 * l;
  return 4.0 * me * n * k + 2.0 * k * k * n;
}

}  // namespace critter::la
