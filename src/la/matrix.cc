#include "la/matrix.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace critter::la {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0.0) {
  CRITTER_CHECK(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
}

void Matrix::fill(double v) {
  for (auto& x : data_) x = v;
}

Matrix random_matrix(int rows, int cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i) {
      const std::uint64_t k = util::hash_combine(
          seed, util::hash_combine(static_cast<std::uint64_t>(i),
                                   static_cast<std::uint64_t>(j) + 0x5bd1e995));
      m(i, j) = util::u01_from_bits(util::mix64(k)) - 0.5;
    }
  return m;
}

Matrix random_spd(int n, std::uint64_t seed) {
  Matrix r = random_matrix(n, n, seed);
  Matrix a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) a(i, j) = r(i, j) + r(j, i);
  for (int i = 0; i < n; ++i) a(i, i) += 2.0 * n;
  return a;
}

double frob_norm(int m, int n, const double* a, int lda) {
  double s = 0.0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      const double v = a[static_cast<std::size_t>(j) * lda + i];
      s += v * v;
    }
  return std::sqrt(s);
}

double frob_diff(const Matrix& a, const Matrix& b) {
  CRITTER_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                "frob_diff dimension mismatch");
  double s = 0.0;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i) {
      const double v = a(i, j) - b(i, j);
      s += v * v;
    }
  return std::sqrt(s);
}

double cholesky_residual(const Matrix& a, const Matrix& l) {
  const int n = a.rows();
  double s = 0.0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      double llt = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) llt += l(i, k) * l(j, k);
      const double v = a(i, j) - llt;
      s += v * v;
    }
  return std::sqrt(s) / (frob_norm(n, n, a.data(), a.ld()) + 1e-300);
}

double orthogonality_error(const Matrix& q) {
  const int m = q.rows(), n = q.cols();
  double s = 0.0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      double d = 0.0;
      for (int k = 0; k < m; ++k) d += q(k, i) * q(k, j);
      if (i == j) d -= 1.0;
      s += d * d;
    }
  return std::sqrt(s);
}

}  // namespace critter::la
