#include "la/blas.hpp"

#include <cstddef>

#include "util/check.hpp"

namespace critter::la {

namespace {
inline const double& el(const double* a, int lda, int i, int j) {
  return a[static_cast<std::size_t>(j) * lda + i];
}
inline double& el(double* a, int lda, int i, int j) {
  return a[static_cast<std::size_t>(j) * lda + i];
}
}  // namespace

void gemm(Trans ta, Trans tb, int m, int n, int k, double alpha,
          const double* a, int lda, const double* b, int ldb, double beta,
          double* c, int ldc) {
  CRITTER_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm dims");
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) el(c, ldc, i, j) *= beta;
  if (k == 0 || alpha == 0.0) return;
  // Loop orders chosen so the innermost loop strides down a column.
  if (ta == Trans::N && tb == Trans::N) {
    for (int j = 0; j < n; ++j)
      for (int l = 0; l < k; ++l) {
        const double blj = alpha * el(b, ldb, l, j);
        if (blj == 0.0) continue;
        for (int i = 0; i < m; ++i) el(c, ldc, i, j) += el(a, lda, i, l) * blj;
      }
  } else if (ta == Trans::T && tb == Trans::N) {
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < m; ++i) {
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += el(a, lda, l, i) * el(b, ldb, l, j);
        el(c, ldc, i, j) += alpha * s;
      }
  } else if (ta == Trans::N && tb == Trans::T) {
    for (int l = 0; l < k; ++l)
      for (int j = 0; j < n; ++j) {
        const double bjl = alpha * el(b, ldb, j, l);
        if (bjl == 0.0) continue;
        for (int i = 0; i < m; ++i) el(c, ldc, i, j) += el(a, lda, i, l) * bjl;
      }
  } else {  // T, T
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < m; ++i) {
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += el(a, lda, l, i) * el(b, ldb, j, l);
        el(c, ldc, i, j) += alpha * s;
      }
  }
}

void syrk(Uplo uplo, Trans trans, int n, int k, double alpha, const double* a,
          int lda, double beta, double* c, int ldc) {
  CRITTER_CHECK(n >= 0 && k >= 0, "syrk dims");
  for (int j = 0; j < n; ++j) {
    const int ilo = (uplo == Uplo::Lower) ? j : 0;
    const int ihi = (uplo == Uplo::Lower) ? n : j + 1;
    for (int i = ilo; i < ihi; ++i) {
      double s = 0.0;
      for (int l = 0; l < k; ++l) {
        const double ail = (trans == Trans::N) ? el(a, lda, i, l) : el(a, lda, l, i);
        const double ajl = (trans == Trans::N) ? el(a, lda, j, l) : el(a, lda, l, j);
        s += ail * ajl;
      }
      el(c, ldc, i, j) = alpha * s + beta * el(c, ldc, i, j);
    }
  }
}

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n,
          double alpha, const double* a, int lda, double* b, int ldb) {
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) el(b, ldb, i, j) *= alpha;

  const bool unit = diag == Diag::Unit;
  if (side == Side::Left) {
    // Solve op(A) X = B, A is m x m triangular.
    const bool forward = (uplo == Uplo::Lower) == (trans == Trans::N);
    for (int j = 0; j < n; ++j) {
      if (forward) {
        for (int i = 0; i < m; ++i) {
          double s = el(b, ldb, i, j);
          for (int l = 0; l < i; ++l) {
            const double ail = (trans == Trans::N) ? el(a, lda, i, l) : el(a, lda, l, i);
            s -= ail * el(b, ldb, l, j);
          }
          el(b, ldb, i, j) = unit ? s : s / el(a, lda, i, i);
        }
      } else {
        for (int i = m - 1; i >= 0; --i) {
          double s = el(b, ldb, i, j);
          for (int l = i + 1; l < m; ++l) {
            const double ail = (trans == Trans::N) ? el(a, lda, i, l) : el(a, lda, l, i);
            s -= ail * el(b, ldb, l, j);
          }
          el(b, ldb, i, j) = unit ? s : s / el(a, lda, i, i);
        }
      }
    }
  } else {
    // Solve X op(A) = B, A is n x n triangular.  Column j of the solution
    // depends on prior (or later) columns depending on sweep direction.
    const bool forward = (uplo == Uplo::Upper) == (trans == Trans::N);
    if (forward) {
      for (int j = 0; j < n; ++j) {
        for (int l = 0; l < j; ++l) {
          const double alj = (trans == Trans::N) ? el(a, lda, l, j) : el(a, lda, j, l);
          if (alj == 0.0) continue;
          for (int i = 0; i < m; ++i) el(b, ldb, i, j) -= el(b, ldb, i, l) * alj;
        }
        if (!unit) {
          const double d = el(a, lda, j, j);
          for (int i = 0; i < m; ++i) el(b, ldb, i, j) /= d;
        }
      }
    } else {
      for (int j = n - 1; j >= 0; --j) {
        for (int l = j + 1; l < n; ++l) {
          const double alj = (trans == Trans::N) ? el(a, lda, l, j) : el(a, lda, j, l);
          if (alj == 0.0) continue;
          for (int i = 0; i < m; ++i) el(b, ldb, i, j) -= el(b, ldb, i, l) * alj;
        }
        if (!unit) {
          const double d = el(a, lda, j, j);
          for (int i = 0; i < m; ++i) el(b, ldb, i, j) /= d;
        }
      }
    }
  }
}

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n,
          double alpha, const double* a, int lda, double* b, int ldb) {
  const bool unit = diag == Diag::Unit;
  if (side == Side::Left) {
    // B <- alpha * op(A) * B; sweep order avoids overwriting inputs.
    const bool topdown = (uplo == Uplo::Upper) == (trans == Trans::N);
    for (int j = 0; j < n; ++j) {
      if (topdown) {
        for (int i = 0; i < m; ++i) {
          double s = unit ? el(b, ldb, i, j) : el(a, lda, i, i) * el(b, ldb, i, j);
          for (int l = i + 1; l < m; ++l) {
            const double ail = (trans == Trans::N) ? el(a, lda, i, l) : el(a, lda, l, i);
            s += ail * el(b, ldb, l, j);
          }
          el(b, ldb, i, j) = alpha * s;
        }
      } else {
        for (int i = m - 1; i >= 0; --i) {
          double s = unit ? el(b, ldb, i, j) : el(a, lda, i, i) * el(b, ldb, i, j);
          for (int l = 0; l < i; ++l) {
            const double ail = (trans == Trans::N) ? el(a, lda, i, l) : el(a, lda, l, i);
            s += ail * el(b, ldb, l, j);
          }
          el(b, ldb, i, j) = alpha * s;
        }
      }
    }
  } else {
    // B <- alpha * B * op(A).
    const bool leftright = (uplo == Uplo::Lower) == (trans == Trans::N);
    if (leftright) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i) {
          double s = unit ? el(b, ldb, i, j) : el(b, ldb, i, j) * el(a, lda, j, j);
          for (int l = j + 1; l < n; ++l) {
            const double alj = (trans == Trans::N) ? el(a, lda, l, j) : el(a, lda, j, l);
            s += el(b, ldb, i, l) * alj;
          }
          el(b, ldb, i, j) = alpha * s;
        }
      }
    } else {
      for (int j = n - 1; j >= 0; --j) {
        for (int i = 0; i < m; ++i) {
          double s = unit ? el(b, ldb, i, j) : el(b, ldb, i, j) * el(a, lda, j, j);
          for (int l = 0; l < j; ++l) {
            const double alj = (trans == Trans::N) ? el(a, lda, l, j) : el(a, lda, j, l);
            s += el(b, ldb, i, l) * alj;
          }
          el(b, ldb, i, j) = alpha * s;
        }
      }
    }
  }
}

double gemm_flops(double m, double n, double k) { return 2.0 * m * n * k; }
double syrk_flops(double n, double k) { return n * (n + 1) * k; }
double trsm_flops(Side side, double m, double n) {
  return side == Side::Left ? m * m * n : n * n * m;
}
double trmm_flops(Side side, double m, double n) {
  return side == Side::Left ? m * m * n : n * n * m;
}

}  // namespace critter::la
