// Dense column-major matrix container plus generators and norms.
//
// Kernels in la/ operate LAPACK-style on raw (pointer, leading-dimension)
// views so algorithms can address sub-blocks without copies; Matrix is the
// RAII owner used at API boundaries and in tests.
#pragma once

#include <cstdint>
#include <vector>

namespace critter::la {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int ld() const { return rows_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double& operator()(int i, int j) { return data_[static_cast<std::size_t>(j) * rows_ + i]; }
  double operator()(int i, int j) const { return data_[static_cast<std::size_t>(j) * rows_ + i]; }

  /// Pointer to element (i, j).
  double* at(int i, int j) { return data_.data() + static_cast<std::size_t>(j) * rows_ + i; }
  const double* at(int i, int j) const { return data_.data() + static_cast<std::size_t>(j) * rows_ + i; }

  void fill(double v);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Deterministic pseudo-random matrix with entries in [-0.5, 0.5].
Matrix random_matrix(int rows, int cols, std::uint64_t seed);

/// Symmetric positive definite matrix: R + R^T + 2*rows*I for random R.
Matrix random_spd(int n, std::uint64_t seed);

/// Frobenius norm of a (sub)matrix given by pointer/ld.
double frob_norm(int m, int n, const double* a, int lda);

/// Frobenius norm of the difference A - B (dimensions must match).
double frob_diff(const Matrix& a, const Matrix& b);

/// || A - L*L^T ||_F where L is lower triangular (in-place potrf output).
double cholesky_residual(const Matrix& a, const Matrix& l);

/// || Q^T Q - I ||_F for an m x n orthonormal-column matrix Q.
double orthogonality_error(const Matrix& q);

}  // namespace critter::la
