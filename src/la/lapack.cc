#include "la/lapack.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace critter::la {

namespace {
inline const double& el(const double* a, int lda, int i, int j) {
  return a[static_cast<std::size_t>(j) * lda + i];
}
inline double& el(double* a, int lda, int i, int j) {
  return a[static_cast<std::size_t>(j) * lda + i];
}
}  // namespace

int potrf(Uplo uplo, int n, double* a, int lda) {
  if (uplo == Uplo::Lower) {
    for (int j = 0; j < n; ++j) {
      double d = el(a, lda, j, j);
      for (int k = 0; k < j; ++k) d -= el(a, lda, j, k) * el(a, lda, j, k);
      if (d <= 0.0 || !std::isfinite(d)) return j + 1;
      d = std::sqrt(d);
      el(a, lda, j, j) = d;
      for (int i = j + 1; i < n; ++i) {
        double s = el(a, lda, i, j);
        for (int k = 0; k < j; ++k) s -= el(a, lda, i, k) * el(a, lda, j, k);
        el(a, lda, i, j) = s / d;
      }
    }
  } else {
    for (int j = 0; j < n; ++j) {
      double d = el(a, lda, j, j);
      for (int k = 0; k < j; ++k) d -= el(a, lda, k, j) * el(a, lda, k, j);
      if (d <= 0.0 || !std::isfinite(d)) return j + 1;
      d = std::sqrt(d);
      el(a, lda, j, j) = d;
      for (int i = j + 1; i < n; ++i) {
        double s = el(a, lda, j, i);
        for (int k = 0; k < j; ++k) s -= el(a, lda, k, j) * el(a, lda, k, i);
        el(a, lda, j, i) = s / d;
      }
    }
  }
  return 0;
}

int trtri(Uplo uplo, Diag diag, int n, double* a, int lda) {
  // Out-of-place inversion by triangular solves against the identity, then
  // copy back.  n is always a base-case block size here, so the extra n^2
  // buffer is negligible and the code stays obviously correct.
  std::vector<double> inv(static_cast<std::size_t>(n) * n, 0.0);
  for (int j = 0; j < n; ++j) inv[static_cast<std::size_t>(j) * n + j] = 1.0;
  if (uplo == Uplo::Lower) {
    for (int j = 0; j < n; ++j) {
      // forward substitution for column j of the inverse
      for (int i = j; i < n; ++i) {
        double s = inv[static_cast<std::size_t>(j) * n + i];
        for (int k = j; k < i; ++k)
          s -= el(a, lda, i, k) * inv[static_cast<std::size_t>(j) * n + k];
        if (diag == Diag::NonUnit) {
          if (el(a, lda, i, i) == 0.0) return i + 1;
          s /= el(a, lda, i, i);
        }
        inv[static_cast<std::size_t>(j) * n + i] = s;
      }
    }
    for (int j = 0; j < n; ++j)
      for (int i = j; i < n; ++i)
        el(a, lda, i, j) = inv[static_cast<std::size_t>(j) * n + i];
    if (diag == Diag::Unit)
      for (int i = 0; i < n; ++i) el(a, lda, i, i) = 1.0;
  } else {
    for (int j = 0; j < n; ++j) {
      for (int i = j; i >= 0; --i) {
        double s = inv[static_cast<std::size_t>(j) * n + i];
        for (int k = i + 1; k <= j; ++k)
          s -= el(a, lda, i, k) * inv[static_cast<std::size_t>(j) * n + k];
        if (diag == Diag::NonUnit) {
          if (el(a, lda, i, i) == 0.0) return i + 1;
          s /= el(a, lda, i, i);
        }
        inv[static_cast<std::size_t>(j) * n + i] = s;
      }
    }
    for (int j = 0; j < n; ++j)
      for (int i = 0; i <= j; ++i)
        el(a, lda, i, j) = inv[static_cast<std::size_t>(j) * n + i];
    if (diag == Diag::Unit)
      for (int i = 0; i < n; ++i) el(a, lda, i, i) = 1.0;
  }
  return 0;
}

int getrf(int m, int n, double* a, int lda, int* ipiv) {
  const int mn = std::min(m, n);
  for (int j = 0; j < mn; ++j) {
    int p = j;
    double best = std::fabs(el(a, lda, j, j));
    for (int i = j + 1; i < m; ++i) {
      const double v = std::fabs(el(a, lda, i, j));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    ipiv[j] = p;
    if (el(a, lda, p, j) == 0.0) return j + 1;
    if (p != j)
      for (int c = 0; c < n; ++c) std::swap(el(a, lda, j, c), el(a, lda, p, c));
    const double d = 1.0 / el(a, lda, j, j);
    for (int i = j + 1; i < m; ++i) el(a, lda, i, j) *= d;
    for (int c = j + 1; c < n; ++c) {
      const double ajc = el(a, lda, j, c);
      if (ajc == 0.0) continue;
      for (int i = j + 1; i < m; ++i) el(a, lda, i, c) -= el(a, lda, i, j) * ajc;
    }
  }
  return 0;
}

void getrs(Trans trans, int n, int nrhs, const double* a, int lda,
           const int* ipiv, double* b, int ldb) {
  if (trans == Trans::N) {
    for (int j = 0; j < n; ++j)
      if (ipiv[j] != j)
        for (int c = 0; c < nrhs; ++c)
          std::swap(el(b, ldb, j, c), el(b, ldb, ipiv[j], c));
    trsm(Side::Left, Uplo::Lower, Trans::N, Diag::Unit, n, nrhs, 1.0, a, lda, b, ldb);
    trsm(Side::Left, Uplo::Upper, Trans::N, Diag::NonUnit, n, nrhs, 1.0, a, lda, b, ldb);
  } else {
    trsm(Side::Left, Uplo::Upper, Trans::T, Diag::NonUnit, n, nrhs, 1.0, a, lda, b, ldb);
    trsm(Side::Left, Uplo::Lower, Trans::T, Diag::Unit, n, nrhs, 1.0, a, lda, b, ldb);
    for (int j = n - 1; j >= 0; --j)
      if (ipiv[j] != j)
        for (int c = 0; c < nrhs; ++c)
          std::swap(el(b, ldb, j, c), el(b, ldb, ipiv[j], c));
  }
}

namespace {

/// Generate an elementary reflector H = I - tau*v*v^T with v[0] = 1 such
/// that H * x = (beta, 0, ..., 0)^T.  x = (alpha, rest...), n = len(rest)+1.
double larfg(int n, double& alpha, double* x, int incx, double& tau) {
  if (n <= 1) {
    tau = 0.0;
    return alpha;
  }
  double xnorm = 0.0;
  for (int i = 0; i < n - 1; ++i) {
    const double v = x[static_cast<std::size_t>(i) * incx];
    xnorm += v * v;
  }
  xnorm = std::sqrt(xnorm);
  if (xnorm == 0.0) {
    tau = 0.0;
    return alpha;
  }
  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  tau = (beta - alpha) / beta;
  const double scale = 1.0 / (alpha - beta);
  for (int i = 0; i < n - 1; ++i) x[static_cast<std::size_t>(i) * incx] *= scale;
  return beta;
}

/// Apply H = I - tau*v*v^T (v[0]=1, tail in vtail) to C (m x n) from left.
void larf_left(int m, int n, const double* vtail, double tau, double* c, int ldc) {
  if (tau == 0.0) return;
  for (int j = 0; j < n; ++j) {
    double w = el(c, ldc, 0, j);
    for (int i = 1; i < m; ++i) w += vtail[i - 1] * el(c, ldc, i, j);
    w *= tau;
    el(c, ldc, 0, j) -= w;
    for (int i = 1; i < m; ++i) el(c, ldc, i, j) -= vtail[i - 1] * w;
  }
}

}  // namespace

void geqr2(int m, int n, double* a, int lda, double* tau) {
  const int k = std::min(m, n);
  for (int j = 0; j < k; ++j) {
    double alpha = el(a, lda, j, j);
    const double beta = larfg(m - j, alpha, a + static_cast<std::size_t>(j) * lda + j + 1, 1, tau[j]);
    el(a, lda, j, j) = beta;
    if (j + 1 < n)
      larf_left(m - j, n - j - 1, a + static_cast<std::size_t>(j) * lda + j + 1,
                tau[j], a + static_cast<std::size_t>(j + 1) * lda + j, lda);
  }
}

void larft(int m, int k, const double* v, int ldv, const double* tau,
           double* t, int ldt) {
  // T is upper triangular; column j: T(0:j, j) = -tau_j * T * (V^T v_j).
  for (int j = 0; j < k; ++j) {
    el(t, ldt, j, j) = tau[j];
    if (tau[j] == 0.0) {
      for (int i = 0; i < j; ++i) el(t, ldt, i, j) = 0.0;
      continue;
    }
    // w = V(:, 0:j)^T * v_j, exploiting unit lower trapezoidal V.
    std::vector<double> w(j, 0.0);
    for (int i = 0; i < j; ++i) {
      double s = el(v, ldv, j, i);  // v_i[j]-th entry times v_j[j] = 1
      for (int r = j + 1; r < m; ++r) s += el(v, ldv, r, i) * el(v, ldv, r, j);
      w[i] = s;
    }
    for (int i = 0; i < j; ++i) {
      double s = 0.0;
      for (int l = i; l < j; ++l) s += el(t, ldt, i, l) * w[l];
      el(t, ldt, i, j) = -tau[j] * s;
    }
  }
}

void larfb(Side side, Trans trans, int m, int n, int k, const double* v,
           int ldv, const double* t, int ldt, double* c, int ldc) {
  // H = I - V T V^T with V unit lower trapezoidal (m x k or n x k).
  if (side == Side::Left) {
    // W = V^T C (k x n); W = op(T) W; C -= V W.
    std::vector<double> w(static_cast<std::size_t>(k) * n, 0.0);
    for (int j = 0; j < n; ++j)
      for (int col = 0; col < k; ++col) {
        double s = el(c, ldc, col, j);  // V(col, col) = 1
        for (int r = col + 1; r < m; ++r) s += el(v, ldv, r, col) * el(c, ldc, r, j);
        w[static_cast<std::size_t>(j) * k + col] = s;
      }
    // W <- op(T) W, T upper triangular k x k.
    trmm(Side::Left, Uplo::Upper, trans == Trans::N ? Trans::N : Trans::T,
         Diag::NonUnit, k, n, 1.0, t, ldt, w.data(), k);
    for (int j = 0; j < n; ++j)
      for (int col = 0; col < k; ++col) {
        const double wcj = w[static_cast<std::size_t>(j) * k + col];
        if (wcj == 0.0) continue;
        el(c, ldc, col, j) -= wcj;
        for (int r = col + 1; r < m; ++r) el(c, ldc, r, j) -= el(v, ldv, r, col) * wcj;
      }
  } else {
    // C <- C * op(H): W = C V (m x k); W = W op(T); C -= W V^T.
    std::vector<double> w(static_cast<std::size_t>(m) * k, 0.0);
    for (int col = 0; col < k; ++col)
      for (int i = 0; i < m; ++i) {
        double s = el(c, ldc, i, col);
        for (int r = col + 1; r < n; ++r) s += el(c, ldc, i, r) * el(v, ldv, r, col);
        w[static_cast<std::size_t>(col) * m + i] = s;
      }
    trmm(Side::Right, Uplo::Upper, trans == Trans::N ? Trans::N : Trans::T,
         Diag::NonUnit, m, k, 1.0, t, ldt, w.data(), m);
    for (int col = 0; col < k; ++col)
      for (int i = 0; i < m; ++i) {
        const double wic = w[static_cast<std::size_t>(col) * m + i];
        if (wic == 0.0) continue;
        el(c, ldc, i, col) -= wic;
        for (int r = col + 1; r < n; ++r) el(c, ldc, i, r) -= wic * el(v, ldv, r, col);
      }
  }
}

void geqrf(int m, int n, double* a, int lda, double* tau, int nb) {
  CRITTER_CHECK(nb >= 1, "geqrf block size");
  const int k = std::min(m, n);
  std::vector<double> t(static_cast<std::size_t>(nb) * nb);
  for (int j = 0; j < k; j += nb) {
    const int jb = std::min(nb, k - j);
    geqr2(m - j, jb, a + static_cast<std::size_t>(j) * lda + j, lda, tau + j);
    if (j + jb < n) {
      larft(m - j, jb, a + static_cast<std::size_t>(j) * lda + j, lda, tau + j,
            t.data(), nb);
      larfb(Side::Left, Trans::T, m - j, n - j - jb, jb,
            a + static_cast<std::size_t>(j) * lda + j, lda, t.data(), nb,
            a + static_cast<std::size_t>(j + jb) * lda + j, lda);
    }
  }
}

void ormqr(Side side, Trans trans, int m, int n, int k, const double* a,
           int lda, const double* tau, double* c, int ldc, int nb) {
  CRITTER_CHECK(side == Side::Left, "ormqr: only Side::Left implemented");
  std::vector<double> t(static_cast<std::size_t>(nb) * nb);
  // Q = H_0 H_1 ... H_{k-1}.  Q^T C applies blocks forward; Q C backward.
  const bool forward = (trans == Trans::T);
  const int nblocks = (k + nb - 1) / nb;
  for (int bi = 0; bi < nblocks; ++bi) {
    const int b = forward ? bi : nblocks - 1 - bi;
    const int j = b * nb;
    const int jb = std::min(nb, k - j);
    larft(m - j, jb, a + static_cast<std::size_t>(j) * lda + j, lda, tau + j,
          t.data(), nb);
    larfb(Side::Left, trans, m - j, n, jb,
          a + static_cast<std::size_t>(j) * lda + j, lda, t.data(), nb,
          c + j, ldc);
  }
}

void orgqr(int m, int n, int k, double* a, int lda, const double* tau, int nb) {
  // Build Q by applying Q to the identity: copy reflectors, then apply.
  std::vector<double> refl(static_cast<std::size_t>(m) * k);
  for (int j = 0; j < k; ++j)
    for (int i = 0; i < m; ++i)
      refl[static_cast<std::size_t>(j) * m + i] = el(a, lda, i, j);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) el(a, lda, i, j) = (i == j) ? 1.0 : 0.0;
  ormqr(Side::Left, Trans::N, m, n, k, refl.data(), m, tau, a, lda, nb);
}

double potrf_flops(double n) { return n * n * n / 3.0; }
double trtri_flops(double n) { return n * n * n / 3.0; }
double getrf_flops(double m, double n) {
  const double k = std::min(m, n);
  return m * n * k - (m + n) * k * k / 2.0 + k * k * k / 3.0;
}
double geqrf_flops(double m, double n) {
  if (m >= n) return 2.0 * m * n * n - 2.0 * n * n * n / 3.0;
  return 2.0 * n * m * m - 2.0 * m * m * m / 3.0;
}
double ormqr_flops(Side side, double m, double n, double k) {
  return side == Side::Left ? 4.0 * n * m * k - 2.0 * n * k * k
                            : 4.0 * m * n * k - 2.0 * m * k * k;
}

}  // namespace critter::la
