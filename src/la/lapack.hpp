// LAPACK-style factorization kernels (column-major).
//
// The set mirrors exactly the routines the paper's four libraries invoke:
// potrf, trtri, getrf/getrs (Householder reconstruction), geqrf/ormqr
// (blocked Householder QR), plus larft/larfb building blocks.
#pragma once

#include "la/blas.hpp"

namespace critter::la {

/// Cholesky factorization A = L*L^T (Lower) or A = U^T*U (Upper), in place.
/// Returns 0 on success or the 1-based index of the first non-positive pivot.
int potrf(Uplo uplo, int n, double* a, int lda);

/// Triangular inversion in place.  Returns 0 on success or the 1-based index
/// of a zero diagonal entry.
int trtri(Uplo uplo, Diag diag, int n, double* a, int lda);

/// LU with partial pivoting, in place; ipiv is 0-based row swaps
/// (LAPACK-style: row i was swapped with row ipiv[i]).
/// Returns 0 on success or 1-based index of a zero pivot.
int getrf(int m, int n, double* a, int lda, int* ipiv);

/// Solve op(A) X = B using a getrf factorization of A (n x n), B is n x nrhs.
void getrs(Trans trans, int n, int nrhs, const double* a, int lda,
           const int* ipiv, double* b, int ldb);

/// Unblocked Householder QR: on exit the upper triangle holds R, the strict
/// lower part holds the Householder vectors; tau has n scalar factors.
void geqr2(int m, int n, double* a, int lda, double* tau);

/// Blocked Householder QR with block size nb (delegates to geqr2 + larfb).
void geqrf(int m, int n, double* a, int lda, double* tau, int nb);

/// Form the upper-triangular block reflector factor T (k x k) from the
/// Householder vectors stored in V (m x k, unit lower trapezoidal).
void larft(int m, int k, const double* v, int ldv, const double* tau,
           double* t, int ldt);

/// Apply a block reflector H = I - V T V^T (or its transpose) to C:
///   Side::Left : C <- op(H) * C     (V is m x k)
///   Side::Right: C <- C * op(H)     (V is n x k)
void larfb(Side side, Trans trans, int m, int n, int k, const double* v,
           int ldv, const double* t, int ldt, double* c, int ldc);

/// Apply op(Q) from a geqrf factorization to C (Side::Left only).
void ormqr(Side side, Trans trans, int m, int n, int k, const double* a,
           int lda, const double* tau, double* c, int ldc, int nb);

/// Build the explicit m x n Q factor (first n columns) from geqrf output.
void orgqr(int m, int n, int k, double* a, int lda, const double* tau, int nb);

// --- exact flop counts used by the simulator's gamma cost model ---
double potrf_flops(double n);
double trtri_flops(double n);
double getrf_flops(double m, double n);
double geqrf_flops(double m, double n);
double ormqr_flops(Side side, double m, double n, double k);

}  // namespace critter::la
