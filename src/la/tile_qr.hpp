// Tile-QR kernels in the LAPACK tpqrt family, as used by SLATE's geqrf and
// by tree-TSQR reductions:
//
//   geqrt  — QR of one tile, producing V (in A) and the block reflector T;
//   tpqrt  — QR of a [R; B] stack where R is upper triangular and B is a
//            pentagonal tile (l = 0 gives the "triangular on top of square"
//            tsqrt case; l = n gives the "triangular on triangular" ttqrt
//            case used when combining TSQR tree nodes);
//   tpmqrt — apply the tpqrt reflectors to a [A; B] stacked pair.
//
// The implementations treat B densely; pentagonal structural zeros are
// preserved exactly by the arithmetic, and the flop formulas account for l.
#pragma once

#include "la/blas.hpp"

namespace critter::la {

/// QR of an m x n tile (m >= n).  On exit A holds R above the diagonal and
/// the Householder vectors below; T (n x n upper triangular) is filled.
void geqrt(int m, int n, double* a, int lda, double* t, int ldt);

/// Factor [A; B] where A is n x n upper triangular (overwritten by the new
/// R) and B is m x n (overwritten by the Householder vector tails).
/// l is the number of rows of the trapezoidal (triangular) top of B:
/// l = 0 for a dense B, l = n when B is itself upper triangular.
void tpqrt(int m, int n, int l, double* a, int lda, double* b, int ldb,
           double* t, int ldt);

/// Apply the tpqrt transformation (or its transpose) from the left to the
/// stacked pair [A; B]: A is k x ncols, B is m x ncols, V is the m x k
/// Householder block from tpqrt, T its k x k triangular factor.
void tpmqrt(Trans trans, int m, int ncols, int k, const double* v, int ldv,
            const double* t, int ldt, double* a, int lda, double* b, int ldb);

// --- flop counts for the gamma cost model ---
double geqrt_flops(double m, double n);
double tpqrt_flops(double m, double n, double l);
double tpmqrt_flops(double m, double n, double k, double l);

}  // namespace critter::la
