#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace la = critter::la;

namespace {

la::Matrix naive_gemm(la::Trans ta, la::Trans tb, const la::Matrix& a,
                      const la::Matrix& b, int m, int n, int k) {
  la::Matrix c(m, n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double s = 0;
      for (int l = 0; l < k; ++l) {
        const double av = ta == la::Trans::N ? a(i, l) : a(l, i);
        const double bv = tb == la::Trans::N ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = s;
    }
  return c;
}

}  // namespace

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GemmShapes, MatchesNaiveForAllTransposeCombos) {
  auto [m, n, k, seed] = GetParam();
  for (la::Trans ta : {la::Trans::N, la::Trans::T})
    for (la::Trans tb : {la::Trans::N, la::Trans::T}) {
      la::Matrix a = ta == la::Trans::N ? la::random_matrix(m, k, seed)
                                        : la::random_matrix(k, m, seed);
      la::Matrix b = tb == la::Trans::N ? la::random_matrix(k, n, seed + 1)
                                        : la::random_matrix(n, k, seed + 1);
      la::Matrix c(m, n);
      la::gemm(ta, tb, m, n, k, 1.0, a.data(), a.ld(), b.data(), b.ld(), 0.0,
               c.data(), c.ld());
      la::Matrix ref = naive_gemm(ta, tb, a, b, m, n, k);
      EXPECT_LT(la::frob_diff(c, ref), 1e-12) << "ta/tb combo failed";
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1, 1},
                                           std::tuple{3, 5, 7, 2},
                                           std::tuple{8, 8, 8, 3},
                                           std::tuple{16, 4, 9, 4},
                                           std::tuple{5, 17, 2, 5},
                                           std::tuple{32, 32, 32, 6}));

TEST(Gemm, AlphaBetaScaling) {
  const int n = 6;
  la::Matrix a = la::random_matrix(n, n, 11);
  la::Matrix b = la::random_matrix(n, n, 12);
  la::Matrix c = la::random_matrix(n, n, 13);
  la::Matrix c2 = c;
  // c2 = 2*a*b + 3*c
  la::gemm(la::Trans::N, la::Trans::N, n, n, n, 2.0, a.data(), n, b.data(), n,
           3.0, c2.data(), n);
  la::Matrix ab = naive_gemm(la::Trans::N, la::Trans::N, a, b, n, n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(c2(i, j), 2.0 * ab(i, j) + 3.0 * c(i, j), 1e-12);
}

TEST(Gemm, KZeroOnlyScalesC) {
  la::Matrix c = la::random_matrix(4, 4, 3);
  la::Matrix c0 = c;
  la::gemm(la::Trans::N, la::Trans::N, 4, 4, 0, 1.0, nullptr, 1, nullptr, 1,
           0.5, c.data(), 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) EXPECT_NEAR(c(i, j), 0.5 * c0(i, j), 1e-15);
}

class SyrkShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SyrkShapes, MatchesGemmOnReferencedTriangle) {
  auto [n, k] = GetParam();
  for (la::Uplo uplo : {la::Uplo::Lower, la::Uplo::Upper})
    for (la::Trans trans : {la::Trans::N, la::Trans::T}) {
      la::Matrix a = trans == la::Trans::N ? la::random_matrix(n, k, 21)
                                           : la::random_matrix(k, n, 21);
      la::Matrix c(n, n), ref(n, n);
      la::syrk(uplo, trans, n, k, 1.0, a.data(), a.ld(), 0.0, c.data(), n);
      ref = naive_gemm(trans, trans == la::Trans::N ? la::Trans::T : la::Trans::N,
                       a, a, n, n, k);
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i) {
          const bool in_tri = uplo == la::Uplo::Lower ? i >= j : i <= j;
          if (in_tri)
            EXPECT_NEAR(c(i, j), ref(i, j), 1e-12);
          else
            EXPECT_EQ(c(i, j), 0.0);  // untouched
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SyrkShapes,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{5, 3},
                                           std::tuple{8, 8}, std::tuple{13, 6},
                                           std::tuple{16, 24}));

class TrsmShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrsmShapes, SolvesAgainstTrmm) {
  auto [m, n] = GetParam();
  for (la::Side side : {la::Side::Left, la::Side::Right})
    for (la::Uplo uplo : {la::Uplo::Lower, la::Uplo::Upper})
      for (la::Trans trans : {la::Trans::N, la::Trans::T})
        for (la::Diag diag : {la::Diag::NonUnit, la::Diag::Unit}) {
          const int asz = side == la::Side::Left ? m : n;
          la::Matrix a = la::random_matrix(asz, asz, 31);
          for (int i = 0; i < asz; ++i) a(i, i) += asz;  // well-conditioned
          la::Matrix x = la::random_matrix(m, n, 32);
          la::Matrix b = x;
          // b = op(A)*x (or x*op(A)); then solve and compare to x.
          la::trmm(side, uplo, trans, diag, m, n, 1.0, a.data(), asz, b.data(), m);
          la::trsm(side, uplo, trans, diag, m, n, 1.0, a.data(), asz, b.data(), m);
          EXPECT_LT(la::frob_diff(b, x), 1e-10)
              << "side=" << static_cast<int>(side) << " uplo=" << static_cast<int>(uplo)
              << " trans=" << static_cast<int>(trans) << " diag=" << static_cast<int>(diag);
        }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrsmShapes,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{4, 7},
                                           std::tuple{9, 3}, std::tuple{12, 12},
                                           std::tuple{20, 5}));

TEST(Trmm, UnitDiagonalIgnoresStoredDiagonal) {
  const int n = 5;
  la::Matrix a = la::random_matrix(n, n, 41);
  la::Matrix b = la::random_matrix(n, n, 42);
  la::Matrix b1 = b, b2 = b;
  la::Matrix a2 = a;
  for (int i = 0; i < n; ++i) a2(i, i) = 123.0;  // should be ignored
  la::trmm(la::Side::Left, la::Uplo::Lower, la::Trans::N, la::Diag::Unit, n, n,
           1.0, a.data(), n, b1.data(), n);
  la::trmm(la::Side::Left, la::Uplo::Lower, la::Trans::N, la::Diag::Unit, n, n,
           1.0, a2.data(), n, b2.data(), n);
  EXPECT_LT(la::frob_diff(b1, b2), 1e-15);
}

TEST(Trmm, AlphaScales) {
  const int n = 4;
  la::Matrix a = la::random_matrix(n, n, 51);
  la::Matrix b = la::random_matrix(n, n, 52);
  la::Matrix b1 = b, b2 = b;
  la::trmm(la::Side::Right, la::Uplo::Upper, la::Trans::T, la::Diag::NonUnit,
           n, n, 2.0, a.data(), n, b1.data(), n);
  la::trmm(la::Side::Right, la::Uplo::Upper, la::Trans::T, la::Diag::NonUnit,
           n, n, 1.0, a.data(), n, b2.data(), n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) EXPECT_NEAR(b1(i, j), 2.0 * b2(i, j), 1e-12);
}

TEST(Flops, FormulasArePositiveAndScale) {
  EXPECT_DOUBLE_EQ(la::gemm_flops(2, 3, 4), 48.0);
  EXPECT_GT(la::syrk_flops(8, 4), 0.0);
  EXPECT_GT(la::trsm_flops(la::Side::Left, 4, 8), la::trsm_flops(la::Side::Left, 4, 4));
  EXPECT_GT(la::trmm_flops(la::Side::Right, 4, 8), 0.0);
}
