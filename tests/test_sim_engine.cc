#include <gtest/gtest.h>

#include <vector>

#include "sim/api.hpp"
#include "sim/engine.hpp"

namespace sim = critter::sim;

namespace {
sim::Machine quiet() { return sim::Machine::noiseless(); }
}  // namespace

TEST(Engine, RunsAllRanksToCompletion) {
  sim::Engine e(8, quiet());
  std::vector<int> visited(8, 0);
  e.run([&](sim::RankCtx& ctx) { visited[ctx.rank] = 1; });
  for (int v : visited) EXPECT_EQ(v, 1);
  EXPECT_DOUBLE_EQ(e.max_time(), 0.0);
}

TEST(Engine, AdvanceMovesOnlyLocalClock) {
  sim::Engine e(4, quiet());
  e.run([&](sim::RankCtx& ctx) {
    if (ctx.rank == 2) sim::advance(5.0);
  });
  EXPECT_DOUBLE_EQ(e.final_clocks()[0], 0.0);
  EXPECT_DOUBLE_EQ(e.final_clocks()[2], 5.0);
  EXPECT_DOUBLE_EQ(e.max_time(), 5.0);
}

TEST(Engine, SendRecvTransfersData) {
  sim::Engine e(2, quiet());
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    if (ctx.rank == 0) {
      double x = 42.5;
      sim::send(&x, sizeof x, 1, 0, w);
    } else {
      double y = 0.0;
      sim::recv(&y, sizeof y, 0, 0, w);
      EXPECT_DOUBLE_EQ(y, 42.5);
    }
  });
}

TEST(Engine, RecvWaitsForMessageArrivalTime) {
  const sim::Machine m = quiet();
  sim::Engine e(2, m);
  const int bytes = 1000;
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    std::vector<char> buf(bytes);
    if (ctx.rank == 0) {
      sim::advance(1.0);  // sender is late
      sim::send(buf.data(), bytes, 1, 0, w);
    } else {
      sim::recv(buf.data(), bytes, 0, 0, w);
      // receiver must resume at sender_time + alpha + beta*bytes
      EXPECT_NEAR(sim::now(), 1.0 + m.alpha + m.beta * bytes, 1e-12);
    }
  });
}

TEST(Engine, LateReceiverDoesNotPayTransferTwice) {
  const sim::Machine m = quiet();
  sim::Engine e(2, m);
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    double x = 1.0;
    if (ctx.rank == 0) {
      sim::send(&x, sizeof x, 1, 0, w);
    } else {
      sim::advance(9.0);  // receiver is late; message already arrived
      sim::recv(&x, sizeof x, 0, 0, w);
      EXPECT_DOUBLE_EQ(sim::now(), 9.0);
    }
  });
}

TEST(Engine, NonOvertakingPerSenderFifo) {
  sim::Engine e(2, quiet());
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    if (ctx.rank == 0) {
      for (int i = 0; i < 5; ++i) sim::send(&i, sizeof i, 1, 7, w);
    } else {
      for (int i = 0; i < 5; ++i) {
        int v = -1;
        sim::recv(&v, sizeof v, 0, 7, w);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Engine, TagsMatchIndependently) {
  sim::Engine e(2, quiet());
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    if (ctx.rank == 0) {
      int a = 1, b = 2;
      sim::send(&a, sizeof a, 1, /*tag=*/10, w);
      sim::send(&b, sizeof b, 1, /*tag=*/20, w);
    } else {
      int v = 0;
      sim::recv(&v, sizeof v, 0, 20, w);  // out of send order by tag
      EXPECT_EQ(v, 2);
      sim::recv(&v, sizeof v, 0, 10, w);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Engine, IsendRecvOverlap) {
  const sim::Machine m = quiet();
  sim::Engine e(2, m);
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    double x = 3.0;
    if (ctx.rank == 0) {
      sim::Request r = sim::isend(&x, sizeof x, 1, 0, w);
      sim::advance(2.0);  // overlap compute with transfer
      sim::wait(r);
      EXPECT_NEAR(sim::now(), 2.0 + m.alpha, 1e-12);
    } else {
      double y = 0;
      sim::recv(&y, sizeof y, 0, 0, w);
      EXPECT_DOUBLE_EQ(y, 3.0);
    }
  });
}

TEST(Engine, IrecvPostedBeforeSend) {
  sim::Engine e(2, quiet());
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    double x = 7.5;
    if (ctx.rank == 1) {
      double y = 0;
      sim::Request r = sim::irecv(&y, sizeof y, 0, 3, w);
      sim::wait(r);
      EXPECT_DOUBLE_EQ(y, 7.5);
    } else {
      sim::advance(0.5);
      sim::send(&x, sizeof x, 1, 3, w);
    }
  });
}

TEST(Engine, SendrecvExchanges) {
  sim::Engine e(2, quiet());
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    int mine = ctx.rank, theirs = -1;
    const int peer = 1 - ctx.rank;
    sim::sendrecv(&mine, sizeof mine, peer, 0, &theirs, sizeof theirs, peer, 0, w);
    EXPECT_EQ(theirs, peer);
  });
}

TEST(Engine, DeadlockIsDetectedAndReported) {
  sim::Engine e(2, quiet());
  EXPECT_THROW(
      e.run([&](sim::RankCtx& ctx) {
        sim::Comm w = sim::world();
        int x = 0;
        // both ranks recv, nobody sends
        sim::recv(&x, sizeof x, 1 - ctx.rank, 0, w);
      }),
      std::runtime_error);
}

TEST(Engine, MessageSizeMismatchThrows) {
  sim::Engine e(2, quiet());
  EXPECT_THROW(
      e.run([&](sim::RankCtx& ctx) {
        sim::Comm w = sim::world();
        char buf[16];
        if (ctx.rank == 0) sim::send(buf, 8, 1, 0, w);
        else sim::recv(buf, 16, 0, 0, w);
      }),
      std::runtime_error);
}

TEST(Engine, RankExceptionPropagates) {
  sim::Engine e(4, quiet());
  EXPECT_THROW(e.run([&](sim::RankCtx& ctx) {
    if (ctx.rank == 3) throw std::logic_error("boom");
  }),
               std::logic_error);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t salt) {
    sim::Machine m = sim::Machine::knl_like();  // with noise
    sim::Engine e(16, m, salt);
    e.run([&](sim::RankCtx& ctx) {
      sim::Comm w = sim::world();
      std::vector<double> buf(64);
      for (int it = 0; it < 5; ++it) {
        sim::advance(1e-6 * (ctx.rank + 1));
        sim::allreduce(buf.data(), buf.data(), 64 * 8, sim::reduce_sum_double(), w);
      }
    });
    return e.max_time();
  };
  EXPECT_DOUBLE_EQ(run_once(1), run_once(1));
  EXPECT_NE(run_once(1), run_once(2));  // salt changes noise
}

TEST(Engine, ApiOutsideFiberThrows) {
  EXPECT_THROW(sim::now(), std::runtime_error);
}

TEST(Engine, ManyRanksScale) {
  sim::Engine e(512, quiet());
  e.run([&](sim::RankCtx&) {
    std::int64_t x = 1, y = 0;
    sim::allreduce(&x, &y, 8, sim::reduce_sum_i64(), sim::world());
    EXPECT_EQ(y, 512);
  });
  EXPECT_EQ(e.coll_count(), 1);
}
