// Integration tests of the critter profiler: interception, selective
// execution, path propagation, policies, and reports on small SPMD programs.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "core/profiler.hpp"
#include "la/matrix.hpp"
#include "sim/api.hpp"

namespace sim = critter::sim;
using critter::Config;
using critter::ExecMode;
using critter::Policy;
using critter::Report;
using critter::Store;

namespace {

sim::Machine machine(double noise = 0.05) {
  sim::Machine m = sim::Machine::knl_like();
  m.comm_noise = noise;
  m.comp_noise = noise;
  return m;
}

/// Run one SPMD body under the profiler; returns rank 0's report.
Report run_under(Store& store, int nranks,
                 const std::function<void()>& body,
                 double noise = 0.05, std::uint64_t salt = 0) {
  sim::Engine eng(nranks, machine(noise), salt);
  Report out;
  eng.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    body();
    Report r = critter::stop();
    if (ctx.rank == 0) out = r;
  });
  return out;
}

/// A bulk-synchronous toy program: iterations of gemm + allreduce.
void toy_program(int iters, int gemm_dim, int bytes) {
  for (int i = 0; i < iters; ++i) {
    critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, gemm_dim,
                        gemm_dim, gemm_dim, 1.0, nullptr, gemm_dim, nullptr,
                        gemm_dim, 0.0, nullptr, gemm_dim);
    critter::mpi::allreduce(nullptr, nullptr, bytes, sim::reduce_sum_double(),
                            sim::world());
  }
}

}  // namespace

TEST(Profiler, FullExecutionCountsEverything) {
  Config cfg;
  cfg.selective = false;
  Store store(4, cfg);
  Report r = run_under(store, 4, [] { toy_program(10, 32, 1024); });
  EXPECT_EQ(r.skipped, 0);
  // 4 ranks x 10 iters x (1 gemm + 1 allreduce)
  EXPECT_EQ(r.executed, 4 * 10 * 2);
  EXPECT_GT(r.critical.exec_time, 0.0);
  EXPECT_GT(r.critical.comp_time, 0.0);
  EXPECT_GT(r.critical.comm_time, 0.0);
  EXPECT_DOUBLE_EQ(r.critical.sync_cost, 10.0);
  EXPECT_DOUBLE_EQ(r.critical.comp_cost, 10.0 * 2.0 * 32 * 32 * 32);
  EXPECT_EQ(r.p, 4);
}

TEST(Profiler, BspCommCostMatchesModel) {
  Config cfg;
  cfg.selective = false;
  Store store(4, cfg);
  const int bytes = 4096;
  Report r = run_under(store, 4, [&] { toy_program(3, 8, bytes); });
  const double words =
      sim::Machine::coll_bytes_moved(sim::CollType::Allreduce, bytes, 4) / 8.0;
  EXPECT_DOUBLE_EQ(r.critical.comm_cost, 3 * words);
  EXPECT_DOUBLE_EQ(r.volavg.comm_cost, 3 * words);
}

TEST(Profiler, SelectiveSkipsSteadyKernels) {
  Config cfg;
  cfg.policy = Policy::ConditionalExecution;
  cfg.tolerance = 0.5;  // loose
  Store store(4, cfg);
  Report r = run_under(store, 4, [] { toy_program(200, 32, 1024); });
  EXPECT_GT(r.skipped, 0);
  EXPECT_LT(r.executed, 4 * 200 * 2);
}

TEST(Profiler, SelectiveRunIsFasterAndPredictsFullTime) {
  // Selective execution should cut wall time while its modeled exec_time
  // stays close to the true (uninstrumented full) execution time.
  Config full_cfg;
  full_cfg.instrument = false;
  Store full_store(8, full_cfg);
  Report full = run_under(full_store, 8, [] { toy_program(120, 256, 65536); });

  Config sel_cfg;
  sel_cfg.policy = Policy::ConditionalExecution;
  sel_cfg.tolerance = 0.25;
  Store sel_store(8, sel_cfg);
  Report sel = run_under(sel_store, 8, [] { toy_program(120, 256, 65536); });

  EXPECT_LT(sel.wall_time, full.wall_time);  // tuning speedup
  const double err =
      std::abs(sel.critical.exec_time - full.wall_time) / full.wall_time;
  EXPECT_LT(err, 0.10) << "prediction error too large";
}

TEST(Profiler, TighterToleranceExecutesMore) {
  auto skipped_at = [](double tol) {
    Config cfg;
    cfg.policy = Policy::ConditionalExecution;
    cfg.tolerance = tol;
    Store store(4, cfg);
    Report r = run_under(store, 4, [] { toy_program(100, 16, 512); });
    return r.skipped;
  };
  const auto loose = skipped_at(0.5);
  const auto tight = skipped_at(0.01);
  EXPECT_GE(loose, tight);
  EXPECT_GT(loose, 0);
}

TEST(Profiler, EveryKernelExecutesOncePerEpoch) {
  Config cfg;
  cfg.policy = Policy::ConditionalExecution;
  cfg.tolerance = 0.9;
  Store store(2, cfg);
  (void)run_under(store, 2, [] { toy_program(100, 16, 256); });
  const auto executed_before = store.rank(0).table.K.begin()->second.total_executions;
  store.new_epoch();
  (void)run_under(store, 2, [] { toy_program(1, 16, 256); });
  // one new invocation in the new epoch: must have executed (not skipped)
  for (const auto& [key, ks] : store.rank(0).table.K) {
    EXPECT_GE(ks.executions_this_epoch, 1)
        << "kernel " << key.to_string() << " was never executed this epoch";
  }
  (void)executed_before;
}

TEST(Profiler, OnlinePropagationSkipsEarlierThanConditional) {
  // With many recurrences along the path, sqrt(k) shrink lets the online
  // policy reach steadiness sooner (more skips for a tight tolerance).
  auto skipped_with = [](Policy pol) {
    Config cfg;
    cfg.policy = pol;
    cfg.tolerance = 0.02;  // tight enough that conditional rarely stops
    Store store(4, cfg);
    Report r = run_under(store, 4, [] { toy_program(150, 16, 512); });
    return r.skipped;
  };
  const auto cond = skipped_with(Policy::ConditionalExecution);
  const auto online = skipped_with(Policy::OnlinePropagation);
  EXPECT_GT(online, cond);
}

TEST(Profiler, LocalPropagationBetweenConditionalAndOnline) {
  auto skipped_with = [](Policy pol) {
    Config cfg;
    cfg.policy = pol;
    cfg.tolerance = 0.02;
    Store store(4, cfg);
    Report r = run_under(store, 4, [] { toy_program(150, 16, 512); });
    return r.skipped;
  };
  const auto cond = skipped_with(Policy::ConditionalExecution);
  const auto local = skipped_with(Policy::LocalPropagation);
  EXPECT_GE(local, cond);
}

TEST(Profiler, AprioriUsesRecordedPathCounts) {
  Config cfg;
  cfg.policy = Policy::AprioriPropagation;
  cfg.tolerance = 0.02;
  Store store(4, cfg);
  // offline full pass
  {
    store.config().selective = false;
    (void)run_under(store, 4, [] { toy_program(150, 16, 512); });
    store.set_apriori_from_last_run();
    store.config().selective = true;
  }
  EXPECT_FALSE(store.rank(0).apriori.empty());
  store.new_epoch();
  Report sel = run_under(store, 4, [] { toy_program(150, 16, 512); });
  // conditional reference
  Config ccfg;
  ccfg.policy = Policy::ConditionalExecution;
  ccfg.tolerance = 0.02;
  Store cstore(4, ccfg);
  Report cond = run_under(cstore, 4, [] { toy_program(150, 16, 512); });
  EXPECT_GT(sel.skipped, cond.skipped);
}

TEST(Profiler, PathPropagationTracksSlowestRank) {
  // Rank 2 does extra compute each iteration; every rank's critical path
  // must reflect rank 2's kernel time after the allreduce propagation.
  Config cfg;
  cfg.selective = false;
  Store store(4, cfg);
  Report r = run_under(store, 4, [] {
    for (int i = 0; i < 5; ++i) {
      const int me = sim::world_rank();
      const int dim = me == 2 ? 64 : 8;
      critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, dim,
                          dim, dim, 1.0, nullptr, dim, nullptr, dim, 0.0,
                          nullptr, dim);
      critter::mpi::allreduce(nullptr, nullptr, 256, sim::reduce_sum_double(),
                              sim::world());
    }
  });
  // critical-path comp cost is rank 2's flops, not the average
  EXPECT_DOUBLE_EQ(r.critical.comp_cost, 5 * 2.0 * 64 * 64 * 64);
  EXPECT_LT(r.volavg.comp_cost, r.critical.comp_cost);
}

TEST(Profiler, P2PSenderDecidesNoDeadlock) {
  Config cfg;
  cfg.policy = Policy::ConditionalExecution;
  cfg.tolerance = 0.6;
  Store store(2, cfg);
  Report r = run_under(store, 2, [] {
    for (int i = 0; i < 120; ++i) {
      if (sim::world_rank() == 0)
        critter::mpi::send(nullptr, 4096, 1, 0, sim::world());
      else
        critter::mpi::recv(nullptr, 4096, 0, 0, sim::world());
    }
  });
  EXPECT_GT(r.skipped, 0);  // sends eventually steady and skipped
}

TEST(Profiler, IsendWaitRoundTrip) {
  Config cfg;
  cfg.policy = Policy::ConditionalExecution;
  cfg.tolerance = 0.5;
  Store store(2, cfg);
  Report r = run_under(store, 2, [] {
    for (int i = 0; i < 100; ++i) {
      if (sim::world_rank() == 0) {
        critter::mpi::Request rq =
            critter::mpi::isend(nullptr, 2048, 1, 3, sim::world());
        critter::mpi::wait(rq);
      } else {
        critter::mpi::recv(nullptr, 2048, 0, 3, sim::world());
      }
    }
  });
  EXPECT_EQ(r.executed + r.skipped, 2 * 100);
}

TEST(Profiler, RealModeProducesCorrectNumerics) {
  Config cfg;
  cfg.mode = ExecMode::Real;
  cfg.selective = false;
  Store store(2, cfg);
  sim::Engine eng(2, machine(0.0));
  eng.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    // rank 0 factors an SPD matrix, broadcasts L, rank 1 checks it.
    const int n = 16;
    critter::la::Matrix a = critter::la::random_spd(n, 42);
    critter::la::Matrix l = a;
    if (ctx.rank == 0) {
      critter::lapack::potrf(critter::la::Uplo::Lower, n, l.data(), n);
    }
    critter::mpi::bcast(l.data(), n * n * 8, 0, sim::world());
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < j; ++i) l(i, j) = 0.0;
    EXPECT_LT(critter::la::cholesky_residual(a, l), 1e-12);
    (void)critter::stop();
  });
}

TEST(Profiler, UserKernelInterception) {
  Config cfg;
  cfg.policy = Policy::ConditionalExecution;
  cfg.tolerance = 0.4;
  Store store(2, cfg);
  int real_calls = 0;
  Report r = run_under(store, 2, [&] {
    for (int i = 0; i < 80; ++i)
      critter::user_kernel(/*name_hash=*/0xB10C, 64, 64, 1e6,
                           [&] { ++real_calls; });
  });
  EXPECT_GT(r.skipped, 0);
  EXPECT_EQ(real_calls, 0);  // Model mode: no real work
}

TEST(Profiler, EagerPropagatesAcrossGridAndSkipsGlobally) {
  // 4x4 grid; kernels recur on row and column collectives.  After the
  // row+column aggregation covers the grid, eager switches kernels off on
  // every rank — without per-epoch re-execution.
  Config cfg;
  cfg.policy = Policy::EagerPropagation;
  cfg.tolerance = 0.5;
  Store store(16, cfg);
  auto grid_program = [] {
    const int me = sim::world_rank();
    const int row = me / 4, col = me % 4;
    sim::Comm rowc = critter::mpi::comm_split(sim::world(), row, col);
    sim::Comm colc = critter::mpi::comm_split(sim::world(), col, row);
    for (int i = 0; i < 60; ++i) {
      critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, 16, 16,
                          16, 1.0, nullptr, 16, nullptr, 16, 0.0, nullptr, 16);
      critter::mpi::bcast(nullptr, 1024, 0, rowc);
      critter::mpi::bcast(nullptr, 1024, 0, colc);
    }
  };
  Report first = run_under(store, 16, grid_program);
  EXPECT_GT(first.skipped, 0);
  // some kernel must have gone globally steady on rank 0
  bool any_global = false;
  for (const auto& [key, ks] : store.rank(0).table.K)
    any_global = any_global || ks.global_steady;
  EXPECT_TRUE(any_global);

  // Next epoch: eager does NOT re-execute globally steady kernels.
  store.new_epoch();
  Report second = run_under(store, 16, grid_program, 0.05, /*salt=*/1);
  EXPECT_GT(second.skipped, first.skipped / 2);
  EXPECT_LT(second.wall_time, first.wall_time);
}

TEST(Profiler, ResetStatisticsForcesReexecution) {
  Config cfg;
  cfg.policy = Policy::ConditionalExecution;
  cfg.tolerance = 0.5;
  Store store(2, cfg);
  (void)run_under(store, 2, [] { toy_program(100, 16, 256); });
  EXPECT_FALSE(store.rank(0).table.K.empty());
  store.reset_statistics();
  EXPECT_TRUE(store.rank(0).table.K.empty());
  // With min_samples = 3, the first three invocations after a reset can
  // never be skipped regardless of the previous statistics.
  Report r = run_under(store, 2, [] { toy_program(3, 16, 256); });
  EXPECT_EQ(r.skipped, 0);
}

TEST(Profiler, ReportIsIdenticalOnAllRanks) {
  Config cfg;
  cfg.selective = false;
  Store store(4, cfg);
  std::vector<double> execs(4), walls(4);
  sim::Engine eng(4, machine());
  eng.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    toy_program(10, 16, 512);
    Report r = critter::stop();
    execs[ctx.rank] = r.critical.exec_time;
    walls[ctx.rank] = r.wall_time;
  });
  for (int r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(execs[r], execs[0]);
    EXPECT_DOUBLE_EQ(walls[r], walls[0]);
  }
}

TEST(Profiler, OverheadIsTrackedAndSmall) {
  // In a selective run nearly everything is skipped, so what remains of the
  // wall time is mostly overhead by construction; the meaningful claim (the
  // paper's "profiling overhead is minimal") is relative to the full
  // uninstrumented execution time of the same program.
  Config full_cfg;
  full_cfg.instrument = false;
  Store full_store(4, full_cfg);
  Report full = run_under(full_store, 4, [] { toy_program(50, 128, 2048); });

  Config cfg;
  cfg.policy = Policy::ConditionalExecution;
  Store store(4, cfg);
  Report r = run_under(store, 4, [] { toy_program(50, 128, 2048); });
  EXPECT_GT(r.overhead_time, 0.0);
  EXPECT_LT(r.overhead_time, 0.25 * full.wall_time)
      << "profiling overhead should be small vs the application";
}

TEST(Profiler, StartTwiceThrows) {
  Config cfg;
  Store store(1, cfg);
  sim::Engine eng(1, machine());
  EXPECT_THROW(eng.run([&](sim::RankCtx&) {
    critter::start(store);
    critter::start(store);
  }),
               std::runtime_error);
}

TEST(Profiler, KernelKeySeparatesChannels) {
  // The same byte count on row vs column communicators must be two kernels.
  Config cfg;
  cfg.selective = false;
  Store store(4, cfg);
  (void)run_under(store, 4, [] {
    const int me = sim::world_rank();
    sim::Comm rowc = critter::mpi::comm_split(sim::world(), me / 2, me % 2);
    sim::Comm colc = critter::mpi::comm_split(sim::world(), me % 2, me / 2);
    critter::mpi::bcast(nullptr, 512, 0, rowc);
    critter::mpi::bcast(nullptr, 512, 0, colc);
  });
  int bcast_keys = 0;
  for (const auto& [key, ks] : store.rank(0).table.K)
    if (key.cls == critter::core::KernelClass::Bcast) ++bcast_keys;
  EXPECT_EQ(bcast_keys, 2);
}
