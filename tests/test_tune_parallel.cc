// Determinism contract of the engine and the thread-pooled sweep: repeated
// runs are bit-identical, and a parallel run_study reproduces the serial
// sweep exactly (same noise salts, independent per-configuration stores,
// ordered reduction of totals).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "tune/tuner.hpp"
#include "util/thread_pool.hpp"

namespace tune = critter::tune;
using critter::Policy;

namespace {

tune::Study small_study(int nconfigs) {
  auto study = tune::capital_cholesky_study(false);
  study.configs.resize(nconfigs);
  return study;
}

bool reports_equal(const critter::Report& a, const critter::Report& b) {
  return std::memcmp(a.critical.as_array(), b.critical.as_array(),
                     sizeof(double) * critter::PathMetrics::kFields) == 0 &&
         std::memcmp(a.volavg.as_array(), b.volavg.as_array(),
                     sizeof(double) * critter::PathMetrics::kFields) == 0 &&
         a.wall_time == b.wall_time && a.executed == b.executed &&
         a.skipped == b.skipped;
}

}  // namespace

TEST(Determinism, RepeatedMeasureConfigIsBitIdentical) {
  const auto study = small_study(3);
  for (int c = 0; c < 3; ++c) {
    critter::Report r1 = tune::measure_config(study, study.configs[c], 42);
    critter::Report r2 = tune::measure_config(study, study.configs[c], 42);
    EXPECT_TRUE(reports_equal(r1, r2)) << "config " << c;
    EXPECT_GT(r1.critical.exec_time, 0.0);
  }
}

TEST(Determinism, RepeatedRunStudyIsBitIdentical) {
  const auto study = small_study(4);
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.tolerance = 0.25;
  opt.samples = 2;
  opt.reset_per_config = true;
  auto r1 = tune::run_study(study, opt);
  auto r2 = tune::run_study(study, opt);
  ASSERT_EQ(r1.per_config.size(), r2.per_config.size());
  for (std::size_t i = 0; i < r1.per_config.size(); ++i) {
    EXPECT_EQ(r1.per_config[i].true_time, r2.per_config[i].true_time);
    EXPECT_EQ(r1.per_config[i].pred_time, r2.per_config[i].pred_time);
  }
  EXPECT_EQ(r1.tuning_time, r2.tuning_time);
}

TEST(ParallelSweep, PooledMatchesSerialBitExactly) {
  const auto study = small_study(8);
  for (Policy pol : {Policy::ConditionalExecution, Policy::OnlinePropagation,
                     Policy::LocalPropagation, Policy::AprioriPropagation}) {
    tune::TuneOptions serial;
    serial.policy = pol;
    serial.tolerance = 0.25;
    serial.samples = 2;
    serial.reset_per_config = true;
    serial.workers = 1;
    tune::TuneOptions pooled = serial;
    pooled.workers = 4;

    auto rs = tune::run_study(study, serial);
    auto rp = tune::run_study(study, pooled);

    ASSERT_EQ(rs.per_config.size(), rp.per_config.size());
    for (std::size_t i = 0; i < rs.per_config.size(); ++i) {
      EXPECT_EQ(rs.per_config[i].true_time, rp.per_config[i].true_time)
          << critter::policy_name(pol) << " config " << i;
      EXPECT_EQ(rs.per_config[i].pred_time, rp.per_config[i].pred_time)
          << critter::policy_name(pol) << " config " << i;
      EXPECT_EQ(rs.per_config[i].err, rp.per_config[i].err);
      EXPECT_EQ(rs.per_config[i].executed, rp.per_config[i].executed);
      EXPECT_EQ(rs.per_config[i].skipped, rp.per_config[i].skipped);
    }
    EXPECT_EQ(rs.tuning_time, rp.tuning_time) << critter::policy_name(pol);
    EXPECT_EQ(rs.full_time, rp.full_time);
    EXPECT_EQ(rs.kernel_time, rp.kernel_time);
    EXPECT_EQ(rs.best_predicted(), rp.best_predicted());
  }
}

TEST(ParallelSweep, MoreWorkersThanConfigs) {
  const auto study = small_study(2);
  tune::TuneOptions serial;
  serial.policy = Policy::ConditionalExecution;
  serial.samples = 1;
  serial.reset_per_config = true;
  tune::TuneOptions pooled = serial;
  pooled.workers = 8;
  auto rs = tune::run_study(study, serial);
  auto rp = tune::run_study(study, pooled);
  for (std::size_t i = 0; i < rs.per_config.size(); ++i)
    EXPECT_EQ(rs.per_config[i].pred_time, rp.per_config[i].pred_time);
}

TEST(ParallelSweep, EagerFallsBackToSerial) {
  // Eager propagation persists statistics across configurations; workers>1
  // must not change its results (it runs serially by contract).
  const auto study = small_study(4);
  tune::TuneOptions a;
  a.policy = Policy::EagerPropagation;
  a.samples = 1;
  a.workers = 1;
  tune::TuneOptions b = a;
  b.workers = 4;
  auto ra = tune::run_study(study, a);
  auto rb = tune::run_study(study, b);
  for (std::size_t i = 0; i < ra.per_config.size(); ++i)
    EXPECT_EQ(ra.per_config[i].pred_time, rb.per_config[i].pred_time);
  EXPECT_EQ(ra.tuning_time, rb.tuning_time);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  critter::util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(257, [&](int i) { ++hits[i]; });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossJobs) {
  critter::util::ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(10, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 5 * 45);
}

TEST(ThreadPool, PropagatesFirstException) {
  critter::util::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](int i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // pool still usable afterwards
  std::atomic<int> n{0};
  pool.parallel_for(4, [&](int) { ++n; });
  EXPECT_EQ(n.load(), 4);
}
