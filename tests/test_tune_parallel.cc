// Determinism contract of the engine and the thread-pooled sweep: repeated
// runs are bit-identical, and a parallel run_study reproduces the serial
// sweep exactly (same noise salts, independent per-configuration stores,
// ordered reduction of totals).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <vector>

#include "tune/tuner.hpp"
#include "util/thread_pool.hpp"

namespace tune = critter::tune;
using critter::Policy;

namespace {

tune::Study small_study(int nconfigs) {
  auto study = tune::capital_cholesky_study(false);
  study.configs.resize(nconfigs);
  return study;
}

bool reports_equal(const critter::Report& a, const critter::Report& b) {
  return std::memcmp(a.critical.as_array(), b.critical.as_array(),
                     sizeof(double) * critter::PathMetrics::kFields) == 0 &&
         std::memcmp(a.volavg.as_array(), b.volavg.as_array(),
                     sizeof(double) * critter::PathMetrics::kFields) == 0 &&
         a.wall_time == b.wall_time && a.executed == b.executed &&
         a.skipped == b.skipped;
}

}  // namespace

TEST(Determinism, RepeatedMeasureConfigIsBitIdentical) {
  const auto study = small_study(3);
  for (int c = 0; c < 3; ++c) {
    critter::Report r1 = tune::measure_config(study, study.configs[c], 42);
    critter::Report r2 = tune::measure_config(study, study.configs[c], 42);
    EXPECT_TRUE(reports_equal(r1, r2)) << "config " << c;
    EXPECT_GT(r1.critical.exec_time, 0.0);
  }
}

TEST(Determinism, RepeatedRunStudyIsBitIdentical) {
  const auto study = small_study(4);
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.tolerance = 0.25;
  opt.samples = 2;
  opt.reset_per_config = true;
  auto r1 = tune::run_study(study, opt);
  auto r2 = tune::run_study(study, opt);
  ASSERT_EQ(r1.per_config.size(), r2.per_config.size());
  for (std::size_t i = 0; i < r1.per_config.size(); ++i) {
    EXPECT_EQ(r1.per_config[i].true_time, r2.per_config[i].true_time);
    EXPECT_EQ(r1.per_config[i].pred_time, r2.per_config[i].pred_time);
  }
  EXPECT_EQ(r1.tuning_time, r2.tuning_time);
}

TEST(ParallelSweep, PooledMatchesSerialBitExactly) {
  const auto study = small_study(8);
  for (Policy pol : {Policy::ConditionalExecution, Policy::OnlinePropagation,
                     Policy::LocalPropagation, Policy::AprioriPropagation}) {
    tune::TuneOptions serial;
    serial.policy = pol;
    serial.tolerance = 0.25;
    serial.samples = 2;
    serial.reset_per_config = true;
    serial.workers = 1;
    tune::TuneOptions pooled = serial;
    pooled.workers = 4;

    auto rs = tune::run_study(study, serial);
    auto rp = tune::run_study(study, pooled);

    ASSERT_EQ(rs.per_config.size(), rp.per_config.size());
    for (std::size_t i = 0; i < rs.per_config.size(); ++i) {
      EXPECT_EQ(rs.per_config[i].true_time, rp.per_config[i].true_time)
          << critter::policy_name(pol) << " config " << i;
      EXPECT_EQ(rs.per_config[i].pred_time, rp.per_config[i].pred_time)
          << critter::policy_name(pol) << " config " << i;
      EXPECT_EQ(rs.per_config[i].err, rp.per_config[i].err);
      EXPECT_EQ(rs.per_config[i].executed, rp.per_config[i].executed);
      EXPECT_EQ(rs.per_config[i].skipped, rp.per_config[i].skipped);
    }
    EXPECT_EQ(rs.tuning_time, rp.tuning_time) << critter::policy_name(pol);
    EXPECT_EQ(rs.full_time, rp.full_time);
    EXPECT_EQ(rs.kernel_time, rp.kernel_time);
    EXPECT_EQ(rs.best_predicted(), rp.best_predicted());
  }
}

TEST(ParallelSweep, MoreWorkersThanConfigs) {
  const auto study = small_study(2);
  tune::TuneOptions serial;
  serial.policy = Policy::ConditionalExecution;
  serial.samples = 1;
  serial.reset_per_config = true;
  tune::TuneOptions pooled = serial;
  pooled.workers = 8;
  auto rs = tune::run_study(study, serial);
  auto rp = tune::run_study(study, pooled);
  for (std::size_t i = 0; i < rs.per_config.size(); ++i)
    EXPECT_EQ(rs.per_config[i].pred_time, rp.per_config[i].pred_time);
}

namespace {

/// SLATE Cholesky shares kernel signatures across configurations (tile
/// sizes repeat between lookahead variants), so cross-configuration
/// statistics sharing actually changes skip decisions — the interesting
/// case for the batch-shared sweep.
tune::Study shared_study(int nconfigs) {
  auto study = tune::slate_cholesky_study(false);
  study.configs.resize(nconfigs);
  return study;
}

void expect_equal_results(const tune::TuneResult& a, const tune::TuneResult& b,
                          const char* what) {
  ASSERT_EQ(a.per_config.size(), b.per_config.size()) << what;
  for (std::size_t i = 0; i < a.per_config.size(); ++i) {
    EXPECT_EQ(a.per_config[i].true_time, b.per_config[i].true_time)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].pred_time, b.per_config[i].pred_time)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].err, b.per_config[i].err) << what;
    EXPECT_EQ(a.per_config[i].executed, b.per_config[i].executed) << what;
    EXPECT_EQ(a.per_config[i].skipped, b.per_config[i].skipped) << what;
  }
  EXPECT_EQ(a.tuning_time, b.tuning_time) << what;
  EXPECT_EQ(a.full_time, b.full_time) << what;
  EXPECT_EQ(a.kernel_time, b.kernel_time) << what;
  EXPECT_EQ(a.best_predicted(), b.best_predicted()) << what;
}

}  // namespace

TEST(BatchSharedSweep, EagerIdenticalAcrossWorkerCounts) {
  // Eager propagation shares statistics across configurations, so it runs
  // batch-synchronously: at fixed batch size the results are a pure
  // function of the seed — the worker count changes wall-clock time only.
  const auto study = shared_study(8);
  tune::TuneOptions base;
  base.policy = Policy::EagerPropagation;
  base.samples = 2;
  // batch 3 splits the equal-tile configuration pairs across barriers, so
  // merged statistics genuinely feed later skip decisions
  base.batch = 3;
  base.workers = 1;
  const auto r1 = tune::run_study(study, base);
  EXPECT_EQ(r1.mode, tune::SweepMode::BatchShared);
  for (int workers : {2, 4}) {
    tune::TuneOptions opt = base;
    opt.workers = workers;
    const auto rw = tune::run_study(study, opt);
    EXPECT_EQ(rw.mode, tune::SweepMode::BatchShared);
    EXPECT_EQ(rw.effective_workers, std::min(workers, base.batch));
    EXPECT_TRUE(rw.fallback_reason.empty()) << rw.fallback_reason;
    expect_equal_results(r1, rw, "eager");
    EXPECT_TRUE(r1.stats.same_statistics(rw.stats));
  }
}

TEST(BatchSharedSweep, ExtrapolateIdenticalAcrossWorkerCounts) {
  // The §VIII size model survives per-configuration resets, so an
  // extrapolating sweep shares statistics even with reset_per_config and
  // must take the batch-shared path — deterministically.
  const auto study = shared_study(8);
  tune::TuneOptions base;
  base.policy = Policy::OnlinePropagation;
  base.samples = 2;
  base.extrapolate = true;
  base.reset_per_config = true;
  base.batch = 4;
  base.workers = 1;
  const auto r1 = tune::run_study(study, base);
  EXPECT_EQ(r1.mode, tune::SweepMode::BatchShared);
  for (int workers : {2, 4}) {
    tune::TuneOptions opt = base;
    opt.workers = workers;
    const auto rw = tune::run_study(study, opt);
    EXPECT_EQ(rw.mode, tune::SweepMode::BatchShared);
    EXPECT_EQ(rw.effective_workers, workers);
    expect_equal_results(r1, rw, "extrapolate");
    EXPECT_TRUE(r1.stats.same_statistics(rw.stats));
  }
}

TEST(BatchSharedSweep, PersistentStatsIdenticalAcrossWorkerCounts) {
  // Capital-style sweep: statistics never reset, every configuration
  // builds on the merged statistics of all previous batches.
  const auto study = shared_study(6);
  tune::TuneOptions base;
  base.policy = Policy::OnlinePropagation;
  base.samples = 1;
  base.reset_per_config = false;
  base.batch = 3;
  base.workers = 1;
  const auto r1 = tune::run_study(study, base);
  for (int workers : {2, 4}) {
    tune::TuneOptions opt = base;
    opt.workers = workers;
    const auto rw = tune::run_study(study, opt);
    expect_equal_results(r1, rw, "persistent");
    EXPECT_TRUE(r1.stats.same_statistics(rw.stats));
  }
}

TEST(BatchSharedSweep, NoSilentSerialFallback) {
  // The PR-1 driver silently serialized exactly these sweeps; now the
  // effective mode engages parallel workers and is recorded.
  const auto study = shared_study(6);
  tune::TuneOptions opt;
  opt.policy = Policy::EagerPropagation;
  opt.samples = 1;
  opt.workers = 3;
  const auto r = tune::run_study(study, opt);
  EXPECT_EQ(r.mode, tune::SweepMode::BatchShared);
  EXPECT_EQ(r.requested_workers, 3);
  EXPECT_EQ(r.effective_workers, 3);
  EXPECT_EQ(r.batch, 3);  // defaults to the worker count
  EXPECT_TRUE(r.fallback_reason.empty()) << r.fallback_reason;
  EXPECT_EQ(r.evaluated_configs, 6);
}

TEST(BatchSharedSweep, SharingChangesResultsVsIsolation) {
  // Sanity check that the determinism assertions above are non-trivial:
  // shared statistics actually alter skip decisions on this study.
  const auto study = shared_study(8);
  tune::TuneOptions shared;
  shared.policy = Policy::OnlinePropagation;
  shared.samples = 2;
  shared.batch = 1;  // every configuration sees all earlier statistics
  tune::TuneOptions isolated = shared;
  isolated.batch = 0;
  isolated.reset_per_config = true;
  const auto rs = tune::run_study(study, shared);
  const auto ri = tune::run_study(study, isolated);
  std::int64_t shared_skips = 0, isolated_skips = 0;
  for (std::size_t i = 0; i < rs.per_config.size(); ++i) {
    shared_skips += rs.per_config[i].skipped;
    isolated_skips += ri.per_config[i].skipped;
  }
  EXPECT_GT(shared_skips, isolated_skips);
}

TEST(BatchSharedSweep, WarmStartResumeMatchesUninterrupted) {
  // Acceptance: save -> load -> resume of a sweep reproduces the
  // uninterrupted sweep's statistics and outcomes exactly.
  const auto study = shared_study(8);
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 2;
  opt.batch = 2;
  opt.workers = 2;
  const auto full = tune::run_study(study, opt);

  tune::TuneOptions first = opt;
  first.config_end = 4;
  const auto r_first = tune::run_study(study, first);

  std::stringstream buf;
  r_first.stats.save(buf, critter::core::StatSnapshot::Format::Binary);
  const auto loaded = critter::core::StatSnapshot::load(buf);

  tune::TuneOptions second = opt;
  second.config_begin = 4;
  second.warm_start = &loaded;
  const auto r_second = tune::run_study(study, second);

  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(full.per_config[i].pred_time, r_second.per_config[i].pred_time)
        << "config " << i;
    EXPECT_EQ(full.per_config[i].true_time, r_second.per_config[i].true_time);
    EXPECT_EQ(full.per_config[i].skipped, r_second.per_config[i].skipped);
  }
  EXPECT_TRUE(full.stats.same_statistics(r_second.stats));
}

TEST(BatchSharedSweep, WarmStartFromPersistentSweepIntoResetSweep) {
  // A warm-start captured from a persistent-stats sweep carries kernel
  // statistics; a reset-mode batch-shared sweep must shed them (only
  // channels and the size model survive resets) instead of crashing in the
  // workers' delta extraction.
  const auto study = shared_study(6);
  tune::TuneOptions persist;
  persist.policy = Policy::OnlinePropagation;
  persist.samples = 2;
  const auto r0 = tune::run_study(study, persist);
  ASSERT_FALSE(r0.stats.empty());

  tune::TuneOptions resumed;
  resumed.policy = Policy::OnlinePropagation;
  resumed.samples = 1;
  resumed.extrapolate = true;
  resumed.reset_per_config = true;
  resumed.workers = 2;
  resumed.batch = 2;
  resumed.warm_start = &r0.stats;
  const auto r = tune::run_study(study, resumed);
  EXPECT_EQ(r.mode, tune::SweepMode::BatchShared);
  EXPECT_EQ(r.evaluated_configs, 6);
  for (const critter::core::KernelTable& t : r.stats.ranks)
    EXPECT_TRUE(t.K.empty());
}

TEST(SearchStrategy, RandomSubsetIsDeterministicAndBounded) {
  const auto study = small_study(8);
  tune::TuneOptions opt;
  opt.policy = Policy::ConditionalExecution;
  opt.samples = 1;
  opt.reset_per_config = true;
  opt.strategy = "random-subset";
  opt.strategy_options["count"] = "3";
  const auto r1 = tune::run_study(study, opt);
  const auto r2 = tune::run_study(study, opt);
  EXPECT_EQ(r1.evaluated_configs, 3);
  int evaluated = 0;
  for (std::size_t i = 0; i < r1.per_config.size(); ++i) {
    EXPECT_EQ(r1.per_config[i].evaluated, r2.per_config[i].evaluated);
    if (r1.per_config[i].evaluated) {
      ++evaluated;
      EXPECT_EQ(r1.per_config[i].pred_time, r2.per_config[i].pred_time);
    }
  }
  EXPECT_EQ(evaluated, 3);
  EXPECT_TRUE(r1.per_config[r1.best_predicted()].evaluated);
}

TEST(SearchStrategy, CiEarlyDiscardPrunesAndStaysDeterministic) {
  const auto study = shared_study(8);
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 4;
  opt.batch = 2;
  opt.strategy = "ci-discard";
  opt.strategy_options["margin"] = "0.0";
  opt.workers = 1;
  const auto r1 = tune::run_study(study, opt);
  tune::TuneOptions opt4 = opt;
  opt4.workers = 4;  // capped by batch size
  const auto r4 = tune::run_study(study, opt4);
  for (std::size_t i = 0; i < r1.per_config.size(); ++i) {
    EXPECT_EQ(r1.per_config[i].pred_time, r4.per_config[i].pred_time);
    EXPECT_EQ(r1.per_config[i].pruned, r4.per_config[i].pruned);
    EXPECT_EQ(r1.per_config[i].samples_used, r4.per_config[i].samples_used);
  }
  // Every configuration still gets at least one sample and a prediction.
  for (const auto& c : r1.per_config) {
    EXPECT_TRUE(c.evaluated);
    EXPECT_GE(c.samples_used, 1);
    EXPECT_GT(c.pred_time, 0.0);
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  critter::util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(257, [&](int i) { ++hits[i]; });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossJobs) {
  critter::util::ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(10, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 5 * 45);
}

TEST(ThreadPool, PropagatesFirstException) {
  critter::util::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](int i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // pool still usable afterwards
  std::atomic<int> n{0};
  pool.parallel_for(4, [&](int) { ++n; });
  EXPECT_EQ(n.load(), 4);
}

// ---------------------------------------------------------------------------
// Golden bit-identity: sweeps must reproduce the checked-in fixtures
// ---------------------------------------------------------------------------

#include <fstream>

#include "golden_digest.hpp"

namespace {

/// The fixture as generated by tools/gen_golden on the pre-fast-path build.
std::string read_fixture(const char* which) {
  const std::string path =
      std::string(CRITTER_GOLDEN_DIR) + "/sweep_" + which + ".digest";
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << "missing golden fixture " << path
                            << " (regenerate with tools/gen_golden)";
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

/// The digest prints every double as an exact hex float, so equality here
/// is bit-identity of every sweep outcome and every statistic the sweep
/// accumulated — the determinism contract the hot-path work must not bend.
/// On mismatch, report the first differing line, not half a megabyte.
void expect_matches_fixture(const char* which) {
  const std::string expected = read_fixture(which);
  ASSERT_FALSE(expected.empty());
  const std::string actual = critter::testing::golden_digest(which);
  if (actual == expected) return;
  std::istringstream as(actual), es(expected);
  std::string al, el;
  for (int line = 1; ; ++line) {
    const bool a_ok = static_cast<bool>(std::getline(as, al));
    const bool e_ok = static_cast<bool>(std::getline(es, el));
    if (!a_ok || !e_ok || al != el) {
      FAIL() << "golden digest '" << which << "' diverges at line " << line
             << "\n  expected: " << (e_ok ? el : "<eof>")
             << "\n  actual:   " << (a_ok ? al : "<eof>");
    }
  }
}

}  // namespace

TEST(GoldenSweep, OnlinePropagationMatchesFixture) {
  expect_matches_fixture("online");
}

TEST(GoldenSweep, EagerPropagationMatchesFixture) {
  expect_matches_fixture("eager");
}

TEST(GoldenSweep, SharedBatchParallelMatchesFixture) {
  expect_matches_fixture("batch");
}
