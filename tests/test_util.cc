#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace cu = critter::util;

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(cu::mix64(42), cu::mix64(42));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(cu::mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, U01InRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = cu::u01_from_bits(cu::mix64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, LognormalFactorHasUnitMean) {
  const double sigma = 0.3;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    sum += cu::lognormal_factor(sigma, 123 + i, 456 + 31 * i);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, LognormalZeroSigmaIsExactlyOne) {
  EXPECT_EQ(cu::lognormal_factor(0.0, 1, 2), 1.0);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  double s = 0, s2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = cu::normal_from_keys(7 * i + 1, 13 * i + 5);
    s += z;
    s2 += z * z;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
}

TEST(Table, CsvRoundTrip) {
  cu::Table t("demo");
  t.header({"a", "b"});
  t.row({"1", "2"});
  t.row({"x", cu::Table::num(1.5, 1)});
  EXPECT_EQ(t.csv(), "a,b\n1,2\nx,1.5\n");
}

TEST(Table, RowWidthMismatchThrows) {
  cu::Table t("demo");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::runtime_error);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--alpha=2.5", "--verbose", "--n=42"};
  cu::Options o(4, const_cast<char**>(argv));
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_FALSE(o.has("quiet"));
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(o.get_int("n", 0), 42);
  EXPECT_EQ(o.get_int("missing", 7), 7);
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(cu::Options(2, const_cast<char**>(argv)), std::runtime_error);
}
