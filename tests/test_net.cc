// Network subsystem: the frame codec (fuzzed the same way as the binary
// snapshot format in test_stat_store.cc — every truncation point, every
// flipped byte), the blob Store implementations (directory, in-memory, and
// the framed client/server pair, which must agree on semantics and error
// wording), and the socket layer's deadline behavior (a dead or silent
// peer throws, never hangs).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fsio.hpp"
#include "net/blob.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace core = critter::core;
namespace net = critter::net;

namespace {

/// Deterministic payload with NULs, high bytes, and enough length that a
/// byte flip in the frame's length field can both shrink and grow it.
std::string fuzz_payload(std::size_t n = 200) {
  std::string p(n, '\0');
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<char>((i * 37 + 11) & 0xFF);
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(Frame, RoundTripEveryVerbAndPayloadShape) {
  const std::vector<std::uint32_t> verbs = {
      net::kHello,       net::kOk,           net::kErr,
      net::kBlobPut,     net::kBlobGet,      net::kBlobExists,
      net::kBlobAppend,  net::kBlobRemove,   net::kBlobPublish,
      net::kBlobPublished, net::kBlobReadPublished,
      net::kTuneOpen,    net::kTuneAsk,      net::kTuneTell,
      net::kTuneExport,  net::kTuneImport,   net::kTuneStatus,
      net::kTuneShutdown};
  for (std::uint32_t verb : verbs) {
    EXPECT_TRUE(net::known_verb(verb));
    for (const std::string& payload :
         {std::string(), std::string("x"), fuzz_payload(100 * 1000)}) {
      const std::string bytes = net::encode_frame(verb, payload);
      ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes + payload.size());
      net::Frame f;
      const std::size_t consumed = net::decode_frame(bytes, f);
      EXPECT_EQ(consumed, bytes.size());
      EXPECT_EQ(f.verb, verb);
      EXPECT_EQ(f.payload, payload);
    }
  }
  EXPECT_FALSE(net::known_verb(0));
  EXPECT_FALSE(net::known_verb(0x7F));
}

TEST(Frame, ConcatenatedFramesDecodeInSequence) {
  // decode_frame reports its consumption so a stream of frames parses
  // without any out-of-band delimiters.
  const std::string a = net::encode_frame(net::kHello, "first");
  const std::string b = net::encode_frame(net::kOk, fuzz_payload());
  const std::string stream = a + b;
  net::Frame f;
  const std::size_t n1 = net::decode_frame(stream, f);
  EXPECT_EQ(n1, a.size());
  EXPECT_EQ(f.payload, "first");
  const std::size_t n2 = net::decode_frame(stream.substr(n1), f);
  EXPECT_EQ(n2, b.size());
  EXPECT_EQ(f.verb, net::kOk);
}

TEST(Frame, EveryTruncationIsRejected) {
  // A short read anywhere — mid-header or mid-payload — must surface as a
  // clear net error, never a silent partial frame (the stream analogue of
  // the snapshot loader's truncation sweep).
  const std::string bytes = net::encode_frame(net::kTuneTell, fuzz_payload());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    net::Frame f;
    try {
      net::decode_frame(bytes.substr(0, len), f);
      FAIL() << "truncation at byte " << len << " decoded successfully";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("net:"), std::string::npos)
          << "at byte " << len << ": " << e.what();
    }
  }
}

TEST(Frame, EveryByteCorruptionIsRejected) {
  // Flip every byte in turn (XOR 0xFF).  Magic flips fail the stream
  // check, verb flips fall off the whitelist, length flips either overrun
  // the buffer/bound or shrink the payload out from under its checksum,
  // and checksum/payload flips fail FNV verification.
  const std::string bytes = net::encode_frame(net::kTuneTell, fuzz_payload());
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string bad = bytes;
    bad[at] = static_cast<char>(bad[at] ^ 0xFF);
    net::Frame f;
    EXPECT_THROW(net::decode_frame(bad, f), std::runtime_error)
        << "flipped byte " << at;
  }
}

TEST(Frame, UnknownVerbIsRejectedBeforeThePayload) {
  // encode_frame is a pure transform (servers echo caller verbs), so the
  // whitelist lives in decode: a verb this build does not know desyncs
  // loudly even when length and checksum are self-consistent.
  const std::string bytes = net::encode_frame(0x7F, "payload");
  net::Frame f;
  try {
    net::decode_frame(bytes, f);
    FAIL() << "unknown verb decoded successfully";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown frame verb"),
              std::string::npos)
        << e.what();
  }
}

TEST(Frame, DeclaredLengthAboveTheBoundIsRejectedWithoutWaiting) {
  // A tighter caller bound rejects a bigger (valid) frame up front...
  const std::string bytes = net::encode_frame(net::kOk, fuzz_payload(64));
  net::Frame f;
  try {
    net::decode_frame(bytes, f, /*max_payload=*/16);
    FAIL() << "oversized frame decoded successfully";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos)
        << e.what();
  }
  // ...and a forged header declaring a huge payload fails the header
  // check, not an allocation or a wait for bytes that will never come.
  std::string forged = net::encode_frame(net::kOk, "");
  const std::uint64_t huge = net::kMaxFramePayload + 1;
  std::memcpy(forged.data() + 8, &huge, 8);
  EXPECT_THROW(net::decode_frame(forged, f), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Socket layer
// ---------------------------------------------------------------------------

TEST(Socket, ParseAddress) {
  const net::Address a = net::parse_address("127.0.0.1:8080");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 8080);
  EXPECT_THROW(net::parse_address("nocolon"), std::runtime_error);
  EXPECT_THROW(net::parse_address(":80"), std::runtime_error);
  EXPECT_THROW(net::parse_address("host:"), std::runtime_error);
  EXPECT_THROW(net::parse_address("host:notaport"), std::runtime_error);
  EXPECT_THROW(net::parse_address("host:70000"), std::runtime_error);
}

TEST(Socket, FramesOverLoopbackAndOrderlyCloseAtABoundary) {
  net::Listener listener(0);
  ASSERT_GT(listener.port(), 0);
  std::thread server([&listener] {
    net::Connection c = listener.accept(5.0);
    ASSERT_TRUE(c.valid());
    net::Frame rq;
    while (net::recv_frame_opt(c, rq, 5.0)) {
      std::string reversed(rq.payload.rbegin(), rq.payload.rend());
      net::send_frame(c, net::kOk, reversed, 5.0);
    }
    // recv_frame_opt returned false: the client closed at a frame
    // boundary — the orderly end-of-session signal, not an error.
  });
  net::Connection conn = net::Connection::connect("127.0.0.1",
                                                  listener.port(), 5.0);
  // Nothing sent yet: readable() times out instead of blocking.
  EXPECT_FALSE(conn.readable(0.05));
  for (const std::string& msg : {std::string("abc"), fuzz_payload()}) {
    net::send_frame(conn, net::kHello, msg, 5.0);
    const net::Frame rp = net::recv_frame(conn, 5.0);
    EXPECT_EQ(rp.verb, net::kOk);
    EXPECT_EQ(rp.payload, std::string(msg.rbegin(), msg.rend()));
  }
  conn.close();
  server.join();
}

TEST(Socket, SilentPeerThrowsAtTheDeadlineInsteadOfHanging) {
  net::Listener listener(0);
  std::thread server([&listener] {
    net::Connection c = listener.accept(5.0);
    // Say nothing; just hold the connection until the peer gives up.
    net::Frame f;
    try {
      net::recv_frame(c, 5.0, net::kMaxFramePayload);
    } catch (const std::exception&) {
    }
  });
  net::Connection conn = net::Connection::connect("127.0.0.1",
                                                  listener.port(), 5.0);
  const double t0 = core::monotonic_s();
  EXPECT_THROW(net::recv_frame(conn, 0.2), std::runtime_error);
  EXPECT_LT(core::monotonic_s() - t0, 3.0);
  conn.close();
  server.join();
}

// ---------------------------------------------------------------------------
// Blob stores
// ---------------------------------------------------------------------------

namespace {

/// The Store contract, checked identically against every implementation:
/// plain blobs, the two-step publish, and the failure wording.
void exercise_store(net::Store& store, const std::string& what) {
  EXPECT_FALSE(store.exists("run.txt")) << what;
  EXPECT_THROW(store.get("run.txt"), std::runtime_error) << what;
  store.put("run.txt", "hello");
  EXPECT_TRUE(store.exists("run.txt")) << what;
  EXPECT_EQ(store.get("run.txt"), "hello") << what;
  store.put("run.txt", "rewritten");
  EXPECT_EQ(store.get("run.txt"), "rewritten") << what;

  const std::string payload = fuzz_payload();
  EXPECT_FALSE(store.published("exchange/s0_r1.snap")) << what;
  EXPECT_THROW(store.read_published("exchange/s0_r1.snap"),
               std::runtime_error)
      << what;
  store.publish("exchange/s0_r1.snap", payload);
  EXPECT_TRUE(store.published("exchange/s0_r1.snap")) << what;
  EXPECT_EQ(store.read_published("exchange/s0_r1.snap"), payload) << what;
  // An empty publish is legal (isolated shards exchange empty deltas).
  store.publish("exchange/s1_r1.snap", "");
  EXPECT_EQ(store.read_published("exchange/s1_r1.snap"), "") << what;

  // remove retires published artifacts (manifest and payload) and plain
  // blobs alike; removing an absent key is the idempotent no-op the
  // exchange-mailbox GC leans on.
  store.remove("exchange/s0_r1.snap");
  EXPECT_FALSE(store.published("exchange/s0_r1.snap")) << what;
  EXPECT_FALSE(store.exists("exchange/s0_r1.snap")) << what;
  EXPECT_THROW(store.read_published("exchange/s0_r1.snap"),
               std::runtime_error)
      << what;
  store.remove("exchange/s0_r1.snap");  // second remove: no-op, no throw
  store.remove("never/was/there");
  store.remove("run.txt");
  EXPECT_FALSE(store.exists("run.txt")) << what;
  // The key is reusable after removal — GC'd rounds do not poison names.
  store.publish("exchange/s0_r1.snap", "again");
  EXPECT_EQ(store.read_published("exchange/s0_r1.snap"), "again") << what;
  store.put("run.txt", "rewritten");
}

}  // namespace

TEST(Blob, DirMemAndSocketStoresShareOneContract) {
  const std::string root = core::make_temp_dir("critter_blob_test");
  net::DirStore dir(root);
  exercise_store(dir, "DirStore");

  net::MemStore mem;
  exercise_store(mem, "MemStore");

  net::MemStore backing;
  net::BlobServer server(backing, 0);
  net::BlobClient client("127.0.0.1", server.port(), 5.0, 5.0);
  exercise_store(client, "BlobClient");
  // The client and its backing store see one namespace.
  EXPECT_EQ(backing.get("run.txt"), "rewritten");
  backing.publish("from_server.snap", "xyz");
  EXPECT_EQ(client.read_published("from_server.snap"), "xyz");
  server.stop();
  core::remove_dir_tree(root);
}

TEST(Blob, WireCountersMeterCompletedTransfers) {
  // The process-wide wire accounting (DESIGN.md §13): both endpoints of
  // this loopback conversation live in this process, so every sent frame
  // is also received here and the counters must mirror exactly.
  net::reset_wire_counters();
  net::MemStore backing;
  net::BlobServer server(backing, 0);
  {
    net::BlobClient client("127.0.0.1", server.port(), 5.0, 5.0);
    client.put("metered", std::string(1000, 'x'));
    EXPECT_EQ(client.get("metered"), std::string(1000, 'x'));
  }
  server.stop();
  const net::WireCounters wc = net::wire_counters();
  // Handshake + put + get = three request/reply pairs minimum.
  EXPECT_GE(wc.frames_sent, 6u);
  EXPECT_EQ(wc.frames_sent, wc.frames_received);
  EXPECT_EQ(wc.bytes_sent, wc.bytes_received);
  EXPECT_GT(wc.bytes_sent, 2000u);  // the kilobyte payload went both ways
  net::reset_wire_counters();
  EXPECT_EQ(net::wire_counters().bytes_sent, 0u);
  EXPECT_EQ(net::wire_counters().frames_received, 0u);
}

TEST(Blob, CorruptedPublishedPayloadIsAStaleManifest) {
  // Overwrite a published payload behind the manifest's back: the reader
  // must report a stale manifest (size/FNV mismatch), exactly like the
  // run-directory protocol — never return the corrupted bytes.
  const std::string root = core::make_temp_dir("critter_blob_stale");
  net::DirStore dir(root);
  dir.publish("delta.snap", fuzz_payload());
  core::write_file(root + "/delta.snap", "corrupted body");
  try {
    dir.read_published("delta.snap");
    FAIL() << "stale payload read successfully";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stale manifest"),
              std::string::npos)
        << e.what();
  }
  core::remove_dir_tree(root);
}

TEST(Blob, RemoteErrorsCarryTheStoreWordingAcrossTheWire) {
  // A remote failure must read like the local one — the dist layer keys
  // retry/degrade decisions off these messages.
  net::MemStore backing;
  net::BlobServer server(backing, 0);
  net::BlobClient client("127.0.0.1", server.port(), 5.0, 5.0);
  try {
    client.get("absent.txt");
    FAIL() << "missing blob read successfully";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open absent.txt"),
              std::string::npos)
        << e.what();
  }
  backing.publish("torn.snap", "payload");
  backing.put("torn.snap", "other bytes");  // invalidates the manifest
  try {
    client.read_published("torn.snap");
    FAIL() << "stale remote publish read successfully";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stale manifest"),
              std::string::npos)
        << e.what();
  }
  server.stop();
}

TEST(Blob, WrongServiceHandshakeIsRefused) {
  // A tuner (or any non-blob) stream pointed at a blob server must be
  // turned away at hello, before any verb is interpreted.
  net::MemStore backing;
  net::BlobServer server(backing, 0);
  net::Connection conn =
      net::Connection::connect("127.0.0.1", server.port(), 5.0);
  net::send_frame(conn, net::kHello, "critter-tune/1", 5.0);
  const net::Frame rp = net::recv_frame(conn, 5.0);
  EXPECT_EQ(rp.verb, net::kErr);
  EXPECT_NE(rp.payload.find("bad handshake"), std::string::npos);
  conn.close();
  server.stop();
}
