// SLATE-style tile potrf / geqrf: numerics at small scale, lookahead and
// kernel-profile behaviour in model mode.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/profiler.hpp"
#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "slate/slate.hpp"
#include "sim/api.hpp"

namespace sim = critter::sim;
namespace sl = critter::slate;
namespace la = critter::la;
using critter::Config;
using critter::ExecMode;
using critter::Report;
using critter::Store;

namespace {

template <typename Body>
Report run_spmd(int p, bool real, Body body) {
  Config cfg;
  cfg.mode = real ? ExecMode::Real : ExecMode::Model;
  cfg.selective = false;
  Store store(p, cfg);
  sim::Engine eng(p, sim::Machine::knl_like());
  Report rep;
  eng.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    body(ctx);
    Report r = critter::stop();
    if (ctx.rank == 0) rep = r;
  });
  return rep;
}

}  // namespace

class SlatePotrfReal
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(SlatePotrfReal, FactorsCorrectly) {
  auto [pr, pc, n, nb, lookahead] = GetParam();
  double residual = 1e300;
  run_spmd(pr * pc, true, [&](sim::RankCtx& ctx) {
    sl::Grid2D g = sl::Grid2D::build(pr, pc);
    sl::TileMatrix a(n, n, nb, g, true);
    la::Matrix full = la::random_spd(n, 7);
    a.scatter_from_full(full);
    sl::potrf(a, sl::PotrfConfig{lookahead});
    la::Matrix l = a.gather_full();
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < j; ++i) l(i, j) = 0.0;
    if (ctx.rank == 0) residual = la::cholesky_residual(full, l);
  });
  EXPECT_LT(residual, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SlatePotrfReal,
    ::testing::Values(std::tuple{1, 1, 24, 8, 0},   // single rank
                      std::tuple{2, 2, 32, 8, 0},   // 4 ranks, no lookahead
                      std::tuple{2, 2, 32, 8, 1},   // with lookahead
                      std::tuple{2, 4, 48, 8, 1},   // rectangular grid
                      std::tuple{4, 2, 40, 8, 0},   // ragged edge (40/8=5)
                      std::tuple{2, 2, 36, 8, 1},   // ragged last tile
                      std::tuple{4, 4, 64, 8, 1}));

class SlateGeqrfReal
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, int>> {};

TEST_P(SlateGeqrfReal, QtAColumnsMatchR) {
  // Factor the augmented matrix [A | A]: the right half becomes Q^T A,
  // which must equal the R of the left half — a forward-only correctness
  // check of the full distributed transformation chain.
  auto [pr, pc, m, n, nb, w] = GetParam();
  double err = 1e300;
  double norm_ratio = 0.0;
  run_spmd(pr * pc, true, [&](sim::RankCtx& ctx) {
    sl::Grid2D g = sl::Grid2D::build(pr, pc);
    sl::TileMatrix a(m, 2 * n, nb, g, true);
    la::Matrix base = la::random_matrix(m, n, 21);
    la::Matrix aug(m, 2 * n);
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < m; ++i) {
        aug(i, j) = base(i, j);
        aug(i, n + j) = base(i, j);
      }
    a.scatter_from_full(aug);
    sl::geqrf(a, sl::GeqrfConfig{w, 0});
    la::Matrix out = a.gather_full();
    if (ctx.rank == 0) {
      // left-half R vs right-half Q^T A (both m x n, compare upper part
      // and check the lower part of the right half is annihilated only
      // for rows < n; rows >= n of Q^T A need not vanish — but for the
      // left half they are V storage, so compare the upper triangles).
      double e = 0.0;
      for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j; ++i) {
          const double d = out(i, j) - out(i, n + j);
          e += d * d;
        }
      err = std::sqrt(e) / (1.0 + la::frob_norm(m, n, base.data(), m));
      // Frobenius norm of R equals that of A (orthogonal invariance).
      double rn = 0.0;
      for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j; ++i) rn += out(i, j) * out(i, j);
      norm_ratio = std::sqrt(rn) / la::frob_norm(m, n, base.data(), m);
    }
  });
  EXPECT_LT(err, 1e-10);
  EXPECT_NEAR(norm_ratio, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SlateGeqrfReal,
    ::testing::Values(std::tuple{1, 1, 24, 8, 8, 4},   // single rank
                      std::tuple{2, 2, 32, 16, 8, 4},  // 4 ranks
                      std::tuple{2, 2, 32, 16, 8, 8},  // w == nb
                      std::tuple{4, 2, 48, 16, 8, 2},  // tall grid, small w
                      std::tuple{2, 4, 40, 16, 8, 4},  // wide grid, ragged m
                      std::tuple{2, 2, 64, 24, 8, 4}));

TEST(SlateModel, LookaheadShortensCriticalPath) {
  auto wall = [&](int d) {
    Report r = run_spmd(16, false, [&](sim::RankCtx&) {
      sl::Grid2D g = sl::Grid2D::build(4, 4);
      sl::TileMatrix a(4096, 4096, 256, g, false);
      sl::potrf(a, sl::PotrfConfig{d});
    });
    return r.wall_time;
  };
  const double d0 = wall(0);
  const double d1 = wall(1);
  EXPECT_LT(d1, d0) << "lookahead should shorten the schedule";
}

TEST(SlateModel, SmallerTilesMoreSynchronization) {
  auto sync = [&](int nb) {
    Report r = run_spmd(4, false, [&](sim::RankCtx&) {
      sl::Grid2D g = sl::Grid2D::build(2, 2);
      sl::TileMatrix a(2048, 2048, nb, g, false);
      sl::potrf(a, sl::PotrfConfig{0});
    });
    return r.critical.sync_cost;
  };
  EXPECT_GT(sync(128), sync(512));
}

TEST(SlateModel, PotrfKernelProfile) {
  Config cfg;
  cfg.mode = ExecMode::Model;
  cfg.selective = false;
  Store store(4, cfg);
  sim::Engine eng(4, sim::Machine::knl_like());
  eng.run([&](sim::RankCtx&) {
    critter::start(store);
    sl::Grid2D g = sl::Grid2D::build(2, 2);
    sl::TileMatrix a(1024, 1024, 128, g, false);
    sl::potrf(a, sl::PotrfConfig{1});
    (void)critter::stop();
  });
  using critter::core::KernelClass;
  bool has[32] = {};
  for (const auto& [key, ks] : store.rank(0).table.K) has[static_cast<int>(key.cls)] = true;
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Potrf)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Trsm)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Syrk)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Gemm)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Isend)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Recv)]);
}

TEST(SlateModel, GeqrfKernelProfile) {
  Config cfg;
  cfg.mode = ExecMode::Model;
  cfg.selective = false;
  Store store(4, cfg);
  sim::Engine eng(4, sim::Machine::knl_like());
  eng.run([&](sim::RankCtx&) {
    critter::start(store);
    sl::Grid2D g = sl::Grid2D::build(2, 2);
    sl::TileMatrix a(1024, 512, 128, g, false);
    sl::geqrf(a, sl::GeqrfConfig{32, 0});
    (void)critter::stop();
  });
  using critter::core::KernelClass;
  bool has[32] = {};
  for (const auto& [key, ks] : store.rank(0).table.K) has[static_cast<int>(key.cls)] = true;
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Geqrf)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Ormqr)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Tpqrt)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Tpmqrt)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Isend)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Recv)]);
}
