// The generic tuning API: ParamSpace/Configuration, the workload registry,
// the strategy registry, the ask/tell Tuner session (bit-identical to
// run_study across all sweep modes and studies), merge_shards, and
// registry-defined workloads round-tripping through save -> load -> resume.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "sim/api.hpp"
#include "tune/evaluator.hpp"
#include "tune/strategy.hpp"
#include "tune/tuner.hpp"

namespace core = critter::core;
namespace tune = critter::tune;
using critter::Policy;

// ---------------------------------------------------------------------------
// ParamSpace / Configuration
// ---------------------------------------------------------------------------

TEST(ParamSpace, CartesianEnumerationOrderAndLabels) {
  const auto sp = tune::ParamSpace::cartesian({{"a", {1, 2, 3}}, {"b", {10, 20}}});
  EXPECT_EQ(sp.size(), 6);
  ASSERT_EQ(sp.names().size(), 2u);
  // The first dimension varies fastest: index 4 -> a = values[4 % 3],
  // b = values[4 / 3].
  const tune::Configuration c = sp.at(4);
  EXPECT_EQ(c.index, 4);
  EXPECT_EQ(c.at("a"), 2);
  EXPECT_EQ(c.at("b"), 20);
  EXPECT_EQ(c.label(), "a=2,b=20");
  EXPECT_TRUE(c.has("a"));
  EXPECT_FALSE(c.has("z"));
  EXPECT_EQ(c.get("z", -7), -7);
  EXPECT_THROW(c.at("z"), std::runtime_error);
  EXPECT_THROW(sp.at(6), std::runtime_error);
  EXPECT_THROW(tune::ParamSpace::cartesian({{"x", {}}}), std::runtime_error);
  EXPECT_THROW(tune::ParamSpace::cartesian({{"x", {1}}, {"x", {2}}}),
               std::runtime_error);
}

TEST(ParamSpace, EnumeratedPointsRoundTrip) {
  const auto sp =
      tune::ParamSpace::enumerated({"x", "y"}, {{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(sp.size(), 3);
  const std::vector<tune::Configuration> all = sp.enumerate();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1].index, 1);
  EXPECT_EQ(all[2].at("y"), 6);
  EXPECT_THROW(tune::ParamSpace::enumerated({"x"}, {{1, 2}}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------------

TEST(WorkloadRegistry, PaperStudiesAreRegistered) {
  const std::vector<std::string> names =
      tune::WorkloadRegistry::instance().names();
  for (const char* expected :
       {"candmc-qr", "capital-cholesky", "slate-cholesky", "slate-qr"}) {
    bool found = false;
    for (const std::string& n : names) found = found || n == expected;
    EXPECT_TRUE(found) << expected;
  }
  EXPECT_THROW(tune::workload_study("no-such-workload", false),
               std::runtime_error);
  // The legacy facades resolve through the registry with runners bound.
  const tune::Study s = tune::workload_study("slate-qr", false);
  EXPECT_EQ(s.configs.size(), 63u);
  EXPECT_EQ(s.workload, "slate-qr");
  EXPECT_TRUE(static_cast<bool>(s.runner));
}

// ---------------------------------------------------------------------------
// Strategy registry
// ---------------------------------------------------------------------------

TEST(StrategyRegistry, ListsBuiltinsAndRejectsUnknown) {
  const std::vector<std::string> names = tune::strategy_names();
  for (const char* expected :
       {"ci-discard", "exhaustive", "halving", "random-subset",
        "surrogate-ei", "copula-transfer"}) {
    bool found = false;
    for (const std::string& n : names) found = found || n == expected;
    EXPECT_TRUE(found) << expected;
  }
  EXPECT_FALSE(tune::strategy_summary("halving").empty());

  auto study = tune::capital_cholesky_study(false);
  study.configs.resize(2);
  tune::TuneOptions opt;
  opt.samples = 1;
  opt.strategy = "no-such-strategy";
  EXPECT_THROW(tune::run_study(study, opt), std::runtime_error);
  opt.strategy = "exhaustive";
  opt.strategy_options["bogus"] = "1";  // typos fail fast
  EXPECT_THROW(tune::run_study(study, opt), std::runtime_error);
}

TEST(StrategyRegistry, ParseSpec) {
  const auto [name, opts] =
      tune::parse_strategy_spec("halving,eta=3,min-samples=2");
  EXPECT_EQ(name, "halving");
  EXPECT_EQ(opts.at("eta"), "3");
  EXPECT_EQ(opts.at("min-samples"), "2");
  const auto [bare, none] = tune::parse_strategy_spec("exhaustive");
  EXPECT_EQ(bare, "exhaustive");
  EXPECT_TRUE(none.empty());
  EXPECT_THROW(tune::parse_strategy_spec("x,notkeyval"), std::runtime_error);
}

TEST(StrategyRegistry, DuplicateOptionKeysAreRejected) {
  // The option map would silently keep one of the two values — the §7
  // fail-fast contract requires the spec to be rejected instead.
  try {
    tune::parse_strategy_spec("halving,eta=3,eta=4");
    FAIL() << "duplicate key accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'eta'"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("more than once"),
              std::string::npos)
        << e.what();
  }
  // Distinct keys with the same value are of course fine.
  const auto [name, opts] =
      tune::parse_strategy_spec("halving,eta=3,min-samples=3");
  EXPECT_EQ(opts.size(), 2u);
  (void)name;
}

TEST(StrategyRegistry, AllUnknownOptionKeysReportedInOneError) {
  // A spec with several typos surfaces every one of them at once — not
  // one failure per run.
  tune::StrategyOptions opts;
  opts["bogus-a"] = "1";
  opts["bogus-b"] = "2";
  opts["margin"] = "0.1";  // the one valid key
  try {
    tune::check_strategy_options("ci-discard", opts, {"margin"});
    FAIL() << "unknown keys accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'bogus-a'"), std::string::npos) << what;
    EXPECT_NE(what.find("'bogus-b'"), std::string::npos) << what;
    EXPECT_EQ(what.find("'margin'"), std::string::npos) << what;
  }
  // The same behavior through a real factory.
  auto study = tune::capital_cholesky_study(false);
  study.configs.resize(2);
  tune::TuneOptions opt;
  opt.samples = 1;
  opt.strategy = "ci-discard";
  opt.strategy_options["oops1"] = "1";
  opt.strategy_options["oops2"] = "2";
  try {
    tune::run_study(study, opt);
    FAIL() << "unknown keys accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'oops1'"), std::string::npos) << what;
    EXPECT_NE(what.find("'oops2'"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Ask/tell session == run_study, across studies and sweep modes
// ---------------------------------------------------------------------------

namespace {

tune::TuneResult run_via_session(const tune::Study& study,
                                 const tune::TuneOptions& opt) {
  tune::Tuner session(study, opt);
  while (!session.done()) {
    const std::vector<int> batch = session.ask();
    if (batch.empty()) break;
    session.tell(session.evaluate(batch));
  }
  return session.result();
}

void expect_equal_results(const tune::TuneResult& a, const tune::TuneResult& b,
                          const char* what) {
  ASSERT_EQ(a.per_config.size(), b.per_config.size()) << what;
  for (std::size_t i = 0; i < a.per_config.size(); ++i) {
    EXPECT_EQ(a.per_config[i].evaluated, b.per_config[i].evaluated)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].true_time, b.per_config[i].true_time)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].pred_time, b.per_config[i].pred_time)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].err, b.per_config[i].err) << what;
    EXPECT_EQ(a.per_config[i].executed, b.per_config[i].executed) << what;
    EXPECT_EQ(a.per_config[i].skipped, b.per_config[i].skipped) << what;
    EXPECT_EQ(a.per_config[i].samples_used, b.per_config[i].samples_used)
        << what;
  }
  EXPECT_EQ(a.tuning_time, b.tuning_time) << what;
  EXPECT_EQ(a.full_time, b.full_time) << what;
  EXPECT_EQ(a.kernel_time, b.kernel_time) << what;
  EXPECT_EQ(a.evaluated_configs, b.evaluated_configs) << what;
  EXPECT_EQ(a.best_predicted(), b.best_predicted()) << what;
}

tune::Study subset(tune::Study study, int nconfigs) {
  if (nconfigs < static_cast<int>(study.configs.size()))
    study.configs.resize(nconfigs);
  return study;
}

}  // namespace

TEST(AskTell, SessionReproducesRunStudyAcrossStudiesAndModes) {
  struct ModeCase {
    const char* what;
    void (*apply)(tune::TuneOptions&);
  };
  const ModeCase modes[] = {
      {"serial", [](tune::TuneOptions&) {}},
      {"isolated",
       [](tune::TuneOptions& o) {
         o.reset_per_config = true;
         o.workers = 4;
       }},
      {"batch-shared",
       [](tune::TuneOptions& o) {
         o.workers = 2;
         o.batch = 2;
       }},
  };
  const tune::Study studies[] = {
      subset(tune::capital_cholesky_study(false), 4),
      subset(tune::slate_cholesky_study(false), 4),
      subset(tune::candmc_qr_study(false), 3),
      subset(tune::slate_qr_study(false), 3),
  };
  const tune::SweepMode expected[] = {tune::SweepMode::Serial,
                                      tune::SweepMode::ParallelIsolated,
                                      tune::SweepMode::BatchShared};
  for (const tune::Study& study : studies) {
    int m = 0;
    for (const ModeCase& mode : modes) {
      tune::TuneOptions opt;
      opt.policy = Policy::OnlinePropagation;
      opt.tolerance = 0.25;
      opt.samples = 1;
      mode.apply(opt);
      const tune::TuneResult direct = tune::run_study(study, opt);
      const tune::TuneResult via = run_via_session(study, opt);
      EXPECT_EQ(direct.mode, expected[m])
          << study.name << " " << mode.what;
      expect_equal_results(direct, via,
                           (study.name + " " + mode.what).c_str());
      EXPECT_TRUE(direct.stats.same_statistics(via.stats))
          << study.name << " " << mode.what;
      ++m;
    }
  }
}

TEST(AskTell, SerialFacadeMatchesHandRolledPaperProtocol) {
  // Independent reimplementation of the paper's serial exhaustive sweep
  // straight on the Evaluator: guards that the session/facade layering
  // added nothing to the protocol.
  auto study = subset(tune::capital_cholesky_study(false), 5);
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.tolerance = 0.25;
  opt.samples = 2;

  critter::Config pc;
  pc.mode = critter::ExecMode::Model;
  pc.policy = opt.policy;
  pc.tolerance = opt.tolerance;
  pc.tilde_capacity = opt.tilde_capacity;
  critter::Store store(study.nranks, pc);
  const tune::Evaluator ev(study, opt);
  std::vector<tune::ConfigOutcome> by_hand;
  double tuning_time = 0.0;
  for (int i = 0; i < 5; ++i) {
    tune::ConfigTotals tot;
    by_hand.push_back(ev.evaluate(store, i, &tot));
    tuning_time += tot.tuning_time;
  }

  const tune::TuneResult r = tune::run_study(study, opt);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(r.per_config[i].pred_time, by_hand[i].pred_time) << i;
    EXPECT_EQ(r.per_config[i].true_time, by_hand[i].true_time) << i;
    EXPECT_EQ(r.per_config[i].skipped, by_hand[i].skipped) << i;
  }
  EXPECT_EQ(r.tuning_time, tuning_time);
}

TEST(AskTell, ProtocolMisuseIsRejected) {
  auto study = subset(tune::capital_cholesky_study(false), 3);
  tune::TuneOptions opt;
  opt.samples = 1;
  tune::Tuner session(study, opt);
  EXPECT_THROW(session.tell({}), std::runtime_error);  // nothing claimed
  const std::vector<int> batch = session.ask();
  ASSERT_FALSE(batch.empty());
  EXPECT_THROW(session.ask(), std::runtime_error);  // must tell first
  EXPECT_THROW(session.import_state(core::StatSnapshot{}),
               std::runtime_error);  // only before the first ask
  EXPECT_THROW(session.evaluate({99}), std::runtime_error);  // not the batch
  const std::vector<tune::ConfigOutcome> outcomes = session.evaluate(batch);
  // Re-evaluating the claimed batch would re-merge its statistics.
  EXPECT_THROW(session.evaluate(batch), std::runtime_error);
  session.tell(outcomes);
}

TEST(AskTell, IsolatedSweepIgnoresWarmStart) {
  // The documented warm_start contract: isolated-parallel sweeps reset
  // statistics per configuration and ignore the snapshot — the same
  // options must succeed at any worker count, not fail at workers > 1.
  auto study = subset(tune::capital_cholesky_study(false), 4);
  tune::TuneOptions persist;
  persist.policy = Policy::OnlinePropagation;
  persist.samples = 1;
  const tune::TuneResult prev = tune::run_study(study, persist);
  ASSERT_FALSE(prev.stats.empty());

  tune::TuneOptions iso;
  iso.policy = Policy::ConditionalExecution;
  iso.samples = 1;
  iso.reset_per_config = true;
  iso.workers = 4;
  tune::TuneOptions warmed = iso;
  warmed.warm_start = &prev.stats;
  const tune::TuneResult plain = tune::run_study(study, iso);
  const tune::TuneResult r = tune::run_study(study, warmed);
  EXPECT_EQ(r.mode, tune::SweepMode::ParallelIsolated);
  expect_equal_results(plain, r, "isolated warm-start ignored");
}

TEST(AskTell, ExternalOutcomesFlowThroughTell) {
  // tell() accepts outcomes produced outside evaluate() — the classic
  // ask/tell pattern where measurements come from a real machine.
  auto study = subset(tune::capital_cholesky_study(false), 4);
  tune::TuneOptions opt;
  tune::Tuner session(study, opt);
  while (!session.done()) {
    const std::vector<int> batch = session.ask();
    if (batch.empty()) break;
    std::vector<tune::ConfigOutcome> outcomes;
    for (int idx : batch) {
      tune::ConfigOutcome oc;
      oc.config = study.configs[idx];
      oc.evaluated = true;
      oc.pred_time = 100.0 - idx;  // external "measurement"
      oc.true_time = 1.0;
      oc.samples_used = 1;
      outcomes.push_back(oc);
    }
    session.tell(outcomes);
  }
  const tune::TuneResult r = session.result();
  EXPECT_EQ(r.evaluated_configs, 4);
  EXPECT_EQ(r.best_predicted(), 3);
  EXPECT_EQ(r.tuning_time, 0.0);  // nothing was simulated
}

// ---------------------------------------------------------------------------
// merge_shards
// ---------------------------------------------------------------------------

TEST(MergeShards, IsolatedSweepMatchesUnshardedFor124Shards) {
  auto study = subset(tune::capital_cholesky_study(false), 8);
  tune::TuneOptions opt;
  opt.policy = Policy::ConditionalExecution;
  opt.samples = 1;
  opt.reset_per_config = true;  // statistically isolated configurations
  const tune::TuneResult whole = tune::run_study(study, opt);
  for (int shards : {1, 2, 4}) {
    const tune::TuneResult r = tune::merge_shards(study, opt, shards);
    EXPECT_EQ(r.shards, shards);
    expect_equal_results(whole, r,
                         ("shards=" + std::to_string(shards)).c_str());
  }
}

TEST(MergeShards, SharedStatsShardingIsDeterministicAndMergesSnapshots) {
  auto study = subset(tune::slate_cholesky_study(false), 6);
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 1;  // persistent statistics: shards grow independent state
  const tune::TuneResult a = tune::merge_shards(study, opt, 3);
  const tune::TuneResult b = tune::merge_shards(study, opt, 3);
  expect_equal_results(a, b, "repeat");
  ASSERT_FALSE(a.stats.empty());
  EXPECT_EQ(a.stats.nranks(), study.nranks);
  EXPECT_TRUE(a.stats.same_statistics(b.stats));
  EXPECT_EQ(a.evaluated_configs, 6);
}

// ---------------------------------------------------------------------------
// A registry-defined toy workload: save -> load -> resume
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kToyKernel = 0x70F;

/// Defined and registered entirely from test (i.e. user) code.
class ToyRingWorkload final : public tune::Workload {
 public:
  std::string name() const override { return "toy-ring"; }

  void run(const tune::Study& study,
           const tune::Configuration& cfg) const override {
    const std::int64_t w = cfg.at("w");
    for (int it = 0; it < 12; ++it) {
      for (std::int64_t k = 0; k < study.n / w; ++k)
        critter::user_kernel(kToyKernel, w, w,
                             1.5 * static_cast<double>(w) * w, nullptr);
      critter::mpi::barrier(critter::sim::world());
    }
  }

 protected:
  tune::Study define(bool) const override {
    tune::Study s;
    s.name = "toy ring";
    s.nranks = 8;
    s.n = 64;
    s.m = s.n;
    s.gamma = 1.0e-8;
    s.space = tune::ParamSpace::cartesian({{"w", {2, 4, 8, 16}}});
    return s;
  }
};

const tune::Study& toy_study() {
  static const tune::Study s = [] {
    tune::register_workload(std::make_unique<ToyRingWorkload>());
    return tune::workload_study("toy-ring", false);
  }();
  return s;
}

}  // namespace

TEST(ToyWorkload, RegistersAndTunesWithoutTouchingTuneSources) {
  const tune::Study& study = toy_study();
  EXPECT_EQ(study.configs.size(), 4u);
  tune::TuneOptions opt;
  opt.policy = Policy::LocalPropagation;
  opt.samples = 2;
  const tune::TuneResult r = tune::run_study(study, opt);
  EXPECT_EQ(r.evaluated_configs, 4);
  for (const tune::ConfigOutcome& oc : r.per_config) {
    EXPECT_GT(oc.true_time, 0.0);
    EXPECT_GT(oc.pred_time, 0.0);
  }
  std::int64_t skipped = 0;
  for (const auto& oc : r.per_config) skipped += oc.skipped;
  EXPECT_GT(skipped, 0) << "selective execution should engage on user kernels";
}

TEST(ToyWorkload, SessionStateRoundTripsThroughSaveLoadResume) {
  const tune::Study& study = toy_study();
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 2;
  const tune::TuneResult full = tune::run_study(study, opt);

  // First half of the sweep in one session...
  tune::TuneOptions first = opt;
  first.config_end = 2;
  tune::Tuner s1(study, first);
  while (s1.step()) {
  }
  std::stringstream buf;
  s1.export_state().save(buf, core::StatSnapshot::Format::Binary);

  // ...then a fresh session (fresh process, morally) resumes the rest from
  // the serialized state and reproduces the uninterrupted sweep exactly.
  const core::StatSnapshot loaded = core::StatSnapshot::load(buf);
  tune::TuneOptions second = opt;
  second.config_begin = 2;
  tune::Tuner s2(study, second);
  s2.import_state(loaded);
  while (s2.step()) {
  }
  const tune::TuneResult resumed = s2.result();
  for (int i = 2; i < 4; ++i) {
    EXPECT_EQ(full.per_config[i].pred_time, resumed.per_config[i].pred_time)
        << i;
    EXPECT_EQ(full.per_config[i].true_time, resumed.per_config[i].true_time);
    EXPECT_EQ(full.per_config[i].skipped, resumed.per_config[i].skipped);
  }
  EXPECT_TRUE(full.stats.same_statistics(s2.export_state()));
}

// ---------------------------------------------------------------------------
// Successive halving
// ---------------------------------------------------------------------------

TEST(Halving, PrunesConfirmsWinnerAndStaysDeterministic) {
  auto study = subset(tune::slate_cholesky_study(false), 8);
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 4;
  opt.strategy = "halving";
  const tune::TuneResult r1 = tune::run_study(study, opt);
  const tune::TuneResult r2 = tune::run_study(study, opt);
  expect_equal_results(r1, r2, "halving repeat");

  int at_full = 0, pruned_early = 0;
  for (const tune::ConfigOutcome& oc : r1.per_config) {
    EXPECT_TRUE(oc.evaluated);
    EXPECT_GE(oc.samples_used, 1);
    if (oc.samples_used == opt.samples) ++at_full;
    if (oc.samples_used < opt.samples) ++pruned_early;
  }
  EXPECT_GT(pruned_early, 0) << "halving should prune the weak rungs";
  EXPECT_GT(at_full, 0);
  EXPECT_EQ(r1.per_config[r1.best_predicted()].samples_used, opt.samples)
      << "the winner is confirmed at the full budget";
  EXPECT_EQ(r1.strategy, "halving");
}

TEST(Halving, BatchSharedIdenticalAcrossWorkerCounts) {
  auto study = subset(tune::slate_cholesky_study(false), 8);
  tune::TuneOptions base;
  base.policy = Policy::OnlinePropagation;
  base.samples = 4;
  base.strategy = "halving";
  base.batch = 2;
  base.workers = 1;
  const tune::TuneResult r1 = tune::run_study(study, base);
  EXPECT_EQ(r1.mode, tune::SweepMode::BatchShared);
  for (int workers : {2, 4}) {
    tune::TuneOptions opt = base;
    opt.workers = workers;
    const tune::TuneResult rw = tune::run_study(study, opt);
    expect_equal_results(r1, rw, "halving workers");
    EXPECT_TRUE(r1.stats.same_statistics(rw.stats));
  }
}
