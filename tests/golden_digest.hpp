// Textual bit-identity digest of sweep results and statistics content,
// shared by the golden-output tests and the fixture generator.  The digest
// prints every floating value with "%a" (exact hex float), so two digests
// compare equal iff the underlying doubles are bit-identical.
//
// The digest deliberately covers *statistics content* (per-kernel moments,
// counters, flags, pending entries, tombstones, epochs) and sweep outcomes,
// but NOT the channel registry: the registry is an acceleration structure
// whose population may legally shrink (e.g. point-to-point pair channels
// need not be registered) without changing any observable statistic.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "core/stat_store.hpp"
#include "tune/tuner.hpp"

namespace critter::testing {

inline void digest_append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

inline void digest_stats(std::string& out, const core::KernelStats& ks) {
  digest_append(out,
                " n=%" PRId64 " mean=%a m2=%a inv=%" PRId64 "/%" PRId64
                " exe=%" PRId64 "/%" PRId64 " agg=%016" PRIx64 " gs=%d eo=%d reg=%d\n",
                ks.n, ks.mean, ks.m2, ks.invocations_this_epoch,
                ks.total_invocations, ks.executions_this_epoch,
                ks.total_executions, ks.agg_hash, ks.global_steady ? 1 : 0,
                ks.extrapolation_observed ? 1 : 0, ks.registered ? 1 : 0);
}

/// Statistics content of a snapshot, rank by rank, kernels sorted by hash.
inline std::string digest_snapshot(const core::StatSnapshot& snap) {
  std::string out;
  digest_append(out, "snapshot nranks=%d\n", snap.nranks());
  for (std::size_t r = 0; r < snap.ranks.size(); ++r) {
    const core::KernelTable& t = snap.ranks[r];
    digest_append(out, "rank %zu epoch=%" PRId64 " kernels=%zu\n",
                  r, static_cast<std::int64_t>(t.epoch), t.K.size());
    std::vector<std::uint64_t> hashes;
    hashes.reserve(t.K.size());
    for (const auto& [key, ks] : t.K) hashes.push_back(key.hash());
    std::sort(hashes.begin(), hashes.end());
    for (std::uint64_t h : hashes) {
      const auto kit = t.key_of_hash.find(h);
      if (kit == t.key_of_hash.end()) {
        digest_append(out, "k %016" PRIx64 " (unregistered)\n", h);
        continue;
      }
      const core::KernelKey& key = kit->second;
      digest_append(out, "k %016" PRIx64 " cls=%d dims=%" PRId64 ",%" PRId64
                         ",%" PRId64 ",%" PRId64 " chan=%016" PRIx64,
                    h, static_cast<int>(key.cls), key.dims[0], key.dims[1],
                    key.dims[2], key.dims[3], key.chan);
      digest_stats(out, t.K.at(key));
    }
    std::vector<std::uint64_t> pend;
    for (const auto& [h, ks] : t.pending_eager) pend.push_back(h);
    std::sort(pend.begin(), pend.end());
    for (std::uint64_t h : pend) {
      digest_append(out, "pending %016" PRIx64, h);
      digest_stats(out, t.pending_eager.at(h));
    }
    std::vector<std::uint64_t> tomb(t.pending_tombstones.begin(),
                                    t.pending_tombstones.end());
    std::sort(tomb.begin(), tomb.end());
    for (std::uint64_t h : tomb)
      digest_append(out, "tombstone %016" PRIx64 "\n", h);
  }
  return out;
}

/// Per-configuration outcomes and totals of a sweep.
inline std::string digest_result(const tune::TuneResult& r) {
  std::string out;
  digest_append(out, "result configs=%zu best_pred=%d best_true=%d\n",
                r.per_config.size(), r.best_predicted(), r.best_true());
  for (std::size_t i = 0; i < r.per_config.size(); ++i) {
    const tune::ConfigOutcome& oc = r.per_config[i];
    digest_append(out,
                  "c %zu idx=%d ev=%d pr=%d tt=%a pt=%a err=%a tct=%a pct=%a "
                  "cerr=%a sw=%a skt=%a exe=%" PRId64 " skip=%" PRId64 " su=%d\n",
                  i, oc.config.index, oc.evaluated ? 1 : 0, oc.pruned ? 1 : 0,
                  oc.true_time, oc.pred_time, oc.err, oc.true_comp_time,
                  oc.pred_comp_time, oc.comp_err, oc.sel_wall,
                  oc.sel_kernel_time, oc.executed, oc.skipped,
                  oc.samples_used);
    if (i < r.per_config_totals.size()) {
      const tune::ConfigTotals& ct = r.per_config_totals[i];
      digest_append(out, "t %zu tt=%a ft=%a kt=%a fkt=%a\n", i,
                    ct.tuning_time, ct.full_time, ct.kernel_time,
                    ct.full_kernel_time);
    }
  }
  return out;
}

/// The deterministic sweeps whose outputs the golden files pin.  Any change
/// to this list regenerates different fixtures — keep it in sync with
/// tools/gen_golden (which writes the files) and the golden tests (which
/// compare against them).
inline tune::TuneResult golden_sweep(const char* which) {
  auto study = tune::slate_cholesky_study(false);
  study.configs.resize(4);
  tune::TuneOptions opt;
  opt.samples = 2;
  opt.tolerance = 0.5;
  opt.extrapolate = true;
  opt.reset_per_config = false;
  const std::string w = which;
  if (w == "online") {
    opt.policy = Policy::OnlinePropagation;
  } else if (w == "eager") {
    opt.policy = Policy::EagerPropagation;
  } else if (w == "batch") {
    opt.policy = Policy::OnlinePropagation;
    opt.batch = 2;
    opt.workers = 2;
  }
  return tune::run_study(study, opt);
}

inline std::string golden_digest(const char* which) {
  const tune::TuneResult r = golden_sweep(which);
  return digest_result(r) + digest_snapshot(r.stats);
}

}  // namespace critter::testing
