// Internal propagation message: wire layout, pack/unpack, and the
// associative fold used as the internal allreduce operator.
#include <gtest/gtest.h>

#include "core/wire.hpp"

namespace core = critter::core;
using critter::Config;
using critter::RankProfiler;

namespace {

RankProfiler make_profiler(double exec_time) {
  RankProfiler rp;
  rp.table.channels.init_world(16);
  rp.path.exec_time = exec_time;
  rp.path.comp_time = exec_time / 2;
  rp.path.sync_cost = 10;
  return rp;
}

}  // namespace

TEST(Wire, SizesAreDeterministic) {
  EXPECT_EQ(core::IntMsg::wire_bytes(0, 0), static_cast<int>(sizeof(core::WireHeader)));
  EXPECT_EQ(core::IntMsg::wire_bytes(4, 0),
            static_cast<int>(sizeof(core::WireHeader) + 4 * sizeof(core::WireTilde)));
  core::IntMsg m(8, 2);
  EXPECT_EQ(m.bytes(), core::IntMsg::wire_bytes(8, 2));
}

TEST(Wire, PackRoundTripsTilde) {
  RankProfiler rp = make_profiler(1.0);
  rp.tilde[111] = 5;
  rp.tilde[222] = 9;
  core::IntMsg m(8, 0);
  m.pack(rp, true);
  EXPECT_EQ(m.header().n_tilde, 2);
  EXPECT_EQ(m.header().execute, 1);
  EXPECT_DOUBLE_EQ(m.header().metrics[0], 1.0);
}

TEST(Wire, PackTruncatesToHighestFrequencies) {
  RankProfiler rp = make_profiler(1.0);
  for (int i = 0; i < 20; ++i) rp.tilde[1000 + i] = i + 1;
  core::IntMsg m(4, 0);
  m.pack(rp, false);
  ASSERT_EQ(m.header().n_tilde, 4);
  for (int i = 0; i < 4; ++i) EXPECT_GE(m.tilde()[i].freq, 17);  // top-4: 17..20
}

TEST(Wire, FoldTakesElementwiseMaxOfMetrics) {
  RankProfiler a = make_profiler(2.0), b = make_profiler(3.0);
  a.path.comm_cost = 100;  // a wins on comm even though b wins on exec
  core::IntMsg ma(4, 0), mb(4, 0);
  ma.pack(a, false);
  mb.pack(b, true);
  auto fold = core::IntMsg::fold_fn(4, 0);
  fold(ma.data(), mb.data(), ma.bytes());
  EXPECT_DOUBLE_EQ(mb.header().metrics[0], 3.0);  // exec max
  EXPECT_DOUBLE_EQ(mb.header().metrics[4], 100.0);  // comm_cost max
  EXPECT_EQ(mb.header().execute, 1);  // any-rank-wants => execute
}

TEST(Wire, FoldAdoptsLongerPathsTildeTable) {
  RankProfiler longer = make_profiler(5.0), shorter = make_profiler(1.0);
  longer.tilde[42] = 7;
  shorter.tilde[99] = 3;
  core::IntMsg ml(4, 0), ms(4, 0);
  ml.pack(longer, false);
  ms.pack(shorter, false);
  auto fold = core::IntMsg::fold_fn(4, 0);
  // fold longer INTO shorter: shorter's buffer must adopt longer's table
  fold(ml.data(), ms.data(), ml.bytes());
  ASSERT_EQ(ms.header().n_tilde, 1);
  EXPECT_EQ(ms.tilde()[0].key, 42u);
  EXPECT_EQ(ms.tilde()[0].freq, 7);
}

TEST(Wire, FoldIsAssociativeOnMetrics) {
  RankProfiler r1 = make_profiler(1.0), r2 = make_profiler(4.0),
               r3 = make_profiler(2.5);
  auto fold = core::IntMsg::fold_fn(4, 0);
  // (r1 + r2) + r3
  core::IntMsg a1(4, 0), a2(4, 0), a3(4, 0);
  a1.pack(r1, false);
  a2.pack(r2, false);
  a3.pack(r3, true);
  fold(a1.data(), a2.data(), a1.bytes());
  fold(a2.data(), a3.data(), a2.bytes());
  // r1 + (r2 + r3)
  core::IntMsg b1(4, 0), b2(4, 0), b3(4, 0);
  b1.pack(r1, false);
  b2.pack(r2, false);
  b3.pack(r3, true);
  fold(b2.data(), b3.data(), b2.bytes());
  fold(b1.data(), b3.data(), b1.bytes());
  for (int i = 0; i < critter::PathMetrics::kFields; ++i)
    EXPECT_DOUBLE_EQ(a3.header().metrics[i], b3.header().metrics[i]);
  EXPECT_EQ(a3.header().execute, b3.header().execute);
}

TEST(Wire, UnpackAdoptsMaxima) {
  RankProfiler sender = make_profiler(9.0);
  sender.tilde[7] = 13;
  core::IntMsg m(4, 0);
  m.pack(sender, true);

  RankProfiler receiver = make_profiler(1.0);
  receiver.tilde[8] = 2;
  Config cfg;
  m.unpack_into(receiver, cfg, /*chan=*/0);
  EXPECT_DOUBLE_EQ(receiver.path.exec_time, 9.0);
  // receiver's ~K replaced by the longer path's table
  EXPECT_EQ(receiver.tilde.count(7), 1u);
  EXPECT_EQ(receiver.tilde.count(8), 0u);
}

TEST(Wire, UnpackKeepsOwnTildeWhenLonger) {
  RankProfiler sender = make_profiler(1.0);
  sender.tilde[7] = 13;
  core::IntMsg m(4, 0);
  m.pack(sender, true);

  RankProfiler receiver = make_profiler(5.0);
  receiver.tilde[8] = 2;
  Config cfg;
  m.unpack_into(receiver, cfg, 0);
  EXPECT_EQ(receiver.tilde.count(8), 1u);  // own (longer) table kept
}

TEST(Wire, EagerEntriesMergeByChanAlgebra) {
  // Two messages carrying stats for the same kernel with the same
  // aggregation base must Chan-merge (n adds, mean pools).
  core::IntMsg a(2, 4), b(2, 4);
  RankProfiler rp = make_profiler(1.0);
  a.pack(rp, false);
  b.pack(rp, false);
  core::WireEager ea{/*key=*/5, /*agg=*/0, /*n=*/10, /*mean=*/2.0, /*m2=*/1.0};
  core::WireEager eb{5, 0, 30, 4.0, 2.0};
  a.header().n_eager = 1;
  a.eager()[0] = ea;
  b.header().n_eager = 1;
  b.eager()[0] = eb;
  auto fold = core::IntMsg::fold_fn(2, 4);
  fold(a.data(), b.data(), a.bytes());
  ASSERT_EQ(b.header().n_eager, 1);
  EXPECT_EQ(b.eager()[0].n, 40);
  EXPECT_NEAR(b.eager()[0].mean, (10 * 2.0 + 30 * 4.0) / 40.0, 1e-12);
}

TEST(Wire, EagerRespectsCapacity) {
  core::IntMsg a(2, 2), b(2, 2);
  RankProfiler rp = make_profiler(1.0);
  a.pack(rp, false);
  b.pack(rp, false);
  b.header().n_eager = 2;
  b.eager()[0] = {1, 0, 1, 1.0, 0.0};
  b.eager()[1] = {2, 0, 1, 1.0, 0.0};
  a.header().n_eager = 1;
  a.eager()[0] = {3, 0, 1, 1.0, 0.0};  // no room left in b
  auto fold = core::IntMsg::fold_fn(2, 2);
  fold(a.data(), b.data(), a.bytes());
  EXPECT_EQ(b.header().n_eager, 2);  // capacity respected, entry dropped
}
